package superoffload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFig1Facade(t *testing.T) {
	// The paper's Fig. 1: enable SuperOffload with a few lines.
	m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Vocab: 64, MaxSeq: 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Init(m, DefaultOptimizer())
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(64, 2)
	var first, last float64
	const steps = 100
	for i := 0; i < steps; i++ {
		loss, err := eng.Step(corpus.NextBatch(2, 8))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(last) || last > first {
		t.Errorf("training did not progress: %.3f -> %.3f", first, last)
	}
	st := eng.Stats()
	if st.Steps != steps {
		t.Errorf("steps = %d, want %d", st.Steps, steps)
	}
	if eng.NumBuckets() < 1 {
		t.Error("no buckets")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(ModelConfig{Layers: 0, Hidden: 32, Vocab: 64}, 1); err == nil {
		t.Error("zero layers accepted")
	}
	if _, err := NewModel(ModelConfig{Layers: 1, Hidden: 30, Heads: 4, Vocab: 64}, 1); err == nil {
		t.Error("indivisible heads accepted")
	}
	m, err := NewModel(ModelConfig{Layers: 1, Hidden: 64, Vocab: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() < 1000 {
		t.Error("param count implausible")
	}
	if _, err := Init(nil, DefaultOptimizer()); err == nil {
		t.Error("nil model accepted")
	}
}

func TestSynchronousFallback(t *testing.T) {
	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 32, MaxSeq: 8}, 3)
	cfg := DefaultOptimizer()
	cfg.Synchronous = true
	eng, err := Init(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(32, 4)
	if _, err := eng.Step(corpus.NextBatch(1, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestPlanHeadline(t *testing.T) {
	r, err := Plan(PlanRequest{Model: "5B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fits {
		t.Fatalf("5B must fit: %s", r.OOMReason)
	}
	if r.TFLOPS < 200 {
		t.Errorf("5B single-chip = %.1f TFLOPS, expected ≈239", r.TFLOPS)
	}
	if r.MicroBatch < 1 || r.IterSeconds <= 0 {
		t.Errorf("plan fields: %+v", r)
	}
	if _, err := Plan(PlanRequest{Model: "9999B"}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestPlanDefaults(t *testing.T) {
	r, err := Plan(PlanRequest{Model: "5B"}) // chips/batch/seq defaulted
	if err != nil || !r.Fits {
		t.Fatalf("defaulted plan failed: %v %v", r, err)
	}
}

func TestCompareIncludesAllSystems(t *testing.T) {
	rs, err := Compare(PlanRequest{Model: "5B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("expected 8 systems, got %d", len(rs))
	}
	if rs[0].System != "SuperOffload" {
		t.Errorf("first system = %s", rs[0].System)
	}
	// SuperOffload beats every fitting baseline on this workload.
	for _, r := range rs[1:] {
		if r.Fits && r.TFLOPS >= rs[0].TFLOPS {
			t.Errorf("%s (%.0f) ≥ SuperOffload (%.0f)", r.System, r.TFLOPS, rs[0].TFLOPS)
		}
	}
}

func TestModelNamesAndExperiments(t *testing.T) {
	names := ModelNames()
	if len(names) < 20 {
		t.Errorf("model zoo too small: %d", len(names))
	}
	exps := ExperimentNames()
	if len(exps) != 17 {
		t.Errorf("experiment registry has %d entries, want 17", len(exps))
	}
	out, err := RunExperiment("table1")
	if err != nil || !strings.Contains(out, "GH200") {
		t.Errorf("table1: %v\n%s", err, out)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDescribeDecisions(t *testing.T) {
	// Weight-stationary at moderate scale...
	d, err := Describe(PlanRequest{Model: "5B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if d.Policy != "weight-stationary" {
		t.Errorf("5B policy = %s", d.Policy)
	}
	if d.CastPath != "Cast_gpu↔Move_fp32" {
		t.Errorf("cast path = %s", d.CastPath)
	}
	if d.BucketMB != 64 {
		t.Errorf("bucket = %d MB, want 64", d.BucketMB)
	}
	// ...weight-flow when the states outgrow HBM.
	d25, err := Describe(PlanRequest{Model: "25B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if d25.Policy != "weight-flow" {
		t.Errorf("25B policy = %s", d25.Policy)
	}
	if d25.Efficiency <= 0.6 {
		t.Errorf("25B streaming efficiency = %.2f, should clear the 60%% bar", d25.Efficiency)
	}
	if _, err := Describe(PlanRequest{Model: "50B", Chips: 1}); err == nil {
		t.Error("50B on one chip should not be plannable")
	}
}

func TestEngineAccumScheduleCheckpoint(t *testing.T) {
	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 64, MaxSeq: 8}, 4)
	cfg := DefaultOptimizer()
	cfg.ClipNorm = 5
	cfg.WarmupSteps = 5
	cfg.TotalSteps = 50
	cfg.MinLRFrac = 0.1
	eng, err := Init(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(64, 8)
	for i := 0; i < 10; i++ {
		if _, err := eng.StepAccum([]Batch{corpus.NextBatch(1, 8), corpus.NextBatch(1, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 64, MaxSeq: 8}, 999)
	eng2, _ := Init(m2, cfg)
	if err := eng2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	l1, err := eng.Step(NewCorpus(64, 55).NextBatch(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := eng2.Step(NewCorpus(64, 55).NextBatch(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatalf("restored engine diverges: %v vs %v", l1, l2)
	}
}
