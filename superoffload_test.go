package superoffload

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"superoffload/internal/hw"
)

func TestFig1Facade(t *testing.T) {
	// The paper's Fig. 1: enable SuperOffload with a few lines.
	m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Vocab: 64, MaxSeq: 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Init(m, DefaultOptimizer())
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(64, 2)
	var first, last float64
	const steps = 100
	for i := 0; i < steps; i++ {
		loss, err := eng.Step(corpus.NextBatch(2, 8))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(last) || last > first {
		t.Errorf("training did not progress: %.3f -> %.3f", first, last)
	}
	st := eng.Stats()
	if st.Steps != steps {
		t.Errorf("steps = %d, want %d", st.Steps, steps)
	}
	if eng.NumBuckets() < 1 {
		t.Error("no buckets")
	}
}

// TestOffloadFacade: the nvme backend trains bit-identically to dram
// through the public surface, reports telemetry, and rejects unknown
// backends — on both engines.
func TestOffloadFacade(t *testing.T) {
	train := func(backend string, ranks int) ([]float64, StoreTelemetry, bool) {
		m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Vocab: 64, MaxSeq: 16}, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultOptimizer()
		cfg.BucketElems = 4000
		cfg.Offload = OffloadConfig{Backend: backend, Dir: t.TempDir(), ResidentBuckets: 2}
		corpus := NewCorpus(64, 2)
		var losses []float64
		step := func(e interface {
			Step(Batch) (float64, error)
			Flush() error
		}) {
			for i := 0; i < 8; i++ {
				l, err := e.Step(corpus.NextBatch(2, 8))
				if err != nil {
					t.Fatal(err)
				}
				losses = append(losses, l)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if ranks > 1 {
			e, err := InitDP(m, cfg, DPConfig{Ranks: ranks})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			step(e)
			tel, ok := e.StoreTelemetry()
			return losses, tel, ok
		}
		e, err := Init(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		step(e)
		tel, ok := e.StoreTelemetry()
		return losses, tel, ok
	}
	dram, _, dramOK := train("dram", 1)
	nvme, tel, nvmeOK := train("nvme", 1)
	if dramOK {
		t.Error("dram backend reported NVMe telemetry")
	}
	if !nvmeOK || tel.Reads == 0 || tel.Writes == 0 {
		t.Errorf("nvme backend telemetry missing or idle: ok=%v %+v", nvmeOK, tel)
	}
	for i := range dram {
		if dram[i] != nvme[i] {
			t.Fatalf("losses diverge at step %d: %v vs %v", i, dram[i], nvme[i])
		}
	}
	if _, _, ok := train("nvme", 2); !ok {
		t.Error("DP engine on nvme backend reported no telemetry")
	}

	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 16, Vocab: 32, MaxSeq: 8}, 1)
	bad := DefaultOptimizer()
	bad.Offload.Backend = "tape"
	if _, err := Init(m, bad); err == nil {
		t.Error("unknown offload backend accepted by Init")
	}
	if _, err := InitDP(m, bad, DPConfig{Ranks: 2}); err == nil {
		t.Error("unknown offload backend accepted by InitDP")
	}
}

// TestActivationFacade: a step shape that overflows the modeled HBM
// budget is rejected up front with a hint, and the same shape trains
// successfully — with spill telemetry — once activation offloading is
// enabled, on every engine.
func TestActivationFacade(t *testing.T) {
	const (
		layers, hidden, heads = 6, 32, 2
		rows, seq             = 2, 16
	)
	newM := func() *Model {
		m, err := NewModel(ModelConfig{Layers: layers, Hidden: hidden, Heads: heads, Vocab: 64, MaxSeq: 2 * seq}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// A budget that holds the replica plus three resident layers — too
	// small for all six, comfortable for the offloaded window of two.
	m := newM()
	budget := 4*int64(m.NumParams()) + 3*hw.ActLayerBytes(rows*seq, hidden, heads, seq)

	corpus := NewCorpus(64, 3)
	batch := func() Batch { return corpus.NextBatch(rows, seq) }

	t.Run("overflow-rejected", func(t *testing.T) {
		cfg := DefaultOptimizer()
		cfg.Activation.HBMBudgetBytes = budget
		eng, err := Init(newM(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		_, err = eng.Step(batch())
		if err == nil {
			t.Fatal("overflowing shape trained without activation offload")
		}
		if !strings.Contains(err.Error(), "act-offload") {
			t.Errorf("guard error does not hint at offloading: %v", err)
		}
	})

	builders := []struct {
		name string
		init func(cfg OptimizerConfig) (interface {
			Step(Batch) (float64, error)
			Flush() error
			ActTelemetry() (ActTelemetry, bool)
			Close() error
		}, error)
		rowsDiv, seqDiv int
	}{
		{"single", func(cfg OptimizerConfig) (interface {
			Step(Batch) (float64, error)
			Flush() error
			ActTelemetry() (ActTelemetry, bool)
			Close() error
		}, error) {
			return Init(newM(), cfg)
		}, 1, 1},
		{"dp-r2", func(cfg OptimizerConfig) (interface {
			Step(Batch) (float64, error)
			Flush() error
			ActTelemetry() (ActTelemetry, bool)
			Close() error
		}, error) {
			return InitDP(newM(), cfg, DPConfig{Ranks: 2})
		}, 2, 1},
		{"sp-s2", func(cfg OptimizerConfig) (interface {
			Step(Batch) (float64, error)
			Flush() error
			ActTelemetry() (ActTelemetry, bool)
			Close() error
		}, error) {
			return InitSP(newM(), cfg, SPConfig{SeqRanks: 2})
		}, 1, 2},
		{"mesh-2x2", func(cfg OptimizerConfig) (interface {
			Step(Batch) (float64, error)
			Flush() error
			ActTelemetry() (ActTelemetry, bool)
			Close() error
		}, error) {
			return InitMesh(newM(), cfg, MeshConfig{Ranks: 2, SeqRanks: 2})
		}, 2, 2},
	}
	for _, b := range builders {
		t.Run("offloaded-"+b.name, func(t *testing.T) {
			cfg := DefaultOptimizer()
			cfg.Activation = ActivationConfig{
				Offload: "dram", ResidentLayers: 2, HBMBudgetBytes: budget,
			}
			eng, err := b.init(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			// Per-rank tokens shrink under DP/SP, so scale the batch up to
			// keep the per-rank shape identical to the single-rank case.
			for i := 0; i < 4; i++ {
				if _, err := eng.Step(corpus.NextBatch(rows*b.rowsDiv, seq*b.seqDiv)); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Flush(); err != nil {
				t.Fatal(err)
			}
			tel, ok := eng.ActTelemetry()
			if !ok || tel.Spills == 0 || tel.Fetches == 0 {
				t.Errorf("activation telemetry missing or idle: ok=%v %+v", ok, tel)
			}
		})
	}

	t.Run("unknown-tier", func(t *testing.T) {
		cfg := DefaultOptimizer()
		cfg.Activation.Offload = "tape"
		if _, err := Init(newM(), cfg); err == nil {
			t.Error("unknown activation tier accepted by Init")
		}
		if _, err := InitDP(newM(), cfg, DPConfig{Ranks: 2}); err == nil {
			t.Error("unknown activation tier accepted by InitDP")
		}
	})
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(ModelConfig{Layers: 0, Hidden: 32, Vocab: 64}, 1); err == nil {
		t.Error("zero layers accepted")
	}
	if _, err := NewModel(ModelConfig{Layers: 1, Hidden: 30, Heads: 4, Vocab: 64}, 1); err == nil {
		t.Error("indivisible heads accepted")
	}
	m, err := NewModel(ModelConfig{Layers: 1, Hidden: 64, Vocab: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() < 1000 {
		t.Error("param count implausible")
	}
	if _, err := Init(nil, DefaultOptimizer()); err == nil {
		t.Error("nil model accepted")
	}
}

func TestSynchronousFallback(t *testing.T) {
	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 32, MaxSeq: 8}, 3)
	cfg := DefaultOptimizer()
	cfg.Synchronous = true
	eng, err := Init(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(32, 4)
	if _, err := eng.Step(corpus.NextBatch(1, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestPlanHeadline(t *testing.T) {
	r, err := Plan(PlanRequest{Model: "5B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fits {
		t.Fatalf("5B must fit: %s", r.OOMReason)
	}
	if r.TFLOPS < 200 {
		t.Errorf("5B single-chip = %.1f TFLOPS, expected ≈239", r.TFLOPS)
	}
	if r.MicroBatch < 1 || r.IterSeconds <= 0 {
		t.Errorf("plan fields: %+v", r)
	}
	if _, err := Plan(PlanRequest{Model: "9999B"}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestPlanDefaults(t *testing.T) {
	r, err := Plan(PlanRequest{Model: "5B"}) // chips/batch/seq defaulted
	if err != nil || !r.Fits {
		t.Fatalf("defaulted plan failed: %v %v", r, err)
	}
}

func TestCompareIncludesAllSystems(t *testing.T) {
	rs, err := Compare(PlanRequest{Model: "5B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("expected 8 systems, got %d", len(rs))
	}
	if rs[0].System != "SuperOffload" {
		t.Errorf("first system = %s", rs[0].System)
	}
	// SuperOffload beats every fitting baseline on this workload.
	for _, r := range rs[1:] {
		if r.Fits && r.TFLOPS >= rs[0].TFLOPS {
			t.Errorf("%s (%.0f) ≥ SuperOffload (%.0f)", r.System, r.TFLOPS, rs[0].TFLOPS)
		}
	}
}

func TestModelNamesAndExperiments(t *testing.T) {
	names := ModelNames()
	if len(names) < 20 {
		t.Errorf("model zoo too small: %d", len(names))
	}
	exps := ExperimentNames()
	if len(exps) != 24 {
		t.Errorf("experiment registry has %d entries, want 24", len(exps))
	}
	out, err := RunExperiment("table1")
	if err != nil || !strings.Contains(out, "GH200") {
		t.Errorf("table1: %v\n%s", err, out)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDescribeDecisions(t *testing.T) {
	// Weight-stationary at moderate scale...
	d, err := Describe(PlanRequest{Model: "5B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if d.Policy != "weight-stationary" {
		t.Errorf("5B policy = %s", d.Policy)
	}
	if d.CastPath != "Cast_gpu↔Move_fp32" {
		t.Errorf("cast path = %s", d.CastPath)
	}
	if d.BucketMB != 64 {
		t.Errorf("bucket = %d MB, want 64", d.BucketMB)
	}
	// ...weight-flow when the states outgrow HBM.
	d25, err := Describe(PlanRequest{Model: "25B", Chips: 1, GlobalBatch: 8, Seq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if d25.Policy != "weight-flow" {
		t.Errorf("25B policy = %s", d25.Policy)
	}
	if d25.Efficiency <= 0.6 {
		t.Errorf("25B streaming efficiency = %.2f, should clear the 60%% bar", d25.Efficiency)
	}
	if _, err := Describe(PlanRequest{Model: "50B", Chips: 1}); err == nil {
		t.Error("50B on one chip should not be plannable")
	}
}

func TestEngineAccumScheduleCheckpoint(t *testing.T) {
	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 64, MaxSeq: 8}, 4)
	cfg := DefaultOptimizer()
	cfg.ClipNorm = 5
	cfg.WarmupSteps = 5
	cfg.TotalSteps = 50
	cfg.MinLRFrac = 0.1
	eng, err := Init(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(64, 8)
	for i := 0; i < 10; i++ {
		if _, err := eng.StepAccum([]Batch{corpus.NextBatch(1, 8), corpus.NextBatch(1, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 64, MaxSeq: 8}, 999)
	eng2, _ := Init(m2, cfg)
	if err := eng2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	l1, err := eng.Step(NewCorpus(64, 55).NextBatch(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := eng2.Step(NewCorpus(64, 55).NextBatch(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatalf("restored engine diverges: %v vs %v", l1, l2)
	}
}

// TestInitDPFacade mirrors the paper's multi-superchip enablement: the
// data-parallel engine behind the same two-line surface, on a loss
// trajectory bit-identical to the single-rank engine consuming the same
// R-way micro-batch decomposition — including across a rollback.
func TestInitDPFacade(t *testing.T) {
	const ranks, steps = 2, 20
	mk := func(seed uint64) *Model {
		m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Vocab: 64, MaxSeq: 16}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cfg := DefaultOptimizer()
	cfg.LR = 3e-3
	cfg.ClipNorm = 1.0 // tight enough to trigger rollbacks on this workload
	cfg.BucketElems = 20000

	dpe, err := InitDP(mk(42), cfg, DPConfig{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	defer dpe.Close()
	single, err := Init(mk(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if dpe.Ranks() != ranks || dpe.NumBuckets() != single.NumBuckets() {
		t.Fatalf("layout mismatch: ranks=%d buckets %d vs %d", dpe.Ranks(), dpe.NumBuckets(), single.NumBuckets())
	}

	corpus := NewCorpus(64, 123)
	refCorpus := NewCorpus(64, 123)
	for i := 0; i < steps; i++ {
		b := corpus.NextBatch(4, 8)
		dl, err := dpe.Step(b)
		if err != nil {
			t.Fatal(err)
		}
		rb := refCorpus.NextBatch(4, 8)
		half := rb.BatchSize / ranks * rb.Seq
		sl, err := single.StepAccum([]Batch{
			{Tokens: rb.Tokens[:half], Targets: rb.Targets[:half], BatchSize: rb.BatchSize / ranks, Seq: rb.Seq},
			{Tokens: rb.Tokens[half:], Targets: rb.Targets[half:], BatchSize: rb.BatchSize / ranks, Seq: rb.Seq},
		})
		if err != nil {
			t.Fatal(err)
		}
		if dl != sl {
			t.Fatalf("step %d: DP loss %v != single-rank loss %v", i, dl, sl)
		}
	}
	if err := dpe.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := single.Flush(); err != nil {
		t.Fatal(err)
	}
	if dpe.Stats() != single.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", dpe.Stats(), single.Stats())
	}
	if dpe.Stats().Rollbacks() == 0 {
		t.Error("facade equivalence run triggered no rollbacks")
	}

	// Checkpoints are interchangeable between the two engines.
	var buf bytes.Buffer
	if err := dpe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Init(mk(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := restored.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("DP checkpoint does not round-trip through the single-rank engine")
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInitDPValidation(t *testing.T) {
	if _, err := InitDP(nil, DefaultOptimizer(), DPConfig{Ranks: 2}); err == nil {
		t.Error("nil model accepted")
	}
	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 32, MaxSeq: 8}, 1)
	if _, err := InitDP(m, DefaultOptimizer(), DPConfig{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	eng, err := InitDP(m, DefaultOptimizer(), DPConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Step(NewCorpus(32, 2).NextBatch(3, 8)); err == nil {
		t.Error("batch not divisible by ranks accepted")
	}
}

// TestInitSPFacade mirrors the paper's long-sequence enablement: the
// sequence-parallel engine behind the same two-line surface, on a loss
// trajectory bit-identical to the single-rank engine consuming the SAME
// undivided batches — including across a rollback — with checkpoints
// interchangeable between the engines.
func TestInitSPFacade(t *testing.T) {
	const seqRanks, steps = 2, 20
	mk := func(seed uint64) *Model {
		m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Heads: 4, Vocab: 64, MaxSeq: 16}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cfg := DefaultOptimizer()
	cfg.LR = 3e-3
	cfg.ClipNorm = 1.0 // tight enough to trigger rollbacks on this workload
	cfg.BucketElems = 20000

	spe, err := InitSP(mk(42), cfg, SPConfig{SeqRanks: seqRanks})
	if err != nil {
		t.Fatal(err)
	}
	defer spe.Close()
	single, err := Init(mk(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if spe.SeqRanks() != seqRanks || spe.NumBuckets() != single.NumBuckets() {
		t.Fatalf("layout mismatch: seqRanks=%d buckets %d vs %d", spe.SeqRanks(), spe.NumBuckets(), single.NumBuckets())
	}

	corpus := NewCorpus(64, 123)
	refCorpus := NewCorpus(64, 123)
	for i := 0; i < steps; i++ {
		sl, err := spe.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		rl, err := single.Step(refCorpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		if sl != rl {
			t.Fatalf("step %d: SP loss %v != single-rank loss %v", i, sl, rl)
		}
	}
	if err := spe.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := single.Flush(); err != nil {
		t.Fatal(err)
	}
	if spe.Stats() != single.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", spe.Stats(), single.Stats())
	}
	if spe.Stats().Rollbacks() == 0 {
		t.Error("facade equivalence run triggered no rollbacks")
	}
	if cs := spe.CommStats(); cs.A2APayloads == 0 || cs.RingHops == 0 {
		t.Errorf("no collective traffic recorded: %+v", cs)
	}

	// Checkpoints are interchangeable between the two engines.
	var buf bytes.Buffer
	if err := spe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Init(mk(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := restored.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("SP checkpoint does not round-trip through the single-rank engine")
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInitSPValidation(t *testing.T) {
	if _, err := InitSP(nil, DefaultOptimizer(), SPConfig{SeqRanks: 2}); err == nil {
		t.Error("nil model accepted")
	}
	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Heads: 4, Vocab: 32, MaxSeq: 8}, 1)
	if _, err := InitSP(m, DefaultOptimizer(), SPConfig{SeqRanks: 0}); err == nil {
		t.Error("zero seq ranks accepted")
	}
	if _, err := InitSP(m, DefaultOptimizer(), SPConfig{SeqRanks: 3}); err == nil {
		t.Error("head count not divisible by seq ranks accepted")
	}
	bad := DefaultOptimizer()
	bad.Offload.Backend = "tape"
	if _, err := InitSP(m, bad, SPConfig{SeqRanks: 2}); err == nil {
		t.Error("unknown offload backend accepted by InitSP")
	}
	eng, err := InitSP(m, DefaultOptimizer(), SPConfig{SeqRanks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Step(NewCorpus(32, 2).NextBatch(2, 7)); err == nil {
		t.Error("sequence not divisible by seq ranks accepted")
	}
}

// TestInitMeshFacade: the hybrid R×S mesh behind the facade must land
// bit for bit on the data-parallel engine's trajectory for the same R
// (the sequence axis is invisible), with interchangeable checkpoints.
func TestInitMeshFacade(t *testing.T) {
	const ranks, seqRanks, steps = 2, 2, 20
	mk := func(seed uint64) *Model {
		m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Heads: 4, Vocab: 64, MaxSeq: 16}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cfg := DefaultOptimizer()
	cfg.LR = 3e-3
	cfg.ClipNorm = 1.0 // tight enough to trigger rollbacks on this workload
	cfg.BucketElems = 20000

	mesh, err := InitMesh(mk(42), cfg, MeshConfig{Ranks: ranks, SeqRanks: seqRanks})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	dpe, err := InitDP(mk(42), cfg, DPConfig{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	defer dpe.Close()
	if mesh.Ranks() != ranks || mesh.SeqRanks() != seqRanks || mesh.NumBuckets() != dpe.NumBuckets() {
		t.Fatalf("layout mismatch: R=%d S=%d buckets %d vs %d",
			mesh.Ranks(), mesh.SeqRanks(), mesh.NumBuckets(), dpe.NumBuckets())
	}

	corpus := NewCorpus(64, 123)
	refCorpus := NewCorpus(64, 123)
	for i := 0; i < steps; i++ {
		ml, err := mesh.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		rl, err := dpe.Step(refCorpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		if ml != rl {
			t.Fatalf("step %d: mesh loss %v != DP loss %v", i, ml, rl)
		}
	}
	if err := mesh.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dpe.Flush(); err != nil {
		t.Fatal(err)
	}
	if mesh.Stats() != dpe.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", mesh.Stats(), dpe.Stats())
	}
	if mesh.Stats().Rollbacks() == 0 {
		t.Error("facade equivalence run triggered no rollbacks")
	}
	if cs := mesh.CommStats(); cs.A2APayloads == 0 || cs.RingHops == 0 {
		t.Errorf("no collective traffic recorded: %+v", cs)
	}

	// Checkpoints are interchangeable between the engines.
	var buf bytes.Buffer
	if err := mesh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Init(mk(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := restored.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("mesh checkpoint does not round-trip through the single-rank engine")
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInitMeshValidation covers the facade-level guards.
func TestInitMeshValidation(t *testing.T) {
	if _, err := InitMesh(nil, DefaultOptimizer(), MeshConfig{Ranks: 2, SeqRanks: 2}); err == nil {
		t.Error("nil model accepted")
	}
	m, _ := NewModel(ModelConfig{Layers: 1, Hidden: 32, Heads: 4, Vocab: 32, MaxSeq: 8}, 1)
	if _, err := InitMesh(m, DefaultOptimizer(), MeshConfig{Ranks: 0, SeqRanks: 2}); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := InitMesh(m, DefaultOptimizer(), MeshConfig{Ranks: 2, SeqRanks: -1}); err == nil {
		t.Error("negative seq ranks accepted")
	}
	if _, err := InitMesh(m, DefaultOptimizer(), MeshConfig{Ranks: 2, SeqRanks: 3}); err == nil {
		t.Error("head count not divisible by seq ranks accepted")
	}
	bad := DefaultOptimizer()
	bad.Offload.Backend = "tape"
	if _, err := InitMesh(m, bad, MeshConfig{Ranks: 2, SeqRanks: 2}); err == nil {
		t.Error("unknown offload backend accepted by InitMesh")
	}
	eng, err := InitMesh(m, DefaultOptimizer(), MeshConfig{Ranks: 2, SeqRanks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Step(NewCorpus(32, 2).NextBatch(3, 8)); err == nil {
		t.Error("batch not divisible by groups accepted")
	}
	if _, err := eng.Step(NewCorpus(32, 2).NextBatch(2, 7)); err == nil {
		t.Error("sequence not divisible by seq ranks accepted")
	}
}

// TestPlacementFacade asserts the end-to-end placement contract through
// the public surface, across all four engines at the acceptance shapes
// (single rank, R=2, S=2, R×S=2×2): every placement mode — all-GPU,
// all-CPU, auto — trains bit-identically to the homogeneous engine,
// reports virtual-clock telemetry, and the auto split composes with the
// nvme backend into a three-tier plan.
func TestPlacementFacade(t *testing.T) {
	const steps = 10
	type result struct {
		losses []float64
		stats  Stats
		tel    PlacementTelemetry
		hasTel bool
	}
	train := func(t *testing.T, engineKind string, pc PlacementConfig, backend string) result {
		t.Helper()
		m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Heads: 4, Vocab: 64, MaxSeq: 16}, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultOptimizer()
		cfg.BucketElems = 4000
		cfg.Placement = pc
		if backend != "" {
			cfg.Offload = OffloadConfig{Backend: backend, Dir: t.TempDir()}
		}
		var eng interface {
			Step(Batch) (float64, error)
			Flush() error
			Stats() Stats
			PlacementTelemetry() (PlacementTelemetry, bool)
			Close() error
		}
		switch engineKind {
		case "single":
			eng, err = Init(m, cfg)
		case "dp":
			eng, err = InitDP(m, cfg, DPConfig{Ranks: 2})
		case "sp":
			eng, err = InitSP(m, cfg, SPConfig{SeqRanks: 2})
		case "mesh":
			eng, err = InitMesh(m, cfg, MeshConfig{Ranks: 2, SeqRanks: 2})
		}
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if cerr := eng.Close(); cerr != nil {
				t.Fatal(cerr)
			}
		}()
		corpus := NewCorpus(64, 2)
		var r result
		for i := 0; i < steps; i++ {
			loss, err := eng.Step(corpus.NextBatch(4, 16))
			if err != nil {
				t.Fatal(err)
			}
			r.losses = append(r.losses, loss)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		r.stats = eng.Stats()
		r.tel, r.hasTel = eng.PlacementTelemetry()
		return r
	}

	for _, kind := range []string{"single", "dp", "sp", "mesh"} {
		t.Run(kind, func(t *testing.T) {
			ref := train(t, kind, PlacementConfig{}, "")
			if ref.hasTel {
				t.Fatal("homogeneous engine reported placement telemetry")
			}
			for _, mode := range []string{"cpu", "gpu", "auto"} {
				got := train(t, kind, PlacementConfig{Mode: mode, Batch: 4, Seq: 16}, "")
				if !got.hasTel || got.tel.Steps != steps {
					t.Fatalf("%s: telemetry missing or short: %+v", mode, got.tel)
				}
				if got.tel.PipelinedSeconds <= 0 || got.tel.PipelinedSeconds > got.tel.SerializedSeconds {
					t.Fatalf("%s: bad modeled times %+v", mode, got.tel)
				}
				for i := range ref.losses {
					if got.losses[i] != ref.losses[i] {
						t.Fatalf("%s: loss diverged at step %d: %v vs %v", mode, i, got.losses[i], ref.losses[i])
					}
				}
				if got.stats != ref.stats {
					t.Fatalf("%s: stats diverged: %+v vs %+v", mode, got.stats, ref.stats)
				}
			}
		})
	}

	// auto + nvme composes into a three-tier plan: the offloaded body
	// spills through the placed store, still bit-identical.
	ref := train(t, "single", PlacementConfig{}, "")
	mixed := train(t, "single", PlacementConfig{Mode: "auto", GPUBuckets: 2, Batch: 4, Seq: 16}, "nvme")
	for i := range ref.losses {
		if mixed.losses[i] != ref.losses[i] {
			t.Fatalf("nvme-bodied placement diverged at step %d", i)
		}
	}
	if mixed.tel.Tiers[2].Buckets == 0 {
		t.Fatalf("nvme backend left no buckets on the flash tier: %+v", mixed.tel.Tiers)
	}
	if mixed.tel.Tiers[0].Buckets != 2 {
		t.Fatalf("pinned tail not honored: %+v", mixed.tel.Tiers)
	}

	// Unknown placement modes are rejected by every constructor.
	m, err := NewModel(ModelConfig{Layers: 2, Hidden: 32, Heads: 4, Vocab: 64, MaxSeq: 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptimizer()
	bad.Placement = PlacementConfig{Mode: "hbm"}
	if _, err := Init(m, bad); err == nil {
		t.Fatal("unknown placement mode accepted by Init")
	}
	if _, err := InitDP(m, bad, DPConfig{Ranks: 2}); err == nil {
		t.Fatal("unknown placement mode accepted by InitDP")
	}
}

// TestDescribePlacementFacade pins the superplan -emit-placement path:
// the 5B plan retains a GPU tail and renders usable supertrain flags.
func TestDescribePlacementFacade(t *testing.T) {
	p, err := DescribePlacement(PlanRequest{Model: "5B", Chips: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.GPUBuckets < 1 || p.GPUBuckets > p.NBuckets {
		t.Fatalf("placement %+v out of bounds", p)
	}
	want := fmt.Sprintf("-placement auto -gpu-buckets %d", p.GPUBuckets)
	if p.Flags != want {
		t.Fatalf("flags = %q, want %q", p.Flags, want)
	}
	if p.Plan == "" {
		t.Fatal("empty plan census")
	}
	if _, err := DescribePlacement(PlanRequest{Model: "no-such"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}
