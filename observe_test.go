package superoffload

import (
	"regexp"
	"strings"
	"testing"

	"superoffload/internal/obs"
	"superoffload/internal/place"
)

// populatedSources returns every telemetry struct the engines publish
// through the obs.Source interface, with enough fields set that
// conditional samples (per-path occupancy, per-tier breakdowns) emit.
func populatedSources() map[string]MetricSource {
	var pt PlacementTelemetry
	pt.Steps = 3
	for i := range pt.Tiers {
		pt.Tiers[i].Buckets = i + 1
	}
	return map[string]MetricSource{
		"nvme": StoreTelemetry{Reads: 1, Writes: 2, ReadSeconds: 0.5},
		"mlp": MLPTelemetry{
			StoreTelemetry:   StoreTelemetry{Reads: 4},
			CacheHits:        2,
			PathReadSeconds:  []float64{0.1, 0.2},
			PathWriteSeconds: []float64{0.3, 0.4},
			Events:           []PathEvent{{Kind: "quarantine"}},
		},
		"act":       ActTelemetry{Passes: 2, Spills: 5, Fetches: 5},
		"placement": pt,
		"comm":      SPCommStats{A2APayloads: 7, RingHops: 3},
		"stv":       Stats{Steps: 9, Commits: 8, ClipRolls: 1},
	}
}

// TestMetricSourceConformance locks the unified naming scheme: every
// telemetry struct publishes superoffload_<subsystem>_* samples with
// its own subsystem prefix, names stay within the metric charset,
// counters end in _total, and no two structs collide on a name.
func TestMetricSourceConformance(t *testing.T) {
	nameRe := regexp.MustCompile(`^superoffload_[a-z0-9_]+$`)
	owner := map[string]string{}
	for subsystem, src := range populatedSources() {
		samples := src.Samples()
		if len(samples) == 0 {
			t.Errorf("%s: no samples", subsystem)
		}
		for _, s := range samples {
			if !nameRe.MatchString(s.Name) {
				t.Errorf("%s: metric %q outside the superoffload_[a-z0-9_]+ charset", subsystem, s.Name)
			}
			if !strings.HasPrefix(s.Name, "superoffload_"+subsystem+"_") {
				t.Errorf("%s: metric %q missing its subsystem prefix", subsystem, s.Name)
			}
			switch s.Kind {
			case obs.KindCounter:
				if !strings.HasSuffix(s.Name, "_total") {
					t.Errorf("%s: counter %q missing _total suffix", subsystem, s.Name)
				}
			case obs.KindGauge:
			default:
				t.Errorf("%s: metric %q has unknown kind %v", subsystem, s.Name, s.Kind)
			}
			if prev, dup := owner[s.Name]; dup && prev != subsystem {
				t.Errorf("metric %q published by both %s and %s", s.Name, prev, subsystem)
			} else if dup {
				t.Errorf("%s: metric %q published twice", subsystem, s.Name)
			}
			owner[s.Name] = subsystem
		}
	}
}

// TestPlacementTierMetricLabels locks the tier labels the placement
// samples embed in their names.
func TestPlacementTierMetricLabels(t *testing.T) {
	want := []string{"gpu", "cpu", "nvme"}
	for i, w := range want {
		if got := place.Tier(i).MetricLabel(); got != w {
			t.Errorf("tier %d label = %q, want %q", i, got, w)
		}
	}
}

// TestRegisterMetricsLiveProviders wires a real engine into a registry
// and checks Gather serves its live counters.
func TestRegisterMetricsLiveProviders(t *testing.T) {
	m, err := NewModel(ModelConfig{Layers: 1, Hidden: 32, Vocab: 64, MaxSeq: 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOptimizer()
	cfg.BucketElems = 4096
	eng, err := Init(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	reg := NewMetricsRegistry()
	RegisterMetrics(reg, eng)

	corpus := NewCorpus(64, 2)
	for i := 0; i < 3; i++ {
		if _, err := eng.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range reg.Gather() {
		got[s.Name] = s.Value
	}
	if got["superoffload_stv_steps_total"] != 3 {
		t.Errorf("superoffload_stv_steps_total = %v, want 3 (all samples: %v)", got["superoffload_stv_steps_total"], got)
	}
}
