module superoffload

go 1.24
