package baselines

import (
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/sched"
)

func TestNVMeExtendsCapacityBeyondDDR(t *testing.T) {
	// With the NVMe tier, even a 200B model fits a single Superchip
	// (optimizer states on flash) — far beyond the 25B DDR bound.
	cl := hw.ClusterFor(1)
	got := sched.MaxTrainable(ZeROInfinityNVMe{}, cl, 8, 1024)
	if got.Params() < 150e9 {
		t.Errorf("NVMe tier max = %s, expected ≥150B on one chip", got.Name)
	}
	ddr := sched.MaxTrainable(ZeROInfinity{}, cl, 8, 1024)
	if got.Params() <= ddr.Params() {
		t.Errorf("NVMe (%s) should exceed DDR-bound ZeRO-Infinity (%s)", got.Name, ddr.Name)
	}
}

func TestNVMeThroughputPenalty(t *testing.T) {
	// The extra tier costs throughput where both fit: swap traffic is
	// exposed on the synchronous schedule.
	w := wl(1, "13B", 8)
	nvme := ZeROInfinityNVMe{}.Plan(w)
	ddr := ZeROInfinity{}.Plan(w)
	if !nvme.Fits || !ddr.Fits {
		t.Fatal("13B must fit both variants")
	}
	if nvme.TFLOPS >= ddr.TFLOPS {
		t.Errorf("NVMe variant (%.1f) should trail DDR variant (%.1f)", nvme.TFLOPS, ddr.TFLOPS)
	}
}

func TestNVMeSpecTimes(t *testing.T) {
	n := hw.NodeNVMe()
	if n.ReadTime(0) != 0 || n.WriteTime(0) != 0 {
		t.Error("zero-size IO should be free")
	}
	if n.WriteTime(1<<30) <= n.ReadTime(1<<30) {
		t.Error("writes are slower than reads on NVMe")
	}
	if n.OptimizerSwapTime(1e9) <= 0 {
		t.Error("swap time must be positive")
	}
	// 1B params: 16 GB read @25 GB/s + 16 GB write @12 GB/s ≈ 1.97 s.
	got := n.OptimizerSwapTime(1e9)
	if got < 1.5 || got > 2.5 {
		t.Errorf("1B swap = %.2fs, expected ≈2s", got)
	}
}

func TestStepSwapTimeComposesSpecPrimitives(t *testing.T) {
	// The shared per-step model must be exactly the spec's primitives —
	// no second copy of the bandwidth math anywhere.
	n := hw.NodeNVMe()
	const params = int64(1e9)
	want := n.OptimizerSwapTime(params) + 2*n.ReadTime(2*params)
	if got := n.StepSwapTime(params, 2, 2); got != want {
		t.Errorf("StepSwapTime = %v, want %v", got, want)
	}
	if n.StepSwapTime(params, 2, 0) != n.OptimizerSwapTime(params) {
		t.Error("zero weight passes should reduce to the optimizer swap alone")
	}
}
