package baselines

import (
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

// ZeROInfinityNVMe is ZeRO-Infinity with its NVMe tier enabled — the full
// design of the original paper, which the SuperOffload evaluation turns
// off for fair comparison (§5.1 "we only enable its CPU offloading"). It
// extends trainable model scale far past DDR at the cost of swapping
// optimizer states through the NVMe array every step.
type ZeROInfinityNVMe struct{}

func (ZeROInfinityNVMe) Name() string { return "ZeRO-Infinity+NVMe" }

func (z ZeROInfinityNVMe) Plan(w sched.Workload) sched.Result {
	res := sched.Result{System: z.Name(), Workload: w}
	chip := w.Cluster.Node.Chip
	nvme := hw.NodeNVMe()
	n := w.Chips()
	shard := w.Model.Params() / int64(n)
	nb := int((2*shard + hw.ZeROInfinityBucketBytes - 1) / hw.ZeROInfinityBucketBytes)
	if nb < 1 {
		nb = 1
	}
	const workingBytes = 2 << 30

	// Capacity: activations + working set in HBM; DRAM holds only the
	// swap pipeline's staging buffers; model states (fp16 params, fp32
	// gradients, optimizer states) all live on the NVMe tier, which is
	// what "breaking the GPU memory wall" buys.
	const dramStagingBytes = 16 << 30
	fits := func(micro int, ckpt bool) bool {
		act := w.Model.ActivationBytes(micro, w.Seq, ckpt)
		if workingBytes+act+hw.GPUMemoryOverheadBytes > chip.GPU.MemBytes {
			return false
		}
		if dramStagingBytes+hw.CPUMemoryOverheadBytes > chip.CPU.MemBytes {
			return false
		}
		return shard*model.BytesCPUStatesFull <= nvme.Capacity
	}
	timeOf := func(e sched.Execution) float64 {
		p := sched.OffloadPlan{
			Chip: chip, Link: chip.Link, Model: w.Model, Exec: e, Seq: w.Seq,
			NBuckets: nb, BucketParams: shard / int64(nb),
			CastOnGPU: false, Speculative: false, CPUImpl: hw.AdamCPU,
			WeightFlow: true, UnpinnedWeights: true,
		}
		_, st, err := sched.Build(p)
		if err != nil {
			return 0
		}
		// Optimizer states stream through NVMe each step, and the
		// fp16 weights are re-read from flash for each pass; the aio
		// pipeline overlaps poorly with the synchronous schedule, so
		// both are exposed.
		t := st.IterTime + nvme.StepSwapTime(shard, model.BytesFP16Param, 2)
		if n > 1 {
			link := w.Cluster.DataParallelLink(n)
			t += 2*hw.CollectiveTime(hw.AllGather, n, 2*w.Model.Params(), link) +
				hw.CollectiveTime(hw.ReduceScatter, n, 2*w.Model.Params(), link)
		}
		return t
	}
	exec, ok := sched.ChooseExecution(w.PerGPUBatch(), fits, timeOf)
	if !ok {
		res.OOM = "NVMe/DRAM staging exceeded"
		return res
	}
	res.Fits = true
	res.Exec = exec
	res.MaxMicroBatchNoCkpt = maxNoCkpt(fits, w.PerGPUBatch())
	res.IterTime = timeOf(exec)
	res.GPUIdleFrac = idleFromCompute(chip, w, exec, res.IterTime)
	res.Finalize(chip)
	return res
}
