package baselines

import (
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

// ---- ZeRO-Offload ----

// ZeROOffload is DeepSpeed's CPU offloading on top of ZeRO-2 (ATC'21):
// fp16 weights and gradients stay on the GPU, optimizer states and the
// Adam step move to the CPU, with PCIe-tuned buckets, the
// synchronize-then-execute schedule, and the minimum-volume (cast-on-CPU)
// transfer format.
type ZeROOffload struct{}

func (ZeROOffload) Name() string { return "ZeRO-Offload" }

// fitsZeROOffload: single GPU holds full fp16 params+grads (4Ψ); with
// ZeRO-2 sharding across n ranks the gradients shrink to 2Ψ/n but the
// reduce/offload transient remains; the CPU holds 16Ψ/n.
func fitsZeROOffload(w sched.Workload, micro int, ckpt bool) bool {
	chip := w.Cluster.Node.Chip
	n := int64(w.Chips())
	p := w.Model.Params()
	var resident float64
	if n == 1 {
		// Full fp16 params + full fp16 grads stay on the GPU.
		resident = 4 * float64(p) * fragFactor
	} else {
		// ZeRO-2 shards gradients but each rank keeps the full fp16
		// parameter replica (§5.4).
		resident = (2*float64(p) + 2*float64(p)/float64(n)) * fragFactor
	}
	resident += gradTransientBytesPerParam * float64(p)
	act := float64(w.Model.ActivationBytes(micro, w.Seq, ckpt))
	if int64(resident+act)+hw.GPUMemoryOverheadBytes > chip.GPU.MemBytes {
		return false
	}
	cpu := 16*p/n + hw.CPUMemoryOverheadBytes
	return cpu <= chip.CPU.MemBytes
}

func (z ZeROOffload) Plan(w sched.Workload) sched.Result {
	res := sched.Result{System: z.Name(), Workload: w}
	chip := w.Cluster.Node.Chip
	n := w.Chips()
	shard := w.Model.Params() / int64(n)
	nb := int((2*shard + hw.ZeROOffloadBucketBytes - 1) / hw.ZeROOffloadBucketBytes)
	if nb < 1 {
		nb = 1
	}

	timeOf := func(e sched.Execution) float64 {
		p := sched.OffloadPlan{
			Chip: chip, Link: chip.Link, Model: w.Model, Exec: e, Seq: w.Seq,
			NBuckets: nb, BucketParams: shard / int64(nb),
			CastOnGPU: false, Speculative: false, CPUImpl: hw.AdamCPU,
		}
		_, st, err := sched.Build(p)
		if err != nil {
			return 0
		}
		t := st.IterTime
		if n > 1 {
			// The synchronize-then-execute schedule serializes the
			// gradient reduce-scatter and the post-step parameter
			// all-gather with the offload phase — nothing hides
			// them (Fig. 3).
			link := w.Cluster.DataParallelLink(n)
			t += hw.CollectiveTime(hw.ReduceScatter, n, 2*w.Model.Params(), link) +
				hw.CollectiveTime(hw.AllGather, n, 2*w.Model.Params(), link)
		}
		return t
	}
	fits := func(micro int, ckpt bool) bool { return fitsZeROOffload(w, micro, ckpt) }
	exec, ok := sched.ChooseExecution(w.PerGPUBatch(), fits, timeOf)
	if !ok {
		res.OOM = "fp16 replica + gradients exceed HBM"
		return res
	}
	res.Fits = true
	res.Exec = exec
	res.MaxMicroBatchNoCkpt = maxNoCkpt(fits, w.PerGPUBatch())

	p := sched.OffloadPlan{
		Chip: chip, Link: chip.Link, Model: w.Model, Exec: exec, Seq: w.Seq,
		NBuckets: nb, BucketParams: shard / int64(nb),
		CastOnGPU: false, Speculative: false, CPUImpl: hw.AdamCPU,
	}
	engine, _, err := sched.Build(p)
	if err != nil {
		res.Fits = false
		res.OOM = err.Error()
		return res
	}
	res.Engine = engine
	res.IterTime = timeOf(exec)
	// Idle accounts for the full iteration including the exposed
	// data-parallel collectives, matching the Fig. 4 measurement.
	res.GPUIdleFrac = idleFromCompute(chip, w, exec, res.IterTime)
	res.Finalize(chip)
	return res
}

// ---- ZeRO-Infinity ----

// ZeROInfinity extends ZeRO-3 with CPU offload of parameters and optimizer
// states (SC'21), streaming weights per small swap buffer. Its PCIe-tuned
// buffer sizes leave the C2C link latency-bound (§5.2).
type ZeROInfinity struct{}

func (ZeROInfinity) Name() string { return "ZeRO-Infinity" }

func fitsCPUStates(w sched.Workload, micro int, ckpt bool, workingBytes int64) bool {
	chip := w.Cluster.Node.Chip
	n := int64(w.Chips())
	shard := w.Model.Params() / n
	act := w.Model.ActivationBytes(micro, w.Seq, ckpt)
	if workingBytes+act+hw.GPUMemoryOverheadBytes > chip.GPU.MemBytes {
		return false
	}
	return shard*model.BytesCPUStatesFull+hw.CPUMemoryOverheadBytes <= chip.CPU.MemBytes
}

func (z ZeROInfinity) Plan(w sched.Workload) sched.Result {
	res := sched.Result{System: z.Name(), Workload: w}
	chip := w.Cluster.Node.Chip
	n := w.Chips()
	shard := w.Model.Params() / int64(n)
	nb := int((2*shard + hw.ZeROInfinityBucketBytes - 1) / hw.ZeROInfinityBucketBytes)
	if nb < 1 {
		nb = 1
	}
	const workingBytes = 2 << 30 // swap buffers + live layer

	fits := func(micro int, ckpt bool) bool { return fitsCPUStates(w, micro, ckpt, workingBytes) }
	timeOf := func(e sched.Execution) float64 {
		p := sched.OffloadPlan{
			Chip: chip, Link: chip.Link, Model: w.Model, Exec: e, Seq: w.Seq,
			NBuckets: nb, BucketParams: shard / int64(nb),
			CastOnGPU: false, Speculative: false, CPUImpl: hw.AdamCPU,
			WeightFlow: true, UnpinnedWeights: true,
		}
		_, st, err := sched.Build(p)
		if err != nil {
			return 0
		}
		t := st.IterTime
		if n > 1 {
			// ZeRO-3-style parameter all-gathers in both passes plus
			// the gradient reduce-scatter, serialized by the
			// synchronous swap pipeline.
			link := w.Cluster.DataParallelLink(n)
			t += 2*hw.CollectiveTime(hw.AllGather, n, 2*w.Model.Params(), link) +
				hw.CollectiveTime(hw.ReduceScatter, n, 2*w.Model.Params(), link)
		}
		return t
	}
	exec, ok := sched.ChooseExecution(w.PerGPUBatch(), fits, timeOf)
	if !ok {
		res.OOM = "CPU states exceed DDR (or activations exceed HBM)"
		return res
	}
	res.Fits = true
	res.Exec = exec
	res.MaxMicroBatchNoCkpt = maxNoCkpt(fits, w.PerGPUBatch())
	res.IterTime = timeOf(exec)
	res.GPUIdleFrac = idleFromCompute(chip, w, exec, res.IterTime)
	res.Finalize(chip)
	return res
}

// ---- FSDP CPU Offload ----

// FSDPOffload is PyTorch FSDP with CPUOffload(offload_params=True)
// (VLDB'23): parameters, gradients and optimizer states live on the CPU;
// every layer's weights are copied in synchronously per pass through
// pageable memory, gradients are copied back the same way, and the
// optimizer is the native (unfused) CPU Adam.
type FSDPOffload struct{}

func (FSDPOffload) Name() string { return "FSDP-Offload" }

func (f FSDPOffload) Plan(w sched.Workload) sched.Result {
	res := sched.Result{System: f.Name(), Workload: w}
	chip := w.Cluster.Node.Chip
	n := w.Chips()
	shard := w.Model.Params() / int64(n)
	nb := w.Model.Layers // FSDP units are layers
	if nb < 1 {
		nb = 1
	}
	const workingBytes = 2 << 30

	fits := func(micro int, ckpt bool) bool { return fitsCPUStates(w, micro, ckpt, workingBytes) }
	timeOf := func(e sched.Execution) float64 {
		p := sched.OffloadPlan{
			Chip: chip, Link: chip.Link, Model: w.Model, Exec: e, Seq: w.Seq,
			NBuckets: nb, BucketParams: shard / int64(nb),
			CastOnGPU: false, Speculative: false, CPUImpl: hw.AdamNaive,
			WeightFlow: true, PageableTransfers: true,
			PerLayerSync: hw.FSDPSyncPerLayerS,
		}
		_, st, err := sched.Build(p)
		if err != nil {
			return 0
		}
		t := st.IterTime
		if n > 1 {
			// ZeRO-3-style parameter all-gathers in both passes plus
			// the gradient reduce-scatter, serialized by the
			// synchronous swap pipeline.
			link := w.Cluster.DataParallelLink(n)
			t += 2*hw.CollectiveTime(hw.AllGather, n, 2*w.Model.Params(), link) +
				hw.CollectiveTime(hw.ReduceScatter, n, 2*w.Model.Params(), link)
		}
		return t
	}
	exec, ok := sched.ChooseExecution(w.PerGPUBatch(), fits, timeOf)
	if !ok {
		res.OOM = "CPU states exceed DDR (or activations exceed HBM)"
		return res
	}
	res.Fits = true
	res.Exec = exec
	res.MaxMicroBatchNoCkpt = maxNoCkpt(fits, w.PerGPUBatch())
	res.IterTime = timeOf(exec)
	res.GPUIdleFrac = idleFromCompute(chip, w, exec, res.IterTime)
	res.Finalize(chip)
	return res
}

// idleFromCompute derives the GPU idle fraction from useful compute vs
// iteration time for systems timed through the pipeline builder plus
// collective terms.
func idleFromCompute(chip hw.Chip, w sched.Workload, e sched.Execution, iter float64) float64 {
	if iter <= 0 {
		return 0
	}
	fwd, bwd := sched.ComputeTimes(chip, w.Model, e.MicroBatch, w.Seq, e.Checkpoint)
	busy := float64(e.GradAccum) * (fwd + bwd) / sched.EffBatchEfficiency(e.MicroBatch, w.Seq)
	return clamp01(1 - busy/iter)
}
