package baselines

import (
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

func wl(chips int, modelName string, batch int) sched.Workload {
	m, err := model.ByName(modelName)
	if err != nil {
		panic(err)
	}
	return sched.Workload{Cluster: hw.ClusterFor(chips), Model: m, GlobalBatch: batch, Seq: 1024}
}

func TestAllSystemsHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name()] {
			t.Errorf("duplicate system name %s", s.Name())
		}
		seen[s.Name()] = true
	}
	if len(seen) != 7 {
		t.Errorf("expected 7 baselines, got %d", len(seen))
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("ZeRO-Offload"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("Adam-SGD-3000"); err == nil {
		t.Fatal("unknown system resolved")
	}
}

// TestFig13SingleChipCapacities pins the paper's Fig. 13 single-Superchip
// capacity points: DDP 3.5B, ZeRO-Offload 15B (SuperOffload's 25B is
// asserted in internal/core).
func TestFig13SingleChipCapacities(t *testing.T) {
	cl := hw.ClusterFor(1)
	if got := sched.MaxTrainable(DDP{}, cl, 8, 1024); got.Name != "3.5B" {
		t.Errorf("DDP max = %s, paper 3.5B", got.Name)
	}
	if got := sched.MaxTrainable(ZeROOffload{}, cl, 8, 1024); got.Name != "15B" {
		t.Errorf("ZeRO-Offload max = %s, paper 15B", got.Name)
	}
	if got := sched.MaxTrainable(ZeROInfinity{}, cl, 8, 1024); got.Name != "25B" {
		t.Errorf("ZeRO-Infinity max = %s, paper ~25B (comparable to SuperOffload)", got.Name)
	}
	// Megatron/ZeRO-2/ZeRO-3 "do not enable training larger models on a
	// single GPU compared to PyTorch DDP" (§5.4).
	for _, s := range []sched.System{Megatron{}, ZeRO2{}, ZeRO3{}} {
		got := sched.MaxTrainable(s, cl, 8, 1024)
		if got.Params() > 4e9 {
			t.Errorf("%s single-chip max = %s, should not exceed DDP's ~3.5B", s.Name(), got.Name)
		}
	}
}

func TestFig13MultiChipCapacities(t *testing.T) {
	if testing.Short() {
		t.Skip("model-zoo sweeps")
	}
	cl16 := hw.ClusterFor(16)
	// §5.4: ZeRO-Offload stays bounded (~20B) regardless of GPU count;
	// ZeRO-2 ~20B; Megatron and ZeRO-3 reach ~45-50B on 16 chips.
	if got := sched.MaxTrainable(ZeROOffload{}, cl16, 128, 1024); got.Params() > 26e9 {
		t.Errorf("ZeRO-Offload 16-chip max = %s, paper says bounded ~20B", got.Name)
	}
	if got := sched.MaxTrainable(ZeRO2{}, cl16, 128, 1024); got.Name != "20B" {
		t.Errorf("ZeRO-2 16-chip max = %s, paper ~20B", got.Name)
	}
	if got := sched.MaxTrainable(ZeRO3{}, cl16, 128, 1024); got.Name != "50B" {
		t.Errorf("ZeRO-3 16-chip max = %s, paper ~45-50B", got.Name)
	}
	if got := sched.MaxTrainable(Megatron{}, cl16, 128, 1024); got.Name != "50B" {
		t.Errorf("Megatron 16-chip max = %s, paper ~45-50B", got.Name)
	}
	// DDP's scalability is bounded by the single-GPU model scale (§5.4).
	if got := sched.MaxTrainable(DDP{}, cl16, 128, 1024); got.Name != "3.5B" {
		t.Errorf("DDP 16-chip max = %s, must equal single-chip 3.5B", got.Name)
	}
}

func TestFig10SingleChipThroughputShape(t *testing.T) {
	w := wl(1, "5B", 8)
	zo := ZeROOffload{}.Plan(w)
	zi := ZeROInfinity{}.Plan(w)
	fsdp := FSDPOffload{}.Plan(w)
	if !zo.Fits || !zi.Fits || !fsdp.Fits {
		t.Fatalf("5B must fit all offload systems")
	}
	// §5.2: ZeRO-Offload ~116 TFLOPS-class; ZeRO-Infinity below 50;
	// FSDP-Offload the slowest of all.
	if zo.TFLOPS < 90 || zo.TFLOPS > 150 {
		t.Errorf("ZeRO-Offload = %.1f TFLOPS, paper ≈116", zo.TFLOPS)
	}
	if zi.TFLOPS >= 50 {
		t.Errorf("ZeRO-Infinity = %.1f TFLOPS, paper <50", zi.TFLOPS)
	}
	if fsdp.TFLOPS >= 25 {
		t.Errorf("FSDP-Offload = %.1f TFLOPS, paper <15 (we accept <25)", fsdp.TFLOPS)
	}
	if !(fsdp.TFLOPS < zi.TFLOPS && zi.TFLOPS < zo.TFLOPS) {
		t.Errorf("ordering violated: FSDP %.0f < ZI %.0f < ZO %.0f expected",
			fsdp.TFLOPS, zi.TFLOPS, zo.TFLOPS)
	}
}

func TestZeROOffloadIdleFraction(t *testing.T) {
	// Fig. 4: prior offloading leaves the GPU idle 40-50% per iteration.
	r := ZeROOffload{}.Plan(wl(1, "5B", 8))
	if r.GPUIdleFrac < 0.35 || r.GPUIdleFrac > 0.65 {
		t.Errorf("ZeRO-Offload GPU idle = %.2f, paper 0.40-0.50", r.GPUIdleFrac)
	}
}

func TestDDPOOMBeyond4B(t *testing.T) {
	r := DDP{}.Plan(wl(1, "5B", 8))
	if r.Fits {
		t.Error("DDP must OOM at 5B on one 96GB GPU")
	}
	r = DDP{}.Plan(wl(1, "3B", 8))
	if !r.Fits {
		t.Errorf("DDP must fit 3B: %s", r.OOM)
	}
}

func TestGPUOnlySystemsDontScaleModelWithChips(t *testing.T) {
	// DDP replicates: 5B OOMs regardless of chip count.
	r := DDP{}.Plan(wl(16, "5B", 128))
	if r.Fits {
		t.Error("DDP 5B should OOM even on 16 chips")
	}
	// Sharded systems do scale.
	r = ZeRO3{}.Plan(wl(16, "13B", 128))
	if !r.Fits {
		t.Errorf("ZeRO-3 13B on 16 chips should fit: %s", r.OOM)
	}
	r = Megatron{}.Plan(wl(16, "13B", 128))
	if !r.Fits {
		t.Errorf("Megatron 13B on 16 chips should fit: %s", r.OOM)
	}
}

func TestMegatronPicksIntraNodeTPWhenPossible(t *testing.T) {
	// 5B fits with TP=2 (intra-node NVLink); throughput should beat a
	// hypothetical Slingshot-spanning TP=4 by a wide margin — verified
	// indirectly: Megatron on 4 chips must stay within 3x of ZeRO-2
	// rather than collapsing.
	meg := Megatron{}.Plan(wl(4, "5B", 16))
	z2 := ZeRO2{}.Plan(wl(4, "5B", 16))
	if !meg.Fits || !z2.Fits {
		t.Fatal("both should fit 5B on 4 chips")
	}
	if meg.TFLOPS < z2.TFLOPS/3 {
		t.Errorf("Megatron %.0f collapsed vs ZeRO-2 %.0f — TP degree search broken?", meg.TFLOPS, z2.TFLOPS)
	}
}

func TestOffloadBeatsGPUOnlyOnCapacityNotSpeed(t *testing.T) {
	// At 3B on a single chip, GPU-only systems are faster than
	// PCIe-era offloading (the conventional wisdom SuperOffload breaks).
	ddp := DDP{}.Plan(wl(1, "3B", 8))
	zo := ZeROOffload{}.Plan(wl(1, "3B", 8))
	if !ddp.Fits || !zo.Fits {
		t.Fatal("both fit 3B")
	}
	if zo.TFLOPS >= ddp.TFLOPS {
		t.Errorf("ZeRO-Offload (%.0f) should trail DDP (%.0f) when both fit", zo.TFLOPS, ddp.TFLOPS)
	}
}

func TestCollectivesHurtMultiChipOffloadBaselines(t *testing.T) {
	single := ZeROOffload{}.Plan(wl(1, "13B", 8))
	multi := ZeROOffload{}.Plan(wl(16, "13B", 128))
	if !single.Fits || !multi.Fits {
		t.Skip("capacity differs")
	}
	// Per-GPU throughput should not magically exceed ~1.5x single-chip
	// even though shards shrink: exposed Slingshot collectives bite.
	if multi.TFLOPS > 1.6*single.TFLOPS {
		t.Errorf("ZeRO-Offload 16-chip %.0f vs single %.0f: collectives not charged?",
			multi.TFLOPS, single.TFLOPS)
	}
}

func TestResultsCarryExecution(t *testing.T) {
	r := ZeROOffload{}.Plan(wl(1, "13B", 8))
	if !r.Fits {
		t.Fatalf("13B should fit ZeRO-Offload: %s", r.OOM)
	}
	if r.Exec.MicroBatch < 1 || r.Exec.GradAccum < 1 {
		t.Errorf("execution not recorded: %+v", r.Exec)
	}
	if r.IterTime <= 0 || r.TFLOPS <= 0 || r.MFU <= 0 || r.MFU > 1 {
		t.Errorf("derived metrics wrong: %+v", r)
	}
}
