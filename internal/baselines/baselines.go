// Package baselines implements the seven systems the paper compares
// against (Appendix B): PyTorch DDP, Megatron tensor parallelism, ZeRO-2,
// ZeRO-3, ZeRO-Offload, ZeRO-Infinity and FSDP-CPU-Offload. Each provides
// a memory model (what fits) and a schedule (how long an iteration takes),
// built from the published system designs and the shared hardware
// calibration — nothing here reads the paper's result numbers.
package baselines

import (
	"fmt"

	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

// Memory-model constants. Each captures one documented framework
// behaviour; Fig. 13's capacity points emerge from these, they are not
// per-figure tuned.
const (
	// fragFactor is allocator fragmentation + framework temporaries
	// applied to resident model states.
	fragFactor = 1.1
	// adamTransientBytesPerParam is the transient peak of an unfused
	// GPU-resident mixed-precision Adam step: PyTorch materializes the
	// bias-corrected m̂ and v̂ (2 × fp32) out-of-place.
	adamTransientBytesPerParam = 8.0
	// gradTransientBytesPerParam covers ZeRO-family gradient machinery:
	// contiguous-gradient buffers and in-flight reduce/offload buckets
	// coexisting with the fp16 gradients.
	gradTransientBytesPerParam = 1.5
	// tpOverheadFactor covers Megatron's TP communication buffers and
	// the embedding/norm duplication TP cannot shard.
	tpOverheadFactor = 1.35
	// shardTransientBytesPerParam is the per-shard step/collective
	// transient for sharded systems (Megatron, ZeRO-3): fused fp32
	// update temporaries.
	shardTransientBytesPerParam = 4.0
	// zero3Factor covers ZeRO-3's per-layer all-gather working set and
	// prefetch buffers on top of the sharded 16Ψ/N states.
	zero3Factor = 1.25
	// exposedCollectiveFrac is the fraction of data-parallel collective
	// time not hidden behind compute (bucketed overlap hides the rest).
	exposedCollectiveFrac = 0.3
)

// gpuOnlyFits is the shared capacity check for systems whose model states
// live entirely in HBM. statesPerParam is the per-rank resident bytes per
// parameter; transient adds step-transient bytes per parameter.
func gpuOnlyFits(chip hw.Chip, m model.Config, statesPerParam, transientPerParam float64, shard int64, micro, seq int, ckpt bool) bool {
	resident := statesPerParam*float64(shard)*fragFactor + transientPerParam*float64(shard)
	act := float64(m.ActivationBytes(micro, seq, ckpt))
	return int64(resident+act)+hw.GPUMemoryOverheadBytes <= chip.GPU.MemBytes
}

// gpuComputeIter returns iteration time for a GPU-resident schedule:
// compute (with micro-batch efficiency), the optimizer step on the GPU,
// and exposed collective time.
func gpuComputeIter(chip hw.Chip, m model.Config, e sched.Execution, seq int, optParams int64, collective float64) float64 {
	fwd, bwd := sched.ComputeTimes(chip, m, e.MicroBatch, seq, e.Checkpoint)
	eff := sched.EffBatchEfficiency(e.MicroBatch, seq)
	compute := float64(e.GradAccum) * (fwd + bwd) / eff
	return compute + hw.AdamStepTime(chip, hw.AdamGPU, optParams) + collective
}

// planGPUOnly is the shared Plan skeleton for DDP/ZeRO-2/ZeRO-3/Megatron.
func planGPUOnly(name string, w sched.Workload, fits sched.FitFunc, timeOf sched.TimeFunc) sched.Result {
	res := sched.Result{System: name, Workload: w}
	exec, ok := sched.ChooseExecution(w.PerGPUBatch(), fits, timeOf)
	if !ok {
		res.OOM = "model states + activations exceed HBM"
		return res
	}
	res.Fits = true
	res.Exec = exec
	res.MaxMicroBatchNoCkpt = maxNoCkpt(fits, w.PerGPUBatch())
	res.IterTime = timeOf(exec)
	fwd, bwd := sched.ComputeTimes(w.Cluster.Node.Chip, w.Model, exec.MicroBatch, w.Seq, exec.Checkpoint)
	busy := float64(exec.GradAccum) * (fwd + bwd) / sched.EffBatchEfficiency(exec.MicroBatch, w.Seq)
	res.GPUIdleFrac = clamp01(1 - busy/res.IterTime)
	res.Finalize(w.Cluster.Node.Chip)
	return res
}

func maxNoCkpt(fits sched.FitFunc, max int) int {
	for b := max; b >= 1; b-- {
		if fits(b, false) {
			return b
		}
	}
	return 0
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ---- PyTorch DDP ----

// DDP is standard data parallelism: full replica per GPU, all-reduce of
// gradients, GPU optimizer.
type DDP struct{}

func (DDP) Name() string { return "PyTorch DDP" }

func (d DDP) Plan(w sched.Workload) sched.Result {
	chip := w.Cluster.Node.Chip
	p := w.Model.Params()
	fits := func(micro int, ckpt bool) bool {
		return gpuOnlyFits(chip, w.Model, 16, adamTransientBytesPerParam, p, micro, w.Seq, ckpt)
	}
	timeOf := func(e sched.Execution) float64 {
		var coll float64
		if n := w.Chips(); n > 1 {
			// All-reduce of fp16 gradients, mostly overlapped.
			coll = exposedCollectiveFrac * hw.CollectiveTime(hw.AllReduce, n, 2*p, w.Cluster.DataParallelLink(n))
		}
		return gpuComputeIter(chip, w.Model, e, w.Seq, p, coll)
	}
	return planGPUOnly(d.Name(), w, fits, timeOf)
}

// ---- Megatron (tensor parallelism) ----

// Megatron shards every layer across all chips; activations are
// all-reduced twice per layer per pass.
type Megatron struct{}

func (Megatron) Name() string { return "Megatron" }

// Plan searches TP×DP decompositions ("we use a MP degree that gives the
// best performance", §5.1): tensor parallelism inside the group of tp
// ranks (preferring the intra-node fabric), data parallelism across the
// n/tp groups. Each TP group processes the data-parallel batch share
// jointly; activations shard with the model.
func (mg Megatron) Plan(w sched.Workload) sched.Result {
	res := sched.Result{System: mg.Name(), Workload: w}
	chip := w.Cluster.Node.Chip
	n := w.Chips()
	p := w.Model.Params()

	type cand struct {
		exec sched.Execution
		tp   int
		t    float64
	}
	var best *cand
	for tp := 1; tp <= n; tp *= 2 {
		if n%tp != 0 {
			continue
		}
		dp := n / tp
		shard := p / int64(tp)
		groupBatch := w.GlobalBatch / dp
		if groupBatch < 1 {
			groupBatch = 1
		}
		tpLink := w.Cluster.DataParallelLink(tp) // intra-node when tp fits a node
		dpLink := w.Cluster.DataParallelLink(n)

		fits := func(micro int, ckpt bool) bool {
			statesPerParam := 16.0 * tpOverheadFactor
			transient := shardTransientBytesPerParam
			if tp == 1 {
				statesPerParam, transient = 16, adamTransientBytesPerParam
			}
			resident := statesPerParam*float64(shard)*fragFactor + transient*float64(shard)
			act := float64(w.Model.ActivationBytes(micro, w.Seq, ckpt)) / float64(tp)
			return int64(resident+act)+hw.GPUMemoryOverheadBytes <= chip.GPU.MemBytes
		}
		timeOf := func(e sched.Execution) float64 {
			// TP shrinks per-rank GEMMs; effective hidden drops
			// with √tp, lowering achievable efficiency.
			effHidden := int(float64(w.Model.Hidden) / sqrtf(tp))
			ach := hw.AchievableGPUFLOPS(chip, effHidden, w.Seq)
			flops := w.Model.IterFLOPs(e.MicroBatch, w.Seq) / float64(tp)
			if e.Checkpoint {
				flops *= 4.0 / 3.0
			}
			compute := float64(e.GradAccum) * flops / ach / sched.EffBatchEfficiency(e.MicroBatch, w.Seq)
			var comm float64
			if tp > 1 {
				// 4 activation all-reduces per layer per
				// micro-step (2 fwd + 2 bwd), fully exposed.
				actBytes := int64(2 * e.MicroBatch * w.Seq * w.Model.Hidden)
				per := hw.CollectiveTime(hw.AllReduce, tp, actBytes, tpLink)
				comm += float64(e.GradAccum) * 4 * float64(w.Model.Layers) * per
			}
			if dp > 1 {
				comm += exposedCollectiveFrac * hw.CollectiveTime(hw.AllReduce, dp, 2*shard, dpLink)
			}
			return compute + comm + hw.AdamStepTime(chip, hw.AdamGPU, shard)
		}
		exec, ok := sched.ChooseExecution(groupBatch, fits, timeOf)
		if !ok {
			continue
		}
		t := timeOf(exec)
		if best == nil || t < best.t {
			best = &cand{exec: exec, tp: tp, t: t}
		}
	}
	if best == nil {
		res.OOM = "no TP degree fits (shards + activations exceed HBM)"
		return res
	}
	res.Fits = true
	res.Exec = best.exec
	res.IterTime = best.t
	res.GPUIdleFrac = 0 // TP stalls are comm-bound, not idle-timed here
	res.Finalize(chip)
	return res
}

func sqrtf(n int) float64 {
	x := float64(n)
	z := x / 2
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// ---- ZeRO-2 ----

// ZeRO2 shards gradients and optimizer states across ranks but keeps a
// full fp16 parameter replica per GPU.
type ZeRO2 struct{}

func (ZeRO2) Name() string { return "ZeRO-2" }

func (z ZeRO2) Plan(w sched.Workload) sched.Result {
	chip := w.Cluster.Node.Chip
	n := int64(w.Chips())
	p := w.Model.Params()
	fits := func(micro int, ckpt bool) bool {
		resident := (2*float64(p) + 14*float64(p)/float64(n)) * fragFactor
		resident += gradTransientBytesPerParam * float64(p)
		if n == 1 {
			resident += adamTransientBytesPerParam * float64(p)
		}
		act := float64(w.Model.ActivationBytes(micro, w.Seq, ckpt))
		return int64(resident+act)+hw.GPUMemoryOverheadBytes <= chip.GPU.MemBytes
	}
	timeOf := func(e sched.Execution) float64 {
		var coll float64
		if n > 1 {
			link := w.Cluster.DataParallelLink(int(n))
			coll = exposedCollectiveFrac * (hw.CollectiveTime(hw.ReduceScatter, int(n), 2*p, link) +
				hw.CollectiveTime(hw.AllGather, int(n), 2*p, link))
		}
		return gpuComputeIter(chip, w.Model, e, w.Seq, p/n, coll)
	}
	return planGPUOnly(z.Name(), w, fits, timeOf)
}

// ---- ZeRO-3 ----

// ZeRO3 additionally shards parameters; layers are all-gathered on the
// fly in both passes.
type ZeRO3 struct{}

func (ZeRO3) Name() string { return "ZeRO-3" }

func (z ZeRO3) Plan(w sched.Workload) sched.Result {
	chip := w.Cluster.Node.Chip
	n := w.Chips()
	p := w.Model.Params()
	shard := p / int64(n)
	fits := func(micro int, ckpt bool) bool {
		if n == 1 {
			return gpuOnlyFits(chip, w.Model, 16, adamTransientBytesPerParam, shard, micro, w.Seq, ckpt)
		}
		return gpuOnlyFits(chip, w.Model, 16*zero3Factor, shardTransientBytesPerParam, shard, micro, w.Seq, ckpt)
	}
	timeOf := func(e sched.Execution) float64 {
		var coll float64
		if n > 1 {
			link := w.Cluster.DataParallelLink(n)
			// Parameter all-gathers in forward and backward plus
			// gradient reduce-scatter; prefetch overlaps most.
			coll = exposedCollectiveFrac * (2*hw.CollectiveTime(hw.AllGather, n, 2*p, link) +
				hw.CollectiveTime(hw.ReduceScatter, n, 2*p, link))
		}
		return gpuComputeIter(chip, w.Model, e, w.Seq, shard, coll)
	}
	return planGPUOnly(z.Name(), w, fits, timeOf)
}

// ---- All ----

// All returns every baseline in the paper's comparison order.
func All() []sched.System {
	return []sched.System{DDP{}, Megatron{}, ZeRO2{}, ZeRO3{}, ZeROOffload{}, ZeROInfinity{}, FSDPOffload{}}
}

// ByName resolves a baseline by display name.
func ByName(name string) (sched.System, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown system %q", name)
}
