package act

import (
	"sync"
	"testing"

	"superoffload/internal/hw"
)

// TestTelemetryPollDuringClose hammers Telemetry from a poller
// goroutine while the store spills a pass and then Closes — the
// observability endpoint's access pattern. Run with -race: the test's
// assertion is the detector staying quiet, plus monotone counters.
func TestTelemetryPollDuringClose(t *testing.T) {
	s, err := NewStore(Config{
		Tier: NVMe, Dir: t.TempDir(), ResidentLayers: 2,
		Spec: hw.DefaultSuperchip(), Hidden: 8, Params: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Telemetry
		for {
			select {
			case <-stop:
				return
			default:
			}
			tel := s.Telemetry()
			if tel.Spills < last.Spills || tel.Fetches < last.Fetches {
				t.Errorf("telemetry went backwards: %+v after %+v", tel, last)
				return
			}
			last = tel
		}
	}()

	const layers = 8
	for pass := 0; pass < 20; pass++ {
		s.BeginPass(layers, 4, 4)
		for l := 0; l < layers; l++ {
			s.StashLayer(l, [][]float32{make([]float32, 16)})
		}
		for l := layers - 1; l >= 0; l-- {
			s.FetchLayer(l)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Post-Close polling must stay safe too (the HTTP server may outlive
	// the engine).
	if tel := s.Telemetry(); tel.Passes != 20 {
		t.Errorf("Passes = %d, want 20", tel.Passes)
	}
}
