package act

import "superoffload/internal/obs"

var _ obs.Source = Telemetry{}

// Samples publishes the activation tier's counters as superoffload_act_*
// metrics, implementing obs.Source. A Telemetry value is a point-in-time
// snapshot; register a live reading through an obs.Provider closure over
// Store.Telemetry.
func (t Telemetry) Samples() []obs.Sample {
	c := func(name string, v float64) obs.Sample {
		return obs.Sample{Name: "superoffload_act_" + name, Kind: obs.KindCounter, Value: v}
	}
	return []obs.Sample{
		c("passes_total", float64(t.Passes)),
		c("spills_total", float64(t.Spills)),
		c("fetches_total", float64(t.Fetches)),
		c("spilled_bytes_total", float64(t.BytesSpilled)),
		c("fetched_bytes_total", float64(t.BytesFetched)),
		c("write_seconds_total", t.WriteSeconds),
		c("read_seconds_total", t.ReadSeconds),
		c("stall_seconds_total", t.StallSeconds),
		c("compute_seconds_total", t.ComputeSeconds),
	}
}
