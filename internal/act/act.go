// Package act is the activation offloading tier: an SSDTrain-style
// store that spills each transformer layer's forward activations out of
// the resident replica as the forward pass's write-behind window slides
// past them, and prefetches them back ahead of the backward pass with
// async double buffering (at most two reads in flight).
//
// Two backing tiers share one store: a DRAM cache (host memory over the
// modeled C2C link) and a file-backed NVMe tier (real file IO, modeled
// flash rates). Both run the same FIFO worker and the same virtual
// dev/cpu clocks as stv.NVMeStore, so telemetry reports the same
// pipelined-vs-serialized contrast: PipelinedSeconds is compute plus
// the prefetch stalls the double buffer could not hide, SerializedSeconds
// is what a blocking store would have cost.
//
// Spilling is numerically invisible. Restores copy back the exact bytes
// spilled (float32 end to end, no recompute, no rounding), and spilled
// buffers are poisoned with NaN until their fetch so that any read of a
// non-resident activation corrupts the loss loudly instead of silently.
package act

import (
	"fmt"
	"math"
	"os"
	"sync"

	"superoffload/internal/hw"
	"superoffload/internal/obs"
)

// Tier selects the spill destination.
type Tier int

const (
	// DRAM spills into a host-memory cache over the C2C link.
	DRAM Tier = iota
	// NVMe spills into a backing file at modeled flash rates.
	NVMe
)

// String names the tier the way the facade's -act-offload flag spells it.
func (t Tier) String() string {
	if t == NVMe {
		return "nvme"
	}
	return "dram"
}

// Config parameterizes a Store.
type Config struct {
	// Tier is the backing tier (DRAM cache or file-backed NVMe).
	Tier Tier
	// Dir is the NVMe tier's backing directory (empty: the OS temp dir).
	// Ignored by the DRAM tier.
	Dir string
	// ResidentLayers is the write-behind window W: the W most recent
	// forward layers stay resident, everything older spills. The floor
	// is 2 (the backward always needs the layer it is differentiating
	// while the next fetch is in flight); values below it are raised.
	ResidentLayers int
	// Spec is the hardware model charging the virtual clocks (zero value:
	// hw.DefaultSuperchip).
	Spec hw.SuperchipSpec
	// Hidden and Params describe the replica whose forward/backward feed
	// the compute clock.
	Hidden int
	Params int64
	// Tracer, when non-nil, gives the store a trace track carrying the
	// worker's wall-clock IO spans and the consumer-side
	// spill/prefetch/stall instants. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// TrackLabel names the store's trace track (default "act").
	TrackLabel string
}

// Telemetry is the store's cumulative modeled-time and traffic
// accounting. Seconds are virtual (hw-throttled), never wall clock;
// multi-rank engines sum per-rank figures.
type Telemetry struct {
	// Passes counts forward passes begun (redo passes included).
	Passes int
	// Spills and Fetches count layer writes and reads; BytesSpilled and
	// BytesFetched their traffic.
	Spills       int
	Fetches      int
	BytesSpilled int64
	BytesFetched int64
	// WriteSeconds and ReadSeconds are modeled tier-transfer times.
	WriteSeconds float64
	ReadSeconds  float64
	// StallSeconds is prefetch time the double buffer could not hide:
	// the backward sat idle waiting for a layer's read to land.
	StallSeconds float64
	// ComputeSeconds is modeled forward plus backward time observed at
	// the layer boundaries (the final layer's backward has no subsequent
	// boundary, so backward contributes (L-1)/L of its total).
	ComputeSeconds float64
}

// PipelinedSeconds is the modeled wall time with the store's async
// engine overlapping compute: compute plus unhidden stalls.
func (t Telemetry) PipelinedSeconds() float64 { return t.ComputeSeconds + t.StallSeconds }

// SerializedSeconds is the blocking-store reference: compute plus every
// transfer end to end.
func (t Telemetry) SerializedSeconds() float64 {
	return t.ComputeSeconds + t.WriteSeconds + t.ReadSeconds
}

// Add accumulates another store's telemetry (per-rank stores of a
// multi-rank engine sum into one figure; Passes, equal across ranks,
// take the max).
func (t Telemetry) Add(o Telemetry) Telemetry {
	return Telemetry{
		Passes:         max(t.Passes, o.Passes),
		Spills:         t.Spills + o.Spills,
		Fetches:        t.Fetches + o.Fetches,
		BytesSpilled:   t.BytesSpilled + o.BytesSpilled,
		BytesFetched:   t.BytesFetched + o.BytesFetched,
		WriteSeconds:   t.WriteSeconds + o.WriteSeconds,
		ReadSeconds:    t.ReadSeconds + o.ReadSeconds,
		StallSeconds:   t.StallSeconds + o.StallSeconds,
		ComputeSeconds: t.ComputeSeconds + o.ComputeSeconds,
	}
}

// op is one queued store transfer. The worker performs file IO for the
// NVMe tier and is a pure completion marker for the DRAM tier (whose
// host copy happens synchronously at enqueue, before the originals are
// poisoned); doneAt is the op's completion on the virtual clocks.
type op struct {
	off    int64
	buf    []byte
	write  bool
	io     bool
	doneAt float64
	done   chan struct{}
}

// layerState tracks one forward layer within the current pass.
type layerState struct {
	bufs     [][]float32
	bytes    int64
	spilled  bool
	restored bool
	read     *op
}

// record is a layer index's backing slot, reused across passes: a file
// region + IO buffer on the NVMe tier, a host slice on the DRAM tier.
// last is the newest op touching the slot; spills wait it out before
// re-encoding so a pass abandoned mid-flight (an STV redo) can never
// race the worker.
type record struct {
	off  int64
	cap  int64
	buf  []byte
	host []float32
	last *op
}

// Store spills per-layer forward activations behind a resident window
// and prefetches them ahead of backward. It implements nn.ActivationTap.
// All methods are called from the holder's training goroutine; the only
// concurrency is the store's own IO worker, which never takes the mutex.
type Store struct {
	cfg  Config
	file *os.File
	path string
	ops  chan *op
	wg   sync.WaitGroup
	// track is the store's trace timeline (nil when tracing is off);
	// immutable after construction, so the worker reads it lock-free.
	track *obs.Track

	errMu sync.Mutex
	ioErr error

	mu       sync.Mutex
	closed   bool
	layers   []*layerState
	recs     map[int]*record
	end      int64
	begun    bool
	bwd      bool
	next     int // next spilled layer to prefetch (descending)
	inflight int
	layerFwd float64
	layerBwd float64
	dev, cpu float64
	tel      Telemetry
}

// NewStore opens a store. The NVMe tier creates its backing file
// immediately so configuration errors surface at setup, not mid-step.
func NewStore(cfg Config) (*Store, error) {
	if cfg.ResidentLayers < 2 {
		cfg.ResidentLayers = 2
	}
	cfg.Spec = cfg.Spec.OrDefault()
	s := &Store{
		cfg:  cfg,
		ops:  make(chan *op, 64),
		recs: make(map[int]*record),
	}
	if cfg.Tracer != nil {
		label := cfg.TrackLabel
		if label == "" {
			label = "act"
		}
		s.track = cfg.Tracer.Track(label)
	}
	if cfg.Tier == NVMe {
		f, err := os.CreateTemp(cfg.Dir, "superoffload-act-*.dat")
		if err != nil {
			return nil, fmt.Errorf("act: create backing file: %w", err)
		}
		s.file, s.path = f, f.Name()
	}
	s.wg.Add(1)
	go s.worker()
	return s, nil
}

// worker drains the op queue in FIFO order, latching the first IO error
// (surfaced by the next store call) rather than crashing mid-drain.
func (s *Store) worker() {
	defer s.wg.Done()
	for o := range s.ops {
		if o.io {
			var err error
			var sp obs.Span
			if o.write {
				if s.track != nil {
					sp = s.track.Begin("write")
				}
				_, err = s.file.WriteAt(o.buf, o.off)
			} else {
				if s.track != nil {
					sp = s.track.Begin("read")
				}
				_, err = s.file.ReadAt(o.buf, o.off)
			}
			if s.track != nil {
				sp.EndInt("bytes", len(o.buf))
			}
			if err != nil {
				s.errMu.Lock()
				if s.ioErr == nil {
					s.ioErr = err
				}
				s.errMu.Unlock()
			}
		}
		close(o.done)
	}
}

func (s *Store) checkIOErr() {
	s.errMu.Lock()
	err := s.ioErr
	s.errMu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("act: backing IO failed: %v", err))
	}
}

// Resident returns the effective write-behind window W.
func (s *Store) Resident() int { return s.cfg.ResidentLayers }

// OnNVMe reports whether the store spills to the flash tier.
func (s *Store) OnNVMe() bool { return s.cfg.Tier == NVMe }

// Path returns the NVMe tier's backing file path ("" for DRAM).
func (s *Store) Path() string { return s.path }

// BeginPass starts a forward pass over the given depth and local shape
// (tokens is this holder's batch rows × positions; seq the attention
// span feeding the GEMM model). Any previous pass's state is dropped —
// an STV redo abandons its half-spilled pass simply by beginning the
// next one; in-flight ops from it are fenced by each record's last op.
func (s *Store) BeginPass(layers, tokens, seq int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic("act: begin pass after Close")
	}
	s.checkIOErr()
	s.layers = make([]*layerState, 0, layers)
	s.begun, s.bwd = true, false
	s.inflight, s.next = 0, -1
	bwd := s.cfg.Spec.BackwardTime(s.cfg.Params, tokens, s.cfg.Hidden, seq)
	s.layerBwd = bwd / float64(max(layers, 1))
	s.layerFwd = s.layerBwd / 2
	s.tel.Passes++
}

// StashLayer hands the store layer l's forward activation buffers, in
// forward order. The slices alias the model's caches: once the window
// slides past the layer, the store copies them to the backing tier,
// poisons the originals with NaN, and restores them in FetchLayer.
func (s *Store) StashLayer(l int, bufs [][]float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic(fmt.Sprintf("act: stash of layer %d after Close", l))
	}
	s.checkIOErr()
	if !s.begun || l != len(s.layers) {
		panic(fmt.Sprintf("act: stash of layer %d out of order (have %d, begun=%v)", l, len(s.layers), s.begun))
	}
	var bytes int64
	for _, b := range bufs {
		bytes += 4 * int64(len(b))
	}
	s.layers = append(s.layers, &layerState{bufs: bufs, bytes: bytes})
	s.cpu += s.layerFwd
	s.tel.ComputeSeconds += s.layerFwd
	if spill := l - s.cfg.ResidentLayers; spill >= 0 {
		s.spillLocked(spill)
	}
}

// spillLocked writes layer l to the backing tier and poisons its
// buffers. The encode (NVMe) or host copy (DRAM) happens here, under
// the mutex and after fencing the record's previous op, so the worker
// only ever touches bytes no one else is writing.
func (s *Store) spillLocked(l int) {
	ls := s.layers[l]
	rec := s.recs[l]
	if rec == nil {
		rec = &record{off: -1}
		s.recs[l] = rec
	}
	if rec.last != nil {
		<-rec.last.done
		rec.last = nil
	}
	if s.cfg.Tier == NVMe {
		if rec.cap < ls.bytes {
			rec.off, rec.cap = s.end, ls.bytes
			rec.buf = make([]byte, ls.bytes)
			s.end += ls.bytes
		}
		encode(rec.buf, ls.bufs)
	} else {
		if rec.cap < ls.bytes {
			rec.cap = ls.bytes
			rec.host = make([]float32, ls.bytes/4)
		}
		n := 0
		for _, b := range ls.bufs {
			n += copy(rec.host[n:], b)
		}
	}
	dur := s.writeTime(ls.bytes)
	o := &op{off: rec.off, write: true, io: s.cfg.Tier == NVMe, done: make(chan struct{})}
	if o.io {
		o.buf = rec.buf[:ls.bytes]
	}
	o.doneAt = math.Max(s.dev, s.cpu) + dur
	s.dev = o.doneAt
	rec.last = o
	s.ops <- o
	poison(ls.bufs)
	ls.spilled = true
	s.tel.Spills++
	s.tel.BytesSpilled += ls.bytes
	s.tel.WriteSeconds += dur
	s.track.InstantInt("spill", "layer", l)
}

// FetchLayer blocks until layer l's activations are back in their
// original buffers, issuing depth-2 prefetches for the layers backward
// will need next. Call it for every layer, resident or not, at the top
// of its backward step (descending order): resident layers only charge
// the compute clock that paces the prefetcher.
func (s *Store) FetchLayer(l int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic(fmt.Sprintf("act: fetch of layer %d after Close", l))
	}
	s.checkIOErr()
	if !s.begun || l < 0 || l >= len(s.layers) {
		panic(fmt.Sprintf("act: fetch of layer %d outside pass of %d layers", l, len(s.layers)))
	}
	if !s.bwd {
		// Backward begins at the top layer; prefetch walks the spilled
		// ones down from the highest.
		s.bwd = true
		s.next = len(s.layers) - s.cfg.ResidentLayers - 1
	} else {
		// The layer above this one just ran its backward.
		s.cpu += s.layerBwd
		s.tel.ComputeSeconds += s.layerBwd
	}
	s.topUpLocked()
	ls := s.layers[l]
	if !ls.spilled || ls.restored {
		return
	}
	if ls.read == nil {
		// Prefetch missed it (out-of-window fetch order); read it now.
		s.issueReadLocked(l)
	}
	o := ls.read
	if o.doneAt > s.cpu {
		s.tel.StallSeconds += o.doneAt - s.cpu
		s.cpu = o.doneAt
		s.track.InstantInt("stall", "layer", l)
	}
	s.mu.Unlock()
	<-o.done
	s.mu.Lock()
	s.checkIOErr()
	rec := s.recs[l]
	if s.cfg.Tier == NVMe {
		decode(ls.bufs, rec.buf)
	} else {
		n := 0
		for _, b := range ls.bufs {
			n += copy(b, rec.host[n:n+len(b)])
		}
	}
	ls.restored = true
	ls.read = nil
	s.inflight--
	s.topUpLocked()
}

// topUpLocked keeps up to two prefetch reads in flight, walking the
// spilled layers in the order backward consumes them.
func (s *Store) topUpLocked() {
	for s.inflight < 2 && s.next >= 0 {
		if ls := s.layers[s.next]; ls.spilled && !ls.restored && ls.read == nil {
			s.issueReadLocked(s.next)
		}
		s.next--
	}
}

// issueReadLocked enqueues layer l's fetch. The worker's FIFO order
// guarantees the layer's spill write lands before the read; the read
// decodes from the record's own buffer, so it cannot race a later
// spill either (those fence on rec.last).
func (s *Store) issueReadLocked(l int) {
	ls := s.layers[l]
	rec := s.recs[l]
	dur := s.readTime(ls.bytes)
	o := &op{off: rec.off, io: s.cfg.Tier == NVMe, done: make(chan struct{})}
	if o.io {
		o.buf = rec.buf[:ls.bytes]
	}
	o.doneAt = math.Max(s.dev, s.cpu) + dur
	s.dev = o.doneAt
	rec.last = o
	ls.read = o
	s.inflight++
	s.ops <- o
	s.tel.Fetches++
	s.tel.BytesFetched += ls.bytes
	s.tel.ReadSeconds += dur
	s.track.InstantInt("prefetch", "layer", l)
}

func (s *Store) writeTime(bytes int64) float64 {
	if s.cfg.Tier == NVMe {
		return s.cfg.Spec.NVMe.WriteTime(bytes)
	}
	return s.cfg.Spec.Chip.Link.TransferTime(bytes, hw.DeviceToHost, hw.Pinned)
}

func (s *Store) readTime(bytes int64) float64 {
	if s.cfg.Tier == NVMe {
		return s.cfg.Spec.NVMe.ReadTime(bytes)
	}
	return s.cfg.Spec.Chip.Link.TransferTime(bytes, hw.HostToDevice, hw.Pinned)
}

// Telemetry snapshots the cumulative counters.
func (s *Store) Telemetry() Telemetry {
	if s == nil {
		return Telemetry{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel
}

// Close waits out every in-flight op, then deletes the NVMe backing
// file. Idempotent; any further store call panics with a clear message.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.ops)
	s.wg.Wait()
	s.errMu.Lock()
	err := s.ioErr
	s.errMu.Unlock()
	if s.file != nil {
		if cerr := s.file.Close(); err == nil {
			err = cerr
		}
		if rerr := os.Remove(s.path); err == nil {
			err = rerr
		}
	}
	return err
}

// encode packs the buffers' float32 bits little-endian into dst —
// bit-exact round-tripping, NaN payloads included.
func encode(dst []byte, bufs [][]float32) {
	n := 0
	for _, b := range bufs {
		for _, v := range b {
			bits := math.Float32bits(v)
			dst[n] = byte(bits)
			dst[n+1] = byte(bits >> 8)
			dst[n+2] = byte(bits >> 16)
			dst[n+3] = byte(bits >> 24)
			n += 4
		}
	}
}

// decode is encode's inverse, restoring the exact spilled bits.
func decode(bufs [][]float32, src []byte) {
	n := 0
	for _, b := range bufs {
		for i := range b {
			bits := uint32(src[n]) | uint32(src[n+1])<<8 | uint32(src[n+2])<<16 | uint32(src[n+3])<<24
			b[i] = math.Float32frombits(bits)
			n += 4
		}
	}
}

// actPoison is the NaN spilled buffers hold until their fetch: any use
// of a non-resident activation poisons the loss instead of silently
// training on stale data.
var actPoison = math.Float32frombits(0x7fc0dead)

func poison(bufs [][]float32) {
	for _, b := range bufs {
		for i := range b {
			b[i] = actPoison
		}
	}
}
