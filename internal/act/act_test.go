package act

import (
	"math"
	"os"
	"strings"
	"testing"
)

// fillLayer builds deterministic per-layer buffers (two slices per
// layer, values encoding layer/buffer/index so corruption is traceable).
func fillLayer(l int) [][]float32 {
	bufs := [][]float32{make([]float32, 96), make([]float32, 33)}
	for bi, b := range bufs {
		for i := range b {
			b[i] = float32(l*1000+bi*100) + float32(i)*0.25
		}
	}
	return bufs
}

func runPass(t *testing.T, s *Store, layers int) [][][]float32 {
	t.Helper()
	s.BeginPass(layers, 64, 16)
	bufs := make([][][]float32, layers)
	want := make([][][]float32, layers)
	for l := 0; l < layers; l++ {
		bufs[l] = fillLayer(l)
		want[l] = fillLayer(l)
		s.StashLayer(l, bufs[l])
	}
	// Spilled layers must be poisoned, resident ones untouched.
	spilled := layers - s.Resident()
	for l := 0; l < layers; l++ {
		v := bufs[l][0][0]
		if l < spilled && !math.IsNaN(float64(v)) {
			t.Fatalf("layer %d: spilled buffer not poisoned (got %v)", l, v)
		}
		if l >= spilled && math.IsNaN(float64(v)) {
			t.Fatalf("layer %d: resident buffer poisoned", l)
		}
	}
	// Backward: every layer restored bit-exactly.
	for l := layers - 1; l >= 0; l-- {
		s.FetchLayer(l)
		for bi, b := range bufs[l] {
			for i, v := range b {
				if got, w := math.Float32bits(v), math.Float32bits(want[l][bi][i]); got != w {
					t.Fatalf("layer %d buf %d[%d]: got bits %#x want %#x", l, bi, i, got, w)
				}
			}
		}
	}
	return bufs
}

func TestStoreRoundTrip(t *testing.T) {
	for _, tier := range []Tier{DRAM, NVMe} {
		t.Run(tier.String(), func(t *testing.T) {
			s, err := NewStore(Config{Tier: tier, Dir: t.TempDir(), ResidentLayers: 2, Hidden: 32, Params: 1000})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// Two passes: the second reuses backing records.
			runPass(t, s, 6)
			runPass(t, s, 6)
			tel := s.Telemetry()
			if tel.Passes != 2 || tel.Spills != 8 || tel.Fetches != 8 {
				t.Fatalf("telemetry passes/spills/fetches = %d/%d/%d, want 2/8/8", tel.Passes, tel.Spills, tel.Fetches)
			}
			if tel.BytesSpilled != tel.BytesFetched || tel.BytesSpilled == 0 {
				t.Fatalf("bytes spilled %d != fetched %d", tel.BytesSpilled, tel.BytesFetched)
			}
			if tel.PipelinedSeconds() >= tel.SerializedSeconds() {
				t.Fatalf("pipelined %g not strictly under serialized %g", tel.PipelinedSeconds(), tel.SerializedSeconds())
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreAbandonedPass: an STV redo abandons a half-finished pass by
// beginning the next one. The new pass must round-trip cleanly even
// though the abandoned pass's write ops may still be in flight against
// the same backing records.
func TestStoreAbandonedPass(t *testing.T) {
	s, err := NewStore(Config{Tier: NVMe, Dir: t.TempDir(), Hidden: 32, Params: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.BeginPass(6, 64, 16)
	for l := 0; l < 6; l++ {
		s.StashLayer(l, fillLayer(l))
	}
	// Abandon mid-backward: one fetch consumed, prefetches in flight.
	s.FetchLayer(5)
	runPass(t, s, 6)
}

// TestStoreCloseWithPrefetchInFlight closes the store right after the
// first backward fetch auto-launched the double-buffered prefetches, so
// the IO worker is mid-drain while Close runs. Run under -race in CI:
// Close must wait out every queued op without racing the worker and
// still delete the backing file.
func TestStoreCloseWithPrefetchInFlight(t *testing.T) {
	for i := 0; i < 20; i++ {
		s, err := NewStore(Config{Tier: NVMe, Dir: t.TempDir(), Hidden: 32, Params: 1000})
		if err != nil {
			t.Fatal(err)
		}
		path := s.Path()
		s.BeginPass(8, 64, 16)
		for l := 0; l < 8; l++ {
			s.StashLayer(l, fillLayer(l))
		}
		// First fetch launches two prefetch reads behind it.
		s.FetchLayer(7)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("backing file %s survived Close (err=%v)", path, err)
		}
		// Close is idempotent.
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestStoreFetchAfterClose: the store is unusable after Close, and says
// so — a fetch must panic with a clear message instead of the opaque
// send-on-closed-channel the op queue would otherwise produce.
func TestStoreFetchAfterClose(t *testing.T) {
	s, err := NewStore(Config{Tier: DRAM, Hidden: 32, Params: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s.BeginPass(4, 64, 16)
	for l := 0; l < 4; l++ {
		s.StashLayer(l, fillLayer(l))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FetchLayer after Close did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "after Close") {
			t.Fatalf("FetchLayer after Close panicked with %v, want a clear after-Close message", r)
		}
	}()
	s.FetchLayer(3)
}

// TestStoreResidentFloor: windows below 2 are raised to the floor, and
// a model no deeper than the window never spills.
func TestStoreResidentFloor(t *testing.T) {
	s, err := NewStore(Config{Tier: DRAM, ResidentLayers: 1, Hidden: 32, Params: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Resident() != 2 {
		t.Fatalf("Resident() = %d, want floor 2", s.Resident())
	}
	runPass(t, s, 2)
	if tel := s.Telemetry(); tel.Spills != 0 {
		t.Fatalf("shallow model spilled %d layers", tel.Spills)
	}
}
