package stv

import (
	"math"

	"superoffload/internal/data"
)

// Gradient accumulation (§5.2's OOM-mitigation strategy 1, on the real
// trainer): run Accum micro-batches of forward+backward, staging each
// micro-batch's raw gradients and summing them one whole contribution at a
// time in micro-batch order, then apply one optimizer step over the mean
// gradient. Summing whole per-micro-batch contributions (rather than
// accumulating inside the model's gradient tensors across backward passes)
// fixes the floating-point reduction order, so an R-rank data-parallel
// engine that reduces per-rank contributions in rank order reproduces the
// accumulated update bit-for-bit. Under STV the speculative step and
// background validation fire only on the final micro-step; the previous
// step's validation still resolves at the first forward of the window,
// exactly like the single-micro-batch path.

// StepAccum runs one optimizer step over the given micro-batches. With a
// single batch it is equivalent to Step. Returns the mean loss.
func (t *Trainer) StepAccum(batches []data.Batch) (float64, error) {
	if len(t.buckets) == 0 || len(batches) == 0 {
		return 0, nil
	}
	if len(batches) == 1 {
		return t.Step(batches[0])
	}
	switch t.Cfg.Mode {
	case STE:
		return t.stepAccumSTE(batches)
	case STV:
		return t.stepAccumSTV(batches)
	}
	return t.Step(batches[0])
}

// accumMicro runs forward+backward for one micro-batch from zeroed
// gradients and stages its raw contribution into every bucket (overwriting
// on the first micro-batch, summing afterwards). Returns the micro loss.
func (t *Trainer) accumMicro(b data.Batch, first bool) float64 {
	loss, cache := t.Model.Forward(b.Tokens, b.Targets, b.BatchSize, b.Seq)
	t.Model.Params().ZeroGrads()
	t.Model.Backward(cache, t.scale())
	for _, bk := range t.buckets {
		bk.AccumGrad(first)
	}
	return loss
}

// maybeInjectStaged corrupts the accumulated staged gradient (the analogue
// of maybeInject for the per-micro staging path).
func (t *Trainer) maybeInjectStaged() {
	if t.Cfg.InjectBad != nil && t.Cfg.InjectBad(t.stepIndex) {
		t.buckets[0].grad[0] = float32(math.Inf(1))
	}
}

// finishAccum normalizes the staged sums by 1/(lossScale·n).
func (t *Trainer) finishAccum(n int) {
	t.maybeInjectStaged()
	inv := float32(1 / (t.scale() * float64(n)))
	for _, bk := range t.buckets {
		bk.ScaleGrad(inv)
	}
}

// accumTokens sums the window's batch rows × positions — the backward
// volume the placement executor charges for the accumulated step.
func accumTokens(batches []data.Batch) int {
	n := 0
	for _, b := range batches {
		n += b.BatchSize * b.Seq
	}
	return n
}

func (t *Trainer) stepAccumSTE(batches []data.Batch) (float64, error) {
	t.stepIndex++
	var loss float64
	for i, b := range batches {
		loss += t.accumMicro(b, i == 0)
	}
	loss /= float64(len(batches))
	t.finishAccum(len(batches))
	t.stats.Steps++
	v := t.validate()
	if v.bad {
		t.stats.SkipRolls++
		if t.Cfg.Scaler != nil {
			t.Cfg.Scaler.Update(true)
		}
		return loss, nil
	}
	if t.Cfg.Scaler != nil {
		t.Cfg.Scaler.Update(false)
	}
	t.applyDirectStep(v)
	t.exec.Record(accumTokens(batches), batches[0].Seq)
	return loss, nil
}

func (t *Trainer) stepAccumSTV(batches []data.Batch) (float64, error) {
	t.stepIndex++
	// Resolve the previous step's validation at the window's first
	// forward; a rollback redoes that forward (weights changed).
	var loss float64
	for {
		l0, cache0 := t.Model.Forward(batches[0].Tokens, batches[0].Targets, batches[0].BatchSize, batches[0].Seq)
		rolledBack, err := t.resolvePending()
		if err != nil {
			return 0, err
		}
		if rolledBack {
			t.stats.Redos++
			continue
		}
		// First micro-batch's backward; remaining micro-batches sum on
		// top of its staged contribution.
		t.Model.Params().ZeroGrads()
		t.Model.Backward(cache0, t.scale())
		for _, bk := range t.buckets {
			bk.AccumGrad(true)
		}
		loss = l0
		break
	}
	for _, b := range batches[1:] {
		loss += t.accumMicro(b, false)
	}
	loss /= float64(len(batches))
	t.finishAccum(len(batches))
	adam := t.stepAdam()
	for _, bk := range t.buckets {
		bk.SpeculativeStep(adam, t.Cfg.Impl)
	}
	t.stats.Steps++
	t.exec.Record(accumTokens(batches), batches[0].Seq)
	t.launchValidation()
	t.lastLoss = loss
	return loss, nil
}
