package stv

import (
	"superoffload/internal/data"
)

// Gradient accumulation (§5.2's OOM-mitigation strategy 1, on the real
// trainer): run Accum micro-batches of forward+backward, accumulating
// gradients on the model, then apply one optimizer step over the mean
// gradient. Under STV the speculative step and background validation fire
// only on the final micro-step; the previous step's validation still
// resolves at the first forward of the window, exactly like the
// single-micro-batch path.

// StepAccum runs one optimizer step over the given micro-batches. With a
// single batch it is equivalent to Step. Returns the mean loss.
func (t *Trainer) StepAccum(batches []data.Batch) (float64, error) {
	if len(t.buckets) == 0 || len(batches) == 0 {
		return 0, nil
	}
	if len(batches) == 1 {
		return t.Step(batches[0])
	}
	switch t.Cfg.Mode {
	case STE:
		return t.stepAccumSTE(batches)
	case STV:
		return t.stepAccumSTV(batches)
	}
	return t.Step(batches[0])
}

// accumBackward runs forward+backward over all micro-batches without
// zeroing in between and stages the mean unscaled gradients.
func (t *Trainer) accumBackward(batches []data.Batch) float64 {
	t.Model.Params().ZeroGrads()
	var lossSum float64
	for _, b := range batches {
		loss, cache := t.Model.Forward(b.Tokens, b.Targets, b.BatchSize, b.Seq)
		t.Model.Backward(cache, t.scale())
		lossSum += loss
	}
	t.maybeInject()
	inv := float32(1 / (t.scale() * float64(len(batches))))
	for _, bk := range t.buckets {
		bk.stageGrads(inv)
	}
	return lossSum / float64(len(batches))
}

func (t *Trainer) stepAccumSTE(batches []data.Batch) (float64, error) {
	t.stepIndex++
	loss := t.accumBackward(batches)
	t.stats.Steps++
	v := t.validate()
	if v.bad {
		t.stats.SkipRolls++
		if t.Cfg.Scaler != nil {
			t.Cfg.Scaler.Update(true)
		}
		return loss, nil
	}
	if t.Cfg.Scaler != nil {
		t.Cfg.Scaler.Update(false)
	}
	t.applyDirectStep(v)
	return loss, nil
}

func (t *Trainer) stepAccumSTV(batches []data.Batch) (float64, error) {
	t.stepIndex++
	// Resolve the previous step's validation at the window's first
	// forward; a rollback redoes that forward (weights changed).
	var loss float64
	for {
		l0, cache0 := t.Model.Forward(batches[0].Tokens, batches[0].Targets, batches[0].BatchSize, batches[0].Seq)
		rolledBack, err := t.resolvePending()
		if err != nil {
			return 0, err
		}
		if rolledBack {
			t.stats.Redos++
			continue
		}
		// First micro-batch's backward; remaining micro-batches
		// accumulate on top.
		t.Model.Params().ZeroGrads()
		t.Model.Backward(cache0, t.scale())
		loss = l0
		break
	}
	for _, b := range batches[1:] {
		l, cache := t.Model.Forward(b.Tokens, b.Targets, b.BatchSize, b.Seq)
		t.Model.Backward(cache, t.scale())
		loss += l
	}
	loss /= float64(len(batches))
	t.maybeInject()
	inv := float32(1 / (t.scale() * float64(len(batches))))
	for _, bk := range t.buckets {
		bk.stageGrads(inv)
		bk.speculativeStep(t.stepAdam(), t.Cfg.Impl)
	}
	t.stats.Steps++
	t.launchValidation()
	t.lastLoss = loss
	return loss, nil
}
