package stv

import (
	"bytes"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/hw"
	"superoffload/internal/optim"
)

// mlpTestStore builds a tightly-windowed multi-path store backed by the
// test's temp dir: paths flash lanes, an optional DRAM cache tier, and a
// 2-bucket window so state streams through the per-path files for real.
func mlpTestStore(t *testing.T, paths, cache int) *MLPStore {
	t.Helper()
	s, err := NewMLPStore(MLPStoreConfig{
		Dir:             t.TempDir(),
		Paths:           hw.NodeIOPaths(paths),
		ResidentBuckets: 2,
		CacheBuckets:    cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMLPStoreSTVMatchesDRAMBitExact is the multi-path exactness claim:
// striping bucket records across two flash paths — with and without the
// DRAM cache tier in front — must not change a single bit of the
// trajectory, across both schedules and through injected-overflow
// rollbacks.
func TestMLPStoreSTVMatchesDRAMBitExact(t *testing.T) {
	inject := func(step int) bool { return step == 4 || step == 11 }
	run := func(mode Mode, store BucketStore) *Trainer {
		cfg := trainerConfig(mode)
		cfg.BucketElems = 4000
		cfg.Store = store
		cfg.InjectBad = inject
		cfg.Scaler = optim.NewLossScaler()
		tr := NewTrainer(tinyGPT(42), cfg)
		t.Cleanup(func() { tr.Close() })
		corpus := data.NewCorpus(64, 123)
		for i := 0; i < 25; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	dram := run(STV, nil)
	striped := mlpTestStore(t, 2, 0)
	mlp := run(STV, striped)
	if mlp.NumBuckets() < 3 {
		t.Fatalf("need several buckets to exercise the window, got %d", mlp.NumBuckets())
	}
	assertSameWeights(t, "STV mlp vs dram", dram.MasterWeights(), mlp.MasterWeights())
	if dram.Stats() != mlp.Stats() {
		t.Errorf("stats diverge: dram %+v vs mlp %+v", dram.Stats(), mlp.Stats())
	}
	tel := striped.Telemetry()
	for i := 0; i < 2; i++ {
		if tel.PathWriteSeconds[i] <= 0 {
			t.Errorf("path %d never wrote: %+v", i, tel)
		}
	}
	if len(tel.Events) != 0 {
		t.Errorf("healthy run logged degradation events: %+v", tel.Events)
	}

	cached := run(STV, mlpTestStore(t, 2, 2))
	assertSameWeights(t, "STV mlp+cache vs dram", dram.MasterWeights(), cached.MasterWeights())

	ste := run(STE, mlpTestStore(t, 3, 1))
	assertSameWeights(t, "STE(mlp) vs STV(dram)", ste.MasterWeights(), dram.MasterWeights())
}

// TestMLPStoreClipRollbackExact drives the clip re-execution rollback on
// multi-path-windowed state: the snapshots the rollback restores from
// have striped out to the per-path files and fetched back.
func TestMLPStoreClipRollbackExact(t *testing.T) {
	run := func(store BucketStore) *Trainer {
		cfg := trainerConfig(STV)
		cfg.BucketElems = 4000
		cfg.ClipNorm = 0.35 // clip fires nearly every step
		cfg.Schedule = WarmupCosine(5, 30, 0.1)
		cfg.Store = store
		tr := NewTrainer(tinyGPT(7), cfg)
		t.Cleanup(func() { tr.Close() })
		corpus := data.NewCorpus(64, 9)
		for i := 0; i < 30; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	dram, mlp := run(nil), run(mlpTestStore(t, 2, 2))
	if mlp.Stats().ClipRolls < 20 {
		t.Fatalf("tight clip produced only %d rollbacks; window untested", mlp.Stats().ClipRolls)
	}
	assertSameWeights(t, "clip rollback", dram.MasterWeights(), mlp.MasterWeights())
}

// TestMLPStoreCacheTier: with a DRAM cache tier in front of flash, some
// Acquires hit the cache (no flash read, no stall), so the cached run
// does strictly less flash reading than the cache-less one — while
// TestMLPStoreSTVMatchesDRAMBitExact already pinned the trajectory.
func TestMLPStoreCacheTier(t *testing.T) {
	run := func(cache int) MLPTelemetry {
		store := mlpTestStore(t, 2, cache)
		cfg := trainerConfig(STV)
		cfg.BucketElems = 4000
		cfg.Store = store
		tr := NewTrainer(tinyGPT(11), cfg)
		t.Cleanup(func() { tr.Close() })
		corpus := data.NewCorpus(64, 31)
		for i := 0; i < 10; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return store.Telemetry()
	}
	// The cache must cover the non-resident span of the cyclic bucket
	// walk, or LRU evicts every entry before its re-acquire comes around.
	plain, cached := run(0), run(32)
	if plain.CacheHits != 0 {
		t.Fatalf("cache-less store reported %d cache hits", plain.CacheHits)
	}
	if cached.CacheHits == 0 {
		t.Fatal("cache tier never hit")
	}
	if cached.Reads >= plain.Reads {
		t.Errorf("cache did not reduce flash reads: %d with cache vs %d without", cached.Reads, plain.Reads)
	}
}

// TestMLPStoreMultipathBeatsSinglePath pins the modeled performance
// claim on the real store: striping the same NVMe array over two
// independently scheduled paths strictly beats the single lane on
// pipelined step time — latency-dominated records pay their per-IO setup
// concurrently — while total hardware is conserved (hw.SplitPaths).
func TestMLPStoreMultipathBeatsSinglePath(t *testing.T) {
	run := func(paths int) StoreTelemetry {
		store, err := NewMLPStore(MLPStoreConfig{
			Dir:             t.TempDir(),
			Paths:           hw.NodeIOPaths(paths),
			ResidentBuckets: 2,
			// Compute comparable to the transfer time makes the overlap
			// and the lane contention both visible.
			ComputeTime: func(elems int) float64 { return float64(elems) * 16 / 1e9 },
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := trainerConfig(STV)
		cfg.BucketElems = 4000
		cfg.Store = store
		tr := NewTrainer(tinyGPT(3), cfg)
		t.Cleanup(func() { tr.Close() })
		corpus := data.NewCorpus(64, 5)
		for i := 0; i < 8; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		tel, ok := store.NVMeTelemetry()
		if !ok {
			t.Fatal("store reported no telemetry")
		}
		return tel
	}
	one, two := run(1), run(2)
	if one.Reads != two.Reads || one.Writes != two.Writes {
		t.Fatalf("path count changed the IO schedule: %+v vs %+v", one, two)
	}
	if two.PipelinedSeconds() >= one.PipelinedSeconds() {
		t.Errorf("2-path pipelined %.6fs not below 1-path %.6fs",
			two.PipelinedSeconds(), one.PipelinedSeconds())
	}
}

// TestCheckpointPortableAcrossFlashStores extends the cross-backend
// checkpoint property to the multi-path store: a checkpoint written
// under any of {single-lane NVMe, N-path striped, striped + DRAM cache}
// loads under the others and resumes bit-exactly, including a
// post-rollback checkpoint taken mid-schedule.
func TestCheckpointPortableAcrossFlashStores(t *testing.T) {
	const warm, cont = 9, 8
	schedule := WarmupCosine(5, warm+cont, 0.1)
	inject := func(step int) bool { return step == warm }
	mkStore := func(kind string) BucketStore {
		switch kind {
		case "dram":
			return nil
		case "nvme":
			return nvmeTestStore(t, 2)
		case "mlp":
			return mlpTestStore(t, 2, 0)
		case "mlp+cache":
			return mlpTestStore(t, 3, 2)
		}
		t.Fatalf("unknown store kind %q", kind)
		return nil
	}
	mkTrainer := func(seed uint64, kind string) *Trainer {
		cfg := trainerConfig(STV)
		cfg.BucketElems = 4000
		cfg.Schedule = schedule
		cfg.InjectBad = inject
		cfg.Scaler = optim.NewLossScaler()
		cfg.Store = mkStore(kind)
		tr := NewTrainer(tinyGPT(seed), cfg)
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	train := func(tr *Trainer, corpus *data.Corpus, steps int) {
		t.Helper()
		for i := 0; i < steps; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, dir := range []struct{ src, dst string }{
		{"nvme", "mlp"},
		{"mlp", "dram"},
		{"mlp+cache", "mlp"},
	} {
		t.Run(dir.src+"->"+dir.dst, func(t *testing.T) {
			src := mkTrainer(42, dir.src)
			corpus := data.NewCorpus(64, 77)
			train(src, corpus, warm)
			if src.Stats().SkipRolls != 1 {
				t.Fatalf("expected the injected overflow to roll back before Save, got %+v", src.Stats())
			}
			var ckpt bytes.Buffer
			if err := src.Save(&ckpt); err != nil {
				t.Fatal(err)
			}

			dst := mkTrainer(999, dir.dst) // different init: must be overwritten
			if err := dst.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatal(err)
			}
			assertSameWeights(t, "restored masters", src.MasterWeights(), dst.MasterWeights())

			srcCont := data.NewCorpus(64, 88)
			dstCont := data.NewCorpus(64, 88)
			train(src, srcCont, cont)
			train(dst, dstCont, cont)
			assertSameWeights(t, "post-resume masters", src.MasterWeights(), dst.MasterWeights())
			if src.StepIndex() != dst.StepIndex() {
				t.Errorf("step indices diverge: %d vs %d", src.StepIndex(), dst.StepIndex())
			}
		})
	}
}

// TestMLPWindowStaysBounded: residency never exceeds the configured
// window, every path receives traffic (the round-robin seed placement
// plus least-loaded dispatch actually stripe), and Close is idempotent.
func TestMLPWindowStaysBounded(t *testing.T) {
	store := mlpTestStore(t, 2, 0)
	cfg := trainerConfig(STV)
	cfg.BucketElems = 4000
	cfg.Store = store
	tr := NewTrainer(tinyGPT(3), cfg)
	if tr.NumBuckets() <= store.cfg.ResidentBuckets {
		t.Fatalf("model must split into more buckets (%d) than the window (%d)",
			tr.NumBuckets(), store.cfg.ResidentBuckets)
	}
	corpus := data.NewCorpus(64, 5)
	for i := 0; i < 10; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
		store.mu.Lock()
		res, held := len(store.resident), 0
		for _, r := range store.resident {
			if r.held {
				held++
			}
		}
		cached := len(store.cache)
		store.mu.Unlock()
		if res > store.cfg.ResidentBuckets {
			t.Fatalf("window overflow: %d resident > %d", res, store.cfg.ResidentBuckets)
		}
		if held != 0 {
			t.Fatalf("%d buckets still held between steps", held)
		}
		if cached != 0 {
			t.Fatalf("cache-less store cached %d buckets", cached)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tel := store.Telemetry()
	if tel.Reads == 0 || tel.Writes == 0 {
		t.Fatalf("state never streamed through the files: %+v", tel)
	}
	for i := 0; i < 2; i++ {
		if tel.PathReadSeconds[i] <= 0 || tel.PathWriteSeconds[i] <= 0 {
			t.Fatalf("path %d idle: reads %v writes %v", i, tel.PathReadSeconds, tel.PathWriteSeconds)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
