// Package stvtest provides the fault-injection harness for the
// multi-path bucket store's degradation tests: an Injector that wraps a
// chosen path's backing file (via stv.MLPStoreConfig.WrapPath) and
// throttles, stalls, drops, or errors its IO once the path reaches a
// chosen op count. Tests drive real training over the faulty store and
// assert the graceful-degradation contract — quarantine, re-route,
// bit-exact recovery, latched-error reporting on Close.
package stvtest

import (
	"fmt"
	"sync"
	"time"

	"superoffload/internal/stv"
)

// FaultKind selects what the injected fault does to the path's IO.
type FaultKind string

const (
	// FaultError fails every op on the path once triggered, the way a
	// dead device errors all traffic.
	FaultError FaultKind = "error"
	// FaultDrop silently discards writes (reporting success) once
	// triggered — the lost-write case the store's record checksums
	// exist to catch. Reads pass through.
	FaultDrop FaultKind = "drop"
	// FaultStall sleeps Delay on every op once triggered — a throttled
	// or hung device. The store's SlowOpWall watchdog is what turns
	// this into a quarantine.
	FaultStall FaultKind = "stall"
)

// Fault arms one injected fault: on path Path, starting with the path's
// AfterOps'th IO (counting reads and writes together from 0), behave as
// Kind; Delay parameterizes FaultStall.
type Fault struct {
	Path     int
	Kind     FaultKind
	AfterOps int
	Delay    time.Duration
}

// Injector wraps path files so armed faults fire at their op counts.
// Safe for concurrent use by the store's per-path workers.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	ops    map[int]int
}

// NewInjector arms the given faults.
func NewInjector(faults ...Fault) *Injector {
	return &Injector{faults: faults, ops: map[int]int{}}
}

// WrapPath is the stv.MLPStoreConfig.WrapPath hook.
func (in *Injector) WrapPath(path int, f stv.PathFile) stv.PathFile {
	return &faultFile{in: in, path: path, f: f}
}

// PathOps reports how many IOs the path has attempted (diagnostics).
func (in *Injector) PathOps(path int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops[path]
}

// next counts one op on the path and returns the fault to apply to it,
// if any armed fault has reached its trigger.
func (in *Injector) next(path int) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.ops[path]
	in.ops[path] = n + 1
	for _, f := range in.faults {
		if f.Path == path && n >= f.AfterOps {
			return f, true
		}
	}
	return Fault{}, false
}

// faultFile is one wrapped path file.
type faultFile struct {
	in   *Injector
	path int
	f    stv.PathFile
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if f, ok := ff.in.next(ff.path); ok {
		switch f.Kind {
		case FaultError:
			return 0, fmt.Errorf("stvtest: injected read error on path %d", ff.path)
		case FaultStall:
			time.Sleep(f.Delay)
		}
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if f, ok := ff.in.next(ff.path); ok {
		switch f.Kind {
		case FaultError:
			return 0, fmt.Errorf("stvtest: injected write error on path %d", ff.path)
		case FaultDrop:
			return len(p), nil
		case FaultStall:
			time.Sleep(f.Delay)
		}
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Close() error { return ff.f.Close() }
