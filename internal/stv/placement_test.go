package stv

import (
	"bytes"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/place"
	"superoffload/internal/tensor"
)

// runPlaced trains a fresh toy model for steps iterations under the given
// placement/store and returns the losses, stats, and final checkpoint
// bytes. A tight clip plus fault injection exercises both rollback
// scenarios, so exactness covers the full verdict surface.
func runPlaced(t *testing.T, steps int, plan *place.Plan, store BucketStore) ([]float64, Stats, []byte) {
	t.Helper()
	cfg := model.Config{Name: "place", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(11))
	a := optim.DefaultConfig()
	a.LR = 3e-3
	tr := NewTrainer(m, Config{
		Adam: a, Impl: optim.GraceAdam, ClipNorm: 0.9,
		BucketElems: 4096, Mode: STV, Store: store,
		Placement: plan,
		InjectBad: func(step int) bool { return step == 4 },
	})
	defer func() {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	corpus := data.NewCorpus(cfg.Vocab, 13)
	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		l, err := tr.Step(corpus.NextBatch(4, 16))
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, l)
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := tr.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	return losses, tr.Stats(), ckpt.Bytes()
}

// placementBuckets is the toy partition size for hidden 64 / 4096-elem
// buckets (asserted inside the test so plan sizes stay in sync).
const placementBuckets = 19

// TestPlacementBitExact asserts the tentpole contract: any placement
// plan — all-GPU, all-CPU, the auto split, and the split with an NVMe
// body through a PlacedStore — trains bit-identically to the homogeneous
// trainer: same losses, same rollback stats, byte-identical checkpoints.
func TestPlacementBitExact(t *testing.T) {
	const steps = 24
	refLosses, refStats, refCkpt := runPlaced(t, steps, nil, nil)
	if refStats.Rollbacks() == 0 {
		t.Fatal("reference run produced no rollbacks; the exactness test is not exercising the verdict surface")
	}

	split := place.GPUTail(placementBuckets, 3)
	nvmePlan := split.WithNVMeBody()
	nvmeStore, err := NewPlacedStore(nvmePlan, NVMeStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		plan  place.Plan
		store BucketStore
	}{
		{"all-cpu", place.Uniform(placementBuckets, place.CPUAdam), nil},
		{"all-gpu", place.Uniform(placementBuckets, place.GPUResident), nil},
		{"gpu-tail", split, nil},
		{"gpu-tail+nvme", nvmePlan, nvmeStore},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := tc.plan
			losses, stats, ckpt := runPlaced(t, steps, &plan, tc.store)
			for i := range refLosses {
				if losses[i] != refLosses[i] {
					t.Fatalf("loss diverged at step %d: %v vs homogeneous %v", i, losses[i], refLosses[i])
				}
			}
			if stats != refStats {
				t.Fatalf("stats diverged: %+v vs homogeneous %+v", stats, refStats)
			}
			if !bytes.Equal(ckpt, refCkpt) {
				t.Fatal("checkpoint bytes diverged from the homogeneous trainer")
			}
		})
	}
}

// TestPlacementTelemetry checks the executor's accounting: bucket
// censuses match the plan, every recorded step charges time, pipelined
// never exceeds serialized, and the homogeneous trainer reports none.
func TestPlacementTelemetry(t *testing.T) {
	const steps = 6
	plan := place.GPUTail(placementBuckets, 3)
	cfg := model.Config{Name: "place", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(11))
	tr := NewTrainer(m, Config{
		Adam: optim.DefaultConfig(), Impl: optim.GraceAdam, ClipNorm: 4,
		BucketElems: 4096, Mode: STV, Placement: &plan,
	})
	defer tr.Close()
	if tr.NumBuckets() != placementBuckets {
		t.Fatalf("partition has %d buckets; update placementBuckets", tr.NumBuckets())
	}
	corpus := data.NewCorpus(cfg.Vocab, 13)
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(corpus.NextBatch(4, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	tel, ok := tr.PlacementTelemetry()
	if !ok {
		t.Fatal("placement telemetry missing")
	}
	if tel.Steps != steps {
		t.Fatalf("telemetry recorded %d steps, want %d", tel.Steps, steps)
	}
	if tel.Tiers[place.GPUResident].Buckets != 3 || tel.Tiers[place.CPUAdam].Buckets != placementBuckets-3 {
		t.Fatalf("tier census %d/%d does not match the plan", tel.Tiers[place.GPUResident].Buckets, tel.Tiers[place.CPUAdam].Buckets)
	}
	if tel.PipelinedSeconds <= 0 || tel.SerializedSeconds <= 0 {
		t.Fatalf("no modeled time charged: %+v", tel)
	}
	if tel.PipelinedSeconds > tel.SerializedSeconds {
		t.Fatalf("pipelined %.9g exceeds serialized %.9g", tel.PipelinedSeconds, tel.SerializedSeconds)
	}
	if tel.Tiers[place.GPUResident].D2HSeconds != 0 || tel.Tiers[place.GPUResident].H2DSeconds != 0 {
		t.Fatal("GPU-resident tier charged link traffic")
	}
	if tel.Tiers[place.CPUAdam].D2HSeconds <= 0 || tel.Tiers[place.CPUAdam].H2DSeconds <= 0 {
		t.Fatal("CPU tier charged no link traffic")
	}

	// StepAccum records the window's full token volume as one step.
	before := tel
	if _, err := tr.StepAccum([]data.Batch{corpus.NextBatch(2, 16), corpus.NextBatch(2, 16)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tel, _ = tr.PlacementTelemetry()
	if tel.Steps != before.Steps+1 {
		t.Fatalf("accum window recorded %d steps, want %d", tel.Steps, before.Steps+1)
	}
	if tel.BackwardSeconds <= before.BackwardSeconds {
		t.Fatal("accum window charged no backward time")
	}

	// Homogeneous trainers report no placement telemetry.
	plain := NewTrainer(nn.NewGPT(cfg, 16, tensor.NewRNG(11)), Config{
		Adam: optim.DefaultConfig(), Impl: optim.GraceAdam, BucketElems: 4096,
	})
	defer plain.Close()
	if _, ok := plain.PlacementTelemetry(); ok {
		t.Fatal("homogeneous trainer reported placement telemetry")
	}
}

// TestPlacedStoreRouting exercises the tier routing directly: resident
// tiers never touch the flash store, NVMe tiers round-trip through it
// bit-exactly, and telemetry is only present when the plan has NVMe
// buckets.
func TestPlacedStoreRouting(t *testing.T) {
	plan := place.Plan{Tiers: []place.Tier{place.GPUResident, place.CPUAdam, place.NVMeWindow}}
	s, err := NewPlacedStore(plan, NVMeStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 3; idx++ {
		s.Seed(idx, []float32{float32(idx), 2, 3})
	}
	for idx := 0; idx < 3; idx++ {
		st := s.Acquire(idx)
		if st.Shard.Master[0] != float32(idx) {
			t.Fatalf("bucket %d master = %v", idx, st.Shard.Master[0])
		}
		st.Shard.Master[1] = 42
		s.Release(idx, ReleaseFlush)
	}
	if tel, ok := s.NVMeTelemetry(); !ok || tel.Reads == 0 {
		t.Fatalf("NVMe-tier bucket produced no flash reads: %+v ok=%v", tel, ok)
	}
	// Evict-and-refetch round trip for the NVMe bucket: acquire others
	// so the window (2) evicts bucket 2's modified state, then reread.
	st := s.Acquire(2)
	if st.Shard.Master[1] != 42 {
		t.Fatalf("NVMe round trip lost the mutation: %v", st.Shard.Master)
	}
	s.Release(2, ReleaseClean)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A plan with no NVMe buckets builds no inner store and reports no
	// telemetry.
	resident, err := NewPlacedStore(place.Uniform(2, place.CPUAdam), NVMeStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resident.NVMeTelemetry(); ok {
		t.Fatal("resident-only placed store reported NVMe telemetry")
	}
	if err := resident.Close(); err != nil {
		t.Fatal(err)
	}
}
