package stv

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"superoffload/internal/hw"
	"superoffload/internal/obs"
	"superoffload/internal/optim"
)

// NVMeStore spills bucket optimizer state to a backing file, keeping only
// a small window of buckets resident — the third memory tier of
// ZeRO-Infinity's design brought to the real STV engine. All file IO runs
// on one background worker in FIFO order: Acquire auto-prefetches the
// next bucket's read while the consumer is still stepping the current
// one (double buffering), and evictions enqueue write-behind flushes the
// consumer never waits for. Numerics round-trip through the file
// bit-exactly, so every exactness contract of the engine (STV ≡ STE, DP ≡
// single-rank, checkpoint portability) holds unchanged.
//
// Alongside the real (host-speed) file IO, the store keeps a virtual
// timeline throttled by hw.NVMeSpec: a device clock serializes modeled
// transfer times in issue order, and a consumer clock advances by modeled
// Adam compute (on mutating releases) and by stalls (when an Acquire's
// read has not completed on the device timeline). Telemetry exposes both
// the pipelined time this schedule achieves and the serialized
// fetch+step+flush time a non-overlapped schedule would pay.

// NVMeStoreConfig parameterizes an NVMeStore.
type NVMeStoreConfig struct {
	// Dir is where the backing file is created (default os.TempDir()).
	Dir string
	// Spec is the transfer-time model (default hw.NodeNVMe()).
	Spec hw.NVMeSpec
	// ResidentBuckets caps the resident window (default and minimum 2:
	// the bucket being stepped plus the one being prefetched).
	ResidentBuckets int
	// ComputeTime models the overlappable CPU work of one bucket's Adam
	// step, in seconds for an elems-sized bucket (default: GraceAdam on
	// the GH200 Grace CPU via hw.AdamStepTime).
	ComputeTime func(elems int) float64
	// Tracer, when non-nil, gives the store a trace track carrying the
	// worker's wall-clock read/write spans and the consumer-side
	// prefetch/flush/stall instants. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// TrackLabel names the store's trace track (default "nvme"); engines
	// running one store per rank disambiguate with it.
	TrackLabel string
}

// StoreTelemetry is the NVMe store's modeled-time accounting. All seconds
// are virtual (hw.NVMeSpec-throttled), not wall clock.
type StoreTelemetry struct {
	Reads        int
	Writes       int
	BytesRead    int64
	BytesWritten int64
	// ReadSeconds/WriteSeconds are modeled device occupancy.
	ReadSeconds  float64
	WriteSeconds float64
	// StallSeconds is modeled consumer time spent waiting for fetches.
	StallSeconds float64
	// ComputeSeconds is modeled Adam time over mutating holds.
	ComputeSeconds float64
}

// PipelinedSeconds is the modeled consumer wall time of the overlapped
// schedule: compute plus the fetch stalls prefetching could not hide.
func (t StoreTelemetry) PipelinedSeconds() float64 { return t.ComputeSeconds + t.StallSeconds }

// SerializedSeconds is the modeled wall time of a schedule with no
// overlap: every fetch, step, and flush lands on the critical path.
func (t StoreTelemetry) SerializedSeconds() float64 {
	return t.ReadSeconds + t.WriteSeconds + t.ComputeSeconds
}

// Sub returns the telemetry delta since an earlier snapshot.
func (t StoreTelemetry) Sub(o StoreTelemetry) StoreTelemetry {
	return StoreTelemetry{
		Reads:          t.Reads - o.Reads,
		Writes:         t.Writes - o.Writes,
		BytesRead:      t.BytesRead - o.BytesRead,
		BytesWritten:   t.BytesWritten - o.BytesWritten,
		ReadSeconds:    t.ReadSeconds - o.ReadSeconds,
		WriteSeconds:   t.WriteSeconds - o.WriteSeconds,
		StallSeconds:   t.StallSeconds - o.StallSeconds,
		ComputeSeconds: t.ComputeSeconds - o.ComputeSeconds,
	}
}

// Add accumulates another store's telemetry (per-rank stores of a
// data-parallel engine sum into one figure).
func (t StoreTelemetry) Add(o StoreTelemetry) StoreTelemetry {
	return StoreTelemetry{
		Reads:          t.Reads + o.Reads,
		Writes:         t.Writes + o.Writes,
		BytesRead:      t.BytesRead + o.BytesRead,
		BytesWritten:   t.BytesWritten + o.BytesWritten,
		ReadSeconds:    t.ReadSeconds + o.ReadSeconds,
		WriteSeconds:   t.WriteSeconds + o.WriteSeconds,
		StallSeconds:   t.StallSeconds + o.StallSeconds,
		ComputeSeconds: t.ComputeSeconds + o.ComputeSeconds,
	}
}

// nvmeRecord is a bucket's fixed slot in the backing file.
type nvmeRecord struct {
	elems int
	off   int64
	bytes int64
	read  *nvmeOp // in-flight fetch, if any
	// buf is the record's reusable IO buffer. One buffer per record is
	// safe: a record's ops alternate write (evict) / read (acquire) in
	// program order, the FIFO worker serializes them, and a buffer is only
	// re-filled (encode) or consumed (decode) after the record's previous
	// op has completed.
	buf []byte
	// spare parks the evicted bucket's DRAM state so the next fetch of
	// this record decodes into it instead of allocating fresh slices
	// (sizes always match — elems is fixed per record).
	spare *BucketState
}

// ioBuf returns the record's lazily allocated IO buffer.
func (rec *nvmeRecord) ioBuf() []byte {
	if rec.buf == nil {
		rec.buf = make([]byte, rec.bytes)
	}
	return rec.buf
}

// nvmeResident is a bucket currently held in the DRAM window.
type nvmeResident struct {
	st       *BucketState
	held     bool
	modified bool  // changed since fetch: eviction must write back
	lastUse  int64 // LRU tick
}

// nvmeOp is one unit of worker IO.
type nvmeOp struct {
	off    int64
	buf    []byte
	write  bool
	doneAt float64 // modeled completion on the device timeline
	err    error
	done   chan struct{}
}

// NVMeStore implements BucketStore over a backing file. See the package
// comment on store.go for the residency contract.
type NVMeStore struct {
	cfg  NVMeStoreConfig
	file *os.File
	path string
	ops  chan *nvmeOp
	wg   sync.WaitGroup
	// track is the store's trace timeline (nil when tracing is off);
	// immutable after construction, so the worker reads it lock-free.
	track *obs.Track

	// errMu/ioErr latch the first background IO failure. A separate
	// mutex: the worker must never take mu (enqueueLocked can block on
	// the ops channel while holding mu, and the worker is the drain).
	errMu sync.Mutex
	ioErr error

	// mu guards everything below. The worker goroutine never takes it —
	// it only performs file IO and closes op.done.
	mu       sync.Mutex
	recs     map[int]*nvmeRecord
	order    []int // seeded indices, ascending: the prefetch cycle
	end      int64 // next free file offset
	resident map[int]*nvmeResident
	inflight int // outstanding fetches (they hold window slots)
	tick     int64
	cpu, dev float64 // virtual consumer / device clocks
	tel      StoreTelemetry
	closed   bool
}

// NewNVMeStore creates the backing file and starts the IO worker.
func NewNVMeStore(cfg NVMeStoreConfig) (*NVMeStore, error) {
	if cfg.Spec.ReadBW == 0 {
		cfg.Spec = hw.NodeNVMe()
	}
	if cfg.ResidentBuckets < 2 {
		cfg.ResidentBuckets = 2
	}
	if cfg.ComputeTime == nil {
		chip := hw.GH200()
		cfg.ComputeTime = func(elems int) float64 {
			return hw.AdamStepTime(chip, hw.AdamGrace, int64(elems))
		}
	}
	dir := cfg.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "superoffload-nvme-*.bin")
	if err != nil {
		return nil, fmt.Errorf("stv: creating NVMe backing file: %w", err)
	}
	s := &NVMeStore{
		cfg:      cfg,
		file:     f,
		path:     f.Name(),
		ops:      make(chan *nvmeOp, 16),
		recs:     map[int]*nvmeRecord{},
		resident: map[int]*nvmeResident{},
	}
	if cfg.Tracer != nil {
		label := cfg.TrackLabel
		if label == "" {
			label = "nvme"
		}
		s.track = cfg.Tracer.Track(label)
	}
	s.wg.Add(1)
	go s.worker()
	return s, nil
}

// Path returns the backing file's location (diagnostics).
func (s *NVMeStore) Path() string { return s.path }

// Telemetry returns a snapshot of the modeled-time counters.
func (s *NVMeStore) Telemetry() StoreTelemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel
}

// NVMeTelemetry implements TelemetrySource.
func (s *NVMeStore) NVMeTelemetry() (StoreTelemetry, bool) { return s.Telemetry(), true }

// worker drains IO ops in FIFO order. The FIFO is the consistency
// mechanism: a fetch enqueued after an eviction of the same bucket reads
// the freshly written record. Write failures are latched (nothing waits
// on a write-behind flush) and surfaced at the next Acquire or Close.
func (s *NVMeStore) worker() {
	defer s.wg.Done()
	for op := range s.ops {
		name := "read"
		if op.write {
			name = "write"
		}
		sp := s.track.Begin(name)
		if op.write {
			_, op.err = s.file.WriteAt(op.buf, op.off)
		} else {
			_, op.err = s.file.ReadAt(op.buf, op.off)
		}
		sp.EndInt("bytes", len(op.buf))
		if op.err != nil {
			s.errMu.Lock()
			if s.ioErr == nil {
				s.ioErr = op.err
			}
			s.errMu.Unlock()
		}
		close(op.done)
	}
}

// Err returns the first latched background IO failure (nil while the
// backing file is healthy). Unlike MLPStore, the single-lane store has
// no surviving path to re-route to, so any latched error is fatal: the
// next Acquire panics with it.
func (s *NVMeStore) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.ioErr
}

// fatalIOErr marks the store's latched errors as training-aborting for
// PlacedStore, which must surface them even on resident-tier acquires.
func (s *NVMeStore) fatalIOErr() error { return s.Err() }

// checkIOErr panics on a latched background IO failure: continuing would
// silently train on stale bytes, breaking the bit-exactness contract.
func (s *NVMeStore) checkIOErr() {
	if err := s.Err(); err != nil {
		panic(fmt.Sprintf("stv: NVMe store IO failed: %v", err))
	}
}

// enqueueLocked schedules one IO, advancing the modeled device timeline
// when modeled is true (Seed's one-time bootstrap writes pass false: they
// are real file IO but not steady-state traffic, so they must not inflate
// the per-step telemetry the reporters divide by step count). Issue order
// is the consumer's program order, so modeled times are deterministic
// regardless of worker scheduling.
func (s *NVMeStore) enqueueLocked(write bool, rec *nvmeRecord, buf []byte, modeled bool) *nvmeOp {
	op := &nvmeOp{off: rec.off, buf: buf, write: write, doneAt: s.dev, done: make(chan struct{})}
	if modeled {
		var dur float64
		if write {
			dur = s.cfg.Spec.WriteTime(rec.bytes)
			s.tel.Writes++
			s.tel.BytesWritten += rec.bytes
			s.tel.WriteSeconds += dur
		} else {
			dur = s.cfg.Spec.ReadTime(rec.bytes)
			s.tel.Reads++
			s.tel.BytesRead += rec.bytes
			s.tel.ReadSeconds += dur
		}
		op.doneAt = math.Max(s.dev, s.cpu) + dur
		s.dev = op.doneAt
	}
	s.ops <- op
	return op
}

// Seed writes the bucket's initial record; nothing becomes resident.
func (s *NVMeStore) Seed(idx int, master []float32) {
	st := &BucketState{Shard: optim.NewMixedShard(master)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[idx]; ok {
		panic(fmt.Sprintf("stv: bucket %d seeded twice", idx))
	}
	rec := &nvmeRecord{elems: len(master), off: s.end, bytes: recordBytes(len(master))}
	s.recs[idx] = rec
	s.end += rec.bytes
	i := sort.SearchInts(s.order, idx)
	s.order = append(s.order, 0)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = idx
	s.enqueueLocked(true, rec, s.encode(rec, st), false)
}

// next returns the index after idx in the seeded cycle.
func (s *NVMeStore) next(idx int) int {
	i := sort.SearchInts(s.order, idx) + 1
	if i >= len(s.order) {
		i = 0
	}
	return s.order[i]
}

// evictLocked drops the least-recently-used unheld resident bucket,
// enqueueing a write-behind flush when it was modified. Reports whether a
// slot was freed.
func (s *NVMeStore) evictLocked() bool {
	victim := -1
	var oldest int64 = math.MaxInt64
	for idx, r := range s.resident {
		if !r.held && r.lastUse < oldest {
			victim, oldest = idx, r.lastUse
		}
	}
	if victim < 0 {
		return false
	}
	r := s.resident[victim]
	delete(s.resident, victim)
	rec := s.recs[victim]
	if r.modified {
		s.track.InstantInt("flush", "bucket", victim)
		s.enqueueLocked(true, rec, s.encode(rec, r.st), true)
	}
	rec.spare = r.st // decode reuses the slices on the next fetch
	return true
}

// prefetchLocked starts an async fetch of idx if a window slot is free.
func (s *NVMeStore) prefetchLocked(idx int) {
	rec, ok := s.recs[idx]
	if !ok || rec.read != nil {
		return
	}
	if _, ok := s.resident[idx]; ok {
		return
	}
	if len(s.resident)+s.inflight >= s.cfg.ResidentBuckets && !s.evictLocked() {
		return
	}
	s.track.InstantInt("prefetch", "bucket", idx)
	rec.read = s.enqueueLocked(false, rec, rec.ioBuf(), true)
	s.inflight++
}

// Acquire fetches bucket idx (waiting on its prefetch if one is in
// flight), accounts the modeled stall, and auto-prefetches the next
// bucket in the seeded cycle — the double-buffered pipeline.
func (s *NVMeStore) Acquire(idx int) *BucketState {
	s.checkIOErr()
	s.mu.Lock()
	if s.closed {
		// Fail loudly and specifically: the ops channel is closed, so
		// falling through to a fetch would panic with an opaque
		// send-on-closed-channel.
		s.mu.Unlock()
		panic(fmt.Sprintf("stv: acquire of bucket %d after Close", idx))
	}
	rec, ok := s.recs[idx]
	if !ok {
		s.mu.Unlock()
		panic(fmt.Sprintf("stv: acquire of unseeded bucket %d", idx))
	}
	if r, ok := s.resident[idx]; ok {
		r.held = true
		s.tick++
		r.lastUse = s.tick
		if len(s.order) > 1 {
			s.prefetchLocked(s.next(idx))
		}
		s.mu.Unlock()
		return r.st
	}
	op := rec.read
	if op == nil {
		// Cold fetch: make room first so the read doesn't overshoot the
		// window, then enqueue.
		for len(s.resident)+s.inflight >= s.cfg.ResidentBuckets && s.evictLocked() {
		}
		op = s.enqueueLocked(false, rec, rec.ioBuf(), true)
		rec.read = op
		s.inflight++
	}
	if op.doneAt > s.cpu {
		s.tel.StallSeconds += op.doneAt - s.cpu
		s.cpu = op.doneAt
		s.track.InstantInt("stall", "bucket", idx)
	}
	s.mu.Unlock()

	<-op.done
	if op.err != nil {
		panic(fmt.Sprintf("stv: NVMe store read failed: %v", op.err))
	}
	// The FIFO worker ran every earlier write before this read; surface
	// any of their failures rather than decoding possibly-stale bytes.
	s.checkIOErr()
	st := s.decode(rec, op.buf)

	s.mu.Lock()
	rec.read = nil
	s.inflight--
	for len(s.resident) >= s.cfg.ResidentBuckets && s.evictLocked() {
	}
	s.tick++
	s.resident[idx] = &nvmeResident{st: st, held: true, lastUse: s.tick}
	if len(s.order) > 1 {
		s.prefetchLocked(s.next(idx))
	}
	s.mu.Unlock()
	return st
}

// Release ends a hold. A mutating release (Flush or Step) marks the
// bucket for write-back on eviction; a Step release also advances the
// consumer clock by the bucket's modeled Adam step — the compute the
// device timeline gets to hide. Checkpoint IO and rollback restores use
// Flush, so they never charge phantom optimizer compute.
func (s *NVMeStore) Release(idx int, mode ReleaseMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.resident[idx]
	if !ok || !r.held {
		panic(fmt.Sprintf("stv: release of unheld bucket %d", idx))
	}
	r.held = false
	if mode != ReleaseClean {
		r.modified = true
	}
	if mode == ReleaseStep {
		c := s.cfg.ComputeTime(s.recs[idx].elems)
		s.cpu += c
		s.tel.ComputeSeconds += c
	}
}

// Close drains the worker and deletes the backing file.
func (s *NVMeStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.ops)
	s.wg.Wait()
	s.errMu.Lock()
	err := s.ioErr
	s.errMu.Unlock()
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	if rmErr := os.Remove(s.path); err == nil {
		err = rmErr
	}
	return err
}

// encode serializes a bucket record into the record's reusable IO buffer
// via the shared codec (codec.go).
func (s *NVMeStore) encode(rec *nvmeRecord, st *BucketState) []byte {
	return encodeRecord(rec.ioBuf(), st)
}

// decode reconstructs a bucket record via the shared codec, decoding into
// the record's parked spare state when one exists, so the steady-state
// fetch→step→evict cycle stops allocating DRAM shards. The bytes came
// from the store's own encoding, so a codec rejection means the backing
// file was corrupted underneath us — fail loudly.
func (s *NVMeStore) decode(rec *nvmeRecord, buf []byte) *BucketState {
	st, err := decodeRecord(rec.spare, rec.elems, buf)
	if err != nil {
		panic(fmt.Sprintf("stv: NVMe store record corrupt: %v", err))
	}
	rec.spare = nil
	return st
}
