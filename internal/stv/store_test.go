package stv

import (
	"bytes"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/optim"
)

// nvmeTestStore builds a tightly-windowed NVMe store backed by the test's
// temp dir, so every test streams buckets through the file for real.
func nvmeTestStore(t *testing.T, window int) *NVMeStore {
	t.Helper()
	s, err := NewNVMeStore(NVMeStoreConfig{Dir: t.TempDir(), ResidentBuckets: window})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// nvmeTrainerConfig is trainerConfig with small buckets behind a 2-bucket
// NVMe window: the tiny model splits into many buckets, so state
// round-trips through the backing file on every step.
func nvmeTrainerConfig(t *testing.T, mode Mode) Config {
	cfg := trainerConfig(mode)
	cfg.BucketElems = 4000
	cfg.Store = nvmeTestStore(t, 2)
	return cfg
}

func assertSameWeights(t *testing.T, label string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: weight counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: weights diverge at %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestNVMeStoreSTVMatchesDRAMBitExact is the residency-tier exactness
// claim: windowing optimizer state through the file-backed store must not
// change a single bit of the trajectory, across both schedules and
// through injected-overflow rollbacks.
func TestNVMeStoreSTVMatchesDRAMBitExact(t *testing.T) {
	inject := func(step int) bool { return step == 4 || step == 11 }
	run := func(mode Mode, nvme bool) *Trainer {
		cfg := trainerConfig(mode)
		cfg.BucketElems = 4000
		if nvme {
			cfg.Store = nvmeTestStore(t, 2)
		}
		cfg.InjectBad = inject
		cfg.Scaler = optim.NewLossScaler()
		tr := NewTrainer(tinyGPT(42), cfg)
		t.Cleanup(func() { tr.Close() })
		corpus := data.NewCorpus(64, 123)
		for i := 0; i < 25; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	dram := run(STV, false)
	nvme := run(STV, true)
	if nvme.NumBuckets() < 3 {
		t.Fatalf("need several buckets to exercise the window, got %d", nvme.NumBuckets())
	}
	assertSameWeights(t, "STV nvme vs dram", dram.MasterWeights(), nvme.MasterWeights())

	ste := run(STE, true)
	assertSameWeights(t, "STE(nvme) vs STV(nvme)", ste.MasterWeights(), nvme.MasterWeights())
	if dram.Stats() != nvme.Stats() {
		t.Errorf("stats diverge: dram %+v vs nvme %+v", dram.Stats(), nvme.Stats())
	}
}

// TestNVMeStoreClipRollbackExact drives the clip re-execution path (the
// §4.4 scenario-2 rollback) on windowed state: the snapshots the rollback
// restores from have been evicted to the file and fetched back.
func TestNVMeStoreClipRollbackExact(t *testing.T) {
	run := func(nvme bool) *Trainer {
		cfg := trainerConfig(STV)
		cfg.BucketElems = 4000
		cfg.ClipNorm = 0.35 // clip fires nearly every step
		cfg.Schedule = WarmupCosine(5, 30, 0.1)
		if nvme {
			cfg.Store = nvmeTestStore(t, 2)
		}
		tr := NewTrainer(tinyGPT(7), cfg)
		t.Cleanup(func() { tr.Close() })
		corpus := data.NewCorpus(64, 9)
		for i := 0; i < 30; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	dram, nvme := run(false), run(true)
	if nvme.Stats().ClipRolls < 20 {
		t.Fatalf("tight clip produced only %d rollbacks; window untested", nvme.Stats().ClipRolls)
	}
	assertSameWeights(t, "clip rollback", dram.MasterWeights(), nvme.MasterWeights())
}

// TestCheckpointPortableAcrossStores is the cross-backend checkpoint
// property: a checkpoint written under either store loads under the other
// and resumes bit-exactly — including checkpoints taken mid-schedule and
// right after a rollback, the states where hidden divergence would hide.
func TestCheckpointPortableAcrossStores(t *testing.T) {
	const warm, cont = 9, 8
	schedule := WarmupCosine(5, warm+cont, 0.1)
	// Injecting on the warm-up's last step makes the saved state a
	// post-rollback one (the skip resolves at Flush, just before Save).
	inject := func(step int) bool { return step == warm }
	mkTrainer := func(seed uint64, nvme bool) *Trainer {
		cfg := trainerConfig(STV)
		cfg.BucketElems = 4000
		cfg.Schedule = schedule
		cfg.InjectBad = inject
		cfg.Scaler = optim.NewLossScaler()
		if nvme {
			cfg.Store = nvmeTestStore(t, 2)
		}
		tr := NewTrainer(tinyGPT(seed), cfg)
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	train := func(tr *Trainer, corpus *data.Corpus, steps int) {
		t.Helper()
		for i := 0; i < steps; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, dir := range []struct {
		name             string
		srcNVMe, dstNVMe bool
	}{
		{"dram->nvme", false, true},
		{"nvme->dram", true, false},
		{"nvme->nvme", true, true},
	} {
		t.Run(dir.name, func(t *testing.T) {
			src := mkTrainer(42, dir.srcNVMe)
			corpus := data.NewCorpus(64, 77)
			train(src, corpus, warm)
			if src.Stats().SkipRolls != 1 {
				t.Fatalf("expected the injected overflow to roll back before Save, got %+v", src.Stats())
			}
			var ckpt bytes.Buffer
			if err := src.Save(&ckpt); err != nil {
				t.Fatal(err)
			}

			dst := mkTrainer(999, dir.dstNVMe) // different init: must be overwritten
			if err := dst.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatal(err)
			}
			assertSameWeights(t, "restored masters", src.MasterWeights(), dst.MasterWeights())

			// Resume both mid-schedule on identical data; the schedule
			// continues from the checkpointed step index.
			srcCont := data.NewCorpus(64, 88)
			dstCont := data.NewCorpus(64, 88)
			train(src, srcCont, cont)
			train(dst, dstCont, cont)
			assertSameWeights(t, "post-resume masters", src.MasterWeights(), dst.MasterWeights())
			if src.StepIndex() != dst.StepIndex() {
				t.Errorf("step indices diverge: %d vs %d", src.StepIndex(), dst.StepIndex())
			}
		})
	}
}

// TestCheckpointBytesIdenticalAcrossStores: the serialized checkpoint
// itself must be byte-identical whichever store produced it.
func TestCheckpointBytesIdenticalAcrossStores(t *testing.T) {
	run := func(nvme bool) []byte {
		cfg := trainerConfig(STV)
		cfg.BucketElems = 4000
		cfg.Scaler = optim.NewLossScaler()
		if nvme {
			cfg.Store = nvmeTestStore(t, 2)
		}
		tr := NewTrainer(tinyGPT(31), cfg)
		t.Cleanup(func() { tr.Close() })
		corpus := data.NewCorpus(64, 23)
		for i := 0; i < 10; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("checkpoint bytes differ between DRAM and NVMe stores")
	}
}

// TestNVMeWindowStaysBounded: residency never exceeds the configured
// window, and buckets genuinely round-trip through the file (reads and
// write-behind flushes both happen).
func TestNVMeWindowStaysBounded(t *testing.T) {
	cfg := nvmeTrainerConfig(t, STV)
	store := cfg.Store.(*NVMeStore)
	tr := NewTrainer(tinyGPT(3), cfg)
	if tr.NumBuckets() <= store.cfg.ResidentBuckets {
		t.Fatalf("model must split into more buckets (%d) than the window (%d)",
			tr.NumBuckets(), store.cfg.ResidentBuckets)
	}
	corpus := data.NewCorpus(64, 5)
	for i := 0; i < 10; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
		store.mu.Lock()
		res, held := len(store.resident), 0
		for _, r := range store.resident {
			if r.held {
				held++
			}
		}
		store.mu.Unlock()
		if res > store.cfg.ResidentBuckets {
			t.Fatalf("window overflow: %d resident > %d", res, store.cfg.ResidentBuckets)
		}
		if held != 0 {
			t.Fatalf("%d buckets still held between steps", held)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tel := store.Telemetry()
	if tel.Reads == 0 || tel.Writes == 0 {
		t.Fatalf("state never streamed through the file: %+v", tel)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and removes the backing file.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNVMeOverlapModel: the modeled pipelined step time must beat the
// serialized fetch+step+flush time (the double-buffered prefetch hides
// compute behind the device), and the accounting identities must hold.
func TestNVMeOverlapModel(t *testing.T) {
	cfg := trainerConfig(STV)
	cfg.BucketElems = 4000
	store, err := NewNVMeStore(NVMeStoreConfig{
		Dir:             t.TempDir(),
		ResidentBuckets: 2,
		// Compute comparable to the transfer time makes the overlap
		// pronounced (a host-class core, not the Grace model).
		ComputeTime: func(elems int) float64 { return float64(elems) * 16 / 1e9 },
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	tr := NewTrainer(tinyGPT(3), cfg)
	defer tr.Close()
	corpus := data.NewCorpus(64, 5)
	before := store.Telemetry()
	for i := 0; i < 8; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tel := store.Telemetry().Sub(before)
	if tel.ComputeSeconds <= 0 || tel.ReadSeconds <= 0 || tel.WriteSeconds <= 0 {
		t.Fatalf("degenerate telemetry: %+v", tel)
	}
	if got, want := tel.PipelinedSeconds(), tel.ComputeSeconds+tel.StallSeconds; got != want {
		t.Errorf("pipelined identity broken: %v != %v", got, want)
	}
	if tel.PipelinedSeconds() >= tel.SerializedSeconds() {
		t.Errorf("no overlap: pipelined %.6fs >= serialized %.6fs",
			tel.PipelinedSeconds(), tel.SerializedSeconds())
	}
	// With balanced compute the prefetch should hide a substantial
	// fraction, not a rounding error.
	if saved := 1 - tel.PipelinedSeconds()/tel.SerializedSeconds(); saved < 0.10 {
		t.Errorf("overlap hides only %.1f%% of serialized time", 100*saved)
	}
}

// TestNVMeAccumAndStressSchedules runs the gradient-accumulation path and
// the mixed Step/StepAccum/Save interleavings over the NVMe store (the
// -race harness for the IO worker).
func TestNVMeAccumAndStressSchedules(t *testing.T) {
	cfg := nvmeTrainerConfig(t, STV)
	cfg.ClipNorm = 0.4
	cfg.Scaler = optim.NewLossScaler()
	cfg.InjectBad = func(step int) bool { return step%11 == 7 }
	tr := NewTrainer(tinyGPT(13), cfg)
	defer tr.Close()
	corpus := data.NewCorpus(64, 29)
	var ckpt bytes.Buffer
	for i := 0; i < 36; i++ {
		switch i % 6 {
		case 0, 1, 2, 3:
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		case 4:
			w := []data.Batch{corpus.NextBatch(1, 8), corpus.NextBatch(1, 8)}
			if _, err := tr.StepAccum(w); err != nil {
				t.Fatal(err)
			}
		case 5:
			if _, err := tr.Flush(); err != nil {
				t.Fatal(err)
			}
			ckpt.Reset()
			if err := tr.Save(&ckpt); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Rollbacks() == 0 {
		t.Error("stress run produced no rollbacks")
	}
}
