package stv

import (
	"encoding/binary"
	"fmt"
	"math"

	"superoffload/internal/fp16"
	"superoffload/internal/optim"
)

// Bucket record codec, shared by every file-backed store (NVMeStore's
// single lane and MLPStore's striped paths). Layout of an n-element
// record: step u64 | snapshot step u64 | snapshot flag byte, then the
// fp32 master/m/v arrays and their snapshot copies (snapshot space is
// always reserved so offsets stay fixed). float32 round-trips through
// the raw bit pattern, so storage is bit-exact; the fp16 working copy is
// never stored — decode re-derives it from the masters (the paper's
// recombine).

// recordBytes is the file footprint of an n-element bucket: step +
// snapshot step + snapshot flag, then master/m/v and their snapshot
// copies (snapshot space is always reserved so offsets stay fixed).
func recordBytes(n int) int64 { return recordHeaderBytes + 24*int64(n) }

// recordHeaderBytes is the record header: step u64, snapshot step u64,
// snapshot flag byte.
const recordHeaderBytes = 17

// recordLiveBytes is the number of meaningful bytes in an n-element
// record: the snapshot arrays are only populated when the flag byte is
// set, so decode accepts buffers truncated to this floor.
func recordLiveBytes(n int, snap bool) int64 {
	if snap {
		return recordBytes(n)
	}
	return recordHeaderBytes + 12*int64(n)
}

// encodeRecord serializes a bucket state into buf, which must hold
// recordBytes(len(st.Shard.Master)) bytes, and returns buf. The header
// is written unconditionally because the buffer may carry a previous
// encoding's snapshot flag.
func encodeRecord(buf []byte, st *BucketState) []byte {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(st.Shard.State.Step))
	le.PutUint64(buf[8:], 0)
	buf[16] = 0
	off := recordHeaderBytes
	put := func(xs []float32) {
		for _, x := range xs {
			le.PutUint32(buf[off:], math.Float32bits(x))
			off += 4
		}
	}
	put(st.Shard.Master)
	put(st.Shard.State.M)
	put(st.Shard.State.V)
	if st.Snap != nil {
		le.PutUint64(buf[8:], uint64(st.Snap.Step))
		buf[16] = 1
		put(st.Snap.Master)
		put(st.Snap.M)
		put(st.Snap.V)
	}
	return buf
}

// decodeRecord reconstructs an elems-element bucket state from buf,
// decoding into spare when non-nil (allocation reuse). The buffer and
// the spare's geometry are validated before spare is touched, so a
// rejected decode leaves spare intact: truncated or corrupted input —
// or a spare whose arrays do not hold exactly elems entries — returns
// an error instead of panicking or partially overwriting the caller's
// state.
func decodeRecord(spare *BucketState, elems int, buf []byte) (*BucketState, error) {
	if elems < 0 {
		return nil, fmt.Errorf("stv: record element count %d is negative", elems)
	}
	if int64(len(buf)) < recordLiveBytes(elems, false) {
		return nil, fmt.Errorf("stv: %d-elem record truncated: %d bytes < %d",
			elems, len(buf), recordLiveBytes(elems, false))
	}
	flag := buf[16]
	if flag > 1 {
		return nil, fmt.Errorf("stv: record snapshot flag corrupt: %#x", flag)
	}
	snap := flag == 1
	if snap && int64(len(buf)) < recordLiveBytes(elems, true) {
		return nil, fmt.Errorf("stv: %d-elem record snapshot truncated: %d bytes < %d",
			elems, len(buf), recordLiveBytes(elems, true))
	}
	if spare != nil {
		sh := spare.Shard
		if sh == nil || sh.State == nil ||
			len(sh.Master) != elems || len(sh.State.M) != elems || len(sh.State.V) != elems {
			return nil, fmt.Errorf("stv: %d-elem record decoded into a mismatched spare state", elems)
		}
	}
	st := spare
	if st == nil {
		st = &BucketState{Shard: &optim.MixedShard{
			Master: make([]float32, elems),
			State:  optim.NewState(elems),
		}}
	}
	le := binary.LittleEndian
	off := recordHeaderBytes
	get := func(xs []float32) {
		for i := range xs {
			xs[i] = math.Float32frombits(le.Uint32(buf[off:]))
			off += 4
		}
	}
	shard := st.Shard
	shard.State.Step = int(int64(le.Uint64(buf[0:])))
	get(shard.Master)
	get(shard.State.M)
	get(shard.State.V)
	shard.Half = fp16.Cast(shard.Half, shard.Master)
	if snap {
		// A reused spare's snapshot buffers are only trusted at the right
		// size; anything else is reallocated rather than read past.
		if st.Snap == nil || len(st.Snap.Master) != elems ||
			len(st.Snap.M) != elems || len(st.Snap.V) != elems {
			st.Snap = &optim.Snapshot{
				Master: make([]float32, elems),
				M:      make([]float32, elems),
				V:      make([]float32, elems),
			}
		}
		st.Snap.Step = int(int64(le.Uint64(buf[8:])))
		get(st.Snap.Master)
		get(st.Snap.M)
		get(st.Snap.V)
	} else {
		st.Snap = nil
	}
	return st, nil
}
