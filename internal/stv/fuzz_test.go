package stv

import (
	"bytes"
	"math"
	"testing"

	"superoffload/internal/optim"
)

// fuzzState builds a bucket state from fuzz-chosen scalars: n elements
// seeded from a, b, with an optional snapshot at snapStep.
func fuzzState(n int, a, b float32, step int, snap bool, snapStep int) *BucketState {
	master := make([]float32, n)
	for i := range master {
		master[i] = a + float32(i)*b
	}
	st := &BucketState{Shard: optim.NewMixedShard(master)}
	st.Shard.State.Step = step
	for i := range st.Shard.State.M {
		st.Shard.State.M[i] = b - float32(i)*a
		st.Shard.State.V[i] = float32(i) * a * b
	}
	if snap {
		st.Snap = &optim.Snapshot{
			Step:   snapStep,
			Master: make([]float32, n),
			M:      make([]float32, n),
			V:      make([]float32, n),
		}
		for i := range st.Snap.Master {
			st.Snap.Master[i] = a * float32(i+1)
			st.Snap.M[i] = b * float32(i+1)
			st.Snap.V[i] = a + b
		}
	}
	return st
}

func sameF32(t *testing.T, label string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: bit divergence at %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// FuzzRecordRoundTrip: encodeRecord → decodeRecord is the identity on
// every field (bit patterns, not float equality — NaN payloads and
// signed zeros must survive), with and without a snapshot, into both a
// fresh state and a reused spare.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint8(4), float32(1.5), float32(-0.25), 7, true, 3)
	f.Add(uint8(1), float32(0), float32(0), 0, false, 0)
	f.Add(uint8(16), float32(math.Inf(1)), float32(math.NaN()), 123456, true, 99)
	f.Fuzz(func(t *testing.T, nRaw uint8, a, b float32, step int, snap bool, snapStep int) {
		n := int(nRaw%32) + 1
		st := fuzzState(n, a, b, step, snap, snapStep)
		buf := encodeRecord(make([]byte, recordBytes(n)), st)

		check := func(label string, got *BucketState) {
			t.Helper()
			sameF32(t, label+" master", st.Shard.Master, got.Shard.Master)
			sameF32(t, label+" m", st.Shard.State.M, got.Shard.State.M)
			sameF32(t, label+" v", st.Shard.State.V, got.Shard.State.V)
			if got.Shard.State.Step != step {
				t.Fatalf("%s: step %d, want %d", label, got.Shard.State.Step, step)
			}
			if snap != (got.Snap != nil) {
				t.Fatalf("%s: snapshot presence %v, want %v", label, got.Snap != nil, snap)
			}
			if snap {
				sameF32(t, label+" snap master", st.Snap.Master, got.Snap.Master)
				sameF32(t, label+" snap m", st.Snap.M, got.Snap.M)
				sameF32(t, label+" snap v", st.Snap.V, got.Snap.V)
				if got.Snap.Step != snapStep {
					t.Fatalf("%s: snap step %d, want %d", label, got.Snap.Step, snapStep)
				}
			}
			// The working half is re-derived from the decoded masters, so
			// re-encoding must reproduce the exact bytes.
			if !bytes.Equal(buf, encodeRecord(make([]byte, recordBytes(n)), got)) {
				t.Fatalf("%s: re-encoding diverges", label)
			}
		}

		fresh, err := decodeRecord(nil, n, buf)
		if err != nil {
			t.Fatalf("decode of a valid record failed: %v", err)
		}
		check("fresh", fresh)

		// Reuse a dissimilar spare (opposite snapshot presence) — decode
		// must fully overwrite it.
		spare := fuzzState(n, b, a, step+1, !snap, snapStep+1)
		reused, err := decodeRecord(spare, n, buf)
		if err != nil {
			t.Fatalf("decode into spare failed: %v", err)
		}
		check("spare", reused)
	})
}

// FuzzDecodeRecordRejects: decodeRecord over arbitrary bytes and element
// counts never panics; invalid input (truncation, corrupt flag) returns
// an error and leaves the caller's spare untouched.
func FuzzDecodeRecordRejects(f *testing.F) {
	f.Add(4, []byte{})
	f.Add(4, make([]byte, 17))
	f.Add(-1, make([]byte, 200))
	f.Add(2, bytes.Repeat([]byte{0xff}, 65))
	// A valid 1-elem record with the snapshot flag set but the snapshot
	// arrays truncated.
	short := make([]byte, 17+12)
	short[16] = 1
	f.Add(1, short)
	f.Fuzz(func(t *testing.T, elems int, buf []byte) {
		if elems > 1<<16 {
			elems = 1 << 16 // bound allocation, not validity
		}
		spare := fuzzState(3, 1, 2, 5, true, 4)
		want := encodeRecord(make([]byte, recordBytes(3)), spare)
		st, err := decodeRecord(spare, elems, buf)
		if err != nil {
			// Rejected: spare must be byte-for-byte intact.
			if !bytes.Equal(want, encodeRecord(make([]byte, recordBytes(3)), spare)) {
				t.Fatal("rejected decode mutated the spare state")
			}
			return
		}
		if elems != 3 {
			t.Fatalf("decode accepted a %d-elem record into a 3-elem spare", elems)
		}
		if st != spare {
			t.Fatal("successful decode into a spare returned a different state")
		}
		// Accepted: the flag byte must have been valid.
		if len(buf) > 16 && buf[16] > 1 {
			t.Fatalf("decode accepted corrupt flag %#x", buf[16])
		}
	})
}

// TestDecodeRecordRejectsCorruptFlag pins the non-fuzz regression: a
// record whose snapshot flag byte is neither 0 nor 1 is rejected before
// any state is written.
func TestDecodeRecordRejectsCorruptFlag(t *testing.T) {
	st := fuzzState(2, 1, 2, 3, false, 0)
	buf := encodeRecord(make([]byte, recordBytes(2)), st)
	buf[16] = 7
	if _, err := decodeRecord(nil, 2, buf); err == nil {
		t.Fatal("corrupt snapshot flag accepted")
	}
	// Truncation below the live floor is rejected too.
	if _, err := decodeRecord(nil, 2, buf[:recordLiveBytes(2, false)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
	// And a header claiming a snapshot without the bytes for one.
	buf[16] = 1
	if _, err := decodeRecord(nil, 2, buf[:recordLiveBytes(2, false)]); err == nil {
		t.Fatal("snapshot-flagged record without snapshot bytes accepted")
	}
}
