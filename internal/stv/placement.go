package stv

import (
	"fmt"
	"sync"

	"superoffload/internal/hw"
	"superoffload/internal/place"
)

// Heterogeneous placement on the real engine. A place.Plan assigns every
// bucket an update tier; the PlacementExecutor is the virtual-clock
// superchip model that times each optimizer step's GPU backward + cast,
// C2C gradient traffic, CPU (or GPU) Adam, and weight return on
// place.StepTimes' throttled clocks — the placement counterpart of the
// NVMe store's pipelined-vs-serialized accounting. Placement never
// touches numerics: every tier applies the same Adam kernel, so
// trajectories, rollbacks, and checkpoints stay bit-identical to the
// homogeneous trainer (GPU-resident buckets' speculative step simply IS
// their synchronous in-step update, with the rollback snapshot retained
// until the global verdict lands).

// PlacementTier is one tier's cumulative share of the executor's modeled
// time.
type PlacementTier struct {
	// Buckets counts the buckets this holder models on the tier (static
	// per executor; engines sum it across ranks).
	Buckets int
	// CastSeconds, D2HSeconds, AdamSeconds, H2DSeconds, and NVMeSeconds
	// accumulate the tier's modeled phase times over all recorded steps.
	// Conversions are fused into the transfers they precede (see
	// place.TierSeconds), so CastSeconds stays zero for offloaded tiers:
	// the gradient cast is inside D2HSeconds, the weight re-cast inside
	// H2DSeconds.
	CastSeconds float64
	D2HSeconds  float64
	AdamSeconds float64
	H2DSeconds  float64
	NVMeSeconds float64
}

// TotalSeconds sums the tier's phase seconds.
func (t PlacementTier) TotalSeconds() float64 {
	return t.CastSeconds + t.D2HSeconds + t.AdamSeconds + t.H2DSeconds + t.NVMeSeconds
}

// add accumulates another tier share (Buckets sum too: across ranks the
// per-rank shards partition the plan).
func (t PlacementTier) add(o PlacementTier) PlacementTier {
	return PlacementTier{
		Buckets:     t.Buckets + o.Buckets,
		CastSeconds: t.CastSeconds + o.CastSeconds,
		D2HSeconds:  t.D2HSeconds + o.D2HSeconds,
		AdamSeconds: t.AdamSeconds + o.AdamSeconds,
		H2DSeconds:  t.H2DSeconds + o.H2DSeconds,
		NVMeSeconds: t.NVMeSeconds + o.NVMeSeconds,
	}
}

// PlacementTelemetry is the executor's modeled-time accounting. All
// seconds are virtual (hw.SuperchipSpec-throttled), not wall clock;
// multi-rank engines sum per-rank figures, so divide by the rank count
// for a per-superchip estimate.
type PlacementTelemetry struct {
	// Steps counts recorded optimizer steps.
	Steps int
	// BackwardSeconds is modeled GPU backward time.
	BackwardSeconds float64
	// PipelinedSeconds is the overlapped schedule's completion time:
	// backward plus the optimizer work the clocks could not hide.
	PipelinedSeconds float64
	// SerializedSeconds is the no-overlap reference (backward plus every
	// phase of every bucket end to end).
	SerializedSeconds float64
	// ForwardSeconds, ActWriteSeconds, ActReadSeconds, and
	// ActStallSeconds are the activation tier's modeled phases (see
	// place.Breakdown); all zero unless an activation store is attached.
	ForwardSeconds  float64
	ActWriteSeconds float64
	ActReadSeconds  float64
	ActStallSeconds float64
	// Tiers is the per-tier breakdown, indexed by place.Tier.
	Tiers [place.NumTiers]PlacementTier
}

// HiddenFraction reports how much of the serialized schedule the
// pipelined one hides (0 when nothing was recorded).
func (t PlacementTelemetry) HiddenFraction() float64 {
	if t.SerializedSeconds == 0 {
		return 0
	}
	return 1 - t.PipelinedSeconds/t.SerializedSeconds
}

// Add accumulates another executor's telemetry (per-rank shards of a
// multi-rank engine sum into one figure).
func (t PlacementTelemetry) Add(o PlacementTelemetry) PlacementTelemetry {
	out := PlacementTelemetry{
		Steps:             max(t.Steps, o.Steps),
		BackwardSeconds:   t.BackwardSeconds + o.BackwardSeconds,
		PipelinedSeconds:  t.PipelinedSeconds + o.PipelinedSeconds,
		SerializedSeconds: t.SerializedSeconds + o.SerializedSeconds,
		ForwardSeconds:    t.ForwardSeconds + o.ForwardSeconds,
		ActWriteSeconds:   t.ActWriteSeconds + o.ActWriteSeconds,
		ActReadSeconds:    t.ActReadSeconds + o.ActReadSeconds,
		ActStallSeconds:   t.ActStallSeconds + o.ActStallSeconds,
	}
	for i := range out.Tiers {
		out.Tiers[i] = t.Tiers[i].add(o.Tiers[i])
	}
	return out
}

// PlacementExecutor times one holder's optimizer steps against a modeled
// superchip. A single-rank trainer models the whole partition; each rank
// of a multi-rank engine models its owned ZeRO shard (the per-rank
// placement), with ready times spaced over the full backward.
type PlacementExecutor struct {
	spec    hw.SuperchipSpec
	work    []place.BucketWork
	nGlobal int
	hidden  int
	params  int64
	act     place.ActShape

	mu  sync.Mutex
	tel PlacementTelemetry
}

// SetAct attaches an activation-offload shape, so recorded steps model
// the spill/prefetch schedule around the optimizer phases. Nil-safe;
// call before the first Record.
func (e *PlacementExecutor) SetAct(a place.ActShape) {
	if e == nil {
		return
	}
	e.act = a
}

// NewPlacementExecutor builds an executor over the holder's bucket
// subset: idx and elems list the modeled buckets' global indices and
// sizes in ascending index order, nGlobal is the full partition size, and
// hidden/params describe the replica whose backward feeds the clocks.
func NewPlacementExecutor(spec hw.SuperchipSpec, plan place.Plan, idx, elems []int, nGlobal, hidden int, params int64) *PlacementExecutor {
	if len(idx) != len(elems) {
		panic(fmt.Sprintf("stv: placement executor got %d indices for %d sizes", len(idx), len(elems)))
	}
	work := make([]place.BucketWork, len(idx))
	for i := range idx {
		work[i] = place.BucketWork{Index: idx[i], Elems: elems[i], Tier: plan.Tier(idx[i])}
	}
	e := &PlacementExecutor{
		spec: spec.OrDefault(), work: work, nGlobal: nGlobal,
		hidden: hidden, params: params,
	}
	for _, wk := range work {
		e.tel.Tiers[wk.Tier].Buckets++
	}
	return e
}

// Record charges one optimizer step to the virtual clocks: tokens is the
// batch rows × positions backward processed this step (summed over
// accumulation micro-batches) and seq the sequence length feeding the
// GEMM-efficiency model. Nil-safe, so call sites need no placement guard.
func (e *PlacementExecutor) Record(tokens, seq int) {
	if e == nil {
		return
	}
	bd := place.StepTimes(e.spec, e.work, e.nGlobal, place.Shape{
		Tokens: tokens, Hidden: e.hidden, Seq: seq, Params: e.params, Act: e.act,
	})
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tel.Steps++
	e.tel.BackwardSeconds += bd.Backward
	e.tel.PipelinedSeconds += bd.Pipelined
	e.tel.SerializedSeconds += bd.Serialized
	e.tel.ForwardSeconds += bd.Forward
	e.tel.ActWriteSeconds += bd.ActWrite
	e.tel.ActReadSeconds += bd.ActRead
	e.tel.ActStallSeconds += bd.ActStall
	for i, ts := range bd.Tiers {
		pt := &e.tel.Tiers[i]
		pt.CastSeconds += ts.Cast
		pt.D2HSeconds += ts.D2H
		pt.AdamSeconds += ts.Adam
		pt.H2DSeconds += ts.H2D
		pt.NVMeSeconds += ts.NVMe
	}
}

// Telemetry returns a snapshot of the cumulative modeled-time counters.
func (e *PlacementExecutor) Telemetry() PlacementTelemetry {
	if e == nil {
		return PlacementTelemetry{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tel
}
