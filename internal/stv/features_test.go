package stv

import (
	"bytes"
	"math"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/optim"
)

// TestAccumulationMatchesLargeBatch: two accumulated micro-batches must
// produce (numerically) the same update as the concatenated batch.
func TestAccumulationMatchesLargeBatch(t *testing.T) {
	corpus := data.NewCorpus(64, 5)
	a := corpus.NextBatch(1, 8)
	b := corpus.NextBatch(1, 8)
	combined := data.Batch{
		Tokens:    append(append([]int{}, a.Tokens...), b.Tokens...),
		Targets:   append(append([]int{}, a.Targets...), b.Targets...),
		BatchSize: 2, Seq: 8,
	}

	mk := func() *Trainer {
		cfg := trainerConfig(STV)
		cfg.ClipNorm = 0 // isolate accumulation from clipping
		return NewTrainer(tinyGPT(42), cfg)
	}
	accum := mk()
	if _, err := accum.StepAccum([]data.Batch{a, b}); err != nil {
		t.Fatal(err)
	}
	if _, err := accum.Flush(); err != nil {
		t.Fatal(err)
	}
	big := mk()
	if _, err := big.Step(combined); err != nil {
		t.Fatal(err)
	}
	if _, err := big.Flush(); err != nil {
		t.Fatal(err)
	}
	wa, wb := accum.MasterWeights(), big.MasterWeights()
	var maxDiff float64
	for i := range wa {
		if d := math.Abs(float64(wa[i] - wb[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Errorf("accumulated update diverges from combined batch: max diff %g", maxDiff)
	}
}

func TestAccumSTVMatchesAccumSTE(t *testing.T) {
	corpus := data.NewCorpus(64, 9)
	var windows [][]data.Batch
	for i := 0; i < 8; i++ {
		windows = append(windows, []data.Batch{corpus.NextBatch(1, 8), corpus.NextBatch(1, 8)})
	}
	run := func(mode Mode) []float32 {
		tr := NewTrainer(tinyGPT(7), trainerConfig(mode))
		for _, w := range windows {
			if _, err := tr.StepAccum(w); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return tr.MasterWeights()
	}
	a, b := run(STV), run(STE)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("accumulated STV diverges from STE at %d", i)
		}
	}
}

func TestStepAccumSingleBatchEqualsStep(t *testing.T) {
	corpus := data.NewCorpus(64, 3)
	b := corpus.NextBatch(2, 8)
	t1 := NewTrainer(tinyGPT(5), trainerConfig(STV))
	t2 := NewTrainer(tinyGPT(5), trainerConfig(STV))
	if _, err := t1.Step(b); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.StepAccum([]data.Batch{b}); err != nil {
		t.Fatal(err)
	}
	t1.Flush()
	t2.Flush()
	wa, wb := t1.MasterWeights(), t2.MasterWeights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("StepAccum([b]) != Step(b) at %d", i)
		}
	}
}

func TestWarmupCosineSchedule(t *testing.T) {
	s := WarmupCosine(100, 1000, 0.1)
	if s(0) <= 0 || s(0) > 0.02 {
		t.Errorf("warm-up start = %v", s(0))
	}
	if math.Abs(s(99)-1.0) > 1e-9 {
		t.Errorf("end of warm-up = %v, want 1.0", s(99))
	}
	if s(550) >= s(100) {
		t.Error("cosine should decay after warm-up")
	}
	if got := s(2000); got != 0.1 {
		t.Errorf("beyond total = %v, want min fraction", got)
	}
	// Monotone decay after warm-up.
	prev := s(100)
	for step := 150; step < 1000; step += 50 {
		cur := s(step)
		if cur > prev+1e-12 {
			t.Errorf("schedule increased at %d: %v > %v", step, cur, prev)
		}
		prev = cur
	}
}

func TestScheduledSTVMatchesScheduledSTE(t *testing.T) {
	// Exactness must survive a moving learning rate, including clip
	// re-execution with the step's own rate.
	corpus := data.NewCorpus(64, 17)
	var batches []data.Batch
	for i := 0; i < 20; i++ {
		batches = append(batches, corpus.NextBatch(2, 8))
	}
	run := func(mode Mode) []float32 {
		cfg := trainerConfig(mode)
		cfg.ClipNorm = 2.5 // force some clip rollbacks
		cfg.Schedule = WarmupCosine(5, 20, 0.1)
		tr := NewTrainer(tinyGPT(21), cfg)
		for _, b := range batches {
			if _, err := tr.Step(b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		if tr.Stats().ClipRolls == 0 {
			t.Fatal("test needs clip events to be meaningful")
		}
		return tr.MasterWeights()
	}
	a, b := run(STV), run(STE)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scheduled STV diverges from STE at %d", i)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	corpus := data.NewCorpus(64, 23)
	cfg := trainerConfig(STV)
	cfg.Scaler = optim.NewLossScaler()
	tr := NewTrainer(tinyGPT(31), cfg)
	for i := 0; i < 10; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Restore into a fresh trainer over the same architecture.
	cfg2 := trainerConfig(STV)
	cfg2.Scaler = optim.NewLossScaler()
	tr2 := NewTrainer(tinyGPT(999), cfg2) // different init — must be overwritten
	if err := tr2.Load(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	if tr2.StepIndex() != tr.StepIndex() {
		t.Errorf("step index %d != %d", tr2.StepIndex(), tr.StepIndex())
	}
	wa, wb := tr.MasterWeights(), tr2.MasterWeights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("restored master differs at %d", i)
		}
	}
	// Continue training both on identical data: must stay bit-exact.
	cont := data.NewCorpus(64, 77)
	cont2 := data.NewCorpus(64, 77)
	for i := 0; i < 5; i++ {
		if _, err := tr.Step(cont.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
		if _, err := tr2.Step(cont2.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	tr2.Flush()
	wa, wb = tr.MasterWeights(), tr2.MasterWeights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("post-restore training diverges at %d", i)
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	tr := NewTrainer(tinyGPT(1), trainerConfig(STV))
	corpus := data.NewCorpus(64, 2)
	if _, err := tr.Step(corpus.NextBatch(1, 8)); err != nil {
		t.Fatal(err)
	}
	// In-flight validation blocks Save.
	var buf bytes.Buffer
	if err := tr.Save(&buf); err == nil {
		t.Error("Save with pending validation should fail")
	}
	tr.Flush()
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt magic.
	bad := append([]byte{0, 0, 0, 0}, buf.Bytes()[4:]...)
	if err := tr.Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Mismatched architecture.
	other := NewTrainer(tinyGPT(1), Config{Adam: optim.DefaultConfig(), BucketElems: 1 << 30})
	if err := other.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("bucket-count mismatch accepted")
	}
}
