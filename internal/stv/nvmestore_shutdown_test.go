package stv

import (
	"os"
	"strings"
	"testing"

	"superoffload/internal/tensor"
)

func seededNVMeStore(t *testing.T, buckets, elems, window int) *NVMeStore {
	t.Helper()
	s, err := NewNVMeStore(NVMeStoreConfig{Dir: t.TempDir(), ResidentBuckets: window})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	for i := 0; i < buckets; i++ {
		master := make([]float32, elems)
		for j := range master {
			master[j] = rng.NormFloat32()
		}
		s.Seed(i, master)
	}
	return s
}

// TestNVMeStoreCloseWithPrefetchInFlight closes the store right after an
// Acquire has auto-launched the next bucket's async prefetch, so the IO
// worker is mid-drain while Close runs. Run under -race in CI: Close must
// wait out every in-flight op (the seeded bootstrap writes, the fetch,
// the write-behind flush) without racing the worker, and still delete the
// backing file.
func TestNVMeStoreCloseWithPrefetchInFlight(t *testing.T) {
	for i := 0; i < 20; i++ {
		s := seededNVMeStore(t, 8, 512, 2)
		path := s.Path()
		// Acquire → prefetch of bucket 1 is now in flight; the mutating
		// release also queues a write-behind on the next eviction.
		st := s.Acquire(0)
		st.Shard.Master[0]++
		s.Release(0, ReleaseFlush)
		// Touch one more bucket so an eviction (and its flush) is queued
		// alongside the still-warm prefetch pipeline.
		s.Acquire(1)
		s.Release(1, ReleaseStep)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("backing file %s survived Close (err=%v)", path, err)
		}
		// Close is idempotent.
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestNVMeStoreAcquireAfterClose: the store is unusable after Close, and
// says so — an Acquire must panic with a clear message instead of the
// opaque send-on-closed-channel the IO queue would otherwise produce.
func TestNVMeStoreAcquireAfterClose(t *testing.T) {
	s := seededNVMeStore(t, 3, 256, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Acquire after Close did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "after Close") {
			t.Fatalf("Acquire after Close panicked with %v, want a clear after-Close message", r)
		}
	}()
	s.Acquire(0)
}
