package stv

import "superoffload/internal/optim"

// Bucket residency. The seed engine kept every bucket's fp32 master
// weights and Adam moments permanently resident in host DRAM, which caps
// trainable model size at host memory — exactly the wall the NVMe third
// tier of ZeRO-Infinity's design breaks. BucketStore makes that residency
// an explicit, pluggable resource: the trainer acquires a bucket's
// optimizer state immediately before touching it and releases it right
// after, so a store may keep only a small window of buckets resident and
// stream the rest through backing storage, overlapping the next bucket's
// fetch with the current bucket's Adam step.
//
// The rollback snapshot rides the store alongside the shard: between a
// speculative step and its (deferred) validation a bucket may be evicted,
// and the snapshot must survive the round trip so Rollback and
// ReExecuteClipped stay bit-exact on windowed state.

// BucketState is the optimizer-tier payload for one bucket: the
// mixed-precision shard (fp32 masters, Adam moments, fp16 working copy)
// plus the rollback snapshot taken by the last speculative step (nil when
// no speculation is outstanding).
type BucketState struct {
	Shard *optim.MixedShard
	Snap  *optim.Snapshot
}

// ReleaseMode tells the store what happened to a bucket's state during
// the hold, separating "needs write-back" from "an Adam step ran" so
// modeled-time accounting stays honest.
type ReleaseMode int

const (
	// ReleaseClean: the holder only read the state; eviction may drop it
	// without a flush.
	ReleaseClean ReleaseMode = iota
	// ReleaseFlush: the state changed (checkpoint load, rollback
	// restore) and must be written back on eviction; no optimizer
	// compute is modeled.
	ReleaseFlush
	// ReleaseStep: the state changed by one Adam step — write back on
	// eviction, and stores that model time account the bucket's step as
	// overlappable compute on the consumer timeline.
	ReleaseStep
)

// BucketStore manages residency of per-bucket optimizer state. Stores are
// driven by a single goroutine (the trainer or one dp rank); they are not
// safe for concurrent use by multiple holders, and at most one bucket is
// held (acquired and not yet released) at a time.
type BucketStore interface {
	// Seed installs bucket idx's initial fp32 master weights with zeroed
	// Adam moments. Called once per bucket, in ascending index order,
	// before training; the set of seeded indices defines the store's
	// prefetch cycle.
	Seed(idx int, master []float32)
	// Acquire makes bucket idx's state resident and returns it. The
	// holder may mutate the state freely until the matching Release.
	Acquire(idx int) *BucketState
	// Release ends the hold started by Acquire; mode reports what the
	// holder did with the state.
	Release(idx int, mode ReleaseMode)
	// Close flushes in-flight work and releases backing resources. The
	// store is unusable afterwards.
	Close() error
}

// TelemetrySource is implemented by stores that keep modeled NVMe-tier
// accounting (NVMeStore, and PlacedStore when its plan has NVMe-tier
// buckets). ok is false when the store has nothing to model.
type TelemetrySource interface {
	// NVMeTelemetry returns the store's modeled flash-tier accounting.
	NVMeTelemetry() (StoreTelemetry, bool)
}

// DRAMStore keeps every bucket permanently resident — the seed engine's
// behavior, and the fast path when optimizer state fits host memory.
type DRAMStore struct {
	states map[int]*BucketState
}

// NewDRAMStore returns an empty all-resident store.
func NewDRAMStore() *DRAMStore {
	return &DRAMStore{states: map[int]*BucketState{}}
}

// Seed installs the bucket's initial state.
func (s *DRAMStore) Seed(idx int, master []float32) {
	s.states[idx] = &BucketState{Shard: optim.NewMixedShard(master)}
}

// Acquire returns the always-resident state.
func (s *DRAMStore) Acquire(idx int) *BucketState { return s.states[idx] }

// Release is a no-op: nothing is ever evicted.
func (s *DRAMStore) Release(idx int, mode ReleaseMode) {}

// Close is a no-op.
func (s *DRAMStore) Close() error { return nil }
