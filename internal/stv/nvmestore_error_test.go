package stv

import (
	"errors"
	"strings"
	"testing"

	"superoffload/internal/place"
)

// mustPanic runs fn expecting a panic whose message contains want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic mentioning %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not mention %q", r, want)
		}
	}()
	fn()
}

// TestNVMeStoreLatchedErrorSurfacesAtNextAcquire is the regression for
// the error-latching bug: a failed write-behind flush has no waiter, so
// its error used to sit latched until Close — training kept running on
// state the backing file no longer held. The contract now is that the
// very next Acquire surfaces the latched failure, even when the bucket
// it asks for is already resident and needs no IO at all.
func TestNVMeStoreLatchedErrorSurfacesAtNextAcquire(t *testing.T) {
	s, err := NewNVMeStore(NVMeStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Seed(i, make([]float32, 64))
	}
	// A healthy hold: bucket 0 is resident, so re-acquiring it performs
	// no file IO.
	s.Acquire(0)
	s.Release(0, ReleaseClean)

	// Latch a background write failure the way the worker does when a
	// write-behind flush errors (nothing waits on those ops).
	injected := errors.New("injected write-behind failure")
	s.errMu.Lock()
	s.ioErr = injected
	s.errMu.Unlock()

	if got := s.Err(); !errors.Is(got, injected) {
		t.Fatalf("Err() = %v, want the latched injected error", got)
	}
	mustPanic(t, "NVMe store IO failed", func() { s.Acquire(0) })
}

// TestNVMeStoreRealIOFailureLatches drives the latch end to end with a
// real failure: the backing file is closed underneath the store, so the
// next fetch's IO errors, the error latches, Acquire panics instead of
// decoding stale bytes, and Close still reports the failure.
func TestNVMeStoreRealIOFailureLatches(t *testing.T) {
	s, err := NewNVMeStore(NVMeStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Seed(i, make([]float32, 64))
	}
	st := s.Acquire(0)
	if len(st.Shard.Master) != 64 {
		t.Fatalf("acquired bucket has %d elems, want 64", len(st.Shard.Master))
	}
	s.Release(0, ReleaseStep)

	// Pull the device out from under the store. Every subsequent worker
	// op fails with "file already closed".
	if err := s.file.Close(); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "NVMe store", func() {
		// The window holds two buckets, so walking the cycle is
		// guaranteed to need a fetch from the dead file within a few
		// acquires.
		for i := 1; i < 4; i++ {
			s.Acquire(i)
			s.Release(i, ReleaseStep)
		}
	})
	if s.Err() == nil {
		t.Fatal("no error latched after the backing file died")
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the latched IO failure")
	}
}

// TestPlacedStoreSurfacesFlashErrorOnResidentAcquire pins the companion
// fix at the placement layer: when the flash tier has latched a fatal
// error, a PlacedStore Acquire must panic even for a bucket routed to
// the resident DRAM tier. A GPU/CPU-heavy plan may not touch the flash
// tier again for a long time, and waiting for the next NVMe-tier acquire
// would let training continue on lost state.
func TestPlacedStoreSurfacesFlashErrorOnResidentAcquire(t *testing.T) {
	plan := place.GPUTail(6, 2).WithNVMeBody()
	ps, err := NewPlacedStore(plan, NVMeStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	for i := 0; i < 6; i++ {
		ps.Seed(i, make([]float32, 32))
	}
	resident := -1
	for i, tier := range plan.Tiers {
		if tier != place.NVMeWindow {
			resident = i
			break
		}
	}
	if resident < 0 {
		t.Fatal("plan has no resident-tier bucket")
	}
	// Healthy resident acquire first.
	ps.Acquire(resident)
	ps.Release(resident, ReleaseClean)

	inner, ok := ps.flash.(*NVMeStore)
	if !ok {
		t.Fatalf("flash tier is %T, want *NVMeStore", ps.flash)
	}
	inner.errMu.Lock()
	inner.ioErr = errors.New("injected flash failure")
	inner.errMu.Unlock()

	mustPanic(t, "NVMe store IO failed", func() { ps.Acquire(resident) })
}
