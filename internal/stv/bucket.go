// Package stv implements speculation-then-validation training (§4.4) on
// real numerics: the CPU-resident optimizer applies per-bucket Adam steps
// speculatively while validation (global-norm clipping check, NaN/Inf
// scan) runs in the background, and rolls back exactly when validation
// fails. The package also provides the synchronize-then-execute (STE)
// baseline schedule so exactness can be asserted: STV training must
// produce bit-identical weights to STE training on the same data.
//
// The bucket partition and its per-bucket gradient/master accessors are
// exported so internal/dp can shard optimizer state across simulated
// superchip ranks along the same bucket boundaries (buckets stay the unit
// of offload, reduction, and rollback). Where a bucket's fp32 masters and
// Adam moments live between touches is delegated to a BucketStore (see
// store.go): permanently resident DRAM, or a windowed file-backed NVMe
// tier with prefetch/write-behind.
package stv

import (
	"fmt"

	"superoffload/internal/fp16"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
)

// Bucket is one contiguous shard of the parameter space: the unit of
// gradient offload, speculative stepping, and rollback. The gradient
// staging buffer (the D2H transfer target) stays DRAM-resident on the
// bucket; the fp32 master copy, Adam moments, and rollback snapshot live
// behind the bucket's store and are acquired only while being touched.
type Bucket struct {
	group nn.Params // model tensors covered by this bucket, in order
	grad  []float32 // staged fp32 gradients (Cast_gpu → Move_fp32 path)
	store BucketStore
	idx   int  // index within the store (the global bucket index)
	dirty bool // a speculative, not-yet-validated step has been applied
}

// NewBucket flattens the given parameter group into one shard, seeding the
// store's fp32 masters from the group's current weights.
func NewBucket(group nn.Params, store BucketStore, idx int) *Bucket {
	n := group.TotalSize()
	flat := make([]float32, n)
	off := 0
	for _, p := range group {
		copy(flat[off:], p.W.Data)
		off += p.Size()
	}
	store.Seed(idx, flat)
	return &Bucket{
		group: group,
		grad:  make([]float32, n),
		store: store,
		idx:   idx,
	}
}

// Size returns the bucket's element count.
func (b *Bucket) Size() int { return len(b.grad) }

// Index returns the bucket's global index (its store key).
func (b *Bucket) Index() int { return b.idx }

// Grad exposes the bucket's staged gradient buffer. Under data parallelism
// the bucket owner reduces rank contributions into it before stepping.
func (b *Bucket) Grad() []float32 { return b.grad }

// Master returns a copy of the bucket's fp32 master weights (a copy, not
// a view: the state may be evicted by the store after this returns).
func (b *Bucket) Master() []float32 {
	return b.AppendMaster(make([]float32, 0, b.Size()))
}

// AppendMaster appends the bucket's fp32 master weights to dst.
func (b *Bucket) AppendMaster(dst []float32) []float32 {
	st := b.store.Acquire(b.idx)
	dst = append(dst, st.Shard.Master...)
	b.store.Release(b.idx, ReleaseClean)
	return dst
}

// Half exposes the bucket's fp16 working copy — the payload the post-step
// all-gather broadcasts to every rank's replica. The slice is valid until
// the bucket's next mutating access (which re-derives it).
func (b *Bucket) Half() []fp16.Num {
	st := b.store.Acquire(b.idx)
	half := st.Shard.Half
	b.store.Release(b.idx, ReleaseClean)
	return half
}

// StageGrads copies (and unscales) the model gradients into the staging
// buffer — the analogue of the bucket's gradient swap-out.
func (b *Bucket) StageGrads(invScale float32) {
	off := 0
	for _, p := range b.group {
		g := p.G.Data
		dst := b.grad[off : off+len(g)]
		for i, v := range g {
			dst[i] = v * invScale
		}
		off += len(g)
	}
}

// AccumGrad stages the model's raw (still loss-scaled) gradients into the
// buffer, overwriting on the first contribution and adding element-wise
// afterwards. Gradient accumulation and the data-parallel reduce both sum
// contributions this way, one whole contribution at a time in a fixed
// order, so the two produce bit-identical sums.
func (b *Bucket) AccumGrad(first bool) {
	GatherGrads(b.group, b.grad, first)
}

// ScaleGrad multiplies the staged gradient buffer by inv in place (the
// final 1/(lossScale·contributions) normalization of an accumulated sum).
func (b *Bucket) ScaleGrad(inv float32) {
	for i := range b.grad {
		b.grad[i] *= inv
	}
}

// GatherGrads flattens the group's raw gradients into dst, overwriting
// when first is true and accumulating otherwise.
func GatherGrads(group nn.Params, dst []float32, first bool) {
	off := 0
	for _, p := range group {
		g := p.G.Data
		d := dst[off : off+len(g)]
		if first {
			copy(d, g)
		} else {
			for i, v := range g {
				d[i] += v
			}
		}
		off += len(g)
	}
}

// AccumInto adds src into dst element-wise (the owner side of the
// data-parallel reduce; contribution order is the caller's contract).
func AccumInto(dst, src []float32, first bool) {
	if first {
		copy(dst, src)
		return
	}
	for i, v := range src {
		dst[i] += v
	}
}

// PublishHalf writes the fp16 payload into the group's model tensors,
// rounding through fp16 exactly as the H2D parameter return does in mixed
// precision (GPU working weights are fp16). One batch Uncast per tensor —
// the table-driven kernel — instead of a per-scalar decode.
func PublishHalf(group nn.Params, half []fp16.Num) {
	off := 0
	for _, p := range group {
		dst := p.W.Data
		fp16.Uncast(dst, half[off:off+len(dst)])
		off += len(dst)
	}
}

// SpeculativeStep acquires the bucket's state, snapshots it, applies Adam
// with the staged (unclipped) gradients, and publishes the new weights.
// The snapshot is stored on the state, so it survives eviction until the
// deferred validation resolves.
func (b *Bucket) SpeculativeStep(cfg optim.Config, impl optim.Impl) {
	st := b.store.Acquire(b.idx)
	st.Snap = optim.TakeSnapshot(st.Snap, st.Shard)
	st.Shard.Step(cfg, impl, b.grad)
	PublishHalf(b.group, st.Shard.Half)
	b.store.Release(b.idx, ReleaseStep)
	b.dirty = true
}

// Commit discards rollback state after successful validation. No store
// access: the speculative state is already the committed state.
func (b *Bucket) Commit() { b.dirty = false }

// Rollback restores the pre-step state bit-exactly and republishes weights.
func (b *Bucket) Rollback() {
	if !b.dirty {
		return
	}
	st := b.store.Acquire(b.idx)
	st.Snap.Restore(st.Shard)
	PublishHalf(b.group, st.Shard.Half)
	b.store.Release(b.idx, ReleaseFlush)
	b.dirty = false
}

// ReExecuteClipped rolls back and re-applies the step with gradients scaled
// by clipScale (§4.4 rollback scenario 2).
func (b *Bucket) ReExecuteClipped(cfg optim.Config, impl optim.Impl, clipScale float64) {
	if !b.dirty {
		return
	}
	st := b.store.Acquire(b.idx)
	optim.ReExecuteClipped(cfg, impl, st.Shard, st.Snap, b.grad, clipScale)
	PublishHalf(b.group, st.Shard.Half)
	b.store.Release(b.idx, ReleaseStep)
	b.dirty = false
}

// DirectStep applies a committed (non-speculative) step with pre-scaled
// gradients — the STE path.
func (b *Bucket) DirectStep(cfg optim.Config, impl optim.Impl, scale float64) {
	if scale != 1.0 {
		s := float32(scale)
		for i := range b.grad {
			b.grad[i] *= s
		}
	}
	st := b.store.Acquire(b.idx)
	st.Shard.Step(cfg, impl, b.grad)
	PublishHalf(b.group, st.Shard.Half)
	b.store.Release(b.idx, ReleaseStep)
}

// PartitionGroups splits params into ordered groups of at most targetElems
// elements without allocating optimizer state (a parameter larger than the
// target gets its own group; tensors are never split so the optimizer sees
// whole tensors). Every rank of a data-parallel engine derives the same
// layout from its replica, so bucket indices agree across ranks.
func PartitionGroups(params nn.Params, targetElems int) []nn.Params {
	if targetElems <= 0 {
		panic(fmt.Sprintf("stv: bucket size %d must be positive", targetElems))
	}
	var out []nn.Params
	var cur nn.Params
	n := 0
	for _, p := range params {
		if n > 0 && n+p.Size() > targetElems {
			out = append(out, cur)
			cur, n = nil, 0
		}
		cur = append(cur, p)
		n += p.Size()
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// partitionParams groups model parameters into buckets of at most
// targetElems elements over the given store.
func partitionParams(params nn.Params, targetElems int, store BucketStore) []*Bucket {
	groups := PartitionGroups(params, targetElems)
	out := make([]*Bucket, len(groups))
	for i, g := range groups {
		out[i] = NewBucket(g, store, i)
	}
	return out
}
