// Package stv implements speculation-then-validation training (§4.4) on
// real numerics: the CPU-resident optimizer applies per-bucket Adam steps
// speculatively while validation (global-norm clipping check, NaN/Inf
// scan) runs in the background, and rolls back exactly when validation
// fails. The package also provides the synchronize-then-execute (STE)
// baseline schedule so exactness can be asserted: STV training must
// produce bit-identical weights to STE training on the same data.
package stv

import (
	"fmt"

	"superoffload/internal/fp16"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
)

// bucket is one contiguous shard of the parameter space: the unit of
// gradient offload, speculative stepping, and rollback. It owns the
// CPU-side fp32 master copy and Adam moments (the offloaded optimizer
// states) plus a gradient staging buffer standing in for the D2H transfer
// target.
type bucket struct {
	params []*nn.Param // model tensors covered by this bucket, in order
	shard  *optim.MixedShard
	grad   []float32 // staged fp32 gradients (Cast_gpu → Move_fp32 path)
	snap   *optim.Snapshot
	dirty  bool // a speculative, not-yet-validated step has been applied
}

// newBucket flattens the given params into one shard.
func newBucket(params []*nn.Param) *bucket {
	n := 0
	for _, p := range params {
		n += p.Size()
	}
	flat := make([]float32, n)
	off := 0
	for _, p := range params {
		copy(flat[off:], p.W.Data)
		off += p.Size()
	}
	return &bucket{
		params: params,
		shard:  optim.NewMixedShard(flat),
		grad:   make([]float32, n),
	}
}

// size returns the bucket's element count.
func (b *bucket) size() int { return len(b.grad) }

// stageGrads copies (and unscales) the model gradients into the staging
// buffer — the analogue of the bucket's gradient swap-out.
func (b *bucket) stageGrads(invScale float32) {
	off := 0
	for _, p := range b.params {
		g := p.G.Data
		dst := b.grad[off : off+len(g)]
		for i, v := range g {
			dst[i] = v * invScale
		}
		off += len(g)
	}
}

// writeBack publishes the shard's post-step weights to the model tensors,
// rounding through fp16 exactly as the H2D parameter return does in mixed
// precision (GPU working weights are fp16).
func (b *bucket) writeBack() {
	off := 0
	for _, p := range b.params {
		dst := p.W.Data
		for i := range dst {
			dst[i] = b.shard.Half[off+i].Float32()
		}
		off += len(dst)
	}
}

// speculativeStep snapshots, applies Adam with the staged (unclipped)
// gradients, and publishes the new weights.
func (b *bucket) speculativeStep(cfg optim.Config, impl optim.Impl) {
	b.snap = optim.TakeSnapshot(b.snap, b.shard)
	b.shard.Step(cfg, impl, b.grad)
	b.writeBack()
	b.dirty = true
}

// commit discards rollback state after successful validation.
func (b *bucket) commit() { b.dirty = false }

// rollback restores the pre-step state bit-exactly and republishes weights.
func (b *bucket) rollback() {
	if !b.dirty {
		return
	}
	b.snap.Restore(b.shard)
	b.writeBack()
	b.dirty = false
}

// reExecuteClipped rolls back and re-applies the step with gradients scaled
// by clipScale (§4.4 rollback scenario 2).
func (b *bucket) reExecuteClipped(cfg optim.Config, impl optim.Impl, clipScale float64) {
	if !b.dirty {
		return
	}
	optim.ReExecuteClipped(cfg, impl, b.shard, b.snap, b.grad, clipScale)
	b.writeBack()
	b.dirty = false
}

// directStep applies a committed (non-speculative) step with pre-scaled
// gradients — the STE path.
func (b *bucket) directStep(cfg optim.Config, impl optim.Impl, scale float64) {
	if scale != 1.0 {
		s := float32(scale)
		for i := range b.grad {
			b.grad[i] *= s
		}
	}
	b.shard.Step(cfg, impl, b.grad)
	b.writeBack()
}

// halfBytes returns the bucket's fp16 payload size in bytes (diagnostics).
func (b *bucket) halfBytes() int { return 2 * len(b.shard.Half) }

// refreshHalf re-derives the fp16 working copy from the master weights
// (after a checkpoint load).
func (b *bucket) refreshHalf() {
	b.shard.Half = fp16.Cast(b.shard.Half, b.shard.Master)
}

var _ = fp16.Num(0) // fp16 is part of the package contract via MixedShard

// partitionParams groups model parameters into buckets of at most
// targetElems elements (a parameter larger than the target gets its own
// bucket; tensors are never split so the optimizer sees whole tensors).
func partitionParams(params nn.Params, targetElems int) []*bucket {
	if targetElems <= 0 {
		panic(fmt.Sprintf("stv: bucket size %d must be positive", targetElems))
	}
	var out []*bucket
	var cur []*nn.Param
	n := 0
	for _, p := range params {
		if n > 0 && n+p.Size() > targetElems {
			out = append(out, newBucket(cur))
			cur, n = nil, 0
		}
		cur = append(cur, p)
		n += p.Size()
	}
	if len(cur) > 0 {
		out = append(out, newBucket(cur))
	}
	return out
}
