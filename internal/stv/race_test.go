package stv

import (
	"bytes"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/optim"
)

// TestBackgroundValidationStress hammers the Step/StepAccum/Flush/Save
// interleavings that keep a background validation in flight, over many
// tiny buckets so the validator goroutine's scan is long enough to overlap
// the next step's forward, backward, and gradient staging. Run under
// -race in CI, this is the harness that proves the §4.4 background
// validator (launchValidation / resolvePending) shares no unsynchronized
// state with the training loop.
func TestBackgroundValidationStress(t *testing.T) {
	cfg := trainerConfig(STV)
	cfg.BucketElems = 400 // dozens of buckets → long validator scans
	cfg.ClipNorm = 0.4    // rollbacks nearly every step
	cfg.Scaler = optim.NewLossScaler()
	cfg.InjectBad = func(step int) bool { return step%11 == 7 }
	tr := NewTrainer(tinyGPT(13), cfg)
	if tr.NumBuckets() < 20 {
		t.Fatalf("stress needs many buckets, got %d", tr.NumBuckets())
	}
	corpus := data.NewCorpus(64, 29)

	var checkpoint bytes.Buffer
	for i := 0; i < 60; i++ {
		switch i % 6 {
		case 0, 1, 2, 3:
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		case 4:
			// Accumulation window with the previous validation still
			// in flight: the resolve happens at the window's first
			// forward while the validator may still be scanning.
			w := []data.Batch{corpus.NextBatch(1, 8), corpus.NextBatch(1, 8)}
			if _, err := tr.StepAccum(w); err != nil {
				t.Fatal(err)
			}
		case 5:
			// Save must be refused while the validation is pending,
			// then succeed after Flush — interleaving checkpoint I/O
			// with the validator's lifecycle.
			if err := tr.Save(&checkpoint); err == nil {
				t.Fatal("Save with validation in flight should be refused")
			}
			if _, err := tr.Flush(); err != nil {
				t.Fatal(err)
			}
			checkpoint.Reset()
			if err := tr.Save(&checkpoint); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flush with nothing pending is a no-op.
	if rolled, err := tr.Flush(); err != nil || rolled {
		t.Fatalf("idle Flush: rolled=%v err=%v", rolled, err)
	}

	// Load back the last checkpoint and keep training: the restored
	// state must accept new speculative steps and validations.
	if err := tr.Load(bytes.NewReader(checkpoint.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Rollbacks() == 0 {
		t.Error("stress run produced no rollbacks; the validator path was idle")
	}
	if st.Commits+st.Rollbacks() != st.Steps {
		t.Errorf("stats don't add up: %+v", st)
	}
}
