package stv

import (
	"encoding/binary"
	"fmt"
	"io"

	"superoffload/internal/fp16"
	"superoffload/internal/optim"
)

// Checkpointing: serialize the CPU-resident training state (fp32 master
// weights, Adam moments, step counters, loss scale) so training can resume
// exactly. The in-flight validation must be resolved first (Flush); a
// checkpoint of a speculative, unvalidated step would not be exact.
//
// The format is defined over the global bucket order, independent of which
// rank owns each bucket, so a single-rank engine and an R-rank
// data-parallel engine on the same trajectory write byte-identical
// checkpoints and can restore each other's.

// checkpointMagic identifies the format; bump on layout changes.
const checkpointMagic uint32 = 0x53_4F_43_32 // "SOC2"

// WriteCheckpoint serializes training state over buckets in the given
// (global) order. The scaler (nil when loss scaling is off) contributes
// the scale and the overflow-free streak, both needed for exact resume.
func WriteCheckpoint(w io.Writer, stepIndex int, scaler *optim.LossScaler, buckets []*Bucket) error {
	if err := binary.Write(w, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	scale, goodSteps := 0.0, 0
	if scaler != nil {
		scale, goodSteps = scaler.Scale, scaler.GoodSteps
	}
	header := []int64{int64(len(buckets)), int64(stepIndex), int64(goodSteps)}
	if err := binary.Write(w, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, scale); err != nil {
		return err
	}
	for _, bk := range buckets {
		if err := bk.writeRecord(w); err != nil {
			return err
		}
	}
	return nil
}

// writeRecord streams one bucket's state (acquired from its store, so a
// windowed NVMe store pages the bucket in just for the write). The layout
// carries only shard state, never rollback snapshots — checkpoints are
// taken flushed, with no speculation outstanding — so the bytes are
// identical across store backends.
func (b *Bucket) writeRecord(w io.Writer) error {
	st := b.store.Acquire(b.idx)
	defer b.store.Release(b.idx, ReleaseClean)
	if err := binary.Write(w, binary.LittleEndian, int64(b.Size())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(st.Shard.State.Step)); err != nil {
		return err
	}
	for _, arr := range [][]float32{st.Shard.Master, st.Shard.State.M, st.Shard.State.V} {
		if err := binary.Write(w, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return nil
}

// ReadCheckpoint restores state written by WriteCheckpoint into buckets
// (which must match the checkpoint's layout), republishing the
// fp16-rounded weights to each bucket's model tensors. A non-nil scaler
// receives the checkpointed scale and overflow-free streak (skipped when
// the checkpoint trained unscaled). Returns the restored step index.
func ReadCheckpoint(r io.Reader, scaler *optim.LossScaler, buckets []*Bucket) (stepIndex int, err error) {
	var magic uint32
	if err = binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return 0, err
	}
	if magic != checkpointMagic {
		return 0, fmt.Errorf("stv: bad checkpoint magic %#x", magic)
	}
	header := make([]int64, 3)
	if err = binary.Read(r, binary.LittleEndian, header); err != nil {
		return 0, err
	}
	if int(header[0]) != len(buckets) {
		return 0, fmt.Errorf("stv: checkpoint has %d buckets, engine has %d", header[0], len(buckets))
	}
	stepIndex = int(header[1])
	var scale float64
	if err = binary.Read(r, binary.LittleEndian, &scale); err != nil {
		return 0, err
	}
	if scaler != nil && scale > 0 {
		scaler.Scale = scale
		scaler.GoodSteps = int(header[2])
	}
	for _, bk := range buckets {
		if err = bk.readRecord(r); err != nil {
			return 0, err
		}
	}
	return stepIndex, nil
}

// readRecord restores one bucket's state through its store, discarding any
// stale rollback snapshot, re-deriving the fp16 working copy, and
// republishing the rounded weights to the bucket's model tensors.
func (b *Bucket) readRecord(r io.Reader) error {
	st := b.store.Acquire(b.idx)
	defer b.store.Release(b.idx, ReleaseFlush)
	var n, step int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != b.Size() {
		return fmt.Errorf("stv: bucket size mismatch: checkpoint %d, engine %d", n, b.Size())
	}
	if err := binary.Read(r, binary.LittleEndian, &step); err != nil {
		return err
	}
	st.Shard.State.Step = int(step)
	for _, arr := range [][]float32{st.Shard.Master, st.Shard.State.M, st.Shard.State.V} {
		if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	st.Snap = nil
	b.dirty = false
	st.Shard.Half = fp16.Cast(st.Shard.Half[:0], st.Shard.Master)
	PublishHalf(b.group, st.Shard.Half)
	return nil
}

// Save writes the trainer state. It fails if a validation is in flight.
func (t *Trainer) Save(w io.Writer) error {
	if t.pending {
		return fmt.Errorf("stv: Flush before Save (validation in flight)")
	}
	return WriteCheckpoint(w, t.stepIndex, t.Cfg.Scaler, t.buckets)
}

// Load restores trainer state saved by Save into a trainer built over the
// same model architecture and bucket configuration, then republishes the
// fp16-rounded weights to the model.
func (t *Trainer) Load(r io.Reader) error {
	if t.pending {
		return fmt.Errorf("stv: Flush before Load (validation in flight)")
	}
	stepIndex, err := ReadCheckpoint(r, t.Cfg.Scaler, t.buckets)
	if err != nil {
		return err
	}
	t.stepIndex = stepIndex
	return nil
}

// StepIndex reports how many optimizer steps the trainer has attempted
// (restored by Load).
func (t *Trainer) StepIndex() int { return t.stepIndex }
