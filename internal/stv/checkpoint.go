package stv

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpointing: serialize the CPU-resident training state (fp32 master
// weights, Adam moments, step counters, loss scale) so training can resume
// exactly. The in-flight validation must be resolved first (Flush); a
// checkpoint of a speculative, unvalidated step would not be exact.

// checkpointMagic identifies the format; bump on layout changes.
const checkpointMagic uint32 = 0x53_4F_43_31 // "SOC1"

// Save writes the trainer state. It fails if a validation is in flight.
func (t *Trainer) Save(w io.Writer) error {
	if t.pending {
		return fmt.Errorf("stv: Flush before Save (validation in flight)")
	}
	if err := binary.Write(w, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	header := []int64{int64(len(t.buckets)), int64(t.stepIndex)}
	if err := binary.Write(w, binary.LittleEndian, header); err != nil {
		return err
	}
	scale := 0.0
	if t.Cfg.Scaler != nil {
		scale = t.Cfg.Scaler.Scale
	}
	if err := binary.Write(w, binary.LittleEndian, scale); err != nil {
		return err
	}
	for _, bk := range t.buckets {
		if err := binary.Write(w, binary.LittleEndian, int64(bk.size())); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, int64(bk.shard.State.Step)); err != nil {
			return err
		}
		for _, arr := range [][]float32{bk.shard.Master, bk.shard.State.M, bk.shard.State.V} {
			if err := binary.Write(w, binary.LittleEndian, arr); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load restores trainer state saved by Save into a trainer built over the
// same model architecture and bucket configuration, then republishes the
// fp16-rounded weights to the model.
func (t *Trainer) Load(r io.Reader) error {
	if t.pending {
		return fmt.Errorf("stv: Flush before Load (validation in flight)")
	}
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != checkpointMagic {
		return fmt.Errorf("stv: bad checkpoint magic %#x", magic)
	}
	header := make([]int64, 2)
	if err := binary.Read(r, binary.LittleEndian, header); err != nil {
		return err
	}
	if int(header[0]) != len(t.buckets) {
		return fmt.Errorf("stv: checkpoint has %d buckets, trainer has %d", header[0], len(t.buckets))
	}
	t.stepIndex = int(header[1])
	var scale float64
	if err := binary.Read(r, binary.LittleEndian, &scale); err != nil {
		return err
	}
	if t.Cfg.Scaler != nil && scale > 0 {
		t.Cfg.Scaler.Scale = scale
	}
	for _, bk := range t.buckets {
		var n, step int64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != bk.size() {
			return fmt.Errorf("stv: bucket size mismatch: checkpoint %d, trainer %d", n, bk.size())
		}
		if err := binary.Read(r, binary.LittleEndian, &step); err != nil {
			return err
		}
		bk.shard.State.Step = int(step)
		for _, arr := range [][]float32{bk.shard.Master, bk.shard.State.M, bk.shard.State.V} {
			if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
				return err
			}
		}
		bk.shard.Half = bk.shard.Half[:0]
		bk.refreshHalf()
		bk.writeBack()
	}
	return nil
}

// StepIndex reports how many optimizer steps the trainer has attempted
// (restored by Load).
func (t *Trainer) StepIndex() int { return t.stepIndex }
