package stv

import (
	"encoding/binary"
	"fmt"
	"io"

	"superoffload/internal/optim"
)

// Checkpointing: serialize the CPU-resident training state (fp32 master
// weights, Adam moments, step counters, loss scale) so training can resume
// exactly. The in-flight validation must be resolved first (Flush); a
// checkpoint of a speculative, unvalidated step would not be exact.
//
// The format is defined over the global bucket order, independent of which
// rank owns each bucket, so a single-rank engine and an R-rank
// data-parallel engine on the same trajectory write byte-identical
// checkpoints and can restore each other's.

// checkpointMagic identifies the format; bump on layout changes.
const checkpointMagic uint32 = 0x53_4F_43_32 // "SOC2"

// WriteCheckpoint serializes training state over buckets in the given
// (global) order. The scaler (nil when loss scaling is off) contributes
// the scale and the overflow-free streak, both needed for exact resume.
func WriteCheckpoint(w io.Writer, stepIndex int, scaler *optim.LossScaler, buckets []*Bucket) error {
	if err := binary.Write(w, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	scale, goodSteps := 0.0, 0
	if scaler != nil {
		scale, goodSteps = scaler.Scale, scaler.GoodSteps
	}
	header := []int64{int64(len(buckets)), int64(stepIndex), int64(goodSteps)}
	if err := binary.Write(w, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, scale); err != nil {
		return err
	}
	for _, bk := range buckets {
		if err := binary.Write(w, binary.LittleEndian, int64(bk.Size())); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, int64(bk.shard.State.Step)); err != nil {
			return err
		}
		for _, arr := range [][]float32{bk.shard.Master, bk.shard.State.M, bk.shard.State.V} {
			if err := binary.Write(w, binary.LittleEndian, arr); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCheckpoint restores state written by WriteCheckpoint into buckets
// (which must match the checkpoint's layout), republishing the
// fp16-rounded weights to each bucket's model tensors. A non-nil scaler
// receives the checkpointed scale and overflow-free streak (skipped when
// the checkpoint trained unscaled). Returns the restored step index.
func ReadCheckpoint(r io.Reader, scaler *optim.LossScaler, buckets []*Bucket) (stepIndex int, err error) {
	var magic uint32
	if err = binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return 0, err
	}
	if magic != checkpointMagic {
		return 0, fmt.Errorf("stv: bad checkpoint magic %#x", magic)
	}
	header := make([]int64, 3)
	if err = binary.Read(r, binary.LittleEndian, header); err != nil {
		return 0, err
	}
	if int(header[0]) != len(buckets) {
		return 0, fmt.Errorf("stv: checkpoint has %d buckets, engine has %d", header[0], len(buckets))
	}
	stepIndex = int(header[1])
	var scale float64
	if err = binary.Read(r, binary.LittleEndian, &scale); err != nil {
		return 0, err
	}
	if scaler != nil && scale > 0 {
		scaler.Scale = scale
		scaler.GoodSteps = int(header[2])
	}
	for _, bk := range buckets {
		var n, step int64
		if err = binary.Read(r, binary.LittleEndian, &n); err != nil {
			return 0, err
		}
		if int(n) != bk.Size() {
			return 0, fmt.Errorf("stv: bucket size mismatch: checkpoint %d, engine %d", n, bk.Size())
		}
		if err = binary.Read(r, binary.LittleEndian, &step); err != nil {
			return 0, err
		}
		bk.shard.State.Step = int(step)
		for _, arr := range [][]float32{bk.shard.Master, bk.shard.State.M, bk.shard.State.V} {
			if err = binary.Read(r, binary.LittleEndian, arr); err != nil {
				return 0, err
			}
		}
		bk.shard.Half = bk.shard.Half[:0]
		bk.refreshHalf()
		bk.writeBack()
	}
	return stepIndex, nil
}

// Save writes the trainer state. It fails if a validation is in flight.
func (t *Trainer) Save(w io.Writer) error {
	if t.pending {
		return fmt.Errorf("stv: Flush before Save (validation in flight)")
	}
	return WriteCheckpoint(w, t.stepIndex, t.Cfg.Scaler, t.buckets)
}

// Load restores trainer state saved by Save into a trainer built over the
// same model architecture and bucket configuration, then republishes the
// fp16-rounded weights to the model.
func (t *Trainer) Load(r io.Reader) error {
	if t.pending {
		return fmt.Errorf("stv: Flush before Load (validation in flight)")
	}
	stepIndex, err := ReadCheckpoint(r, t.Cfg.Scaler, t.buckets)
	if err != nil {
		return err
	}
	t.stepIndex = stepIndex
	return nil
}

// StepIndex reports how many optimizer steps the trainer has attempted
// (restored by Load).
func (t *Trainer) StepIndex() int { return t.stepIndex }
