package stv

import (
	"fmt"

	"superoffload/internal/place"
)

// PlacedStore routes bucket residency by placement tier: GPU-resident and
// CPU-tier buckets stay permanently resident (DRAM semantics — in the
// modeled system the tail lives in HBM and the body in host DRAM), while
// NVMe-tier buckets spill through a windowed flash store between touches
// — the single-lane NVMeStore or the multi-path MLPStore. The inner
// store is only created when the plan actually has NVMe buckets, and its
// prefetch cycle covers exactly the NVMe-tier indices seeded into it.
type PlacedStore struct {
	tiers []place.Tier
	dram  *DRAMStore
	flash BucketStore // nil when the plan has no NVMe-tier buckets
}

// fatalErrSource is implemented by flash stores whose latched background
// errors must abort training (NVMeStore: no surviving path to re-route
// to). MLPStore deliberately does not implement it — its latched errors
// record graceful degradation, not corruption.
type fatalErrSource interface {
	fatalIOErr() error
}

// NewPlacedStore builds a store for the plan over a single-lane inner
// NVMe store; cfg parameterizes it (ignored when no bucket is
// NVMe-tier).
func NewPlacedStore(plan place.Plan, cfg NVMeStoreConfig) (*PlacedStore, error) {
	return NewPlacedStoreFlash(plan, func() (BucketStore, error) {
		return NewNVMeStore(cfg)
	})
}

// NewPlacedStoreFlash builds a store for the plan with the flash tier
// supplied by newFlash — the hook the facade uses to put the multi-path
// MLPStore behind a placement. newFlash is only called when the plan has
// NVMe-tier buckets.
func NewPlacedStoreFlash(plan place.Plan, newFlash func() (BucketStore, error)) (*PlacedStore, error) {
	s := &PlacedStore{
		tiers: append([]place.Tier(nil), plan.Tiers...),
		dram:  NewDRAMStore(),
	}
	if plan.Counts().NVMe > 0 {
		flash, err := newFlash()
		if err != nil {
			return nil, err
		}
		s.flash = flash
	}
	return s, nil
}

// route picks the backing store for a bucket index. Indices beyond the
// plan default to resident (place.Plan.Tier's graceful default).
func (s *PlacedStore) route(idx int) BucketStore {
	if s.flash != nil && idx >= 0 && idx < len(s.tiers) && s.tiers[idx] == place.NVMeWindow {
		return s.flash
	}
	return s.dram
}

// Seed installs the bucket's initial state in its tier's backing store.
func (s *PlacedStore) Seed(idx int, master []float32) { s.route(idx).Seed(idx, master) }

// Acquire makes the bucket's state resident and returns it. A fatal
// error latched by the flash tier (a failed write-behind on the
// single-lane store) surfaces here even when this bucket routes to a
// resident tier: waiting for the next NVMe-tier acquire — which a
// GPU/CPU-heavy plan may never issue again — would let training continue
// on state the backing file no longer holds.
func (s *PlacedStore) Acquire(idx int) *BucketState {
	if f, ok := s.flash.(fatalErrSource); ok {
		if err := f.fatalIOErr(); err != nil {
			panic(fmt.Sprintf("stv: NVMe store IO failed: %v", err))
		}
	}
	return s.route(idx).Acquire(idx)
}

// Release ends the hold started by Acquire.
func (s *PlacedStore) Release(idx int, mode ReleaseMode) { s.route(idx).Release(idx, mode) }

// Close releases the inner flash store's backing resources (no-op for
// the resident tiers).
func (s *PlacedStore) Close() error {
	err := s.dram.Close()
	if s.flash != nil {
		if nerr := s.flash.Close(); err == nil {
			err = nerr
		}
	}
	return err
}

// NVMeTelemetry implements TelemetrySource: the inner flash store's
// modeled accounting, present only when the plan has NVMe-tier buckets.
func (s *PlacedStore) NVMeTelemetry() (StoreTelemetry, bool) {
	if src, ok := s.flash.(TelemetrySource); ok {
		return src.NVMeTelemetry()
	}
	return StoreTelemetry{}, false
}
