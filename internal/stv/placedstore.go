package stv

import "superoffload/internal/place"

// PlacedStore routes bucket residency by placement tier: GPU-resident and
// CPU-tier buckets stay permanently resident (DRAM semantics — in the
// modeled system the tail lives in HBM and the body in host DRAM), while
// NVMe-tier buckets spill through a windowed file-backed NVMeStore
// between touches. The inner store is only created when the plan actually
// has NVMe buckets, and its prefetch cycle covers exactly the NVMe-tier
// indices seeded into it.
type PlacedStore struct {
	tiers []place.Tier
	dram  *DRAMStore
	nvme  *NVMeStore // nil when the plan has no NVMe-tier buckets
}

// NewPlacedStore builds a store for the plan; cfg parameterizes the inner
// NVMe store (ignored when no bucket is NVMe-tier).
func NewPlacedStore(plan place.Plan, cfg NVMeStoreConfig) (*PlacedStore, error) {
	s := &PlacedStore{
		tiers: append([]place.Tier(nil), plan.Tiers...),
		dram:  NewDRAMStore(),
	}
	if plan.Counts().NVMe > 0 {
		nvme, err := NewNVMeStore(cfg)
		if err != nil {
			return nil, err
		}
		s.nvme = nvme
	}
	return s, nil
}

// route picks the backing store for a bucket index. Indices beyond the
// plan default to resident (place.Plan.Tier's graceful default).
func (s *PlacedStore) route(idx int) BucketStore {
	if s.nvme != nil && idx >= 0 && idx < len(s.tiers) && s.tiers[idx] == place.NVMeWindow {
		return s.nvme
	}
	return s.dram
}

// Seed installs the bucket's initial state in its tier's backing store.
func (s *PlacedStore) Seed(idx int, master []float32) { s.route(idx).Seed(idx, master) }

// Acquire makes the bucket's state resident and returns it.
func (s *PlacedStore) Acquire(idx int) *BucketState { return s.route(idx).Acquire(idx) }

// Release ends the hold started by Acquire.
func (s *PlacedStore) Release(idx int, mode ReleaseMode) { s.route(idx).Release(idx, mode) }

// Close releases the inner NVMe store's backing resources (no-op for the
// resident tiers).
func (s *PlacedStore) Close() error {
	err := s.dram.Close()
	if s.nvme != nil {
		if nerr := s.nvme.Close(); err == nil {
			err = nerr
		}
	}
	return err
}

// NVMeTelemetry implements TelemetrySource: the inner store's modeled
// accounting, present only when the plan has NVMe-tier buckets.
func (s *PlacedStore) NVMeTelemetry() (StoreTelemetry, bool) {
	if s.nvme == nil {
		return StoreTelemetry{}, false
	}
	return s.nvme.Telemetry(), true
}
