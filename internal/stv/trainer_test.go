package stv

import (
	"math"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/tensor"
)

func tinyGPT(seed uint64) *nn.GPT {
	cfg := model.Config{Name: "t", Layers: 2, Hidden: 32, Heads: 2, Vocab: 64}
	return nn.NewGPT(cfg, 16, tensor.NewRNG(seed))
}

func trainerConfig(mode Mode) Config {
	a := optim.DefaultConfig()
	a.LR = 3e-3
	return Config{
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    1.0,
		BucketElems: 20000, // several buckets for the tiny model
		Mode:        mode,
	}
}

func runTraining(t *testing.T, mode Mode, steps int, inject func(int) bool, scaler *optim.LossScaler) (*Trainer, []float64) {
	t.Helper()
	m := tinyGPT(42)
	cfg := trainerConfig(mode)
	cfg.InjectBad = inject
	cfg.Scaler = scaler
	tr := NewTrainer(m, cfg)
	corpus := data.NewCorpus(64, 123)
	var losses []float64
	for i := 0; i < steps; i++ {
		b := corpus.NextBatch(2, 8)
		loss, err := tr.Step(b)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return tr, losses
}

func TestBucketPartition(t *testing.T) {
	m := tinyGPT(1)
	tr := NewTrainer(m, trainerConfig(STV))
	if tr.NumBuckets() < 2 {
		t.Fatalf("expected multiple buckets, got %d", tr.NumBuckets())
	}
	// Every parameter appears in exactly one bucket, in order, and the
	// flattened sizes add up.
	total := 0
	for _, bk := range tr.buckets {
		total += bk.Size()
	}
	if total != m.NumParams() {
		t.Errorf("bucketed %d elems, model has %d", total, m.NumParams())
	}
}

func TestPartitionRespectsBudgetWhenPossible(t *testing.T) {
	m := tinyGPT(1)
	buckets := partitionParams(m.Params(), 50000, NewDRAMStore())
	for i, bk := range buckets {
		if len(bk.group) > 1 && bk.Size() > 50000 {
			t.Errorf("bucket %d exceeds budget with %d elems across %d tensors",
				i, bk.Size(), len(bk.group))
		}
	}
}

// TestSTVMatchesSTEBitExact is the central exactness claim of §4.4: STV is
// "an exact optimization" — same data, same faults, same final weights as
// the synchronous schedule.
func TestSTVMatchesSTEBitExact(t *testing.T) {
	inject := func(step int) bool { return step == 4 || step == 11 }
	ste, _ := runTraining(t, STE, 25, inject, optim.NewLossScaler())
	stv, _ := runTraining(t, STV, 25, inject, optim.NewLossScaler())

	a, b := ste.MasterWeights(), stv.MasterWeights()
	if len(a) != len(b) {
		t.Fatalf("weight counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weights diverge at %d: STE %v vs STV %v", i, a[i], b[i])
		}
	}
	// The model's published fp16-rounded weights must agree too.
	for pi, p := range ste.Model.Params() {
		q := stv.Model.Params()[pi]
		for i := range p.W.Data {
			if p.W.Data[i] != q.W.Data[i] {
				t.Fatalf("model weights diverge: param %s idx %d", p.Name, i)
			}
		}
	}
}

func TestSTVRollbackCountsMatchSTE(t *testing.T) {
	inject := func(step int) bool { return step == 3 }
	ste, _ := runTraining(t, STE, 20, inject, optim.NewLossScaler())
	stv, _ := runTraining(t, STV, 20, inject, optim.NewLossScaler())
	if ste.Stats().SkipRolls != stv.Stats().SkipRolls {
		t.Errorf("skip counts differ: STE %d, STV %d", ste.Stats().SkipRolls, stv.Stats().SkipRolls)
	}
	if ste.Stats().ClipRolls != stv.Stats().ClipRolls {
		t.Errorf("clip counts differ: STE %d, STV %d", ste.Stats().ClipRolls, stv.Stats().ClipRolls)
	}
	if stv.Stats().SkipRolls != 1 {
		t.Errorf("expected exactly 1 skip, got %d", stv.Stats().SkipRolls)
	}
	if stv.Stats().Redos == 0 {
		t.Error("rollbacks should force forward redos under STV")
	}
}

func TestTrainingLearnsUnderSTV(t *testing.T) {
	_, losses := runTraining(t, STV, 120, nil, nil)
	first := avg(losses[:10])
	last := avg(losses[len(losses)-10:])
	if last > first*0.85 {
		t.Errorf("STV training not learning: first %.3f last %.3f", first, last)
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss corrupted: %v", l)
		}
	}
}

func TestClipRollbackFrequencyTracksThreshold(t *testing.T) {
	// Rollback frequency under STV must track the clipping threshold:
	// far above typical gradient norms (~3 on this workload) clipping
	// never fires; far below, it fires on nearly every step — and
	// training stays exact and stable either way. (The "frequent during
	// warm-up, then rare" envelope of Fig. 14 is exercised at paper
	// scale by the experiments package.)
	run := func(clip float64) *Trainer {
		m := tinyGPT(7)
		cfg := trainerConfig(STV)
		cfg.ClipNorm = clip
		tr := NewTrainer(m, cfg)
		corpus := data.NewCorpus(64, 9)
		for i := 0; i < 40; i++ {
			if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	loose := run(50.0)
	tight := run(0.35)
	if loose.Stats().ClipRolls != 0 {
		t.Errorf("loose threshold clipped %d times, want 0", loose.Stats().ClipRolls)
	}
	if tight.Stats().ClipRolls < 30 {
		t.Errorf("tight threshold clipped only %d/40 steps", tight.Stats().ClipRolls)
	}
	if tight.Stats().Commits+tight.Stats().Rollbacks() != tight.Stats().Steps {
		t.Errorf("stats don't add up: %+v", tight.Stats())
	}
}

func TestSkipOnInjectedOverflow(t *testing.T) {
	inject := func(step int) bool { return step == 2 }
	scaler := optim.NewLossScaler()
	tr, _ := runTraining(t, STV, 6, inject, scaler)
	if tr.Stats().SkipRolls != 1 {
		t.Fatalf("skips = %d, want 1", tr.Stats().SkipRolls)
	}
	if scaler.Scale >= 65536 {
		t.Errorf("loss scale should have halved: %v", scaler.Scale)
	}
}

func TestFlushResolvesFinalStep(t *testing.T) {
	m := tinyGPT(3)
	cfg := trainerConfig(STV)
	// Inject on the last step: only Flush can catch it.
	cfg.InjectBad = func(step int) bool { return step == 5 }
	tr := NewTrainer(m, cfg)
	corpus := data.NewCorpus(64, 5)
	for i := 0; i < 5; i++ {
		if _, err := tr.Step(corpus.NextBatch(1, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().SkipRolls != 0 {
		t.Fatalf("premature skip")
	}
	rolled, err := tr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !rolled || tr.Stats().SkipRolls != 1 {
		t.Errorf("flush did not resolve final validation: rolled=%v skips=%d", rolled, tr.Stats().SkipRolls)
	}
}

func TestModeStrings(t *testing.T) {
	if STE.String() != "STE" || STV.String() != "STV" {
		t.Error("mode strings")
	}
	if (Stats{ClipRolls: 2, SkipRolls: 3}).Rollbacks() != 5 {
		t.Error("rollback sum")
	}
}

func TestUnknownModeErrors(t *testing.T) {
	m := tinyGPT(1)
	cfg := trainerConfig(STV)
	cfg.Mode = Mode(99)
	tr := NewTrainer(m, cfg)
	if _, err := tr.Step(data.NewCorpus(64, 1).NextBatch(1, 4)); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
