package stv

import (
	"fmt"
	"math"
	"sync"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/hw"
	"superoffload/internal/nn"
	"superoffload/internal/obs"
	"superoffload/internal/optim"
	"superoffload/internal/place"
)

// Mode selects the optimizer scheduling scheme.
type Mode int

const (
	// STE is synchronize-then-execute: wait for all gradients, validate,
	// clip, then step (ZeRO-Offload's schedule, Fig. 3).
	STE Mode = iota
	// STV is speculation-then-validation: step speculatively per bucket,
	// validate in the background, roll back on failure (Fig. 8).
	STV
)

// String names the schedule for logs and experiment tables.
func (m Mode) String() string {
	if m == STE {
		return "STE"
	}
	return "STV"
}

// Config parameterizes a Trainer.
type Config struct {
	Adam optim.Config
	Impl optim.Impl
	// ClipNorm is the global gradient-norm clipping threshold (0
	// disables clipping).
	ClipNorm float64
	// BucketElems is the per-bucket element budget (the 64 MB fp16
	// bucket is 32M elements; tests use small values).
	BucketElems int
	Mode        Mode
	// Scaler enables mixed-precision loss scaling; nil trains unscaled.
	Scaler *optim.LossScaler
	// InjectBad, when non-nil, is consulted after each backward pass
	// with the step index; returning true corrupts one gradient with
	// +Inf — the fault-injection hook overflow tests and the Fig. 14
	// experiment use.
	InjectBad func(step int) bool
	// Schedule, when non-nil, returns a learning-rate multiplier for
	// the given 1-based step (warm-up, cosine decay, ...). Rollback
	// re-execution uses the same step's rate, preserving exactness.
	Schedule func(step int) float64
	// Store selects where bucket optimizer state (fp32 masters, Adam
	// moments, rollback snapshots) lives between touches. Nil keeps
	// everything resident in DRAM; an NVMeStore spills to a backing file
	// with a small resident window; a PlacedStore routes residency by
	// the placement plan's tiers. The trainer owns the store: Close
	// closes it.
	Store BucketStore
	// Placement assigns each bucket an update tier (GPU-resident tail,
	// CPU Adam, or the NVMe window) for the virtual-clock superchip
	// executor. Nil trains homogeneously with no placement modeling.
	// Tiers change only where modeled time is charged and (through the
	// store) where state resides — numerics are tier-invariant, so any
	// plan trains bit-identically to the homogeneous trainer.
	Placement *place.Plan
	// Superchip is the hardware model the placement executor times
	// against; the zero value means hw.DefaultSuperchip(). Ignored when
	// Placement is nil.
	Superchip hw.SuperchipSpec
	// Act, when non-nil, is the activation offloading tier: per-layer
	// forward activations spill out of the replica behind the store's
	// resident window and prefetch back ahead of backward. Numerically
	// invisible (restores are bit-exact); the trainer owns the store and
	// attaches it to the model — Close closes it.
	Act *act.Store
	// Tracer, when non-nil, gives the trainer a "trainer" trace track
	// with one span per step phase (forward, resolve, backward,
	// speculate). Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// WarmupCosine returns the standard warm-up + cosine-decay schedule used
// by GPT pre-training recipes.
func WarmupCosine(warmup, total int, minFrac float64) func(int) float64 {
	return func(step int) float64 {
		if step < warmup {
			return float64(step+1) / float64(warmup)
		}
		if step >= total {
			return minFrac
		}
		progress := float64(step-warmup) / float64(total-warmup)
		cos := 0.5 * (1 + cosApprox(progress))
		return minFrac + (1-minFrac)*cos
	}
}

// cosApprox computes cos(pi*x) for x in [0,1] via math.Cos; kept as a
// helper so the schedule stays testable.
func cosApprox(x float64) float64 { return math.Cos(math.Pi * x) }

// Stats counts validation outcomes — the Fig. 14 telemetry.
type Stats struct {
	Steps     int // optimizer steps attempted
	Commits   int // steps that validated clean
	ClipRolls int // rollback + re-execute with clipped gradients
	SkipRolls int // rollback + skip (NaN/Inf)
	Redos     int // forward passes redone after a rollback
}

// Rollbacks returns total rollback events.
func (s Stats) Rollbacks() int { return s.ClipRolls + s.SkipRolls }

// valResult is what the background validator reports: the deferred global
// state of §4.4.
type valResult struct {
	bad        bool
	globalNorm float64
}

// Trainer drives mixed-precision training of a real GPT with either
// schedule.
type Trainer struct {
	Model *nn.GPT
	Cfg   Config

	store   BucketStore
	buckets []*Bucket
	exec    *PlacementExecutor // nil without a placement plan
	track   *obs.Track         // step-phase spans; nil when tracing is off

	// stats sits behind statsMu so an observability endpoint can poll
	// Stats concurrently with a running step.
	statsMu sync.Mutex
	stats   Stats

	// STV pipeline state: an in-flight validation for the last
	// speculative step.
	pending     bool
	pendingAdam optim.Config // the hyperparameters the in-flight step used
	validCh     chan valResult
	lastLoss    float64
	stepIndex   int

	// valShards caches the per-bucket gradient slice headers the
	// validator scans; bucket staging buffers never move, so it is built
	// once instead of per step.
	valShards [][]float32
}

// gradShards returns the stable per-bucket gradient views for validation.
func (t *Trainer) gradShards() [][]float32 {
	if t.valShards == nil {
		t.valShards = make([][]float32, len(t.buckets))
		for i, bk := range t.buckets {
			t.valShards[i] = bk.grad
		}
	}
	return t.valShards
}

// stepAdam returns the Adam config for the current step, with the
// learning-rate schedule applied.
func (t *Trainer) stepAdam() optim.Config {
	a := t.Cfg.Adam
	if t.Cfg.Schedule != nil {
		a.LR *= t.Cfg.Schedule(t.stepIndex)
	}
	return a
}

// DefaultBucketElems is the per-bucket element budget when Config leaves
// BucketElems unset: 32M elements, the paper's 64 MB fp16 bucket (§4.3).
const DefaultBucketElems = 32 << 20

// NewTrainer buckets the model and prepares the optimizer state. A
// placement plan, when present, must cover the resulting bucket count
// exactly (NewTrainer panics otherwise — the partition is deterministic,
// so a mismatch is a construction bug, not a runtime condition).
func NewTrainer(m *nn.GPT, cfg Config) *Trainer {
	if cfg.Impl == nil {
		cfg.Impl = optim.GraceAdam
	}
	if cfg.BucketElems <= 0 {
		cfg.BucketElems = DefaultBucketElems
	}
	store := cfg.Store
	if store == nil {
		store = NewDRAMStore()
	}
	t := &Trainer{
		Model:   m,
		Cfg:     cfg,
		store:   store,
		buckets: partitionParams(m.Params(), cfg.BucketElems, store),
		validCh: make(chan valResult, 1),
		track:   cfg.Tracer.Track("trainer"),
	}
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(len(t.buckets)); err != nil {
			panic(fmt.Sprintf("stv: %v", err))
		}
		idx := make([]int, len(t.buckets))
		elems := make([]int, len(t.buckets))
		for i, bk := range t.buckets {
			idx[i], elems[i] = i, bk.Size()
		}
		t.exec = NewPlacementExecutor(cfg.Superchip, *cfg.Placement, idx, elems,
			len(t.buckets), m.Cfg.Hidden, int64(m.NumParams()))
	}
	if cfg.Act != nil {
		m.SetActivationTap(cfg.Act)
		t.exec.SetAct(ActShapeFor(m, cfg.Act))
	}
	return t
}

// ActShapeFor describes a model's activation store to the virtual-clock
// step model — the bridge every engine uses to put spill/prefetch time
// on its placement executor's clocks. Zero when the store is nil.
func ActShapeFor(m *nn.GPT, s *act.Store) place.ActShape {
	if s == nil {
		return place.ActShape{}
	}
	return place.ActShape{
		Layers:   m.Cfg.Layers,
		Resident: s.Resident(),
		Heads:    m.Cfg.Heads,
		NVMe:     s.OnNVMe(),
	}
}

// NumBuckets reports the partition size (diagnostics).
func (t *Trainer) NumBuckets() int { return len(t.buckets) }

// Store returns the trainer's bucket store (telemetry access).
func (t *Trainer) Store() BucketStore { return t.store }

// Close releases the bucket store's (and activation store's) backing
// resources. The trainer is unusable afterwards; resolve any in-flight
// validation (Flush) first.
func (t *Trainer) Close() error {
	err := t.store.Close()
	if t.Cfg.Act != nil {
		if aerr := t.Cfg.Act.Close(); err == nil {
			err = aerr
		}
	}
	return err
}

// ActTelemetry returns the activation store's traffic and modeled-time
// accounting; ok is false without an activation tier.
func (t *Trainer) ActTelemetry() (act.Telemetry, bool) {
	if t.Cfg.Act == nil {
		return act.Telemetry{}, false
	}
	return t.Cfg.Act.Telemetry(), true
}

// Stats returns validation counters. Safe to call concurrently with a
// running step (telemetry pollers).
func (t *Trainer) Stats() Stats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

// bumpStats applies a mutation to the validation counters under the
// stats lock.
func (t *Trainer) bumpStats(f func(*Stats)) {
	t.statsMu.Lock()
	f(&t.stats)
	t.statsMu.Unlock()
}

// PlacementTelemetry returns the virtual-clock superchip executor's
// modeled accounting; ok is false without a placement plan.
func (t *Trainer) PlacementTelemetry() (PlacementTelemetry, bool) {
	if t.exec == nil {
		return PlacementTelemetry{}, false
	}
	return t.exec.Telemetry(), true
}

// Step runs one training iteration on the batch and returns its loss.
//
// Under STV the sequencing mirrors Fig. 8: the forward pass runs first;
// only then is the previous step's validation resolved (it has been
// running in the background). If validation demands a rollback, the
// weights change and the forward pass is redone — the "RB → F1" arrow in
// the figure.
func (t *Trainer) Step(b data.Batch) (float64, error) {
	switch t.Cfg.Mode {
	case STE:
		return t.stepSTE(b)
	case STV:
		return t.stepSTV(b)
	}
	return 0, fmt.Errorf("stv: unknown mode %d", t.Cfg.Mode)
}

// scale returns the current loss scale (1 when scaling is disabled).
func (t *Trainer) scale() float64 {
	if t.Cfg.Scaler == nil {
		return 1
	}
	return t.Cfg.Scaler.Scale
}

// backwardAndStage runs backward and stages unscaled gradients in every
// bucket.
func (t *Trainer) backwardAndStage(b data.Batch) float64 {
	sp := t.track.Begin("forward")
	loss, cache := t.Model.Forward(b.Tokens, b.Targets, b.BatchSize, b.Seq)
	sp.End()
	t.Model.Params().ZeroGrads()
	sp = t.track.Begin("backward")
	t.Model.Backward(cache, t.scale())
	sp.End()
	t.maybeInject()
	inv := float32(1 / t.scale())
	for _, bk := range t.buckets {
		bk.StageGrads(inv)
	}
	return loss
}

func (t *Trainer) maybeInject() {
	if t.Cfg.InjectBad != nil && t.Cfg.InjectBad(t.stepIndex) {
		g := t.Model.Params()[0].G.Data
		g[0] = float32(math.Inf(1))
	}
}

// validate computes the deferred global state over staged gradients.
func (t *Trainer) validate() valResult {
	shards := t.gradShards()
	return valResult{bad: optim.HasBad(shards), globalNorm: optim.GlobalNorm(shards)}
}

// ---- STE (ZeRO-Offload schedule) ----

func (t *Trainer) stepSTE(b data.Batch) (float64, error) {
	t.stepIndex++
	loss := t.backwardAndStage(b)
	t.bumpStats(func(s *Stats) { s.Steps++ })

	// Synchronize: full validation before any optimizer work (Fig. 3's
	// gray block on the critical path).
	sp := t.track.Begin("resolve")
	v := t.validate()
	sp.End()
	if v.bad {
		t.bumpStats(func(s *Stats) { s.SkipRolls++ })
		if t.Cfg.Scaler != nil {
			t.Cfg.Scaler.Update(true)
		}
		return loss, nil // skip step entirely
	}
	if t.Cfg.Scaler != nil {
		t.Cfg.Scaler.Update(false)
	}
	t.applyDirectStep(v)
	t.exec.Record(b.BatchSize*b.Seq, b.Seq)
	return loss, nil
}

// applyDirectStep applies a committed (synchronous) optimizer step over
// all buckets with the clip scale derived from the validated global norm.
func (t *Trainer) applyDirectStep(v valResult) {
	clip := optim.ClipScale(v.globalNorm, t.Cfg.ClipNorm)
	if clip != 1.0 {
		t.bumpStats(func(s *Stats) { s.ClipRolls++ }) // a clip event, for comparability with STV
	} else {
		t.bumpStats(func(s *Stats) { s.Commits++ })
	}
	adam := t.stepAdam()
	sp := t.track.Begin("speculate")
	for _, bk := range t.buckets {
		bk.DirectStep(adam, t.Cfg.Impl, clip)
	}
	sp.End()
}

// ---- STV (SuperOffload schedule) ----

func (t *Trainer) stepSTV(b data.Batch) (float64, error) {
	t.stepIndex++
	// Forward; resolve the previous iteration's validation "after the
	// forward pass" (§4.4). A rollback changes weights ⇒ redo forward.
	for {
		sp := t.track.Begin("forward")
		loss, cache := t.Model.Forward(b.Tokens, b.Targets, b.BatchSize, b.Seq)
		sp.End()
		sp = t.track.Begin("resolve")
		rolledBack, err := t.resolvePending()
		sp.End()
		if err != nil {
			return 0, err
		}
		if rolledBack {
			t.bumpStats(func(s *Stats) { s.Redos++ })
			continue
		}
		t.lastLoss = loss
		t.Model.Params().ZeroGrads()
		sp = t.track.Begin("backward")
		t.Model.Backward(cache, t.scale())
		sp.End()
		break
	}
	t.maybeInject()
	inv := float32(1 / t.scale())
	adam := t.stepAdam()
	sp := t.track.Begin("speculate")
	for _, bk := range t.buckets {
		bk.StageGrads(inv)
		// Speculative per-bucket step: in the real system this
		// overlaps the remaining backward on the GPU.
		bk.SpeculativeStep(adam, t.Cfg.Impl)
	}
	sp.End()
	t.bumpStats(func(s *Stats) { s.Steps++ })
	t.exec.Record(b.BatchSize*b.Seq, b.Seq)
	t.launchValidation()
	return t.lastLoss, nil
}

// launchValidation starts the background validator (the Python-
// multiprocessing worker of §4.4): global norm and NaN/Inf scan off the
// critical path, delivered through the queue.
func (t *Trainer) launchValidation() {
	t.pendingAdam = t.stepAdam()
	// The staged gradients stay untouched until resolvePending consumes
	// this result (the next step's StageGrads runs after resolution), so
	// the background scan reads stable data.
	go func(v chan<- valResult, shards [][]float32) {
		v <- valResult{bad: optim.HasBad(shards), globalNorm: optim.GlobalNorm(shards)}
	}(t.validCh, t.gradShards())
	t.pending = true
}

// resolvePending consumes an outstanding validation, applying rollback /
// re-execution / commit. Returns whether weights changed (forward must be
// redone).
func (t *Trainer) resolvePending() (bool, error) {
	if !t.pending {
		return false, nil
	}
	v := <-t.validCh
	t.pending = false

	if v.bad {
		// Scenario 1: NaN/Inf ⇒ the iteration is skipped; undo the
		// speculative update entirely.
		for _, bk := range t.buckets {
			bk.Rollback()
		}
		t.bumpStats(func(s *Stats) { s.SkipRolls++ })
		if t.Cfg.Scaler != nil {
			t.Cfg.Scaler.Update(true)
		}
		return true, nil
	}
	if t.Cfg.Scaler != nil {
		t.Cfg.Scaler.Update(false)
	}
	clip := optim.ClipScale(v.globalNorm, t.Cfg.ClipNorm)
	if clip != 1.0 {
		// Scenario 2: clipping violated ⇒ revert and re-execute with
		// clipped gradients, using the hyperparameters the
		// speculative step used (the schedule may have moved on).
		for _, bk := range t.buckets {
			bk.ReExecuteClipped(t.pendingAdam, t.Cfg.Impl, clip)
		}
		t.bumpStats(func(s *Stats) { s.ClipRolls++ })
		return true, nil
	}
	for _, bk := range t.buckets {
		bk.Commit()
	}
	t.bumpStats(func(s *Stats) { s.Commits++ })
	return false, nil
}

// Flush resolves any in-flight validation (call at end of training so the
// final step is validated). Returns whether the final step was rolled
// back or re-executed.
func (t *Trainer) Flush() (bool, error) { return t.resolvePending() }

// MasterWeights exposes the CPU-side fp32 master parameters, concatenated
// in bucket order — the ground truth for exactness comparisons.
func (t *Trainer) MasterWeights() []float32 {
	n := 0
	for _, bk := range t.buckets {
		n += bk.Size()
	}
	out := make([]float32, 0, n)
	for _, bk := range t.buckets {
		out = bk.AppendMaster(out)
	}
	return out
}
