package stv

import (
	"os"
	"strings"
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/tensor"
)

func seededMLPStore(t *testing.T, paths, buckets, elems, window, cache int) *MLPStore {
	t.Helper()
	s, err := NewMLPStore(MLPStoreConfig{
		Dir:             t.TempDir(),
		Paths:           hw.NodeIOPaths(paths),
		ResidentBuckets: window,
		CacheBuckets:    cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	for i := 0; i < buckets; i++ {
		master := make([]float32, elems)
		for j := range master {
			master[j] = rng.NormFloat32()
		}
		s.Seed(i, master)
	}
	return s
}

// TestMLPStoreCloseWithOpsInFlight closes the store right after Acquires
// have launched async prefetches and write-behind flushes across every
// path, so all the path workers are mid-drain while Close runs. Run
// under -race in CI: Close must wait out every in-flight op on every
// path without racing the workers, and still delete every backing file.
func TestMLPStoreCloseWithOpsInFlight(t *testing.T) {
	for i := 0; i < 20; i++ {
		s := seededMLPStore(t, 3, 9, 512, 2, 2)
		paths := s.BackingPaths()
		if len(paths) != 3 {
			t.Fatalf("expected 3 backing files, got %v", paths)
		}
		// Acquire → prefetch of the next bucket is in flight; the
		// mutating release queues a write-behind on the next eviction.
		st := s.Acquire(0)
		st.Shard.Master[0]++
		s.Release(0, ReleaseFlush)
		// Touch more buckets so evictions (and their striped flushes)
		// are queued alongside the still-warm prefetch pipeline.
		s.Acquire(1)
		s.Release(1, ReleaseStep)
		s.Acquire(2)
		s.Release(2, ReleaseFlush)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("backing file %s survived Close (err=%v)", p, err)
			}
		}
		// Close is idempotent.
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestMLPStoreAcquireAfterClose: the store is unusable after Close, and
// says so — an Acquire must panic with a clear message instead of the
// opaque send-on-closed-channel a path's op queue would produce.
func TestMLPStoreAcquireAfterClose(t *testing.T) {
	s := seededMLPStore(t, 2, 3, 256, 2, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Acquire after Close did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "after Close") {
			t.Fatalf("Acquire after Close panicked with %v, want a clear after-Close message", r)
		}
	}()
	s.Acquire(0)
}

// TestMLPStoreWorkerStress churns a tight window over many buckets with
// both the cache tier and all paths active — the -race harness for the
// consumer/worker handoff on the striped op channels. Telemetry is read
// concurrently with the churn, as an engine's stats poller would.
func TestMLPStoreWorkerStress(t *testing.T) {
	const buckets = 16
	s := seededMLPStore(t, 4, buckets, 384, 3, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Telemetry()
			s.Err()
		}
	}()
	for pass := 0; pass < 6; pass++ {
		for i := 0; i < buckets; i++ {
			st := s.Acquire(i)
			st.Shard.Master[pass%len(st.Shard.Master)]++
			mode := ReleaseStep
			if (pass+i)%3 == 0 {
				mode = ReleaseFlush
			}
			s.Release(i, mode)
		}
	}
	<-done
	tel := s.Telemetry()
	if tel.Reads == 0 || tel.Writes == 0 {
		t.Fatalf("stress run never touched flash: %+v", tel.StoreTelemetry)
	}
	for i, sec := range tel.PathWriteSeconds {
		if sec <= 0 {
			t.Errorf("path %d never wrote: %v", i, tel.PathWriteSeconds)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
