package stv_test

import (
	"strings"
	"testing"
	"time"

	"superoffload/internal/data"
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/stv/stvtest"
	"superoffload/internal/tensor"
)

// faultTrainer builds the standard tiny-GPT training setup over the
// given store (nil = DRAM), mirroring the in-package test helpers from
// the outside.
func faultTrainer(store stv.BucketStore) *stv.Trainer {
	a := optim.DefaultConfig()
	a.LR = 3e-3
	cfg := stv.Config{
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    1.0,
		BucketElems: 4000,
		Mode:        stv.STV,
		Store:       store,
	}
	gpt := nn.NewGPT(model.Config{Name: "t", Layers: 2, Hidden: 32, Heads: 2, Vocab: 64}, 16, tensor.NewRNG(42))
	return stv.NewTrainer(gpt, cfg)
}

func faultTrain(t *testing.T, tr *stv.Trainer, steps int) {
	t.Helper()
	corpus := data.NewCorpus(64, 123)
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func eventKinds(events []stv.PathEvent) map[string]int {
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	return kinds
}

// TestFaultInjectionGracefulDegradation is the single-rank
// fault-injection matrix: for each fault mode — a path erroring its IO,
// a path silently dropping writes (caught by the record checksums), and
// a path stalling (caught by the SlowOpWall watchdog) — training over
// the degraded multi-path store must stay bit-identical to the resident
// engine, the telemetry must show the quarantine and the DRAM recovery,
// and Close must still report that the hardware failed underneath.
func TestFaultInjectionGracefulDegradation(t *testing.T) {
	dram := faultTrainer(nil)
	t.Cleanup(func() { dram.Close() })
	faultTrain(t, dram, 25)

	cases := []struct {
		name    string
		inj     *stvtest.Injector
		wall    time.Duration
		cache   int
		errPath int // path named in the latched Close error
	}{
		// Seed writes round-robin ~6 ops onto each of the 2 paths, so
		// AfterOps 10 trips the fault a few IOs into real training.
		{"write-read-errors", stvtest.NewInjector(stvtest.Fault{Path: 1, Kind: stvtest.FaultError, AfterOps: 10}), 0, 0, 1},
		{"dropped-writes", stvtest.NewInjector(stvtest.Fault{Path: 0, Kind: stvtest.FaultDrop, AfterOps: 10}), 0, 0, 0},
		{"stalled-path", stvtest.NewInjector(stvtest.Fault{Path: 1, Kind: stvtest.FaultStall, AfterOps: 10, Delay: 150 * time.Millisecond}), 30 * time.Millisecond, 0, 1},
		{"errors-with-cache-tier", stvtest.NewInjector(stvtest.Fault{Path: 0, Kind: stvtest.FaultError, AfterOps: 12}), 0, 2, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			store, err := stv.NewMLPStore(stv.MLPStoreConfig{
				Dir:             t.TempDir(),
				Paths:           hw.NodeIOPaths(2),
				ResidentBuckets: 2,
				CacheBuckets:    c.cache,
				WrapPath:        c.inj.WrapPath,
				SlowOpWall:      c.wall,
			})
			if err != nil {
				t.Fatal(err)
			}
			tr := faultTrainer(store)
			faultTrain(t, tr, 25)

			sameWeights(t, dram.MasterWeights(), tr.MasterWeights())
			if dram.Stats() != tr.Stats() {
				t.Errorf("stats diverge: dram %+v vs faulty %+v", dram.Stats(), tr.Stats())
			}
			if store.Err() == nil {
				t.Error("store latched no error despite the injected fault")
			}
			kinds := eventKinds(store.Telemetry().Events)
			if kinds["quarantine"] == 0 {
				t.Errorf("no quarantine event logged: %+v", store.Telemetry().Events)
			}
			if kinds["recover"]+kinds["reroute"] == 0 {
				t.Errorf("path failed but nothing recovered or re-routed: %+v", store.Telemetry().Events)
			}
			cerr := tr.Close()
			if cerr == nil {
				t.Fatal("Close swallowed the latched path error")
			}
			if want := "path"; !strings.Contains(cerr.Error(), want) || !strings.Contains(cerr.Error(), "failed") {
				t.Errorf("Close error %q does not report the path failure", cerr)
			}
		})
	}
}

// TestFaultAllPathsDead: when every path is quarantined, modified
// buckets pin to the DRAM tier instead of spilling — training still
// completes bit-exactly and Close still reports the first failure.
func TestFaultAllPathsDead(t *testing.T) {
	dram := faultTrainer(nil)
	t.Cleanup(func() { dram.Close() })
	faultTrain(t, dram, 25)

	inj := stvtest.NewInjector(
		stvtest.Fault{Path: 0, Kind: stvtest.FaultError, AfterOps: 10},
		stvtest.Fault{Path: 1, Kind: stvtest.FaultError, AfterOps: 12},
	)
	store, err := stv.NewMLPStore(stv.MLPStoreConfig{
		Dir:             t.TempDir(),
		Paths:           hw.NodeIOPaths(2),
		ResidentBuckets: 2,
		WrapPath:        inj.WrapPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := faultTrainer(store)
	faultTrain(t, tr, 25)
	sameWeights(t, dram.MasterWeights(), tr.MasterWeights())
	kinds := eventKinds(store.Telemetry().Events)
	if kinds["quarantine"] != 2 {
		t.Errorf("expected both paths quarantined, got events %+v", store.Telemetry().Events)
	}
	if kinds["pin"] == 0 {
		t.Error("no bucket pinned to the DRAM tier with every path dead")
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close swallowed the latched path errors")
	}
}

func sameWeights(t *testing.T, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("weight counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weights diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
