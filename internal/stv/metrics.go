package stv

// Metrics bridge: every telemetry snapshot type in the package
// implements obs.Source, publishing its counters under the unified
// superoffload_<subsystem>_<metric> naming scheme. Snapshots are value
// types, so a Source captured here is a point-in-time reading; engines
// register live readings through obs.Provider closures instead.

import (
	"fmt"

	"superoffload/internal/obs"
	"superoffload/internal/place"
)

var (
	_ obs.Source = StoreTelemetry{}
	_ obs.Source = MLPTelemetry{}
	_ obs.Source = PlacementTelemetry{}
	_ obs.Source = Stats{}
)

// storeSamples renders the shared StoreTelemetry counters under the
// given subsystem prefix (nvme for the single-path store, mlp for the
// multi-path store, which embeds the same counters).
func storeSamples(prefix string, t StoreTelemetry) []obs.Sample {
	c := func(name string, v float64) obs.Sample {
		return obs.Sample{Name: "superoffload_" + prefix + "_" + name, Kind: obs.KindCounter, Value: v}
	}
	return []obs.Sample{
		c("reads_total", float64(t.Reads)),
		c("writes_total", float64(t.Writes)),
		c("read_bytes_total", float64(t.BytesRead)),
		c("written_bytes_total", float64(t.BytesWritten)),
		c("read_seconds_total", t.ReadSeconds),
		c("write_seconds_total", t.WriteSeconds),
		c("stall_seconds_total", t.StallSeconds),
		c("compute_seconds_total", t.ComputeSeconds),
	}
}

// Samples publishes the store counters as superoffload_nvme_* metrics.
func (t StoreTelemetry) Samples() []obs.Sample {
	return storeSamples("nvme", t)
}

// Samples publishes the multi-path store counters as superoffload_mlp_*
// metrics: the embedded store counters, the DRAM-cache hits, the
// degradation-event count, and per-path modeled occupancy
// (superoffload_mlp_path<i>_{read,write}_seconds_total).
func (t MLPTelemetry) Samples() []obs.Sample {
	out := storeSamples("mlp", t.StoreTelemetry)
	out = append(out,
		obs.Sample{Name: "superoffload_mlp_cache_hits_total", Kind: obs.KindCounter, Value: float64(t.CacheHits)},
		obs.Sample{Name: "superoffload_mlp_path_events_total", Kind: obs.KindCounter, Value: float64(len(t.Events))},
	)
	for i, s := range t.PathReadSeconds {
		out = append(out, obs.Sample{
			Name: fmt.Sprintf("superoffload_mlp_path%d_read_seconds_total", i),
			Kind: obs.KindCounter, Value: s,
		})
	}
	for i, s := range t.PathWriteSeconds {
		out = append(out, obs.Sample{
			Name: fmt.Sprintf("superoffload_mlp_path%d_write_seconds_total", i),
			Kind: obs.KindCounter, Value: s,
		})
	}
	return out
}

// Samples publishes the superchip executor's modeled accounting as
// superoffload_placement_* metrics, with per-tier phase breakdowns
// under superoffload_placement_<tier>_* (tier labels from
// place.Tier.MetricLabel).
func (t PlacementTelemetry) Samples() []obs.Sample {
	c := func(name string, v float64) obs.Sample {
		return obs.Sample{Name: "superoffload_placement_" + name, Kind: obs.KindCounter, Value: v}
	}
	out := []obs.Sample{
		c("steps_total", float64(t.Steps)),
		c("backward_seconds_total", t.BackwardSeconds),
		c("pipelined_seconds_total", t.PipelinedSeconds),
		c("serialized_seconds_total", t.SerializedSeconds),
		c("forward_seconds_total", t.ForwardSeconds),
		c("act_write_seconds_total", t.ActWriteSeconds),
		c("act_read_seconds_total", t.ActReadSeconds),
		c("act_stall_seconds_total", t.ActStallSeconds),
	}
	for i, tier := range t.Tiers {
		label := place.Tier(i).MetricLabel()
		out = append(out,
			obs.Sample{Name: "superoffload_placement_" + label + "_buckets", Kind: obs.KindGauge, Value: float64(tier.Buckets)},
			c(label+"_cast_seconds_total", tier.CastSeconds),
			c(label+"_d2h_seconds_total", tier.D2HSeconds),
			c(label+"_adam_seconds_total", tier.AdamSeconds),
			c(label+"_h2d_seconds_total", tier.H2DSeconds),
			c(label+"_nvme_seconds_total", tier.NVMeSeconds),
		)
	}
	return out
}

// Samples publishes the STV validation outcomes as superoffload_stv_*
// metrics.
func (s Stats) Samples() []obs.Sample {
	c := func(name string, v int) obs.Sample {
		return obs.Sample{Name: "superoffload_stv_" + name, Kind: obs.KindCounter, Value: float64(v)}
	}
	return []obs.Sample{
		c("steps_total", s.Steps),
		c("commits_total", s.Commits),
		c("clip_rolls_total", s.ClipRolls),
		c("skip_rolls_total", s.SkipRolls),
		c("redos_total", s.Redos),
		c("rollbacks_total", s.Rollbacks()),
	}
}
