package stv

import (
	"bytes"
	"testing"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/place"
	"superoffload/internal/tensor"
)

// actGPT is deep enough (5 layers) that the activation store's resident
// floor of 2 leaves three layers actually spilling per pass.
func actGPT(seed uint64) *nn.GPT {
	cfg := model.Config{Name: "t", Layers: 5, Hidden: 32, Heads: 2, Vocab: 64}
	return nn.NewGPT(cfg, 16, tensor.NewRNG(seed))
}

// runActTrainer trains a 5-layer model for steps iterations with the
// given activation store (nil for the resident reference), with clipping
// and fault injection active so the exactness claim covers the clip
// rollback, the NaN skip, and the redo-forward that abandons a
// half-spilled pass. Returns losses, stats, checkpoint bytes, and master
// weights.
func runActTrainer(t *testing.T, st *act.Store, steps int) ([]float64, Stats, []byte, []float32) {
	t.Helper()
	cfg := trainerConfig(STV)
	cfg.ClipNorm = 0.9
	cfg.Scaler = optim.NewLossScaler()
	cfg.InjectBad = func(step int) bool { return step == 4 }
	cfg.Act = st
	tr := NewTrainer(actGPT(42), cfg)
	defer tr.Close()
	corpus := data.NewCorpus(64, 321)
	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		l, err := tr.Step(corpus.NextBatch(2, 8))
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, l)
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := tr.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	return losses, tr.Stats(), ckpt.Bytes(), tr.MasterWeights()
}

// TestTrainerActBitExact is the single-rank half of the activation-spill
// exactness contract: a trainer spilling through either tier reproduces
// the resident trainer's losses, rollback stats, checkpoint bytes, and
// master weights bit for bit — including across redo-forwards, which
// abandon a half-spilled pass mid-flight.
func TestTrainerActBitExact(t *testing.T) {
	const steps = 18
	refLosses, refStats, refCkpt, refMasters := runActTrainer(t, nil, steps)
	if refStats.Rollbacks() == 0 || refStats.Redos == 0 {
		t.Fatalf("reference run exercised no rollbacks/redos: %+v", refStats)
	}

	for _, tier := range []act.Tier{act.DRAM, act.NVMe} {
		t.Run(tier.String(), func(t *testing.T) {
			st, err := act.NewStore(act.Config{
				Tier: tier, Dir: t.TempDir(), ResidentLayers: 2,
				Hidden: 32, Params: int64(actGPT(42).NumParams()),
			})
			if err != nil {
				t.Fatal(err)
			}
			losses, stats, ckpt, masters := runActTrainer(t, st, steps)
			for i := range refLosses {
				if losses[i] != refLosses[i] {
					t.Fatalf("loss diverged at step %d: %v vs %v", i, losses[i], refLosses[i])
				}
			}
			if stats != refStats {
				t.Fatalf("stats diverged: %+v vs %+v", stats, refStats)
			}
			if !bytes.Equal(ckpt, refCkpt) {
				t.Fatal("checkpoint bytes diverged")
			}
			for i := range masters {
				if masters[i] != refMasters[i] {
					t.Fatalf("master weights diverged at %d", i)
				}
			}
			tel := st.Telemetry()
			// Redo-forwards spill layers whose pass is then abandoned, so
			// spilled traffic can exceed fetched — never the reverse.
			if tel.Spills == 0 || tel.Fetches == 0 || tel.BytesSpilled < tel.BytesFetched {
				t.Fatalf("store saw no spill traffic: %+v", tel)
			}
			if tel.PipelinedSeconds() >= tel.SerializedSeconds() {
				t.Fatalf("double buffering hid nothing: pipelined %v >= serialized %v",
					tel.PipelinedSeconds(), tel.SerializedSeconds())
			}
		})
	}
}

// TestTrainerActPlacementClock pins the co-modeled step clock: with an
// activation store attached, the placement executor's telemetry gains the
// activation phases, and the pipelined schedule strictly beats the
// serialized one (the prefetcher overlaps reads under backward compute).
func TestTrainerActPlacementClock(t *testing.T) {
	m := actGPT(42)
	nb := len(PartitionGroups(m.Params(), 20000))
	plan := place.GPUTail(nb, 1)
	st, err := act.NewStore(act.Config{
		Tier: act.NVMe, Dir: t.TempDir(), ResidentLayers: 2,
		Hidden: 32, Params: int64(m.NumParams()),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := trainerConfig(STV)
	cfg.Placement = &plan
	cfg.Act = st
	tr := NewTrainer(m, cfg)
	defer tr.Close()
	corpus := data.NewCorpus(64, 5)
	for i := 0; i < 6; i++ {
		if _, err := tr.Step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tel, ok := tr.PlacementTelemetry()
	if !ok {
		t.Fatal("placement telemetry missing")
	}
	if tel.ActWriteSeconds <= 0 || tel.ActReadSeconds <= 0 || tel.ForwardSeconds <= 0 {
		t.Fatalf("activation phases not modeled: %+v", tel)
	}
	if tel.PipelinedSeconds <= 0 || tel.PipelinedSeconds >= tel.SerializedSeconds {
		t.Fatalf("pipelined schedule does not strictly beat serialized: %+v", tel)
	}
}
