package stv

import (
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"superoffload/internal/hw"
	"superoffload/internal/obs"
	"superoffload/internal/optim"
)

// MLPStore is the multi-level multi-path generalization of NVMeStore
// (MLP-Offload): bucket records stripe across N flash paths — each path
// a backing file with its own FIFO worker goroutine and its own modeled
// device clock — behind an optional DRAM cache tier. Writes (seed
// bootstraps and write-behind flushes) dispatch whole records to the
// least-loaded live path by virtual clock, reads follow the record to
// wherever it last landed, and a window eviction drops the state into
// the DRAM cache (tier-aware LRU) before flash, so a cache hit skips the
// flash fetch entirely.
//
// Degradation is graceful, not just fast. Every record keeps a crc32 of
// its last encoding, so a dropped or corrupted write is detected at read
// time; a path whose op errors (or, with SlowOpWall, stalls) is
// quarantined — its in-flight ops drain, no new ops are dispatched to it
// — and the affected bucket recovers bit-exactly from its DRAM replica
// (the parked spare/cache state every non-resident record retains). The
// recovered bucket re-enters the window modified, so its next eviction
// re-routes the record to a surviving path. When every path is dead,
// modified buckets pin to the DRAM tier instead. All of it is recorded
// as PathEvents in the telemetry, and the first path error stays latched
// for Close — training completes bit-identically to the resident engine
// throughout.
//
// Locking follows NVMeStore's discipline: workers never take mu (the
// consumer can block sending on a path's op channel while holding mu,
// and that path's worker is the drain); quarantine flags, the latched
// error, and the event log live under the small pathMu that workers and
// the consumer share.

// PathFile is the file-like surface one I/O path needs. *os.File
// implements it; the fault-injection harness wraps it to throttle,
// stall, drop, or error a chosen path at a chosen op count.
type PathFile interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Close() error
}

// MLPStoreConfig parameterizes an MLPStore.
type MLPStoreConfig struct {
	// Dir is where the per-path backing files are created (default
	// os.TempDir()).
	Dir string
	// Paths is the per-path transfer-time model; len(Paths) is the path
	// count (default hw.NodeIOPaths(2)).
	Paths hw.IOPaths
	// ResidentBuckets caps the resident window (default and minimum 2).
	ResidentBuckets int
	// CacheBuckets caps the DRAM cache tier in front of flash (0
	// disables the cache).
	CacheBuckets int
	// ComputeTime models the overlappable CPU work of one bucket's Adam
	// step (default: GraceAdam on the GH200 Grace CPU).
	ComputeTime func(elems int) float64
	// WrapPath, when non-nil, wraps each path's backing file before its
	// worker starts — the fault-injection hook.
	WrapPath func(path int, f PathFile) PathFile
	// SlowOpWall, when positive, bounds the real wall-clock wait on any
	// single fetch: a path whose op exceeds it is treated as stalled and
	// quarantined, and the bucket recovers from its DRAM replica. Zero
	// disables the watchdog.
	SlowOpWall time.Duration
	// Tracer, when non-nil, gives the store one trace track per path
	// (worker read/write spans) plus a store track carrying the
	// consumer-side prefetch/flush/stall/cache instants and the
	// degradation events (quarantine/reroute/recover/pin). Nil disables
	// tracing at zero cost.
	Tracer *obs.Tracer
	// TrackLabel prefixes the store's trace track names (default "mlp").
	TrackLabel string
}

// PathEvent records one degradation event in the multi-path store's
// lifetime, in occurrence order.
type PathEvent struct {
	// Path is the affected path index (-1 when no single path applies,
	// e.g. an all-paths-dead pin).
	Path int
	// Kind is "quarantine" (path taken out of service), "reroute" (a
	// record moved off a dead path), "recover" (a bucket restored from
	// its DRAM replica), or "pin" (a bucket pinned resident because no
	// live path remains).
	Kind string
	// Bucket is the affected bucket index (-1 when none applies).
	Bucket int
	// Detail is a human-readable cause.
	Detail string
}

// MLPTelemetry extends the flash-tier accounting with multi-path and
// cache-tier detail.
type MLPTelemetry struct {
	StoreTelemetry
	// CacheHits counts Acquires served by the DRAM cache tier (no flash
	// read, no stall).
	CacheHits int
	// PathReadSeconds/PathWriteSeconds are per-path modeled occupancy.
	PathReadSeconds  []float64
	PathWriteSeconds []float64
	// Events is the degradation log, in occurrence order.
	Events []PathEvent
}

// mlpRecord is a bucket's fixed slot, present at the same offset in
// every path's backing file so the record can land on (or move to) any
// path without space management.
type mlpRecord struct {
	elems int
	off   int64
	bytes int64
	path  int    // path holding the record's current bytes
	sum   uint32 // crc32 of the last encoding written
	read  *mlpOp // in-flight fetch, if any
	// buf is the record's reusable IO buffer. Unlike nvmeRecord.buf it is
	// NOT unconditionally safe to re-fill: with one worker per path there
	// is no single FIFO serializing the record's ops, and a DRAM cache
	// hit skips the read that would have waited out the previous
	// write-behind — so flushLocked surrenders the buffer to a still
	// in-flight op (tracked in pending) instead of encoding underneath
	// the worker. It is likewise dropped when an op is abandoned to a
	// stalled path: the zombie op still owns it.
	buf []byte
	// pending is the record's most recently enqueued op; nil or done
	// means buf is free to reuse.
	pending *mlpOp
	// spare parks the bucket's latest DRAM state whenever the record is
	// neither resident nor cached: the decode target on the next fetch,
	// and the bit-exact recovery replica when that fetch fails.
	spare *BucketState
}

// ioBuf returns the record's lazily allocated IO buffer.
func (rec *mlpRecord) ioBuf() []byte {
	if rec.buf == nil {
		rec.buf = make([]byte, rec.bytes)
	}
	return rec.buf
}

// mlpResident is a bucket currently held in the DRAM window.
type mlpResident struct {
	st       *BucketState
	held     bool
	modified bool
	pinned   bool // no live path can hold it; never evict
	lastUse  int64
}

// mlpOp is one unit of path-worker IO.
type mlpOp struct {
	path   int
	idx    int // bucket index (event reporting)
	off    int64
	buf    []byte
	write  bool
	sum    uint32  // expected content checksum; reads verify it
	doneAt float64 // modeled completion on the path's device timeline
	err    error
	done   chan struct{}
}

// MLPStore implements BucketStore over N path files plus a DRAM cache
// tier. See the type comment for the degradation contract.
type MLPStore struct {
	cfg   MLPStoreConfig
	files []PathFile
	names []string // backing file paths, for cleanup
	ops   []chan *mlpOp
	wg    sync.WaitGroup
	// tracks[i] is path i's trace timeline, track the store-level one;
	// both nil when tracing is off, immutable after construction.
	tracks []*obs.Track
	track  *obs.Track

	// pathMu guards the quarantine flags, the latched first error, and
	// the event log — the only state workers share with the consumer.
	pathMu sync.Mutex
	dead   []bool
	ioErr  error
	events []PathEvent

	// mu guards everything below; path workers never take it.
	mu       sync.Mutex
	recs     map[int]*mlpRecord
	order    []int // seeded indices, ascending: the prefetch cycle
	end      int64 // next free record offset (same layout on every path)
	resident map[int]*mlpResident
	inflight int
	tick     int64
	cache    map[int]*BucketState // DRAM cache tier
	cacheUse map[int]int64        // cache LRU ticks
	cpu      float64              // virtual consumer clock
	dev      []float64            // per-path virtual device clocks
	tel      MLPTelemetry
	closed   bool
}

// NewMLPStore creates the per-path backing files and starts one IO
// worker per path.
func NewMLPStore(cfg MLPStoreConfig) (*MLPStore, error) {
	if len(cfg.Paths) == 0 {
		cfg.Paths = hw.NodeIOPaths(2)
	}
	if cfg.ResidentBuckets < 2 {
		cfg.ResidentBuckets = 2
	}
	if cfg.ComputeTime == nil {
		chip := hw.GH200()
		cfg.ComputeTime = func(elems int) float64 {
			return hw.AdamStepTime(chip, hw.AdamGrace, int64(elems))
		}
	}
	dir := cfg.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	n := len(cfg.Paths)
	s := &MLPStore{
		cfg:      cfg,
		dead:     make([]bool, n),
		recs:     map[int]*mlpRecord{},
		resident: map[int]*mlpResident{},
		cache:    map[int]*BucketState{},
		cacheUse: map[int]int64{},
		dev:      make([]float64, n),
	}
	s.tel.PathReadSeconds = make([]float64, n)
	s.tel.PathWriteSeconds = make([]float64, n)
	if cfg.Tracer != nil {
		label := cfg.TrackLabel
		if label == "" {
			label = "mlp"
		}
		s.track = cfg.Tracer.Track(label)
		for i := 0; i < n; i++ {
			s.tracks = append(s.tracks, cfg.Tracer.Track(fmt.Sprintf("%s path %d", label, i)))
		}
	}
	for i := 0; i < n; i++ {
		f, err := os.CreateTemp(dir, fmt.Sprintf("superoffload-mlp-p%d-*.bin", i))
		if err != nil {
			for j, g := range s.files {
				g.Close()
				os.Remove(s.names[j])
			}
			return nil, fmt.Errorf("stv: creating MLP path %d backing file: %w", i, err)
		}
		s.names = append(s.names, f.Name())
		var pf PathFile = f
		if cfg.WrapPath != nil {
			pf = cfg.WrapPath(i, f)
		}
		s.files = append(s.files, pf)
		s.ops = append(s.ops, make(chan *mlpOp, 16))
	}
	for i := range s.files {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// BackingPaths returns the per-path backing file locations (diagnostics).
func (s *MLPStore) BackingPaths() []string { return append([]string(nil), s.names...) }

// Telemetry returns a snapshot of the modeled-time, cache, and
// degradation counters.
func (s *MLPStore) Telemetry() MLPTelemetry {
	s.mu.Lock()
	t := s.tel
	t.PathReadSeconds = append([]float64(nil), s.tel.PathReadSeconds...)
	t.PathWriteSeconds = append([]float64(nil), s.tel.PathWriteSeconds...)
	s.mu.Unlock()
	s.pathMu.Lock()
	t.Events = append([]PathEvent(nil), s.events...)
	s.pathMu.Unlock()
	return t
}

// NVMeTelemetry implements TelemetrySource with the flash-tier share of
// the accounting.
func (s *MLPStore) NVMeTelemetry() (StoreTelemetry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel.StoreTelemetry, true
}

// Err returns the first latched path error. Unlike NVMeStore's, a
// non-nil value is not fatal — it records that the store degraded
// (quarantined a path and re-routed its records) while training
// continued bit-exactly. Close reports it too.
func (s *MLPStore) Err() error {
	s.pathMu.Lock()
	defer s.pathMu.Unlock()
	return s.ioErr
}

// worker drains one path's IO ops in FIFO order and verifies read
// checksums, so a dropped or corrupted write surfaces as the fetch
// error that triggers DRAM recovery. A failing op quarantines its path.
func (s *MLPStore) worker(i int) {
	defer s.wg.Done()
	f := s.files[i]
	var tk *obs.Track
	if s.tracks != nil {
		tk = s.tracks[i]
	}
	for op := range s.ops[i] {
		name := "read"
		if op.write {
			name = "write"
		}
		sp := tk.Begin(name)
		if op.write {
			_, op.err = f.WriteAt(op.buf, op.off)
		} else {
			_, op.err = f.ReadAt(op.buf, op.off)
			if op.err == nil && crc32.ChecksumIEEE(op.buf) != op.sum {
				op.err = fmt.Errorf("stv: bucket %d record checksum mismatch on path %d", op.idx, i)
			}
		}
		sp.EndInt("bucket", op.idx)
		if op.err != nil {
			s.quarantine(i, op.idx, op.err.Error())
		}
		close(op.done)
	}
}

// quarantine takes path i out of service and latches the first error.
// Callable from workers and the consumer: only pathMu is taken.
func (s *MLPStore) quarantine(i, bucket int, detail string) {
	s.pathMu.Lock()
	defer s.pathMu.Unlock()
	if s.ioErr == nil {
		s.ioErr = fmt.Errorf("stv: MLP store path %d failed: %s", i, detail)
	}
	if s.dead[i] {
		return
	}
	s.dead[i] = true
	s.events = append(s.events, PathEvent{Path: i, Kind: "quarantine", Bucket: bucket, Detail: detail})
	s.track.InstantInt("quarantine", "path", i)
}

// event appends to the degradation log.
func (s *MLPStore) event(e PathEvent) {
	s.pathMu.Lock()
	s.events = append(s.events, e)
	s.pathMu.Unlock()
	s.track.InstantInt(e.Kind, "bucket", e.Bucket)
}

// deadPaths snapshots the quarantine flags.
func (s *MLPStore) deadPaths() []bool {
	s.pathMu.Lock()
	defer s.pathMu.Unlock()
	return append([]bool(nil), s.dead...)
}

// pickPathLocked returns the live path with the lowest device clock
// (ties to the lowest index, so dispatch is deterministic); ok is false
// when every path is quarantined. avoid names a lane to steer clear of
// when any other lane is live (-1 steers nothing): a write-behind flush
// dispatched onto the lane an imminent fetch needs would serialize
// behind it — exactly the single-lane contention the path split exists
// to break — so evictions avoid the fetch's home lane.
func (s *MLPStore) pickPathLocked(dead []bool, avoid int) (int, bool) {
	best, ok := -1, false
	for i, d := range dead {
		if d || i == avoid {
			continue
		}
		if !ok || s.dev[i] < s.dev[best] {
			best, ok = i, true
		}
	}
	if !ok && avoid >= 0 && avoid < len(dead) && !dead[avoid] {
		return avoid, true
	}
	return best, ok
}

// enqueueLocked schedules one IO on the given path, advancing that
// path's modeled device timeline when modeled is true (seed bootstraps
// pass false, as in NVMeStore). Issue order is the consumer's program
// order, so modeled times are deterministic regardless of worker
// scheduling.
func (s *MLPStore) enqueueLocked(write bool, rec *mlpRecord, idx int, buf []byte, path int, modeled bool) *mlpOp {
	op := &mlpOp{
		path: path, idx: idx, off: rec.off, buf: buf, write: write,
		sum: rec.sum, doneAt: s.dev[path], done: make(chan struct{}),
	}
	if modeled {
		spec := s.cfg.Paths[path]
		var dur float64
		if write {
			dur = spec.WriteTime(rec.bytes)
			s.tel.Writes++
			s.tel.BytesWritten += rec.bytes
			s.tel.WriteSeconds += dur
			s.tel.PathWriteSeconds[path] += dur
		} else {
			dur = spec.ReadTime(rec.bytes)
			s.tel.Reads++
			s.tel.BytesRead += rec.bytes
			s.tel.ReadSeconds += dur
			s.tel.PathReadSeconds[path] += dur
		}
		op.doneAt = math.Max(s.dev[path], s.cpu) + dur
		s.dev[path] = op.doneAt
	}
	rec.pending = op
	s.ops[path] <- op
	return op
}

// flushLocked encodes the state, refreshes the record's checksum, and
// enqueues the write to the given path, recording a reroute event when
// the record is moving off a quarantined path.
func (s *MLPStore) flushLocked(rec *mlpRecord, idx int, st *BucketState, path int, dead []bool, modeled bool) {
	// The record's previous op may still be in flight on another path's
	// worker (a cache hit skips the read that would have waited it out),
	// and write-behinds are never waited on — surrender the buffer to it
	// rather than encoding underneath a concurrent WriteAt.
	if rec.pending != nil {
		select {
		case <-rec.pending.done:
		default:
			rec.buf = nil
		}
		rec.pending = nil
	}
	buf := encodeRecord(rec.ioBuf(), st)
	rec.sum = crc32.ChecksumIEEE(buf)
	if path != rec.path && rec.path < len(dead) && dead[rec.path] {
		s.event(PathEvent{Path: rec.path, Kind: "reroute", Bucket: idx,
			Detail: fmt.Sprintf("record moved to path %d", path)})
	}
	rec.path = path
	if modeled {
		s.track.InstantInt("flush", "bucket", idx)
	}
	s.enqueueLocked(true, rec, idx, buf, path, modeled)
}

// Seed writes the bucket's initial record (round-robin path placement);
// nothing becomes resident, and the seed state parks as the record's
// DRAM replica until the first successful fetch.
func (s *MLPStore) Seed(idx int, master []float32) {
	st := &BucketState{Shard: optim.NewMixedShard(master)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[idx]; ok {
		panic(fmt.Sprintf("stv: bucket %d seeded twice", idx))
	}
	rec := &mlpRecord{elems: len(master), off: s.end, bytes: recordBytes(len(master))}
	s.recs[idx] = rec
	s.end += rec.bytes
	i := sort.SearchInts(s.order, idx)
	s.order = append(s.order, 0)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = idx
	buf := encodeRecord(rec.ioBuf(), st)
	rec.sum = crc32.ChecksumIEEE(buf)
	rec.path = idx % len(s.cfg.Paths)
	s.enqueueLocked(true, rec, idx, buf, rec.path, false)
	rec.spare = st
}

// next returns the index after idx in the seeded cycle.
func (s *MLPStore) next(idx int) int {
	i := sort.SearchInts(s.order, idx) + 1
	if i >= len(s.order) {
		i = 0
	}
	return s.order[i]
}

// parkLocked hands an evicted bucket's state to the next tier down:
// into the DRAM cache when one is configured (evicting the cache's LRU
// entry to its record's spare slot), else directly onto the record as
// the decode spare / recovery replica.
func (s *MLPStore) parkLocked(idx int, rec *mlpRecord, st *BucketState) {
	if s.cfg.CacheBuckets <= 0 {
		rec.spare = st
		return
	}
	for len(s.cache) >= s.cfg.CacheBuckets {
		victim := -1
		var oldest int64 = math.MaxInt64
		for i, use := range s.cacheUse {
			if use < oldest {
				victim, oldest = i, use
			}
		}
		s.recs[victim].spare = s.cache[victim]
		delete(s.cache, victim)
		delete(s.cacheUse, victim)
	}
	s.cache[idx] = st
	s.tick++
	s.cacheUse[idx] = s.tick
}

// evictLocked frees one window slot: the least-recently-used unheld,
// unpinned resident bucket. Modified state write-behind flushes to the
// least-loaded live path that is not avoid (the imminent fetch's home
// lane — see pickPathLocked); the state then drops to the cache tier
// (or parks as the record's spare). When every path is dead a modified
// bucket has nowhere durable to go — it is pinned to the DRAM tier
// instead and the search continues. Reports whether a slot was freed.
func (s *MLPStore) evictLocked(avoid int) bool {
	dead := s.deadPaths()
	for {
		victim := -1
		var oldest int64 = math.MaxInt64
		for idx, r := range s.resident {
			if !r.held && !r.pinned && r.lastUse < oldest {
				victim, oldest = idx, r.lastUse
			}
		}
		if victim < 0 {
			return false
		}
		r := s.resident[victim]
		rec := s.recs[victim]
		if r.modified {
			path, ok := s.pickPathLocked(dead, avoid)
			if !ok {
				r.pinned = true
				s.event(PathEvent{Path: -1, Kind: "pin", Bucket: victim,
					Detail: "all paths quarantined; bucket pinned to DRAM tier"})
				continue
			}
			s.flushLocked(rec, victim, r.st, path, dead, true)
		}
		delete(s.resident, victim)
		s.parkLocked(victim, rec, r.st)
		return true
	}
}

// prefetchLocked starts an async fetch of idx if a window slot is free.
// Cached and dead-path records are skipped: the former are a guaranteed
// DRAM hit, the latter recover from DRAM at Acquire.
func (s *MLPStore) prefetchLocked(idx int) {
	rec, ok := s.recs[idx]
	if !ok || rec.read != nil {
		return
	}
	if _, ok := s.resident[idx]; ok {
		return
	}
	if _, ok := s.cache[idx]; ok {
		return
	}
	if dead := s.deadPaths(); dead[rec.path] {
		return
	}
	if len(s.resident)+s.inflight >= s.cfg.ResidentBuckets && !s.evictLocked(rec.path) {
		return
	}
	s.track.InstantInt("prefetch", "bucket", idx)
	rec.read = s.enqueueLocked(false, rec, idx, rec.ioBuf(), rec.path, true)
	s.inflight++
}

// insertLocked makes st bucket idx's held resident entry and prefetches
// the next bucket in the cycle.
func (s *MLPStore) insertLocked(idx int, st *BucketState, modified bool) {
	avoid := -1
	if len(s.order) > 1 {
		if rec, ok := s.recs[s.next(idx)]; ok {
			avoid = rec.path
		}
	}
	for len(s.resident) >= s.cfg.ResidentBuckets && s.evictLocked(avoid) {
	}
	s.tick++
	s.resident[idx] = &mlpResident{st: st, held: true, modified: modified, lastUse: s.tick}
	if len(s.order) > 1 {
		s.prefetchLocked(s.next(idx))
	}
}

// recoverLocked restores bucket idx from its DRAM replica after a
// failed or abandoned fetch — the graceful-degradation path. The
// recovered state enters the window modified, so the next eviction
// re-flushes (and thereby re-routes) the record to a surviving path.
func (s *MLPStore) recoverLocked(idx int, rec *mlpRecord, detail string) *BucketState {
	st := rec.spare
	if st == nil {
		// Cannot happen — every record that is neither resident nor
		// cached parks its latest state — but fail loudly rather than
		// train on stale bytes.
		s.mu.Unlock()
		panic(fmt.Sprintf("stv: bucket %d unrecoverable after path failure: %s", idx, detail))
	}
	rec.spare = nil
	s.event(PathEvent{Path: rec.path, Kind: "recover", Bucket: idx, Detail: detail})
	s.insertLocked(idx, st, true)
	return st
}

// Acquire makes bucket idx resident and returns its state: from the
// window, the DRAM cache tier, or a (prefetched) flash fetch — falling
// back to the DRAM replica when the fetch's path has failed.
func (s *MLPStore) Acquire(idx int) *BucketState {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(fmt.Sprintf("stv: acquire of bucket %d after Close", idx))
	}
	rec, ok := s.recs[idx]
	if !ok {
		s.mu.Unlock()
		panic(fmt.Sprintf("stv: acquire of unseeded bucket %d", idx))
	}
	if r, ok := s.resident[idx]; ok {
		r.held = true
		s.tick++
		r.lastUse = s.tick
		if len(s.order) > 1 {
			s.prefetchLocked(s.next(idx))
		}
		s.mu.Unlock()
		return r.st
	}
	if st, ok := s.cache[idx]; ok {
		// DRAM cache hit: promote to the window with no flash traffic
		// and no stall. The flash copy still matches (the state was
		// flushed on window eviction), so the entry re-enters clean.
		delete(s.cache, idx)
		delete(s.cacheUse, idx)
		s.tel.CacheHits++
		s.track.InstantInt("cacheHit", "bucket", idx)
		s.insertLocked(idx, st, false)
		s.mu.Unlock()
		return st
	}
	op := rec.read
	if op == nil {
		if dead := s.deadPaths(); dead[rec.path] {
			// The record's bytes live on a quarantined path: skip flash
			// and restore from the DRAM replica.
			st := s.recoverLocked(idx, rec, "record on quarantined path")
			s.mu.Unlock()
			return st
		}
		// Cold fetch: make room first so the read doesn't overshoot the
		// window, then enqueue.
		for len(s.resident)+s.inflight >= s.cfg.ResidentBuckets && s.evictLocked(rec.path) {
		}
		op = s.enqueueLocked(false, rec, idx, rec.ioBuf(), rec.path, true)
		rec.read = op
		s.inflight++
	}
	if op.doneAt > s.cpu {
		s.tel.StallSeconds += op.doneAt - s.cpu
		s.cpu = op.doneAt
		s.track.InstantInt("stall", "bucket", idx)
	}
	s.mu.Unlock()

	if s.cfg.SlowOpWall > 0 {
		select {
		case <-op.done:
		case <-time.After(s.cfg.SlowOpWall):
			// The path is stalled (throttled or hung). Quarantine it and
			// abandon the op: the zombie keeps the old IO buffer (the
			// record allocates a fresh one) and its eventual completion
			// is ignored.
			s.quarantine(op.path, idx, fmt.Sprintf("fetch exceeded SlowOpWall %s", s.cfg.SlowOpWall))
			s.mu.Lock()
			rec.read = nil
			s.inflight--
			rec.buf = nil
			st := s.recoverLocked(idx, rec, "fetch abandoned after stall")
			s.mu.Unlock()
			return st
		}
	} else {
		<-op.done
	}
	if op.err != nil {
		// The worker already quarantined the path; restore from DRAM.
		s.mu.Lock()
		rec.read = nil
		s.inflight--
		st := s.recoverLocked(idx, rec, op.err.Error())
		s.mu.Unlock()
		return st
	}
	st, derr := decodeRecord(rec.spare, rec.elems, op.buf)
	s.mu.Lock()
	rec.read = nil
	s.inflight--
	if derr != nil {
		// Checksum passed but the codec rejected the bytes — treat the
		// path as corrupting data and recover (decodeRecord validated
		// before touching spare, so the replica is intact).
		s.quarantine(op.path, idx, derr.Error())
		st := s.recoverLocked(idx, rec, derr.Error())
		s.mu.Unlock()
		return st
	}
	rec.spare = nil
	s.insertLocked(idx, st, false)
	s.mu.Unlock()
	return st
}

// Release ends a hold; modes carry the same write-back and modeled-time
// semantics as NVMeStore's Release.
func (s *MLPStore) Release(idx int, mode ReleaseMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.resident[idx]
	if !ok || !r.held {
		panic(fmt.Sprintf("stv: release of unheld bucket %d", idx))
	}
	r.held = false
	if mode != ReleaseClean {
		r.modified = true
	}
	if mode == ReleaseStep {
		c := s.cfg.ComputeTime(s.recs[idx].elems)
		s.cpu += c
		s.tel.ComputeSeconds += c
	}
}

// Close drains every path worker, deletes the backing files, and
// reports the first latched path error — degradation events included,
// so a run that quarantined a path and completed anyway still tells the
// caller the hardware failed underneath it.
func (s *MLPStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	for _, ch := range s.ops {
		close(ch)
	}
	s.wg.Wait()
	s.pathMu.Lock()
	err := s.ioErr
	s.pathMu.Unlock()
	for i, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if rmErr := os.Remove(s.names[i]); err == nil {
			err = rmErr
		}
	}
	return err
}
