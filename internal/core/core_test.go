package core

import (
	"math"
	"testing"
	"testing/quick"

	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

func TestEfficiencyEquation(t *testing.T) {
	// Eq. 1-3 hand check: comp = 2·b·s·P/tp, comm = 2P/bw.
	eff := Efficiency(4, 1024, 1e9, 500e12, 450e9)
	comp := 2.0 * 4 * 1024 * 1e9 / 500e12
	comm := 2.0 * 1e9 / 450e9
	want := comp / (comp + comm)
	if math.Abs(eff-want) > 1e-12 {
		t.Fatalf("efficiency = %v, want %v", eff, want)
	}
}

func TestEfficiencyMonotoneInBandwidthAndBatch(t *testing.T) {
	f := func(b1 uint8, bw1, bw2 uint32) bool {
		b := int(b1%16) + 1
		lo := float64(bw1%1000+1) * 1e9
		hi := lo + float64(bw2%1000+1)*1e9
		return Efficiency(b, 1024, 1e9, 500e12, lo) <= Efficiency(b, 1024, 1e9, 500e12, hi) &&
			Efficiency(b, 1024, 1e9, 500e12, lo) <= Efficiency(b+1, 1024, 1e9, 500e12, lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFig6Shape(t *testing.T) {
	// Fig. 6 headline: at 450 GB/s uni-directional C2C, batch must be ≥4
	// (seq 1024) to clear 60% efficiency.
	pts := EfficiencySweep([]int{1, 2, 4}, 7e9)
	at := func(b int, bw float64) float64 {
		for _, p := range pts {
			if p.Batch == b && p.BandwidthGBs == bw {
				return p.Efficiency
			}
		}
		t.Fatalf("missing point b=%d bw=%v", b, bw)
		return 0
	}
	if e := at(4, 400); e < 60 {
		t.Errorf("batch 4 @400GB/s = %.1f%%, want ≥60%% (§4.2)", e)
	}
	if e := at(1, 400); e > 50 {
		t.Errorf("batch 1 @400GB/s = %.1f%%, should be well below 60%%", e)
	}
	if at(2, 1280) <= at(2, 40) {
		t.Error("efficiency should grow with bandwidth")
	}
	if len(pts) != 3*len(Fig6Bandwidths) {
		t.Errorf("sweep size %d", len(pts))
	}
}

func TestCastPathChoiceFlipsWithLink(t *testing.T) {
	elems := int64(64 << 20) // 128 MB fp16 / 256 MB fp32
	// §4.5: on the Superchip, Cast_gpu↔Move_fp32 wins.
	if got := ChooseCastPath(hw.GH200(), elems); got != CastGPUMoveFP32 {
		t.Errorf("GH200 cast path = %v, want CastGPUMoveFP32", got)
	}
	// On PCIe (DGX-2), minimizing wire volume wins — the prior design
	// was right for its hardware.
	if got := ChooseCastPath(hw.DGX2(), elems); got != CastCPUMoveFP16 {
		t.Errorf("DGX-2 cast path = %v, want CastCPUMoveFP16", got)
	}
}

func TestFig9Shape(t *testing.T) {
	pts := CastCostSweep(hw.GH200())
	if len(pts) != 8 {
		t.Fatalf("sweep size %d", len(pts))
	}
	for _, p := range pts {
		if p.SizeMB >= 256 && p.CastCPUMs < 1.5*p.CastGPUMs {
			t.Errorf("at %dMB: cpu-path %.2fms should be ≈2x gpu-path %.2fms",
				p.SizeMB, p.CastCPUMs, p.CastGPUMs)
		}
		if p.CastGPUMs <= 0 || p.CastCPUMs <= 0 {
			t.Errorf("non-positive cost at %dMB", p.SizeMB)
		}
	}
}

func TestSADFGPartitioners(t *testing.T) {
	bucket := int64(32 << 20)
	// On GH200 the Superchip-aware partition places both casts on the
	// GPU (fp32 crosses the link); greedy edge-cut places them CPU-side
	// (fp16 crosses, minimizing volume).
	g := MixedPrecisionStepGraph(hw.GH200(), bucket)
	greedy := g.GreedyEdgeCut()
	aware := g.SuperchipAware()
	if greedy[1] != CPU || greedy[3] != CPU {
		t.Errorf("greedy edge-cut should cast on CPU: %v", greedy)
	}
	if aware[1] != GPU || aware[3] != GPU {
		t.Errorf("superchip-aware should cast on GPU: %v", aware)
	}
	if g.Cost(aware) > g.Cost(greedy) {
		t.Errorf("aware cost %.4f should beat greedy %.4f on GH200", g.Cost(aware), g.Cost(greedy))
	}
	if g.CommVolume(greedy) > g.CommVolume(aware) {
		t.Errorf("greedy should minimize volume: %d vs %d", g.CommVolume(greedy), g.CommVolume(aware))
	}

	// On PCIe hardware the two agree: low volume is the right call.
	g2 := MixedPrecisionStepGraph(hw.DGX2(), bucket)
	aware2 := g2.SuperchipAware()
	if aware2[1] != CPU || aware2[3] != CPU {
		t.Errorf("on PCIe the aware partition should also cast on CPU: %v", aware2)
	}
}

func TestSADFGPinningRespected(t *testing.T) {
	g := MixedPrecisionStepGraph(hw.GH200(), 1<<20)
	for _, p := range []Partition{g.GreedyEdgeCut(), g.SuperchipAware()} {
		if !g.valid(p) {
			t.Fatalf("partition violates pinning: %v", p)
		}
		if p[0] != GPU || p[4] != GPU || p[2] != CPU {
			t.Errorf("pinned ops moved: %v", p)
		}
	}
}

func TestMemoryModelPolicyDifference(t *testing.T) {
	m, _ := model.ByName("25B")
	exec := sched.Execution{MicroBatch: 8, GradAccum: 1}
	bp := int64(32 << 20)
	st := GPUMemory(m, m.Params(), WeightStationary, exec, 1024, bp, 0)
	fl := GPUMemory(m, m.Params(), WeightFlow, exec, 1024, bp, 0)
	if fl >= st {
		t.Errorf("weight-flow (%d GiB) should use less HBM than stationary (%d GiB)", fl>>30, st>>30)
	}
	// GPU-retained buckets cost HBM.
	withGPU := GPUMemory(m, m.Params(), WeightStationary, exec, 1024, bp, 8)
	if withGPU <= st {
		t.Error("GPU-retained buckets must add HBM usage")
	}
	// And save DDR.
	if CPUMemory(m.Params(), bp, 8) >= CPUMemory(m.Params(), bp, 0) {
		t.Error("GPU-retained buckets must reduce DDR usage")
	}
}

func TestFitsReasons(t *testing.T) {
	chip := hw.GH200()
	m, _ := model.ByName("50B")
	exec := sched.Execution{MicroBatch: 8, GradAccum: 1}
	ok, reason := Fits(chip, m, m.Params(), WeightStationary, exec, 1024, 32<<20, 0)
	if ok {
		t.Fatal("50B weight-stationary cannot fit one GH200")
	}
	if reason == "" {
		t.Fatal("OOM must carry a reason")
	}
}

func TestMaxTrainableSingleChipIs25B(t *testing.T) {
	got := MaxTrainableModel(hw.ClusterFor(1), 8, 1024)
	if got.Name != "25B" {
		t.Errorf("max single-Superchip model = %s, paper says 25B", got.Name)
	}
}

func TestMaxTrainableMultiChip(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search over model zoo")
	}
	if got := MaxTrainableModel(hw.ClusterFor(4), 16, 1024); got.Name != "50B" {
		t.Errorf("max on 4 chips = %s, paper says 50B", got.Name)
	}
	if got := MaxTrainableModel(hw.ClusterFor(16), 128, 1024); got.Name != "200B" {
		t.Errorf("max on 16 chips = %s, paper says 200B", got.Name)
	}
}

func TestPlanSingleChipThroughput(t *testing.T) {
	m, _ := model.ByName("5B")
	r := New().Plan(sched.Workload{Cluster: hw.ClusterFor(1), Model: m, GlobalBatch: 8, Seq: 1024})
	if !r.Fits {
		t.Fatalf("5B must fit: %s", r.OOM)
	}
	// Table 2 full stack: ~239 TFLOPS on the 5B model.
	if r.TFLOPS < 210 || r.TFLOPS > 270 {
		t.Errorf("5B throughput = %.1f TFLOPS, paper ≈239", r.TFLOPS)
	}
	// Fig. 15: near-zero GPU idle.
	if r.GPUIdleFrac > 0.10 {
		t.Errorf("GPU idle = %.2f, want <0.10", r.GPUIdleFrac)
	}
}

func TestAblationOrdering(t *testing.T) {
	m, _ := model.ByName("5B")
	w := sched.Workload{Cluster: hw.ClusterFor(1), Model: m, GlobalBatch: 8, Seq: 1024}
	opts := Options{} // everything off
	prev := 0.0
	ladder := []func(*Options){
		func(o *Options) {},
		func(o *Options) { o.GraceAdam = true },
		func(o *Options) { o.SuperchipCasting = true },
		func(o *Options) { o.Speculation = true },
		func(o *Options) { o.BucketRepartition = true },
	}
	for i, enable := range ladder {
		enable(&opts)
		r := NewWith(opts).Plan(w)
		if !r.Fits {
			t.Fatalf("step %d OOM", i)
		}
		if r.TFLOPS < prev*0.98 {
			t.Errorf("ablation step %d regressed: %.1f -> %.1f TFLOPS", i, prev, r.TFLOPS)
		}
		prev = r.TFLOPS
	}
	base := NewWith(Options{}).Plan(w).TFLOPS
	if prev/base < 1.8 {
		t.Errorf("full/baseline = %.2fx, paper reports 2.06x", prev/base)
	}
}

func TestAdaptivePolicySwitchesToFlowForLongSeq(t *testing.T) {
	m, _ := model.ByName("13B")
	s := New()
	short := sched.Workload{Cluster: hw.ClusterFor(8), Model: m, GlobalBatch: 8, Seq: 1024}
	long := sched.Workload{Cluster: hw.ClusterFor(8), Model: m, GlobalBatch: 8, Seq: 1 << 16}
	pShort, ok1 := s.Describe(short)
	pLong, ok2 := s.Describe(long)
	if !ok1 || !ok2 {
		t.Fatalf("describe failed: %v %v", ok1, ok2)
	}
	if pShort.Policy != WeightStationary {
		t.Errorf("short-seq 13B/8-chip should be weight-stationary, got %v", pShort.Policy)
	}
	if pLong.Policy != WeightFlow {
		t.Errorf("long-seq should flip to weight-flow, got %v", pLong.Policy)
	}
}

func TestNUMAMisbindingHurts(t *testing.T) {
	// 20B on 4 chips: the per-bucket optimizer time is close to the
	// per-bucket backward time, so remote-socket memory traffic pushes
	// the CPU phase past the backward pass and exposes it.
	m, _ := model.ByName("20B")
	w := sched.Workload{Cluster: hw.ClusterFor(4), Model: m, GlobalBatch: 16, Seq: 1024}
	good := New().Plan(w)
	bad := NewWith(Options{GraceAdam: true, SuperchipCasting: true, Speculation: true, BucketRepartition: true, NUMABinding: false}).Plan(w)
	if !good.Fits || !bad.Fits {
		t.Fatalf("both should fit")
	}
	if bad.TFLOPS >= good.TFLOPS {
		t.Errorf("misbinding should hurt: %.1f vs %.1f", bad.TFLOPS, good.TFLOPS)
	}
}

func TestActivationsDominate(t *testing.T) {
	m := model.Nearest(7e9)
	if ActivationsDominate(m, 8, 1024) {
		t.Error("short sequences: states dominate")
	}
	if !ActivationsDominate(m, 1, 1<<20) {
		t.Error("million-token: activations must dominate (§4.2)")
	}
}

func TestDeviceAndPolicyStrings(t *testing.T) {
	if GPU.String() != "GPU" || CPU.String() != "CPU" {
		t.Error("device strings")
	}
	if WeightStationary.String() == WeightFlow.String() {
		t.Error("policy strings")
	}
	if CastGPUMoveFP32.String() == CastCPUMoveFP16.String() {
		t.Error("cast path strings")
	}
}

func TestActCoPlanWindow(t *testing.T) {
	chip := hw.DefaultSuperchip().Chip
	m, _ := model.ByName("5B")
	exec := sched.Execution{MicroBatch: 8}

	// A zero-layer model has no windowable activations.
	headOnly := m
	headOnly.Layers = 0
	if w, spill := ActCoPlan(chip, headOnly, m.Params(), WeightStationary, exec, 1024, 1<<24, 0); w != 0 || spill {
		t.Errorf("zero-layer co-plan = (%d, %v), want (0, false)", w, spill)
	}

	// Plenty of HBM: every layer stays resident, no spill.
	roomy := chip
	roomy.GPU.MemBytes = 1 << 50
	if w, spill := ActCoPlan(roomy, m, m.Params(), WeightStationary, exec, 1024, 1<<24, 0); w != m.Layers || spill {
		t.Errorf("roomy co-plan = (%d, %v), want (%d, false)", w, spill, m.Layers)
	}

	// No HBM at all: the window floors at ActMinResidentLayers and spills
	// (feasibility is the caller's Fits check, not ActCoPlan's).
	tiny := chip
	tiny.GPU.MemBytes = 1
	if w, spill := ActCoPlan(tiny, m, m.Params(), WeightStationary, exec, 1024, 1<<24, 0); w != ActMinResidentLayers || !spill {
		t.Errorf("tiny co-plan = (%d, %v), want (%d, true)", w, spill, ActMinResidentLayers)
	}

	// The window is monotone in HBM: more memory never shrinks it, and
	// a budget between the extremes yields a partial window that fits.
	noAct := exec
	noAct.MicroBatch = 0
	base := GPUMemory(m, m.Params(), WeightStationary, noAct, 1024, 1<<24, 0)
	full := m.ActivationBytes(exec.MicroBatch, 1024, false)
	mid := chip
	mid.GPU.MemBytes = base + full/2
	w, spill := ActCoPlan(mid, m, m.Params(), WeightStationary, exec, 1024, 1<<24, 0)
	if !spill || w <= ActMinResidentLayers || w >= m.Layers {
		t.Errorf("mid co-plan = (%d, %v), want a partial spilling window", w, spill)
	}
	wRoomy, _ := ActCoPlan(roomy, m, m.Params(), WeightStationary, exec, 1024, 1<<24, 0)
	if wRoomy < w {
		t.Errorf("window shrank with more HBM: %d < %d", wRoomy, w)
	}
}
