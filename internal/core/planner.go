package core

import (
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
	"superoffload/internal/sim"
)

// Options toggles individual SuperOffload optimizations — the knobs the
// Table 2 ablation flips. The zero value of each field means "enabled";
// construct with DefaultOptions and disable selectively.
type Options struct {
	GraceAdam         bool // §4.6: ARM-optimized Adam (else CPU-Adam port)
	SuperchipCasting  bool // §4.5: cast on GPU, move fp32 pinned
	Speculation       bool // §4.4: STV instead of STE
	BucketRepartition bool // §4.3: 64 MB buckets + GPU-retained tail
	NUMABinding       bool // §4.7: bind ranks to their Superchip's cores
}

// DefaultOptions enables everything.
func DefaultOptions() Options {
	return Options{GraceAdam: true, SuperchipCasting: true, Speculation: true, BucketRepartition: true, NUMABinding: true}
}

// Plan is the planner's full decision record for a workload.
type Plan struct {
	Policy       Policy
	CastPath     CastPath
	BucketBytes  int64
	BucketParams int64
	NBuckets     int
	GPUBuckets   int
	Exec         sched.Execution
	Efficiency   float64 // Eq. 1-3 efficiency for the flow decision
	// ActResidentLayers and ActSpill are the activation tier's co-plan
	// under the same HBM budget (see ActCoPlan): the largest write-behind
	// window that fits next to the optimizer placement, and whether it
	// spills any layers at all.
	ActResidentLayers int
	ActSpill          bool
}

// System is the SuperOffload training system (implements sched.System).
type System struct {
	Opts Options
}

// New returns a fully-enabled SuperOffload system.
func New() *System { return &System{Opts: DefaultOptions()} }

// NewWith returns a system with the given ablation toggles.
func NewWith(o Options) *System { return &System{Opts: o} }

// Name implements sched.System.
func (s *System) Name() string { return "SuperOffload" }

func (s *System) adamImpl() hw.AdamImpl {
	if s.Opts.GraceAdam {
		return hw.AdamGrace
	}
	return hw.AdamCPU
}

func (s *System) bucketBytes() int64 {
	if s.Opts.BucketRepartition {
		return hw.SuperOffloadBucketBytes
	}
	return hw.ZeROOffloadBucketBytes
}

// hostLink returns the host link the rank's traffic takes (§4.7).
func (s *System) hostLink(w sched.Workload) hw.LinkSpec {
	node := w.Cluster.Node
	if s.Opts.NUMABinding || node.ChipCount == 1 {
		return node.Chip.Link
	}
	return node.CrossNUMA
}

// ChoosePolicy applies §4.2: weight-stationary unless (a) the model does
// not fit GPU memory that way, or (b) activations dominate and the Eq. 1-3
// efficiency clears the 60% bar so streaming is free anyway.
func (s *System) ChoosePolicy(w sched.Workload, exec sched.Execution, bucketParams int64, chips int) (Policy, float64) {
	chip := w.Cluster.Node.Chip
	shard := w.Model.Params() / int64(chips)
	eff := Efficiency(exec.MicroBatch, w.Seq, shard,
		hw.AchievableGPUFLOPS(chip, w.Model.Hidden, w.Seq), chip.Link.PeakBW)
	if ok, _ := Fits(chip, w.Model, shard, WeightStationary, exec, w.Seq, bucketParams, 0); !ok {
		return WeightFlow, eff
	}
	if ActivationsDominate(w.Model, exec.MicroBatch, w.Seq) && eff >= MinEfficiencyForFlow {
		return WeightFlow, eff
	}
	return WeightStationary, eff
}

// Plan implements sched.System.
func (s *System) Plan(w sched.Workload) sched.Result {
	res := sched.Result{System: s.Name(), Workload: w}
	chip := w.Cluster.Node.Chip
	chips := w.Chips()
	shard := w.Model.Params() / int64(chips)

	bb := s.bucketBytes()
	nb := int((2*shard + bb - 1) / bb)
	if nb < 1 {
		nb = 1
	}
	bucketParams := shard / int64(nb)

	fits := func(micro int, ckpt bool) bool {
		e := sched.Execution{MicroBatch: micro, GradAccum: 1, Checkpoint: ckpt}
		pol, _ := s.ChoosePolicy(w, e, bucketParams, chips)
		ok, _ := Fits(chip, w.Model, shard, pol, e, w.Seq, bucketParams, 0)
		return ok
	}
	timeOf := func(e sched.Execution) float64 {
		pol, _ := s.ChoosePolicy(w, e, bucketParams, chips)
		t, _ := s.simulate(w, e, pol, bucketParams, nb, 0)
		return t
	}
	exec, ok := sched.ChooseExecution(w.PerGPUBatch(), fits, timeOf)
	if !ok {
		res.OOM = "no micro-batch fits (GPU or CPU memory)"
		return res
	}
	res.Exec = exec
	res.Fits = true
	res.MaxMicroBatchNoCkpt = maxMicroNoCkpt(fits, w.PerGPUBatch())

	pol, eff := s.ChoosePolicy(w, exec, bucketParams, chips)

	gpuBuckets, bestT, bestEngine := s.searchGPUBuckets(w, exec, pol, bucketParams, nb)

	_ = eff // recorded via Describe; Plan keeps Result lean
	_ = gpuBuckets
	res.IterTime = bestT
	res.Engine = bestEngine
	st := steadyOf(bestEngine)
	res.GPUIdleFrac = st.GPUIdleFrac
	res.Finalize(chip)
	return res
}

// Describe returns the planner's full decision record — policy, casting,
// bucket partition, and the §4.3 GPU-retained tail (the same
// searchGPUBuckets grid the full Plan runs, a handful of simulations) —
// without the baseline comparison or final throughput accounting. Used
// by the superplan CLI and the placement subsystem.
func (s *System) Describe(w sched.Workload) (Plan, bool) {
	chips := w.Chips()
	shard := w.Model.Params() / int64(chips)
	bb := s.bucketBytes()
	nb := int((2*shard + bb - 1) / bb)
	if nb < 1 {
		nb = 1
	}
	bucketParams := shard / int64(nb)
	chip := w.Cluster.Node.Chip

	fits := func(micro int, ckpt bool) bool {
		e := sched.Execution{MicroBatch: micro, GradAccum: 1, Checkpoint: ckpt}
		pol, _ := s.ChoosePolicy(w, e, bucketParams, chips)
		ok, _ := Fits(chip, w.Model, shard, pol, e, w.Seq, bucketParams, 0)
		return ok
	}
	exec, ok := sched.ChooseExecution(w.PerGPUBatch(), fits, func(e sched.Execution) float64 {
		t, _ := s.simulate(w, e, WeightStationary, bucketParams, nb, 0)
		return t
	})
	if !ok {
		return Plan{}, false
	}
	pol, eff := s.ChoosePolicy(w, exec, bucketParams, chips)
	gpuBuckets, _, _ := s.searchGPUBuckets(w, exec, pol, bucketParams, nb)
	actW, actSpill := ActCoPlan(chip, w.Model, shard, pol, exec, w.Seq, bucketParams, gpuBuckets)
	return Plan{Policy: pol, CastPath: s.castPath(chip, bucketParams), BucketBytes: bb,
		BucketParams: bucketParams, NBuckets: nb, GPUBuckets: gpuBuckets,
		Exec: exec, Efficiency: eff,
		ActResidentLayers: actW, ActSpill: actSpill}, true
}

// searchGPUBuckets grid-searches the GPU-retained bucket count (§4.3)
// under the memory constraint, returning the winning count with its
// simulated iteration time and engine. Weight-flow policies and ablated
// BucketRepartition keep everything offloaded (count 0).
func (s *System) searchGPUBuckets(w sched.Workload, exec sched.Execution, pol Policy, bucketParams int64, nb int) (int, float64, *sim.Engine) {
	gpuBuckets := 0
	bestT, bestEngine := s.simulate(w, exec, pol, bucketParams, nb, 0)
	if s.Opts.BucketRepartition && pol == WeightStationary {
		chip := w.Cluster.Node.Chip
		shard := w.Model.Params() / int64(w.Chips())
		for _, n := range gridPoints(nb) {
			if ok, _ := Fits(chip, w.Model, shard, pol, exec, w.Seq, bucketParams, n); !ok {
				continue
			}
			if t, e := s.simulate(w, exec, pol, bucketParams, nb, n); t < bestT {
				bestT, bestEngine, gpuBuckets = t, e, n
			}
		}
	}
	return gpuBuckets, bestT, bestEngine
}

func (s *System) castPath(chip hw.Chip, bucketParams int64) CastPath {
	if !s.Opts.SuperchipCasting {
		return CastCPUMoveFP16
	}
	return ChooseCastPath(chip, bucketParams)
}

// simulate builds and times the schedule for a concrete plan, adding
// ZeRO-DP collective costs for multi-chip workloads (§4.7).
func (s *System) simulate(w sched.Workload, exec sched.Execution, pol Policy, bucketParams int64, nb, gpuBuckets int) (float64, *sim.Engine) {
	chip := w.Cluster.Node.Chip
	if !s.Opts.NUMABinding && w.Cluster.Node.ChipCount > 1 {
		// A misbound rank's optimizer traffic crosses the socket
		// fabric on every access, not just on transfers (§4.7).
		chip.CPU.MemBW *= hw.NUMAMisbindCPUBWFraction
	}
	p := sched.OffloadPlan{
		Chip: chip, Link: s.hostLink(w), Model: w.Model, Exec: exec, Seq: w.Seq,
		NBuckets: nb, BucketParams: bucketParams,
		GPUBuckets:  gpuBuckets,
		CastOnGPU:   s.castPath(chip, bucketParams) == CastGPUMoveFP32,
		Speculative: s.Opts.Speculation,
		CPUImpl:     s.adamImpl(),
		WeightFlow:  pol == WeightFlow,
	}
	engine, st, err := sched.Build(p)
	if err != nil {
		return 0, nil
	}
	t := st.IterTime + s.dpOverhead(w, exec)
	return t, engine
}

// dpOverhead is the per-iteration ZeRO-DP collective cost that cannot be
// hidden: reduce-scatter of gradients overlaps backward on the fabric, but
// the tail plus the fp16 parameter all-gather before the next forward is
// exposed on the slowest link. Partitioning before offloading keeps the
// host-link volume constant (§4.7), so only the inter-GPU fabric appears
// here.
func (s *System) dpOverhead(w sched.Workload, exec sched.Execution) float64 {
	n := w.Chips()
	if n <= 1 {
		return 0
	}
	link := w.Cluster.DataParallelLink(n)
	shardBytes := 2 * w.Model.Params() / int64(n)
	// Exposed fraction: the all-gather of the first shard needed by the
	// next forward plus the reduce-scatter tail; the bulk overlaps.
	rs := hw.CollectiveTime(hw.ReduceScatter, n, shardBytes, link)
	ag := hw.CollectiveTime(hw.AllGather, n, shardBytes, link)
	const exposedFraction = 0.25
	return exposedFraction * (rs + ag)
}

// gridPoints returns the candidate GPU-retained bucket counts for the grid
// search: 0 plus a geometric ladder up to a quarter of all buckets.
func gridPoints(nb int) []int {
	pts := []int{1, 2, 4, 8, 16, 32, 64}
	var out []int
	for _, p := range pts {
		if p <= nb/2 {
			out = append(out, p)
		}
	}
	return out
}

func maxMicroNoCkpt(fits sched.FitFunc, max int) int {
	for b := max; b >= 1; b-- {
		if fits(b, false) {
			return b
		}
	}
	return 0
}

// steadyOf recomputes steady stats from an engine built by simulate; when
// the engine is nil (error path) it returns zeros.
func steadyOf(e *sim.Engine) sched.SteadyStats {
	if e == nil {
		return sched.SteadyStats{}
	}
	// The engine has already run; recover GPU utilization over the
	// whole horizon (warm-up bias is small with ≥3 iterations).
	ms := e.Makespan()
	u := e.Utilization(sched.ResGPU, ms)
	busy := u.Busy - u.ByTag[sim.TagIdleWait]
	return sched.SteadyStats{GPUUtil: busy / ms, GPUIdleFrac: 1 - busy/ms, Makespan: ms}
}

// MaxTrainableModel returns the largest Appendix A model SuperOffload can
// train on the cluster at the given batch/seq (Fig. 13).
func MaxTrainableModel(cluster hw.Cluster, batch, seq int) model.Config {
	s := New()
	var best model.Config
	for _, m := range model.AppendixA() {
		w := sched.Workload{Cluster: cluster, Model: m, GlobalBatch: batch, Seq: seq}
		if r := s.Plan(w); r.Fits && m.Params() > best.Params() {
			best = m
		}
	}
	return best
}
