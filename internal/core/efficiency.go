// Package core implements the paper's primary contribution: the
// SuperOffload planner. It models training as a Superchip-aware dataflow
// graph (§4.1), chooses between weight-stationary and weight-flow
// offloading with the Eq. 1–3 efficiency model (§4.2), picks bucket sizes
// and the number of GPU-retained buckets by grid search over the simulator
// (§4.3), selects the casting placement (§4.5), applies NUMA binding
// (§4.7), and exposes the result as a sched.System that the experiments
// compare against the baselines.
package core

import (
	"superoffload/internal/hw"
	"superoffload/internal/model"
)

// Efficiency implements the paper's Eq. 1–3: the fraction of time spent
// computing when weight-flow offloading streams fp16 weights over a link
// of the given uni-directional bandwidth (bytes/s).
//
//	comp_time = total_computation / peak_tp
//	comm_time = total_data_movement / bw
//	efficiency = comp_time / (comp_time + comm_time)
//
// totalComputation is 2·bsz·seq·params FLOPs (forward); data movement is
// 2·params bytes (fp16 weights loaded once).
func Efficiency(batch, seq int, params int64, peakTP, bw float64) float64 {
	comp := 2 * float64(batch) * float64(seq) * float64(params) / peakTP
	comm := 2 * float64(params) / bw
	if comp+comm == 0 {
		return 0
	}
	return comp / (comp + comm)
}

// EfficiencyPoint is one sample of the Fig. 6 sweep.
type EfficiencyPoint struct {
	BandwidthGBs float64
	Batch        int
	Efficiency   float64 // percent, 0-100
}

// Fig6Bandwidths are the x-axis values of the paper's Fig. 6 (GB/s).
var Fig6Bandwidths = []float64{10, 20, 40, 80, 160, 320, 400, 640, 1280}

// EfficiencySweep reproduces Fig. 6: efficiency vs bandwidth for the given
// batch sizes at seq 1024. §4.2 prescribes the achievable peak rather than
// the theoretical hardware peak; the achievable figure for the large GEMMs
// that dominate the forward pass is the asymptote of the efficiency curve
// (≈0.62 of peak), not the end-to-end transformer number.
func EfficiencySweep(batches []int, params int64) []EfficiencyPoint {
	chip := hw.GH200()
	seq := 1024
	peak := chip.GPU.PeakFLOPS * hw.GEMMEfficiencyMax
	var out []EfficiencyPoint
	for _, b := range batches {
		for _, bw := range Fig6Bandwidths {
			out = append(out, EfficiencyPoint{
				BandwidthGBs: bw,
				Batch:        b,
				Efficiency:   100 * Efficiency(b, seq, params, peak, bw*1e9),
			})
		}
	}
	return out
}

// MinEfficiencyForFlow is the efficiency threshold (§4.2: "the efficiency
// should exceed 50% and ideally surpass 60%") above which weight-flow can
// fully hide weight streaming behind compute.
const MinEfficiencyForFlow = 0.60

// ---- Superchip-aware casting (§4.5, Fig. 9) ----

// CastPath identifies where the fp16/fp32 conversion happens relative to
// the host-link transfer.
type CastPath int

const (
	// CastGPUMoveFP32: convert on the GPU, move fp32 over pinned DMA —
	// twice the wire bytes, no unpinned bounce. SuperOffload's choice.
	CastGPUMoveFP32 CastPath = iota
	// CastCPUMoveFP16: move fp16 into an unpinned staging buffer, then
	// convert on the CPU — the PCIe-era minimum-volume choice.
	CastCPUMoveFP16
)

func (c CastPath) String() string {
	if c == CastGPUMoveFP32 {
		return "Cast_gpu↔Move_fp32"
	}
	return "Cast_cpu↔Move_fp16"
}

// CastCost returns the end-to-end seconds to deliver nElems gradient
// elements from GPU to CPU ready for the fp32 optimizer, under each path.
// On x86 chips the CPU-side conversion is fused into the AVX optimizer
// kernel and its staging buffers are pinned, so the fp16 path costs only
// the (halved) wire time — the regime in which the PCIe-era greedy choice
// was correct. On Grace the fp16 path bounces through an unpinned
// temporary and pays a separate conversion pass (§4.5).
func CastCost(chip hw.Chip, path CastPath, nElems int64) float64 {
	link := chip.Link
	switch path {
	case CastGPUMoveFP32:
		return hw.CastTime(chip, true, nElems) +
			link.TransferTime(4*nElems, hw.DeviceToHost, hw.Pinned)
	case CastCPUMoveFP16:
		if hw.CPUCastFused(chip) {
			return link.TransferTime(2*nElems, hw.DeviceToHost, hw.Pinned)
		}
		return link.TransferTime(2*nElems, hw.DeviceToHost, hw.Unpinned) +
			hw.CastTime(chip, false, nElems)
	}
	return 0
}

// ChooseCastPath picks the cheaper path for the chip at a representative
// transfer size (one bucket). On Superchips the fp32 path wins despite
// double volume; on PCIe the fp16 path wins (§4.5).
func ChooseCastPath(chip hw.Chip, nElems int64) CastPath {
	if CastCost(chip, CastGPUMoveFP32, nElems) <= CastCost(chip, CastCPUMoveFP16, nElems) {
		return CastGPUMoveFP32
	}
	return CastCPUMoveFP16
}

// CastCostPoint is one row of the Fig. 9 sweep.
type CastCostPoint struct {
	SizeMB    int
	CastCPUMs float64
	CastGPUMs float64
}

// CastCostSweep reproduces Fig. 9: time cost of the two casting paths for
// tensor sizes 16–2048 MB (fp16 payload bytes).
func CastCostSweep(chip hw.Chip) []CastCostPoint {
	var out []CastCostPoint
	for mb := 16; mb <= 2048; mb *= 2 {
		elems := int64(mb) * (1 << 20) / 2 // fp16 elements in an mb-MB tensor
		out = append(out, CastCostPoint{
			SizeMB:    mb,
			CastCPUMs: 1000 * CastCost(chip, CastCPUMoveFP16, elems),
			CastGPUMs: 1000 * CastCost(chip, CastGPUMoveFP32, elems),
		})
	}
	return out
}

// ActivationsDominate reports whether activation memory exceeds model
// states for the workload — the §4.2 signal that weight-flow becomes the
// right policy (e.g. million-token post-training).
func ActivationsDominate(m model.Config, batch, seq int) bool {
	return m.ActivationBytes(batch, seq, false) > m.StateBytes()
}
