package core

import (
	"fmt"

	"superoffload/internal/hw"
)

// SA-DFG (§4.1): each vertex is a tensor operator annotated with its
// compute cost on the Hopper GPU and on the Grace CPU; each edge carries
// the bytes that flow between the operators. An offload strategy is a
// two-way partition of the vertices; its cost combines per-device compute
// and the host-link transfers of cut edges (including the casting cost the
// PCIe-era greedy edge-cut ignores).

// Device is a partition side.
type Device int

const (
	GPU Device = iota
	CPU
)

func (d Device) String() string {
	if d == GPU {
		return "GPU"
	}
	return "CPU"
}

// Op is one SA-DFG vertex.
type Op struct {
	Name    string
	GPUCost float64 // seconds if placed on the GPU
	CPUCost float64 // seconds if placed on the CPU
	// Pinned ops cannot move (e.g. the forward/backward kernels are
	// GPU-only in any offload design; the optimizer-state residency may
	// be fixed by memory capacity).
	Pinned bool
	Device Device // initial/pinned placement
}

// Edge is a directed dataflow edge carrying Bytes from Src to Dst. FP16
// marks half-precision payloads: when such an edge crosses the cut toward
// the CPU it lands in an unpinned staging buffer (the transfer-then-cast
// pattern of §4.5), which is slower than pinned DMA.
type Edge struct {
	Src, Dst int
	Bytes    int64
	FP16     bool
}

// Graph is a SA-DFG.
type Graph struct {
	Ops   []Op
	Edges []Edge
	Chip  hw.Chip
}

// AddOp appends a vertex and returns its index.
func (g *Graph) AddOp(o Op) int {
	g.Ops = append(g.Ops, o)
	return len(g.Ops) - 1
}

// AddEdge appends a dataflow edge.
func (g *Graph) AddEdge(e Edge) {
	if e.Src < 0 || e.Src >= len(g.Ops) || e.Dst < 0 || e.Dst >= len(g.Ops) {
		panic(fmt.Sprintf("core: edge %d->%d out of range", e.Src, e.Dst))
	}
	g.Edges = append(g.Edges, e)
}

// Partition assigns each op to a device.
type Partition []Device

// CommVolume returns the total bytes crossing the cut — the objective the
// PCIe-era greedy algorithm minimizes.
func (g *Graph) CommVolume(p Partition) int64 {
	var v int64
	for _, e := range g.Edges {
		if p[e.Src] != p[e.Dst] {
			v += e.Bytes
		}
	}
	return v
}

// Cost returns the Superchip-aware objective: compute on each device plus
// transfer time for cut edges (pinned DMA for fp32 payloads, unpinned for
// fp16 payloads entering the CPU via the staging pattern of §4.5).
// Compute is assumed to serialize with transfers along the critical chain
// — a pessimistic but consistent scalarization, sufficient for comparing
// partitions of the optimizer subgraph.
func (g *Graph) Cost(p Partition) float64 {
	var total float64
	for i, op := range g.Ops {
		if p[i] == GPU {
			total += op.GPUCost
		} else {
			total += op.CPUCost
		}
	}
	for _, e := range g.Edges {
		if p[e.Src] == p[e.Dst] {
			continue
		}
		dir := hw.DeviceToHost
		if p[e.Src] == CPU {
			dir = hw.HostToDevice
		}
		pin := hw.Pinned
		// The unpinned fp16 staging penalty is Grace-specific (§4.5);
		// x86 offload stacks pin their fp16 buffers.
		if e.FP16 && dir == hw.DeviceToHost && !hw.CPUCastFused(g.Chip) {
			pin = hw.Unpinned
		}
		total += g.Chip.Link.TransferTime(e.Bytes, dir, pin)
	}
	return total
}

// valid reports whether the partition respects pinned ops.
func (g *Graph) valid(p Partition) bool {
	if len(p) != len(g.Ops) {
		return false
	}
	for i, op := range g.Ops {
		if op.Pinned && p[i] != op.Device {
			return false
		}
	}
	return true
}

// GreedyEdgeCut is the prior-work partitioner: starting from the pinned
// placement, it assigns each free op to the side that minimizes cut
// *bytes* (ignoring casting and pinning effects) — "minimum edge cut ...
// based on the implicit assumption that minimizing the data communication
// volume ... leads to performance improvements" (§4.5).
func (g *Graph) GreedyEdgeCut() Partition {
	p := g.basePlacement()
	for i, op := range g.Ops {
		if op.Pinned {
			continue
		}
		p[i] = GPU
		vGPU := g.CommVolume(p)
		p[i] = CPU
		vCPU := g.CommVolume(p)
		if vGPU <= vCPU {
			p[i] = GPU
		}
	}
	return p
}

// SuperchipAware partitions by exhaustively minimizing the SA-DFG cost
// over the free ops (the optimizer subgraph is small, so exhaustive search
// is exact; 2^free ≤ 2^12 in all uses here).
func (g *Graph) SuperchipAware() Partition {
	var free []int
	for i, op := range g.Ops {
		if !op.Pinned {
			free = append(free, i)
		}
	}
	if len(free) > 16 {
		panic("core: SA-DFG exhaustive partition limited to 16 free ops")
	}
	best := g.basePlacement()
	bestCost := g.Cost(best)
	p := g.basePlacement()
	for mask := 0; mask < 1<<len(free); mask++ {
		for bi, idx := range free {
			if mask&(1<<bi) != 0 {
				p[idx] = CPU
			} else {
				p[idx] = GPU
			}
		}
		if c := g.Cost(p); c < bestCost {
			bestCost = c
			copy(best, p)
		}
	}
	return best
}

func (g *Graph) basePlacement() Partition {
	p := make(Partition, len(g.Ops))
	for i, op := range g.Ops {
		p[i] = op.Device
	}
	return p
}

// MixedPrecisionStepGraph builds the canonical offloaded-optimizer SA-DFG
// of Fig. 5 for one gradient bucket: backward (GPU, pinned) produces fp16
// gradients; a cast op converts them to fp32; the Adam step (CPU, pinned
// by the offload decision) consumes fp32 gradients and produces fp32
// params; a second cast yields fp16 params for the next forward (GPU,
// pinned). The two cast ops are free — where they land decides the wire
// format, which is exactly the §4.5 decision.
func MixedPrecisionStepGraph(chip hw.Chip, bucketParams int64) *Graph {
	g := &Graph{Chip: chip}
	castGPU := hw.CastTime(chip, true, bucketParams)
	castCPU := hw.CastTime(chip, false, bucketParams)
	if hw.CPUCastFused(chip) {
		castCPU = 0 // fused into the AVX optimizer kernel
	}

	bwd := g.AddOp(Op{Name: "BWD(g16)", Pinned: true, Device: GPU})
	castG := g.AddOp(Op{Name: "CastG16→32", GPUCost: castGPU, CPUCost: castCPU})
	step := g.AddOp(Op{Name: "AdamStep", Pinned: true, Device: CPU,
		CPUCost: hw.AdamStepTime(chip, hw.AdamGrace, bucketParams),
		GPUCost: hw.AdamStepTime(chip, hw.AdamGPU, bucketParams)})
	castP := g.AddOp(Op{Name: "CastP32→16", GPUCost: castGPU, CPUCost: castCPU})
	fwd := g.AddOp(Op{Name: "FWD(p16)", Pinned: true, Device: GPU})

	// BWD → cast: fp16 payload; cast → step: fp32 payload.
	g.AddEdge(Edge{Src: bwd, Dst: castG, Bytes: 2 * bucketParams, FP16: true})
	g.AddEdge(Edge{Src: castG, Dst: step, Bytes: 4 * bucketParams})
	// step → cast: fp32 params; cast → fwd: fp16 params.
	g.AddEdge(Edge{Src: step, Dst: castP, Bytes: 4 * bucketParams})
	g.AddEdge(Edge{Src: castP, Dst: fwd, Bytes: 2 * bucketParams, FP16: true})
	return g
}
