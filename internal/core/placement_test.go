package core

import (
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

// workloadFor builds the standard evaluation workload shape.
func workloadFor(m model.Config, chips int) sched.Workload {
	return sched.Workload{Cluster: hw.ClusterFor(chips), Model: m, GlobalBatch: 8 * chips, Seq: 1024}
}

// TestDescribePlacementBounds sweeps the whole Appendix A zoo across
// chip counts and asserts the placement invariants of every plan the
// planner emits: GPUBuckets ∈ [0, NBuckets], the grid search never
// retains more than half the partition (gridPoints' ladder), weight-flow
// plans retain nothing, and the bucket arithmetic is self-consistent.
func TestDescribePlacementBounds(t *testing.T) {
	s := New()
	for _, chips := range []int{1, 4, 16} {
		for _, m := range model.AppendixA() {
			p, ok := s.Describe(workloadFor(m, chips))
			if !ok {
				continue // doesn't fit: nothing to place
			}
			if p.NBuckets < 1 {
				t.Fatalf("%s/%d chips: NBuckets = %d", m.Name, chips, p.NBuckets)
			}
			if p.GPUBuckets < 0 || p.GPUBuckets > p.NBuckets {
				t.Fatalf("%s/%d chips: GPUBuckets %d out of [0, %d]", m.Name, chips, p.GPUBuckets, p.NBuckets)
			}
			if p.GPUBuckets > p.NBuckets/2 {
				t.Fatalf("%s/%d chips: grid search retained %d of %d buckets (ladder caps at half)",
					m.Name, chips, p.GPUBuckets, p.NBuckets)
			}
			if p.Policy == WeightFlow && p.GPUBuckets != 0 {
				t.Fatalf("%s/%d chips: weight-flow plan retained %d buckets", m.Name, chips, p.GPUBuckets)
			}
			shard := m.Params() / int64(chips)
			if p.BucketParams != shard/int64(p.NBuckets) {
				t.Fatalf("%s/%d chips: BucketParams %d inconsistent with shard %d / %d buckets",
					m.Name, chips, p.BucketParams, shard, p.NBuckets)
			}
			if p.BucketBytes != hw.SuperOffloadBucketBytes {
				t.Fatalf("%s/%d chips: bucket bytes %d, want the 64 MB default", m.Name, chips, p.BucketBytes)
			}
		}
	}
}

// TestDescribePlacementSingleBucket pins the NBuckets == 1 edge: a tiny
// model's whole shard fits one bucket, the grid ladder is empty, and the
// plan stays fully offloaded and self-consistent.
func TestDescribePlacementSingleBucket(t *testing.T) {
	p, ok := New().Describe(workloadFor(model.Tiny(), 1))
	if !ok {
		t.Fatal("tiny model should fit one GH200")
	}
	if p.NBuckets != 1 {
		t.Fatalf("tiny model split into %d buckets, want 1", p.NBuckets)
	}
	if p.GPUBuckets != 0 {
		t.Fatalf("single-bucket plan retained %d buckets on the GPU", p.GPUBuckets)
	}
	if p.BucketParams != model.Tiny().Params() {
		t.Fatalf("single bucket carries %d params, want the whole model (%d)", p.BucketParams, model.Tiny().Params())
	}
}

// TestDescribePlacementTinyTailCap checks the "GPU tail would cover all
// buckets" regime on small partitions: the ladder's nb/2 cap keeps the
// CPU path populated, so even when HBM could hold everything the plan
// never degenerates to an empty offload pipeline.
func TestDescribePlacementTinyTailCap(t *testing.T) {
	for _, name := range []string{"1B", "2B", "3B"} {
		m, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, ok := New().Describe(workloadFor(m, 16))
		if !ok {
			continue
		}
		if p.GPUBuckets >= p.NBuckets {
			t.Fatalf("%s/16 chips: tail %d swallowed all %d buckets", name, p.GPUBuckets, p.NBuckets)
		}
	}
}

// TestDescribePlacementAblated pins the BucketRepartition ablation: no
// grid search, PCIe-era bucket bytes, zero GPU-retained buckets — while
// the bounds still hold.
func TestDescribePlacementAblated(t *testing.T) {
	opts := DefaultOptions()
	opts.BucketRepartition = false
	s := NewWith(opts)
	for _, name := range []string{"5B", "13B"} {
		m, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, ok := s.Describe(workloadFor(m, 1))
		if !ok {
			continue
		}
		if p.GPUBuckets != 0 {
			t.Fatalf("%s ablated: GPUBuckets = %d, want 0", name, p.GPUBuckets)
		}
		if p.BucketBytes != hw.ZeROOffloadBucketBytes {
			t.Fatalf("%s ablated: bucket bytes %d, want the ZeRO-Offload default", name, p.BucketBytes)
		}
		if p.NBuckets < 1 || p.BucketParams < 1 {
			t.Fatalf("%s ablated: degenerate partition %+v", name, p)
		}
	}
}

// TestDescribeMatchesPlanPlacement asserts Describe's grid search agrees
// with the full Plan() search on the 5B headline workload (both run the
// same searchGPUBuckets); the 5B/1-chip plan must actually retain a tail,
// so the FromCore mapping downstream has something to carry.
func TestDescribeMatchesPlanPlacement(t *testing.T) {
	m, err := model.ByName("5B")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := New().Describe(workloadFor(m, 1))
	if !ok {
		t.Fatal("5B should fit one GH200")
	}
	if p.GPUBuckets < 1 {
		t.Fatalf("5B/1-chip plan retained no GPU tail (%+v)", p)
	}
}
