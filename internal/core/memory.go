package core

import (
	"fmt"

	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

// Policy is the weight residency decision of §4.2.
type Policy int

const (
	// WeightStationary keeps fp16 weights resident on the GPU;
	// optimizer states live on the CPU (ZeRO-Offload's layout).
	WeightStationary Policy = iota
	// WeightFlow streams fp16 weights from CPU per bucket during both
	// passes, freeing GPU memory for activations (ZeRO-Infinity's
	// layout, profitable on C2C at sufficient batch×seq).
	WeightFlow
)

func (p Policy) String() string {
	if p == WeightStationary {
		return "weight-stationary"
	}
	return "weight-flow"
}

// allocFragmentation covers allocator fragmentation and framework
// temporaries on top of steady-state tensors.
const allocFragmentation = 1.1

// flowWorkingBuckets is the number of in-flight weight buckets the
// weight-flow pipeline keeps resident (double buffering each direction).
const flowWorkingBuckets = 4

// GPUMemory returns the HBM bytes SuperOffload needs on one Superchip
// under the given policy and execution, for the per-rank parameter shard
// shardParams (equals full params on a single chip; params/N under
// ZeRO-DP).
func GPUMemory(m model.Config, shardParams int64, pol Policy, exec sched.Execution, seq int, bucketParams int64, gpuBuckets int) int64 {
	var states float64
	switch pol {
	case WeightStationary:
		// fp16 weights resident; per-bucket grad staging only.
		states = 2 * float64(shardParams)
	case WeightFlow:
		states = float64(flowWorkingBuckets) * 2 * float64(bucketParams)
	}
	// GPU-retained buckets keep fp32 master+moments+grad on HBM (§4.3).
	states += float64(gpuBuckets) * float64(bucketParams) * (model.BytesOptimStates + model.BytesFP32Grad)
	// Transfer staging: a few buckets of fp32 in flight each way.
	states += 4 * 4 * float64(bucketParams)
	act := float64(m.ActivationBytes(exec.MicroBatch, seq, exec.Checkpoint))
	return int64(states*allocFragmentation+act) + hw.GPUMemoryOverheadBytes
}

// CPUMemory returns the DDR bytes for the CPU-resident states of the
// shard: fp32 master+moments+grad and the fp16 copy for cpu-offloaded
// buckets (18 bytes/param, §2.2 extended with the gradient and fp16
// staging).
func CPUMemory(shardParams int64, bucketParams int64, gpuBuckets int) int64 {
	cpuParams := shardParams - int64(gpuBuckets)*bucketParams
	if cpuParams < 0 {
		cpuParams = 0
	}
	return cpuParams*model.BytesCPUStatesFull + hw.CPUMemoryOverheadBytes
}

// ActMinResidentLayers is the activation tier's write-behind floor: the
// layer being differentiated plus the prefetch in flight.
const ActMinResidentLayers = 2

// ActCoPlan sizes the activation tier against the HBM left over after
// the optimizer placement claims its share — the two offload subsystems
// planned under one budget. It returns the largest resident-layer window
// W (ActMinResidentLayers ≤ W ≤ layers) such that the plan's
// non-activation GPU demand plus W/L of the uncheckpointed per-layer
// activation footprint (the logit activations always stay resident) fits
// the chip, plus whether that window spills (W < layers). When even the
// floor does not fit, it reports the floor with spill — the caller's
// Fits check governs feasibility, typically by re-enabling activation
// checkpointing.
func ActCoPlan(chip hw.Chip, m model.Config, shardParams int64, pol Policy, exec sched.Execution, seq int, bucketParams int64, gpuBuckets int) (int, bool) {
	if m.Layers <= 0 {
		return 0, false
	}
	noAct := exec
	noAct.MicroBatch = 0
	base := GPUMemory(m, shardParams, pol, noAct, seq, bucketParams, gpuBuckets)
	head := m
	head.Layers = 0
	logit := head.ActivationBytes(exec.MicroBatch, seq, false)
	perLayer := (m.ActivationBytes(exec.MicroBatch, seq, false) - logit) / int64(m.Layers)
	w := m.Layers
	for w > ActMinResidentLayers && base+logit+int64(w)*perLayer > chip.GPU.MemBytes {
		w--
	}
	return w, w < m.Layers
}

// Fits reports whether the configuration fits one Superchip of the
// cluster, with the reason when it does not.
func Fits(chip hw.Chip, m model.Config, shardParams int64, pol Policy, exec sched.Execution, seq int, bucketParams int64, gpuBuckets int) (bool, string) {
	g := GPUMemory(m, shardParams, pol, exec, seq, bucketParams, gpuBuckets)
	if g > chip.GPU.MemBytes {
		return false, fmt.Sprintf("GPU: need %d GiB > %d GiB HBM", g>>30, chip.GPU.MemBytes>>30)
	}
	c := CPUMemory(shardParams, bucketParams, gpuBuckets)
	if c > chip.CPU.MemBytes {
		return false, fmt.Sprintf("CPU: need %d GiB > %d GiB DDR", c>>30, chip.CPU.MemBytes>>30)
	}
	return true, ""
}
