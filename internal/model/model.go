// Package model describes GPT/LLaMA-style transformer workloads
// analytically: the Appendix A configuration table, parameter counts,
// per-iteration FLOPs, and the memory model (model states, optimizer
// states, activations with and without checkpointing) that every
// scheduling and capacity experiment consumes.
package model

import (
	"fmt"
	"sort"
)

// Config is one transformer workload.
type Config struct {
	Name   string
	Layers int
	Hidden int
	Heads  int
	Vocab  int
}

// DefaultVocab is the GPT-2 style vocabulary used throughout the
// evaluation.
const DefaultVocab = 50304

// New builds a config with heads = hidden/128 (the paper's models follow
// the standard 128-dim head convention).
func New(name string, layers, hidden int) Config {
	heads := hidden / 128
	if heads == 0 {
		heads = 1
	}
	return Config{Name: name, Layers: layers, Hidden: hidden, Heads: heads, Vocab: DefaultVocab}
}

// AppendixA reproduces the paper's Table 4 (model configurations used in
// the evaluation), extended with the 30B and 175B models referenced by
// Fig. 12 and Fig. 14.
//
//	# params            # layer       hidden
//	1, 2, 3 B           20, 40, 60    2048
//	4 B                 64            2304
//	5, 6, 8 B           44, 53, 72    3072
//	10, 11 B            50, 55        4096
//	12, 13 B            60, 65        4096
//	15 B                78            4096
//	20, 25, 50, 60 B    25, 30, 60, 75  8192
//	70, 80 B            87, 100       8192
//	150, 200 B          45, 60        16384
func AppendixA() []Config {
	return []Config{
		New("1B", 20, 2048),
		New("2B", 40, 2048),
		New("3B", 60, 2048),
		New("3.5B", 70, 2048), // DDP capacity point in Fig. 13
		New("4B", 64, 2304),
		New("5B", 44, 3072),
		New("6B", 53, 3072),
		New("8B", 72, 3072),
		New("10B", 50, 4096),
		New("11B", 55, 4096),
		New("12B", 60, 4096),
		New("13B", 65, 4096),
		New("15B", 78, 4096),
		New("20B", 25, 8192),
		New("25B", 30, 8192),
		New("30B", 37, 8192), // Fig. 12 long-sequence workload
		New("50B", 60, 8192),
		New("60B", 75, 8192),
		New("70B", 87, 8192),
		New("80B", 100, 8192),
		New("150B", 45, 16384),
		New("175B", 53, 16384), // Fig. 14 GPT-style pretrain
		New("200B", 60, 16384),
	}
}

// ByName returns the Appendix A config with the given label.
func ByName(name string) (Config, error) {
	for _, c := range AppendixA() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown config %q", name)
}

// Nearest returns the Appendix A config whose parameter count is closest
// to want.
func Nearest(want int64) Config {
	all := AppendixA()
	sort.Slice(all, func(i, j int) bool { return all[i].Params() < all[j].Params() })
	best := all[0]
	for _, c := range all {
		if abs64(c.Params()-want) < abs64(best.Params()-want) {
			best = c
		}
	}
	return best
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Params returns the total parameter count:
// per layer 12·h² (4h² attention + 8h² MLP) + 13h (biases + layernorms),
// token embedding V·h (tied with the LM head), final layernorm 2h.
func (c Config) Params() int64 {
	h := int64(c.Hidden)
	perLayer := 12*h*h + 13*h
	return int64(c.Layers)*perLayer + int64(c.Vocab)*h + 2*h
}

// Tiny returns a config small enough for real numeric training in tests
// and examples.
func Tiny() Config {
	return Config{Name: "tiny", Layers: 2, Hidden: 64, Heads: 4, Vocab: 256}
}

// ---- FLOPs ----

// FwdFLOPsPerIter returns forward-pass FLOPs for one iteration of
// batch×seq tokens: 2·P per token for the dense layers plus the attention
// score/value products 4·L·h·seq per token.
func (c Config) FwdFLOPsPerIter(batch, seq int) float64 {
	tokens := float64(batch) * float64(seq)
	dense := 2 * float64(c.Params()) * tokens
	attn := 4 * float64(c.Layers) * float64(c.Hidden) * float64(seq) * tokens
	return dense + attn
}

// IterFLOPs returns total fwd+bwd FLOPs per iteration (backward costs 2×
// forward). Recompute from activation checkpointing is NOT included: the
// paper reports effective TFLOPS excluding recomputation (§5.2).
func (c Config) IterFLOPs(batch, seq int) float64 {
	return 3 * c.FwdFLOPsPerIter(batch, seq)
}

// ---- memory model (bytes) ----

// Mixed-precision state sizes per parameter (§2.2: "16Ψ bytes ... 2Ψ
// parameters, 2Ψ gradients, and 12Ψ optimizer states").
const (
	BytesFP16Param     = 2
	BytesFP16Grad      = 2
	BytesOptimStates   = 12 // fp32 master param + momentum + variance
	BytesAllStates     = 16
	BytesFP32Grad      = 4
	BytesCPUStatesFull = 18 // optimizer states + fp32 grad + fp16 param copy
)

// StateBytes returns the full mixed-precision model-state footprint (16Ψ).
func (c Config) StateBytes() int64 { return BytesAllStates * c.Params() }

// ActivationBytesPerTokenLayer is the fp16 working set retained per token
// per layer without checkpointing (fused attention assumed, so no seq²
// term); see hw.ActivationBytesPerTokenPerLayerFP16 for calibration.
const ActivationBytesPerTokenLayer = 34

// CheckpointFraction is the activation memory retained under full
// activation checkpointing (layer-boundary tensors only).
const CheckpointFraction = 1.0 / 17.0

// ActivationBytes returns the activation footprint for one iteration.
func (c Config) ActivationBytes(batch, seq int, checkpoint bool) int64 {
	per := float64(ActivationBytesPerTokenLayer) * float64(c.Hidden)
	total := per * float64(batch) * float64(seq) * float64(c.Layers)
	if checkpoint {
		total *= CheckpointFraction
	}
	// Logit layer activations (batch·seq·vocab fp16) matter for small
	// models with big vocabularies.
	total += 2 * float64(batch) * float64(seq) * float64(c.Vocab) * 0.25
	return int64(total)
}

// GradBucketCount returns how many buckets of the given byte size the
// fp16 gradient stream splits into.
func (c Config) GradBucketCount(bucketBytes int64) int {
	gradBytes := BytesFP16Grad * c.Params()
	n := int((gradBytes + bucketBytes - 1) / bucketBytes)
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) String() string {
	return fmt.Sprintf("%s(L=%d h=%d P=%.2fB)", c.Name, c.Layers, c.Hidden, float64(c.Params())/1e9)
}
