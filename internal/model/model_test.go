package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAppendixAParamCounts(t *testing.T) {
	// Each named config's parameter count must land near its label
	// (embedding included, so small models run a bit over).
	cases := map[string]float64{
		"1B": 1e9, "2B": 2e9, "3B": 3e9, "4B": 4e9, "5B": 5e9,
		"6B": 6e9, "8B": 8e9, "10B": 10e9, "13B": 13e9, "15B": 15e9,
		"20B": 20e9, "25B": 25e9, "50B": 50e9, "70B": 70e9,
		"150B": 150e9, "200B": 200e9,
	}
	for name, want := range cases {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		got := float64(c.Params())
		if got < want*0.9 || got > want*1.25 {
			t.Errorf("%s: params = %.2fB, label %.0fB", name, got/1e9, want/1e9)
		}
	}
}

func TestAppendixATableShape(t *testing.T) {
	// Spot-check the exact (layers, hidden) pairs from Table 4.
	cases := []struct {
		name           string
		layers, hidden int
	}{
		{"1B", 20, 2048}, {"3B", 60, 2048}, {"4B", 64, 2304},
		{"5B", 44, 3072}, {"8B", 72, 3072}, {"13B", 65, 4096},
		{"15B", 78, 4096}, {"20B", 25, 8192}, {"25B", 30, 8192},
		{"50B", 60, 8192}, {"200B", 60, 16384},
	}
	for _, c := range cases {
		cfg, err := ByName(c.name)
		if err != nil {
			t.Fatalf("%v", err)
		}
		if cfg.Layers != c.layers || cfg.Hidden != c.hidden {
			t.Errorf("%s: got (L=%d,h=%d), want (L=%d,h=%d)", c.name, cfg.Layers, cfg.Hidden, c.layers, c.hidden)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("999B"); err == nil {
		t.Fatal("expected error")
	}
}

func TestNearest(t *testing.T) {
	if got := Nearest(5e9); got.Name != "5B" {
		t.Errorf("Nearest(5B) = %s", got.Name)
	}
	if got := Nearest(190e9); got.Name != "200B" {
		t.Errorf("Nearest(190B) = %s", got.Name)
	}
}

func TestStateBytesIs16Psi(t *testing.T) {
	c, _ := ByName("1B")
	if c.StateBytes() != 16*c.Params() {
		t.Errorf("state bytes = %d, want 16P", c.StateBytes())
	}
}

func TestIterFLOPs(t *testing.T) {
	c, _ := ByName("5B")
	fwd := c.FwdFLOPsPerIter(8, 1024)
	// Dense term dominates at seq 1024: 2*P*tokens.
	dense := 2 * float64(c.Params()) * 8 * 1024
	if fwd < dense || fwd > 1.5*dense {
		t.Errorf("fwd FLOPs %.3e outside [dense, 1.5*dense] %.3e", fwd, dense)
	}
	if got := c.IterFLOPs(8, 1024); math.Abs(got-3*fwd) > 1 {
		t.Errorf("iter = %v, want 3*fwd", got)
	}
}

func TestAttentionTermGrowsWithSeq(t *testing.T) {
	c, _ := ByName("13B")
	perTokenShort := c.FwdFLOPsPerIter(1, 1024) / 1024
	perTokenLong := c.FwdFLOPsPerIter(1, 1<<20) / (1 << 20)
	if perTokenLong < 2*perTokenShort {
		t.Errorf("attention quadratic term missing: %.3e vs %.3e", perTokenShort, perTokenLong)
	}
}

func TestActivationBytes(t *testing.T) {
	c, _ := ByName("3.5B")
	noCkpt := c.ActivationBytes(8, 1024, false)
	ckpt := c.ActivationBytes(8, 1024, true)
	if ckpt >= noCkpt {
		t.Errorf("checkpointing should shrink activations: %d vs %d", ckpt, noCkpt)
	}
	ratio := float64(noCkpt) / float64(ckpt)
	if ratio < 5 || ratio > 20 {
		t.Errorf("checkpoint ratio %.1f outside plausible range", ratio)
	}
}

func TestActivationsDominateAtMillionTokens(t *testing.T) {
	// §4.2: a 7B model needs ~112 GB of model states but TB-scale
	// activation memory at 1M-token sequences.
	c := Nearest(7e9)
	states := c.StateBytes()
	act := c.ActivationBytes(1, 1<<20, false)
	if act < 8*states {
		t.Errorf("1M-token activations (%d GB) should dwarf states (%d GB)",
			act>>30, states>>30)
	}
}

func TestGradBucketCount(t *testing.T) {
	c, _ := ByName("5B")
	n64 := c.GradBucketCount(64 << 20)
	n8 := c.GradBucketCount(8 << 20)
	if n8 <= n64 {
		t.Errorf("smaller buckets must mean more of them: %d vs %d", n8, n64)
	}
	// 5B fp16 grads ≈ 10.3 GB → ~165 buckets of 64 MB.
	if n64 < 140 || n64 > 190 {
		t.Errorf("5B 64MB buckets = %d, want ~160", n64)
	}
	if New("t", 1, 128).GradBucketCount(1<<30) != 1 {
		t.Error("tiny model should need one bucket")
	}
}

func TestParamsMonotoneInLayersAndHidden(t *testing.T) {
	f := func(l1, l2, h1 uint8) bool {
		la, lb := int(l1%50)+1, int(l2%50)+1
		if la > lb {
			la, lb = lb, la
		}
		h := (int(h1%30) + 2) * 64
		return New("a", la, h).Params() <= New("b", lb, h).Params()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTinyIsSmall(t *testing.T) {
	if Tiny().Params() > 1e6 {
		t.Errorf("tiny model too big: %d params", Tiny().Params())
	}
}

func TestHeadsDefault(t *testing.T) {
	if New("x", 2, 1024).Heads != 8 {
		t.Errorf("heads = %d, want 8", New("x", 2, 1024).Heads)
	}
	if New("x", 2, 64).Heads < 1 {
		t.Error("heads must be at least 1")
	}
}
