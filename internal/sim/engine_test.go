package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSerialChainOnOneResource(t *testing.T) {
	e := New()
	e.AddResource("gpu", 1)
	a := e.Add("a", "gpu", 1.0, TagCompute)
	b := e.Add("b", "gpu", 2.0, TagCompute)
	c := e.Add("c", "gpu", 3.0, TagCompute)
	Chain(a, b, c)
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 6.0 {
		t.Errorf("makespan = %v, want 6", ms)
	}
	if a.Start != 0 || b.Start != 1 || c.Start != 3 {
		t.Errorf("starts: %v %v %v", a.Start, b.Start, c.Start)
	}
}

func TestIndependentTasksSerializeOnStream(t *testing.T) {
	e := New()
	e.AddResource("gpu", 1)
	e.Add("a", "gpu", 1.0, TagCompute)
	e.Add("b", "gpu", 1.0, TagCompute)
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 2.0 {
		t.Errorf("stream should serialize: makespan = %v, want 2", ms)
	}
}

func TestIndependentTasksParallelOnPool(t *testing.T) {
	e := New()
	e.AddResource("cpu", 4)
	for i := 0; i < 4; i++ {
		e.Add("w", "cpu", 1.0, TagOptim)
	}
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 1.0 {
		t.Errorf("pool of 4 should run 4 tasks concurrently: makespan = %v", ms)
	}
}

func TestPoolQueuesBeyondCapacity(t *testing.T) {
	e := New()
	e.AddResource("cpu", 2)
	for i := 0; i < 5; i++ {
		e.Add("w", "cpu", 1.0, TagOptim)
	}
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 3.0 { // ceil(5/2) waves
		t.Errorf("makespan = %v, want 3", ms)
	}
}

func TestCrossResourceDependency(t *testing.T) {
	e := New()
	gpuTask := e.Add("bwd", "gpu", 2.0, TagCompute)
	xfer := e.Add("d2h", "d2h", 0.5, TagTransfer)
	xfer.After(gpuTask)
	opt := e.Add("adam", "cpu", 1.0, TagOptim)
	opt.After(xfer)
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 3.5 {
		t.Errorf("makespan = %v, want 3.5", ms)
	}
	if opt.Start != 2.5 {
		t.Errorf("optimizer start = %v, want 2.5", opt.Start)
	}
}

func TestOverlapMatchesManualSchedule(t *testing.T) {
	// Bucketized backward: bwd bucket i (1s each) overlaps d2h of bucket
	// i-1 (0.3s) and cpu step of i-2 (0.4s). Pipeline should hide the
	// copies and steps except for the tail.
	e := New()
	const n = 4
	var bwd, d2h, opt [n]*Task
	for i := 0; i < n; i++ {
		bwd[i] = e.Add("bwd", "gpu", 1.0, TagCompute)
		if i > 0 {
			bwd[i].After(bwd[i-1])
		}
		d2h[i] = e.Add("d2h", "d2h", 0.3, TagTransfer)
		d2h[i].After(bwd[i])
		opt[i] = e.Add("opt", "cpu", 0.4, TagOptim)
		opt[i].After(d2h[i])
	}
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 + 0.3 + 0.4 // last bucket exposed
	if math.Abs(ms-want) > 1e-12 {
		t.Errorf("makespan = %v, want %v", ms, want)
	}
}

func TestCycleDetection(t *testing.T) {
	e := New()
	a := e.Add("a", "gpu", 1, TagCompute)
	b := e.Add("b", "gpu", 1, TagCompute)
	a.After(b)
	b.After(a)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := New()
	e.Add("a", "gpu", 1, TagCompute)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestUtilizationAndIdle(t *testing.T) {
	e := New()
	a := e.Add("a", "gpu", 1.0, TagCompute)
	b := e.Add("b", "gpu", 1.0, TagCompute)
	gap := e.Add("x", "cpu", 2.0, TagOptim)
	gap.After(a)
	b.After(gap)
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 4.0 {
		t.Fatalf("makespan = %v", ms)
	}
	u := e.Utilization("gpu", ms)
	if math.Abs(u.Fraction()-0.5) > 1e-12 {
		t.Errorf("gpu utilization = %v, want 0.5", u.Fraction())
	}
	if math.Abs(u.IdleFraction()-0.5) > 1e-12 {
		t.Errorf("gpu idle = %v, want 0.5", u.IdleFraction())
	}
	if u.ByTag[TagCompute] != 2.0 {
		t.Errorf("compute busy = %v", u.ByTag[TagCompute])
	}
}

func TestUtilizationMergesOverlaps(t *testing.T) {
	e := New()
	e.AddResource("cpu", 2)
	e.Add("a", "cpu", 2.0, TagOptim)
	e.Add("b", "cpu", 2.0, TagOptim)
	ms, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	u := e.Utilization("cpu", ms)
	if u.Fraction() > 1.0 || math.Abs(u.Fraction()-1.0) > 1e-12 {
		t.Errorf("pool utilization = %v, want exactly 1.0 (merged)", u.Fraction())
	}
}

func TestZeroDurationTasksDontTrace(t *testing.T) {
	e := New()
	a := e.Add("barrier", "gpu", 0, TagCompute)
	b := e.Add("b", "gpu", 1, TagCompute)
	b.After(a)
	ms, err := e.Run()
	if err != nil || ms != 1.0 {
		t.Fatalf("ms=%v err=%v", ms, err)
	}
	if len(e.Resource("gpu").Intervals) != 1 {
		t.Errorf("zero-duration task should not record an interval")
	}
}

func TestGanttRendering(t *testing.T) {
	e := New()
	a := e.Add("fwd", "gpu", 1, TagCompute)
	x := e.Add("d2h", "d2h", 1, TagTransfer)
	x.After(a)
	o := e.Add("adam", "cpu", 1, TagOptim)
	o.After(x)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	g := e.Gantt(60)
	for _, want := range []string{"gpu", "d2h", "cpu", "C", "T", "O", "legend"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
	csv := e.CSV()
	if !strings.Contains(csv, "gpu,") || !strings.Contains(csv, "adam") {
		t.Errorf("csv missing rows:\n%s", csv)
	}
}

func TestLastOf(t *testing.T) {
	e := New()
	a := e.Add("a", "gpu", 1, TagCompute)
	b := e.Add("b", "gpu", 2, TagCompute)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if LastOf([]*Task{a, b, nil}) != b {
		t.Error("LastOf should pick latest finish")
	}
}

func TestMakespanEqualsCriticalPathProperty(t *testing.T) {
	// Property: for a random serial chain on one resource, makespan
	// equals the sum of durations; adding an independent parallel
	// resource task never increases it beyond max(chain, that task).
	f := func(durs []uint8, solo uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 50 {
			durs = durs[:50]
		}
		e := New()
		var prev *Task
		var sum float64
		for _, d := range durs {
			dd := float64(d%20) / 10.0
			sum += dd
			tk := e.Add("t", "gpu", dd, TagCompute)
			if prev != nil {
				tk.After(prev)
			}
			prev = tk
		}
		soloDur := float64(solo%40) / 10.0
		e.Add("solo", "cpu", soloDur, TagOptim)
		ms, err := e.Run()
		if err != nil {
			return false
		}
		want := math.Max(sum, soloDur)
		return math.Abs(ms-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFIFOWithinResourceByReadyTime(t *testing.T) {
	// b becomes ready later than c; both on gpu; c (ready at 0) runs
	// first even though b was submitted first.
	e := New()
	slow := e.Add("slow", "cpu", 5, TagOptim)
	b := e.Add("b", "gpu", 1, TagCompute)
	b.After(slow)
	c := e.Add("c", "gpu", 1, TagCompute)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Start != 0 {
		t.Errorf("c should start at 0, got %v", c.Start)
	}
	if b.Start != 5 {
		t.Errorf("b should start when ready at 5, got %v", b.Start)
	}
}
