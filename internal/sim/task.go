// Package sim is a deterministic discrete-event simulator for heterogeneous
// schedules. Training iterations are expressed as DAGs of tasks bound to
// resources (the GPU compute stream, the D2H and H2D copy engines, the CPU
// worker pool, the NIC); the engine executes the DAG and reports per-resource
// busy intervals, from which the experiments derive iteration time,
// utilization, and idle fractions (Figs. 3, 4, 8, 15).
//
// Semantics: a resource with capacity 1 behaves like a CUDA stream (tasks
// run serially, FIFO in ready order); capacity k models a pool with k
// concurrent slots. A task starts at max(all deps finished, a slot free).
package sim

import "fmt"

// Tag classifies a task for utilization accounting.
type Tag string

const (
	TagCompute  Tag = "compute"
	TagOptim    Tag = "optimizer"
	TagTransfer Tag = "transfer"
	TagCast     Tag = "cast"
	TagComm     Tag = "collective"
	TagValidate Tag = "validate"
	TagIdleWait Tag = "wait"
)

// Task is one unit of work bound to a named resource.
type Task struct {
	id       int
	Name     string
	Resource string
	Duration float64
	Tag      Tag

	deps       []*Task
	dependents []*Task

	// Filled in by Engine.Run.
	Start  float64
	Finish float64
	done   bool
}

// After declares that t runs only after all of the given tasks finish.
// Nil entries are ignored so callers can chain optional stages.
func (t *Task) After(deps ...*Task) *Task {
	for _, d := range deps {
		if d == nil {
			continue
		}
		t.deps = append(t.deps, d)
		d.dependents = append(d.dependents, t)
	}
	return t
}

func (t *Task) String() string {
	return fmt.Sprintf("%s@%s[%.6f,%.6f]", t.Name, t.Resource, t.Start, t.Finish)
}

// Chain links tasks sequentially (each after the previous) and returns the
// last non-nil task. Nil entries are skipped.
func Chain(tasks ...*Task) *Task {
	var prev *Task
	for _, t := range tasks {
		if t == nil {
			continue
		}
		if prev != nil {
			t.After(prev)
		}
		prev = t
	}
	return prev
}

// LastOf returns the task in the slice with the latest finish time. It is
// valid only after Engine.Run.
func LastOf(tasks []*Task) *Task {
	var last *Task
	for _, t := range tasks {
		if t == nil {
			continue
		}
		if last == nil || t.Finish > last.Finish {
			last = t
		}
	}
	return last
}
