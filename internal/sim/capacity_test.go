package sim

import (
	"testing"
	"testing/quick"
)

// TestPoolNeverExceedsCapacity: at any time instant, the number of
// concurrently running tasks on a pool must not exceed its capacity.
func TestPoolNeverExceedsCapacity(t *testing.T) {
	f := func(nTasks, capRaw uint8) bool {
		n := int(nTasks%40) + 1
		capacity := int(capRaw%6) + 1
		e := New()
		e.AddResource("pool", capacity)
		for i := 0; i < n; i++ {
			e.Add("w", "pool", float64(i%5)/10+0.1, TagOptim)
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		ivs := e.Resource("pool").Intervals
		// Check overlap count at every interval start.
		for _, probe := range ivs {
			count := 0
			mid := probe.Start + 1e-9
			for _, iv := range ivs {
				if iv.Start <= mid && mid < iv.End {
					count++
				}
			}
			if count > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTopologicalOrderRespected: a task never starts before all its
// dependencies finish, for random DAGs.
func TestTopologicalOrderRespected(t *testing.T) {
	f := func(seed uint16) bool {
		e := New()
		e.AddResource("a", 1)
		e.AddResource("b", 2)
		n := 30
		tasks := make([]*Task, n)
		for i := 0; i < n; i++ {
			res := "a"
			if i%3 == 0 {
				res = "b"
			}
			tasks[i] = e.Add("t", res, float64((int(seed)+i)%7)/10+0.05, TagCompute)
			// Random back-edges to earlier tasks only (acyclic).
			for j := 0; j < i; j++ {
				if (int(seed)+i*j)%5 == 0 {
					tasks[i].After(tasks[j])
				}
			}
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if (int(seed)+i*j)%5 == 0 && tasks[i].Start < tasks[j].Finish-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationBetweenWindow(t *testing.T) {
	e := New()
	a := e.Add("a", "gpu", 2.0, TagCompute)
	b := e.Add("b", "gpu", 2.0, TagCompute)
	gap := e.Add("g", "cpu", 2.0, TagOptim)
	gap.After(a)
	b.After(gap)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Window [2,4] is entirely the gap: gpu idle.
	u := e.UtilizationBetween("gpu", 2, 4)
	if u.Fraction() != 0 {
		t.Errorf("gap window utilization = %v", u.Fraction())
	}
	// Window [0,2] is fully busy.
	u = e.UtilizationBetween("gpu", 0, 2)
	if u.Fraction() != 1 {
		t.Errorf("busy window utilization = %v", u.Fraction())
	}
	// Degenerate windows.
	if e.UtilizationBetween("gpu", 4, 2).Fraction() != 0 {
		t.Error("inverted window should be zero")
	}
	if e.UtilizationBetween("nope", 0, 1).Fraction() != 0 {
		t.Error("unknown resource should be zero")
	}
}

func TestGanttEmptyAndTinyWidth(t *testing.T) {
	e := New()
	if g := e.Gantt(50); g != "(empty schedule)" {
		t.Errorf("empty gantt: %q", g)
	}
	e.Add("a", "gpu", 1, TagCompute)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if g := e.Gantt(1); len(g) == 0 { // clamps to minimum width
		t.Error("tiny-width gantt empty")
	}
}
