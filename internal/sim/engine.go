package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Resource is a named execution lane: capacity 1 models a stream or engine,
// capacity k a worker pool.
type Resource struct {
	Name     string
	Capacity int

	// slot free times, maintained as a min-heap during Run.
	slots slotHeap
	// busy intervals recorded for tracing.
	Intervals []Interval
}

// Interval is one busy span on a resource.
type Interval struct {
	Start, End float64
	Name       string
	Tag        Tag
}

// Engine owns resources and tasks, and runs the DAG.
type Engine struct {
	resources map[string]*Resource
	order     []string
	tasks     []*Task
	ran       bool
}

// New creates an empty engine.
func New() *Engine {
	return &Engine{resources: make(map[string]*Resource)}
}

// AddResource registers a resource lane. Capacity < 1 is treated as 1.
func (e *Engine) AddResource(name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	if r, ok := e.resources[name]; ok {
		r.Capacity = capacity
		return r
	}
	r := &Resource{Name: name, Capacity: capacity}
	e.resources[name] = r
	e.order = append(e.order, name)
	return r
}

// Resource returns a registered resource by name, or nil.
func (e *Engine) Resource(name string) *Resource { return e.resources[name] }

// Add creates a task on the given resource. The resource must have been
// registered; unknown resources are auto-registered with capacity 1 so
// schedule builders stay terse.
func (e *Engine) Add(name, resource string, duration float64, tag Tag) *Task {
	if duration < 0 {
		duration = 0
	}
	if _, ok := e.resources[resource]; !ok {
		e.AddResource(resource, 1)
	}
	t := &Task{id: len(e.tasks), Name: name, Resource: resource, Duration: duration, Tag: tag}
	e.tasks = append(e.tasks, t)
	return t
}

// Run executes the DAG and returns the makespan (latest finish time).
// It is an error to run twice or to have a dependency cycle.
func (e *Engine) Run() (float64, error) {
	if e.ran {
		return 0, fmt.Errorf("sim: engine already ran")
	}
	e.ran = true

	for _, r := range e.resources {
		r.slots = make(slotHeap, r.Capacity)
		heap.Init(&r.slots)
	}

	indeg := make([]int, len(e.tasks))
	readyAt := make([]float64, len(e.tasks))
	for i, t := range e.tasks {
		indeg[i] = len(t.deps)
	}

	var ready readyHeap
	for i, t := range e.tasks {
		if indeg[i] == 0 {
			heap.Push(&ready, readyItem{at: 0, seq: t.id, task: t})
		}
	}

	doneCount := 0
	var makespan float64
	for ready.Len() > 0 {
		item := heap.Pop(&ready).(readyItem)
		t := item.task
		r := e.resources[t.Resource]
		slotFree := r.slots[0]
		start := item.at
		if slotFree > start {
			start = slotFree
		}
		finish := start + t.Duration
		r.slots[0] = finish
		heap.Fix(&r.slots, 0)

		t.Start, t.Finish, t.done = start, finish, true
		if t.Duration > 0 {
			r.Intervals = append(r.Intervals, Interval{Start: start, End: finish, Name: t.Name, Tag: t.Tag})
		}
		if finish > makespan {
			makespan = finish
		}
		doneCount++

		for _, d := range t.dependents {
			if finish > readyAt[d.id] {
				readyAt[d.id] = finish
			}
			indeg[d.id]--
			if indeg[d.id] == 0 {
				heap.Push(&ready, readyItem{at: readyAt[d.id], seq: d.id, task: d})
			}
		}
	}

	if doneCount != len(e.tasks) {
		return 0, fmt.Errorf("sim: dependency cycle: %d of %d tasks unreachable", len(e.tasks)-doneCount, doneCount)
	}
	for _, r := range e.resources {
		sort.Slice(r.Intervals, func(i, j int) bool { return r.Intervals[i].Start < r.Intervals[j].Start })
	}
	return makespan, nil
}

// Makespan returns the latest finish across all tasks (0 before Run).
func (e *Engine) Makespan() float64 {
	var m float64
	for _, t := range e.tasks {
		if t.done && t.Finish > m {
			m = t.Finish
		}
	}
	return m
}

// Tasks returns all tasks in submission order.
func (e *Engine) Tasks() []*Task { return e.tasks }

// ResourceNames returns registered resources in registration order.
func (e *Engine) ResourceNames() []string { return append([]string(nil), e.order...) }

// ---- heaps ----

type slotHeap []float64

func (h slotHeap) Len() int            { return len(h) }
func (h slotHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type readyItem struct {
	at   float64
	seq  int
	task *Task
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
