package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Utilization summarizes one resource's activity over a window.
type Utilization struct {
	Resource string
	Busy     float64 // total busy seconds
	Window   float64 // observation window seconds
	ByTag    map[Tag]float64
}

// Fraction is busy time over the window (0 when the window is empty).
func (u Utilization) Fraction() float64 {
	if u.Window <= 0 {
		return 0
	}
	f := u.Busy / u.Window
	if f > 1 {
		f = 1
	}
	return f
}

// IdleFraction is 1 - Fraction.
func (u Utilization) IdleFraction() float64 { return 1 - u.Fraction() }

// Utilization computes busy statistics for one resource over [0, window].
// Overlapping intervals (capacity > 1) are merged for the busy total so a
// pool never reports more than 100%.
func (e *Engine) Utilization(resource string, window float64) Utilization {
	return e.UtilizationBetween(resource, 0, window)
}

// UtilizationBetween computes busy statistics over [from, to] — used to
// isolate steady-state iterations from pipeline warm-up.
func (e *Engine) UtilizationBetween(resource string, from, to float64) Utilization {
	window := to - from
	u := Utilization{Resource: resource, Window: window, ByTag: map[Tag]float64{}}
	r := e.resources[resource]
	if r == nil || window <= 0 {
		return u
	}
	// Merge intervals clipped to the window.
	type span struct{ s, e float64 }
	var spans []span
	for _, iv := range r.Intervals {
		s, en := iv.Start, iv.End
		if s < from {
			s = from
		}
		if en > to {
			en = to
		}
		if s >= en {
			continue
		}
		spans = append(spans, span{s, en})
		u.ByTag[iv.Tag] += en - s
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
	var busy, curS, curE float64
	curS, curE = -1, -1
	for _, sp := range spans {
		if sp.s > curE {
			if curE > curS {
				busy += curE - curS
			}
			curS, curE = sp.s, sp.e
		} else if sp.e > curE {
			curE = sp.e
		}
	}
	if curE > curS {
		busy += curE - curS
	}
	u.Busy = busy
	return u
}

// Gantt renders an ASCII timeline of the engine's resources, width columns
// wide — the textual analogue of the paper's Fig. 3 / Fig. 8 schedules.
func (e *Engine) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	makespan := e.Makespan()
	if makespan <= 0 {
		return "(empty schedule)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.4fs, 1 col = %.5fs\n", makespan, makespan/float64(width))
	for _, name := range e.order {
		r := e.resources[name]
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range r.Intervals {
			s := int(iv.Start / makespan * float64(width))
			en := int(iv.End / makespan * float64(width))
			if en <= s {
				en = s + 1
			}
			if en > width {
				en = width
			}
			ch := glyphFor(iv.Tag)
			for i := s; i < en; i++ {
				row[i] = ch
			}
		}
		u := e.Utilization(name, makespan)
		fmt.Fprintf(&b, "%-10s |%s| %5.1f%%\n", name, string(row), 100*u.Fraction())
	}
	b.WriteString("legend: C=compute O=optimizer T=transfer X=cast M=collective V=validate .=idle\n")
	return b.String()
}

func glyphFor(t Tag) byte {
	switch t {
	case TagCompute:
		return 'C'
	case TagOptim:
		return 'O'
	case TagTransfer:
		return 'T'
	case TagCast:
		return 'X'
	case TagComm:
		return 'M'
	case TagValidate:
		return 'V'
	}
	return '#'
}

// CSV renders intervals as "resource,start,end,name,tag" rows for external
// plotting.
func (e *Engine) CSV() string {
	var b strings.Builder
	b.WriteString("resource,start,end,name,tag\n")
	for _, name := range e.order {
		for _, iv := range e.resources[name].Intervals {
			fmt.Fprintf(&b, "%s,%.9f,%.9f,%s,%s\n", name, iv.Start, iv.End, iv.Name, iv.Tag)
		}
	}
	return b.String()
}
