package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one table or figure and returns its textual form.
type Runner func() string

// registry maps experiment ids (as used by `superbench -exp`) to runners.
var registry = map[string]Runner{
	"table1": func() string { return RenderTable1() },
	"fig3":   Fig3,
	"fig4":   func() string { return RenderIdle("Fig. 4: GPU idle with prior offloading (ZeRO-Offload)", Fig4()) },
	"fig6":   RenderFig6,
	"fig7":   RenderFig7,
	"fig8":   Fig8,
	"fig9":   RenderFig9,
	"fig10": func() string {
		return RenderThroughput("Fig. 10: single-Superchip throughput, batch 8", Fig10())
	},
	"fig11a": func() string {
		return RenderThroughput("Fig. 11a: 4-Superchip throughput, batch 16", Fig11(4))
	},
	"fig11b": func() string {
		return RenderThroughput("Fig. 11b: 16-Superchip throughput, batch 128", Fig11(16))
	},
	"fig12":             func() string { return RenderFig12(Fig12()) },
	"fig13":             func() string { return RenderFig13(Fig13()) },
	"table2":            func() string { return RenderTable2(Table2()) },
	"table3":            func() string { return RenderTable3(Table3(0)) },
	"fig14":             func() string { return RenderFig14(Fig14Real(150), Fig14Envelope(80000)) },
	"fig15":             func() string { return RenderIdle("Fig. 15: GPU idle with SuperOffload", Fig15()) },
	"ext-act-stv":       ExtActSTV,
	"ext-nvme":          ExtNVMe,
	"ext-nvme-stv":      ExtNVMeSTV,
	"ext-mlp-stv":       ExtMlpSTV,
	"ext-ulysses-stv":   ExtUlyssesSTV,
	"ext-mesh-stv":      ExtMeshSTV,
	"ext-pipe-stv":      ExtPipeSTV,
	"ext-placement-stv": ExtPlacementSTV,
}

// Names lists the available experiment ids in sorted order.
func Names() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run regenerates the named experiment.
func Run(name string) (string, error) {
	r, ok := registry[name]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(), nil
}
