package experiments

import (
	"fmt"
	"strings"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// ExtActSTV is the activation-tier counterpart of ext-nvme-stv: instead
// of spilling optimizer state, it trains an actual GPT with each layer's
// forward activations spilled behind a 2-layer write-behind window —
// once into the DRAM cache tier over the C2C link, once into a
// file-backed NVMe tier — and prefetched back ahead of the backward pass
// with async double buffering. It reports three things: that both
// spilling runs are bit-identical to the fully resident run (restores
// copy back the exact float32 bits, so offloading is numerically
// invisible), the per-tier spill/fetch traffic, and the modeled step
// time of the overlapped prefetch pipeline against a serialized
// spill+compute+fetch schedule on the same virtual clocks.
func ExtActSTV() string {
	const (
		steps  = 30
		window = 2
	)
	cfg := model.Config{Name: "ext", Layers: 5, Hidden: 64, Heads: 4, Vocab: 128}

	run := func(store *act.Store) ([]float64, stv.Stats) {
		m := nn.NewGPT(cfg, 16, tensor.NewRNG(21))
		a := optim.DefaultConfig()
		a.LR = 3e-3
		tr := stv.NewTrainer(m, stv.Config{
			Adam: a, Impl: optim.GraceAdam, ClipNorm: 4.0,
			BucketElems: 4096, Mode: stv.STV, Act: store,
		})
		defer tr.Close()
		corpus := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			l, err := tr.Step(corpus.NextBatch(4, 16))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := tr.Flush(); err != nil {
			panic(err)
		}
		return losses, tr.Stats()
	}

	actStore := func(tier act.Tier) *act.Store {
		s, err := act.NewStore(act.Config{
			Tier: tier, ResidentLayers: window,
			Hidden: cfg.Hidden,
			Params: int64(nn.NewGPT(cfg, 16, tensor.NewRNG(21)).NumParams()),
		})
		if err != nil {
			panic(err)
		}
		return s
	}

	residentLosses, residentStats := run(nil)

	dram := actStore(act.DRAM)
	dramLosses, dramStats := run(dram)
	dramTel := dram.Telemetry()

	nvme := actStore(act.NVMe)
	nvmeLosses, nvmeStats := run(nvme)
	nvmeTel := nvme.Telemetry()

	exact := len(residentLosses) == len(dramLosses)
	for i := range residentLosses {
		if residentLosses[i] != dramLosses[i] || residentLosses[i] != nvmeLosses[i] {
			exact = false
			break
		}
	}
	exactStr := "bit-identical"
	if !exact {
		exactStr = "DIVERGED (bug!)"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: SSDTrain-style activation offloading tier on the real STV engine\n")
	fmt.Fprintf(&b, "model: %d layers, %d params; write-behind window %d, depth-2 async prefetch\n",
		cfg.Layers, nn.NewGPT(cfg, 16, tensor.NewRNG(21)).NumParams(), window)
	fmt.Fprintf(&b, "resident vs dram vs nvme loss trajectory over %d steps: %s (final loss %.4f, %d commits, %d rollbacks)\n",
		steps, exactStr, residentLosses[len(residentLosses)-1], residentStats.Commits, residentStats.Rollbacks())
	if residentStats != dramStats || residentStats != nvmeStats {
		fmt.Fprintf(&b, "WARNING: stats diverged across tiers: %+v vs %+v vs %+v\n", residentStats, dramStats, nvmeStats)
	}
	fmt.Fprintf(&b, "per-pass traffic: %d spills (%.2f MB), %d fetches (%.2f MB) across %d passes\n",
		dramTel.Spills, float64(dramTel.BytesSpilled)/1e6,
		dramTel.Fetches, float64(dramTel.BytesFetched)/1e6, dramTel.Passes)
	row := func(name string, t act.Telemetry) {
		pipe, serial := t.PipelinedSeconds(), t.SerializedSeconds()
		fmt.Fprintf(&b, "  %-22s %8.3f ms %12.3f ms %9.0f%%\n",
			name, 1e3*pipe/steps, 1e3*serial/steps, 100*(1-pipe/serial))
	}
	fmt.Fprintf(&b, "modeled step time          pipelined    serialized     hidden\n")
	row("DRAM cache (C2C)", dramTel)
	row("NVMe backing file", nvmeTel)
	fmt.Fprintf(&b, "pipelined = compute + unhidden prefetch stalls; serialized = every spill and fetch end to end")
	return b.String()
}
