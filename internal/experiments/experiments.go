// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the systems in this repository. Each experiment has
// one entry point returning structured rows plus a Render method; the
// superbench CLI and the root bench suite are thin wrappers around these.
//
// Index (see DESIGN.md §3): Table1, Fig3, Fig4, Fig6, Fig7, Fig9, Fig10,
// Fig11, Fig12, Fig13, Table2, Table3, Fig14, Fig15.
package experiments

import (
	"fmt"

	"superoffload/internal/baselines"
	"superoffload/internal/core"
	"superoffload/internal/hw"
	"superoffload/internal/metrics"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

// Systems returns SuperOffload plus all baselines in paper order.
func Systems() []sched.System {
	return append([]sched.System{core.New()}, baselines.All()...)
}

// ---- Table 1: node architecture comparison ----

// Table1Row is one column of the paper's Table 1 (transposed to rows).
type Table1Row struct {
	Node       string
	CPUBWGBs   float64
	LinkBWGBs  float64
	CPUCores   int
	CPUTFLOPS  float64
	GPUTFLOPS  float64
	FLOPSRatio float64
}

// Table1 reproduces the hardware comparison.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, c := range hw.Registry() {
		link := c.Link.PeakBW
		if c.Link.Duplex {
			link *= 2 // the paper quotes total (900 GB/s) for C2C
		}
		rows = append(rows, Table1Row{
			Node:       c.Name,
			CPUBWGBs:   c.CPU.MemBW / 1e9,
			LinkBWGBs:  link / 1e9,
			CPUCores:   c.CPU.Cores,
			CPUTFLOPS:  c.CPU.PeakFLOPS / 1e12,
			GPUTFLOPS:  c.GPU.PeakFLOPS / 1e12,
			FLOPSRatio: c.FLOPSRatio(),
		})
	}
	return rows
}

// RenderTable1 formats Table1 like the paper.
func RenderTable1() string {
	t := metrics.NewTable("Node Arch", "CPU BW (GB/s)", "C<->GPU BW (GB/s)", "CPU Cores", "CPU TFLOPS", "GPU TFLOPS", "GPU/CPU")
	for _, r := range Table1() {
		t.Add(r.Node, r.CPUBWGBs, r.LinkBWGBs, r.CPUCores, r.CPUTFLOPS, r.GPUTFLOPS, r.FLOPSRatio)
	}
	return "Table 1: GPU node comparison\n" + t.String()
}

// ---- Fig. 3 / Fig. 8: schedules as Gantt charts ----

// fig38 builds the 5B single-chip schedule under the given mode and
// renders its Gantt chart.
func fig38(speculative bool, gpuBuckets int) (string, sched.SteadyStats) {
	m, _ := model.ByName("5B")
	chip := hw.GH200()
	bucketBytes := int64(hw.ZeROOffloadBucketBytes)
	impl := hw.AdamCPU
	cast := false
	if speculative {
		bucketBytes = hw.SuperOffloadBucketBytes
		impl = hw.AdamGrace
		cast = true
	}
	nb := m.GradBucketCount(bucketBytes)
	engine, st, err := sched.Build(sched.OffloadPlan{
		Chip: chip, Link: chip.Link, Model: m,
		Exec: sched.Execution{MicroBatch: 8, GradAccum: 1}, Seq: 1024,
		NBuckets: nb, BucketParams: m.Params() / int64(nb),
		GPUBuckets: gpuBuckets, CastOnGPU: cast, Speculative: speculative, CPUImpl: impl,
	})
	if err != nil {
		return err.Error(), st
	}
	return engine.Gantt(100), st
}

// Fig3 renders the ZeRO-Offload (synchronize-then-execute) schedule with
// its idle gaps.
func Fig3() string {
	g, st := fig38(false, 0)
	return fmt.Sprintf("Fig. 3: ZeRO-Offload STE schedule (5B, bsz 8)\nGPU idle: %s per iteration\n%s",
		metrics.Pct(st.GPUIdleFrac), g)
}

// Fig8 renders the SuperOffload speculation-then-validation schedule.
func Fig8() string {
	g, st := fig38(true, 4)
	return fmt.Sprintf("Fig. 8: SuperOffload STV schedule (5B, bsz 8)\nGPU idle: %s per iteration\n%s",
		metrics.Pct(st.GPUIdleFrac), g)
}

// ---- Fig. 4 / Fig. 15: GPU idle time ----

// IdleRow is one bar of Figs. 4/15.
type IdleRow struct {
	Setting  string
	System   string
	IdleFrac float64
}

// idleFor measures GPU idle for the largest model the system fits at the
// max batch, per the Fig. 4 methodology.
func idleFor(s sched.System, chips int) IdleRow {
	cl := hw.ClusterFor(chips)
	m := sched.MaxTrainable(s, cl, 8*chips, 1024)
	r := s.Plan(sched.Workload{Cluster: cl, Model: m, GlobalBatch: 8 * chips, Seq: 1024})
	setting := "One Superchip"
	if chips > 1 {
		setting = "One Node"
	}
	return IdleRow{Setting: setting, System: s.Name(), IdleFrac: r.GPUIdleFrac}
}

// Fig4 measures prior offloading's GPU idle on one Superchip and one node.
func Fig4() []IdleRow {
	return []IdleRow{idleFor(baselines.ZeROOffload{}, 1), idleFor(baselines.ZeROOffload{}, 4)}
}

// Fig15 measures SuperOffload's GPU idle in the same settings.
func Fig15() []IdleRow {
	return []IdleRow{idleFor(core.New(), 1), idleFor(core.New(), 4)}
}

// RenderIdle formats Fig. 4 / Fig. 15 rows.
func RenderIdle(title string, rows []IdleRow) string {
	t := metrics.NewTable("Setting", "System", "GPU idle")
	for _, r := range rows {
		t.AddStrings(r.Setting, r.System, metrics.Pct(r.IdleFrac))
	}
	return title + "\n" + t.String()
}

// ---- Fig. 6: efficiency vs bandwidth ----

// Fig6 returns the Eq. 1-3 sweep for batch 1/2/4 on a 7B model.
func Fig6() []core.EfficiencyPoint {
	return core.EfficiencySweep([]int{1, 2, 4}, model.Nearest(7e9).Params())
}

// RenderFig6 formats the sweep as one series per batch size.
func RenderFig6() string {
	t := metrics.NewTable("BW (GB/s)", "Bsz1 (%)", "Bsz2 (%)", "Bsz4 (%)")
	pts := Fig6()
	for _, bw := range core.Fig6Bandwidths {
		row := []string{fmt.Sprintf("%.0f", bw)}
		for _, b := range []int{1, 2, 4} {
			for _, p := range pts {
				if p.Batch == b && p.BandwidthGBs == bw {
					row = append(row, fmt.Sprintf("%.1f", p.Efficiency))
				}
			}
		}
		t.AddStrings(row...)
	}
	return "Fig. 6: weight-flow efficiency vs bandwidth (Eq. 1-3, seq 1024)\n" + t.String()
}

// ---- Fig. 7: bandwidth vs tensor size ----

// Fig7 returns the GH200 C2C bandwidth sweep.
func Fig7() []hw.BandwidthPoint {
	return hw.GH200().Link.BandwidthSweep(256 << 20)
}

// RenderFig7 formats the sweep.
func RenderFig7() string {
	t := metrics.NewTable("Tensor (MB)", "CPU->GPU (GB/s)", "GPU->CPU (GB/s)")
	for _, p := range Fig7() {
		t.AddStrings(fmt.Sprintf("%.2f", float64(p.SizeBytes)/(1<<20)),
			fmt.Sprintf("%.0f", p.H2DBps/1e9), fmt.Sprintf("%.0f", p.D2HBps/1e9))
	}
	return "Fig. 7: GH200 C2C bandwidth vs tensor size\n" + t.String()
}

// ---- Fig. 9: casting cost ----

// Fig9 returns the casting-path cost sweep on GH200.
func Fig9() []core.CastCostPoint {
	return core.CastCostSweep(hw.GH200())
}

// RenderFig9 formats the sweep.
func RenderFig9() string {
	t := metrics.NewTable("Tensor (MB)", "Cast_cpu+Move_fp16 (ms)", "Cast_gpu+Move_fp32 (ms)")
	for _, p := range Fig9() {
		t.AddStrings(fmt.Sprintf("%d", p.SizeMB),
			fmt.Sprintf("%.2f", p.CastCPUMs), fmt.Sprintf("%.2f", p.CastGPUMs))
	}
	return "Fig. 9: casting path cost on GH200 (§4.5)\n" + t.String()
}

// ---- Fig. 10 / Fig. 11: throughput tables ----

// ThroughputCell is one bar of Figs. 10/11.
type ThroughputCell struct {
	Model  string
	System string
	Fits   bool
	TFLOPS float64
}

// Fig10Models are the single-Superchip model sizes swept.
var Fig10Models = []string{"1B", "3B", "5B", "10B", "13B", "15B", "20B", "25B"}

// Fig10 sweeps all systems on a single Superchip at batch 8.
func Fig10() []ThroughputCell { return throughput(1, 8, Fig10Models) }

// Fig11Models4 and Fig11Models16 are the multi-chip sweeps (§5.2 uses
// batch 16 on 4 chips and 128 on 16).
var (
	Fig11Models4  = []string{"5B", "8B", "13B", "15B", "20B", "30B", "50B"}
	Fig11Models16 = []string{"5B", "13B", "20B", "50B", "80B", "150B", "200B"}
)

// Fig11 sweeps 4- or 16-Superchip workloads.
func Fig11(chips int) []ThroughputCell {
	if chips >= 16 {
		return throughput(16, 128, Fig11Models16)
	}
	return throughput(4, 16, Fig11Models4)
}

func throughput(chips, batch int, names []string) []ThroughputCell {
	var out []ThroughputCell
	for _, name := range names {
		m, err := model.ByName(name)
		if err != nil {
			continue
		}
		w := sched.Workload{Cluster: hw.ClusterFor(chips), Model: m, GlobalBatch: batch, Seq: 1024}
		for _, s := range Systems() {
			r := s.Plan(w)
			out = append(out, ThroughputCell{Model: name, System: s.Name(), Fits: r.Fits, TFLOPS: r.TFLOPS})
		}
	}
	return out
}

// RenderThroughput formats a throughput sweep as a model × system matrix.
func RenderThroughput(title string, cells []ThroughputCell) string {
	systems := []string{}
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.System] {
			seen[c.System] = true
			systems = append(systems, c.System)
		}
	}
	t := metrics.NewTable(append([]string{"Model"}, systems...)...)
	byModel := map[string][]ThroughputCell{}
	var order []string
	for _, c := range cells {
		if _, ok := byModel[c.Model]; !ok {
			order = append(order, c.Model)
		}
		byModel[c.Model] = append(byModel[c.Model], c)
	}
	for _, m := range order {
		row := []string{m}
		for _, s := range systems {
			cell := "OOM"
			for _, c := range byModel[m] {
				if c.System == s && c.Fits {
					cell = fmt.Sprintf("%.0f", c.TFLOPS)
				}
			}
			row = append(row, cell)
		}
		t.AddStrings(row...)
	}
	return title + " (TFLOPS per GPU)\n" + t.String()
}

// ---- Fig. 13: model scale ----

// ScaleRow is one bar group of Fig. 13.
type ScaleRow struct {
	Chips    int
	System   string
	MaxModel string
	Params   int64
}

// Fig13 finds the largest trainable model per system on 1/4/16 chips.
func Fig13() []ScaleRow {
	var rows []ScaleRow
	for _, chips := range []int{1, 4, 16} {
		batch := map[int]int{1: 8, 4: 16, 16: 128}[chips]
		for _, s := range Systems() {
			mx := sched.MaxTrainable(s, hw.ClusterFor(chips), batch, 1024)
			name := mx.Name
			if mx.Params() == 0 {
				name = "-"
			}
			rows = append(rows, ScaleRow{Chips: chips, System: s.Name(), MaxModel: name, Params: mx.Params()})
		}
	}
	return rows
}

// RenderFig13 formats the capacity matrix.
func RenderFig13(rows []ScaleRow) string {
	t := metrics.NewTable("System", "1 chip", "4 chips", "16 chips")
	bySys := map[string]map[int]string{}
	var order []string
	for _, r := range rows {
		if _, ok := bySys[r.System]; !ok {
			bySys[r.System] = map[int]string{}
			order = append(order, r.System)
		}
		bySys[r.System][r.Chips] = r.MaxModel
	}
	for _, s := range order {
		t.AddStrings(s, bySys[s][1], bySys[s][4], bySys[s][16])
	}
	return "Fig. 13: largest trainable model\n" + t.String()
}
