package experiments

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	gh := rows[2]
	if gh.Node != "GH200" || gh.LinkBWGBs != 900 || gh.CPUBWGBs != 500 || gh.CPUCores != 72 {
		t.Errorf("GH200 row wrong: %+v", gh)
	}
	if gh.FLOPSRatio < 320 || gh.FLOPSRatio > 340 {
		t.Errorf("GH200 ratio %.1f, want ~330", gh.FLOPSRatio)
	}
}

func TestFig4VsFig15(t *testing.T) {
	prior := Fig4()
	super := Fig15()
	if len(prior) != 2 || len(super) != 2 {
		t.Fatalf("idle rows: %d/%d", len(prior), len(super))
	}
	for i := range prior {
		// Fig. 4: 40-50% idle for prior offloading; Fig. 15:
		// near-complete utilization for SuperOffload.
		if prior[i].IdleFrac < 0.30 || prior[i].IdleFrac > 0.70 {
			t.Errorf("%s ZeRO-Offload idle = %.2f, want ~0.4-0.55", prior[i].Setting, prior[i].IdleFrac)
		}
		if super[i].IdleFrac > 0.15 {
			t.Errorf("%s SuperOffload idle = %.2f, want near zero", super[i].Setting, super[i].IdleFrac)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	cells := Fig10()
	get := func(model, system string) (ThroughputCell, bool) {
		for _, c := range cells {
			if c.Model == model && c.System == system {
				return c, true
			}
		}
		return ThroughputCell{}, false
	}
	// SuperOffload wins at every size it shares with any baseline.
	for _, m := range Fig10Models {
		so, _ := get(m, "SuperOffload")
		if !so.Fits {
			t.Errorf("SuperOffload OOM at %s on single chip", m)
			continue
		}
		for _, sys := range []string{"PyTorch DDP", "ZeRO-Offload", "ZeRO-Infinity", "FSDP-Offload"} {
			c, ok := get(m, sys)
			if !ok || !c.Fits {
				continue
			}
			if c.TFLOPS >= so.TFLOPS {
				t.Errorf("%s at %s (%.0f) beats SuperOffload (%.0f)", sys, m, c.TFLOPS, so.TFLOPS)
			}
		}
	}
	// Headline ratio: ~2x (up to 2.5x) over ZeRO-Offload where both fit.
	so5, _ := get("5B", "SuperOffload")
	zo5, _ := get("5B", "ZeRO-Offload")
	if r := so5.TFLOPS / zo5.TFLOPS; r < 1.7 || r > 3.0 {
		t.Errorf("SuperOffload/ZeRO-Offload at 5B = %.2fx, paper ~2-2.5x", r)
	}
	// ZeRO-Infinity ratio: paper reports 6.7x average (up to 12.6x); we
	// accept ≥3x.
	zi5, _ := get("5B", "ZeRO-Infinity")
	if r := so5.TFLOPS / zi5.TFLOPS; r < 3 {
		t.Errorf("SuperOffload/ZeRO-Infinity at 5B = %.2fx, want ≥3x", r)
	}
}

func TestFig11Shape(t *testing.T) {
	for _, chips := range []int{4, 16} {
		cells := Fig11(chips)
		var soMax, zoMax float64
		for _, c := range cells {
			if !c.Fits {
				continue
			}
			if c.System == "SuperOffload" && c.TFLOPS > soMax {
				soMax = c.TFLOPS
			}
			if c.System == "ZeRO-Offload" && c.TFLOPS > zoMax {
				zoMax = c.TFLOPS
			}
		}
		if soMax == 0 {
			t.Fatalf("SuperOffload fits nothing on %d chips", chips)
		}
		if zoMax > 0 && soMax < 1.5*zoMax {
			t.Errorf("%d chips: SuperOffload best %.0f vs ZeRO-Offload best %.0f — want ≥1.5x", chips, soMax, zoMax)
		}
	}
	// 16-chip sweep must include a fitting 200B SuperOffload point
	// ("efficiently training 200B models on 16 GPUs", §5.2).
	found := false
	for _, c := range Fig11(16) {
		if c.Model == "200B" && c.System == "SuperOffload" && c.Fits && c.TFLOPS > 100 {
			found = true
		}
	}
	if !found {
		t.Error("SuperOffload should train 200B on 16 chips with high throughput")
	}
}

func TestFig13MatchesPaperHeadline(t *testing.T) {
	rows := Fig13()
	get := func(chips int, system string) string {
		for _, r := range rows {
			if r.Chips == chips && r.System == system {
				return r.MaxModel
			}
		}
		return ""
	}
	if got := get(1, "SuperOffload"); got != "25B" {
		t.Errorf("SuperOffload single = %s, paper 25B", got)
	}
	if got := get(1, "PyTorch DDP"); got != "3.5B" {
		t.Errorf("DDP single = %s, paper 3.5B", got)
	}
	if got := get(1, "ZeRO-Offload"); got != "15B" {
		t.Errorf("ZeRO-Offload single = %s, paper 15B", got)
	}
	if got := get(4, "SuperOffload"); got != "50B" {
		t.Errorf("SuperOffload 4-chip = %s, paper 50B", got)
	}
	if got := get(16, "SuperOffload"); got != "200B" {
		t.Errorf("SuperOffload 16-chip = %s, paper 200B", got)
	}
}

func TestTable2Ladder(t *testing.T) {
	rows := Table2()
	if len(rows) != 5 {
		t.Fatalf("ladder has %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TFLOPS < rows[i-1].TFLOPS*0.98 {
			t.Errorf("ladder step %d regressed: %.1f -> %.1f", i, rows[i-1].TFLOPS, rows[i].TFLOPS)
		}
	}
	speedup := rows[4].TFLOPS / rows[0].TFLOPS
	if speedup < 1.8 || speedup > 2.6 {
		t.Errorf("full-stack speedup %.2fx, paper 2.06x", speedup)
	}
	// Full stack lands near the paper's 238.92 TFLOPS.
	if rows[4].TFLOPS < 210 || rows[4].TFLOPS > 270 {
		t.Errorf("full stack = %.1f TFLOPS, paper 238.92", rows[4].TFLOPS)
	}
}

func TestTable3RatiosModelAndMeasured(t *testing.T) {
	rows := Table3(1 << 20) // 1M params keeps the test fast
	if len(rows) != len(Table3Sizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Paper Table 3 at 1B: PT-CPU 0.289s, CPU-Adam 0.098s, GraceAdam
	// 0.082s.
	if r.ModelGrace < 0.05 || r.ModelGrace > 0.12 {
		t.Errorf("modeled GraceAdam 1B = %.3f, paper 0.082", r.ModelGrace)
	}
	if ratio := r.ModelPTCPU / r.ModelGrace; ratio < 2.8 || ratio > 4.2 {
		t.Errorf("modeled PT/Grace = %.2f, paper ~3.5", ratio)
	}
	// Real measured kernels must reproduce the ordering.
	if !(r.MeasPTCPU > r.MeasCPUAdam && r.MeasCPUAdam >= r.MeasGrace*0.9) {
		t.Errorf("measured ordering violated: pt=%.4f cpu=%.4f grace=%.4f",
			r.MeasPTCPU, r.MeasCPUAdam, r.MeasGrace)
	}
	if r.MeasPTCPU < 1.5*r.MeasGrace {
		t.Errorf("measured PT/Grace = %.2f, want ≥1.5x", r.MeasPTCPU/r.MeasGrace)
	}
}

func TestFig12Panels(t *testing.T) {
	panels := Fig12()
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	if panels[1].Model != "13B" || panels[1].Chips != 8 {
		t.Errorf("panel b wrong: %+v", panels[1])
	}
}

func TestFig14RealLearnsAndExact(t *testing.T) {
	r := Fig14Real(120)
	if !r.ExactSTE {
		t.Error("STV diverged from STE — exactness broken")
	}
	if r.LastLoss > r.FirstLoss*0.9 {
		t.Errorf("loss did not drop: %.3f -> %.3f", r.FirstLoss, r.LastLoss)
	}
}

func TestFig14EnvelopeShape(t *testing.T) {
	env := Fig14Envelope(80000)
	// §5.7: frequent rollbacks in iterations 1-1000, then rare — 93
	// events (~0.12%) between steps 1000 and 80000.
	if env.WarmupRolls < 100 {
		t.Errorf("warm-up rollbacks = %d, should be frequent", env.WarmupRolls)
	}
	if env.LateRate < 0.0003 || env.LateRate > 0.004 {
		t.Errorf("late rollback rate = %.4f%%, paper 0.12%%", 100*env.LateRate)
	}
	// Negligible overhead: well under 1000s total at 2s/rollback
	// (paper: <200s for the late phase).
	lateCost := 2.0 * float64(env.LateRolls)
	if lateCost > 1000 {
		t.Errorf("late rollback cost %.0fs, paper <200s", lateCost)
	}
	// Loss curve decays.
	if len(env.LossCurve) < 10 || env.LossCurve[0] <= env.LossCurve[len(env.LossCurve)-1] {
		t.Error("loss envelope must decay")
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full regeneration is slow")
	}
	for _, name := range Names() {
		if name == "fig14" {
			continue // exercised by the dedicated tests above
		}
		out, err := Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 40 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
	}
	if _, err := Run("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRendersContainKeyMarkers(t *testing.T) {
	if !strings.Contains(RenderTable1(), "GH200") {
		t.Error("table1 render")
	}
	if !strings.Contains(RenderFig6(), "Bsz4") {
		t.Error("fig6 render")
	}
	g := Fig3()
	if !strings.Contains(g, "gpu") || !strings.Contains(g, "idle") {
		t.Errorf("fig3 render:\n%s", g)
	}
}

func TestExtNVMe(t *testing.T) {
	out := ExtNVMe()
	if !strings.Contains(out, "NVMe-backed 200B") {
		t.Errorf("NVMe tier should unlock 200B on one Superchip:\n%s", out)
	}
	if !strings.Contains(out, "DDR-bound 25B") {
		t.Errorf("DDR bound should remain 25B:\n%s", out)
	}
}
