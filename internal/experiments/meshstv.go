package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"superoffload/internal/data"
	"superoffload/internal/dp"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// sliceRows splits a batch into r row slices — the reference
// decomposition for the mesh's data-parallel axis (data parallelism is
// gradient accumulation across groups).
func sliceRows(b data.Batch, r int) []data.Batch {
	per := b.BatchSize / r
	out := make([]data.Batch, r)
	for g := 0; g < r; g++ {
		lo, hi := g*per*b.Seq, (g+1)*per*b.Seq
		out[g] = data.Batch{Tokens: b.Tokens[lo:hi], Targets: b.Targets[lo:hi], BatchSize: per, Seq: b.Seq}
	}
	return out
}

// ExtMeshSTV exercises the hybrid R×S mesh engine — the composition
// behind the paper's multi-superchip results (Fig. 11a/b, Fig. 12): R
// data-parallel replica groups, each running S-way Ulysses sequence
// parallelism and ZeRO-sharded offloaded optimization internally. For
// each shape it trains a real GPT and checks the exactness contract: the
// loss trajectory (rollbacks included) is bit-identical to a single-rank
// trainer consuming the same R-way row decomposition via gradient
// accumulation (the sequence axis must be invisible, exactly as in
// ext-ulysses-stv), checkpoints are byte-identical to the reference's,
// and the NVMe tier composes without disturbing a bit.
func ExtMeshSTV() string {
	const (
		steps       = 30
		batch       = 4
		seq         = 16
		bucketElems = 4096
	)
	cfg := model.Config{Name: "ext", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	adam := optim.DefaultConfig()
	adam.LR = 3e-3

	// Single-rank reference trajectory per data-parallel degree R: the
	// trainer accumulates each global batch's R row slices in group
	// order — the same fold the mesh's cross-group reduce performs.
	reference := func(r int) ([]float64, stv.Stats, []byte) {
		refModel := nn.NewGPT(cfg, seq, tensor.NewRNG(21))
		ref := stv.NewTrainer(refModel, stv.Config{
			Adam: adam, Impl: optim.GraceAdam, ClipNorm: 3.0,
			BucketElems: bucketElems, Mode: stv.STV,
		})
		corpus := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			l, err := ref.StepAccum(sliceRows(corpus.NextBatch(batch, seq), r))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := ref.Flush(); err != nil {
			panic(err)
		}
		var ckpt bytes.Buffer
		if err := ref.Save(&ckpt); err != nil {
			panic(err)
		}
		return losses, ref.Stats(), ckpt.Bytes()
	}
	refs := map[int]struct {
		losses []float64
		stats  stv.Stats
		ckpt   []byte
	}{}
	for _, r := range []int{2, 4} {
		losses, st, ckpt := reference(r)
		refs[r] = struct {
			losses []float64
			stats  stv.Stats
			ckpt   []byte
		}{losses, st, ckpt}
	}

	run := func(r, s int, newStore func(rank int) (stv.BucketStore, error)) ([]float64, stv.Stats, dp.SPCommStats, []byte) {
		eng, err := dp.NewMesh(nn.NewGPT(cfg, seq, tensor.NewRNG(21)), dp.Config{
			Ranks: r, SeqRanks: s, Adam: adam, Impl: optim.GraceAdam, ClipNorm: 3.0,
			BucketElems: bucketElems, NewStore: newStore,
		})
		if err != nil {
			panic(err)
		}
		// Close surfaces latched NVMe background-IO failures; dropping
		// it would render a success table from a corrupted run.
		defer func() {
			if cerr := eng.Close(); cerr != nil {
				panic(cerr)
			}
		}()
		c := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			l, err := eng.Step(c.NextBatch(batch, seq))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := eng.Flush(); err != nil {
			panic(err)
		}
		var ckpt bytes.Buffer
		if err := eng.Save(&ckpt); err != nil {
			panic(err)
		}
		return losses, eng.Stats(), eng.CommStats(), ckpt.Bytes()
	}

	exactVs := func(r int, losses []float64) string {
		for i, rl := range refs[r].losses {
			if losses[i] != rl {
				return "DIVERGED (bug!)"
			}
		}
		return "bit-identical"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: hybrid R×S mesh (data × Ulysses sequence parallelism) over the STV engine\n")
	fmt.Fprintf(&b, "model: %d heads, batch %d, seq %d, ≤%d-elem buckets; ClipNorm 3.0 forces a commit/rollback mix\n",
		cfg.Heads, batch, seq, bucketElems)
	for _, r := range []int{2, 4} {
		fmt.Fprintf(&b, "single-rank reference (R=%d-way row accumulation) over %d steps: final loss %.4f, %d commits, %d rollbacks\n",
			r, steps, refs[r].losses[steps-1], refs[r].stats.Commits, refs[r].stats.Rollbacks())
	}

	fmt.Fprintf(&b, "\n%-22s %-14s %-10s %16s %14s %10s\n",
		"configuration", "trajectory", "rollbacks", "a2a floats/step", "ring hops/step", "ckpt=ref")
	row := func(name string, r int, losses []float64, st stv.Stats, cs dp.SPCommStats, ckpt []byte) {
		same := "yes"
		if !bytes.Equal(ckpt, refs[r].ckpt) {
			same = "NO (bug!)"
		}
		fmt.Fprintf(&b, "%-22s %-14s %-10d %16d %14d %10s\n",
			name, exactVs(r, losses), st.Rollbacks(),
			cs.A2AFloats/int64(steps), cs.RingHops/int64(steps), same)
	}
	for _, shape := range [][2]int{{2, 2}, {2, 4}, {4, 2}} {
		r, s := shape[0], shape[1]
		losses, st, cs, ckpt := run(r, s, nil)
		row(fmt.Sprintf("R=%d×S=%d, dram", r, s), r, losses, st, cs, ckpt)
	}
	for _, shape := range [][2]int{{2, 2}, {4, 2}} {
		r, s := shape[0], shape[1]
		losses, st, cs, ckpt := run(r, s, func(rank int) (stv.BucketStore, error) {
			return stv.NewNVMeStore(stv.NVMeStoreConfig{ResidentBuckets: 2})
		})
		row(fmt.Sprintf("R=%d×S=%d, nvme win 2", r, s), r, losses, st, cs, ckpt)
	}
	fmt.Fprintf(&b, "\neach group's ring reproduces its row slice's single-rank gradient; the\n")
	fmt.Fprintf(&b, "cross-group reduce-scatter folds the R slices in group order — the same fold\n")
	fmt.Fprintf(&b, "gradient accumulation uses — so every mesh shape lands on its reference\n")
	fmt.Fprintf(&b, "trajectory bit for bit, over either residency tier (fig11a/b hold the analytic\n")
	fmt.Fprintf(&b, "multi-superchip throughput model this run grounds)")
	return b.String()
}
