package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"superoffload/internal/data"
	"superoffload/internal/dp"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// ExtUlyssesSTV is the real-engine counterpart of the analytic
// SuperOffload-Ulysses model behind fig12: instead of predicting MFU for
// sequence sharding on modeled hardware, it trains an actual GPT with the
// sequence-parallel engine — S ranks over sequence shards, two attention
// all-to-alls per layer per pass, a deterministic weight-gradient ring,
// ZeRO-sharded optimizer state behind per-rank bucket stores — and
// reports the §4.7 composition's headline properties: the loss
// trajectory (rollbacks included) is bit-identical to single-rank
// training for S ∈ {2,4}, checkpoints are byte-identical across S, the
// NVMe tier composes without disturbing a bit, and the all-to-all/ring
// traffic scales the way head parallelism prescribes.
func ExtUlyssesSTV() string {
	const (
		steps       = 30
		batch       = 2
		seq         = 16
		bucketElems = 4096
	)
	cfg := model.Config{Name: "ext", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	adam := optim.DefaultConfig()
	adam.LR = 3e-3

	// Single-rank reference trajectory (whole batches, no decomposition).
	refModel := nn.NewGPT(cfg, seq, tensor.NewRNG(21))
	ref := stv.NewTrainer(refModel, stv.Config{
		Adam: adam, Impl: optim.GraceAdam, ClipNorm: 3.0,
		BucketElems: bucketElems, Mode: stv.STV,
	})
	refLosses := make([]float64, 0, steps)
	corpus := data.NewCorpus(cfg.Vocab, 23)
	for i := 0; i < steps; i++ {
		l, err := ref.Step(corpus.NextBatch(batch, seq))
		if err != nil {
			panic(err)
		}
		refLosses = append(refLosses, l)
	}
	if _, err := ref.Flush(); err != nil {
		panic(err)
	}
	var refCkpt bytes.Buffer
	if err := ref.Save(&refCkpt); err != nil {
		panic(err)
	}

	run := func(s int, newStore func(rank int) (stv.BucketStore, error)) ([]float64, stv.Stats, dp.SPCommStats, []byte) {
		eng, err := dp.NewSP(nn.NewGPT(cfg, seq, tensor.NewRNG(21)), dp.Config{
			Ranks: s, Adam: adam, Impl: optim.GraceAdam, ClipNorm: 3.0,
			BucketElems: bucketElems, NewStore: newStore,
		})
		if err != nil {
			panic(err)
		}
		// Close surfaces latched NVMe background-IO failures; dropping
		// it would render a success table from a corrupted run.
		defer func() {
			if cerr := eng.Close(); cerr != nil {
				panic(cerr)
			}
		}()
		c := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			l, err := eng.Step(c.NextBatch(batch, seq))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := eng.Flush(); err != nil {
			panic(err)
		}
		var ckpt bytes.Buffer
		if err := eng.Save(&ckpt); err != nil {
			panic(err)
		}
		return losses, eng.Stats(), eng.CommStats(), ckpt.Bytes()
	}

	exactVs := func(losses []float64) string {
		for i := range refLosses {
			if losses[i] != refLosses[i] {
				return "DIVERGED (bug!)"
			}
		}
		return "bit-identical"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: real Ulysses sequence parallelism over the STV engine\n")
	fmt.Fprintf(&b, "model: %d params, %d heads, seq %d, ≤%d-elem buckets; ClipNorm 3.0 forces a commit/rollback mix\n",
		refModel.NumParams(), cfg.Heads, seq, bucketElems)
	fmt.Fprintf(&b, "single-rank reference over %d steps: final loss %.4f, %d commits, %d rollbacks\n",
		steps, refLosses[len(refLosses)-1], ref.Stats().Commits, ref.Stats().Rollbacks())

	fmt.Fprintf(&b, "\n%-22s %-14s %-10s %16s %14s %10s\n",
		"configuration", "trajectory", "rollbacks", "a2a floats/step", "ring hops/step", "ckpt=S1")
	row := func(name string, losses []float64, st stv.Stats, cs dp.SPCommStats, ckpt []byte) {
		same := "yes"
		if !bytes.Equal(ckpt, refCkpt.Bytes()) {
			same = "NO (bug!)"
		}
		fmt.Fprintf(&b, "%-22s %-14s %-10d %16d %14d %10s\n",
			name, exactVs(losses), st.Rollbacks(),
			cs.A2AFloats/int64(steps), cs.RingHops/int64(steps), same)
	}
	for _, s := range []int{2, 4} {
		losses, st, cs, ckpt := run(s, nil)
		row(fmt.Sprintf("S=%d, dram", s), losses, st, cs, ckpt)
	}
	losses, st, cs, ckpt := run(4, func(rank int) (stv.BucketStore, error) {
		return stv.NewNVMeStore(stv.NVMeStoreConfig{ResidentBuckets: 2})
	})
	row("S=4, nvme window 2", losses, st, cs, ckpt)
	fmt.Fprintf(&b, "\ntwo all-to-alls per layer per pass flip attention between sequence and head\n")
	fmt.Fprintf(&b, "sharding; the weight-gradient ring replays rows in global order, so every\n")
	fmt.Fprintf(&b, "configuration lands on the single-rank trajectory bit for bit (fig12 holds the\n")
	fmt.Fprintf(&b, "analytic internal/ulysses scale model this run grounds)")
	return b.String()
}
