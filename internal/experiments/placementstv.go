package experiments

import (
	"fmt"
	"strings"

	"superoffload/internal/core"
	"superoffload/internal/data"
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/place"
	"superoffload/internal/sched"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// ExtPlacementSTV exercises the heterogeneous placement subsystem on the
// real STV engine: the same GPT trains under four bucket placements —
// homogeneous (no plan), all-CPU, all-GPU, and the adaptive GPU-tail
// split derived from the analytic planner's 5B/GH200 decision
// (core.Plan → place.FromCore) — plus the split with its offloaded body
// spilling through the windowed NVMe store. The report asserts the
// tentpole contract (every placement trains bit-identically: losses,
// rollbacks, checkpoints) and prints the virtual-clock superchip
// executor's telemetry per placement: modeled pipelined vs serialized
// step time and the per-tier census. The §4.3 claim must hold on the
// clocks: the planner-derived split reports a strictly lower pipelined
// step time than all-CPU.
func ExtPlacementSTV() string {
	const (
		steps       = 30
		bucketElems = 4096
	)
	cfg := model.Config{Name: "ext", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}

	run := func(plan *place.Plan, store stv.BucketStore) ([]float64, stv.Stats, stv.PlacementTelemetry) {
		m := nn.NewGPT(cfg, 16, tensor.NewRNG(21))
		a := optim.DefaultConfig()
		a.LR = 3e-3
		tr := stv.NewTrainer(m, stv.Config{
			Adam: a, Impl: optim.GraceAdam, ClipNorm: 4.0,
			BucketElems: bucketElems, Mode: stv.STV, Store: store,
			Placement: plan,
		})
		defer tr.Close()
		corpus := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			l, err := tr.Step(corpus.NextBatch(4, 16))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := tr.Flush(); err != nil {
			panic(err)
		}
		tel, _ := tr.PlacementTelemetry()
		return losses, tr.Stats(), tel
	}

	// Bucket count of the toy partition (every run derives the same one).
	nb := len(stv.PartitionGroups(nn.NewGPT(cfg, 16, tensor.NewRNG(21)).Params(), bucketElems))

	// The adaptive split: the analytic planner's placement for the
	// paper's 5B single-Superchip workload, mapped onto the toy
	// partition — the superplan -emit-placement → supertrain path.
	w := sched.Workload{Cluster: hw.ClusterFor(1), Model: mustByName("5B"), GlobalBatch: 8, Seq: 1024}
	cp, ok := core.New().Describe(w)
	if !ok {
		panic("experiments: 5B does not fit one GH200")
	}
	auto := place.FromCore(cp, nb)

	allCPU := place.Uniform(nb, place.CPUAdam)
	allGPU := place.Uniform(nb, place.GPUResident)
	nvmePlan := auto.WithNVMeBody()
	nvmeStore, err := stv.NewPlacedStore(nvmePlan, stv.NVMeStoreConfig{})
	if err != nil {
		panic(err)
	}

	refLosses, refStats, _ := run(nil, nil)
	type row struct {
		name string
		tel  stv.PlacementTelemetry
	}
	var rows []row
	exact := true
	for _, pc := range []struct {
		name  string
		plan  place.Plan
		store stv.BucketStore
	}{
		{"all-CPU", allCPU, nil},
		{"all-GPU", allGPU, nil},
		{fmt.Sprintf("auto (%s)", auto), auto, nil},
		{fmt.Sprintf("auto+nvme (%s)", nvmePlan), nvmePlan, nvmeStore},
	} {
		plan := pc.plan
		losses, stats, tel := run(&plan, pc.store)
		for i := range refLosses {
			if losses[i] != refLosses[i] {
				exact = false
			}
		}
		if stats != refStats {
			exact = false
		}
		rows = append(rows, row{pc.name, tel})
	}

	exactStr := "bit-identical"
	if !exact {
		exactStr = "DIVERGED (bug!)"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: adaptive GPU/CPU bucket placement on the real STV engine\n")
	fmt.Fprintf(&b, "model: %d params in %d ≤%d-elem buckets; analytic source plan: 5B on GH200 → GPU tail %d/%d\n",
		nn.NewGPT(cfg, 16, tensor.NewRNG(21)).NumParams(), nb, bucketElems, cp.GPUBuckets, cp.NBuckets)
	fmt.Fprintf(&b, "loss trajectories across all placements over %d steps: %s (final loss %.4f, %d commits, %d rollbacks)\n",
		steps, exactStr, refLosses[len(refLosses)-1], refStats.Commits, refStats.Rollbacks())
	fmt.Fprintf(&b, "\nvirtual superchip step time      gpu/cpu/nvme   pipelined    serialized     hidden\n")
	for _, r := range rows {
		n := float64(r.tel.Steps)
		fmt.Fprintf(&b, "  %-28s %4d/%2d/%2d %10.3f ms %10.3f ms %8.0f%%\n",
			r.name,
			r.tel.Tiers[place.GPUResident].Buckets,
			r.tel.Tiers[place.CPUAdam].Buckets,
			r.tel.Tiers[place.NVMeWindow].Buckets,
			1e3*r.tel.PipelinedSeconds/n, 1e3*r.tel.SerializedSeconds/n,
			100*r.tel.HiddenFraction())
	}
	autoPipe, cpuPipe := rows[2].tel.PipelinedSeconds, rows[0].tel.PipelinedSeconds
	verdict := "OK"
	if autoPipe >= cpuPipe {
		verdict = "VIOLATION (bug!)"
	}
	fmt.Fprintf(&b, "\n§4.3 adaptive placement: auto pipelined %.3f ms vs all-CPU %.3f ms per step → %s\n",
		1e3*autoPipe/float64(steps), 1e3*cpuPipe/float64(steps), verdict)
	fmt.Fprintf(&b, "pipelined = backward + unhidden optimizer work; serialized = every phase end to end")
	return b.String()
}

// mustByName resolves an Appendix A label or panics (experiment-internal).
func mustByName(name string) model.Config {
	m, err := model.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}
