package experiments

import (
	"fmt"
	"strings"

	"superoffload/internal/data"
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// ExtMlpSTV is the multi-level multi-path counterpart of ext-nvme-stv:
// the same real STV training run, but with the optimizer state striped
// across N NVMe paths (MLP-Offload's multi-path tier) with an optional
// DRAM cache tier in front. It reports three things: that every store
// variant — single-path, striped 2-path, and 2-path behind a DRAM cache
// — trains bit-identically to the DRAM-resident engine; the per-path
// flash occupancy of the striped run (read-aware steering keeps both
// lanes busy); and the modeled step time showing the 2-path stripe
// strictly beating the single lane in the balanced compute regime. The
// cache row shows the third level working: hits replace flash reads
// entirely.
func ExtMlpSTV() string {
	const (
		steps       = 30
		bucketElems = 4096
		window      = 2
		// The toy model partitions into 29 buckets; the bucket walk is
		// cyclic, so an LRU cache only hits once it covers the whole
		// non-resident span — smaller caches evict every entry right
		// before its next touch.
		cache = 32
	)
	cfg := model.Config{Name: "ext", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	// A 1 GB/s-effective reference core: Adam compute comparable to the
	// per-bucket transfer time, the regime where extra paths pay off.
	compute := func(elems int) float64 { return float64(elems) * 16 / 1e9 }

	run := func(store stv.BucketStore) ([]float64, stv.Stats) {
		m := nn.NewGPT(cfg, 16, tensor.NewRNG(21))
		a := optim.DefaultConfig()
		a.LR = 3e-3
		tr := stv.NewTrainer(m, stv.Config{
			Adam: a, Impl: optim.GraceAdam, ClipNorm: 4.0,
			BucketElems: bucketElems, Mode: stv.STV, Store: store,
		})
		defer tr.Close()
		corpus := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			l, err := tr.Step(corpus.NextBatch(4, 16))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := tr.Flush(); err != nil {
			panic(err)
		}
		return losses, tr.Stats()
	}

	mlpStore := func(paths, cacheBuckets int) *stv.MLPStore {
		s, err := stv.NewMLPStore(stv.MLPStoreConfig{
			Paths:           hw.NodeIOPaths(paths),
			ResidentBuckets: window,
			CacheBuckets:    cacheBuckets,
			ComputeTime:     compute,
		})
		if err != nil {
			panic(err)
		}
		return s
	}

	dramLosses, dramStats := run(nil)

	one := mlpStore(1, 0)
	oneLosses, oneStats := run(one)
	oneTel := one.Telemetry()

	two := mlpStore(2, 0)
	twoLosses, twoStats := run(two)
	twoTel := two.Telemetry()

	cached := mlpStore(2, cache)
	cachedLosses, cachedStats := run(cached)
	cachedTel := cached.Telemetry()

	exact := true
	for i := range dramLosses {
		if dramLosses[i] != oneLosses[i] || dramLosses[i] != twoLosses[i] ||
			dramLosses[i] != cachedLosses[i] {
			exact = false
			break
		}
	}
	exactStr := "bit-identical"
	if !exact {
		exactStr = "DIVERGED (bug!)"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: multi-level multi-path (MLP) optimizer-state store on the real STV engine\n")
	fmt.Fprintf(&b, "model: %d params in ≤%d-elem buckets, resident window %d, stripe over hw.NodeIOPaths\n",
		nn.NewGPT(cfg, 16, tensor.NewRNG(21)).NumParams(), bucketElems, window)
	fmt.Fprintf(&b, "DRAM vs {1-path, 2-path, 2-path+%d-bucket cache} losses over %d steps: %s (final %.4f, %d commits, %d rollbacks)\n",
		cache, steps, exactStr, dramLosses[len(dramLosses)-1], dramStats.Commits, dramStats.Rollbacks())
	if dramStats != oneStats || dramStats != twoStats || dramStats != cachedStats {
		fmt.Fprintf(&b, "WARNING: stats diverged across stores\n")
	}
	for _, e := range [][]stv.PathEvent{oneTel.Events, twoTel.Events, cachedTel.Events} {
		if len(e) > 0 {
			fmt.Fprintf(&b, "WARNING: degradation events on a healthy run: %+v\n", e)
		}
	}

	fmt.Fprintf(&b, "\nstore                     reads   writes   cache hits   pipelined ms/step   serialized ms/step\n")
	row := func(name string, t stv.MLPTelemetry) {
		fmt.Fprintf(&b, "  %-22s %6d %8d %12d %19.3f %20.3f\n",
			name, t.Reads, t.Writes, t.CacheHits,
			1e3*t.PipelinedSeconds()/steps, 1e3*t.SerializedSeconds()/steps)
	}
	row("1 path", oneTel)
	row("2 paths", twoTel)
	row(fmt.Sprintf("2 paths + cache(%d)", cache), cachedTel)

	speedup := oneTel.PipelinedSeconds() / twoTel.PipelinedSeconds()
	verdict := "MULTI-PATH WIN"
	if !(twoTel.PipelinedSeconds() < oneTel.PipelinedSeconds()) {
		verdict = "NO WIN (bug!)"
	}
	fmt.Fprintf(&b, "2-path stripe vs single lane: %.2fx pipelined speedup — %s\n", speedup, verdict)
	fmt.Fprintf(&b, "per-path occupancy (2-path run): ")
	for p := range twoTel.PathReadSeconds {
		if p > 0 {
			fmt.Fprintf(&b, ", ")
		}
		fmt.Fprintf(&b, "path %d r %.1f ms / w %.1f ms", p,
			1e3*twoTel.PathReadSeconds[p], 1e3*twoTel.PathWriteSeconds[p])
	}
	fmt.Fprintf(&b, "\ncache tier cut flash reads %d → %d (%d served from DRAM, zero stall)",
		twoTel.Reads, cachedTel.Reads, cachedTel.CacheHits)
	return b.String()
}
