package experiments

import (
	"fmt"
	"math"

	"superoffload/internal/data"
	"superoffload/internal/metrics"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// Fig. 14 has two reproductions, per the DESIGN.md substitution table:
//
//  1. Fig14Real trains a real (small) GPT with the STV runtime on the
//     synthetic corpus and reports the actual loss curve and rollback
//     counts, plus a bit-exactness check against the synchronous schedule.
//
//  2. Fig14Envelope replays the paper's 175B/80,000-iteration setting
//     through a calibrated gradient-norm process: the global gradient norm
//     decays from its warm-up peak and fluctuates log-normally; iterations
//     whose norm exceeds the clip threshold (or that overflow in fp16)
//     roll back. The paper's observations — frequent rollbacks before
//     iteration ~1000, then ~0.12% — emerge from the decay, not from
//     hard-coding.

// Fig14RealResult summarizes the real STV training run.
type Fig14RealResult struct {
	Losses    []float64
	Stats     stv.Stats
	ExactSTE  bool // STV weights bit-identical to the STE reference run
	FirstLoss float64
	LastLoss  float64
}

// Fig14Real trains a 2-layer GPT for steps iterations under STV and under
// STE on identical data, verifying learning and exactness.
func Fig14Real(steps int) Fig14RealResult {
	if steps <= 0 {
		steps = 150
	}
	run := func(mode stv.Mode) (*stv.Trainer, []float64) {
		cfg := model.Config{Name: "fig14", Layers: 2, Hidden: 32, Heads: 2, Vocab: 64}
		m := nn.NewGPT(cfg, 16, tensor.NewRNG(99))
		a := optim.DefaultConfig()
		a.LR = 3e-3
		// Clip threshold just above this workload's typical gradient
		// norm (~3), so rollbacks happen — and are validated exact —
		// without firing on every step.
		tr := stv.NewTrainer(m, stv.Config{
			Adam: a, Impl: optim.GraceAdam, ClipNorm: 3.5,
			BucketElems: 20000, Mode: mode, Scaler: optim.NewLossScaler(),
		})
		corpus := data.NewCorpus(64, 7)
		var losses []float64
		for i := 0; i < steps; i++ {
			l, err := tr.Step(corpus.NextBatch(2, 8))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := tr.Flush(); err != nil {
			panic(err)
		}
		return tr, losses
	}
	stvTr, losses := run(stv.STV)
	steTr, _ := run(stv.STE)

	exact := true
	a, b := stvTr.MasterWeights(), steTr.MasterWeights()
	for i := range a {
		if a[i] != b[i] {
			exact = false
			break
		}
	}
	res := Fig14RealResult{Losses: losses, Stats: stvTr.Stats(), ExactSTE: exact}
	if len(losses) > 10 {
		res.FirstLoss = mean(losses[:10])
		res.LastLoss = mean(losses[len(losses)-10:])
	}
	return res
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig14EnvelopeResult summarizes the 80k-iteration replay.
type Fig14EnvelopeResult struct {
	Iterations    int
	WarmupRolls   int // rollbacks in iterations 1..1000
	LateRolls     int // rollbacks after iteration 1000
	LateRate      float64
	RollbackCostS float64 // total rollback overhead at 2s per event (§5.7)
	// LossCurve samples the synthetic pre-training loss every
	// SampleEvery iterations.
	LossCurve   []float64
	SampleEvery int
}

// Envelope process constants, calibrated to the §5.7 narrative: the global
// gradient norm starts ~6x above its steady level during warm-up and
// decays with a ~300-iteration time constant; steady-state fluctuations
// are log-normal with σ chosen so the tail probability of exceeding the
// clip threshold is ~1e-3 (93 events / 79,000 iterations = 0.12%).
const (
	envelopeWarmupBoost = 6.0
	envelopeWarmupTau   = 300.0
	envelopeSigma       = 0.23
	envelopeSteadyFrac  = 0.5 // steady norm is half the clip threshold
	rollbackCostSeconds = 2.0 // measured 175B rollback cost (§5.7)
)

// Fig14Envelope replays iters iterations of the 175B pre-train.
func Fig14Envelope(iters int) Fig14EnvelopeResult {
	if iters <= 0 {
		iters = 80000
	}
	rng := tensor.NewRNG(20240925)
	clip := 1.0
	res := Fig14EnvelopeResult{Iterations: iters, SampleEvery: 200}
	for t := 1; t <= iters; t++ {
		meanNorm := clip * envelopeSteadyFrac * (1 + envelopeWarmupBoost*math.Exp(-float64(t)/envelopeWarmupTau))
		z := rng.NormFloat32()
		norm := meanNorm * math.Exp(envelopeSigma*float64(z))
		// fp16 overflow events concentrate in early loss-scale
		// settling; afterwards the scaler keeps headroom.
		overflow := rng.Float64() < 0.02*math.Exp(-float64(t)/200.0)
		if norm > clip || overflow {
			if t <= 1000 {
				res.WarmupRolls++
			} else {
				res.LateRolls++
			}
		}
		if t%res.SampleEvery == 0 {
			res.LossCurve = append(res.LossCurve, syntheticLoss(t))
		}
	}
	if iters > 1000 {
		res.LateRate = float64(res.LateRolls) / float64(iters-1000)
	}
	res.RollbackCostS = rollbackCostSeconds * float64(res.WarmupRolls+res.LateRolls)
	return res
}

// syntheticLoss is the standard power-law pre-training loss envelope for a
// GPT-scale model (L∞ + amplitude·t^-α), used only for plotting shape.
func syntheticLoss(t int) float64 {
	return 1.9 + 9.1*math.Pow(float64(t), -0.35)
}

// RenderFig14 formats both reproductions.
func RenderFig14(real Fig14RealResult, env Fig14EnvelopeResult) string {
	out := "Fig. 14: STV training loss and rollback occurrences\n\n"
	out += fmt.Sprintf("Real STV training (2-layer GPT, %d steps):\n", len(real.Losses))
	out += fmt.Sprintf("  loss %.3f -> %.3f | rollbacks: %d clip, %d skip | bit-exact vs STE: %v\n\n",
		real.FirstLoss, real.LastLoss, real.Stats.ClipRolls, real.Stats.SkipRolls, real.ExactSTE)
	out += fmt.Sprintf("175B envelope replay (%d iterations):\n", env.Iterations)
	out += fmt.Sprintf("  warm-up rollbacks (steps 1-1000): %d\n", env.WarmupRolls)
	out += fmt.Sprintf("  late rollbacks: %d (%.2f%% of post-warm-up steps; paper: 93 = 0.12%%)\n",
		env.LateRolls, 100*env.LateRate)
	out += fmt.Sprintf("  post-warm-up rollback overhead at %.0fs each: %s (paper: <200s over 79k steps)\n",
		rollbackCostSeconds, metrics.Seconds(rollbackCostSeconds*float64(env.LateRolls)))
	if len(env.LossCurve) >= 2 {
		out += fmt.Sprintf("  loss: %.3f @start -> %.3f @end\n",
			env.LossCurve[0], env.LossCurve[len(env.LossCurve)-1])
	}
	return out
}
