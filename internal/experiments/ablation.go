package experiments

import (
	"fmt"
	"time"

	"superoffload/internal/core"
	"superoffload/internal/hw"
	"superoffload/internal/metrics"
	"superoffload/internal/model"
	"superoffload/internal/optim"
	"superoffload/internal/sched"
	"superoffload/internal/tensor"
	"superoffload/internal/ulysses"
)

// ---- Table 2: optimization breakdown ----

// Table2Row is one row of the ablation ladder.
type Table2Row struct {
	GraceAdam bool
	SAC       bool
	STV       bool
	BucketRep bool
	TFLOPS    float64
}

// Table2 enables each optimization cumulatively on the 5B single-chip
// workload (§5.5).
func Table2() []Table2Row {
	m, _ := model.ByName("5B")
	w := sched.Workload{Cluster: hw.ClusterFor(1), Model: m, GlobalBatch: 8, Seq: 1024}
	opts := core.Options{NUMABinding: true}
	ladder := []func(*core.Options){
		func(o *core.Options) {},
		func(o *core.Options) { o.GraceAdam = true },
		func(o *core.Options) { o.SuperchipCasting = true },
		func(o *core.Options) { o.Speculation = true },
		func(o *core.Options) { o.BucketRepartition = true },
	}
	var rows []Table2Row
	for _, enable := range ladder {
		enable(&opts)
		r := core.NewWith(opts).Plan(w)
		rows = append(rows, Table2Row{
			GraceAdam: opts.GraceAdam, SAC: opts.SuperchipCasting,
			STV: opts.Speculation, BucketRep: opts.BucketRepartition,
			TFLOPS: r.TFLOPS,
		})
	}
	return rows
}

// RenderTable2 formats the ladder like the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	t := metrics.NewTable("GraceAdam", "Cast Optim.", "STV", "Buck. Repart.", "Throughput")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		t.AddStrings(mark(r.GraceAdam), mark(r.SAC), mark(r.STV), mark(r.BucketRep),
			fmt.Sprintf("%.2f", r.TFLOPS))
	}
	out := "Table 2: SuperOffload optimization breakdown (5B, single Superchip)\n" + t.String()
	if len(rows) >= 2 {
		out += fmt.Sprintf("total speedup: %.2fx\n", rows[len(rows)-1].TFLOPS/rows[0].TFLOPS)
	}
	return out
}

// ---- Table 3: Adam kernel latency ----

// Table3Row compares the three CPU Adam implementations at one model size.
type Table3Row struct {
	Params int64
	// Modeled latencies at Grace scale (seconds), from the calibrated
	// memory-bandwidth model.
	ModelPTCPU, ModelCPUAdam, ModelGrace float64
	// Measured latencies of this repository's real Go kernels at a
	// laptop-scale shard (MeasuredParams elements), seconds.
	MeasuredParams                    int64
	MeasPTCPU, MeasCPUAdam, MeasGrace float64
}

// Table3Sizes are the paper's model sizes (1-8B parameters).
var Table3Sizes = []int64{1e9, 2e9, 4e9, 8e9}

// Table3 produces both the Grace-scale modeled latencies and real
// measurements of the three Go kernels at measureParams elements
// (measureParams ≤ 0 picks 4M).
func Table3(measureParams int64) []Table3Row {
	if measureParams <= 0 {
		measureParams = 4 << 20
	}
	chip := hw.GH200()
	var rows []Table3Row
	for _, p := range Table3Sizes {
		r := Table3Row{
			Params:         p,
			ModelPTCPU:     hw.AdamStepTime(chip, hw.AdamNaive, p),
			ModelCPUAdam:   hw.AdamStepTime(chip, hw.AdamCPU, p),
			ModelGrace:     hw.AdamStepTime(chip, hw.AdamGrace, p),
			MeasuredParams: measureParams,
		}
		r.MeasPTCPU = measureAdam(optim.NaiveAdam, int(measureParams))
		r.MeasCPUAdam = measureAdam(optim.CPUAdam, int(measureParams))
		r.MeasGrace = measureAdam(optim.GraceAdam, int(measureParams))
		rows = append(rows, r)
	}
	return rows
}

// measureAdam times reps of one kernel over n parameters and returns the
// best per-step seconds.
func measureAdam(impl optim.Impl, n int) float64 {
	rng := tensor.NewRNG(1234)
	p := make([]float32, n)
	g := make([]float32, n)
	for i := range p {
		p[i] = rng.NormFloat32()
		g[i] = rng.NormFloat32() * 0.1
	}
	s := optim.NewState(n)
	cfg := optim.DefaultConfig()
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		impl(cfg, p, g, s, rep+1)
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

// RenderTable3 formats modeled and measured latencies side by side.
func RenderTable3(rows []Table3Row) string {
	t := metrics.NewTable("#Params", "PT-CPU (s)", "CPU-Adam (s)", "GraceAdam (s)", "PT/Grace", "CPU/Grace")
	for _, r := range rows {
		t.AddStrings(fmt.Sprintf("%d billion", r.Params/1e9),
			fmt.Sprintf("%.3f", r.ModelPTCPU), fmt.Sprintf("%.3f", r.ModelCPUAdam),
			fmt.Sprintf("%.3f", r.ModelGrace),
			fmt.Sprintf("%.2fx", r.ModelPTCPU/r.ModelGrace),
			fmt.Sprintf("%.2fx", r.ModelCPUAdam/r.ModelGrace))
	}
	out := "Table 3: Adam latency, Grace-scale model\n" + t.String()
	if len(rows) > 0 {
		r := rows[0]
		m := metrics.NewTable("#Params (measured)", "PT-CPU", "CPU-Adam", "GraceAdam", "PT/Grace", "CPU/Grace")
		m.AddStrings(fmt.Sprintf("%dM (this host)", r.MeasuredParams>>20),
			metrics.Seconds(r.MeasPTCPU), metrics.Seconds(r.MeasCPUAdam), metrics.Seconds(r.MeasGrace),
			fmt.Sprintf("%.2fx", r.MeasPTCPU/r.MeasGrace),
			fmt.Sprintf("%.2fx", r.MeasCPUAdam/r.MeasGrace))
		out += "\nReal Go kernels measured on this machine:\n" + m.String()
	}
	return out
}

// ---- Fig. 12: long-sequence training ----

// Fig12Panel is one subplot of Fig. 12.
type Fig12Panel struct {
	Model  string
	Chips  int
	Points []ulysses.Point
}

// Fig12 produces all three panels: 13B×4, 13B×8, 30B×8.
func Fig12() []Fig12Panel {
	m13, _ := model.ByName("13B")
	m30, _ := model.ByName("30B")
	return []Fig12Panel{
		{Model: "13B", Chips: 4, Points: ulysses.Sweep(hw.ClusterFor(4), m13)},
		{Model: "13B", Chips: 8, Points: ulysses.Sweep(hw.ClusterFor(8), m13)},
		{Model: "30B", Chips: 8, Points: ulysses.Sweep(hw.ClusterFor(8), m30)},
	}
}

// RenderFig12 formats the panels.
func RenderFig12(panels []Fig12Panel) string {
	out := "Fig. 12: sequence length scaling and MFU (Ulysses vs SuperOffload-Ulysses)\n"
	for _, p := range panels {
		t := metrics.NewTable("Seq", ulysses.Vanilla.String()+" MFU", ulysses.SuperOffloadUlysses.String()+" MFU")
		bySeq := map[int][2]string{}
		for _, pt := range p.Points {
			cell := "OOM"
			if pt.Fits {
				cell = fmt.Sprintf("%.2f", pt.MFU)
			}
			pair := bySeq[pt.Seq]
			if pt.System == ulysses.Vanilla {
				pair[0] = cell
			} else {
				pair[1] = cell
			}
			bySeq[pt.Seq] = pair
		}
		for _, seq := range ulysses.SeqLadder {
			pair := bySeq[seq]
			t.AddStrings(fmt.Sprintf("%dK", seq>>10), pair[0], pair[1])
		}
		out += fmt.Sprintf("(%s, %d-Superchip)\n%s", p.Model, p.Chips, t.String())
	}
	return out
}
