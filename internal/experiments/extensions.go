package experiments

import (
	"fmt"

	"superoffload/internal/baselines"
	"superoffload/internal/hw"
	"superoffload/internal/metrics"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

// ExtNVMe is the repository's extension experiment: ZeRO-Infinity with its
// NVMe tier enabled (the full original design, which the paper's
// evaluation disables for fair comparison). It reports the capacity the
// flash tier unlocks on a single Superchip and the throughput price paid
// where the DDR-bound variant also fits.
func ExtNVMe() string {
	cl := hw.ClusterFor(1)
	nvme := baselines.ZeROInfinityNVMe{}
	ddr := baselines.ZeROInfinity{}

	maxNVMe := sched.MaxTrainable(nvme, cl, 8, 1024)
	maxDDR := sched.MaxTrainable(ddr, cl, 8, 1024)

	t := metrics.NewTable("Model", "ZeRO-Infinity (DDR) TFLOPS", "ZeRO-Infinity+NVMe TFLOPS")
	for _, name := range []string{"5B", "13B", "25B", "50B", "150B", "200B"} {
		m, err := model.ByName(name)
		if err != nil {
			continue
		}
		w := sched.Workload{Cluster: cl, Model: m, GlobalBatch: 8, Seq: 1024}
		cell := func(s sched.System) string {
			r := s.Plan(w)
			if !r.Fits {
				return "OOM"
			}
			return fmt.Sprintf("%.1f", r.TFLOPS)
		}
		t.AddStrings(name, cell(ddr), cell(nvme))
	}
	return fmt.Sprintf("Extension: ZeRO-Infinity NVMe tier on a single Superchip\n"+
		"max trainable: DDR-bound %s, NVMe-backed %s\n%s",
		maxDDR.Name, maxNVMe.Name, t.String())
}
