package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment snapshots")

// hostMeasuredMarker starts table3's section of kernel timings measured on
// the running host — real wall-clock numbers that cannot be byte-stable.
// Everything before the marker (the paper's modeled table) is snapshotted.
const hostMeasuredMarker = "\nReal Go kernels measured on this machine:"

// archSensitive maps experiment ids whose output comes from real training
// to the GOARCH their snapshot was generated on. Go fuses multiply-add
// into FMA on arm64 but not amd64, and a real loss trajectory amplifies
// that rounding difference, so byte-exact comparison only holds on the
// generating architecture; elsewhere the experiment still runs and must
// render non-empty.
var archSensitive = map[string]string{
	"fig14":             "amd64",
	"ext-act-stv":       "amd64",
	"ext-nvme-stv":      "amd64",
	"ext-mlp-stv":       "amd64",
	"ext-ulysses-stv":   "amd64",
	"ext-mesh-stv":      "amd64",
	"ext-pipe-stv":      "amd64",
	"ext-placement-stv": "amd64",
}

// canonical trims host-measured suffixes so snapshots only cover
// deterministic rendering.
func canonical(out string) string {
	if i := strings.Index(out, hostMeasuredMarker); i >= 0 {
		return out[:i]
	}
	return out
}

// TestGoldenExperiments snapshots the rendered output of every registered
// experiment id and asserts byte-stable rendering, so planner or renderer
// refactors cannot silently corrupt the paper's tables and figures.
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGoldenExperiments(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			out, err := Run(name)
			if err != nil {
				t.Fatal(err)
			}
			if out == "" {
				t.Fatal("experiment rendered empty output")
			}
			out = canonical(out)
			if arch, ok := archSensitive[name]; ok && runtime.GOARCH != arch {
				t.Skipf("snapshot generated on %s; real-training floats may differ on %s (FMA fusion)", arch, runtime.GOARCH)
			}
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update): %v", err)
			}
			if string(want) != out {
				t.Errorf("%s rendering drifted from golden snapshot.\nIf the change is intentional, regenerate with -update.\ngot %d bytes, want %d bytes", name, len(out), len(want))
			}
		})
	}
}

// TestGoldenCoversRegistry pins the registry inventory: adding or removing
// an experiment id must be a conscious act that updates the snapshots.
func TestGoldenCoversRegistry(t *testing.T) {
	if *update {
		t.Skip("updating")
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("missing testdata (run with -update): %v", err)
	}
	golden := map[string]bool{}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".golden" {
			golden[e.Name()[:len(e.Name())-len(".golden")]] = true
		}
	}
	names := Names()
	if len(golden) != len(names) {
		t.Errorf("%d golden snapshots for %d experiments", len(golden), len(names))
	}
	for _, n := range names {
		if !golden[n] {
			t.Errorf("experiment %q has no golden snapshot", n)
		}
	}
}
