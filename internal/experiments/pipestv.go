package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"superoffload/internal/data"
	"superoffload/internal/dp"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// ExtPipeSTV exercises the full 3-D R×S×P engine: R data-parallel
// replica groups × S-way Ulysses sequence parallelism per cell × P
// pipeline stages per column under the 1F1B schedule, with ZeRO-sharded
// offloaded optimization spanning all R·S·P ranks. For each shape it
// trains a real GPT over M micro-batches per step (so the stages
// genuinely interleave) and checks the exactness contract: the loss
// trajectory (rollbacks included) is bit-identical to a single-rank
// trainer consuming the same R-way row decomposition via gradient
// accumulation — the sequence AND pipeline axes must be invisible —
// checkpoints are byte-identical to the reference's, and the NVMe tier
// composes without disturbing a bit.
func ExtPipeSTV() string {
	const (
		steps       = 25
		accum       = 2 // micro-batches per step: M ≥ 2 makes 1F1B overlap real
		batch       = 4
		seq         = 16
		bucketElems = 4096
	)
	cfg := model.Config{Name: "ext", Layers: 4, Hidden: 64, Heads: 4, Vocab: 128}
	adam := optim.DefaultConfig()
	adam.LR = 3e-3

	// Single-rank reference trajectory per data-parallel degree R: the
	// trainer accumulates each step's accum×R row slices in
	// (micro-batch, group) order — the same fold the 3-D engine's
	// cross-cell reduce performs.
	reference := func(r int) ([]float64, stv.Stats, []byte) {
		refModel := nn.NewGPT(cfg, seq, tensor.NewRNG(21))
		ref := stv.NewTrainer(refModel, stv.Config{
			Adam: adam, Impl: optim.GraceAdam, ClipNorm: 3.0,
			BucketElems: bucketElems, Mode: stv.STV,
		})
		corpus := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			var window []data.Batch
			for m := 0; m < accum; m++ {
				window = append(window, sliceRows(corpus.NextBatch(batch, seq), r)...)
			}
			l, err := ref.StepAccum(window)
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := ref.Flush(); err != nil {
			panic(err)
		}
		var ckpt bytes.Buffer
		if err := ref.Save(&ckpt); err != nil {
			panic(err)
		}
		return losses, ref.Stats(), ckpt.Bytes()
	}
	type refRun struct {
		losses []float64
		stats  stv.Stats
		ckpt   []byte
	}
	refs := map[int]refRun{}
	for _, r := range []int{1, 2} {
		losses, st, ckpt := reference(r)
		refs[r] = refRun{losses, st, ckpt}
	}

	run := func(r, s, p int, newStore func(rank int) (stv.BucketStore, error)) ([]float64, stv.Stats, dp.SPCommStats, []byte) {
		eng, err := dp.NewPipe(nn.NewGPT(cfg, seq, tensor.NewRNG(21)), dp.Config{
			Ranks: r, SeqRanks: s, PipeRanks: p, Adam: adam, Impl: optim.GraceAdam,
			ClipNorm: 3.0, BucketElems: bucketElems, NewStore: newStore,
		})
		if err != nil {
			panic(err)
		}
		// Close surfaces latched NVMe background-IO failures; dropping
		// it would render a success table from a corrupted run.
		defer func() {
			if cerr := eng.Close(); cerr != nil {
				panic(cerr)
			}
		}()
		c := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			window := make([]data.Batch, accum)
			for m := range window {
				window[m] = c.NextBatch(batch, seq)
			}
			l, err := eng.StepAccum(window)
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := eng.Flush(); err != nil {
			panic(err)
		}
		var ckpt bytes.Buffer
		if err := eng.Save(&ckpt); err != nil {
			panic(err)
		}
		return losses, eng.Stats(), eng.CommStats(), ckpt.Bytes()
	}

	exactVs := func(r int, losses []float64) string {
		for i, rl := range refs[r].losses {
			if losses[i] != rl {
				return "DIVERGED (bug!)"
			}
		}
		return "bit-identical"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: 3-D R×S×P engine (data × sequence × 1F1B pipeline parallelism) over the STV engine\n")
	fmt.Fprintf(&b, "model: %d layers, %d heads, batch %d × %d micros, seq %d, ≤%d-elem buckets; ClipNorm 3.0 forces a commit/rollback mix\n",
		cfg.Layers, cfg.Heads, batch, accum, seq, bucketElems)
	for _, r := range []int{1, 2} {
		fmt.Fprintf(&b, "single-rank reference (R=%d-way row accumulation) over %d steps: final loss %.4f, %d commits, %d rollbacks\n",
			r, steps, refs[r].losses[steps-1], refs[r].stats.Commits, refs[r].stats.Rollbacks())
	}

	fmt.Fprintf(&b, "\n%-24s %-14s %-10s %18s %16s %10s\n",
		"configuration", "trajectory", "rollbacks", "stage sends/step", "a2a floats/step", "ckpt=ref")
	row := func(name string, r int, losses []float64, st stv.Stats, cs dp.SPCommStats, ckpt []byte) {
		same := "yes"
		if !bytes.Equal(ckpt, refs[r].ckpt) {
			same = "NO (bug!)"
		}
		fmt.Fprintf(&b, "%-24s %-14s %-10d %18d %16d %10s\n",
			name, exactVs(r, losses), st.Rollbacks(),
			cs.StageSends/int64(steps), cs.A2AFloats/int64(steps), same)
	}
	for _, shape := range [][3]int{{1, 1, 2}, {1, 1, 4}, {2, 1, 2}, {2, 2, 2}} {
		r, s, p := shape[0], shape[1], shape[2]
		losses, st, cs, ckpt := run(r, s, p, nil)
		row(fmt.Sprintf("R=%d×S=%d×P=%d, dram", r, s, p), r, losses, st, cs, ckpt)
	}
	for _, shape := range [][3]int{{1, 1, 4}, {2, 2, 2}} {
		r, s, p := shape[0], shape[1], shape[2]
		losses, st, cs, ckpt := run(r, s, p, func(rank int) (stv.BucketStore, error) {
			return stv.NewNVMeStore(stv.NVMeStoreConfig{ResidentBuckets: 2})
		})
		row(fmt.Sprintf("R=%d×S=%d×P=%d, nvme win 2", r, s, p), r, losses, st, cs, ckpt)
	}
	fmt.Fprintf(&b, "\nstage spans partition the flat parameter space, so every gradient element\n")
	fmt.Fprintf(&b, "still folds in (micro-batch, group) order and the 1F1B interleaving reorders\n")
	fmt.Fprintf(&b, "only compute, never arithmetic — every (R,S,P) shape lands on its reference\n")
	fmt.Fprintf(&b, "trajectory bit for bit over either residency tier, and checkpoints move\n")
	fmt.Fprintf(&b, "freely across shapes (DESIGN.md, \"1F1B exactness\")")
	return b.String()
}
