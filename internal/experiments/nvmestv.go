package experiments

import (
	"fmt"
	"strings"

	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// ExtNVMeSTV is the real-engine counterpart of the ext-nvme extension:
// instead of modeling ZeRO-Infinity's flash tier analytically, it trains
// an actual GPT with the STV engine's optimizer state behind the
// file-backed NVMe store (2-bucket resident window, async double-buffered
// prefetch, write-behind flush) and reports three things: that the loss
// trajectory is bit-identical to the DRAM-resident run, the per-step
// flash traffic, and the modeled step time of the overlapped pipeline
// against a serialized fetch+step+flush schedule. Two compute models
// bracket the overlap: the GH200 Grace kernel (so fast the NVMe array is
// the bottleneck) and a 1 GB/s reference core (balanced, where
// prefetching shines).
func ExtNVMeSTV() string {
	const (
		steps       = 30
		bucketElems = 4096
		window      = 2
	)
	cfg := model.Config{Name: "ext", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}

	run := func(store stv.BucketStore) ([]float64, stv.Stats) {
		m := nn.NewGPT(cfg, 16, tensor.NewRNG(21))
		a := optim.DefaultConfig()
		a.LR = 3e-3
		tr := stv.NewTrainer(m, stv.Config{
			Adam: a, Impl: optim.GraceAdam, ClipNorm: 4.0,
			BucketElems: bucketElems, Mode: stv.STV, Store: store,
		})
		defer tr.Close()
		corpus := data.NewCorpus(cfg.Vocab, 23)
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			l, err := tr.Step(corpus.NextBatch(4, 16))
			if err != nil {
				panic(err)
			}
			losses = append(losses, l)
		}
		if _, err := tr.Flush(); err != nil {
			panic(err)
		}
		return losses, tr.Stats()
	}

	nvmeStore := func(compute func(int) float64) *stv.NVMeStore {
		s, err := stv.NewNVMeStore(stv.NVMeStoreConfig{
			ResidentBuckets: window,
			ComputeTime:     compute,
		})
		if err != nil {
			panic(err)
		}
		return s
	}

	dramLosses, dramStats := run(nil)

	grace := nvmeStore(nil) // default: the GH200 Grace Adam model
	graceLosses, nvmeStats := run(grace)
	graceTel := grace.Telemetry()

	// A 1 GB/s-effective reference core: Adam compute comparable to the
	// per-bucket transfer time, the regime prefetching is built for.
	ref := nvmeStore(func(elems int) float64 { return float64(elems) * 16 / 1e9 })
	refLosses, _ := run(ref)
	refTel := ref.Telemetry()

	exact := len(dramLosses) == len(graceLosses)
	for i := range dramLosses {
		if dramLosses[i] != graceLosses[i] || dramLosses[i] != refLosses[i] {
			exact = false
			break
		}
	}
	exactStr := "bit-identical"
	if !exact {
		exactStr = "DIVERGED (bug!)"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: NVMe-tier optimizer-state store on the real STV engine\n")
	fmt.Fprintf(&b, "model: %d params in ≤%d-elem buckets, resident window %d (double-buffered)\n",
		nn.NewGPT(cfg, 16, tensor.NewRNG(21)).NumParams(), bucketElems, window)
	fmt.Fprintf(&b, "DRAM vs NVMe loss trajectory over %d steps: %s (final loss %.4f, %d commits, %d rollbacks)\n",
		steps, exactStr, dramLosses[len(dramLosses)-1], dramStats.Commits, dramStats.Rollbacks())
	if dramStats != nvmeStats {
		fmt.Fprintf(&b, "WARNING: stats diverged across stores: %+v vs %+v\n", dramStats, nvmeStats)
	}
	fmt.Fprintf(&b, "flash traffic: %d reads (%.1f MB), %d writes (%.1f MB)\n",
		graceTel.Reads, float64(graceTel.BytesRead)/1e6,
		graceTel.Writes, float64(graceTel.BytesWritten)/1e6)
	row := func(name string, t stv.StoreTelemetry) {
		pipe, serial := t.PipelinedSeconds(), t.SerializedSeconds()
		fmt.Fprintf(&b, "  %-22s %8.3f ms %12.3f ms %9.0f%%\n",
			name, 1e3*pipe/steps, 1e3*serial/steps, 100*(1-pipe/serial))
	}
	fmt.Fprintf(&b, "modeled step time          pipelined    serialized     hidden\n")
	row("Grace CPU (device-bound)", graceTel)
	row("1 GB/s reference core", refTel)
	fmt.Fprintf(&b, "pipelined = compute + stalls; serialized = fetch + step + flush with no overlap")
	return b.String()
}
