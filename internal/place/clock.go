package place

import (
	"math"

	"superoffload/internal/hw"
)

// Virtual-clock superchip model. One optimizer step is scheduled over
// five engines in the style of stv.NVMeStore's throttled clocks: the GPU
// stream (backward chunks, gradient casts, and GPU-resident Adam steps),
// the D2H and H2D copy engines of the C2C link, the CPU optimizer, and
// the NVMe array. Buckets enter in gradient-production order (descending
// bucket index — backward walks the partition back to front), each tier
// charges its phases on the engines it occupies, and the step's pipelined
// time is the completion of the schedule while the serialized time sums
// every phase with no overlap — the same pipelined-vs-serialized contrast
// the NVMe store's telemetry reports for residency.

// Shape is the per-step compute feeding the virtual clocks: how much
// backward work the GPU performs before the optimizer phases drain.
type Shape struct {
	// Tokens is batch rows × positions processed by this replica's
	// backward this step (summed over accumulation micro-batches).
	Tokens int
	// Hidden and Seq feed the GEMM-efficiency model.
	Hidden int
	Seq    int
	// Params is the replica's parameter count (backward covers the whole
	// model even when this holder owns only a shard of the optimizer).
	Params int64
	// Act describes the activation-offload tier, when one is configured.
	// The zero value (Act.Layers == 0) models fully resident activations
	// and leaves the step schedule exactly as before.
	Act ActShape
	// Pipe describes the pipeline-parallel axis, when one is configured.
	// The zero value (Pipe.Stages <= 1) models an unpipelined replica and
	// leaves the step schedule exactly as before.
	Pipe PipeShape
}

// PipeShape describes the pipeline axis of an R×S×P engine for the
// virtual clock: the transformer depth splits over Stages ranks, and
// each step's Micros micro-batches fill the 1F1B schedule. The model
// charges each stage 1/Stages of the replica's forward+backward per
// micro-batch; a stage completes its compute in (Micros + Stages - 1)
// micro slots — Micros of steady-state work plus the Stages-1 slot
// warmup/cooldown bubble.
type PipeShape struct {
	// Stages is the pipeline depth P (values <= 1 disable the model).
	Stages int
	// Micros is the micro-batches per optimizer step M (0 counts as 1).
	Micros int
}

// ActShape describes an activation store (internal/act) hanging off the
// step: per-layer forward activations stream out on the copy/flash
// engine behind a resident window and prefetch back ahead of backward
// with depth-2 double buffering.
type ActShape struct {
	// Layers is the transformer depth (0 disables activation modeling).
	Layers int
	// Resident is the store's resident window W: the trailing W layers
	// never spill. Values below the store's floor of 2 model W = 2.
	Resident int
	// Heads is the attention head count feeding hw.ActLayerBytes.
	Heads int
	// NVMe selects the flash tier; false models the DRAM cache tier over
	// the C2C link.
	NVMe bool
}

// BucketWork is one bucket the holder steps: its global index (production
// order and ready time follow from it), size, and tier.
type BucketWork struct {
	// Index is the global bucket index within the partition.
	Index int
	// Elems is the bucket's parameter count.
	Elems int
	// Tier is where the bucket's update runs.
	Tier Tier
}

// Work builds the full-partition work list for the plan over the given
// per-bucket element counts (elems[b] is bucket b's size).
func (p Plan) Work(elems []int) []BucketWork {
	out := make([]BucketWork, len(elems))
	for i, n := range elems {
		out[i] = BucketWork{Index: i, Elems: n, Tier: p.Tier(i)}
	}
	return out
}

// TierSeconds is one tier's share of a step's modeled phase times.
type TierSeconds struct {
	// Buckets counts the work items on this tier.
	Buckets int
	// Cast is standalone conversion time. Under the fused-transfer model
	// it stays zero: the GPU-side gradient cast is charged to the D2H hop
	// and the CPU-side weight re-cast to the H2D hop (each hop costs the
	// slower of its cast and copy rates). The field remains for schedules
	// that model an unfused conversion pass.
	Cast float64
	// D2H is the gradient hop to the CPU over the C2C link, with the
	// fp16→fp32 cast fused into the copy.
	D2H float64
	// Adam is optimizer compute (CPU kernel for cpu/nvme tiers, the
	// post-backward GPU kernel for the resident tail).
	Adam float64
	// H2D is the fp16 weight return over the C2C link, with the fp32→fp16
	// re-cast fused into the copy.
	H2D float64
	// NVMe is flash traffic (state fetch + write-behind flush).
	NVMe float64
}

// Total sums the tier's phase seconds.
func (t TierSeconds) Total() float64 { return t.Cast + t.D2H + t.Adam + t.H2D + t.NVMe }

// Breakdown is the virtual-clock result for one optimizer step.
type Breakdown struct {
	// Backward is the modeled GPU backward producing the gradients.
	Backward float64
	// Forward is the modeled GPU forward (half of Backward). Zero unless
	// the shape carries an activation tier or a pipeline axis: otherwise
	// forward never interacts with the optimizer schedule and stays out
	// of both totals.
	Forward float64
	// PipeStage is one stage's modeled compute time under the 1F1B
	// schedule: (Micros + Stages - 1) micro slots of the per-stage,
	// per-micro forward+backward share. Zero unless the shape carries a
	// pipeline axis. With Micros >= 2 it beats the serialized
	// forward+backward strictly — the pipelining win the engine exists
	// for — while Micros == 1 degenerates to sequential stages.
	PipeStage float64
	// PipeBubble is the warmup/cooldown share of PipeStage: the
	// (Stages - 1) micro slots each stage idles while the pipeline fills
	// and drains.
	PipeBubble float64
	// ActWrite and ActRead are the activation tier's spill and prefetch
	// transfer times; ActStall is the portion of the reads the depth-2
	// prefetch could not hide ahead of the backward layer that needed
	// them (the activation tier's only critical-path contribution).
	ActWrite float64
	ActRead  float64
	ActStall float64
	// NVMePathSeconds is the per-path modeled flash occupancy when the
	// spec carries hw.IOPaths (MLP-Offload's multi-path layer): fetches
	// and write-behind flushes dispatched to the least-loaded path. Nil
	// under the legacy single-lane model.
	NVMePathSeconds []float64
	// Pipelined is the schedule's completion time with every engine
	// overlapping: backward + whatever optimizer work the clocks could
	// not hide.
	Pipelined float64
	// Serialized is the no-overlap reference: backward plus every phase
	// of every bucket end to end.
	Serialized float64
	// Tiers breaks the phase seconds down per tier, indexed by Tier.
	Tiers [NumTiers]TierSeconds
}

// StepTimes schedules one optimizer step on the virtual clocks. work
// lists the holder's buckets in ascending global index (a rank models
// only its owned ZeRO shard; nGlobal is the full partition size, which
// spaces gradient-ready times across the whole backward). The returned
// breakdown is deterministic: clocks advance in program order, never by
// wall time.
func StepTimes(spec hw.SuperchipSpec, work []BucketWork, nGlobal int, shape Shape) Breakdown {
	spec = spec.OrDefault()
	var bd Breakdown
	if nGlobal < len(work) {
		nGlobal = len(work)
	}
	if nGlobal == 0 {
		return bd
	}
	bd.Backward = spec.BackwardTime(shape.Params, shape.Tokens, shape.Hidden, shape.Seq)
	fwdEnd := actSchedule(spec, shape, &bd)
	pipeTimes(shape, &bd)
	chunk := (bd.Backward + bd.ActStall) / float64(nGlobal)

	// Engine clocks: gpu is the GPU stream's current time; the others
	// are each engine's next-free time. With an activation tier the GPU
	// stream starts after the modeled forward (whose spills ride their
	// own store engine), and prefetch stalls stretch the backward the
	// optimizer chunks are spaced over. The flash tier is one clock per
	// path: the legacy single-lane model uses one, and a spec with
	// hw.IOPaths dispatches each transfer to the least-loaded path —
	// multiPath additionally charges write-behind flushes to the path
	// clocks (lane contention the idealized single-lane model omits).
	var gpu, d2h, cpu, h2d float64
	multiPath := len(spec.IOPaths) > 0
	nvmePaths := make([]float64, spec.NVMePathCount())
	var pathBusy []float64
	if multiPath {
		pathBusy = make([]float64, len(nvmePaths))
	}
	leastLoaded := func() int {
		best := 0
		for i := 1; i < len(nvmePaths); i++ {
			if nvmePaths[i] < nvmePaths[best] {
				best = i
			}
		}
		return best
	}
	gpu = fwdEnd
	var gpuTail []int64 // element counts of GPU-resident buckets, stepped post-backward

	prevIndex := nGlobal // one past the first-produced bucket
	for i := len(work) - 1; i >= 0; i-- {
		wk := work[i]
		elems := int64(wk.Elems)
		// Backward chunks covering buckets produced before this one
		// (including non-owned buckets between the holder's shards).
		gpu += float64(prevIndex-wk.Index) * chunk
		prevIndex = wk.Index
		ts := &bd.Tiers[wk.Tier]
		ts.Buckets++
		if wk.Tier == GPUResident {
			gpuTail = append(gpuTail, elems)
			continue
		}
		// The gradient cast rides the D2H copy (fused streaming kernel),
		// so the hop is charged max(cast, move) on the copy engine and
		// nothing on the GPU stream.
		dt := spec.GradD2HFusedTime(elems)
		ts.D2H += dt
		d2h = math.Max(gpu, d2h) + dt
		stateReady := d2h
		if wk.Tier == NVMeWindow {
			// The state fetch is gradient-independent: prefetches
			// pipeline on the flash engine from step start, dispatched
			// to the least-loaded path.
			p := leastLoaded()
			ft := spec.NVMePathFetchTime(p, elems)
			ts.NVMe += ft
			nvmePaths[p] += ft
			if multiPath {
				pathBusy[p] += ft
			}
			stateReady = math.Max(stateReady, nvmePaths[p])
		}
		at := spec.CPUAdamTime(elems)
		ts.Adam += at
		cpu = math.Max(stateReady, cpu) + at
		ht := spec.WeightH2DFusedTime(elems)
		ts.H2D += ht
		h2d = math.Max(cpu, h2d) + ht
		if wk.Tier == NVMeWindow {
			// Write-behind flush: charged to the serialized reference
			// but never on the step's critical path (the store's
			// eviction discipline). Under the multi-path model the flush
			// additionally occupies its least-loaded path after the
			// step, delaying later fetches on that lane — the contention
			// that makes path count matter.
			if multiPath {
				p := leastLoaded()
				flt := spec.NVMePathFlushTime(p, elems)
				ts.NVMe += flt
				nvmePaths[p] = math.Max(nvmePaths[p], cpu) + flt
				pathBusy[p] += flt
			} else {
				ts.NVMe += spec.NVMeFlushTime(elems)
			}
		}
	}
	// Backward chunks below the lowest owned bucket, then the resident
	// tail's synchronous GPU updates.
	gpu += float64(prevIndex) * chunk
	for _, elems := range gpuTail {
		at := spec.GPUAdamTime(elems)
		bd.Tiers[GPUResident].Adam += at
		gpu += at
	}

	bd.NVMePathSeconds = pathBusy
	bd.Pipelined = math.Max(gpu, math.Max(cpu, h2d))
	bd.Serialized = bd.Backward + bd.Forward + bd.ActWrite + bd.ActRead
	for _, ts := range bd.Tiers {
		bd.Serialized += ts.Total()
	}
	// The two figures sum the same phase times in different orders; when
	// nothing overlaps they are equal up to float addition noise, so
	// clamp to keep Pipelined ≤ Serialized an invariant.
	bd.Pipelined = math.Min(bd.Pipelined, bd.Serialized)
	return bd
}

// pipeTimes models the pipeline axis: with Stages > 1 the replica's
// forward+backward splits evenly over the stages, each micro-batch
// charges one stage 1/(Micros·Stages) of the whole, and 1F1B completes
// a stage's compute in Micros + Stages - 1 micro slots. It fills
// bd.PipeStage/PipeBubble (and bd.Forward when the activation model
// left it zero, so the serialized reference covers the same
// forward+backward the pipeline overlaps); with no pipeline axis it is
// a no-op, leaving the step schedule bit-identical to the unpipelined
// model. Runs after actSchedule and before the serialized total
// accumulates.
func pipeTimes(shape Shape, bd *Breakdown) {
	p := shape.Pipe.Stages
	if p <= 1 {
		return
	}
	if bd.Forward == 0 {
		bd.Forward = bd.Backward / 2
	}
	m := shape.Pipe.Micros
	if m < 1 {
		m = 1
	}
	perMicro := (bd.Backward + bd.Forward) / float64(m*p)
	bd.PipeStage = float64(m+p-1) * perMicro
	bd.PipeBubble = float64(p-1) * perMicro
}

// actSchedule models the activation tier around the optimizer step,
// mirroring the real store's clock discipline (internal/act): layer
// spills enqueue on the store engine as soon as the write-behind window
// slides past them during forward, and backward walks the layers top
// down with at most two prefetch reads in flight, stalling only when
// the layer it needs has not landed. It fills bd.Forward/ActWrite/
// ActRead/ActStall and returns the GPU time at which forward completes;
// with no activation tier (shape.Act.Layers == 0) it is a no-op and
// returns 0, leaving the step schedule bit-identical to the
// activation-free model.
func actSchedule(spec hw.SuperchipSpec, shape Shape, bd *Breakdown) float64 {
	L := shape.Act.Layers
	if L <= 0 || shape.Tokens <= 0 {
		return 0
	}
	bd.Forward = bd.Backward / 2
	w := shape.Act.Resident
	if w < 2 {
		w = 2
	}
	spilled := L - w
	if spilled <= 0 {
		return bd.Forward
	}
	layerFwd := bd.Forward / float64(L)
	layerBwd := bd.Backward / float64(L)
	bytes := hw.ActLayerBytes(shape.Tokens, shape.Hidden, shape.Act.Heads, shape.Seq)
	var wt, rt float64
	if shape.Act.NVMe {
		wt = spec.NVMe.WriteTime(bytes)
		rt = spec.NVMe.ReadTime(bytes)
	} else {
		wt = spec.Chip.Link.TransferTime(bytes, hw.DeviceToHost, hw.Pinned)
		rt = spec.Chip.Link.TransferTime(bytes, hw.HostToDevice, hw.Pinned)
	}

	// Forward: layer s spills when layer s+w finishes (the window slides
	// past it), serialized on the store's own engine clock.
	var dev float64
	for s := 0; s < spilled; s++ {
		issue := float64(s+w+1) * layerFwd
		dev = math.Max(dev, issue)
		dev += wt
		bd.ActWrite += wt
	}

	// Backward: depth-2 double-buffered prefetch, consuming spilled
	// layers in the order backward reaches them (descending index).
	cpu := bd.Forward
	done := make([]float64, spilled)
	next := spilled - 1
	inflight := 0
	for l := L - 1; l >= 0; l-- {
		for inflight < 2 && next >= 0 {
			dev = math.Max(dev, cpu)
			dev += rt
			bd.ActRead += rt
			done[next] = dev
			next--
			inflight++
		}
		if l < spilled {
			if done[l] > cpu {
				bd.ActStall += done[l] - cpu
				cpu = done[l]
			}
			inflight--
		}
		cpu += layerBwd
	}
	return bd.Forward
}

// ActResidentBytes is the HBM the activation tier keeps resident: the
// trailing W layers that never spill (W floors at the store's minimum
// window of 2 and caps at the depth). Auto charges it against the same
// budget as retained optimizer state, co-planning the two tiers.
func ActResidentBytes(shape Shape) int64 {
	L := shape.Act.Layers
	if L <= 0 || shape.Tokens <= 0 {
		return 0
	}
	w := shape.Act.Resident
	if w < 2 {
		w = 2
	}
	if w > L {
		w = L
	}
	return int64(w) * hw.ActLayerBytes(shape.Tokens, shape.Hidden, shape.Act.Heads, shape.Seq)
}

// GPUStateBytesPerElem is the HBM footprint of one GPU-resident
// parameter's optimizer state (fp32 master + Adam m + v + fp32 gradient),
// the budget the Auto grid search charges per retained bucket.
const GPUStateBytesPerElem = 16

// AutoPaths extends Auto's grid search with the flash path count for an
// NVMe-bodied deployment: the spec's NVMe array splits into 1..maxPaths
// independently scheduled lanes (hw.SplitPaths — total hardware
// conserved), Auto picks each candidate's GPU tail under that lane
// model, the offloaded body spills through the flash window
// (WithNVMeBody — the same transform the facade applies for the nvme
// backend), and the placement and path count with the lowest modeled
// pipelined step time win. Ties prefer fewer paths, so path splitting
// must pay for itself. Every candidate — including the single-path one —
// uses the multi-path clock model (flushes occupy their lane), keeping
// the comparison apples-to-apples rather than pitting real lane
// contention against the legacy idealized single-lane model.
func AutoPaths(spec hw.SuperchipSpec, elems []int, shape Shape, budgetBytes int64, maxPaths int) (Plan, int) {
	spec = spec.OrDefault()
	if maxPaths < 1 {
		maxPaths = 1
	}
	var best Plan
	bestN := 1
	bestT := math.Inf(1)
	for n := 1; n <= maxPaths; n++ {
		sp := spec
		sp.IOPaths = hw.SplitPaths(spec.NVMe, n)
		p := Auto(sp, elems, shape, budgetBytes).WithNVMeBody()
		if t := StepTimes(sp, p.Work(elems), len(elems), shape).Pipelined; t < bestT {
			best, bestN, bestT = p, n, t
		}
	}
	return best, bestN
}

// Auto derives the GPU-retained bucket tail for a partition with the
// given per-bucket element counts by the paper's §4.3 policy: grid-search
// the tail size, keeping at most budgetBytes of optimizer state in HBM
// (≤0 defaults to a quarter of the chip's memory), and pick the placement
// with the lowest modeled pipelined step time. Ties prefer the smaller
// tail, so the all-CPU plan wins when retention buys nothing.
func Auto(spec hw.SuperchipSpec, elems []int, shape Shape, budgetBytes int64) Plan {
	spec = spec.OrDefault()
	nb := len(elems)
	if nb == 0 {
		return Plan{}
	}
	if budgetBytes <= 0 {
		budgetBytes = spec.Chip.GPU.MemBytes / 4
	}
	// Resident activations and retained optimizer state share one HBM
	// budget: an activation tier's never-spilled window is charged first,
	// shrinking what the grid search may retain.
	if budgetBytes -= ActResidentBytes(shape); budgetBytes < 0 {
		budgetBytes = 0
	}
	best := Uniform(nb, CPUAdam)
	bestT := StepTimes(spec, best.Work(elems), nb, shape).Pipelined
	var gpuBytes int64
	for g := 1; g <= nb; g++ {
		gpuBytes += GPUStateBytesPerElem * int64(elems[g-1])
		if gpuBytes > budgetBytes {
			break
		}
		p := GPUTail(nb, g)
		if t := StepTimes(spec, p.Work(elems), nb, shape).Pipelined; t < bestT {
			best, bestT = p, t
		}
	}
	return best
}
