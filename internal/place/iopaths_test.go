package place

import (
	"testing"

	"superoffload/internal/hw"
)

// TestStepTimesLegacySpecHasNoPathAccounting: a spec without IOPaths
// must take the legacy single-lane model — no per-path occupancy
// breakdown (nil, not empty, so the zero value round-trips through
// reflect.DeepEqual comparisons unchanged).
func TestStepTimesLegacySpecHasNoPathAccounting(t *testing.T) {
	bd := StepTimes(hw.DefaultSuperchip(), Uniform(8, NVMeWindow).Work(toyElems(8)), 8, toyShape())
	if bd.NVMePathSeconds != nil {
		t.Fatalf("legacy spec produced path accounting: %v", bd.NVMePathSeconds)
	}
}

// TestStepTimesMultiPathBeatsSinglePath pins the modeled win the
// multi-path layer exists for: with latency-dominated records, two
// split lanes (same total hardware) pay their per-IO setup latency
// concurrently and strictly beat one lane under the same path-charged
// clock model.
func TestStepTimesMultiPathBeatsSinglePath(t *testing.T) {
	elems := toyElems(8) // 4096-elem buckets: ~98 KB records, latency-dominated
	plan := Uniform(8, NVMeWindow)
	shape := toyShape()
	run := func(n int) Breakdown {
		spec := hw.DefaultSuperchip()
		spec.IOPaths = hw.SplitPaths(spec.NVMe, n)
		return StepTimes(spec, plan.Work(elems), 8, shape)
	}
	one, two := run(1), run(2)
	if len(one.NVMePathSeconds) != 1 || len(two.NVMePathSeconds) != 2 {
		t.Fatalf("path accounting shape wrong: %v / %v", one.NVMePathSeconds, two.NVMePathSeconds)
	}
	for i, busy := range two.NVMePathSeconds {
		if busy <= 0 {
			t.Fatalf("path %d never used: %v", i, two.NVMePathSeconds)
		}
	}
	if two.Pipelined >= one.Pipelined {
		t.Errorf("2-lane pipelined %.9g not below 1-lane %.9g", two.Pipelined, one.Pipelined)
	}
	for _, bd := range []Breakdown{one, two} {
		if bd.Pipelined > bd.Serialized || bd.Pipelined < bd.Backward {
			t.Errorf("clock invariants broken: %+v", bd)
		}
	}
}

// TestAutoPaths: the joint placement × path-count search returns an
// NVMe-bodied plan (the deployment it models), a path count within
// bounds, and — on a flash-heavy partition where lane concurrency pays —
// more than one path.
func TestAutoPaths(t *testing.T) {
	elems := toyElems(8)
	// A 1-byte HBM budget forces the whole partition off the GPU, so
	// every bucket spills through the flash window and the path count
	// decides the step time.
	plan, n := AutoPaths(hw.DefaultSuperchip(), elems, toyShape(), 1, 4)
	if err := plan.Validate(8); err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 4 {
		t.Fatalf("path count %d out of bounds", n)
	}
	if c := plan.Counts(); c.NVMe == 0 {
		t.Fatalf("AutoPaths returned a plan with no flash body: %+v", c)
	}
	if n < 2 {
		t.Errorf("latency-dominated flash-heavy partition picked %d path(s); lane concurrency should pay", n)
	}
	// maxPaths < 1 clamps to a single-lane search instead of returning
	// an empty plan.
	if _, n := AutoPaths(hw.DefaultSuperchip(), elems, toyShape(), 1, 0); n != 1 {
		t.Errorf("maxPaths 0 returned %d paths, want 1", n)
	}
}
