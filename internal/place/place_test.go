package place

import (
	"reflect"
	"testing"

	"superoffload/internal/core"
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sched"
)

func toyElems(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 4096
	}
	return out
}

func toyShape() Shape {
	return Shape{Tokens: 64, Hidden: 64, Seq: 16, Params: 8 * 4096}
}

func TestPlanConstructors(t *testing.T) {
	p := GPUTail(8, 3)
	if got := p.NumBuckets(); got != 8 {
		t.Fatalf("NumBuckets = %d, want 8", got)
	}
	c := p.Counts()
	if c.GPU != 3 || c.CPU != 5 || c.NVMe != 0 {
		t.Fatalf("counts = %+v, want 3 gpu / 5 cpu", c)
	}
	for i := 0; i < 3; i++ {
		if p.Tier(i) != GPUResident {
			t.Fatalf("bucket %d tier = %v, want gpu (the tail is the last-produced, lowest-index buckets)", i, p.Tier(i))
		}
	}
	if p.String() != "gpu×3+cpu×5" {
		t.Fatalf("String = %q", p.String())
	}
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(7); err == nil {
		t.Fatal("Validate accepted a bucket-count mismatch")
	}

	// Clamping.
	if g := GPUTail(4, 99).Counts().GPU; g != 4 {
		t.Fatalf("oversize tail clamped to %d, want 4", g)
	}
	if g := GPUTail(4, -1).Counts().GPU; g != 0 {
		t.Fatalf("negative tail clamped to %d, want 0", g)
	}

	// Out-of-range Tier defaults to the homogeneous CPU path.
	if p.Tier(99) != CPUAdam || p.Tier(-1) != CPUAdam {
		t.Fatal("out-of-range Tier should default to CPUAdam")
	}

	nv := GPUTail(6, 2).WithNVMeBody()
	c = nv.Counts()
	if c.GPU != 2 || c.CPU != 0 || c.NVMe != 4 {
		t.Fatalf("WithNVMeBody counts = %+v, want 2 gpu / 4 nvme", c)
	}
}

func TestStepTimesInvariants(t *testing.T) {
	spec := hw.DefaultSuperchip()
	elems := toyElems(8)
	shape := toyShape()
	for _, plan := range []Plan{
		Uniform(8, CPUAdam),
		Uniform(8, GPUResident),
		GPUTail(8, 2),
		GPUTail(8, 2).WithNVMeBody(),
	} {
		bd := StepTimes(spec, plan.Work(elems), 8, shape)
		if bd.Pipelined <= 0 || bd.Serialized <= 0 {
			t.Fatalf("%v: non-positive step times %+v", plan, bd)
		}
		if bd.Pipelined > bd.Serialized {
			t.Fatalf("%v: pipelined %.9g exceeds serialized %.9g", plan, bd.Pipelined, bd.Serialized)
		}
		if bd.Pipelined < bd.Backward {
			t.Fatalf("%v: pipelined %.9g below backward %.9g", plan, bd.Pipelined, bd.Backward)
		}
		total := 0
		for _, ts := range bd.Tiers {
			total += ts.Buckets
		}
		if total != 8 {
			t.Fatalf("%v: tier buckets sum to %d, want 8", plan, total)
		}
	}

	// All-GPU placements move no link traffic.
	bd := StepTimes(spec, Uniform(8, GPUResident).Work(elems), 8, shape)
	for i, ts := range bd.Tiers {
		if Tier(i) != GPUResident && ts.Total() != 0 {
			t.Fatalf("all-GPU plan charged tier %v: %+v", Tier(i), ts)
		}
	}
	if bd.Tiers[GPUResident].D2H != 0 || bd.Tiers[GPUResident].H2D != 0 {
		t.Fatalf("GPU tier charged link traffic: %+v", bd.Tiers[GPUResident])
	}

	// NVMe-tier buckets additionally charge flash traffic over the CPU
	// path.
	nv := StepTimes(spec, Uniform(8, NVMeWindow).Work(elems), 8, shape)
	if nv.Tiers[NVMeWindow].NVMe <= 0 {
		t.Fatalf("NVMe tier charged no flash time: %+v", nv.Tiers[NVMeWindow])
	}
	cpu := StepTimes(spec, Uniform(8, CPUAdam).Work(elems), 8, shape)
	if nv.Serialized <= cpu.Serialized {
		t.Fatal("NVMe serialized time should exceed the CPU tier's")
	}
}

// TestStepTimesOwnedSubset models a rank owning every other bucket: the
// subset's serialized optimizer work is about half the full partition's,
// while the backward (the whole replica's) is unchanged.
func TestStepTimesOwnedSubset(t *testing.T) {
	spec := hw.DefaultSuperchip()
	shape := toyShape()
	full := StepTimes(spec, Uniform(8, CPUAdam).Work(toyElems(8)), 8, shape)
	var work []BucketWork
	for i := 0; i < 8; i += 2 {
		work = append(work, BucketWork{Index: i, Elems: 4096, Tier: CPUAdam})
	}
	half := StepTimes(spec, work, 8, shape)
	if half.Backward != full.Backward {
		t.Fatalf("subset backward %.9g != full %.9g", half.Backward, full.Backward)
	}
	if half.Tiers[CPUAdam].Buckets != 4 {
		t.Fatalf("subset modeled %d buckets, want 4", half.Tiers[CPUAdam].Buckets)
	}
	if half.Serialized >= full.Serialized {
		t.Fatal("subset serialized time should be below the full partition's")
	}
}

// TestGPUTailBeatsAllCPU is the paper's §4.3 claim on the virtual
// clocks: retaining the last-produced bucket on the GPU removes its
// post-backward D2H → Adam → H2D drain, strictly lowering the pipelined
// step time on the default GH200 spec.
func TestGPUTailBeatsAllCPU(t *testing.T) {
	spec := hw.DefaultSuperchip()
	elems := toyElems(8)
	shape := toyShape()
	allCPU := StepTimes(spec, Uniform(8, CPUAdam).Work(elems), 8, shape).Pipelined
	tail1 := StepTimes(spec, GPUTail(8, 1).Work(elems), 8, shape).Pipelined
	if tail1 >= allCPU {
		t.Fatalf("gpu tail 1 pipelined %.9g not below all-CPU %.9g", tail1, allCPU)
	}
}

func TestAuto(t *testing.T) {
	spec := hw.DefaultSuperchip()
	elems := toyElems(8)
	shape := toyShape()

	p := Auto(spec, elems, shape, 0)
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
	c := p.Counts()
	if c.GPU < 0 || c.GPU > 8 {
		t.Fatalf("auto GPU count %d out of range", c.GPU)
	}
	// The derived plan can never model worse than all-CPU.
	auto := StepTimes(spec, p.Work(elems), 8, shape).Pipelined
	allCPU := StepTimes(spec, Uniform(8, CPUAdam).Work(elems), 8, shape).Pipelined
	if auto > allCPU {
		t.Fatalf("auto pipelined %.9g above all-CPU %.9g", auto, allCPU)
	}

	// A budget below one bucket's state forces the all-CPU plan.
	if g := Auto(spec, elems, shape, 1).Counts().GPU; g != 0 {
		t.Fatalf("1-byte budget retained %d buckets", g)
	}
	if n := Auto(spec, nil, shape, 0).NumBuckets(); n != 0 {
		t.Fatalf("empty partition produced %d-bucket plan", n)
	}
}

// TestFromCore maps the analytic 5B/GH200 plan (which retains a GPU
// tail) onto a toy partition and asserts the acceptance property: the
// derived placement's pipelined virtual step time is strictly below the
// all-CPU placement's on the default GH200 spec.
func TestFromCore(t *testing.T) {
	m := sched.Workload{Cluster: hw.ClusterFor(1), Model: mustModel(t, "5B"), GlobalBatch: 8, Seq: 1024}
	cp, ok := core.New().Describe(m)
	if !ok {
		t.Fatal("5B should fit one GH200")
	}
	if cp.GPUBuckets < 1 || cp.GPUBuckets > cp.NBuckets {
		t.Fatalf("analytic GPU tail %d out of [1, %d]", cp.GPUBuckets, cp.NBuckets)
	}

	p := FromCore(cp, 8)
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
	g := p.Counts().GPU
	if g < 1 || g > 7 {
		t.Fatalf("mapped tail %d should keep both tiers populated", g)
	}

	spec := hw.DefaultSuperchip()
	elems := toyElems(8)
	shape := toyShape()
	auto := StepTimes(spec, p.Work(elems), 8, shape).Pipelined
	allCPU := StepTimes(spec, Uniform(8, CPUAdam).Work(elems), 8, shape).Pipelined
	if auto >= allCPU {
		t.Fatalf("core-derived placement pipelined %.9g not strictly below all-CPU %.9g", auto, allCPU)
	}

	// Degenerate mappings.
	if FromCore(core.Plan{}, 8).Counts().GPU != 0 {
		t.Fatal("zero analytic plan should map to all-CPU")
	}
	if FromCore(cp, 0).NumBuckets() != 0 {
		t.Fatal("empty partition should map to an empty plan")
	}
	// A fully-retained analytic plan keeps one offloaded bucket only
	// when the analytic plan offloaded any; fully-GPU maps to fully-GPU.
	full := FromCore(core.Plan{NBuckets: 4, GPUBuckets: 4}, 8)
	if full.Counts().GPU != 8 {
		t.Fatalf("fully-retained plan mapped to %+v", full.Counts())
	}
}

func mustModel(t *testing.T, name string) model.Config {
	t.Helper()
	mc, err := model.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestStepTimesPipeModel(t *testing.T) {
	spec := hw.DefaultSuperchip()
	elems := toyElems(8)
	plan := Uniform(8, CPUAdam)

	// No pipeline axis: the pipe fields stay zero and the schedule is
	// bit-identical to the unpipelined model.
	base := StepTimes(spec, plan.Work(elems), 8, toyShape())
	if base.PipeStage != 0 || base.PipeBubble != 0 || base.Forward != 0 {
		t.Fatalf("unpipelined shape grew pipe figures: %+v", base)
	}
	one := toyShape()
	one.Pipe = PipeShape{Stages: 1, Micros: 4}
	if got := StepTimes(spec, plan.Work(elems), 8, one); !reflect.DeepEqual(got, base) {
		t.Fatalf("Stages=1 changed the schedule: %+v vs %+v", got, base)
	}

	for _, p := range []int{2, 4} {
		for _, m := range []int{2, 4} {
			sh := toyShape()
			sh.Pipe = PipeShape{Stages: p, Micros: m}
			bd := StepTimes(spec, plan.Work(elems), 8, sh)
			if bd.Forward != bd.Backward/2 {
				t.Fatalf("P=%d M=%d: Forward = %v, want Backward/2 = %v", p, m, bd.Forward, bd.Backward/2)
			}
			if bd.PipeBubble <= 0 {
				t.Fatalf("P=%d M=%d: PipeBubble = %v, want > 0", p, m, bd.PipeBubble)
			}
			// The pipelining win: a stage's 1F1B compute time strictly
			// beats serializing the replica's forward+backward (and a
			// fortiori the full serialized step).
			if bd.PipeStage >= bd.Forward+bd.Backward {
				t.Fatalf("P=%d M=%d: PipeStage %v does not beat serialized compute %v",
					p, m, bd.PipeStage, bd.Forward+bd.Backward)
			}
			if bd.PipeStage >= bd.Serialized {
				t.Fatalf("P=%d M=%d: PipeStage %v does not beat Serialized %v", p, m, bd.PipeStage, bd.Serialized)
			}
			// Exact closed form: (M+P-1)/(M*P) of the compute.
			want := (bd.Forward + bd.Backward) * float64(m+p-1) / float64(m*p)
			if diff := bd.PipeStage - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("P=%d M=%d: PipeStage = %v, want %v", p, m, bd.PipeStage, want)
			}
			// M=1 degenerates to sequential stages: no win, pure bubble.
			seq := toyShape()
			seq.Pipe = PipeShape{Stages: p, Micros: 1}
			sbd := StepTimes(spec, plan.Work(elems), 8, seq)
			if sbd.PipeStage < sbd.Forward+sbd.Backward {
				t.Fatalf("P=%d M=1: PipeStage %v beat serial compute %v; a one-micro pipeline cannot overlap",
					p, sbd.PipeStage, sbd.Forward+sbd.Backward)
			}
		}
	}
}
