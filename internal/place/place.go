// Package place is the heterogeneous placement subsystem bridging the
// analytic planner (internal/core) and the real STV engine (internal/stv,
// internal/dp): it assigns every optimizer bucket an update tier —
// GPU-resident, CPU Adam over the C2C link, or the windowed NVMe store —
// and models the resulting superchip step time on virtual clocks.
//
// The paper's §4.3 adaptive weight-update placement keeps a tail of
// buckets on the GPU: the buckets whose gradients are produced last in
// backward would otherwise pay a D2H → CPU Adam → H2D round trip with
// nothing left to hide it behind, so their synchronous GPU update is
// cheaper than offloading them. Plans express exactly that split; Auto
// derives it by grid search over the virtual-clock model, and FromCore
// maps a placement the analytic planner computed for a paper-scale
// workload onto the real engine's bucket partition.
//
// Placement is a scheduling/residency decision only: the engines apply
// the same Adam kernel to every tier, so trajectories, rollbacks, and
// checkpoints stay bit-identical to the homogeneous trainer for any plan.
package place

import (
	"fmt"
	"math"
	"strings"

	"superoffload/internal/core"
)

// Tier is where one bucket's weight update runs (and where its optimizer
// state lives between touches).
type Tier int

const (
	// GPUResident buckets keep optimizer state in HBM and update
	// synchronously on the GPU stream after backward — the paper's
	// GPU-retained bucket tail (§4.3).
	GPUResident Tier = iota
	// CPUAdam buckets follow the paper's main path: gradients cast on
	// the GPU and moved fp32 over NVLink-C2C, the fused CPU Adam step,
	// and the fp16 weight return (§4.4–§4.6).
	CPUAdam
	// NVMeWindow buckets additionally spill optimizer state to the
	// windowed file-backed store between touches (the ZeRO-Infinity
	// third tier, stv.NVMeStore).
	NVMeWindow

	// NumTiers counts the tiers (array-index bound for per-tier
	// telemetry).
	NumTiers = 3
)

// String names the tier for logs and telemetry tables.
func (t Tier) String() string {
	switch t {
	case GPUResident:
		return "gpu"
	case CPUAdam:
		return "cpu"
	case NVMeWindow:
		return "nvme"
	}
	return "unknown"
}

// MetricLabel names the tier for embedding in metric identifiers
// (superoffload_placement_<label>_*): lowercase, no separators, stable
// across releases.
func (t Tier) MetricLabel() string { return t.String() }

// Plan assigns a tier to every bucket of a partition, indexed by global
// bucket index (internal/stv's bucket order).
type Plan struct {
	// Tiers[b] is bucket b's update tier.
	Tiers []Tier
}

// Uniform places every one of n buckets on the same tier.
func Uniform(n int, tier Tier) Plan {
	tiers := make([]Tier, n)
	for i := range tiers {
		tiers[i] = tier
	}
	return Plan{Tiers: tiers}
}

// GPUTail is the paper's §4.3 split over n buckets: the gpuBuckets
// buckets produced last in backward (the lowest bucket indices — backward
// walks buckets in descending index order) stay GPU-resident, the rest
// take the CPU Adam path. gpuBuckets clamps to [0, n].
func GPUTail(n, gpuBuckets int) Plan {
	if gpuBuckets < 0 {
		gpuBuckets = 0
	}
	if gpuBuckets > n {
		gpuBuckets = n
	}
	p := Uniform(n, CPUAdam)
	for i := 0; i < gpuBuckets; i++ {
		p.Tiers[i] = GPUResident
	}
	return p
}

// NumBuckets returns the number of buckets the plan covers.
func (p Plan) NumBuckets() int { return len(p.Tiers) }

// Tier returns bucket idx's tier; indices beyond the plan default to
// CPUAdam (the homogeneous path), so a short plan degrades gracefully.
func (p Plan) Tier(idx int) Tier {
	if idx < 0 || idx >= len(p.Tiers) {
		return CPUAdam
	}
	return p.Tiers[idx]
}

// Counts is the per-tier bucket census of a plan.
type Counts struct {
	// GPU, CPU, and NVMe count the buckets on each tier.
	GPU, CPU, NVMe int
}

// Counts tallies the plan's buckets per tier.
func (p Plan) Counts() Counts {
	var c Counts
	for _, t := range p.Tiers {
		switch t {
		case GPUResident:
			c.GPU++
		case CPUAdam:
			c.CPU++
		case NVMeWindow:
			c.NVMe++
		}
	}
	return c
}

// Validate checks the plan covers exactly nBuckets buckets with known
// tiers.
func (p Plan) Validate(nBuckets int) error {
	if len(p.Tiers) != nBuckets {
		return fmt.Errorf("place: plan covers %d buckets, partition has %d", len(p.Tiers), nBuckets)
	}
	for i, t := range p.Tiers {
		if t < GPUResident || t > NVMeWindow {
			return fmt.Errorf("place: bucket %d has unknown tier %d", i, t)
		}
	}
	return nil
}

// String renders the census compactly, e.g. "gpu×2+cpu×6".
func (p Plan) String() string {
	c := p.Counts()
	var parts []string
	if c.GPU > 0 {
		parts = append(parts, fmt.Sprintf("gpu×%d", c.GPU))
	}
	if c.CPU > 0 {
		parts = append(parts, fmt.Sprintf("cpu×%d", c.CPU))
	}
	if c.NVMe > 0 {
		parts = append(parts, fmt.Sprintf("nvme×%d", c.NVMe))
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, "+")
}

// WithNVMeBody returns a copy of the plan with every CPUAdam bucket
// demoted to the NVMe window — how the facade composes a placement with
// the nvme offload backend (the GPU tail stays resident; the offloaded
// body additionally spills between touches).
func (p Plan) WithNVMeBody() Plan {
	out := Plan{Tiers: append([]Tier(nil), p.Tiers...)}
	for i, t := range out.Tiers {
		if t == CPUAdam {
			out.Tiers[i] = NVMeWindow
		}
	}
	return out
}

// FromCore maps the analytic planner's adaptive placement onto a real
// bucket partition of nBuckets buckets: the GPU-retained fraction of the
// paper-scale plan carries over, keeping at least one GPU bucket when the
// analytic plan retained any and at least one offloaded bucket when it
// offloaded any.
func FromCore(cp core.Plan, nBuckets int) Plan {
	if nBuckets < 1 {
		return Plan{}
	}
	g := 0
	if cp.NBuckets > 0 && cp.GPUBuckets > 0 {
		g = int(math.Round(float64(cp.GPUBuckets) / float64(cp.NBuckets) * float64(nBuckets)))
		if g < 1 {
			g = 1
		}
		if g > nBuckets {
			g = nBuckets
		}
		if cp.GPUBuckets < cp.NBuckets && g == nBuckets {
			g = nBuckets - 1
		}
	}
	return GPUTail(nBuckets, g)
}
