package hw

// NVMe models the third memory tier of ZeRO-Infinity's design (§2.2 of the
// paper; the paper's evaluation disables it for fair comparison, this
// repository implements it as the documented extension). Values follow the
// ZeRO-Infinity paper's testbed: a striped array of NVMe drives per node.
type NVMeSpec struct {
	Name string
	// ReadBW/WriteBW are sustained sequential rates in bytes/s.
	ReadBW  float64
	WriteBW float64
	// Capacity in bytes per Superchip.
	Capacity int64
	// LatencyS is the per-IO setup latency through the aio stack.
	LatencyS float64
}

// NodeNVMe is the per-Superchip NVMe array of a GH200 node.
func NodeNVMe() NVMeSpec {
	return NVMeSpec{
		Name:     "NVMe-RAID",
		ReadBW:   25 * GB,
		WriteBW:  12 * GB,
		Capacity: 8 * 1024 * GiB, // 8 TiB per Superchip
		LatencyS: 100e-6,
	}
}

// ReadTime returns seconds to read size bytes.
func (n NVMeSpec) ReadTime(size int64) float64 {
	if size <= 0 {
		return 0
	}
	return n.LatencyS + float64(size)/n.ReadBW
}

// WriteTime returns seconds to write size bytes.
func (n NVMeSpec) WriteTime(size int64) float64 {
	if size <= 0 {
		return 0
	}
	return n.LatencyS + float64(size)/n.WriteBW
}

// OptimizerSwapTime is the per-step NVMe traffic for swapping a shard's
// optimizer states through DRAM: read fp32 master+moments (16 B/param),
// write them back updated (12 B/param master+moments after the fused
// kernel recombines, plus 4 B master) — 16 B read + 16 B write per param.
func (n NVMeSpec) OptimizerSwapTime(params int64) float64 {
	return n.ReadTime(16*params) + n.WriteTime(16*params)
}
