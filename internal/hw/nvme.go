package hw

// NVMe models the third memory tier of ZeRO-Infinity's design (§2.2 of the
// paper; the paper's evaluation disables it for fair comparison, this
// repository implements it as the documented extension). Values follow the
// ZeRO-Infinity paper's testbed: a striped array of NVMe drives per node.
type NVMeSpec struct {
	Name string
	// ReadBW/WriteBW are sustained sequential rates in bytes/s.
	ReadBW  float64
	WriteBW float64
	// Capacity in bytes per Superchip.
	Capacity int64
	// LatencyS is the per-IO setup latency through the aio stack.
	LatencyS float64
}

// NodeNVMe is the per-Superchip NVMe array of a GH200 node.
func NodeNVMe() NVMeSpec {
	return NVMeSpec{
		Name:     "NVMe-RAID",
		ReadBW:   25 * GB,
		WriteBW:  12 * GB,
		Capacity: 8 * 1024 * GiB, // 8 TiB per Superchip
		LatencyS: 100e-6,
	}
}

// ReadTime returns seconds to read size bytes.
func (n NVMeSpec) ReadTime(size int64) float64 {
	if size <= 0 {
		return 0
	}
	return n.LatencyS + float64(size)/n.ReadBW
}

// WriteTime returns seconds to write size bytes.
func (n NVMeSpec) WriteTime(size int64) float64 {
	if size <= 0 {
		return 0
	}
	return n.LatencyS + float64(size)/n.WriteBW
}

// OptimizerSwapBytesPerParam is the per-direction flash traffic of one
// parameter's optimizer states: fp32 master + moments in (16 B), the
// recombined 12 B moments plus 4 B master back out.
const OptimizerSwapBytesPerParam = 16

// OptimizerSwapTime is the per-step NVMe traffic for swapping a shard's
// optimizer states through DRAM — OptimizerSwapBytesPerParam in each
// direction.
func (n NVMeSpec) OptimizerSwapTime(params int64) float64 {
	return n.ReadTime(OptimizerSwapBytesPerParam*params) + n.WriteTime(OptimizerSwapBytesPerParam*params)
}

// StepSwapTime is the full per-step flash traffic of an NVMe-resident
// shard on a synchronous schedule: the optimizer-state swap plus
// weightPasses sequential re-reads of the working weights
// (weightBytesPerParam each — fp16 for the mixed-precision engines).
// This is the one transfer model shared by the analytical baselines and
// the real file-backed store's throttle, so the two tiers can never
// drift apart on bandwidth math.
func (n NVMeSpec) StepSwapTime(params, weightBytesPerParam int64, weightPasses int) float64 {
	return n.OptimizerSwapTime(params) + float64(weightPasses)*n.ReadTime(weightBytesPerParam*params)
}
