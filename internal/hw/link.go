package hw

import (
	"fmt"
	"math"
)

// LinkSpec models a point-to-point interconnect. Effective bandwidth is a
// function of transfer size: small transfers are latency-bound and saturate
// the link only past a knee (Fig. 7 of the paper shows the C2C link
// saturating at roughly 64 MB tensors).
//
// The curve is the classic latency/bandwidth pipe model
//
//	time(s) = latency + s / peak
//	bw(s)   = s / time(s) = peak * s/(s + latency*peak)
//
// which matches the measured shape in Fig. 7: ~50 GB/s at sub-MB sizes,
// climbing to the saturation plateau around the knee. KneeBytes documents
// the half-saturation point implied by latency*peak and is kept explicit so
// schedulers can pick bucket sizes from the spec without reverse-engineering
// the curve.
type LinkSpec struct {
	Name string
	// PeakBW is the peak uni-directional bandwidth in bytes/s.
	PeakBW float64
	// LatencyS is the per-transfer setup latency in seconds (driver +
	// DMA engine programming). It is what bends the curve at small sizes.
	LatencyS float64
	// KneeBytes is the transfer size at which effective bandwidth reaches
	// half of peak; documentation of the curve shape.
	KneeBytes int64
	// Duplex links carry traffic in both directions at full rate
	// simultaneously (NVLink-C2C); half-duplex links (classic shared PCIe
	// topologies in this model) serialize.
	Duplex bool
	// AsymmetryD2H scales the peak for device-to-host transfers relative
	// to host-to-device. Fig. 7 measures GPU->CPU slightly faster than
	// CPU->GPU on GH200; 1.0 means symmetric.
	AsymmetryD2H float64
}

// Direction of a transfer across a host link.
type Direction int

const (
	// HostToDevice moves bytes from CPU memory to GPU memory.
	HostToDevice Direction = iota
	// DeviceToHost moves bytes from GPU memory to CPU memory.
	DeviceToHost
)

func (d Direction) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// Memory pinning determines whether the DMA engine can stream directly
// (pinned) or must bounce through a pageable staging buffer (unpinned).
// §4.5 of the paper observes that the transfer-then-cast path allocates an
// unpinned temporary on the Grace CPU and is "significantly slower than DMA
// transfer"; UnpinnedPenalty in calibration.go quantifies that.
type Pinning int

const (
	// Pinned transfers stream at DMA rate.
	Pinned Pinning = iota
	// Unpinned transfers bounce through a staging buffer at a fraction
	// of link rate (the Grace transfer-then-cast pattern, §4.5).
	Unpinned
	// Pageable transfers are naive framework copies of pageable host
	// memory (no staging pool at all): page faults serialize the copy at
	// PageableBW regardless of link speed. FSDP's CPU-offload path
	// behaves this way.
	Pageable
)

// PageableBW is the absolute throughput of naive pageable host copies.
const PageableBW = 6 * GB

func (p Pinning) String() string {
	switch p {
	case Pinned:
		return "pinned"
	case Unpinned:
		return "unpinned"
	}
	return "pageable"
}

func (l LinkSpec) String() string {
	return fmt.Sprintf("%s(%.0fGB/s)", l.Name, l.PeakBW/GB)
}

// peakFor returns the direction-adjusted peak bandwidth.
func (l LinkSpec) peakFor(dir Direction) float64 {
	if dir == DeviceToHost && l.AsymmetryD2H > 0 {
		return l.PeakBW * l.AsymmetryD2H
	}
	return l.PeakBW
}

// TransferTime returns the wall-clock seconds to move size bytes in the
// given direction with the given pinning.
func (l LinkSpec) TransferTime(size int64, dir Direction, pin Pinning) float64 {
	if size <= 0 {
		return 0
	}
	peak := l.peakFor(dir)
	lat := l.LatencyS
	switch pin {
	case Unpinned:
		// Bounce through a staging buffer: the copy is performed by
		// CPU cores at a fraction of link rate and pays an
		// allocation latency (§4.5).
		peak *= UnpinnedBWFraction
		lat += UnpinnedSetupS
	case Pageable:
		if peak > PageableBW {
			peak = PageableBW
		}
		lat += UnpinnedSetupS
	}
	return lat + float64(size)/peak
}

// EffectiveBW returns achieved bytes/s for a transfer of size bytes — the
// quantity plotted in Fig. 7.
func (l LinkSpec) EffectiveBW(size int64, dir Direction, pin Pinning) float64 {
	t := l.TransferTime(size, dir, pin)
	if t == 0 {
		return 0
	}
	return float64(size) / t
}

// SaturationSize returns the smallest power-of-two transfer size whose
// effective bandwidth is at least frac of peak. The paper's bucketization
// (§4.3) picks 64 MB because the C2C curve saturates there.
func (l LinkSpec) SaturationSize(frac float64, dir Direction) int64 {
	if frac <= 0 || frac >= 1 {
		return l.KneeBytes
	}
	for s := int64(256 * KiB); s <= 4*GiB; s *= 2 {
		if l.EffectiveBW(s, dir, Pinned) >= frac*l.peakFor(dir) {
			return s
		}
	}
	return 4 * GiB
}

// NVLinkC2C is the GH200 Grace-Hopper chip-to-chip interconnect: 900 GB/s
// total, 450 GB/s per direction (§4.2 uses the 450 GB/s uni-directional
// figure for the weight-flow analysis). Latency is set so the effective
// curve matches Fig. 7: ~100 GB/s at 1 MB, half-saturation in the tens of
// MB, plateau ~420 GB/s by 64 MB.
func NVLinkC2C() LinkSpec {
	return LinkSpec{
		Name:         "NVLink-C2C",
		PeakBW:       450 * GB,
		LatencyS:     10e-6,
		KneeBytes:    int64(10e-6 * 450e9), // latency*peak = 4.5 MB half-sat
		Duplex:       true,
		AsymmetryD2H: 1.07, // Fig. 7: GPU->CPU slightly above CPU->GPU
	}
}

// PCIe3x16 is the DGX-2 host link (32 GB/s).
func PCIe3x16() LinkSpec {
	return LinkSpec{Name: "PCIe3x16", PeakBW: 32 * GB, LatencyS: 15e-6, KneeBytes: int64(15e-6 * 32e9), AsymmetryD2H: 1.0}
}

// PCIe4x16 is the DGX-A100 host link (64 GB/s).
func PCIe4x16() LinkSpec {
	return LinkSpec{Name: "PCIe4x16", PeakBW: 64 * GB, LatencyS: 12e-6, KneeBytes: int64(12e-6 * 64e9), AsymmetryD2H: 1.0}
}

// NVLink4 is the GPU-to-GPU fabric inside a GH200 node (NVLink switch,
// 900 GB/s per GPU aggregate; we expose the per-peer effective rate).
func NVLink4() LinkSpec {
	return LinkSpec{Name: "NVLink4", PeakBW: 450 * GB, LatencyS: 5e-6, KneeBytes: int64(5e-6 * 450e9), Duplex: true, AsymmetryD2H: 1.0}
}

// Slingshot11 is the HPE/Cray 200 Gbps inter-node interconnect from the
// paper's multi-node testbed (§5.1): 200 Gbps = 25 GB/s per direction.
func Slingshot11() LinkSpec {
	return LinkSpec{Name: "Slingshot-11", PeakBW: 25 * GB, LatencyS: 2e-6, KneeBytes: int64(2e-6 * 25e9), Duplex: true, AsymmetryD2H: 1.0}
}

// BandwidthPoint is one sample of the Fig. 7 sweep.
type BandwidthPoint struct {
	SizeBytes int64
	H2DBps    float64
	D2HBps    float64
}

// BandwidthSweep reproduces the Fig. 7 measurement: effective bandwidth for
// pinned transfers of 0.25 MB .. maxBytes, doubling each step.
func (l LinkSpec) BandwidthSweep(maxBytes int64) []BandwidthPoint {
	var pts []BandwidthPoint
	for s := int64(256 * KiB); s <= maxBytes; s *= 2 {
		pts = append(pts, BandwidthPoint{
			SizeBytes: s,
			H2DBps:    l.EffectiveBW(s, HostToDevice, Pinned),
			D2HBps:    l.EffectiveBW(s, DeviceToHost, Pinned),
		})
	}
	return pts
}

// CollectiveKind enumerates the collectives used by the parallel schedules.
type CollectiveKind int

const (
	AllReduce CollectiveKind = iota
	AllGather
	ReduceScatter
	AllToAll
	Broadcast
)

func (k CollectiveKind) String() string {
	switch k {
	case AllReduce:
		return "all-reduce"
	case AllGather:
		return "all-gather"
	case ReduceScatter:
		return "reduce-scatter"
	case AllToAll:
		return "all-to-all"
	case Broadcast:
		return "broadcast"
	}
	return "unknown"
}

// CollectiveTime estimates ring/pairwise collective time for n ranks moving
// size bytes of payload per rank over the given link, using the standard
// ring-algorithm volume factors:
//
//	all-gather / reduce-scatter: (n-1)/n * size per rank
//	all-reduce:                  2*(n-1)/n * size per rank
//	all-to-all:                  (n-1)/n * size per rank (pairwise)
//	broadcast:                   size per rank
func CollectiveTime(k CollectiveKind, n int, size int64, link LinkSpec) float64 {
	if n <= 1 || size <= 0 {
		return 0
	}
	frac := float64(n-1) / float64(n)
	var vol float64
	switch k {
	case AllGather, ReduceScatter, AllToAll:
		vol = frac * float64(size)
	case AllReduce:
		vol = 2 * frac * float64(size)
	case Broadcast:
		vol = float64(size)
	}
	// Chunked pipeline: per-chunk latency amortized over ring steps.
	steps := float64(n - 1)
	if k == AllReduce {
		steps = 2 * float64(n-1)
	}
	return steps*link.LatencyS + vol/link.PeakBW
}

// MinTransferFloor clamps tiny analytic times to a scheduling quantum so the
// simulator never produces zero-length busy intervals.
func MinTransferFloor(t float64) float64 { return math.Max(t, 1e-9) }
