// Package hw models the hardware substrate the paper evaluates on: chips
// (GPU + CPU pairs), the links that join them (PCIe, NVLink-C2C, NVLink,
// Slingshot), nodes built from several Superchips, and NUMA affinity.
//
// Every constant in this package is taken from the paper (Table 1, §2.1,
// §3, Fig. 2, Fig. 7) or from the NVIDIA datasheet values the paper quotes.
// The simulator in internal/sim consumes these models; nothing else in the
// repository hard-codes hardware numbers.
package hw

import "fmt"

// Common byte sizes. Bandwidths in this package are bytes/second, times in
// seconds, compute rates in FLOP/s.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30

	GB = 1e9 // vendor-style decimal gigabyte, used for bandwidths
	TB = 1e12
)

// GPUSpec describes one GPU die.
type GPUSpec struct {
	Name string
	// PeakFLOPS is the peak dense fp16/bf16 tensor-core throughput.
	PeakFLOPS float64
	// MemBytes is HBM capacity in bytes.
	MemBytes int64
	// MemBW is HBM bandwidth in bytes/s.
	MemBW float64
}

// CPUSpec describes one CPU socket.
type CPUSpec struct {
	Name  string
	Cores int
	// PeakFLOPS is the peak fp32 vector throughput across all cores.
	PeakFLOPS float64
	// MemBytes is DDR/LPDDR capacity in bytes.
	MemBytes int64
	// MemBW is DDR bandwidth in bytes/s.
	MemBW float64
	// SVE reports whether the core has ARM scalable vector extensions
	// (true on Grace). x86 chips report false and use AVX instead.
	SVE bool
}

// Chip is a CPU+GPU pair joined by a host link. On a Superchip the link is
// NVLink-C2C; on a classic node it is PCIe.
type Chip struct {
	Name string
	GPU  GPUSpec
	CPU  CPUSpec
	Link LinkSpec
}

// FLOPSRatio returns the GPU/CPU peak-FLOPS ratio the paper uses to explain
// why bucket repartitioning is needed (§4.3: ~330 on GH200 vs ~60 on DGX-2).
func (c Chip) FLOPSRatio() float64 { return c.GPU.PeakFLOPS / c.CPU.PeakFLOPS }

func (c Chip) String() string {
	return fmt.Sprintf("%s{gpu=%s cpu=%s link=%s}", c.Name, c.GPU.Name, c.CPU.Name, c.Link.Name)
}

// Presets. Table 1 of the paper:
//
//	Node Arch             DGX-2        DGX-A100      GH
//	CPU BW (GB/s)         100          150           500
//	C<->GPU BW (GB/s)     32           64            900
//	CPU Cores             24           64            72
//	CPU FLOPS (TFLOPS)    2.07         2.3           3.0
//	GPU FLOPS (TFLOPS)    125.0        312.0         990.0
//	GPU/CPU FLOPS         60.39        135.65        330.0
func GH200() Chip {
	return Chip{
		Name: "GH200",
		GPU: GPUSpec{
			Name:      "H100-96GB",
			PeakFLOPS: 990e12,
			MemBytes:  96 * GiB,
			MemBW:     4000 * GB,
		},
		CPU: CPUSpec{
			Name:      "Grace",
			Cores:     72,
			PeakFLOPS: 3.0e12,
			MemBytes:  480 * GiB,
			MemBW:     500 * GB,
			SVE:       true,
		},
		Link: NVLinkC2C(),
	}
}

// GH200NVL2 is the per-chip view of the paper's multi-node testbed: GH200
// NVL2 nodes carry 2x GH200 with 96 GB HBM and 240 GB DDR per Superchip
// (§5.1 "each containing 2xGH200 (96GB HBM, 240GB DDR)").
func GH200NVL2() Chip {
	c := GH200()
	c.Name = "GH200-NVL2"
	c.CPU.MemBytes = 240 * GiB
	return c
}

// GB200 is the next-generation Superchip the paper mentions (§2.1). Only
// used by forward-looking examples; evaluation uses GH200.
func GB200() Chip {
	return Chip{
		Name: "GB200",
		GPU: GPUSpec{
			Name:      "B200-192GB",
			PeakFLOPS: 2250e12,
			MemBytes:  192 * GiB,
			MemBW:     8000 * GB,
		},
		CPU: CPUSpec{
			Name:      "Grace",
			Cores:     72,
			PeakFLOPS: 3.0e12,
			MemBytes:  480 * GiB,
			MemBW:     500 * GB,
			SVE:       true,
		},
		Link: LinkSpec{Name: "NVLink-C2C-2", PeakBW: 900 * GB, LatencyS: 2e-6, KneeBytes: 64 * MiB, Duplex: true},
	}
}

// DGX2 is the per-GPU view of the DGX-2 node evaluated in ZeRO-Offload:
// Intel Xeon + V100, PCIe 3.0 x16.
func DGX2() Chip {
	return Chip{
		Name: "DGX-2",
		GPU: GPUSpec{
			Name:      "V100-32GB",
			PeakFLOPS: 125e12,
			MemBytes:  32 * GiB,
			MemBW:     900 * GB,
		},
		CPU: CPUSpec{
			Name:      "Xeon-8168",
			Cores:     24,
			PeakFLOPS: 2.07e12,
			MemBytes:  768 * GiB,
			MemBW:     100 * GB,
		},
		Link: PCIe3x16(),
	}
}

// DGXA100 is the per-GPU view of the DGX-A100 node (AMD Rome + A100,
// PCIe 4.0 x16) used for LLaMA training.
func DGXA100() Chip {
	return Chip{
		Name: "DGX-A100",
		GPU: GPUSpec{
			Name:      "A100-80GB",
			PeakFLOPS: 312e12,
			MemBytes:  80 * GiB,
			MemBW:     2000 * GB,
		},
		CPU: CPUSpec{
			Name:      "EPYC-7742",
			Cores:     64,
			PeakFLOPS: 2.3e12,
			MemBytes:  1024 * GiB,
			MemBW:     150 * GB,
		},
		Link: PCIe4x16(),
	}
}

// Registry returns the named chips compared in Table 1, in paper order.
func Registry() []Chip { return []Chip{DGX2(), DGXA100(), GH200()} }

// ByName looks a preset up by its Name field.
func ByName(name string) (Chip, error) {
	for _, c := range []Chip{DGX2(), DGXA100(), GH200(), GH200NVL2(), GB200()} {
		if c.Name == name {
			return c, nil
		}
	}
	return Chip{}, fmt.Errorf("hw: unknown chip %q", name)
}
