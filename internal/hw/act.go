package hw

// Activation-tier transfer sizing, shared by the real activation store
// (internal/act), the virtual-clock step model (place.StepTimes), and the
// planners — one formula, so the modeled activation traffic can never
// drift from what the engines actually spill.

// ActLayerBytes is the byte footprint of one transformer layer's retained
// forward activations for a backward pass over the given shape: the
// per-token block intermediates the real engine caches (block input,
// both pre-norm outputs with their layernorm statistics, the fused QKV
// projection, the pre-projection attention output, the residual, and the
// two MLP intermediates — 16 hidden-sized rows plus 4 scalars per token)
// and the post-softmax attention probabilities (tokens × heads × seq,
// where seq is the attention span: the global sequence length under
// sequence parallelism). Everything is float32, the precision the real
// engine trains in.
func ActLayerBytes(tokens, hidden, heads, seq int) int64 {
	if tokens <= 0 {
		return 0
	}
	rows := int64(tokens) * int64(16*hidden+4)
	probs := int64(tokens) * int64(heads) * int64(seq)
	return 4 * (rows + probs)
}
