package hw

import "fmt"

// Node is a K-way Superchip node: K chips joined GPU-to-GPU by an NVLink
// fabric and CPU-to-CPU by the inter-socket link; each Superchip is one
// NUMA domain (§4.7 "NUMA binding").
type Node struct {
	Chip      Chip
	ChipCount int
	// GPUFabric joins GPUs inside the node (NVLink switch).
	GPUFabric LinkSpec
	// CrossNUMA is the path taken when a CPU process touches another
	// Superchip's memory; much slower than local C2C.
	CrossNUMA LinkSpec
}

// Cluster is a set of identical nodes joined by an inter-node network.
type Cluster struct {
	Node      Node
	NodeCount int
	Network   LinkSpec // Slingshot-11 in the paper's testbed
}

// NewGH200Node builds the paper's single-node testbeds: a node of n GH200
// Superchips (n=1 for §5.2 single-Superchip runs, n=4 for a 4-way node).
func NewGH200Node(n int) Node {
	chip := GH200()
	if n > 1 {
		// Multi-chip nodes in the testbed carry 240 GB DDR per chip.
		chip = GH200NVL2()
	}
	cross := NVLinkC2C()
	cross.Name = "cross-NUMA"
	cross.PeakBW *= NUMAMisbindBWFraction
	cross.LatencyS += NUMAMisbindExtraLatS
	return Node{Chip: chip, ChipCount: n, GPUFabric: NVLink4(), CrossNUMA: cross}
}

// NewGH200Cluster builds the paper's multi-node testbed: nodes of
// chipsPerNode GH200s connected by Slingshot-11 (§5.1).
func NewGH200Cluster(nodes, chipsPerNode int) Cluster {
	return Cluster{Node: NewGH200Node(chipsPerNode), NodeCount: nodes, Network: Slingshot11()}
}

// TotalChips returns the number of Superchips in the cluster.
func (c Cluster) TotalChips() int { return c.NodeCount * c.Node.ChipCount }

// TotalGPUMem returns aggregate HBM bytes.
func (c Cluster) TotalGPUMem() int64 {
	return int64(c.TotalChips()) * c.Node.Chip.GPU.MemBytes
}

// TotalCPUMem returns aggregate DDR bytes.
func (c Cluster) TotalCPUMem() int64 {
	return int64(c.TotalChips()) * c.Node.Chip.CPU.MemBytes
}

func (c Cluster) String() string {
	return fmt.Sprintf("%dx%d %s", c.NodeCount, c.Node.ChipCount, c.Node.Chip.Name)
}

// ClusterFor returns the testbed used for a given total Superchip count,
// following §5.1: single chips are the 480 GB-DDR GH200; multi-chip runs
// use GH200-NVL2 nodes (2 chips, 240 GB DDR each) joined by Slingshot.
func ClusterFor(totalChips int) Cluster {
	switch {
	case totalChips <= 1:
		return Cluster{Node: NewGH200Node(1), NodeCount: 1, Network: Slingshot11()}
	case totalChips == 2:
		return NewGH200Cluster(1, 2)
	default:
		return NewGH200Cluster(totalChips/2, 2)
	}
}

// DataParallelLink returns the effective link for bulk data-parallel
// collectives across n ranks in the cluster: intra-node fabric if all ranks
// share a node, otherwise the inter-node network bounds the ring.
func (c Cluster) DataParallelLink(n int) LinkSpec {
	if n <= c.Node.ChipCount && c.NodeCount >= 1 {
		return c.Node.GPUFabric
	}
	return c.Network
}

// Binding describes CPU-core affinity of the training process for one
// Superchip's rank (§4.7). A correctly bound process keeps its host traffic
// on the local C2C link; a misbound process crosses NUMA domains.
type Binding struct {
	Rank      int
	CoreStart int
	CoreEnd   int // exclusive
	Local     bool
}

// BindRanks produces the explicit core bindings SuperOffload applies: rank
// i gets the cores of Superchip i.
func (n Node) BindRanks() []Binding {
	out := make([]Binding, n.ChipCount)
	for i := 0; i < n.ChipCount; i++ {
		out[i] = Binding{
			Rank:      i,
			CoreStart: i * n.Chip.CPU.Cores,
			CoreEnd:   (i + 1) * n.Chip.CPU.Cores,
			Local:     true,
		}
	}
	return out
}

// MisboundRanks models the default launcher behaviour the paper warns
// about: processes land on arbitrary cores, so each rank's host traffic has
// probability (K-1)/K of crossing NUMA domains. We model the worst common
// case: every rank shifted by one Superchip.
func (n Node) MisboundRanks() []Binding {
	out := make([]Binding, n.ChipCount)
	for i := 0; i < n.ChipCount; i++ {
		j := (i + 1) % n.ChipCount
		out[i] = Binding{
			Rank:      i,
			CoreStart: j * n.Chip.CPU.Cores,
			CoreEnd:   (j + 1) * n.Chip.CPU.Cores,
			Local:     n.ChipCount == 1,
		}
	}
	return out
}

// HostLinkFor returns the link a rank's host traffic takes under the given
// binding: the local C2C link when correctly bound, the cross-NUMA path
// otherwise.
func (n Node) HostLinkFor(b Binding) LinkSpec {
	if b.Local {
		return n.Chip.Link
	}
	return n.CrossNUMA
}
