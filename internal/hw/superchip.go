package hw

import "math"

// SuperchipSpec bundles the hardware model a virtual-clock superchip
// executor needs to time one heterogeneous optimizer step: the chip
// (GPU + CPU joined by the C2C link), the CPU Adam implementation (the
// paper's GraceAdam vs the x86 CPU-Adam port, §4.6), and the NVMe array
// backing the optional third tier. internal/place consumes it to derive
// adaptive GPU/CPU bucket placements, and the real STV engine's placement
// executor charges its virtual clocks with these rates.
type SuperchipSpec struct {
	// Chip is the Superchip (GPU, CPU, and the host link between them).
	Chip Chip
	// CPUImpl is the CPU optimizer kernel rate model: AdamGrace (the
	// paper's SVE kernel) or AdamCPU (the x86-blocked port).
	CPUImpl AdamImpl
	// NVMe is the flash array backing NVMe-tier buckets.
	NVMe NVMeSpec
	// IOPaths, when non-empty, replaces the single-lane NVMe model with
	// independently scheduled flash paths (MLP-Offload): virtual-clock
	// executors dispatch fetches and write-behind flushes to the
	// least-loaded path and account per-path occupancy. Empty keeps the
	// legacy single-lane model bit-identical.
	IOPaths IOPaths
}

// DefaultSuperchip is the paper's evaluation platform: a GH200 with
// GraceAdam and the node NVMe array.
func DefaultSuperchip() SuperchipSpec {
	return SuperchipSpec{Chip: GH200(), CPUImpl: AdamGrace, NVMe: NodeNVMe()}
}

// OrDefault returns the spec with unset fields filled in: the zero value
// becomes DefaultSuperchip, and a spec carrying only a Chip gets the
// GraceAdam rate and the node NVMe array. AdamNaive (CPUImpl's zero
// value) is the un-ported PyTorch baseline, not a superchip optimizer
// port, so it is treated as "unset" rather than silently modeling the
// slowest kernel.
func (s SuperchipSpec) OrDefault() SuperchipSpec {
	if s.Chip.GPU.PeakFLOPS == 0 {
		return DefaultSuperchip()
	}
	if s.CPUImpl == AdamNaive {
		s.CPUImpl = AdamGrace
	}
	if s.NVMe.ReadBW == 0 {
		s.NVMe = NodeNVMe()
	}
	return s
}

// BackwardTime models the GPU backward pass producing the step's
// gradients: 4 FLOPs per token per parameter (backward is twice the
// 2·tokens·params forward) at the transformer-achievable GPU rate.
func (s SuperchipSpec) BackwardTime(params int64, tokens, hidden, seq int) float64 {
	if tokens <= 0 || params <= 0 {
		return 0
	}
	return 4 * float64(tokens) * float64(params) / AchievableGPUFLOPS(s.Chip, hidden, seq)
}

// CastGPUTime is the GPU-side fp16→fp32 gradient cast preceding the
// pinned D2H move (§4.5's Cast_gpu↔Move_fp32 path).
func (s SuperchipSpec) CastGPUTime(elems int64) float64 {
	return CastTime(s.Chip, true, elems)
}

// GradD2HTime is the pinned device-to-host move of one bucket's fp32
// gradients over the C2C link.
func (s SuperchipSpec) GradD2HTime(elems int64) float64 {
	return s.Chip.Link.TransferTime(4*elems, DeviceToHost, Pinned)
}

// WeightH2DTime is the pinned host-to-device return of one bucket's
// updated fp16 weights.
func (s SuperchipSpec) WeightH2DTime(elems int64) float64 {
	return s.Chip.Link.TransferTime(2*elems, HostToDevice, Pinned)
}

// GradD2HFusedTime is the device-to-host gradient hop with the GPU-side
// fp16→fp32 cast fused into the copy (§4.5's Cast_gpu+Move_fp32 path run
// as one streaming kernel): the conversion overlaps the pinned transfer,
// so the hop costs the slower of the two rates rather than their sum.
func (s SuperchipSpec) GradD2HFusedTime(elems int64) float64 {
	return math.Max(s.CastGPUTime(elems), s.GradD2HTime(elems))
}

// WeightH2DFusedTime is the host-to-device weight return with the CPU-side
// fp32→fp16 re-cast fused into the copy: the optimizer's output streams
// through the conversion into the pinned transfer, so the hop costs the
// slower of the cast and the move.
func (s SuperchipSpec) WeightH2DFusedTime(elems int64) float64 {
	return math.Max(CastTime(s.Chip, false, elems), s.WeightH2DTime(elems))
}

// CPUAdamTime is one bucket's fused CPU optimizer step (dispatch tax
// plus the bandwidth-bound kernel at the configured implementation's
// rate).
func (s SuperchipSpec) CPUAdamTime(elems int64) float64 {
	return CPUDispatchPerBucketS + AdamStepTime(s.Chip, s.CPUImpl, elems)
}

// GPUAdamTime is one GPU-resident bucket's fused optimizer step (kernel
// launch plus the HBM-bound kernel), run on the GPU stream after
// backward.
func (s SuperchipSpec) GPUAdamTime(elems int64) float64 {
	return KernelLaunchS + AdamStepTime(s.Chip, AdamGPU, elems)
}

// superchipNVMeBytesPerElem is the flash footprint of one parameter's
// optimizer state in the windowed store (fp32 master + Adam m + v and
// their snapshot reservation — stv.NVMeStore's record layout).
const superchipNVMeBytesPerElem = 24

// NVMeFetchTime is the flash read bringing one NVMe-tier bucket's
// optimizer state into the resident window.
func (s SuperchipSpec) NVMeFetchTime(elems int64) float64 {
	return s.NVMe.ReadTime(superchipNVMeBytesPerElem * elems)
}

// NVMeFlushTime is the write-behind flush of one NVMe-tier bucket's
// updated optimizer state.
func (s SuperchipSpec) NVMeFlushTime(elems int64) float64 {
	return s.NVMe.WriteTime(superchipNVMeBytesPerElem * elems)
}

// NVMePathCount is the number of independently scheduled flash paths the
// spec models (1 for the legacy single-lane model).
func (s SuperchipSpec) NVMePathCount() int {
	if n := len(s.IOPaths); n > 0 {
		return n
	}
	return 1
}

// PathNVMe returns the transfer model of flash path i: the configured
// IOPaths entry, or the single-lane NVMe spec when none are set.
func (s SuperchipSpec) PathNVMe(i int) NVMeSpec {
	if i >= 0 && i < len(s.IOPaths) {
		return s.IOPaths[i]
	}
	return s.NVMe
}

// NVMePathFetchTime is NVMeFetchTime on flash path i's lane.
func (s SuperchipSpec) NVMePathFetchTime(i int, elems int64) float64 {
	return s.PathNVMe(i).ReadTime(superchipNVMeBytesPerElem * elems)
}

// NVMePathFlushTime is NVMeFlushTime on flash path i's lane.
func (s SuperchipSpec) NVMePathFlushTime(i int, elems int64) float64 {
	return s.PathNVMe(i).WriteTime(superchipNVMeBytesPerElem * elems)
}
