package hw

import "testing"

// TestSplitPathsConservesHardware: splitting one array into n lanes must
// neither create nor destroy bandwidth or capacity, and every lane pays
// the array's setup latency independently.
func TestSplitPathsConservesHardware(t *testing.T) {
	spec := NodeNVMe()
	for _, n := range []int{1, 2, 3, 4, 8} {
		paths := SplitPaths(spec, n)
		if len(paths) != n {
			t.Fatalf("SplitPaths(%d) produced %d lanes", n, len(paths))
		}
		var rbw, wbw float64
		var cap int64
		for _, lane := range paths {
			rbw += lane.ReadBW
			wbw += lane.WriteBW
			cap += lane.Capacity
			if lane.LatencyS != spec.LatencyS {
				t.Fatalf("n=%d: lane latency %v != array latency %v", n, lane.LatencyS, spec.LatencyS)
			}
		}
		if rbw != spec.ReadBW || wbw != spec.WriteBW {
			t.Errorf("n=%d: bandwidth not conserved: read %v want %v, write %v want %v",
				n, rbw, spec.ReadBW, wbw, spec.WriteBW)
		}
		// Integer division may shed a remainder byte per lane, never gain.
		if cap > spec.Capacity || cap < spec.Capacity-int64(n) {
			t.Errorf("n=%d: capacity %d drifted from %d", n, cap, spec.Capacity)
		}
	}
}

// TestSplitPathsDegenerate: n < 1 clamps to a single lane.
func TestSplitPathsDegenerate(t *testing.T) {
	spec := NodeNVMe()
	if got := SplitPaths(spec, 0); len(got) != 1 || got[0] != spec {
		t.Fatalf("SplitPaths(spec, 0) = %+v, want the spec as one lane", got)
	}
}

// TestNodeIOPathsSingleLaneMatchesLegacySpec: NodeIOPaths(1) must be the
// RAID exactly, so the facade's -io-paths 1 default models the same
// hardware as the legacy single-lane store.
func TestNodeIOPathsSingleLaneMatchesLegacySpec(t *testing.T) {
	paths := NodeIOPaths(1)
	if len(paths) != 1 || paths[0] != NodeNVMe() {
		t.Fatalf("NodeIOPaths(1) = %+v, want exactly [NodeNVMe()]", paths)
	}
}

// TestAggregateModelsOriginalArray: the striped aggregate of a split
// recovers the original array's rates and latency, so a transfer striped
// over every lane costs what the unsplit array charged.
func TestAggregateModelsOriginalArray(t *testing.T) {
	spec := NodeNVMe()
	paths := SplitPaths(spec, 4)
	agg := paths.Aggregate()
	if agg.ReadBW != spec.ReadBW || agg.WriteBW != spec.WriteBW || agg.LatencyS != spec.LatencyS {
		t.Fatalf("aggregate %+v does not recover the array %+v", agg, spec)
	}
	const size = 1 << 20
	if got, want := paths.ReadTime(size), spec.ReadTime(size); got != want {
		t.Errorf("striped ReadTime %v != array %v", got, want)
	}
	if got, want := paths.WriteTime(size), spec.WriteTime(size); got != want {
		t.Errorf("striped WriteTime %v != array %v", got, want)
	}
	// A single-lane set aggregates to that lane verbatim, name included.
	one := IOPaths{spec}
	if one.Aggregate() != spec {
		t.Errorf("single-lane Aggregate() = %+v, want the lane itself", one.Aggregate())
	}
}

// TestSuperchipPathHelpers: the per-path accessors fall back to the
// legacy scalar spec when IOPaths is unset or the index is out of range.
func TestSuperchipPathHelpers(t *testing.T) {
	s := DefaultSuperchip()
	if s.NVMePathCount() != 1 {
		t.Fatalf("legacy spec path count = %d, want 1", s.NVMePathCount())
	}
	if s.PathNVMe(0) != s.NVMe {
		t.Fatalf("legacy PathNVMe(0) = %+v, want the scalar NVMe spec", s.PathNVMe(0))
	}

	s.IOPaths = SplitPaths(s.NVMe, 2)
	if s.NVMePathCount() != 2 {
		t.Fatalf("split path count = %d, want 2", s.NVMePathCount())
	}
	if s.PathNVMe(1) != s.IOPaths[1] {
		t.Errorf("PathNVMe(1) = %+v, want lane 1", s.PathNVMe(1))
	}
	if s.PathNVMe(7) != s.NVMe {
		t.Errorf("out-of-range PathNVMe falls back to %+v, want the scalar spec", s.PathNVMe(7))
	}
	const elems = 4096
	wantFetch := s.IOPaths[0].ReadTime(superchipNVMeBytesPerElem * elems)
	if got := s.NVMePathFetchTime(0, elems); got != wantFetch {
		t.Errorf("NVMePathFetchTime(0) = %v, want %v", got, wantFetch)
	}
	wantFlush := s.IOPaths[1].WriteTime(superchipNVMeBytesPerElem * elems)
	if got := s.NVMePathFlushTime(1, elems); got != wantFlush {
		t.Errorf("NVMePathFlushTime(1) = %v, want %v", got, wantFlush)
	}
}
