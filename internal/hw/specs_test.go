package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Ratios(t *testing.T) {
	// The paper's Table 1 GPU/CPU FLOPS ratios: DGX-2 ~60.39,
	// DGX-A100 ~135.65, GH200 ~330.
	cases := []struct {
		chip Chip
		want float64
	}{
		{DGX2(), 60.39},
		{DGXA100(), 135.65},
		{GH200(), 330.0},
	}
	for _, c := range cases {
		got := c.chip.FLOPSRatio()
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("%s FLOPS ratio = %.2f, want ~%.2f", c.chip.Name, got, c.want)
		}
	}
}

func TestTable1Bandwidths(t *testing.T) {
	gh := GH200()
	if gh.CPU.MemBW != 500*GB {
		t.Errorf("Grace CPU BW = %.0f GB/s, want 500", gh.CPU.MemBW/GB)
	}
	if got := gh.Link.PeakBW * 2; got != 900*GB { // 450 per direction
		t.Errorf("C2C total BW = %.0f GB/s, want 900", got/GB)
	}
	if DGX2().Link.PeakBW != 32*GB {
		t.Errorf("DGX-2 link = %.0f, want 32 GB/s", DGX2().Link.PeakBW/GB)
	}
	if DGXA100().Link.PeakBW != 64*GB {
		t.Errorf("DGX-A100 link = %.0f, want 64 GB/s", DGXA100().Link.PeakBW/GB)
	}
}

func TestRegistryOrderAndNames(t *testing.T) {
	reg := Registry()
	want := []string{"DGX-2", "DGX-A100", "GH200"}
	if len(reg) != len(want) {
		t.Fatalf("registry size %d, want %d", len(reg), len(want))
	}
	for i, c := range reg {
		if c.Name != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, c.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("GH200")
	if err != nil || c.Name != "GH200" {
		t.Fatalf("ByName(GH200) = %v, %v", c, err)
	}
	if _, err := ByName("TPUv9"); err == nil {
		t.Fatal("ByName(TPUv9) should fail")
	}
}

func TestGH200NVL2HasSmallerDDR(t *testing.T) {
	if GH200NVL2().CPU.MemBytes != 240*GiB {
		t.Errorf("NVL2 DDR = %d GiB, want 240", GH200NVL2().CPU.MemBytes/GiB)
	}
	if GH200().CPU.MemBytes != 480*GiB {
		t.Errorf("GH200 DDR = %d GiB, want 480", GH200().CPU.MemBytes/GiB)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	l := NVLinkC2C()
	f := func(a, b uint32) bool {
		sa, sb := int64(a%(1<<28))+1, int64(b%(1<<28))+1
		if sa > sb {
			sa, sb = sb, sa
		}
		return l.TransferTime(sa, HostToDevice, Pinned) <= l.TransferTime(sb, HostToDevice, Pinned)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveBWSaturates(t *testing.T) {
	l := NVLinkC2C()
	small := l.EffectiveBW(1*MiB, HostToDevice, Pinned)
	big := l.EffectiveBW(64*MiB, HostToDevice, Pinned)
	if small >= big {
		t.Errorf("1MB bw %.0f >= 64MB bw %.0f", small/GB, big/GB)
	}
	// Fig. 7: small tensors as low as ~50-100 GB/s, 64 MB near plateau.
	if small > 150*GB {
		t.Errorf("1MB effective bw %.0f GB/s, expected <150 (latency bound)", small/GB)
	}
	if big < 0.8*l.PeakBW {
		t.Errorf("64MB effective bw %.0f GB/s, expected >80%% of peak %.0f", big/GB, l.PeakBW/GB)
	}
}

func TestSaturationKneeNear64MB(t *testing.T) {
	// §4.3: "C2C bandwidth increases with tensor size until saturation
	// occurs at approximately 64 MB".
	sat := NVLinkC2C().SaturationSize(0.85, HostToDevice)
	if sat < 16*MiB || sat > 128*MiB {
		t.Errorf("85%%-saturation size = %d MiB, want within [16,128] MiB", sat/MiB)
	}
}

func TestUnpinnedSlowerThanPinned(t *testing.T) {
	l := NVLinkC2C()
	f := func(a uint32) bool {
		s := int64(a%(1<<28)) + 1024
		return l.TransferTime(s, DeviceToHost, Unpinned) > l.TransferTime(s, DeviceToHost, Pinned)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestD2HAsymmetry(t *testing.T) {
	l := NVLinkC2C()
	d2h := l.EffectiveBW(128*MiB, DeviceToHost, Pinned)
	h2d := l.EffectiveBW(128*MiB, HostToDevice, Pinned)
	if d2h <= h2d {
		t.Errorf("expected D2H (%.0f) > H2D (%.0f) per Fig. 7", d2h/GB, h2d/GB)
	}
}

func TestBandwidthSweepShape(t *testing.T) {
	pts := NVLinkC2C().BandwidthSweep(256 * MiB)
	if len(pts) < 8 {
		t.Fatalf("sweep has %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].H2DBps < pts[i-1].H2DBps {
			t.Errorf("H2D bandwidth not monotone at %d MiB", pts[i].SizeBytes/MiB)
		}
	}
}

func TestCollectiveTime(t *testing.T) {
	link := NVLink4()
	size := int64(1 * GiB)
	ar := CollectiveTime(AllReduce, 4, size, link)
	ag := CollectiveTime(AllGather, 4, size, link)
	rs := CollectiveTime(ReduceScatter, 4, size, link)
	if ar <= ag || ar <= rs {
		t.Errorf("all-reduce (%.3f) should cost more than all-gather (%.3f)/reduce-scatter (%.3f)", ar, ag, rs)
	}
	if got := CollectiveTime(AllReduce, 1, size, link); got != 0 {
		t.Errorf("1-rank collective = %v, want 0", got)
	}
	// Volume check: 4-rank all-gather moves 3/4 of size.
	wantMin := 0.75 * float64(size) / link.PeakBW
	if ag < wantMin {
		t.Errorf("all-gather %.4fs below bandwidth bound %.4fs", ag, wantMin)
	}
}

func TestAdamStepTimeOrdering(t *testing.T) {
	c := GH200()
	n := int64(1e9)
	naive := AdamStepTime(c, AdamNaive, n)
	cpu := AdamStepTime(c, AdamCPU, n)
	grace := AdamStepTime(c, AdamGrace, n)
	gpu := AdamStepTime(c, AdamGPU, n)
	if !(naive > cpu && cpu > grace && grace > gpu) {
		t.Errorf("ordering violated: naive=%v cpu=%v grace=%v gpu=%v", naive, cpu, grace, gpu)
	}
	// Table 3 ratios at 1B params: PT-CPU/GraceAdam ≈ 3.5, CPU-Adam/GraceAdam ≈ 1.2-1.3.
	if r := naive / grace; r < 2.8 || r > 4.2 {
		t.Errorf("PT-CPU/GraceAdam ratio %.2f, want ~3.5", r)
	}
	if r := cpu / grace; r < 1.1 || r > 1.5 {
		t.Errorf("CPU-Adam/GraceAdam ratio %.2f, want ~1.27", r)
	}
	// Table 3 magnitude: GraceAdam 1B ≈ 0.082 s.
	if grace < 0.05 || grace > 0.12 {
		t.Errorf("GraceAdam 1B = %.3fs, want ≈0.082s", grace)
	}
}

func TestAdamStepTimeLinearInParams(t *testing.T) {
	c := GH200()
	f := func(a uint32) bool {
		n := int64(a%1000)*1e6 + 1e6
		t1 := AdamStepTime(c, AdamGrace, n)
		t2 := AdamStepTime(c, AdamGrace, 2*n)
		return math.Abs(t2-2*t1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGEMMEfficiencyMonotoneInHidden(t *testing.T) {
	prev := 0.0
	for _, h := range []int{1024, 2048, 3072, 4096, 8192, 16384} {
		e := GEMMEfficiency(h, 1024)
		if e <= prev {
			t.Errorf("efficiency not increasing at hidden %d", h)
		}
		if e > GEMMEfficiencyMax {
			t.Errorf("efficiency %.3f exceeds max", e)
		}
		prev = e
	}
}

func TestAchievableFLOPSCalibration(t *testing.T) {
	// Table 2 best throughput is 238.9 TFLOPS on a 5B model
	// (hidden 3072); achievable FLOPS must exceed that for it to be
	// reachable, with margin for residual idle time.
	got := AchievableGPUFLOPS(GH200(), 3072, 1024)
	if got < 230e12 || got > 280e12 {
		t.Errorf("achievable at hidden 3072 = %.0f TFLOPS, want ~240-260", got/1e12)
	}
}

func TestCastTimeGPUFasterThanCPU(t *testing.T) {
	c := GH200()
	for _, n := range []int64{1 << 20, 1 << 24, 1 << 28} {
		if CastTime(c, true, n) >= CastTime(c, false, n) {
			t.Errorf("GPU cast should beat CPU cast at n=%d", n)
		}
	}
}

func TestClusterTopology(t *testing.T) {
	cl := NewGH200Cluster(8, 2)
	if cl.TotalChips() != 16 {
		t.Errorf("chips = %d, want 16", cl.TotalChips())
	}
	if cl.TotalGPUMem() != 16*96*GiB {
		t.Errorf("gpu mem = %d", cl.TotalGPUMem())
	}
	if cl.TotalCPUMem() != 16*240*GiB {
		t.Errorf("cpu mem = %d GiB, want 16*240", cl.TotalCPUMem()/GiB)
	}
	if cl.Network.Name != "Slingshot-11" {
		t.Errorf("network = %s", cl.Network.Name)
	}
}

func TestClusterFor(t *testing.T) {
	if c := ClusterFor(1); c.TotalChips() != 1 || c.Node.Chip.CPU.MemBytes != 480*GiB {
		t.Errorf("ClusterFor(1) wrong: %v", c)
	}
	if c := ClusterFor(4); c.TotalChips() != 4 || c.Node.Chip.CPU.MemBytes != 240*GiB {
		t.Errorf("ClusterFor(4) wrong: %v", c)
	}
	if c := ClusterFor(16); c.TotalChips() != 16 {
		t.Errorf("ClusterFor(16) = %d chips", c.TotalChips())
	}
}

func TestDataParallelLink(t *testing.T) {
	cl := NewGH200Cluster(4, 4)
	if l := cl.DataParallelLink(4); l.Name != "NVLink4" {
		t.Errorf("intra-node DP should use NVLink, got %s", l.Name)
	}
	if l := cl.DataParallelLink(16); l.Name != "Slingshot-11" {
		t.Errorf("inter-node DP should use Slingshot, got %s", l.Name)
	}
}

func TestNUMABinding(t *testing.T) {
	n := NewGH200Node(4)
	good := n.BindRanks()
	bad := n.MisboundRanks()
	if len(good) != 4 || len(bad) != 4 {
		t.Fatalf("binding lengths %d/%d", len(good), len(bad))
	}
	for i, b := range good {
		if !b.Local || b.CoreStart != i*72 {
			t.Errorf("rank %d binding wrong: %+v", i, b)
		}
	}
	for _, b := range bad {
		if b.Local {
			t.Errorf("misbound rank %d reported local", b.Rank)
		}
	}
	// Misbinding must hurt the host link substantially.
	localT := n.HostLinkFor(good[0]).TransferTime(64*MiB, DeviceToHost, Pinned)
	crossT := n.HostLinkFor(bad[0]).TransferTime(64*MiB, DeviceToHost, Pinned)
	if crossT < 3*localT {
		t.Errorf("cross-NUMA transfer %.6f not ≫ local %.6f", crossT, localT)
	}
}

func TestDirectionAndPinningStrings(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" {
		t.Error("direction strings")
	}
	if Pinned.String() != "pinned" || Unpinned.String() != "unpinned" {
		t.Error("pinning strings")
	}
	for k := AllReduce; k <= Broadcast; k++ {
		if k.String() == "unknown" {
			t.Errorf("collective %d has no name", k)
		}
	}
	for _, a := range []AdamImpl{AdamNaive, AdamCPU, AdamGrace, AdamGPU} {
		if a.String() == "unknown" {
			t.Errorf("adam impl %d has no name", a)
		}
	}
}
