package hw

// Calibration constants. Each constant models one physical mechanism and is
// set once, here, with its justification. Figures are regenerated from
// these shared constants; no experiment overrides them.
const (
	// GEMMEfficiencyMax is the fraction of peak tensor-core FLOPS a large
	// transformer layer achieves end-to-end (attention softmax, layernorm
	// and other non-GEMM work included). The paper's own best observed
	// throughput is ~239 TFLOPS on a 990 TFLOPS part at hidden 3072
	// (Table 2) and ~55% MFU at hidden 5120 with huge sequence lengths
	// (Fig. 12), so achievable efficiency grows with arithmetic
	// intensity; 0.62 is the asymptote of that curve.
	GEMMEfficiencyMax = 0.62

	// GEMMEfficiencyHalfHidden is the hidden size at which a transformer
	// reaches half of GEMMEfficiencyMax. Calibrated so hidden=3072 lands
	// near the paper's 239 TFLOPS (≈24% of peak) and hidden=8192 near
	// 40%+ of peak.
	GEMMEfficiencyHalfHidden = 4800.0

	// SeqEfficiencyBoost: long sequences raise GEMM arithmetic intensity;
	// efficiency multiplies by seq/(seq+SeqEfficiencyHalf) normalized to
	// 1.0 at seq 1024 (the single-chip evaluation default).
	SeqEfficiencyHalf = 512.0

	// CPUAdamBytesPerParam is DRAM traffic per parameter for a fused
	// mixed-precision Adam step on the CPU: read fp32 master param,
	// momentum, variance, fp32 grad (16 B), write back param, momentum,
	// variance (12 B), write fp16 copy (2 B), read for cast (4 B) ≈ 34 B.
	// The optimizer is memory-bandwidth-bound on Grace (§4.6).
	CPUAdamBytesPerParam = 34.0

	// Optimizer-efficiency fractions: fraction of CPU memory bandwidth
	// each Adam implementation sustains. Ratios are calibrated to the
	// paper's Table 3 (PT-CPU : CPU-Adam : GraceAdam = 3.5 : 1.27 : 1 at
	// 1B params) and to our own measured Go kernels (optim package).
	GraceAdamEfficiency  = 0.80 // SVE-style unrolled+fused, near-BW
	CPUAdamEfficiency    = 0.63 // x86-blocked design ported to ARM
	NaiveAdamEfficiency  = 0.23 // PyTorch-native scalar loop
	GPUAdamEfficiencyHBM = 0.75 // fused GPU Adam, HBM-bound

	// UnpinnedBWFraction is the fraction of link peak sustained when a
	// transfer bounces through a pageable (unpinned) host buffer, as the
	// cast-on-CPU path does (§4.5). Measured GH200 pageable-copy rates
	// are roughly a third of pinned DMA.
	UnpinnedBWFraction = 0.35

	// UnpinnedSetupS is the extra allocation+fault latency per unpinned
	// staging buffer.
	UnpinnedSetupS = 40e-6

	// CastBytesPerElemCPU: CPU-side fp16<->fp32 conversion is memory
	// bound; traffic = read 2/4 B + write 4/2 B = 6 B per element.
	CastBytesPerElemCPU = 6.0

	// CastCPUEfficiency is the fraction of CPU DRAM bandwidth the
	// vectorized conversion kernel sustains.
	CastCPUEfficiency = 0.70

	// CastGPUEfficiency: same kernel on the GPU runs at HBM rate.
	CastGPUEfficiency = 0.85

	// KernelLaunchS is the per-kernel launch/driver overhead. It is what
	// makes per-layer synchronous designs (FSDP-Offload) slow even on a
	// fast link.
	KernelLaunchS = 8e-6

	// CPUDispatchPerBucketS is the host-side dispatch cost per offloaded
	// bucket (queueing, framework dispatch, thread wake-up) paid before
	// the fused optimizer kernel runs. With PCIe-era small buckets this
	// per-bucket tax accumulates into a visible CPU-phase extension —
	// one of the two effects bucketization repartitioning removes
	// (§4.3).
	CPUDispatchPerBucketS = 0.4e-3

	// FSDPSyncPerLayerS is the host-side blocking synchronization FSDP's
	// CPU-offload path performs per layer per pass (cudaStreamSynchronize
	// + Python dispatch). Empirically dominated by host latency, not
	// bandwidth; this is why FSDP-Offload stays below 15 TFLOPS in
	// Fig. 10 regardless of link speed.
	FSDPSyncPerLayerS = 4e-3

	// ZeROInfinityBucketBytes is ZeRO-Infinity's default swap block
	// (DeepSpeed's aio_block_size default of 1 MiB). Its PCIe-era tuning
	// uses small buffers, which on C2C stay latency-bound — "bandwidth
	// can drop to as low as 50GB/s with small tensor sizes" (§5.2).
	ZeROInfinityBucketBytes = 1 * MiB

	// ZeROOffloadBucketBytes is DeepSpeed ZeRO-Offload's default CPU
	// offload bucket (tuned for PCIe).
	ZeROOffloadBucketBytes = 8 * MiB

	// SuperOffloadBucketBytes is the paper's chosen bucket: the C2C
	// saturation knee (§4.3, Fig. 7).
	SuperOffloadBucketBytes = 64 * MiB

	// ActivationBytesPerTokenPerLayerFP16 approximates the fp16
	// activation working set retained per token per transformer layer
	// without checkpointing (hidden-size multiplier applied separately):
	// ~34 * hidden bytes covers QKV, attention probs at moderate seq,
	// MLP intermediates (4x hidden), and residuals.
	ActivationBytesPerTokenPerLayerFP16 = 34.0

	// CheckpointActivationFraction is the fraction of activation memory
	// retained under full activation checkpointing (boundary tensors
	// only).
	CheckpointActivationFraction = 1.0 / 17.0

	// RecomputeOverheadFactor is the extra forward pass activation
	// checkpointing adds to iteration compute: fwd(2) + recompute(2) +
	// bwd(4) = 8 units vs 6 ⇒ 4/3 on total compute (§5.2 cites ~33%
	// throughput loss).
	RecomputeOverheadFactor = 4.0 / 3.0

	// GPUMemoryOverheadBytes reserves HBM for CUDA context, workspace,
	// fragmentation and framework buffers.
	GPUMemoryOverheadBytes = 6 * GiB

	// CPUMemoryOverheadBytes reserves DDR for the OS, framework, and
	// dataloader.
	CPUMemoryOverheadBytes = 16 * GiB

	// NUMAMisbindPenalty multiplies host-link latency and divides
	// bandwidth when a process is bound to the wrong Superchip's cores so
	// traffic crosses the inter-socket fabric (§4.7 "NUMA binding").
	NUMAMisbindBWFraction = 0.15
	NUMAMisbindExtraLatS  = 60e-6

	// NUMAMisbindCPUBWFraction is the fraction of local DDR bandwidth a
	// misbound process sees for its own memory traffic (every optimizer
	// access crosses the socket fabric), which is what makes misbinding
	// hurt even when transfers stay overlapped.
	NUMAMisbindCPUBWFraction = 0.4

	// ValidationCPUFraction is the share of CPU cores the STV background
	// validator uses while the GPU runs the next forward pass (§4.4).
	ValidationCPUFraction = 0.25
)

// GEMMEfficiency returns the achievable fraction of GPU peak FLOPS for a
// transformer with the given hidden size and sequence length.
func GEMMEfficiency(hidden int, seq int) float64 {
	h := float64(hidden)
	eff := GEMMEfficiencyMax * h / (h + GEMMEfficiencyHalfHidden)
	s := float64(seq)
	norm := 1024.0 / (1024.0 + SeqEfficiencyHalf)
	eff *= (s / (s + SeqEfficiencyHalf)) / norm
	if eff > GEMMEfficiencyMax {
		eff = GEMMEfficiencyMax
	}
	return eff
}

// AchievableGPUFLOPS is the end-to-end GPU throughput for a transformer
// workload on the given chip.
func AchievableGPUFLOPS(c Chip, hidden, seq int) float64 {
	return c.GPU.PeakFLOPS * GEMMEfficiency(hidden, seq)
}

// AdamImpl selects one of the three optimizer implementations compared in
// Table 3.
type AdamImpl int

const (
	AdamNaive AdamImpl = iota // PyTorch-native CPU Adam
	AdamCPU                   // DeepSpeed CPU-Adam (x86-blocked) on ARM
	AdamGrace                 // the paper's GraceAdam (SVE)
	AdamGPU                   // fused GPU Adam (for GPU-resident buckets)
)

func (a AdamImpl) String() string {
	switch a {
	case AdamNaive:
		return "PT-CPU"
	case AdamCPU:
		return "CPU-Adam"
	case AdamGrace:
		return "GraceAdam"
	case AdamGPU:
		return "GPU-Adam"
	}
	return "unknown"
}

// AdamStepTime returns the optimizer-step wall time for nParams parameters
// on chip c with the chosen implementation. CPU implementations are
// memory-bandwidth bound (§4.6); the GPU implementation is HBM bound.
func AdamStepTime(c Chip, impl AdamImpl, nParams int64) float64 {
	traffic := float64(nParams) * CPUAdamBytesPerParam
	switch impl {
	case AdamNaive:
		return traffic / (c.CPU.MemBW * NaiveAdamEfficiency)
	case AdamCPU:
		return traffic / (c.CPU.MemBW * CPUAdamEfficiency)
	case AdamGrace:
		return traffic / (c.CPU.MemBW * GraceAdamEfficiency)
	case AdamGPU:
		return traffic / (c.GPU.MemBW * GPUAdamEfficiencyHBM)
	}
	return 0
}

// CPUCastFused reports whether the chip's CPU optimizer consumes fp16
// inputs in-register at no extra memory-pass cost. DeepSpeed's AVX CPU-Adam
// does this on x86; the ARM port the paper starts from does not, paying a
// separate conversion pass through an unpinned staging buffer (§4.5) —
// which is why the casting trade-off flips on Superchips.
func CPUCastFused(c Chip) bool { return !c.CPU.SVE }

// CastTime returns the time to convert n elements between fp16 and fp32 on
// the CPU or GPU side of chip c (§4.5, Fig. 9).
func CastTime(c Chip, onGPU bool, nElems int64) float64 {
	traffic := float64(nElems) * CastBytesPerElemCPU
	if onGPU {
		return KernelLaunchS + traffic/(c.GPU.MemBW*CastGPUEfficiency)
	}
	return traffic / (c.CPU.MemBW * CastCPUEfficiency)
}
