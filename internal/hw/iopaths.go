package hw

// Multi-path flash modeling (MLP-Offload). The single-lane NVMeSpec
// serializes every transfer on one device timeline; IOPaths splits the
// same tier into N independently scheduled paths so fetches and
// write-behind flushes can proceed concurrently on different lanes. The
// striped aggregate model answers "what if one transfer spanned every
// lane at once", while per-path scheduling (least-loaded-clock dispatch,
// done by the consumers in internal/stv and internal/place) answers
// "what does concurrency across whole records buy".

// IOPaths is the flash tier as a set of independently scheduled NVMe
// paths. Index order is the dispatch tie-break order and is significant.
type IOPaths []NVMeSpec

// SplitPaths divides one NVMe array into n equal, independently
// scheduled lanes: each lane carries 1/n of the array's bandwidth and
// capacity at the array's latency, so total hardware is conserved and
// Aggregate of the result models the original spec (up to latency, which
// every lane pays independently).
func SplitPaths(spec NVMeSpec, n int) IOPaths {
	if n < 1 {
		n = 1
	}
	lane := spec
	lane.ReadBW = spec.ReadBW / float64(n)
	lane.WriteBW = spec.WriteBW / float64(n)
	lane.Capacity = spec.Capacity / int64(n)
	out := make(IOPaths, n)
	for i := range out {
		out[i] = lane
	}
	return out
}

// NodeIOPaths splits the node NVMe RAID into n independently scheduled
// lanes — the facade's -io-paths model. NodeIOPaths(1) is the RAID as a
// single path, matching the legacy single-lane store's spec.
func NodeIOPaths(n int) IOPaths { return SplitPaths(NodeNVMe(), n) }

// Aggregate is the striped single-path equivalent of the path set:
// bandwidths and capacity sum, and a striped transfer pays the slowest
// lane's setup latency.
func (p IOPaths) Aggregate() NVMeSpec {
	agg := NVMeSpec{Name: "IO-paths"}
	if len(p) == 1 {
		return p[0]
	}
	for _, lane := range p {
		agg.ReadBW += lane.ReadBW
		agg.WriteBW += lane.WriteBW
		agg.Capacity += lane.Capacity
		if lane.LatencyS > agg.LatencyS {
			agg.LatencyS = lane.LatencyS
		}
	}
	return agg
}

// ReadTime returns seconds to read size bytes striped across every lane
// (each lane carries its bandwidth-proportional share concurrently).
func (p IOPaths) ReadTime(size int64) float64 { return p.Aggregate().ReadTime(size) }

// WriteTime returns seconds to write size bytes striped across every lane.
func (p IOPaths) WriteTime(size int64) float64 { return p.Aggregate().WriteTime(size) }
