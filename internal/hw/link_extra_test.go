package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPageableTierIsSlowest(t *testing.T) {
	l := NVLinkC2C()
	size := int64(256 * MiB)
	pinned := l.TransferTime(size, HostToDevice, Pinned)
	unpinned := l.TransferTime(size, HostToDevice, Unpinned)
	pageable := l.TransferTime(size, HostToDevice, Pageable)
	if !(pinned < unpinned && unpinned < pageable) {
		t.Errorf("tier ordering violated: pinned %.4f unpinned %.4f pageable %.4f",
			pinned, unpinned, pageable)
	}
	// Pageable is capped at PageableBW regardless of link speed.
	wantMin := float64(size) / PageableBW
	if pageable < wantMin {
		t.Errorf("pageable faster than the page-fault cap: %.4f < %.4f", pageable, wantMin)
	}
}

func TestPageableCapOnSlowLink(t *testing.T) {
	// On a link already slower than PageableBW, pageable adds latency
	// but cannot raise bandwidth.
	l := PCIe3x16() // 32 GB/s > 6 GB/s cap still applies
	fast := l.TransferTime(64*MiB, HostToDevice, Pinned)
	slow := l.TransferTime(64*MiB, HostToDevice, Pageable)
	if slow <= fast {
		t.Error("pageable should be slower even on PCIe")
	}
}

func TestPinningStrings(t *testing.T) {
	if Pageable.String() != "pageable" {
		t.Errorf("pageable string: %s", Pageable.String())
	}
}

func TestMinTransferFloor(t *testing.T) {
	if MinTransferFloor(0) != 1e-9 {
		t.Error("floor not applied")
	}
	if MinTransferFloor(5) != 5 {
		t.Error("floor clobbers real values")
	}
}

func TestCollectiveTimeMonotoneInSize(t *testing.T) {
	link := Slingshot11()
	f := func(a, b uint32) bool {
		sa := int64(a%(1<<26)) + 1
		sb := sa + int64(b%(1<<26)) + 1
		return CollectiveTime(AllReduce, 8, sa, link) <= CollectiveTime(AllReduce, 8, sb, link)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectiveVolumeFractions(t *testing.T) {
	// As n→∞ the per-rank all-gather volume approaches size/peak.
	link := NVLink4()
	size := int64(4 * GiB)
	t64 := CollectiveTime(AllGather, 64, size, link)
	want := float64(size) / link.PeakBW
	if math.Abs(t64-want)/want > 0.05 {
		t.Errorf("64-rank all-gather %.4f, asymptote %.4f", t64, want)
	}
}

func TestGB200IsFasterThanGH200(t *testing.T) {
	if GB200().GPU.PeakFLOPS <= GH200().GPU.PeakFLOPS {
		t.Error("GB200 should out-FLOP GH200")
	}
	if GB200().CPU.SVE != true {
		t.Error("GB200 keeps the Grace CPU")
	}
}

func TestLinkStringsAndChipString(t *testing.T) {
	if NVLinkC2C().String() == "" || GH200().String() == "" {
		t.Error("stringers empty")
	}
}
