// Package ulysses implements DeepSpeed-Ulysses-style sequence parallelism
// and its integration with SuperOffload (§4.7, "SuperOffload-Ulysses").
// The sequence dimension is split across S ranks; attention switches to
// head parallelism through two all-to-alls per layer per pass. Vanilla
// Ulysses keeps model states on the GPUs (ZeRO-1-style sharding, its
// release default), which caps sequence length; SuperOffload-Ulysses
// offloads optimizer states and weights with the adaptive weight-flow
// policy, freeing HBM for activations (§4.7) and reaching 8× longer
// sequences (Fig. 12).
package ulysses

import (
	"fmt"

	"superoffload/internal/hw"
	"superoffload/internal/model"
)

// SeqLadder is the sequence-length sweep of Fig. 12.
var SeqLadder = []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}

// System selects the sequence-parallel training stack.
type System int

const (
	// Vanilla is DeepSpeed-Ulysses with GPU-resident model states.
	Vanilla System = iota
	// SuperOffloadUlysses combines Ulysses with SuperOffload's
	// weight-flow offloading.
	SuperOffloadUlysses
)

func (s System) String() string {
	if s == Vanilla {
		return "Ulysses"
	}
	return "SuperOffload-Ulysses"
}

// Point is one bar of Fig. 12: a (system, seq) cell.
type Point struct {
	System System
	Seq    int
	Fits   bool
	MFU    float64
	IterS  float64
}

const (
	fragFactor = 1.1
	// attnPeakFrac is the fraction of tensor-core peak the fused
	// attention kernels reach on very long sequences (large, regular
	// tiles).
	attnPeakFrac = 0.85
	// attnEffHalfSeq is the sequence length at which attention kernels
	// reach half of attnPeakFrac.
	attnEffHalfSeq = 32768.0
	// flowWorkingBytes is SuperOffload-Ulysses's HBM working set:
	// streamed weight buckets, gradient staging, all-to-all buffers.
	flowWorkingBytes = int64(3) << 30
)

// statesBytesVanilla is per-rank GPU state memory for vanilla Ulysses:
// fp16 params + fp16 grads replicated, optimizer states sharded (ZeRO-1).
func statesBytesVanilla(p int64, s int) float64 {
	return (4*float64(p) + 12*float64(p)/float64(s)) * fragFactor
}

// actBytesPerRank is the checkpointed activation footprint per rank: the
// sequence dimension shards S ways.
func actBytesPerRank(m model.Config, seq, s int, ckpt bool) float64 {
	return float64(m.ActivationBytes(1, seq, ckpt)) / float64(s)
}

// Fits reports whether the (system, seq) cell fits the cluster.
func Fits(sys System, cl hw.Cluster, m model.Config, seq int) bool {
	s := cl.TotalChips()
	chip := cl.Node.Chip
	hbm := float64(chip.GPU.MemBytes - hw.GPUMemoryOverheadBytes)
	act := actBytesPerRank(m, seq, s, true)
	switch sys {
	case Vanilla:
		return statesBytesVanilla(m.Params(), s)+act <= hbm
	case SuperOffloadUlysses:
		if float64(flowWorkingBytes)+act > hbm {
			return false
		}
		cpu := m.Params()/int64(s)*model.BytesCPUStatesFull + hw.CPUMemoryOverheadBytes
		return cpu <= chip.CPU.MemBytes
	}
	return false
}

// blendedEfficiency returns the achievable fraction of GPU peak for a
// long-sequence transformer: the dense GEMMs run at the hidden-size-bound
// efficiency while the attention products approach attnPeakFrac as the
// sequence grows; the blend weights by FLOP share.
func blendedEfficiency(m model.Config, seq int) float64 {
	tokens := float64(seq)
	dense := 2 * float64(m.Params()) * tokens
	attn := 4 * float64(m.Layers) * float64(m.Hidden) * float64(seq) * tokens
	denseEff := hw.GEMMEfficiency(m.Hidden, 1024)
	attnEff := attnPeakFrac * float64(seq) / (float64(seq) + attnEffHalfSeq)
	return (dense*denseEff + attn*attnEff) / (dense + attn)
}

// IterTime returns the per-iteration wall time for the cell (batch 1,
// full activation checkpointing — mandatory at these lengths).
func IterTime(sys System, cl hw.Cluster, m model.Config, seq int) float64 {
	s := cl.TotalChips()
	chip := cl.Node.Chip
	flops := m.IterFLOPs(1, seq) / float64(s)
	eff := blendedEfficiency(m, seq)
	compute := flops * 4.0 / 3.0 / (chip.GPU.PeakFLOPS * eff) // ckpt recompute

	// Two all-to-alls per layer per pass (4 per layer per iteration),
	// each moving the rank's fp16 activation shard.
	a2aBytes := int64(2 * seq / s * m.Hidden)
	link := cl.DataParallelLink(s)
	comm := 4 * float64(m.Layers) * hw.CollectiveTime(hw.AllToAll, s, a2aBytes, link)

	t := compute + comm
	if sys == SuperOffloadUlysses {
		// Weight streaming overlaps compute at these arithmetic
		// intensities (Eq. 1-3 efficiency ≈ 1); only the per-layer
		// tail and optimizer pipeline tail remain.
		t += hw.AdamStepTime(chip, hw.AdamGrace, m.Params()/int64(s)) * 0.1
	} else {
		// Vanilla Ulysses runs its (sharded) optimizer on the GPU.
		t += hw.AdamStepTime(chip, hw.AdamGPU, m.Params()/int64(s))
	}
	return t
}

// MFU returns model FLOPs utilization (recompute excluded, §5.2).
func MFU(sys System, cl hw.Cluster, m model.Config, seq int) float64 {
	t := IterTime(sys, cl, m, seq)
	if t <= 0 {
		return 0
	}
	flops := m.IterFLOPs(1, seq) / float64(cl.TotalChips())
	return flops / t / cl.Node.Chip.GPU.PeakFLOPS
}

// Sweep produces the Fig. 12 series for one panel (model × cluster).
func Sweep(cl hw.Cluster, m model.Config) []Point {
	var out []Point
	for _, sys := range []System{Vanilla, SuperOffloadUlysses} {
		for _, seq := range SeqLadder {
			p := Point{System: sys, Seq: seq, Fits: Fits(sys, cl, m, seq)}
			if p.Fits {
				p.IterS = IterTime(sys, cl, m, seq)
				p.MFU = MFU(sys, cl, m, seq)
			}
			out = append(out, p)
		}
	}
	return out
}

// MaxSeq returns the longest ladder entry that fits (0 when none).
func MaxSeq(sys System, cl hw.Cluster, m model.Config) int {
	max := 0
	for _, seq := range SeqLadder {
		if Fits(sys, cl, m, seq) {
			max = seq
		}
	}
	return max
}

func (p Point) String() string {
	if !p.Fits {
		return fmt.Sprintf("%s seq=%dK OOM", p.System, p.Seq>>10)
	}
	return fmt.Sprintf("%s seq=%dK MFU=%.2f", p.System, p.Seq>>10, p.MFU)
}
