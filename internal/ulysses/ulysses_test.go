package ulysses

import (
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/model"
)

func cfg13B() model.Config {
	m, err := model.ByName("13B")
	if err != nil {
		panic(err)
	}
	return m
}

func cfg30B() model.Config {
	m, err := model.ByName("30B")
	if err != nil {
		panic(err)
	}
	return m
}

func TestHeadline13BMillionTokens(t *testing.T) {
	// The paper's headline (§1, Fig. 12b): SuperOffload-Ulysses trains a
	// 13B model at 1M-token sequences on 8 GH200 at ~55% MFU.
	cl := hw.ClusterFor(8)
	m := cfg13B()
	if !Fits(SuperOffloadUlysses, cl, m, 1<<20) {
		t.Fatal("SuperOffload-Ulysses must fit 13B @ 1M tokens on 8 chips")
	}
	mfu := MFU(SuperOffloadUlysses, cl, m, 1<<20)
	if mfu < 0.45 || mfu > 0.75 {
		t.Errorf("MFU @1M = %.2f, paper reports 0.55", mfu)
	}
}

func Test8xLongerSequences(t *testing.T) {
	// Fig. 12: SuperOffload-Ulysses supports 8x longer sequences than
	// vanilla Ulysses (13B on 8 chips: 1M vs 128K).
	cl := hw.ClusterFor(8)
	m := cfg13B()
	so := MaxSeq(SuperOffloadUlysses, cl, m)
	v := MaxSeq(Vanilla, cl, m)
	if so != 1<<20 {
		t.Errorf("SuperOffload-Ulysses max seq = %dK, want 1024K", so>>10)
	}
	if v != 128<<10 {
		t.Errorf("Ulysses max seq = %dK, want 128K", v>>10)
	}
	if so/v != 8 {
		t.Errorf("ratio = %dx, paper says 8x", so/v)
	}
}

func TestVanillaOOMsWhereSuperOffloadFits(t *testing.T) {
	cl := hw.ClusterFor(8)
	m := cfg13B()
	for _, seq := range []int{256 << 10, 512 << 10, 1 << 20} {
		if Fits(Vanilla, cl, m, seq) {
			t.Errorf("vanilla Ulysses should OOM at %dK", seq>>10)
		}
		if !Fits(SuperOffloadUlysses, cl, m, seq) {
			t.Errorf("SuperOffload-Ulysses should fit %dK", seq>>10)
		}
	}
}

func TestMFUAdvantageWhereBothFit(t *testing.T) {
	// Fig. 12: "For sequence lengths that Ulysses can handle,
	// SuperOffload-Ulysses consistently achieves higher MFU."
	cl := hw.ClusterFor(8)
	m := cfg13B()
	for _, seq := range []int{32 << 10, 64 << 10, 128 << 10} {
		if !Fits(Vanilla, cl, m, seq) {
			continue
		}
		so := MFU(SuperOffloadUlysses, cl, m, seq)
		v := MFU(Vanilla, cl, m, seq)
		if so < v {
			t.Errorf("seq %dK: SO-Ulysses MFU %.3f < Ulysses %.3f", seq>>10, so, v)
		}
	}
}

func TestMFUGrowsWithSeq(t *testing.T) {
	cl := hw.ClusterFor(8)
	m := cfg13B()
	prev := 0.0
	for _, seq := range SeqLadder {
		mfu := MFU(SuperOffloadUlysses, cl, m, seq)
		if mfu < prev*0.95 {
			t.Errorf("MFU dropped sharply at %dK: %.3f -> %.3f", seq>>10, prev, mfu)
		}
		prev = mfu
	}
}

func Test30BPanel(t *testing.T) {
	// Fig. 12c: 30B on 8 Superchips — vanilla Ulysses cannot hold the
	// states at all; SuperOffload-Ulysses still reaches very long
	// sequences.
	cl := hw.ClusterFor(8)
	m := cfg30B()
	if v := MaxSeq(Vanilla, cl, m); v != 0 {
		t.Errorf("vanilla Ulysses 30B max seq = %dK, want OOM everywhere", v>>10)
	}
	if so := MaxSeq(SuperOffloadUlysses, cl, m); so < 512<<10 {
		t.Errorf("SuperOffload-Ulysses 30B max seq = %dK, want ≥512K", so>>10)
	}
}

func Test4ChipPanel(t *testing.T) {
	// Fig. 12a: 13B on 4 Superchips.
	cl := hw.ClusterFor(4)
	m := cfg13B()
	so := MaxSeq(SuperOffloadUlysses, cl, m)
	v := MaxSeq(Vanilla, cl, m)
	if so < 256<<10 {
		t.Errorf("SO-Ulysses 4-chip max = %dK, want ≥256K", so>>10)
	}
	if v >= so {
		t.Errorf("vanilla (%dK) should trail SO-Ulysses (%dK)", v>>10, so>>10)
	}
}

func TestSweepShape(t *testing.T) {
	pts := Sweep(hw.ClusterFor(8), cfg13B())
	if len(pts) != 2*len(SeqLadder) {
		t.Fatalf("sweep size %d", len(pts))
	}
	for _, p := range pts {
		if p.Fits && (p.MFU <= 0 || p.MFU > 1) {
			t.Errorf("bad MFU in %v", p)
		}
		if !p.Fits && p.MFU != 0 {
			t.Errorf("OOM cell has MFU: %v", p)
		}
		_ = p.String()
	}
}

func TestSystemStrings(t *testing.T) {
	if Vanilla.String() == SuperOffloadUlysses.String() {
		t.Error("system strings collide")
	}
}
