// Package fp16 implements IEEE 754 binary16 in software. Mixed-precision
// training (§4.5 of the paper) stores working weights and gradients in fp16
// while the optimizer runs in fp32; this package provides the conversions,
// the batch casting kernels whose placement the Superchip-aware casting
// policy decides, and the NaN/Inf scans the speculation-then-validation
// scheme performs during validation (§4.4).
package fp16

import "math"

// Num is one binary16 value: 1 sign bit, 5 exponent bits, 10 mantissa bits.
type Num uint16

const (
	signMask = 0x8000
	expMask  = 0x7C00
	fracMask = 0x03FF

	// PosInf and NegInf are the fp16 infinities produced on overflow.
	PosInf Num = 0x7C00
	NegInf Num = 0xFC00
	// QuietNaN is a canonical fp16 NaN.
	QuietNaN Num = 0x7E00

	// MaxValue is the largest finite fp16 magnitude (65504).
	MaxValue = 65504.0
	// MinNormal is the smallest positive normal fp16 (2^-14).
	MinNormal = 6.103515625e-05
)

// FromFloat32 converts with round-to-nearest-even; values above MaxValue
// overflow to infinity (the behaviour that makes loss-scale overflow checks
// necessary in mixed-precision training).
func FromFloat32(f float32) Num {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			return Num(sign | uint16(expMask) | 0x0200 | uint16(frac>>13))
		}
		return Num(sign | expMask)
	case exp == 0 && frac == 0:
		return Num(sign)
	}

	// Re-bias from 127 to 15.
	e := exp - 127 + 15
	if e >= 0x1F {
		// Overflow to infinity.
		return Num(sign | expMask)
	}
	if e <= 0 {
		// Subnormal or underflow to zero.
		if e < -10 {
			return Num(sign)
		}
		// Add implicit leading 1, shift into subnormal position.
		frac |= 0x800000
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		rounded := frac + half
		// Round-to-nearest-even on ties.
		if frac&(half*2-1) == half && rounded&(1<<shift) == 0 {
			rounded--
		}
		return Num(sign | uint16(rounded>>shift))
	}

	// Normal: round mantissa from 23 to 10 bits, nearest-even.
	out := uint32(e)<<10 | frac>>13
	rem := frac & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && out&1 == 1) {
		out++ // may carry into exponent; that is correct rounding behaviour
	}
	if out >= 0x7C00 {
		return Num(sign | expMask)
	}
	return Num(sign | uint16(out))
}

// Float32 converts back to fp32 exactly (binary16 ⊂ binary32).
func (n Num) Float32() float32 {
	sign := uint32(n&signMask) << 16
	exp := uint32(n&expMask) >> 10
	frac := uint32(n & fracMask)

	switch {
	case exp == 0x1F: // Inf/NaN
		return math.Float32frombits(sign | 0x7F800000 | frac<<13)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | e<<23 | frac<<13)
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | frac<<13)
}

// IsNaN reports whether n is any NaN encoding.
func (n Num) IsNaN() bool { return n&expMask == expMask && n&fracMask != 0 }

// IsInf reports whether n is ±Inf.
func (n Num) IsInf() bool { return n&expMask == expMask && n&fracMask == 0 }

// IsFinite reports a normal, subnormal or zero value.
func (n Num) IsFinite() bool { return n&expMask != expMask }

// Cast converts a fp32 slice to fp16, writing into dst (allocating when dst
// is too small) and returning it. This is the Move_fp16 payload producer.
func Cast(dst []Num, src []float32) []Num {
	if cap(dst) < len(src) {
		dst = make([]Num, len(src))
	}
	dst = dst[:len(src)]
	// 4-way unrolled main loop: the Go analogue of the SVE batch
	// conversion; keeps the conversion in registers.
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] = FromFloat32(src[i])
		dst[i+1] = FromFloat32(src[i+1])
		dst[i+2] = FromFloat32(src[i+2])
		dst[i+3] = FromFloat32(src[i+3])
	}
	for ; i < len(src); i++ {
		dst[i] = FromFloat32(src[i])
	}
	return dst
}

// Uncast converts fp16 back to fp32 into dst.
func Uncast(dst []float32, src []Num) []float32 {
	if cap(dst) < len(src) {
		dst = make([]float32, len(src))
	}
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] = src[i].Float32()
		dst[i+1] = src[i+1].Float32()
		dst[i+2] = src[i+2].Float32()
		dst[i+3] = src[i+3].Float32()
	}
	for ; i < len(src); i++ {
		dst[i] = src[i].Float32()
	}
	return dst
}

// ScanBad reports whether the fp16 slice contains any NaN or Inf — the
// overflow check mixed-precision training performs before applying an
// optimizer step, deferred to validation time under STV.
func ScanBad(xs []Num) bool {
	for _, x := range xs {
		if x&expMask == expMask {
			return true
		}
	}
	return false
}

// ScanBad32 is the fp32 variant used on master gradients.
func ScanBad32(xs []float32) bool {
	for _, x := range xs {
		// NaN or |x| = Inf ⇔ exponent all-ones.
		if math.Float32bits(x)&0x7F800000 == 0x7F800000 {
			return true
		}
	}
	return false
}

// RoundTripError returns |f - fp16(f)| for diagnostics; 0 for values
// exactly representable in binary16.
func RoundTripError(f float32) float64 {
	return math.Abs(float64(f) - float64(FromFloat32(f).Float32()))
}
