// Package fp16 implements IEEE 754 binary16 in software. Mixed-precision
// training (§4.5 of the paper) stores working weights and gradients in fp16
// while the optimizer runs in fp32; this package provides the conversions,
// the batch casting kernels whose placement the Superchip-aware casting
// policy decides, and the NaN/Inf scans the speculation-then-validation
// scheme performs during validation (§4.4).
//
// The conversion kernels are built for throughput: fp32→fp16 is a
// branch-light bit-arithmetic round (one well-predicted range test per
// element in the batch kernel), and fp16→fp32 is a 65536-entry lookup
// table, so Cast and Uncast stream slices instead of paying a per-scalar
// call with data-dependent branches.
package fp16

import "math"

// Num is one binary16 value: 1 sign bit, 5 exponent bits, 10 mantissa bits.
type Num uint16

const (
	signMask = 0x8000
	expMask  = 0x7C00
	fracMask = 0x03FF

	// PosInf and NegInf are the fp16 infinities produced on overflow.
	PosInf Num = 0x7C00
	NegInf Num = 0xFC00
	// QuietNaN is a canonical fp16 NaN.
	QuietNaN Num = 0x7E00

	// MaxValue is the largest finite fp16 magnitude (65504).
	MaxValue = 65504.0
	// MinNormal is the smallest positive normal fp16 (2^-14).
	MinNormal = 6.103515625e-05
)

// fp32 bit-pattern landmarks for the conversion kernels.
const (
	f16NormMin  = 0x38800000 // 2^-14, the smallest fp16 normal
	f16NormSpan = 0x0F000000 // width of the fp16 normal range in fp32 bits
	f16Overflow = 0x47800000 // 2^16: at or above, magnitudes round to Inf
	f32Inf      = 0x7F800000
	subMagic    = 0x3F000000 // 0.5f, the subnormal rounding shifter
	expRebias   = (127 - 15) << 23
)

// fromBits converts one fp32 bit pattern to fp16 bits with
// round-to-nearest-even in every range (normal, subnormal, and the
// overflow boundary), preserving NaN payloads where they fit.
func fromBits(b uint32) uint16 {
	sign := uint16(b>>16) & signMask
	ax := b & 0x7FFFFFFF
	switch {
	case ax >= f16Overflow:
		if ax > f32Inf {
			// NaN: keep the mantissa's top ten bits so the payload
			// survives the narrowing where it can.
			out := uint16(expMask) | uint16((ax>>13)&fracMask)
			if out&fracMask == 0 {
				out |= 0x0200 // payload lived entirely in the dropped bits
			}
			return sign | out
		}
		// Inf, and finite magnitudes ≥ 2^16 (everything past the 65520
		// halfway point, which the normal path below rounds up itself).
		return sign | expMask
	case ax < f16NormMin:
		// Subnormal or zero: adding 0.5 makes the FPU round the value at
		// the fp16 subnormal quantum 2^-24 in its native nearest-even
		// mode; the sum's low mantissa bits are then exactly the fp16
		// payload (a round-up at 2^-14 carries into the normal encoding,
		// which is the correct result there too).
		f := math.Float32frombits(ax) + 0.5
		return sign | uint16(math.Float32bits(f)-subMagic)
	}
	// Normal: rebias and round in one add — 0xFFF plus the kept
	// mantissa's low ("odd") bit rounds to nearest-even via the natural
	// carry, overflowing 65520 ties into the Inf encoding as IEEE
	// requires.
	round := 0xFFF + ((b >> 13) & 1)
	return sign | uint16((ax-expRebias+round)>>13)
}

// FromFloat32 converts with round-to-nearest-even; values above MaxValue
// overflow to infinity (the behaviour that makes loss-scale overflow checks
// necessary in mixed-precision training).
func FromFloat32(f float32) Num {
	return Num(fromBits(math.Float32bits(f)))
}

// widenBits is the bit-level fp16→fp32 expansion (exact: binary16 ⊂
// binary32). It exists to build uncastTable; the hot paths read the table.
func widenBits(n uint16) uint32 {
	sign := uint32(n&signMask) << 16
	exp := uint32(n&expMask) >> 10
	frac := uint32(n & fracMask)

	switch {
	case exp == 0x1F: // Inf/NaN
		return sign | f32Inf | frac<<13
	case exp == 0:
		if frac == 0 {
			return sign
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return sign | e<<23 | frac<<13
	}
	return sign | (exp-15+127)<<23 | frac<<13
}

// uncastTable maps every fp16 bit pattern to its fp32 bits: 256 KiB that
// turns the widening into a single load per element.
var uncastTable = buildUncastTable()

func buildUncastTable() *[1 << 16]uint32 {
	t := new([1 << 16]uint32)
	for i := range t {
		t[i] = widenBits(uint16(i))
	}
	return t
}

// Float32 converts back to fp32 exactly (binary16 ⊂ binary32).
func (n Num) Float32() float32 {
	return math.Float32frombits(uncastTable[n])
}

// IsNaN reports whether n is any NaN encoding.
func (n Num) IsNaN() bool { return n&expMask == expMask && n&fracMask != 0 }

// IsInf reports whether n is ±Inf.
func (n Num) IsInf() bool { return n&expMask == expMask && n&fracMask == 0 }

// IsFinite reports a normal, subnormal or zero value.
func (n Num) IsFinite() bool { return n&expMask != expMask }

// Cast converts a fp32 slice to fp16, writing into dst (allocating when dst
// is too small) and returning it. This is the Move_fp16 payload producer:
// the loop inlines the branch-free normal-range round (one range test per
// element, taken for every finite training value) and falls back to
// fromBits only for subnormals, overflows, Infs, and NaNs.
func Cast(dst []Num, src []float32) []Num {
	if cap(dst) < len(src) {
		dst = make([]Num, len(src))
	}
	dst = dst[:len(src)]
	for i, x := range src {
		b := math.Float32bits(x)
		ax := b & 0x7FFFFFFF
		if ax-f16NormMin < f16NormSpan { // fp16-normal range [2^-14, 2^16)
			round := 0xFFF + ((b >> 13) & 1)
			dst[i] = Num(uint16(b>>16)&signMask | uint16((ax-expRebias+round)>>13))
		} else {
			dst[i] = Num(fromBits(b))
		}
	}
	return dst
}

// Uncast converts fp16 back to fp32 into dst: one table load per element.
func Uncast(dst []float32, src []Num) []float32 {
	if cap(dst) < len(src) {
		dst = make([]float32, len(src))
	}
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] = math.Float32frombits(uncastTable[x])
	}
	return dst
}

// ScanBad reports whether the fp16 slice contains any NaN or Inf — the
// overflow check mixed-precision training performs before applying an
// optimizer step, deferred to validation time under STV.
func ScanBad(xs []Num) bool {
	for _, x := range xs {
		if x&expMask == expMask {
			return true
		}
	}
	return false
}

// ScanBad32 is the fp32 variant used on master gradients.
func ScanBad32(xs []float32) bool {
	for _, x := range xs {
		// NaN or |x| = Inf ⇔ exponent all-ones.
		if math.Float32bits(x)&f32Inf == f32Inf {
			return true
		}
	}
	return false
}

// RoundTripError returns |f - fp16(f)| for diagnostics; 0 for values
// exactly representable in binary16.
func RoundTripError(f float32) float64 {
	return math.Abs(float64(f) - float64(FromFloat32(f).Float32()))
}
