package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Num
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                         // max finite
		{6.103515625e-05, 0x0400},               // min normal
		{5.960464477539063e-08, 0x0001},         // min subnormal
		{float32(math.Inf(1)), PosInf},          //
		{float32(math.Inf(-1)), NegInf},         //
		{0.333251953125, 0x3555},                // nearest fp16 to 1/3
		{65536, PosInf},                         // overflow
		{1e-10, 0x0000},                         // underflow to zero
		{float32(math.Copysign(0, -1)), 0x8000}, // negative zero
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
}

func TestNaNPreserved(t *testing.T) {
	n := FromFloat32(float32(math.NaN()))
	if !n.IsNaN() {
		t.Fatalf("NaN not preserved: %#04x", n)
	}
	if !math.IsNaN(float64(n.Float32())) {
		t.Fatal("fp16 NaN does not decode to NaN")
	}
	if QuietNaN.IsInf() || !QuietNaN.IsNaN() {
		t.Fatal("QuietNaN classification")
	}
	if !PosInf.IsInf() || PosInf.IsNaN() || PosInf.IsFinite() {
		t.Fatal("PosInf classification")
	}
}

func TestRoundTripExactForFP16Representables(t *testing.T) {
	// Property: decode(encode(decode(bits))) is the identity for all
	// 65536 bit patterns (except NaN payload canonicalization is allowed
	// to preserve NaN-ness only).
	for i := 0; i < 1<<16; i++ {
		n := Num(i)
		f := n.Float32()
		back := FromFloat32(f)
		if n.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("bits %#04x: NaN lost", i)
			}
			continue
		}
		if back != n {
			t.Fatalf("bits %#04x -> %v -> %#04x", i, f, back)
		}
	}
}

func TestConversionMonotonic(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		// Clamp to finite fp16 range to avoid both mapping to Inf.
		clamp := func(x float32) float32 {
			if x > MaxValue {
				return MaxValue
			}
			if x < -MaxValue {
				return -MaxValue
			}
			return x
		}
		a, b = clamp(a), clamp(b)
		if a > b {
			a, b = b, a
		}
		return FromFloat32(a).Float32() <= FromFloat32(b).Float32()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: ties to even
	// mantissa (1.0, mantissa 0).
	halfway := float32(1.0 + 1.0/2048.0)
	if got := FromFloat32(halfway); got != 0x3C00 {
		t.Errorf("tie should round to even: got %#04x", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
	// (mantissa 2).
	halfway2 := float32(1.0 + 3.0/2048.0)
	if got := FromFloat32(halfway2); got != 0x3C02 {
		t.Errorf("tie should round to even: got %#04x", got)
	}
}

func TestRelativeErrorBound(t *testing.T) {
	// Property: for normal-range values, round-off is ≤ 2^-11 relative.
	f := func(a float32) bool {
		x := float32(math.Abs(float64(a)))
		if x < MinNormal || x > MaxValue || math.IsNaN(float64(x)) {
			return true
		}
		rel := RoundTripError(x) / float64(x)
		return rel <= 1.0/2048.0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCastUncastSlices(t *testing.T) {
	src := make([]float32, 1003) // not a multiple of 4: tail path covered
	for i := range src {
		src[i] = float32(i)*0.25 - 100
	}
	h := Cast(nil, src)
	back := Uncast(nil, h)
	if len(back) != len(src) {
		t.Fatalf("len %d != %d", len(back), len(src))
	}
	for i := range src {
		if math.Abs(float64(back[i]-src[i])) > 0.06 { // 0.25-grid values near 150 are representable
			t.Fatalf("elem %d: %v -> %v", i, src[i], back[i])
		}
	}
	// Reuse buffers.
	h2 := Cast(h, src[:10])
	if len(h2) != 10 {
		t.Errorf("Cast reuse wrong length %d", len(h2))
	}
}

func TestScanBad(t *testing.T) {
	ok := []Num{FromFloat32(1), FromFloat32(-2), FromFloat32(0)}
	if ScanBad(ok) {
		t.Error("clean slice flagged")
	}
	if !ScanBad(append(append([]Num{}, ok...), PosInf)) {
		t.Error("Inf not flagged")
	}
	if !ScanBad([]Num{QuietNaN}) {
		t.Error("NaN not flagged")
	}
	if ScanBad32([]float32{1, 2, 3}) {
		t.Error("clean fp32 flagged")
	}
	if !ScanBad32([]float32{1, float32(math.Inf(1))}) {
		t.Error("fp32 Inf not flagged")
	}
	if !ScanBad32([]float32{float32(math.NaN())}) {
		t.Error("fp32 NaN not flagged")
	}
}

func TestOverflowToInfSemantics(t *testing.T) {
	// The loss-scaling failure mode: big gradient values overflow to Inf
	// in fp16 and must be caught by ScanBad.
	grads := []float32{1e5, -2e5, 3.0}
	h := Cast(nil, grads)
	if !ScanBad(h) {
		t.Fatal("overflowed gradients not detected")
	}
	if h[0] != PosInf || h[1] != NegInf {
		t.Fatalf("overflow encodings: %#04x %#04x", h[0], h[1])
	}
}

func TestSubnormalRoundTrip(t *testing.T) {
	for i := 1; i < 1024; i++ {
		n := Num(i) // all positive subnormals
		if FromFloat32(n.Float32()) != n {
			t.Fatalf("subnormal %#04x does not round-trip", i)
		}
	}
}
