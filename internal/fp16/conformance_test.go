package fp16

// Conformance suite for the fp32→fp16 rounding kernels: every claim is
// checked against an independent float64 reference built on
// math.RoundToEven, plus the exhaustive bit-level round-trip. This is the
// suite that pins the subnormal tie-to-even fix (ties used to round to
// odd) and the batch-kernel ≡ scalar-kernel agreement.

import (
	"math"
	"math/rand"
	"testing"
)

// refFromFloat32 is the reference conversion: float64 arithmetic and
// math.RoundToEven, structured nothing like the production bit kernels.
func refFromFloat32(f float32) Num {
	v := float64(f)
	var sign Num
	if math.Signbit(v) {
		sign = signMask
	}
	if math.IsNaN(v) {
		// Payload rule mirrored from fromBits: keep the top ten mantissa
		// bits, quiet the result only if they are all zero.
		b := math.Float32bits(f)
		out := Num(expMask) | Num((b>>13)&fracMask)
		if out&fracMask == 0 {
			out |= 0x0200
		}
		return sign | out
	}
	a := math.Abs(v)
	if math.IsInf(a, 0) {
		return sign | PosInf
	}
	if a < 0x1p-14 {
		// Subnormal range: quantize at 2^-24. A round-up to 1024 lands on
		// the min-normal encoding, which is the correct neighbour.
		q := math.RoundToEven(a * 0x1p24)
		return sign | Num(uint16(q))
	}
	frac, exp := math.Frexp(a) // a = frac·2^exp, frac ∈ [0.5, 1)
	e := exp - 1
	q := math.RoundToEven(frac * 0x1p11) // 1.m mantissa scaled by 2^10
	if q == 2048 {
		q, e = 1024, e+1
	}
	if e > 15 {
		return sign | PosInf
	}
	return sign | Num(uint16(e+15))<<10 | (Num(uint16(q)) - 1024)
}

// TestExhaustiveRoundTripExact requires decode→encode to be the exact
// identity on all 65536 bit patterns — including every NaN payload, which
// the old kernel canonicalized.
func TestExhaustiveRoundTripExact(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		n := Num(i)
		if got := FromFloat32(n.Float32()); got != n {
			t.Fatalf("bits %#04x -> %v -> %#04x (not identity)", i, n.Float32(), got)
		}
	}
}

// TestSubnormalTieSweep sweeps k·2^-25: odd k are exact ties between
// adjacent subnormal quanta and must round to the even code. The seed
// kernel rounded these to odd.
func TestSubnormalTieSweep(t *testing.T) {
	for k := 0; k <= 4096; k++ {
		f := float32(k) * 0x1p-25
		for _, s := range []float32{f, -f} {
			want := refFromFloat32(s)
			if got := FromFloat32(s); got != want {
				t.Fatalf("k=%d (%v): got %#04x, want %#04x", k, s, got, want)
			}
		}
		if k%2 == 1 && k < 2048 {
			if got := FromFloat32(f); got&1 != 0 {
				t.Fatalf("tie k=%d rounded to odd code %#04x", k, got)
			}
		}
	}
	// The first tie concretely: 3·2^-25 sits halfway between subnormal
	// codes 1 and 2 and must choose 2 (even).
	if got := FromFloat32(3 * 0x1p-25); got != 0x0002 {
		t.Fatalf("3·2^-25 = %#04x, want 0x0002 (round half to even)", got)
	}
}

// TestSubnormalNormalBoundary walks fp32 neighbours of k·2^-14 across the
// subnormal→normal seam, where the carry out of the subnormal quantum must
// produce the normal encoding.
func TestSubnormalNormalBoundary(t *testing.T) {
	for k := 1; k <= 32; k++ {
		center := float32(k) * 0x1p-14
		lo, hi := center, center
		for j := 0; j < 64; j++ {
			lo = math.Nextafter32(lo, float32(math.Inf(-1)))
			hi = math.Nextafter32(hi, float32(math.Inf(1)))
		}
		for f := lo; f <= hi; f = math.Nextafter32(f, float32(math.Inf(1))) {
			for _, s := range []float32{f, -f} {
				want := refFromFloat32(s)
				if got := FromFloat32(s); got != want {
					t.Fatalf("%v (bits %#08x): got %#04x, want %#04x",
						s, math.Float32bits(s), got, want)
				}
			}
		}
	}
}

// TestOverflowBoundary pins the 65504/65520/65536 seam: 65520 is an exact
// tie whose even neighbour is the Inf encoding.
func TestOverflowBoundary(t *testing.T) {
	cases := []struct {
		f    float32
		want Num
	}{
		{65504, 0x7BFF},
		{math.Nextafter32(65520, 0), 0x7BFF}, // just below the tie: down
		{65520, PosInf},                      // tie: even neighbour is Inf
		{math.Nextafter32(65520, 1e9), PosInf},
		{65536, PosInf},
		{-65520, NegInf},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.want {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
}

// TestRandomizedAgainstReference fuzzes raw fp32 bit patterns (covering
// NaN payloads, subnormals, and the whole exponent range) against the
// float64 reference, and requires the batch kernel to agree with the
// scalar kernel everywhere.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 1 << 20
	src := make([]float32, n)
	for i := range src {
		src[i] = math.Float32frombits(uint32(rng.Uint64()))
	}
	batch := Cast(nil, src)
	for i, f := range src {
		want := refFromFloat32(f)
		if got := FromFloat32(f); got != want {
			t.Fatalf("bits %#08x: FromFloat32 = %#04x, want %#04x",
				math.Float32bits(f), got, want)
		}
		if batch[i] != want {
			t.Fatalf("bits %#08x: Cast = %#04x, want %#04x",
				math.Float32bits(f), batch[i], want)
		}
	}
}

// TestUncastMatchesScalar requires the table-driven batch widening to
// equal the scalar decode bit-for-bit over every pattern.
func TestUncastMatchesScalar(t *testing.T) {
	src := make([]Num, 1<<16)
	for i := range src {
		src[i] = Num(i)
	}
	dst := Uncast(nil, src)
	for i, f := range dst {
		if math.Float32bits(f) != math.Float32bits(src[i].Float32()) {
			t.Fatalf("bits %#04x: Uncast %v != Float32 %v", i, f, src[i].Float32())
		}
		if math.Float32bits(f) != widenBits(uint16(i)) {
			t.Fatalf("bits %#04x: table disagrees with widenBits", i)
		}
	}
}
