// Package data generates the synthetic training corpus that substitutes
// for the paper's Pile subset (per the DESIGN.md substitution table): a
// deterministic first-order Markov token stream with Zipfian marginals.
// The distribution is learnable (a transformer's loss drops well below the
// unigram entropy), which is all the loss-curve experiments need, and it is
// exactly reproducible from a seed.
package data

import (
	"fmt"
	"math"

	"superoffload/internal/tensor"
)

// Corpus is a deterministic token stream generator.
type Corpus struct {
	Vocab int
	rng   *tensor.RNG
	// trans[t] is the preferred successor of token t; with probability
	// 1-noise the stream follows it, otherwise it samples Zipfian.
	trans []int
	noise float64
	// zipf alias table (cumulative distribution).
	cdf  []float64
	last int
}

// NewCorpus builds a corpus over the given vocabulary.
func NewCorpus(vocab int, seed uint64) *Corpus {
	if vocab < 2 {
		panic("data: vocab must be ≥ 2")
	}
	rng := tensor.NewRNG(seed)
	c := &Corpus{Vocab: vocab, rng: rng, noise: 0.15}
	// Random successor permutation (derangement-ish; self loops allowed,
	// harmless).
	c.trans = make([]int, vocab)
	perm := make([]int, vocab)
	for i := range perm {
		perm[i] = i
	}
	for i := vocab - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	copy(c.trans, perm)
	// Zipfian CDF with exponent 1.1.
	c.cdf = make([]float64, vocab)
	var z float64
	for i := 0; i < vocab; i++ {
		z += 1 / math.Pow(float64(i+1), 1.1)
		c.cdf[i] = z
	}
	for i := range c.cdf {
		c.cdf[i] /= z
	}
	c.last = rng.Intn(vocab)
	return c
}

// Next emits the next token.
func (c *Corpus) Next() int {
	var tok int
	if c.rng.Float64() < c.noise {
		tok = c.sampleZipf()
	} else {
		tok = c.trans[c.last]
	}
	c.last = tok
	return tok
}

func (c *Corpus) sampleZipf() int {
	u := c.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Batch is one (batch, seq) training example pair in the flattened layout
// internal/nn consumes: Targets[i] is the next token after Tokens[i].
type Batch struct {
	Tokens, Targets []int
	BatchSize, Seq  int
}

// NextBatch draws batch rows of seq+1 tokens and splits them into
// input/target windows.
func (c *Corpus) NextBatch(batch, seq int) Batch {
	b := Batch{
		Tokens:    make([]int, batch*seq),
		Targets:   make([]int, batch*seq),
		BatchSize: batch,
		Seq:       seq,
	}
	for r := 0; r < batch; r++ {
		prev := c.Next()
		for t := 0; t < seq; t++ {
			cur := c.Next()
			b.Tokens[r*seq+t] = prev
			b.Targets[r*seq+t] = cur
			prev = cur
		}
	}
	return b
}

// BigramEntropy estimates the per-token conditional entropy of the stream
// in nats by counting over n samples — the floor a perfect model's loss
// approaches.
func (c *Corpus) BigramEntropy(n int) float64 {
	counts := make(map[[2]int]int)
	prevCounts := make(map[int]int)
	prev := c.Next()
	for i := 0; i < n; i++ {
		cur := c.Next()
		counts[[2]int{prev, cur}]++
		prevCounts[prev]++
		prev = cur
	}
	var h float64
	for k, cnt := range counts {
		pJoint := float64(cnt) / float64(n)
		pCond := float64(cnt) / float64(prevCounts[k[0]])
		h -= pJoint * math.Log(pCond)
	}
	return h
}

func (c *Corpus) String() string { return fmt.Sprintf("Corpus(V=%d)", c.Vocab) }
