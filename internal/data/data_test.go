package data

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a := NewCorpus(64, 5)
	b := NewCorpus(64, 5)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTokensInRange(t *testing.T) {
	c := NewCorpus(32, 9)
	for i := 0; i < 2000; i++ {
		tok := c.Next()
		if tok < 0 || tok >= 32 {
			t.Fatalf("token %d out of range", tok)
		}
	}
}

func TestBatchLayout(t *testing.T) {
	c := NewCorpus(64, 3)
	b := c.NextBatch(4, 16)
	if len(b.Tokens) != 64 || len(b.Targets) != 64 {
		t.Fatalf("batch sizes %d/%d", len(b.Tokens), len(b.Targets))
	}
	// Within a row, targets shift tokens by one.
	for r := 0; r < 4; r++ {
		for i := 0; i < 15; i++ {
			if b.Targets[r*16+i] != b.Tokens[r*16+i+1] {
				t.Fatalf("row %d pos %d: target %d != next token %d",
					r, i, b.Targets[r*16+i], b.Tokens[r*16+i+1])
			}
		}
	}
}

func TestStreamIsLearnable(t *testing.T) {
	// Conditional entropy must be far below the uniform ln(V): the
	// Markov structure is what the training experiments learn.
	c := NewCorpus(64, 7)
	h := c.BigramEntropy(50000)
	uniform := math.Log(64)
	if h > 0.75*uniform {
		t.Errorf("conditional entropy %.3f too close to uniform %.3f — stream not learnable", h, uniform)
	}
	if h <= 0 {
		t.Errorf("entropy %.3f must be positive (noise present)", h)
	}
}

func TestZipfMarginalSkewed(t *testing.T) {
	c := NewCorpus(128, 11)
	counts := make([]int, 128)
	for i := 0; i < 30000; i++ {
		counts[c.sampleZipf()]++
	}
	if counts[0] <= counts[64] {
		t.Errorf("zipf head (%d) not heavier than tail (%d)", counts[0], counts[64])
	}
}

func TestVocabValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for vocab < 2")
		}
	}()
	NewCorpus(1, 0)
}
