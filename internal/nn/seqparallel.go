package nn

// Sequence parallelism (SuperOffload-Ulysses, §4.7): S ranks each own a
// contiguous sequence shard of every batch row and run the full model
// locally, except attention, which switches to head parallelism via two
// all-to-alls per layer per pass — one turning sequence-sharded Q/K/V
// projections into head-sharded full-sequence tensors, one turning the
// head outputs back into sequence shards.
//
// Everything outside attention is row-wise (embedding lookup, layernorm,
// linear, GELU, softmax cross-entropy), so a rank's local activations are
// bit-identical to the corresponding row slice of a single-rank forward,
// and after the first all-to-all a rank's per-head attention is the exact
// computation the single-rank path runs for that head. The delicate part
// is weight gradients: they are sums over all B·T rows, and float32
// addition is not associative, so summing per-rank partials would NOT
// reproduce the single-rank fold. Instead BackwardSP only propagates dx
// (retaining each parameterized op's (input, d-output) pair), and
// AccumBatchRow replays the per-row gradient accumulation into a flat
// buffer that the engine chains through the ranks in (batch row, sequence
// shard) order — exactly ascending global row order, the order
// linearBackward/layerNormBackward/the embedding loop have always folded
// in. The completed ring buffer is therefore bit-identical to the
// single-rank gradient, which is what makes SP ≡ single-rank exactness
// hold through STV's speculative steps, rollbacks, and checkpoints.

import (
	"fmt"
	"math"

	"superoffload/internal/tensor"
)

// SP describes one rank's place in a sequence-parallel (Ulysses) world
// and the collective it exchanges attention heads over.
type SP struct {
	// Rank ∈ [0, Ranks): this rank owns sequence positions
	// [Rank·Tl, (Rank+1)·Tl) of every batch row and attention heads
	// [Rank·H/Ranks, (Rank+1)·H/Ranks).
	Rank  int
	Ranks int
	// AllToAll exchanges one payload per peer: payloads[d] is delivered
	// to rank d, and the result's entry [s] is the payload rank s
	// addressed here. May be nil when Ranks == 1 (the exchange is then
	// the identity).
	AllToAll func(payloads [][]float32) [][]float32
	// Tap, when set, observes layer boundaries on this rank's
	// sequence-parallel passes (the SP analogue of GPT.SetActivationTap:
	// the tap lives here because several SP ranks may share one
	// read-only GPT). The fetched buffers stay restored through the
	// AccumBatchRow weight-gradient replay.
	Tap ActivationTap
}

// exchange runs the collective, short-circuiting the degenerate world.
func (sp *SP) exchange(payloads [][]float32) [][]float32 {
	if sp.Ranks == 1 {
		return payloads
	}
	return sp.AllToAll(payloads)
}

// ValidateSP checks the sequence-parallel sharding arithmetic for this
// model: malformed configurations fail loudly here instead of training
// corrupted attention (the seq%S analogue of the hidden%heads check in
// newGPT).
func (g *GPT) ValidateSP(ranks, globalSeq int) error {
	if ranks < 1 {
		return fmt.Errorf("nn: sequence-parallel ranks must be >= 1, got %d", ranks)
	}
	if g.Cfg.Heads%ranks != 0 {
		return fmt.Errorf("nn: %d attention heads not divisible by %d sequence ranks", g.Cfg.Heads, ranks)
	}
	if globalSeq%ranks != 0 {
		return fmt.Errorf("nn: sequence %d not divisible by %d sequence ranks", globalSeq, ranks)
	}
	if globalSeq > g.MaxSeq {
		return fmt.Errorf("nn: sequence %d exceeds max %d", globalSeq, g.MaxSeq)
	}
	return nil
}

// spBlockCache retains one block's forward intermediates plus the
// backward-pass d-outputs the ring replay needs.
type spBlockCache struct {
	ln1     *layerNormCache
	ln1y    *tensor.Tensor   // input rows to WQKV
	q, k, v []*tensor.Tensor // per b·Hl+hi: full-sequence (T, hs) for this rank's heads
	probs   []*tensor.Tensor // post-softmax scores per b·Hl+hi
	attnOut *tensor.Tensor   // local rows (B·Tl, C), pre-projection
	res1    *tensor.Tensor
	ln2     *layerNormCache
	ln2y    *tensor.Tensor
	h1      *tensor.Tensor
	hGelu   *tensor.Tensor

	// d-outputs retained by BackwardSP, paired with the inputs above for
	// the per-row weight-gradient replay.
	dh2   *tensor.Tensor // dy into W2/B2 (input: hGelu)
	dh1   *tensor.Tensor // dy into W1/B1 (input: ln2y)
	dln2y *tensor.Tensor // dy into LN2 gain/bias
	dres1 *tensor.Tensor // dy into WO/BO (input: attnOut)
	dqkv  *tensor.Tensor // dy into WQKV/BQKV (input: ln1y)
	dln1y *tensor.Tensor // dy into LN1 gain/bias
}

// SPCache retains one sequence-parallel iteration's intermediates for
// BackwardSP and the subsequent AccumBatchRow replay.
type SPCache struct {
	g        *GPT
	tokens   []int
	batch    int
	localSeq int
	posOff   int

	// stage/stages identify the pipeline stage whose block range this
	// cache covers (0 of 1 for the non-pipelined entry points).
	stage, stages int

	// ws is this iteration's scratch arena. It lives on the cache, not the
	// model, because SP ranks may share one GPT's weights across
	// goroutines (the model stays read-only in ForwardSP/BackwardSP); a
	// model-level arena would race.
	ws workspace

	blocks   []*spBlockCache
	stageOut *tensor.Tensor // boundary activation a non-final stage ships downstream
	lnf      *layerNormCache
	lnfy     *tensor.Tensor
	dlogit   *tensor.Tensor // unscaled CE gradient (local rows; final stage only)

	// retained by BackwardSPStage:
	dlogitScaled *tensor.Tensor // dy into Head (input: lnfy; final stage only)
	dlnfy        *tensor.Tensor // dy into LNF gain/bias (final stage only)
	dIn          *tensor.Tensor // d-input of the stage's first block: the
	// embedding-layer gradient rows on stage 0, the boundary gradient for
	// the upstream stage otherwise.
}

// StageOut returns the boundary activation a non-final stage's forward
// produced — the (batch·localSeq, hidden) tensor the pipeline engine
// ships downstream. The data stays valid for the cache's lifetime (each
// SPCache owns its arena), so it passes between stage goroutines by
// reference. Nil on the final stage.
func (cache *SPCache) StageOut() *tensor.Tensor { return cache.stageOut }

// StageDIn returns the boundary gradient BackwardSPStage left behind:
// the d-input of this stage's first block, which the pipeline engine
// ships upstream (on stage 0 it is instead the embedding-layer gradient
// AccumBatchRow folds). Nil until BackwardSPStage runs.
func (cache *SPCache) StageDIn() *tensor.Tensor { return cache.dIn }

// ForwardSP runs the model over this rank's sequence shard: tokens and
// targets hold batch rows of localSeq consecutive positions starting at
// global position Rank·localSeq. It returns the per-row token losses in
// local row order — the engine folds them across ranks in global row
// order, so their sum over all ranks divided by batch·localSeq·Ranks is
// bit-identical to the single-rank Forward loss — and the cache for
// BackwardSP.
func (g *GPT) ForwardSP(tokens, targets []int, batch, localSeq int, sp *SP) ([]float64, *SPCache) {
	return g.ForwardSPStage(tokens, targets, batch, localSeq, sp, 0, 1, nil)
}

// ForwardSPStage runs pipeline stage `stage` of `stages` — transformer
// blocks StageLayers(layers, stage, stages) — over this rank's sequence
// shard. Stage 0 embeds from tokens; later stages take the upstream
// boundary activation xIn (batch·localSeq rows, read but never written).
// The final stage computes the head and returns per-row losses exactly
// as ForwardSP; earlier stages return nil losses and expose the boundary
// output via StageOut. Computing the same blocks over the same inputs as
// the single-pass ForwardSP, the stage split is bit-invisible.
func (g *GPT) ForwardSPStage(tokens, targets []int, batch, localSeq int, sp *SP, stage, stages int, xIn *tensor.Tensor) ([]float64, *SPCache) {
	globalSeq := localSeq * sp.Ranks
	if err := g.ValidateSP(sp.Ranks, globalSeq); err != nil {
		panic(err)
	}
	if err := g.ValidateStages(stages); err != nil {
		panic(err)
	}
	if stage < 0 || stage >= stages {
		panic(fmt.Sprintf("nn: pipeline stage %d out of range [0,%d)", stage, stages))
	}
	if sp.Rank < 0 || sp.Rank >= sp.Ranks {
		panic(fmt.Sprintf("nn: sequence rank %d out of range [0,%d)", sp.Rank, sp.Ranks))
	}
	if len(tokens) != batch*localSeq || len(targets) != batch*localSeq {
		panic("nn: token/target shape mismatch")
	}
	c := g.Cfg.Hidden
	heads := g.Cfg.Heads
	hl := heads / sp.Ranks
	hs := c / heads
	scale := float32(1 / math.Sqrt(float64(hs)))
	n := batch * localSeq
	posOff := sp.Rank * localSeq
	blo, bhi := StageLayers(len(g.Blocks), stage, stages)

	cache := &SPCache{g: g, tokens: tokens, batch: batch, localSeq: localSeq,
		posOff: posOff, stage: stage, stages: stages}
	ws := &cache.ws
	var x *tensor.Tensor
	if stage == 0 {
		x = ws.get(n, c)
		for i, tok := range tokens {
			if tok < 0 || tok >= g.Cfg.Vocab {
				panic(fmt.Sprintf("nn: token %d out of vocab", tok))
			}
			t := posOff + i%localSeq
			dst := x.Data[i*c : (i+1)*c]
			te := g.TokEmb.W.Data[tok*c : (tok+1)*c]
			pe := g.PosEmb.W.Data[t*c : (t+1)*c]
			for j := 0; j < c; j++ {
				dst[j] = te[j] + pe[j]
			}
		}
	} else {
		if xIn == nil || xIn.Dim(0) != n || xIn.Dim(1) != c {
			panic("nn: stage boundary activation shape mismatch")
		}
		x = xIn
	}

	if sp.Tap != nil {
		sp.Tap.BeginPass(bhi-blo, n, globalSeq)
	}
	for l := blo; l < bhi; l++ {
		blk := g.Blocks[l]
		bc := &spBlockCache{}
		ln1y, ln1c := layerNorm(ws, x, blk.LN1G, blk.LN1B)
		bc.ln1, bc.ln1y = ln1c, ln1y
		qkv := linear(ws, ln1y, blk.WQKV, blk.BQKV)

		// All-to-all #1: sequence-sharded fused projections become
		// head-sharded full-sequence Q, K, V for this rank's heads.
		// (The collective's buffers stay off the workspace: payloads
		// cross rank boundaries.)
		comps := spSeqToHeads(sp, qkv, 3, batch, localSeq, heads, c)
		bc.q, bc.k, bc.v = comps[0], comps[1], comps[2]
		bc.probs = make([]*tensor.Tensor, batch*hl)
		o := make([]*tensor.Tensor, batch*hl)
		for bh := range o {
			oh := ws.get(localSeq*sp.Ranks, hs)
			probs := ws.get(localSeq*sp.Ranks, localSeq*sp.Ranks)
			attendHeadInto(oh, probs, bc.q[bh], bc.k[bh], bc.v[bh], scale)
			o[bh] = oh
			bc.probs[bh] = probs
		}
		// All-to-all #2: head outputs return to sequence sharding.
		out := spHeadsToSeq(sp, [][]*tensor.Tensor{o}, batch, localSeq, heads, c)
		bc.attnOut = out

		proj := linear(ws, out, blk.WO, blk.BO)
		res1 := ws.get(n, c)
		tensor.AddInto(res1, x, proj)
		bc.res1 = res1

		ln2y, ln2c := layerNorm(ws, res1, blk.LN2G, blk.LN2B)
		bc.ln2, bc.ln2y = ln2c, ln2y
		h1 := linear(ws, ln2y, blk.W1, blk.B1)
		bc.h1 = h1
		hg := gelu(ws, h1)
		bc.hGelu = hg
		h2 := linear(ws, hg, blk.W2, blk.B2)

		x2 := ws.get(n, c)
		tensor.AddInto(x2, res1, h2)
		x = x2
		cache.blocks = append(cache.blocks, bc)
		if sp.Tap != nil {
			sp.Tap.StashLayer(l-blo, bc.actBufs())
		}
	}

	if stage < stages-1 {
		cache.stageOut = x
		return nil, cache
	}
	lnfy, lnfc := layerNorm(ws, x, g.LNFG, g.LNFB)
	cache.lnf, cache.lnfy = lnfc, lnfy
	logits := linear(ws, lnfy, g.Head, nil)
	losses, dlogits := crossEntropyRows(ws, logits, targets, batch*globalSeq)
	cache.dlogit = dlogits
	return losses, cache
}

// BackwardSP propagates activation gradients for the iteration captured in
// cache, running the two reverse all-to-alls per layer. Unlike Backward it
// never touches Params().G: every parameterized op's (input, d-output)
// pair is retained on the cache, and the engine replays the weight-grad
// accumulation deterministically via AccumBatchRow.
func (g *GPT) BackwardSP(cache *SPCache, lossScale float64, sp *SP) {
	g.BackwardSPStage(cache, lossScale, sp, nil)
}

// BackwardSPStage propagates activation gradients through the stage's
// block range. The final stage seeds from its own loss gradient (the
// lossScale factor applies there and only there — it rides the chain to
// every earlier stage); other stages seed from dOut, the boundary
// gradient the downstream stage left in its StageDIn. On return this
// cache's StageDIn holds the gradient for the next stage up.
func (g *GPT) BackwardSPStage(cache *SPCache, lossScale float64, sp *SP, dOut *tensor.Tensor) {
	ws := &cache.ws
	var dx *tensor.Tensor
	if cache.stage == cache.stages-1 {
		dlogits := cache.dlogit
		if lossScale != 1 {
			dlogits = ws.get(cache.dlogit.Dim(0), cache.dlogit.Dim(1))
			copy(dlogits.Data, cache.dlogit.Data)
			dlogits.Scale(float32(lossScale))
		}
		cache.dlogitScaled = dlogits
		dlnfy := ws.get(dlogits.Dim(0), g.Head.W.Dim(0))
		tensor.MatMulTInto(dlnfy, dlogits, g.Head.W)
		cache.dlnfy = dlnfy
		dx = layerNormBackwardDX(ws, dlnfy, cache.lnf, g.LNFG)
	} else {
		if dOut == nil {
			panic("nn: non-final stage backward needs the downstream boundary gradient")
		}
		dx = dOut
	}

	c := g.Cfg.Hidden
	heads := g.Cfg.Heads
	hl := heads / sp.Ranks
	hs := c / heads
	scale := float32(1 / math.Sqrt(float64(hs)))
	blo, bhi := StageLayers(len(g.Blocks), cache.stage, cache.stages)

	for l := bhi - 1; l >= blo; l-- {
		blk := g.Blocks[l]
		bc := cache.blocks[l-blo]
		if sp.Tap != nil {
			sp.Tap.FetchLayer(l - blo)
		}

		// MLP branch: x2 = res1 + W2·gelu(W1·ln2(res1)).
		bc.dh2 = dx
		dhg := ws.get(dx.Dim(0), blk.W2.W.Dim(0))
		tensor.MatMulTInto(dhg, dx, blk.W2.W)
		dh1 := geluBackward(ws, dhg, bc.h1)
		bc.dh1 = dh1
		dln2y := ws.get(dh1.Dim(0), blk.W1.W.Dim(0))
		tensor.MatMulTInto(dln2y, dh1, blk.W1.W)
		bc.dln2y = dln2y
		dres1FromMLP := layerNormBackwardDX(ws, dln2y, bc.ln2, blk.LN2G)
		dres1 := ws.get(dx.Dim(0), dx.Dim(1))
		tensor.AddInto(dres1, dx, dres1FromMLP)
		bc.dres1 = dres1

		// Attention branch, with the two all-to-alls reversed.
		dOut := ws.get(dres1.Dim(0), blk.WO.W.Dim(0))
		tensor.MatMulTInto(dOut, dres1, blk.WO.W)
		doHeads := spSeqToHeads(sp, dOut, 1, cache.batch, cache.localSeq, heads, c)[0]
		dq := make([]*tensor.Tensor, cache.batch*hl)
		dk := make([]*tensor.Tensor, cache.batch*hl)
		dv := make([]*tensor.Tensor, cache.batch*hl)
		globalSeq := cache.localSeq * sp.Ranks
		dp := ws.get(globalSeq, globalSeq)
		dsS := ws.get(globalSeq, globalSeq)
		for bh := range dq {
			dq[bh] = ws.get(globalSeq, hs)
			dk[bh] = ws.get(globalSeq, hs)
			dv[bh] = ws.get(globalSeq, hs)
			attendHeadBackwardInto(dq[bh], dk[bh], dv[bh], dp, dsS,
				bc.probs[bh], bc.q[bh], bc.k[bh], bc.v[bh], doHeads[bh], scale)
		}
		dqkv := spHeadsToSeq(sp, [][]*tensor.Tensor{dq, dk, dv}, cache.batch, cache.localSeq, heads, c)
		bc.dqkv = dqkv

		dln1y := ws.get(dqkv.Dim(0), blk.WQKV.W.Dim(0))
		tensor.MatMulTInto(dln1y, dqkv, blk.WQKV.W)
		bc.dln1y = dln1y
		dxFromAttn := layerNormBackwardDX(ws, dln1y, bc.ln1, blk.LN1G)
		dxNext := ws.get(dx.Dim(0), dx.Dim(1))
		tensor.AddInto(dxNext, dres1, dxFromAttn)
		dx = dxNext
	}
	cache.dIn = dx
}

// AccumBatchRow folds this rank's weight-gradient contributions for batch
// row b into flat, continuing whatever element-wise accumulation the
// buffer already carries. flat covers the cache's StageParamSpan in the
// Params() registration-order layout — the full parameter space for the
// non-pipelined entry points, one stage's contiguous span under the
// pipeline engine. Chaining hops in (batch row, sequence shard) order
// visits rows in ascending global row order, so the completed buffer
// equals the single-rank Backward gradient bit for bit.
func (cache *SPCache) AccumBatchRow(flat []float32, b int) {
	g := cache.g
	spanLo, spanHi := g.StageParamSpan(cache.stage, cache.stages)
	if len(flat) != spanHi-spanLo {
		panic(fmt.Sprintf("nn: flat gradient buffer %d, want %d", len(flat), spanHi-spanLo))
	}
	lo, hi := b*cache.localSeq, (b+1)*cache.localSeq
	off := 0
	next := func(p *Param) []float32 {
		s := flat[off : off+p.Size()]
		off += p.Size()
		return s
	}

	if cache.stage == 0 {
		// Embeddings (the registration order opens with TokEmb, PosEmb).
		tok, pos := next(g.TokEmb), next(g.PosEmb)
		c := g.Cfg.Hidden
		for r := lo; r < hi; r++ {
			t := cache.posOff + r%cache.localSeq
			src := cache.dIn.Data[r*c : (r+1)*c]
			te := tok[cache.tokens[r]*c : (cache.tokens[r]+1)*c]
			pe := pos[t*c : (t+1)*c]
			for j := 0; j < c; j++ {
				te[j] += src[j]
				pe[j] += src[j]
			}
		}
	}

	blo, bhi := StageLayers(len(g.Blocks), cache.stage, cache.stages)
	for l := blo; l < bhi; l++ {
		blk := g.Blocks[l]
		bc := cache.blocks[l-blo]
		accumLayerNormRows(next(blk.LN1G), next(blk.LN1B), bc.ln1, bc.dln1y, lo, hi)
		accumLinearRows(next(blk.WQKV), bc.ln1y, bc.dqkv, lo, hi)
		accumBiasRows(next(blk.BQKV), bc.dqkv, lo, hi)
		accumLinearRows(next(blk.WO), bc.attnOut, bc.dres1, lo, hi)
		accumBiasRows(next(blk.BO), bc.dres1, lo, hi)
		accumLayerNormRows(next(blk.LN2G), next(blk.LN2B), bc.ln2, bc.dln2y, lo, hi)
		accumLinearRows(next(blk.W1), bc.ln2y, bc.dh1, lo, hi)
		accumBiasRows(next(blk.B1), bc.dh1, lo, hi)
		accumLinearRows(next(blk.W2), bc.hGelu, bc.dh2, lo, hi)
		accumBiasRows(next(blk.B2), bc.dh2, lo, hi)
	}
	if cache.stage == cache.stages-1 {
		accumLayerNormRows(next(g.LNFG), next(g.LNFB), cache.lnf, cache.dlnfy, lo, hi)
		accumLinearRows(next(g.Head), cache.lnfy, cache.dlogitScaled, lo, hi)
	}
	if off != len(flat) {
		panic("nn: replay did not cover the stage's parameter span")
	}
}

// accumLinearRows folds rows [lo,hi)'s dW = xᵀ·dy contributions into dst,
// mirroring tensor.TMatMul's per-element fold exactly — data rows in
// ascending order, one add at a time, and no skip of zero activations
// (0 × NaN must stay NaN, exactly as in the kernel) — so a chained replay
// reproduces linearBackward's weight gradient bit for bit.
func accumLinearRows(dst []float32, x, dy *tensor.Tensor, lo, hi int) {
	in, out := x.Dim(1), dy.Dim(1)
	for i := 0; i < in; i++ {
		orow := dst[i*out : (i+1)*out]
		for r := lo; r < hi; r++ {
			av := x.Data[r*in+i]
			brow := dy.Data[r*out : (r+1)*out]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// accumBiasRows folds rows [lo,hi)'s db = colsum(dy) contributions into
// dst in ascending row order — linearBackward's bias fold.
func accumBiasRows(dst []float32, dy *tensor.Tensor, lo, hi int) {
	out := dy.Dim(1)
	for r := lo; r < hi; r++ {
		row := dy.Data[r*out : (r+1)*out]
		for j := range dst {
			dst[j] += row[j]
		}
	}
}

// spSeqToHeads is all-to-all #1 (and the reverse of #2 in backward): a
// sequence-sharded (B·Tl, ncomp·C) tensor is redistributed so this rank
// holds, for each of its Hl = H/S heads and each component, the
// full-sequence (T, hs) tensor. Payload layout (both directions):
// (batch row, local head, component, local position) nested loops of hs
// contiguous floats.
func spSeqToHeads(sp *SP, x *tensor.Tensor, ncomp, batch, localSeq, heads, c int) [][]*tensor.Tensor {
	s, hl, hs := sp.Ranks, heads/sp.Ranks, c/heads
	payloads := make([][]float32, s)
	for d := 0; d < s; d++ {
		buf := make([]float32, batch*hl*ncomp*localSeq*hs)
		off := 0
		for b := 0; b < batch; b++ {
			for hi := 0; hi < hl; hi++ {
				h := d*hl + hi
				for comp := 0; comp < ncomp; comp++ {
					col := comp*c + h*hs
					for t := 0; t < localSeq; t++ {
						base := (b*localSeq+t)*ncomp*c + col
						copy(buf[off:off+hs], x.Data[base:base+hs])
						off += hs
					}
				}
			}
		}
		payloads[d] = buf
	}
	recv := sp.exchange(payloads)

	globalSeq := localSeq * s
	out := make([][]*tensor.Tensor, ncomp)
	for comp := range out {
		out[comp] = make([]*tensor.Tensor, batch*hl)
		for i := range out[comp] {
			out[comp][i] = tensor.New(globalSeq, hs)
		}
	}
	for src := 0; src < s; src++ {
		buf := recv[src]
		off := 0
		for b := 0; b < batch; b++ {
			for hi := 0; hi < hl; hi++ {
				for comp := 0; comp < ncomp; comp++ {
					dst := out[comp][b*hl+hi].Data
					for t := 0; t < localSeq; t++ {
						at := (src*localSeq + t) * hs
						copy(dst[at:at+hs], buf[off:off+hs])
						off += hs
					}
				}
			}
		}
	}
	return out
}

// spHeadsToSeq is all-to-all #2 (and the reverse of #1 in backward):
// per-head full-sequence (T, hs) tensors — one list per component —
// return to sequence sharding as a (B·Tl, ncomp·C) tensor holding every
// head's columns for this rank's positions.
func spHeadsToSeq(sp *SP, comps [][]*tensor.Tensor, batch, localSeq, heads, c int) *tensor.Tensor {
	s, hl, hs := sp.Ranks, heads/sp.Ranks, c/heads
	ncomp := len(comps)
	payloads := make([][]float32, s)
	for d := 0; d < s; d++ {
		buf := make([]float32, batch*hl*ncomp*localSeq*hs)
		off := 0
		for b := 0; b < batch; b++ {
			for hi := 0; hi < hl; hi++ {
				for comp := 0; comp < ncomp; comp++ {
					src := comps[comp][b*hl+hi].Data
					for t := 0; t < localSeq; t++ {
						at := (d*localSeq + t) * hs
						copy(buf[off:off+hs], src[at:at+hs])
						off += hs
					}
				}
			}
		}
		payloads[d] = buf
	}
	recv := sp.exchange(payloads)

	out := tensor.New(batch*localSeq, ncomp*c)
	for src := 0; src < s; src++ {
		buf := recv[src]
		off := 0
		for b := 0; b < batch; b++ {
			for hi := 0; hi < hl; hi++ {
				h := src*hl + hi
				for comp := 0; comp < ncomp; comp++ {
					col := comp*c + h*hs
					for t := 0; t < localSeq; t++ {
						base := (b*localSeq+t)*ncomp*c + col
						copy(out.Data[base:base+hs], buf[off:off+hs])
						off += hs
					}
				}
			}
		}
	}
	return out
}
