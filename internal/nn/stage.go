package nn

// Pipeline-stage arithmetic: the pipeline engine splits the transformer
// depth into contiguous block ranges, one per stage, with stage 0 owning
// the embeddings and the last stage owning the final layernorm and head.
// The helpers here map a (stage, stages) pair to its block range and to
// its span of the flat Params() registration-order layout — the span the
// stage's ring reduction and cross-cell reduce-scatter cover.

import "fmt"

// Registration-layout constants mirroring newGPT: the parameter list
// opens with 2 embedding params, carries 12 params per transformer
// block, and closes with 3 tail params (final layernorm gain/bias and
// the head).
const (
	embParams   = 2
	blockParams = 12
	tailParams  = 3
)

// StageLayers returns the contiguous transformer-block range [lo, hi)
// pipeline stage `stage` of `stages` owns: blocks split as evenly as
// possible, with the first layers%stages stages taking one extra block.
func StageLayers(layers, stage, stages int) (lo, hi int) {
	base, extra := layers/stages, layers%stages
	lo = stage*base + min(stage, extra)
	hi = lo + base
	if stage < extra {
		hi++
	}
	return lo, hi
}

// ValidateStages checks the pipeline-stage arithmetic for this model:
// every stage must own at least one transformer block (the stage-split
// analogue of ValidateSP's divisibility checks).
func (g *GPT) ValidateStages(stages int) error {
	if stages < 1 {
		return fmt.Errorf("nn: pipeline stages must be >= 1, got %d", stages)
	}
	if len(g.Blocks) < stages {
		return fmt.Errorf("nn: %d layers cannot split across %d pipeline stages (every stage needs a block)",
			len(g.Blocks), stages)
	}
	return nil
}

// StageParamSpan returns the flat Params() offset range [lo, hi) covering
// stage's parameters: stage 0 opens with the embeddings, the last stage
// closes with the final layernorm and head, and every stage carries its
// StageLayers block range in between. Spans partition [0, TotalSize()).
func (g *GPT) StageParamSpan(stage, stages int) (lo, hi int) {
	if want := embParams + blockParams*len(g.Blocks) + tailParams; len(g.params) != want {
		panic(fmt.Sprintf("nn: registration layout drifted: %d params, want %d", len(g.params), want))
	}
	blo, bhi := StageLayers(len(g.Blocks), stage, stages)
	if stage > 0 {
		lo = g.paramOffsetAt(embParams + blo*blockParams)
	}
	hi = g.params.TotalSize()
	if stage < stages-1 {
		hi = g.paramOffsetAt(embParams + bhi*blockParams)
	}
	return lo, hi
}

// paramOffsetAt sums the sizes of the first n registered parameters —
// the flat-layout offset where parameter n begins.
func (g *GPT) paramOffsetAt(n int) int {
	off := 0
	for _, p := range g.params[:n] {
		off += p.Size()
	}
	return off
}
