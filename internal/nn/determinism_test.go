package nn

import (
	"testing"

	"superoffload/internal/model"
	"superoffload/internal/tensor"
)

func TestSameSeedSameModel(t *testing.T) {
	a := tinyModel(77)
	b := tinyModel(77)
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.W.Data {
			if p.W.Data[j] != q.W.Data[j] {
				t.Fatalf("param %s differs at %d with same seed", p.Name, j)
			}
		}
	}
	tok, tgt := tinyBatch(a, 5, 2, 6)
	la, _ := a.Forward(tok, tgt, 2, 6)
	lb, _ := b.Forward(tok, tgt, 2, 6)
	if la != lb {
		t.Fatalf("same seed, different loss: %v vs %v", la, lb)
	}
}

func TestForwardDeterministicAcrossCalls(t *testing.T) {
	g := tinyModel(13)
	tok, tgt := tinyBatch(g, 9, 2, 8)
	l1, _ := g.Forward(tok, tgt, 2, 8)
	l2, _ := g.Forward(tok, tgt, 2, 8)
	if l1 != l2 {
		t.Fatalf("forward not deterministic: %v vs %v", l1, l2)
	}
}

// TestSingleHeadGradCheck exercises the heads=1 path of attention, whose
// gather/scatter indexing degenerates differently from multi-head.
func TestSingleHeadGradCheck(t *testing.T) {
	cfg := model.Config{Name: "t1", Layers: 1, Hidden: 12, Heads: 1, Vocab: 11}
	g := NewGPT(cfg, 6, tensor.NewRNG(21))
	rng := tensor.NewRNG(22)
	tokens := make([]int, 6)
	targets := make([]int, 6)
	for i := range tokens {
		tokens[i] = rng.Intn(11)
		targets[i] = rng.Intn(11)
	}
	g.Params().ZeroGrads()
	_, cache := g.Forward(tokens, targets, 1, 6)
	g.Backward(cache, 1)

	const eps = 1e-3
	p := g.Blocks[0].WQKV
	for _, idx := range []int{0, p.Size() / 3, p.Size() - 1} {
		orig := p.W.Data[idx]
		p.W.Data[idx] = orig + eps
		lp, _ := g.Forward(tokens, targets, 1, 6)
		p.W.Data[idx] = orig - eps
		lm, _ := g.Forward(tokens, targets, 1, 6)
		p.W.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(p.G.Data[idx])
		if abs(numeric-analytic) > 0.02*(abs(numeric)+abs(analytic))+2e-3 {
			t.Errorf("single-head grad mismatch at %d: %v vs %v", idx, analytic, numeric)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestBatchIndependence(t *testing.T) {
	// Loss of a 2-row batch equals the mean of the two 1-row losses:
	// rows must not attend to each other.
	g := tinyModel(31)
	seq := 5
	tokA, tgtA := tinyBatch(g, 41, 1, seq)
	tokB, tgtB := tinyBatch(g, 43, 1, seq)
	lA, _ := g.Forward(tokA, tgtA, 1, seq)
	lB, _ := g.Forward(tokB, tgtB, 1, seq)
	both := append(append([]int{}, tokA...), tokB...)
	bothT := append(append([]int{}, tgtA...), tgtB...)
	lBoth, _ := g.Forward(both, bothT, 2, seq)
	want := (lA + lB) / 2
	if abs(lBoth-want) > 1e-5 {
		t.Fatalf("batch rows interact: %v vs %v", lBoth, want)
	}
}
