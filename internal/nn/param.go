// Package nn implements a real GPT-style transformer with hand-written
// forward and backward passes on the fp32 tensor substrate. It exists so
// the algorithmic parts of the paper — speculation-then-validation with
// exact rollback, mixed-precision casting, bucketized optimizer updates —
// run on genuine gradients rather than simulated ones, and so training
// loss curves (Fig. 14) can be regenerated for real.
package nn

import (
	"fmt"

	"superoffload/internal/tensor"
)

// Param is one named trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...)}
}

// Size returns the parameter element count.
func (p *Param) Size() int { return p.W.Size() }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

func (p *Param) String() string { return fmt.Sprintf("%s%v", p.Name, p.W.Shape()) }

// Params is an ordered parameter list.
type Params []*Param

// TotalSize sums element counts.
func (ps Params) TotalSize() int {
	n := 0
	for _, p := range ps {
		n += p.Size()
	}
	return n
}

// ZeroGrads clears every gradient.
func (ps Params) ZeroGrads() {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// WeightSlices returns the raw weight storage of every parameter, in order.
func (ps Params) WeightSlices() [][]float32 {
	out := make([][]float32, len(ps))
	for i, p := range ps {
		out[i] = p.W.Data
	}
	return out
}

// GradSlices returns the raw gradient storage of every parameter, in order.
func (ps Params) GradSlices() [][]float32 {
	out := make([][]float32, len(ps))
	for i, p := range ps {
		out[i] = p.G.Data
	}
	return out
}
