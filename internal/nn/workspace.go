package nn

import "superoffload/internal/tensor"

// workspace is a per-model step arena: every transient tensor and slice a
// forward/backward pass needs is handed out from a cursor that rewinds at
// the next Forward. Because a training step's allocation sequence is
// deterministic, the second step onward runs allocation-free — the churn
// that used to dominate TrainStep allocs/op.
//
// Lifetime contract: tensors handed out are valid until the next
// reset() — i.e. for exactly one Forward→Backward→(replay/accumulate)
// cycle. Forward caches (FwdCache/SPCache) point into the arena, which is
// safe because every engine consumes a cache before its model's next
// forward (the STV redo loop discards the stale cache first). Anything
// that crosses a step boundary or a rank boundary (collective payloads,
// returned losses) must NOT come from the workspace.
type workspace struct {
	tensors []*tensor.Tensor
	tcur    int
	f32     [][]float32
	fcur    int
	f64     [][]float64
	dcur    int
}

func (ws *workspace) reset() { ws.tcur, ws.fcur, ws.dcur = 0, 0, 0 }

// get returns a (r,c) tensor with undefined contents — callers must fully
// overwrite it. A shape mismatch (batch/seq change) replaces the slot.
func (ws *workspace) get(r, c int) *tensor.Tensor {
	if ws.tcur < len(ws.tensors) {
		t := ws.tensors[ws.tcur]
		if t.Dim(0) == r && t.Dim(1) == c {
			ws.tcur++
			return t
		}
		t = tensor.New(r, c)
		ws.tensors[ws.tcur] = t
		ws.tcur++
		return t
	}
	t := tensor.New(r, c)
	ws.tensors = append(ws.tensors, t)
	ws.tcur++
	return t
}

// zeros is get with cleared contents, for accumulation targets.
func (ws *workspace) zeros(r, c int) *tensor.Tensor {
	t := ws.get(r, c)
	t.Zero()
	return t
}

// floats returns an n-element float32 scratch slice (undefined contents).
func (ws *workspace) floats(n int) []float32 {
	if ws.fcur < len(ws.f32) && cap(ws.f32[ws.fcur]) >= n {
		s := ws.f32[ws.fcur][:n]
		ws.fcur++
		return s
	}
	s := make([]float32, n)
	if ws.fcur < len(ws.f32) {
		ws.f32[ws.fcur] = s
	} else {
		ws.f32 = append(ws.f32, s)
	}
	ws.fcur++
	return s
}

// floats64 is floats for float64 scratch.
func (ws *workspace) floats64(n int) []float64 {
	if ws.dcur < len(ws.f64) && cap(ws.f64[ws.dcur]) >= n {
		s := ws.f64[ws.dcur][:n]
		ws.dcur++
		return s
	}
	s := make([]float64, n)
	if ws.dcur < len(ws.f64) {
		ws.f64[ws.dcur] = s
	} else {
		ws.f64 = append(ws.f64, s)
	}
	ws.dcur++
	return s
}
