package nn

// ActivationTap observes layer-boundary activation lifecycle during a
// forward/backward pass. internal/act implements it as the activation
// offloading tier; the model side only promises the protocol:
//
//   - BeginPass opens a pass (depth, this holder's tokens, and the
//     attention span feeding the GEMM model);
//   - StashLayer hands over layer l's retained forward buffers, in
//     forward order, immediately after the layer computes. The tap may
//     copy them out and overwrite them in place;
//   - FetchLayer is called at the top of layer l's backward step
//     (descending order, every layer) and must return with the layer's
//     buffers restored to their stashed contents.
//
// The buffers alias the model's workspace arena: they stay valid until
// the pass's backward (and any SP weight-gradient replay) completes,
// and the next pass fully overwrites them.
type ActivationTap interface {
	BeginPass(layers, tokens, seq int)
	StashLayer(layer int, bufs [][]float32)
	FetchLayer(layer int)
}

// SetActivationTap attaches a tap to the single-rank/data-parallel
// forward/backward path (each DP rank owns its replica, so the tap
// hangs off the model). The sequence-parallel paths tap via SP.Tap
// instead — several SP ranks may share one read-only GPT. Nil detaches.
func (g *GPT) SetActivationTap(t ActivationTap) { g.tap = t }

// actBufs enumerates the block's retained forward buffers for the
// activation tap: every slice its backward reads, each exactly once
// (ln1.x aliases xIn and ln2.x aliases res1, so the layernorm caches'
// inputs are not re-listed).
func (bc *blockCache) actBufs() [][]float32 {
	bufs := make([][]float32, 0, 12+len(bc.attn.probs))
	bufs = append(bufs,
		bc.xIn.Data, bc.ln1.invStd, bc.ln1.mean,
		bc.attn.x.Data, bc.attn.qkv.Data, bc.attn.attnOut.Data,
		bc.res1.Data, bc.ln2.invStd, bc.ln2.mean,
		bc.ln2y.Data, bc.h1.Data, bc.hGelu.Data,
	)
	for _, p := range bc.attn.probs {
		bufs = append(bufs, p.Data)
	}
	return bufs
}

// actBufs is the sequence-parallel analogue over spBlockCache: the
// buffers BackwardSP and the AccumBatchRow weight-gradient replay read.
// All are enumerated once; the d* gradient slots are pass outputs, not
// forward activations, so they stay resident.
func (bc *spBlockCache) actBufs() [][]float32 {
	bufs := make([][]float32, 0, 11+3*len(bc.q)+len(bc.probs))
	bufs = append(bufs,
		bc.ln1.x.Data, bc.ln1.invStd, bc.ln1.mean, bc.ln1y.Data,
		bc.attnOut.Data, bc.res1.Data,
		bc.ln2.invStd, bc.ln2.mean, bc.ln2y.Data,
		bc.h1.Data, bc.hGelu.Data,
	)
	for _, t := range bc.q {
		bufs = append(bufs, t.Data)
	}
	for _, t := range bc.k {
		bufs = append(bufs, t.Data)
	}
	for _, t := range bc.v {
		bufs = append(bufs, t.Data)
	}
	for _, p := range bc.probs {
		bufs = append(bufs, p.Data)
	}
	return bufs
}
