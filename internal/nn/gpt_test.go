package nn

import (
	"math"
	"testing"

	"superoffload/internal/model"
	"superoffload/internal/tensor"
)

func tinyModel(seed uint64) *GPT {
	cfg := model.Config{Name: "t", Layers: 2, Hidden: 16, Heads: 2, Vocab: 17}
	return NewGPT(cfg, 8, tensor.NewRNG(seed))
}

func tinyBatch(g *GPT, seed uint64, batch, seq int) (tokens, targets []int) {
	rng := tensor.NewRNG(seed)
	tokens = make([]int, batch*seq)
	targets = make([]int, batch*seq)
	for i := range tokens {
		tokens[i] = rng.Intn(g.Cfg.Vocab)
		targets[i] = rng.Intn(g.Cfg.Vocab)
	}
	return
}

func TestForwardLossIsFiniteAndNearUniform(t *testing.T) {
	g := tinyModel(1)
	tokens, targets := tinyBatch(g, 2, 2, 8)
	loss, _ := g.Forward(tokens, targets, 2, 8)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	// With tiny random init, logits ≈ 0 ⇒ loss ≈ ln(vocab).
	want := math.Log(float64(g.Cfg.Vocab))
	if math.Abs(loss-want) > 0.5 {
		t.Errorf("initial loss %.3f far from ln(V)=%.3f", loss, want)
	}
}

// TestGradCheck verifies the full analytic backward pass against central
// finite differences on a sample of parameters from every layer type.
func TestGradCheck(t *testing.T) {
	g := tinyModel(3)
	tokens, targets := tinyBatch(g, 4, 2, 6)
	batch, seq := 2, 6

	g.Params().ZeroGrads()
	_, cache := g.Forward(tokens, targets, batch, seq)
	g.Backward(cache, 1)

	const eps = 1e-3
	const tol = 2e-2 // relative, fp32 forward differencing is noisy
	checked := 0
	for _, p := range g.Params() {
		// Sample a few indices per parameter.
		idxs := []int{0, p.Size() / 2, p.Size() - 1}
		for _, idx := range idxs {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + eps
			lp, _ := g.Forward(tokens, targets, batch, seq)
			p.W.Data[idx] = orig - eps
			lm, _ := g.Forward(tokens, targets, batch, seq)
			p.W.Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.G.Data[idx])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(math.Abs(numeric), math.Abs(analytic))
			if scale > 1e-4 && diff/scale > tol {
				t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g (rel %.3f)",
					p.Name, idx, analytic, numeric, diff/scale)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestGradAccumulationAddsUp(t *testing.T) {
	g := tinyModel(5)
	tok1, tgt1 := tinyBatch(g, 6, 1, 4)
	tok2, tgt2 := tinyBatch(g, 7, 1, 4)

	// Two backward calls accumulate.
	g.Params().ZeroGrads()
	_, c1 := g.Forward(tok1, tgt1, 1, 4)
	g.Backward(c1, 1)
	_, c2 := g.Forward(tok2, tgt2, 1, 4)
	g.Backward(c2, 1)
	accum := g.Blocks[0].WQKV.G.Clone()

	// Separate runs summed manually.
	g.Params().ZeroGrads()
	_, c1 = g.Forward(tok1, tgt1, 1, 4)
	g.Backward(c1, 1)
	first := g.Blocks[0].WQKV.G.Clone()
	g.Params().ZeroGrads()
	_, c2 = g.Forward(tok2, tgt2, 1, 4)
	g.Backward(c2, 1)
	for i := range first.Data {
		want := first.Data[i] + g.Blocks[0].WQKV.G.Data[i]
		if math.Abs(float64(accum.Data[i]-want)) > 1e-5 {
			t.Fatalf("accumulation mismatch at %d", i)
		}
	}
}

func TestLossScaleScalesGradients(t *testing.T) {
	g := tinyModel(9)
	tokens, targets := tinyBatch(g, 10, 1, 4)
	g.Params().ZeroGrads()
	_, c := g.Forward(tokens, targets, 1, 4)
	g.Backward(c, 1)
	base := g.Head.G.Clone()
	g.Params().ZeroGrads()
	_, c = g.Forward(tokens, targets, 1, 4)
	g.Backward(c, 1024)
	for i := range base.Data {
		if math.Abs(float64(g.Head.G.Data[i]-1024*base.Data[i])) > 1e-2*math.Abs(float64(1024*base.Data[i]))+1e-6 {
			t.Fatalf("grad not scaled at %d: %v vs %v", i, g.Head.G.Data[i], 1024*base.Data[i])
		}
	}
}

func TestCausality(t *testing.T) {
	// Changing a future token must not change the loss attributed to
	// earlier positions. We check logits indirectly: loss over position
	// 0..k-1 only (targets beyond masked out by comparing forward
	// losses with identical prefixes).
	g := tinyModel(11)
	seq := 6
	tokens1, targets := tinyBatch(g, 12, 1, seq)
	tokens2 := append([]int(nil), tokens1...)
	tokens2[seq-1] = (tokens2[seq-1] + 1) % g.Cfg.Vocab

	// Per-token losses via crossEntropy on each position: compare
	// total loss restricted to first seq-1 positions by zeroing the
	// final target contribution — instead, compare probabilities of
	// position 0's next-token prediction directly.
	l1 := perPositionLosses(g, tokens1, targets, seq)
	l2 := perPositionLosses(g, tokens2, targets, seq)
	for i := 0; i < seq-1; i++ {
		if math.Abs(l1[i]-l2[i]) > 1e-5 {
			t.Fatalf("position %d loss changed when future token edited: %v vs %v", i, l1[i], l2[i])
		}
	}
}

// perPositionLosses computes token-level losses by running the model and
// extracting each position's cross-entropy from a single forward pass.
func perPositionLosses(g *GPT, tokens, targets []int, seq int) []float64 {
	out := make([]float64, seq)
	for pos := 0; pos < seq; pos++ {
		// Forward on prefix up to pos+1; the last position's loss is
		// position pos's prediction loss.
		pre := tokens[:pos+1]
		tg := targets[:pos+1]
		loss, _ := g.Forward(pre, tg, 1, pos+1)
		// loss is mean over pos+1 tokens; recover sum and subtract
		// previous sums to isolate the final position.
		out[pos] = loss * float64(pos+1)
		if pos > 0 {
			prev, _ := g.Forward(tokens[:pos], targets[:pos], 1, pos)
			out[pos] -= prev * float64(pos)
		}
	}
	return out
}

func TestTrainingReducesLoss(t *testing.T) {
	g := tinyModel(21)
	// Learnable pattern: next token = (token + 1) mod V.
	seq, batch := 8, 4
	rng := tensor.NewRNG(33)
	lr := float32(0.05)

	var first, last float64
	for step := 0; step < 200; step++ {
		tokens := make([]int, batch*seq)
		targets := make([]int, batch*seq)
		for i := range tokens {
			tokens[i] = rng.Intn(g.Cfg.Vocab)
			targets[i] = (tokens[i] + 1) % g.Cfg.Vocab
		}
		g.Params().ZeroGrads()
		loss, cache := g.Forward(tokens, targets, batch, seq)
		g.Backward(cache, 1)
		if step == 0 {
			first = loss
		}
		last = loss
		for _, p := range g.Params() {
			tensor.AXPY(-lr, p.G.Data, p.W.Data)
		}
	}
	if last > first*0.7 {
		t.Errorf("SGD did not learn: first %.3f, last %.3f", first, last)
	}
}

func TestParamsRegistryComplete(t *testing.T) {
	g := tinyModel(1)
	// 2 embeddings + L*12 block params + 2 final LN + head.
	want := 2 + g.Cfg.Layers*12 + 2 + 1
	if len(g.Params()) != want {
		t.Errorf("param count %d, want %d", len(g.Params()), want)
	}
	if g.NumParams() != g.Params().TotalSize() {
		t.Error("NumParams mismatch")
	}
	ws := g.Params().WeightSlices()
	gs := g.Params().GradSlices()
	if len(ws) != len(gs) || len(ws) != len(g.Params()) {
		t.Error("slice views wrong length")
	}
}

func TestForwardPanicsOnBadInput(t *testing.T) {
	g := tinyModel(1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("shape", func() { g.Forward([]int{1, 2}, []int{1}, 1, 2) })
	mustPanic("seq too long", func() {
		tk := make([]int, 100)
		g.Forward(tk, tk, 1, 100)
	})
	mustPanic("bad token", func() { g.Forward([]int{9999}, []int{0}, 1, 1) })
}
