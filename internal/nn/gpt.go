package nn

import (
	"fmt"

	"superoffload/internal/model"
	"superoffload/internal/tensor"
)

// Block is one pre-norm transformer block: x += Attn(LN1(x)); x += MLP(LN2(x)).
type Block struct {
	LN1G, LN1B *Param
	WQKV, BQKV *Param
	WO, BO     *Param
	LN2G, LN2B *Param
	W1, B1     *Param
	W2, B2     *Param
	heads      int
}

// GPT is a causal decoder-only transformer with learned positional
// embeddings and an untied LM head.
type GPT struct {
	Cfg    model.Config
	MaxSeq int

	TokEmb *Param // (vocab, hidden)
	PosEmb *Param // (maxSeq, hidden)
	Blocks []*Block
	LNFG   *Param // final layernorm gain
	LNFB   *Param // final layernorm bias
	Head   *Param // (hidden, vocab)

	params Params

	// ws is the per-model step arena (see workspace.go): reset at every
	// Forward/ForwardSP, it hands the pass its transient tensors so
	// steady-state training steps allocate almost nothing.
	ws workspace

	// tap, when set, observes layer boundaries on the single-rank path
	// (see SetActivationTap): forward stashes each block's retained
	// activations as it completes, backward fetches them back just in
	// time.
	tap ActivationTap
}

// NewGPT builds a model with N(0, 0.02) initialization (residual
// projections scaled down by depth, GPT-2 style).
func NewGPT(cfg model.Config, maxSeq int, rng *tensor.RNG) *GPT {
	return newGPT(cfg, maxSeq, func(std float32, shape ...int) *tensor.Tensor {
		return tensor.Randn(rng, std, shape...)
	})
}

// newGPT wires the architecture with the given weight initializer (random
// for fresh models, zero for replicas about to be overwritten).
func newGPT(cfg model.Config, maxSeq int, randn func(std float32, shape ...int) *tensor.Tensor) *GPT {
	if cfg.Heads < 1 {
		panic(fmt.Sprintf("nn: config needs at least one attention head, got %d", cfg.Heads))
	}
	if cfg.Hidden%cfg.Heads != 0 {
		panic(fmt.Sprintf("nn: hidden %d not divisible by heads %d: attention would silently truncate the head dim to %d and train corrupted projections",
			cfg.Hidden, cfg.Heads, cfg.Hidden/cfg.Heads))
	}
	c := cfg.Hidden
	g := &GPT{Cfg: cfg, MaxSeq: maxSeq}
	add := func(p *Param) *Param {
		g.params = append(g.params, p)
		return p
	}
	const std = 0.02
	resStd := float32(std / float32(1+cfg.Layers))

	g.TokEmb = add(newParam("tok_emb", randn(std, cfg.Vocab, c)))
	g.PosEmb = add(newParam("pos_emb", randn(std, maxSeq, c)))
	for l := 0; l < cfg.Layers; l++ {
		blk := &Block{heads: cfg.Heads}
		name := func(s string) string { return fmt.Sprintf("h%d.%s", l, s) }
		blk.LN1G = add(newParam(name("ln1.g"), ones(c)))
		blk.LN1B = add(newParam(name("ln1.b"), tensor.New(c)))
		blk.WQKV = add(newParam(name("attn.wqkv"), randn(std, c, 3*c)))
		blk.BQKV = add(newParam(name("attn.bqkv"), tensor.New(3*c)))
		blk.WO = add(newParam(name("attn.wo"), randn(resStd, c, c)))
		blk.BO = add(newParam(name("attn.bo"), tensor.New(c)))
		blk.LN2G = add(newParam(name("ln2.g"), ones(c)))
		blk.LN2B = add(newParam(name("ln2.b"), tensor.New(c)))
		blk.W1 = add(newParam(name("mlp.w1"), randn(std, c, 4*c)))
		blk.B1 = add(newParam(name("mlp.b1"), tensor.New(4*c)))
		blk.W2 = add(newParam(name("mlp.w2"), randn(resStd, 4*c, c)))
		blk.B2 = add(newParam(name("mlp.b2"), tensor.New(c)))
		g.Blocks = append(g.Blocks, blk)
	}
	g.LNFG = add(newParam("lnf.g", ones(c)))
	g.LNFB = add(newParam("lnf.b", tensor.New(c)))
	g.Head = add(newParam("head", randn(std, c, cfg.Vocab)))
	return g
}

func ones(n int) *tensor.Tensor {
	t := tensor.New(n)
	t.Fill(1)
	return t
}

// Params returns all trainable parameters in registration order — the
// order the offload engine buckets them in.
func (g *GPT) Params() Params { return g.params }

// Clone returns a new GPT with the same architecture and bit-identical
// weights — a data-parallel replica. Gradients start zeroed. Weights are
// copied, not re-sampled, so cloning costs one pass over the parameters.
func (g *GPT) Clone() *GPT {
	c := newGPT(g.Cfg, g.MaxSeq, func(_ float32, shape ...int) *tensor.Tensor {
		return tensor.New(shape...)
	})
	for i, p := range g.params {
		copy(c.params[i].W.Data, p.W.Data)
	}
	return c
}

// NumParams returns the total trainable element count.
func (g *GPT) NumParams() int { return g.params.TotalSize() }

// blockCache retains one block's forward intermediates.
type blockCache struct {
	xIn   *tensor.Tensor // block input
	ln1   *layerNormCache
	attn  *attnCache
	res1  *tensor.Tensor // x + attn
	ln2   *layerNormCache
	ln2y  *tensor.Tensor
	h1    *tensor.Tensor // pre-GELU
	hGelu *tensor.Tensor
}

// FwdCache retains one iteration's intermediates for Backward.
type FwdCache struct {
	tokens     []int
	batch, seq int
	embedded   *tensor.Tensor
	blocks     []*blockCache
	lnf        *layerNormCache
	lnfy       *tensor.Tensor
	dlogits    *tensor.Tensor
}

// Forward runs the model over a (batch, seq) token matrix flattened
// row-major into tokens, computing mean cross-entropy loss against targets
// (same layout). Returns the loss; call Backward to populate gradients.
func (g *GPT) Forward(tokens []int, targets []int, batch, seq int) (float64, *FwdCache) {
	if len(tokens) != batch*seq || len(targets) != batch*seq {
		panic("nn: token/target shape mismatch")
	}
	if seq > g.MaxSeq {
		panic(fmt.Sprintf("nn: seq %d exceeds max %d", seq, g.MaxSeq))
	}
	c := g.Cfg.Hidden
	n := batch * seq

	ws := &g.ws
	ws.reset()
	x := ws.get(n, c)
	for i, tok := range tokens {
		if tok < 0 || tok >= g.Cfg.Vocab {
			panic(fmt.Sprintf("nn: token %d out of vocab", tok))
		}
		t := i % seq
		dst := x.Data[i*c : (i+1)*c]
		te := g.TokEmb.W.Data[tok*c : (tok+1)*c]
		pe := g.PosEmb.W.Data[t*c : (t+1)*c]
		for j := 0; j < c; j++ {
			dst[j] = te[j] + pe[j]
		}
	}

	cache := &FwdCache{tokens: tokens, batch: batch, seq: seq, embedded: x}
	if g.tap != nil {
		g.tap.BeginPass(len(g.Blocks), n, seq)
	}
	for l, blk := range g.Blocks {
		bc := &blockCache{xIn: x}
		ln1y, ln1c := layerNorm(ws, x, blk.LN1G, blk.LN1B)
		bc.ln1 = ln1c
		attnY, attnC := blk.attention(ws, ln1y, batch, seq)
		bc.attn = attnC
		res1 := ws.get(n, c)
		tensor.AddInto(res1, x, attnY)
		bc.res1 = res1

		ln2y, ln2c := layerNorm(ws, res1, blk.LN2G, blk.LN2B)
		bc.ln2, bc.ln2y = ln2c, ln2y
		h1 := linear(ws, ln2y, blk.W1, blk.B1)
		bc.h1 = h1
		hg := gelu(ws, h1)
		bc.hGelu = hg
		h2 := linear(ws, hg, blk.W2, blk.B2)

		x2 := ws.get(n, c)
		tensor.AddInto(x2, res1, h2)
		x = x2
		cache.blocks = append(cache.blocks, bc)
		if g.tap != nil {
			g.tap.StashLayer(l, bc.actBufs())
		}
	}

	lnfy, lnfc := layerNorm(ws, x, g.LNFG, g.LNFB)
	cache.lnf, cache.lnfy = lnfc, lnfy
	logits := linear(ws, lnfy, g.Head, nil)
	loss, dlogits := crossEntropy(ws, logits, targets)
	cache.dlogits = dlogits
	return loss, cache
}

// Backward accumulates gradients for the iteration captured in cache.
// Gradients add into Params().G, so gradient accumulation across
// micro-batches works by not zeroing between calls. lossScale multiplies
// the loss (mixed-precision loss scaling); gradients come out scaled.
func (g *GPT) Backward(cache *FwdCache, lossScale float64) {
	ws := &g.ws
	dlogits := cache.dlogits
	if lossScale != 1 {
		dlogits = ws.get(cache.dlogits.Dim(0), cache.dlogits.Dim(1))
		copy(dlogits.Data, cache.dlogits.Data)
		dlogits.Scale(float32(lossScale))
	}
	dlnfy := linearBackward(ws, cache.lnfy, dlogits, g.Head, nil)
	dx := layerNormBackward(ws, dlnfy, cache.lnf, g.LNFG, g.LNFB)

	for l := len(g.Blocks) - 1; l >= 0; l-- {
		blk := g.Blocks[l]
		bc := cache.blocks[l]
		if g.tap != nil {
			g.tap.FetchLayer(l)
		}

		// MLP branch: x2 = res1 + W2·gelu(W1·ln2(res1)).
		dh2 := dx
		dhg := linearBackward(ws, bc.hGelu, dh2, blk.W2, blk.B2)
		dh1 := geluBackward(ws, dhg, bc.h1)
		dln2y := linearBackward(ws, bc.ln2y, dh1, blk.W1, blk.B1)
		dres1FromMLP := layerNormBackward(ws, dln2y, bc.ln2, blk.LN2G, blk.LN2B)
		dres1 := ws.get(dx.Dim(0), dx.Dim(1))
		tensor.AddInto(dres1, dx, dres1FromMLP)

		// Attention branch: res1 = xIn + attn(ln1(xIn)).
		dattn := dres1
		dln1y := blk.attentionBackward(ws, dattn, bc.attn)
		dxFromAttn := layerNormBackward(ws, dln1y, bc.ln1, blk.LN1G, blk.LN1B)
		dxNext := ws.get(dx.Dim(0), dx.Dim(1))
		tensor.AddInto(dxNext, dres1, dxFromAttn)
		dx = dxNext
	}

	// Embedding gradients.
	c := g.Cfg.Hidden
	for i, tok := range cache.tokens {
		t := i % cache.seq
		src := dx.Data[i*c : (i+1)*c]
		te := g.TokEmb.G.Data[tok*c : (tok+1)*c]
		pe := g.PosEmb.G.Data[t*c : (t+1)*c]
		for j := 0; j < c; j++ {
			te[j] += src[j]
			pe[j] += src[j]
		}
	}
}
