package nn

import (
	"math"

	"superoffload/internal/tensor"
)

// ---- Linear ----

// linear computes y = x·W + b for x (n,in), W (in,out), b (out).
func linear(ws *workspace, x *tensor.Tensor, w, b *Param) *tensor.Tensor {
	y := ws.get(x.Dim(0), w.W.Dim(1))
	tensor.MatMulInto(y, x, w.W)
	if b != nil {
		n, out := y.Dim(0), y.Dim(1)
		for i := 0; i < n; i++ {
			row := y.Data[i*out : (i+1)*out]
			for j := range row {
				row[j] += b.W.Data[j]
			}
		}
	}
	return y
}

// linearBackward accumulates dW = xᵀ·dy, db = colsum(dy) and returns
// dx = dy·Wᵀ.
func linearBackward(ws *workspace, x, dy *tensor.Tensor, w, b *Param) *tensor.Tensor {
	dw := ws.get(x.Dim(1), dy.Dim(1))
	tensor.TMatMulInto(dw, x, dy)
	tensor.AXPY(1, dw.Data, w.G.Data)
	if b != nil {
		n, out := dy.Dim(0), dy.Dim(1)
		for i := 0; i < n; i++ {
			row := dy.Data[i*out : (i+1)*out]
			for j := range row {
				b.G.Data[j] += row[j]
			}
		}
	}
	dx := ws.get(dy.Dim(0), w.W.Dim(0))
	tensor.MatMulTInto(dx, dy, w.W)
	return dx
}

// ---- LayerNorm ----

type layerNormCache struct {
	x      *tensor.Tensor
	invStd []float32
	mean   []float32
}

const lnEps = 1e-5

// layerNorm normalizes each row of x and applies gain g and bias b.
func layerNorm(ws *workspace, x *tensor.Tensor, g, b *Param) (*tensor.Tensor, *layerNormCache) {
	n, c := x.Dim(0), x.Dim(1)
	y := ws.get(n, c)
	cache := &layerNormCache{x: x, invStd: ws.floats(n), mean: ws.floats(n)}
	for i := 0; i < n; i++ {
		row := x.Data[i*c : (i+1)*c]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(c)
		var variance float64
		for _, v := range row {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(c)
		invStd := float32(1 / math.Sqrt(variance+lnEps))
		cache.invStd[i] = invStd
		cache.mean[i] = float32(mean)
		out := y.Data[i*c : (i+1)*c]
		for j, v := range row {
			xhat := (v - float32(mean)) * invStd
			out[j] = xhat*g.W.Data[j] + b.W.Data[j]
		}
	}
	return y, cache
}

// layerNormBackward accumulates gain/bias grads and returns dx.
func layerNormBackward(ws *workspace, dy *tensor.Tensor, cache *layerNormCache, g, b *Param) *tensor.Tensor {
	accumLayerNormRows(g.G.Data, b.G.Data, cache, dy, 0, dy.Dim(0))
	return layerNormBackwardDX(ws, dy, cache, g)
}

// accumLayerNormRows folds rows [lo,hi)'s gain/bias gradient contributions
// into dstG/dstB, one row at a time in ascending order — the accumulation
// order layerNormBackward has always used, factored out so the
// sequence-parallel ring replay (see seqparallel.go) reproduces it
// bit-for-bit from any starting partial.
func accumLayerNormRows(dstG, dstB []float32, cache *layerNormCache, dy *tensor.Tensor, lo, hi int) {
	c := dy.Dim(1)
	for i := lo; i < hi; i++ {
		xrow := cache.x.Data[i*c : (i+1)*c]
		dyRow := dy.Data[i*c : (i+1)*c]
		invStd := cache.invStd[i]
		mean := cache.mean[i]
		for j := 0; j < c; j++ {
			xhat := (xrow[j] - mean) * invStd
			dstG[j] += dyRow[j] * xhat
			dstB[j] += dyRow[j]
		}
	}
}

// layerNormBackwardDX computes dx without touching parameter gradients —
// the propagation half of layerNormBackward, used directly by the
// sequence-parallel backward (whose weight grads flow through the ring
// replay instead).
func layerNormBackwardDX(ws *workspace, dy *tensor.Tensor, cache *layerNormCache, g *Param) *tensor.Tensor {
	n, c := dy.Dim(0), dy.Dim(1)
	dx := ws.get(n, c)
	dxhat := ws.floats(c)
	for i := 0; i < n; i++ {
		xrow := cache.x.Data[i*c : (i+1)*c]
		dyRow := dy.Data[i*c : (i+1)*c]
		invStd := cache.invStd[i]
		mean := cache.mean[i]
		// Accumulate the two row-reductions the backward needs.
		var sumDxhat, sumDxhatXhat float64
		for j := 0; j < c; j++ {
			xhat := (xrow[j] - mean) * invStd
			d := dyRow[j] * g.W.Data[j]
			dxhat[j] = d
			sumDxhat += float64(d)
			sumDxhatXhat += float64(d) * float64(xhat)
		}
		mDxhat := float32(sumDxhat / float64(c))
		mDxhatXhat := float32(sumDxhatXhat / float64(c))
		out := dx.Data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			xhat := (xrow[j] - mean) * invStd
			out[j] = (dxhat[j] - mDxhat - xhat*mDxhatXhat) * invStd
		}
	}
	return dx
}

// ---- GELU (tanh approximation) ----

const geluK = 0.7978845608028654 // sqrt(2/pi)

func geluScalar(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluK*(x+0.044715*x*x*x)))
}

func geluGradScalar(x float64) float64 {
	u := geluK * (x + 0.044715*x*x*x)
	t := math.Tanh(u)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*geluK*(1+3*0.044715*x*x)
}

// gelu applies GELU elementwise, returning output (input retained by the
// caller for backward).
func gelu(ws *workspace, x *tensor.Tensor) *tensor.Tensor {
	y := ws.get(x.Dim(0), x.Dim(1))
	for i, v := range x.Data {
		y.Data[i] = float32(geluScalar(float64(v)))
	}
	return y
}

// geluBackward returns dx = dy ⊙ gelu'(x).
func geluBackward(ws *workspace, dy, x *tensor.Tensor) *tensor.Tensor {
	dx := ws.get(x.Dim(0), x.Dim(1))
	for i := range x.Data {
		dx.Data[i] = dy.Data[i] * float32(geluGradScalar(float64(x.Data[i])))
	}
	return dx
}

// ---- softmax cross-entropy ----

// crossEntropy computes mean token loss over logits (n, vocab) against
// integer targets, and the gradient dlogits = (softmax - onehot)/n.
func crossEntropy(ws *workspace, logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	n := logits.Dim(0)
	losses, dlogits := crossEntropyRows(ws, logits, targets, n)
	var loss float64
	for _, l := range losses {
		loss += l
	}
	return loss / float64(n), dlogits
}

// crossEntropyRows computes the per-row token losses and the gradient
// dlogits = (softmax - onehot)/globalN. globalN is the row count of the
// whole (possibly sequence-sharded) batch: a sequence-parallel rank holds
// only its shard's rows but normalizes by the global count, so summing the
// per-row losses over all ranks in global row order and dividing by
// globalN reproduces crossEntropy's mean loss bit-for-bit.
func crossEntropyRows(ws *workspace, logits *tensor.Tensor, targets []int, globalN int) ([]float64, *tensor.Tensor) {
	n, v := logits.Dim(0), logits.Dim(1)
	if len(targets) != n {
		panic("nn: target length mismatch")
	}
	dlogits := ws.get(n, v)
	// Losses are returned to the engine (SP ranks fold them across the
	// step boundary), so they must not come from the workspace.
	losses := make([]float64, n)
	invN := float32(1.0 / float64(globalN))
	for i := 0; i < n; i++ {
		row := logits.Data[i*v : (i+1)*v]
		maxv := row[0]
		for _, x := range row[1:] {
			if x > maxv {
				maxv = x
			}
		}
		var sum float64
		for _, x := range row {
			sum += math.Exp(float64(x - maxv))
		}
		logSum := math.Log(sum) + float64(maxv)
		tgt := targets[i]
		losses[i] = logSum - float64(row[tgt])
		drow := dlogits.Data[i*v : (i+1)*v]
		for j, x := range row {
			p := float32(math.Exp(float64(x) - logSum))
			drow[j] = p * invN
		}
		drow[tgt] -= invN
	}
	return losses, dlogits
}
