package nn

import (
	"math"

	"superoffload/internal/tensor"
)

// attnCache retains what causal self-attention needs for its backward pass.
type attnCache struct {
	x       *tensor.Tensor // block input after layernorm, (B*T, C)
	qkv     *tensor.Tensor // fused projections, (B*T, 3C)
	attnOut *tensor.Tensor // pre-projection concat of heads, (B*T, C)
	probs   []*tensor.Tensor
	// probs[b*heads+h] is the post-softmax score matrix (T, T).
	batch, seq, heads int
}

// attendHeadInto runs causal attention for one head over full-sequence q,
// k, v (T, hs), writing the head output into o (T, hs) and the
// post-softmax score matrix into probs (T, T); both are fully overwritten.
// This is the head-sharded entry point the sequence-parallel path shares
// with the local path: after the first all-to-all a rank holds exactly
// these (T, hs) tensors for its heads, so both paths run the same math on
// the same shapes.
func attendHeadInto(o, probs, q, k, v *tensor.Tensor, scale float32) {
	tensor.MatMulTInto(probs, q, k) // (T,T)
	probs.Scale(scale)
	applyCausalMask(probs)
	probs.SoftmaxRows()
	tensor.MatMulInto(o, probs, v) // (T,hs)
}

// attendHead is attendHeadInto with freshly allocated outputs.
func attendHead(q, k, v *tensor.Tensor, scale float32) (o, probs *tensor.Tensor) {
	seq, hs := q.Dim(0), q.Dim(1)
	o, probs = tensor.New(seq, hs), tensor.New(seq, seq)
	attendHeadInto(o, probs, q, k, v, scale)
	return o, probs
}

// attendHeadBackwardInto is attendHead's adjoint: given the cached probs p
// and the head's q, k, v and upstream do (all full-sequence), it writes
// dq, dk, dv (each (T, hs), fully overwritten). dp and ds are (T, T)
// caller scratch. No parameters are touched — head attention is
// weight-free.
func attendHeadBackwardInto(dq, dk, dv, dp, ds *tensor.Tensor, p, q, k, v, do *tensor.Tensor, scale float32) {
	seq := p.Dim(0)
	tensor.TMatMulInto(dv, p, do) // (T,hs)
	tensor.MatMulTInto(dp, do, v) // (T,T)

	// Softmax backward row-wise: dS = P ⊙ (dP − rowSum(dP⊙P)).
	for i := 0; i < seq; i++ {
		prow := p.Row(i)
		dprow := dp.Row(i)
		var dot float64
		for j := range prow {
			dot += float64(prow[j]) * float64(dprow[j])
		}
		dsrow := ds.Row(i)
		for j := range prow {
			dsrow[j] = prow[j] * (dprow[j] - float32(dot))
		}
	}
	ds.Scale(scale)

	tensor.MatMulInto(dq, ds, k)  // (T,hs)
	tensor.TMatMulInto(dk, ds, q) // (T,hs)
}

// attendHeadBackward is attendHeadBackwardInto with fresh outputs.
func attendHeadBackward(p, q, k, v, do *tensor.Tensor, scale float32) (dq, dk, dv *tensor.Tensor) {
	seq, hs := q.Dim(0), q.Dim(1)
	dq, dk, dv = tensor.New(seq, hs), tensor.New(seq, hs), tensor.New(seq, hs)
	dp, ds := tensor.New(seq, seq), tensor.New(seq, seq)
	attendHeadBackwardInto(dq, dk, dv, dp, ds, p, q, k, v, do, scale)
	return dq, dk, dv
}

// attention runs causal multi-head self-attention over x (B*T, C).
func (blk *Block) attention(ws *workspace, x *tensor.Tensor, batch, seq int) (*tensor.Tensor, *attnCache) {
	c := x.Dim(1)
	heads := blk.heads
	hs := c / heads
	scale := float32(1 / math.Sqrt(float64(hs)))

	qkv := linear(ws, x, blk.WQKV, blk.BQKV)
	out := ws.zeros(batch*seq, c) // scatterHead accumulates into it
	cache := &attnCache{x: x, qkv: qkv, batch: batch, seq: seq, heads: heads,
		probs: make([]*tensor.Tensor, batch*heads)}

	q := ws.get(seq, hs)
	k := ws.get(seq, hs)
	v := ws.get(seq, hs)
	o := ws.get(seq, hs)
	for b := 0; b < batch; b++ {
		for h := 0; h < heads; h++ {
			gatherHead(q, qkv, b, seq, 3*c, 0*c+h*hs, hs)
			gatherHead(k, qkv, b, seq, 3*c, 1*c+h*hs, hs)
			gatherHead(v, qkv, b, seq, 3*c, 2*c+h*hs, hs)

			probs := ws.get(seq, seq) // retained per head until backward
			attendHeadInto(o, probs, q, k, v, scale)
			cache.probs[b*heads+h] = probs
			scatterHead(out, o, b, seq, c, h*hs, hs)
		}
	}
	proj := linear(ws, out, blk.WO, blk.BO)
	cache.attnOut = out
	return proj, cache
}

// attentionBackward consumes dProj and returns dx, accumulating weight
// gradients along the way.
func (blk *Block) attentionBackward(ws *workspace, dProj *tensor.Tensor, cache *attnCache) *tensor.Tensor {
	c := cache.x.Dim(1)
	heads := cache.heads
	hs := c / heads
	seq := cache.seq
	scale := float32(1 / math.Sqrt(float64(hs)))

	dOut := linearBackward(ws, cache.attnOut, dProj, blk.WO, blk.BO)
	dqkv := ws.zeros(cache.batch*seq, 3*c)

	q := ws.get(seq, hs)
	k := ws.get(seq, hs)
	v := ws.get(seq, hs)
	do := ws.get(seq, hs)
	dq := ws.get(seq, hs)
	dk := ws.get(seq, hs)
	dv := ws.get(seq, hs)
	dp := ws.get(seq, seq)
	ds := ws.get(seq, seq)
	for b := 0; b < cache.batch; b++ {
		for h := 0; h < heads; h++ {
			gatherHead(q, cache.qkv, b, seq, 3*c, 0*c+h*hs, hs)
			gatherHead(k, cache.qkv, b, seq, 3*c, 1*c+h*hs, hs)
			gatherHead(v, cache.qkv, b, seq, 3*c, 2*c+h*hs, hs)
			gatherHead(do, dOut, b, seq, c, h*hs, hs)

			attendHeadBackwardInto(dq, dk, dv, dp, ds, cache.probs[b*heads+h], q, k, v, do, scale)

			scatterHead(dqkv, dq, b, seq, 3*c, 0*c+h*hs, hs)
			scatterHead(dqkv, dk, b, seq, 3*c, 1*c+h*hs, hs)
			scatterHead(dqkv, dv, b, seq, 3*c, 2*c+h*hs, hs)
		}
	}
	return linearBackward(ws, cache.x, dqkv, blk.WQKV, blk.BQKV)
}

// gatherHead copies column window [col,col+hs) of rows b*seq..(b+1)*seq of
// src (row width w) into dst (seq, hs).
func gatherHead(dst, src *tensor.Tensor, b, seq, w, col, hs int) {
	for t := 0; t < seq; t++ {
		srow := src.Data[(b*seq+t)*w+col : (b*seq+t)*w+col+hs]
		copy(dst.Data[t*hs:(t+1)*hs], srow)
	}
}

// scatterHead adds src (seq, hs) into the column window of dst.
func scatterHead(dst, src *tensor.Tensor, b, seq, w, col, hs int) {
	for t := 0; t < seq; t++ {
		drow := dst.Data[(b*seq+t)*w+col : (b*seq+t)*w+col+hs]
		srow := src.Data[t*hs : (t+1)*hs]
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// applyCausalMask sets strictly-upper-triangular entries to -inf before the
// softmax so token i attends only to ≤ i.
func applyCausalMask(scores *tensor.Tensor) {
	t := scores.Dim(0)
	negInf := float32(math.Inf(-1))
	for i := 0; i < t; i++ {
		row := scores.Row(i)
		for j := i + 1; j < t; j++ {
			row[j] = negInf
		}
	}
}
