package nn

import (
	"strings"
	"sync"
	"testing"

	"superoffload/internal/model"
	"superoffload/internal/tensor"
)

// testAllToAll is a minimal channel collective for driving ForwardSP /
// BackwardSP from S goroutines in tests.
type testAllToAll struct {
	s  int
	ch [][]chan []float32 // ch[dst][src]
}

func newTestAllToAll(s int) *testAllToAll {
	w := &testAllToAll{s: s, ch: make([][]chan []float32, s)}
	for d := 0; d < s; d++ {
		w.ch[d] = make([]chan []float32, s)
		for src := 0; src < s; src++ {
			w.ch[d][src] = make(chan []float32, 1)
		}
	}
	return w
}

func (w *testAllToAll) fn(rank int) func([][]float32) [][]float32 {
	return func(payloads [][]float32) [][]float32 {
		for d := 0; d < w.s; d++ {
			w.ch[d][rank] <- payloads[d]
		}
		out := make([][]float32, w.s)
		for src := 0; src < w.s; src++ {
			out[src] = <-w.ch[rank][src]
		}
		return out
	}
}

// shardSeq extracts rank s's sequence shard of every batch row.
func shardSeq(xs []int, batch, seq, ranks, rank int) []int {
	tl := seq / ranks
	out := make([]int, 0, batch*tl)
	for b := 0; b < batch; b++ {
		out = append(out, xs[b*seq+rank*tl:b*seq+rank*tl+tl]...)
	}
	return out
}

func flatGrads(g *GPT) []float32 {
	out := make([]float32, 0, g.Params().TotalSize())
	for _, p := range g.Params() {
		out = append(out, p.G.Data...)
	}
	return out
}

// runSP executes one sequence-parallel forward/backward over S goroutines
// sharing the model's weights, then replays the weight-gradient ring in
// (batch row, shard) order into a flat buffer. Returns the folded mean
// loss and the reduced gradient.
func runSP(t *testing.T, g *GPT, tokens, targets []int, batch, seq, ranks int, lossScale float64) (float64, []float32) {
	t.Helper()
	world := newTestAllToAll(ranks)
	tl := seq / ranks
	rows := make([][]float64, ranks)
	caches := make([]*SPCache, ranks)
	var wg sync.WaitGroup
	for s := 0; s < ranks; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sp := &SP{Rank: s, Ranks: ranks, AllToAll: world.fn(s)}
			toks := shardSeq(tokens, batch, seq, ranks, s)
			tgts := shardSeq(targets, batch, seq, ranks, s)
			losses, cache := g.ForwardSP(toks, tgts, batch, tl, sp)
			g.BackwardSP(cache, lossScale, sp)
			rows[s], caches[s] = losses, cache
		}(s)
	}
	wg.Wait()

	// Fold per-row losses in global row order — crossEntropy's fold.
	var loss float64
	for b := 0; b < batch; b++ {
		for s := 0; s < ranks; s++ {
			for tl2 := 0; tl2 < tl; tl2++ {
				loss += rows[s][b*tl+tl2]
			}
		}
	}
	loss /= float64(batch * seq)

	// Ring replay: (batch row, shard) hops visit rows in ascending global
	// order.
	flat := make([]float32, g.Params().TotalSize())
	for b := 0; b < batch; b++ {
		for s := 0; s < ranks; s++ {
			caches[s].AccumBatchRow(flat, b)
		}
	}
	return loss, flat
}

// TestSPMatchesSingleRank is the nn-level heart of the sequence-parallel
// engine: for S ∈ {1,2,4}, the folded loss and the ring-reduced gradient
// must equal the single-rank Forward/Backward bit for bit.
func TestSPMatchesSingleRank(t *testing.T) {
	cfg := model.Config{Name: "sp", Layers: 2, Hidden: 32, Heads: 4, Vocab: 64}
	const batch, seq = 3, 8
	for _, scale := range []float64{1, 1024} {
		g := NewGPT(cfg, seq, tensor.NewRNG(11))
		tokens, targets := tinyBatch(g, 5, batch, seq)

		refLoss, cache := g.Forward(tokens, targets, batch, seq)
		g.Params().ZeroGrads()
		g.Backward(cache, scale)
		refGrads := flatGrads(g)

		for _, ranks := range []int{1, 2, 4} {
			loss, grads := runSP(t, g, tokens, targets, batch, seq, ranks, scale)
			if loss != refLoss {
				t.Errorf("S=%d scale=%v: loss %v != single-rank %v", ranks, scale, loss, refLoss)
			}
			if len(grads) != len(refGrads) {
				t.Fatalf("S=%d: grad size %d != %d", ranks, len(grads), len(refGrads))
			}
			for i := range grads {
				if grads[i] != refGrads[i] {
					t.Fatalf("S=%d scale=%v: gradient diverges at flat index %d: %v vs %v",
						ranks, scale, i, grads[i], refGrads[i])
				}
			}
		}
	}
}

// TestValidateSP covers the sharding-arithmetic guards.
func TestValidateSP(t *testing.T) {
	cfg := model.Config{Name: "v", Layers: 1, Hidden: 32, Heads: 4, Vocab: 16}
	g := NewGPT(cfg, 16, tensor.NewRNG(1))
	cases := []struct {
		ranks, seq int
		wantErr    string
	}{
		{0, 8, "must be >= 1"},
		{3, 12, "heads not divisible"},
		{2, 7, "not divisible by 2 sequence ranks"},
		{2, 32, "exceeds max"},
		{2, 8, ""},
		{4, 8, ""},
	}
	for _, c := range cases {
		err := g.ValidateSP(c.ranks, c.seq)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ValidateSP(%d,%d) = %v, want nil", c.ranks, c.seq, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ValidateSP(%d,%d) = %v, want error containing %q", c.ranks, c.seq, err, c.wantErr)
		}
	}
}

// TestNewGPTRejectsBadHeads: a hidden size the head count does not divide
// must fail loudly instead of silently truncating the head dimension.
func TestNewGPTRejectsBadHeads(t *testing.T) {
	mustPanic := func(name string, cfg model.Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewGPT accepted invalid config %+v", name, cfg)
			}
		}()
		NewGPT(cfg, 8, tensor.NewRNG(1))
	}
	mustPanic("indivisible", model.Config{Name: "bad", Layers: 1, Hidden: 30, Heads: 4, Vocab: 16})
	mustPanic("zero-heads", model.Config{Name: "bad", Layers: 1, Hidden: 32, Heads: 0, Vocab: 16})
}
