package dp

import (
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/stv"
)

// closeable is the lifecycle surface the idempotency tests drive.
type closeable interface {
	Close() error
}

// buildEngines constructs all five engine flavors over NVMe-backed
// stores (the backend with real resources to double-release) and steps
// each one WITHOUT flushing, so a speculative step's validation is
// still in flight when Close arrives. Run under -race, this covers the
// close-while-validation-pending path: closeWorld must drain the
// background aggregator before tearing the world down.
func buildEngines(t *testing.T) map[string]closeable {
	t.Helper()
	engines := map[string]closeable{}
	corpus := data.NewCorpus(64, 11)

	mk := func(name string, build func(cfg Config) (closeable, func(b data.Batch) error)) {
		cfg := meshConfig(1, 1)
		cfg.NewStore = nvmeFactory(t)
		eng, step := build(cfg)
		if err := step(corpus.NextBatch(2, 8)); err != nil {
			t.Fatalf("%s: step: %v", name, err)
		}
		engines[name] = eng
	}
	mk("dp", func(cfg Config) (closeable, func(b data.Batch) error) {
		cfg.Ranks = 2
		e, err := New(tinyGPT(3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e, func(b data.Batch) error { _, err := e.Step(b); return err }
	})
	mk("sp", func(cfg Config) (closeable, func(b data.Batch) error) {
		cfg.Ranks = 2
		e, err := NewSP(tinyGPT(3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e, func(b data.Batch) error { _, err := e.Step(b); return err }
	})
	mk("mesh", func(cfg Config) (closeable, func(b data.Batch) error) {
		cfg.Ranks, cfg.SeqRanks = 2, 2
		e, err := NewMesh(tinyGPT(3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e, func(b data.Batch) error { _, err := e.Step(b); return err }
	})
	mk("pipe", func(cfg Config) (closeable, func(b data.Batch) error) {
		cfg.Ranks, cfg.SeqRanks, cfg.PipeRanks = 2, 1, 2
		e, err := NewPipe(deepGPT(3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e, func(b data.Batch) error { _, err := e.Step(b); return err }
	})
	mk("stv", func(cfg Config) (closeable, func(b data.Batch) error) {
		sc := stvConfig(cfg)
		store, err := cfg.NewStore(0)
		if err != nil {
			t.Fatal(err)
		}
		sc.Store = store
		e := stv.NewTrainer(tinyGPT(3), sc)
		return e, func(b data.Batch) error { _, err := e.Step(b); return err }
	})
	return engines
}

// TestCloseIdempotent: Close on every engine — with a validation still
// in flight from an unflushed step — must succeed, and a second Close
// must be a harmless no-op (nil error, no panic, no double-release of
// the NVMe stores' worker channels and files).
func TestCloseIdempotent(t *testing.T) {
	for name, eng := range buildEngines(t) {
		if err := eng.Close(); err != nil {
			t.Errorf("%s: first Close: %v", name, err)
		}
		if err := eng.Close(); err != nil {
			t.Errorf("%s: second Close: %v", name, err)
		}
		// And a third, for luck: closed must be absorbing.
		if err := eng.Close(); err != nil {
			t.Errorf("%s: third Close: %v", name, err)
		}
	}
}

// TestCloseRejectsFurtherUse: after Close, the multi-rank engines'
// step/flush/save surfaces must return errors, never deadlock against
// the stopped rank goroutines.
func TestCloseRejectsFurtherUse(t *testing.T) {
	cfg := meshConfig(1, 1)
	cfg.Ranks, cfg.SeqRanks, cfg.PipeRanks = 2, 1, 2
	eng, err := NewPipe(deepGPT(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(64, 11)
	if _, err := eng.Step(corpus.NextBatch(2, 8)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(corpus.NextBatch(2, 8)); err == nil {
		t.Error("Step on a closed engine succeeded")
	}
	if _, err := eng.Flush(); err == nil {
		t.Error("Flush on a closed engine succeeded")
	}
}
