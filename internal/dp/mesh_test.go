package dp

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// meshConfig parameterizes the R×S mesh equivalence runs over tinyGPT
// (equivalence_test.go), whose 4 heads divide by every tested S.
func meshConfig(r, s int) Config {
	a := optim.DefaultConfig()
	a.LR = 3e-3
	return Config{
		Ranks:       r,
		SeqRanks:    s,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    1.0,
		BucketElems: 20000,
	}
}

// meshShapes is the exactness grid the issue pins: every (R,S) in
// {1,2}×{1,2} plus the asymmetric 8-rank shapes.
var meshShapes = [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {2, 4}, {4, 2}}

// runMeshPair trains an R×S mesh and a single-rank stv.Trainer on the
// same global batches (the trainer consumes each batch as the R-way row
// decomposition via gradient accumulation — the DP engine's reference; S
// must be invisible) and returns both loss trajectories. Callers own
// Close.
func runMeshPair(t *testing.T, cfg Config, refCfg stv.Config, steps int, dataSeed uint64, batch, seq int) (*MeshEngine, *stv.Trainer, []float64, []float64) {
	t.Helper()
	eng, err := NewMesh(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := stv.NewTrainer(tinyGPT(42), refCfg)

	corpus := data.NewCorpus(64, dataSeed)
	refCorpus := data.NewCorpus(64, dataSeed)
	var meshLosses, refLosses []float64
	for i := 0; i < steps; i++ {
		l, err := eng.Step(corpus.NextBatch(batch, seq))
		if err != nil {
			t.Fatal(err)
		}
		meshLosses = append(meshLosses, l)

		rl, err := ref.StepAccum(splitBatch(refCorpus.NextBatch(batch, seq), cfg.Ranks, t))
		if err != nil {
			t.Fatal(err)
		}
		refLosses = append(refLosses, rl)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng, ref, meshLosses, refLosses
}

func assertMeshTrajectory(t *testing.T, r, s int, meshLosses, refLosses []float64, eng *MeshEngine, ref *stv.Trainer) {
	t.Helper()
	for i := range meshLosses {
		if meshLosses[i] != refLosses[i] {
			t.Fatalf("R=%d,S=%d: loss diverges at step %d: mesh %v vs single-rank %v",
				r, s, i, meshLosses[i], refLosses[i])
		}
	}
	mw, rw := eng.MasterWeights(), ref.MasterWeights()
	if len(mw) != len(rw) {
		t.Fatalf("R=%d,S=%d: master sizes differ: %d vs %d", r, s, len(mw), len(rw))
	}
	for i := range mw {
		if mw[i] != rw[i] {
			t.Fatalf("R=%d,S=%d: master weights diverge at %d: %v vs %v", r, s, i, mw[i], rw[i])
		}
	}
	if eng.Stats() != ref.Stats() {
		t.Errorf("R=%d,S=%d: stats diverge: mesh %+v vs single-rank %+v", r, s, eng.Stats(), ref.Stats())
	}
}

// TestMeshEquivalenceGrid is the engine's central invariant: for a fixed
// seed and global batch, every (R,S) mesh shape in the grid reproduces
// the single-rank trainer's loss trajectory bit for bit when the trainer
// consumes the same R-way row decomposition (sequence sharding must be
// invisible on top, exactly as in the SP engine). ClipNorm 1.0 makes the
// runs trigger clip rollbacks, so the claim covers the rollback path
// too.
func TestMeshEquivalenceGrid(t *testing.T) {
	for _, shape := range meshShapes {
		r, s := shape[0], shape[1]
		t.Run(fmt.Sprintf("R%dxS%d", r, s), func(t *testing.T) {
			cfg := meshConfig(r, s)
			eng, ref, meshLosses, refLosses := runMeshPair(t, cfg, stvConfig(cfg), 25, 123, 4, 8)
			if eng.Stats().Rollbacks() == 0 {
				t.Errorf("R=%d,S=%d: run triggered no rollbacks; equivalence untested on rollback path", r, s)
			}
			assertMeshTrajectory(t, r, s, meshLosses, refLosses, eng, ref)
			if cs := eng.CommStats(); s > 1 && (cs.A2APayloads == 0 || cs.RingHops == 0) {
				t.Errorf("R=%d,S=%d: no collective traffic recorded: %+v", r, s, cs)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMeshEquivalenceWithInjectedOverflow covers the NaN/Inf
// skip-rollback scenario with loss scaling: the mesh and the single-rank
// reference observe a corrupted global gradient on the same step and
// must skip it identically, with the loss scaler halving in both.
func TestMeshEquivalenceWithInjectedOverflow(t *testing.T) {
	for _, shape := range [][2]int{{2, 2}, {2, 4}, {4, 2}} {
		r, s := shape[0], shape[1]
		cfg := meshConfig(r, s)
		cfg.InjectBad = func(step int) bool { return step == 5 || step == 9 }
		cfg.Scaler = optim.NewLossScaler()
		ref := stvConfig(cfg)
		ref.Scaler = optim.NewLossScaler()
		eng, trainer, meshLosses, refLosses := runMeshPair(t, cfg, ref, 15, 7, 4, 8)
		if eng.Stats().SkipRolls != 2 {
			t.Errorf("R=%d,S=%d: skip rollbacks = %d, want 2", r, s, eng.Stats().SkipRolls)
		}
		if cfg.Scaler.Scale != ref.Scaler.Scale {
			t.Errorf("R=%d,S=%d: loss scales diverge: %v vs %v", r, s, cfg.Scaler.Scale, ref.Scaler.Scale)
		}
		assertMeshTrajectory(t, r, s, meshLosses, refLosses, eng, trainer)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMeshStepAccumEquivalence: gradient accumulation composes with the
// mesh — M global micro-batches over R×S ranks must match the
// single-rank trainer accumulating the same M·R row slices in
// (micro-batch, group) order.
func TestMeshStepAccumEquivalence(t *testing.T) {
	const r, s, accum, steps = 2, 2, 3, 8
	cfg := meshConfig(r, s)
	eng, err := NewMesh(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ref := stv.NewTrainer(tinyGPT(42), stvConfig(cfg))

	corpus := data.NewCorpus(64, 31)
	refCorpus := data.NewCorpus(64, 31)
	for i := 0; i < steps; i++ {
		var window []data.Batch
		for m := 0; m < accum; m++ {
			window = append(window, corpus.NextBatch(2, 8))
		}
		l, err := eng.StepAccum(window)
		if err != nil {
			t.Fatal(err)
		}
		var refWindow []data.Batch
		for m := 0; m < accum; m++ {
			refWindow = append(refWindow, splitBatch(refCorpus.NextBatch(2, 8), r, t)...)
		}
		rl, err := ref.StepAccum(refWindow)
		if err != nil {
			t.Fatal(err)
		}
		if l != rl {
			t.Fatalf("accum loss diverges at step %d: %v vs %v", i, l, rl)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	mw, rw := eng.MasterWeights(), ref.MasterWeights()
	for i := range mw {
		if mw[i] != rw[i] {
			t.Fatalf("accumulated masters diverge at %d", i)
		}
	}
}

// TestMeshWithNVMeStores: the full composition — the R×S mesh over
// per-rank file-backed NVMe bucket stores — must stay on the bit-exact
// trajectory (residency is invisible to the numerics across both mesh
// axes).
func TestMeshWithNVMeStores(t *testing.T) {
	for _, shape := range [][2]int{{2, 2}, {4, 2}, {2, 4}} {
		r, s := shape[0], shape[1]
		cfg := meshConfig(r, s)
		cfg.BucketElems = 8000 // more buckets than the resident window
		cfg.NewStore = nvmeFactory(t)
		refCfg := stvConfig(cfg) // reference stays DRAM-resident
		eng, ref, meshLosses, refLosses := runMeshPair(t, cfg, refCfg, 15, 123, 4, 8)
		assertMeshTrajectory(t, r, s, meshLosses, refLosses, eng, ref)
		if tel, ok := eng.StoreTelemetry(); !ok || tel.Reads == 0 {
			t.Errorf("R=%d,S=%d: NVMe stores produced no telemetry (ok=%v, %+v)", r, s, ok, tel)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMeshCheckpointRoundTripProperty is the cross-shape checkpoint
// property test: for every (save shape, restore shape) pair drawn from
// the grid, a checkpoint written by one mesh restores into the other
// (and into a single-rank trainer) with bit-identical state, and — when
// the restore shape shares the saver's data-parallel degree — the
// resumed trajectories stay bit-identical too (across R the resumed
// reductions group differently, as always). Checkpoints on the same
// trajectory must also be byte-identical across S and match the
// single-rank trainer's bytes.
func TestMeshCheckpointRoundTripProperty(t *testing.T) {
	const warm, cont, batch, seq = 8, 5, 4, 8
	save := func(r, s int, seed uint64, nvme bool) ([]byte, stv.Stats) {
		t.Helper()
		cfg := meshConfig(r, s)
		if nvme {
			cfg.NewStore = nvmeFactory(t)
		}
		eng, err := NewMesh(tinyGPT(42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if cerr := eng.Close(); cerr != nil {
				t.Fatal(cerr)
			}
		}()
		corpus := data.NewCorpus(64, seed)
		for i := 0; i < warm; i++ {
			if _, err := eng.Step(corpus.NextBatch(batch, seq)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), eng.Stats()
	}

	for _, seed := range []uint64{5, 55} {
		// Same trajectory (fixed R) ⇒ byte-identical checkpoints across
		// S and store backends, and identical to the single-rank
		// trainer's bytes.
		ck21, _ := save(2, 1, seed, false)
		ck22, _ := save(2, 2, seed, false)
		ck24, _ := save(2, 4, seed, true)
		if !bytes.Equal(ck21, ck22) || !bytes.Equal(ck22, ck24) {
			t.Fatalf("seed %d: checkpoints differ across S on the same R=2 trajectory", seed)
		}
		cfg := meshConfig(2, 1)
		ref := stv.NewTrainer(tinyGPT(42), stvConfig(cfg))
		corpus := data.NewCorpus(64, seed)
		for i := 0; i < warm; i++ {
			if _, err := ref.StepAccum(splitBatch(corpus.NextBatch(batch, seq), 2, t)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ref.Flush(); err != nil {
			t.Fatal(err)
		}
		var refBuf bytes.Buffer
		if err := ref.Save(&refBuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ck22, refBuf.Bytes()) {
			t.Fatalf("seed %d: mesh checkpoint differs from single-rank trainer checkpoint", seed)
		}

		// Round trip into every grid shape: restored state is
		// bit-identical, and shapes sharing R=2 resume bit-identically
		// against the single-rank reference.
		for _, shape := range meshShapes {
			r, s := shape[0], shape[1]
			restored, err := NewMesh(tinyGPT(1), meshConfig(r, s))
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Load(bytes.NewReader(ck22)); err != nil {
				t.Fatal(err)
			}
			if restored.StepIndex() != warm {
				t.Fatalf("R=%d,S=%d: restored step index %d, want %d", r, s, restored.StepIndex(), warm)
			}
			mw, rw := restored.MasterWeights(), ref.MasterWeights()
			for i := range mw {
				if mw[i] != rw[i] {
					t.Fatalf("R=%d,S=%d: restored masters diverge at %d", r, s, i)
				}
			}
			if r == 2 {
				refTr := stv.NewTrainer(tinyGPT(1), stvConfig(meshConfig(r, s)))
				if err := refTr.Load(bytes.NewReader(ck22)); err != nil {
					t.Fatal(err)
				}
				c1 := data.NewCorpus(64, seed+77)
				c2 := data.NewCorpus(64, seed+77)
				for i := 0; i < cont; i++ {
					a, err := restored.Step(c1.NextBatch(batch, seq))
					if err != nil {
						t.Fatal(err)
					}
					b, err := refTr.StepAccum(splitBatch(c2.NextBatch(batch, seq), r, t))
					if err != nil {
						t.Fatal(err)
					}
					if a != b {
						t.Fatalf("R=%d,S=%d: post-restore trajectories diverge at step %d: %v vs %v", r, s, i, a, b)
					}
				}
				if _, err := refTr.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := restored.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := restored.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMeshRaceStress exercises the concurrency-heavy composition under
// -race: an R×S mesh whose every rank streams its ZeRO shard through a
// file-backed NVMe store window smaller than its bucket count, with
// fault injection and a tight clip norm forcing frequent rollbacks — so
// rollback re-acquisitions land while store prefetches and write-behind
// flushes are in flight, concurrently with the ring, all-to-all, and
// validation goroutines.
func TestMeshRaceStress(t *testing.T) {
	cfg := meshConfig(2, 2)
	cfg.BucketElems = 4000 // many buckets vs the 2-bucket store window
	cfg.ClipNorm = 0.5     // clip re-executions nearly every step
	cfg.Scaler = optim.NewLossScaler()
	cfg.InjectBad = func(step int) bool { return step%5 == 3 }
	cfg.NewStore = nvmeFactory(t)
	eng, err := NewMesh(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(64, 9)
	for i := 0; i < 30; i++ {
		l, err := eng.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss corrupted at step %d: %v", i, l)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SkipRolls == 0 || st.ClipRolls == 0 {
		t.Errorf("stress run exercised no rollbacks: %+v", st)
	}
	var ckpt bytes.Buffer
	if err := eng.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMeshTrainingLearns: beyond exactness, the mesh engine must
// actually train.
func TestMeshTrainingLearns(t *testing.T) {
	cfg := meshConfig(2, 2)
	eng, err := NewMesh(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	corpus := data.NewCorpus(64, 99)
	var losses []float64
	for i := 0; i < 120; i++ {
		l, err := eng.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, l)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	first, last := avg(losses[:10]), avg(losses[len(losses)-10:])
	if last > first*0.85 {
		t.Errorf("mesh training not learning: first %.3f last %.3f", first, last)
	}
}

// TestMeshValidation covers construction- and step-time guards.
func TestMeshValidation(t *testing.T) {
	if _, err := NewMesh(nil, meshConfig(2, 2)); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewMesh(tinyGPT(1), meshConfig(0, 2)); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewMesh(tinyGPT(1), meshConfig(2, -1)); err == nil {
		t.Error("negative seq ranks accepted")
	}
	// tinyGPT has 4 heads; 3 sequence ranks can never divide them.
	if _, err := NewMesh(tinyGPT(1), meshConfig(2, 3)); err == nil {
		t.Error("indivisible head count accepted")
	}
	eng, err := NewMesh(tinyGPT(1), meshConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	corpus := data.NewCorpus(64, 1)
	if _, err := eng.Step(corpus.NextBatch(3, 8)); err == nil {
		t.Error("batch not divisible by groups accepted")
	}
	if _, err := eng.Step(corpus.NextBatch(2, 7)); err == nil {
		t.Error("sequence not divisible by seq ranks accepted")
	}
	if _, err := eng.Step(corpus.NextBatch(2, 32)); err == nil {
		t.Error("sequence exceeding MaxSeq accepted")
	}
	if _, err := eng.Step(corpus.NextBatch(2, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save on a closed engine accepted")
	}
	if err := eng.Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load on a closed engine accepted")
	}
}
