package dp

import (
	"bytes"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// TestCheckpointRoundTripProperty: Save mid-training with a validation in
// flight (must be refused), Flush, Save, Load into a fresh engine, and the
// continued loss trajectory must be bit-identical to an uninterrupted run.
// Covers single-rank (R=1) and multi-rank (R=2, R=4) engines.
func TestCheckpointRoundTripProperty(t *testing.T) {
	const warm, cont = 10, 10
	// A growth interval that does not divide the warm-up length puts a
	// scale-doubling boundary inside the continuation window: exact
	// resume therefore requires the checkpoint to carry the scaler's
	// overflow-free streak, not just the scale.
	smallGrowth := func() *optim.LossScaler {
		return &optim.LossScaler{Scale: 1024, GrowthInterval: 7, MinScale: 1, MaxScale: 1 << 24}
	}
	for _, ranks := range []int{1, 2, 4} {
		cfg := baseConfig(ranks)
		cfg.Scaler = smallGrowth()

		// Uninterrupted reference run.
		full, err := New(tinyGPT(42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		corpus := data.NewCorpus(64, 55)
		var fullLosses []float64
		for i := 0; i < warm+cont; i++ {
			l, err := full.Step(corpus.NextBatch(4, 8))
			if err != nil {
				t.Fatal(err)
			}
			fullLosses = append(fullLosses, l)
		}
		if _, err := full.Flush(); err != nil {
			t.Fatal(err)
		}

		// Interrupted run: warm up, attempt Save with the validation of
		// the last step still in flight, then Flush and Save for real.
		cfg2 := baseConfig(ranks)
		cfg2.Scaler = smallGrowth()
		eng, err := New(tinyGPT(42), cfg2)
		if err != nil {
			t.Fatal(err)
		}
		corpus2 := data.NewCorpus(64, 55)
		for i := 0; i < warm; i++ {
			if _, err := eng.Step(corpus2.NextBatch(4, 8)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err == nil {
			t.Fatalf("R=%d: Save with validation in flight should be refused", ranks)
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}

		// Restore into a fresh engine with different init — the
		// checkpoint must fully determine the continuation.
		cfg3 := baseConfig(ranks)
		cfg3.Scaler = smallGrowth()
		restored, err := New(tinyGPT(999), cfg3)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		if restored.StepIndex() != warm {
			t.Errorf("R=%d: restored step index %d, want %d", ranks, restored.StepIndex(), warm)
		}
		for i := 0; i < cont; i++ {
			l, err := restored.Step(corpus2.NextBatch(4, 8))
			if err != nil {
				t.Fatal(err)
			}
			if l != fullLosses[warm+i] {
				t.Fatalf("R=%d: continued loss diverges at step %d: %v vs %v",
					ranks, warm+i, l, fullLosses[warm+i])
			}
		}
		if _, err := restored.Flush(); err != nil {
			t.Fatal(err)
		}
		fw, rw := full.MasterWeights(), restored.MasterWeights()
		for i := range fw {
			if fw[i] != rw[i] {
				t.Fatalf("R=%d: final masters diverge at %d", ranks, i)
			}
		}
		full.Close()
		restored.Close()
	}
}

// TestCheckpointPortableAcrossRankCounts: a DP-2 checkpoint restores into
// a DP-4 engine and a single-rank stv.Trainer, and all three continue on
// identical trajectories. The bytes themselves must match what the
// single-rank trainer saves on the same trajectory (the format is defined
// over the global bucket order, not the ownership).
func TestCheckpointPortableAcrossRankCounts(t *testing.T) {
	cfg := baseConfig(2)
	eng, err := New(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ref := stv.NewTrainer(tinyGPT(42), stvConfig(cfg))

	corpus := data.NewCorpus(64, 21)
	refCorpus := data.NewCorpus(64, 21)
	for i := 0; i < 8; i++ {
		b := corpus.NextBatch(4, 8)
		if _, err := eng.Step(b); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.StepAccum(splitBatch(refCorpus.NextBatch(4, 8), 2, t)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	var dpBuf, refBuf bytes.Buffer
	if err := eng.Save(&dpBuf); err != nil {
		t.Fatal(err)
	}
	if err := ref.Save(&refBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dpBuf.Bytes(), refBuf.Bytes()) {
		t.Fatal("DP-2 and single-rank checkpoints differ byte-wise on the same trajectory")
	}

	// DP-2 checkpoint → DP-4 engine.
	four, err := New(tinyGPT(1), baseConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()
	if err := four.Load(bytes.NewReader(dpBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// DP-2 checkpoint → single-rank trainer.
	tr := stv.NewTrainer(tinyGPT(2), stvConfig(baseConfig(1)))
	if err := tr.Load(bytes.NewReader(dpBuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	cont := data.NewCorpus(64, 77)
	cont4 := data.NewCorpus(64, 77)
	contT := data.NewCorpus(64, 77)
	for i := 0; i < 6; i++ {
		// Keep the decomposition fixed (4 slices) so all three engines
		// see the same reduction order regardless of rank count: the
		// 2-rank engine accumulates two global micro-batches of 2 rows.
		b := cont.NextBatch(4, 8)
		l2, err := eng.StepAccum(splitBatch(b, 2, t))
		if err != nil {
			t.Fatal(err)
		}
		l4, err := four.Step(cont4.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		lt, err := tr.StepAccum(splitBatch(contT.NextBatch(4, 8), 4, t))
		if err != nil {
			t.Fatal(err)
		}
		if l2 != l4 || l2 != lt {
			t.Fatalf("continued losses diverge at step %d: DP-2 %v, DP-4 %v, single %v", i, l2, l4, lt)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(nil, baseConfig(2)); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(tinyGPT(1), Config{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	eng, err := New(tinyGPT(1), baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(64, 1)
	if _, err := eng.Step(corpus.NextBatch(3, 8)); err == nil {
		t.Error("indivisible batch accepted")
	}
	if l, err := eng.StepAccum(nil); err != nil || l != 0 {
		t.Errorf("empty accum: %v %v", l, err)
	}
	if eng.Ranks() != 2 {
		t.Errorf("ranks = %d", eng.Ranks())
	}
	if eng.NumBuckets() < 2 {
		t.Errorf("expected multiple buckets, got %d", eng.NumBuckets())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("Close not idempotent: %v", err)
	}
	if _, err := eng.Step(corpus.NextBatch(2, 8)); err == nil {
		t.Error("Step after Close accepted")
	}
}

// TestStressManyBucketsTightClip hammers the rollback machinery: tiny
// buckets (lots of reduce/gather/partial traffic), a clip threshold that
// fires nearly every step, and periodic overflow injection — under -race
// in CI this exercises every cross-rank handoff in the engine.
func TestStressManyBucketsTightClip(t *testing.T) {
	cfg := baseConfig(4)
	cfg.BucketElems = 600
	cfg.ClipNorm = 0.35
	cfg.Scaler = optim.NewLossScaler()
	cfg.InjectBad = func(step int) bool { return step%7 == 3 }
	ref := stvConfig(cfg)
	ref.Scaler = optim.NewLossScaler()
	eng, trainer, dpLosses, refLosses := runPair(t, cfg, ref, 30, 13, 4)
	defer eng.Close()
	if eng.Stats().Rollbacks() < 25 {
		t.Errorf("stress run should roll back nearly every step, got %+v", eng.Stats())
	}
	assertSameTrajectory(t, 4, dpLosses, refLosses, eng, trainer)
}
