package dp

import (
	"sync"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/place"
	"superoffload/internal/stv"
)

// TestTelemetryPollDuringTrainingAndClose hammers the engine's
// poll-facing surfaces — Stats, PlacementTelemetry, StoreTelemetry —
// from a poller goroutine while ranks train and then through Close,
// mirroring a live /metrics endpoint. Run with -race: the assertion is
// the detector staying quiet plus monotone step counts.
func TestTelemetryPollDuringTrainingAndClose(t *testing.T) {
	cfg := baseConfig(2)
	cfg.BucketElems = 4096
	nb := len(stv.PartitionGroups(tinyGPT(42).Params(), cfg.BucketElems))
	plan := place.GPUTail(nb, 2)
	cfg.Placement = &plan
	e, err := New(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastSteps int
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			if st.Steps < lastSteps {
				t.Errorf("Stats.Steps went backwards: %d after %d", st.Steps, lastSteps)
				return
			}
			lastSteps = st.Steps
			e.PlacementTelemetry()
			e.StoreTelemetry()
			e.ActTelemetry()
		}
	}()

	corpus := data.NewCorpus(64, 55)
	for i := 0; i < 10; i++ {
		if _, err := e.Step(corpus.NextBatch(4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if st := e.Stats(); st.Steps != 10 {
		t.Errorf("Steps = %d, want 10", st.Steps)
	}
}
