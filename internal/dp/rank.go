package dp

import (
	"math"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/fp16"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// ownedBucket is one entry of a rank's ZeRO partition: the fp32 master
// weights, Adam moments, and rollback snapshot for a bucket this rank
// owns. Non-owned buckets have no optimizer state on this rank — only the
// fp16 replica weights inside the model.
type ownedBucket struct {
	idx int // global bucket index
	b   *stv.Bucket
}

// partitionReplica computes the replica's global bucket layout and this
// rank's owned partition under the shared ownership policy, seeding the
// rank's store with the buckets it owns (keyed by global bucket index,
// so the store's prefetch cycle walks the rank's ZeRO shard in reduction
// order). offsets[b] is bucket b's start in the flat Params() layout —
// the layout the sequence-parallel ring reduces over.
func partitionReplica(model *nn.GPT, bucketElems, id, ranks int, store stv.BucketStore) (groups []nn.Params, owned []ownedBucket, offsets []int) {
	groups = stv.PartitionGroups(model.Params(), bucketElems)
	offsets = make([]int, len(groups))
	off := 0
	for bi, g := range groups {
		offsets[bi] = off
		off += g.TotalSize()
		if bucketOwner(bi, ranks) == id {
			owned = append(owned, ownedBucket{idx: bi, b: stv.NewBucket(g, store, bi)})
		}
	}
	return groups, owned, offsets
}

// runRankLoop is every rank's top-level loop over the shared control
// links: interpret step schedules, apply out-of-step resolutions
// (Flush), stop.
func runRankLoop(w *world, id int, ex stepExecutor) {
	for c := range w.cmd[id] {
		switch c.kind {
		case cmdStep:
			ex.begin(c.micros)
			runSchedule(w, id, c.ops, ex)
		case cmdResolve:
			ex.apply(c.res)
			w.results[id] <- stepResult{}
		case cmdStop:
			return
		}
	}
}

// applyResolution is the resolution body shared by every rank type:
// owners commit, roll back, or re-execute their partition, and allGather
// republishes when weights changed.
func applyResolution(v resolution, owned []ownedBucket, impl optim.Impl, allGather func()) {
	switch v.action {
	case aCommit:
		for _, ob := range owned {
			ob.b.Commit()
		}
	case aSkip:
		for _, ob := range owned {
			ob.b.Rollback()
		}
		allGather()
	case aClip:
		for _, ob := range owned {
			ob.b.ReExecuteClipped(v.adam, impl, v.clipScale)
		}
		allGather()
	}
}

// speculate runs the shared post-reduction phase on a rank's owned
// partition: corrupt bucket 0 when fault injection asks, normalize the
// reduced sum by inv, apply the per-bucket speculative Adam step,
// republish fp16 weights via allGather, and stream this partition's
// per-bucket validation partials off the critical path (the next step's
// forward overlaps with that background goroutine).
func speculate(w *world, owned []ownedBucket, impl optim.Impl, g goMsg, inv float32, allGather func()) {
	for _, ob := range owned {
		if ob.idx == 0 && g.inject {
			ob.b.Grad()[0] = float32(math.Inf(1))
		}
		ob.b.ScaleGrad(inv)
		ob.b.SpeculativeStep(g.adam, impl)
	}
	allGather()
	go func(owned []ownedBucket) {
		for _, ob := range owned {
			grad := ob.b.Grad()
			w.partial <- partialMsg{
				idx:   ob.idx,
				sumsq: optim.SumSquares(grad),
				bad:   optim.HasBad([][]float32{grad}),
			}
		}
	}(owned)
}

// gatherWeights is the all-gather body shared by every rank type (bucket
// ownership is round-robin in every world): owned buckets broadcast over
// the gather links, non-owned buckets install the received payloads.
// Owned buckets are skipped on the receive side: the speculative step,
// rollback, and clip re-execution already wrote them back locally.
func gatherWeights(owned []ownedBucket, groups []nn.Params, gather [][]chan []fp16.Num, ranks, id int) {
	for _, ob := range owned {
		half := ob.b.Half()
		for dst := 0; dst < ranks; dst++ {
			if dst != id {
				gather[ob.idx][dst] <- half
			}
		}
	}
	for bi, g := range groups {
		if bucketOwner(bi, ranks) != id {
			stv.PublishHalf(g, <-gather[bi][id])
		}
	}
}

// rank is one simulated superchip of the data-parallel engine: a full
// fp16 model replica for forward/backward, plus optimizer state for its
// owned buckets only, held behind this rank's own bucket store.
type rank struct {
	id     int
	w      *dpWorld
	model  *nn.GPT
	impl   optim.Impl
	store  stv.BucketStore
	exec   *stv.PlacementExecutor // nil without a placement plan
	ast    *act.Store             // nil without an activation tier
	groups []nn.Params            // global bucket layout over this replica
	owned  []ownedBucket          // this rank's partition, ascending bucket index
	// sendBufs[m][b] stages the gradient contribution for micro-batch m
	// and bucket b. Buffers are distinct per micro-batch within a step
	// (the owner may still be reading micro m while this rank computes
	// m+1) and reused across steps: the coordinator collects every
	// rank's results before releasing the next step, so all owner reads
	// of step N happen before any step-N+1 write.
	sendBufs [][][]float32

	// Per-step interpreter state (begin resets it). cache holds the
	// latest forward's intermediates; the legacy schedule backwards each
	// micro immediately after its forward (a resolve-triggered redo only
	// ever re-forwards the same micro), so one slot suffices — exactly
	// the single-cache discipline the model-level arena requires.
	micros []data.Batch
	losses []float64
	cache  *nn.FwdCache
}

// newRank partitions the replica and seeds this rank's store with the
// buckets it owns.
func newRank(id int, w *dpWorld, model *nn.GPT, impl optim.Impl, bucketElems int, store stv.BucketStore) *rank {
	r := &rank{id: id, w: w, model: model, impl: impl, store: store}
	r.groups, r.owned, _ = partitionReplica(model, bucketElems, id, w.N, store)
	return r
}

// run is the rank's top-level loop.
func (r *rank) run() { runRankLoop(r.w.world, r.id, r) }

// begin resets the per-step interpreter state for a new schedule.
func (r *rank) begin(micros []data.Batch) {
	r.micros = micros
	r.losses = make([]float64, len(micros))
}

// apply executes a validation resolution on this rank: owners mutate their
// partition, and if weights changed every rank republishes via all-gather.
func (r *rank) apply(v resolution) {
	applyResolution(v, r.owned, r.impl, r.allGather)
}

// forward runs micro m's forward pass on the replica, recording its loss
// (an STV redo overwrites the slot, so the reported loss is the last
// forward's — mirroring stv.Trainer's post-rollback loss).
func (r *rank) forward(m int) {
	b := r.micros[m]
	loss, cache := r.model.Forward(b.Tokens, b.Targets, b.BatchSize, b.Seq)
	r.losses[m] = loss
	r.cache = cache
}

// backward runs micro m's backward pass from the retained forward cache.
func (r *rank) backward(m int, scale float64) {
	r.model.Params().ZeroGrads()
	r.model.Backward(r.cache, scale)
}

// speculate runs the shared speculative phase: the reduced sum
// accumulated over micros·N micro-batch slices is normalized by inv.
func (r *rank) speculate(g goMsg) {
	inv := float32(1 / (g.scale * float64(len(r.micros)*r.w.N)))
	speculate(r.w.world, r.owned, r.impl, g, inv, r.allGather)
}

// report closes the step out: record placement telemetry and hand the
// per-micro losses to the coordinator.
func (r *rank) report() stepResult {
	r.exec.Record(localTokens(r.micros), r.micros[0].Seq)
	return stepResult{losses: r.losses}
}

// reduce sends this rank's raw gradient contribution for every bucket
// to the bucket's owner, then (as owner) folds the incoming contributions
// for micro-batch m into the owned reduction buffers. Contributions sum in
// (micro-batch, rank) order — the same order a single-rank trainer's
// gradient accumulation stages them — so the reduced sum is bit-identical.
func (r *rank) reduce(m int) {
	for len(r.sendBufs) <= m {
		r.sendBufs = append(r.sendBufs, make([][]float32, len(r.groups)))
	}
	for bi, g := range r.groups {
		payload := r.sendBufs[m][bi]
		if payload == nil {
			payload = make([]float32, g.TotalSize())
			r.sendBufs[m][bi] = payload
		}
		stv.GatherGrads(g, payload, true)
		r.w.reduce[bi][r.id] <- payload
	}
	for _, ob := range r.owned {
		dst := ob.b.Grad()
		for src := 0; src < r.w.N; src++ {
			c := <-r.w.reduce[ob.idx][src]
			stv.AccumInto(dst, c, m == 0 && src == 0)
		}
	}
}

// allGather publishes every owned bucket's fp16 weights to the other
// ranks and installs the payloads this rank receives into its replica.
func (r *rank) allGather() {
	gatherWeights(r.owned, r.groups, r.w.gather, r.w.N, r.id)
}

// bucketStore, bucketLayout, and placementExec satisfy engineRank for
// the shared engine plumbing (storeList, replicaGroups,
// sumPlacementTelemetry).
func (r *rank) bucketStore() stv.BucketStore          { return r.store }
func (r *rank) bucketLayout() []nn.Params             { return r.groups }
func (r *rank) placementExec() *stv.PlacementExecutor { return r.exec }
func (r *rank) actStore() *act.Store                  { return r.ast }
