package dp

import (
	"fmt"
	"io"

	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// Engine coordinates R rank goroutines through the STV schedule. Its API
// mirrors stv.Trainer (Step, StepAccum, Flush, Save, Load, Stats) so the
// facade can surface either engine behind the same surface. Methods are
// not safe for concurrent use — like the single-rank trainer, one
// goroutine drives training.
type Engine struct {
	coordinator
	w     *world
	ranks []*rank
	// buckets is the global bucket order; entry b points at the owning
	// rank's optimizer state (used for checkpointing and diagnostics).
	buckets []*stv.Bucket
}

// New builds a data-parallel engine over the model. The model becomes rank
// 0's replica; ranks 1..R-1 train on bit-identical clones. The fp32
// masters and Adam moments are partitioned across ranks along bucket
// boundaries (round-robin), never replicated.
func New(model *nn.GPT, cfg Config) (*Engine, error) {
	if model == nil {
		return nil, fmt.Errorf("dp: nil model")
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dp: Ranks must be >= 1, got %d", cfg.Ranks)
	}
	if cfg.Impl == nil {
		cfg.Impl = optim.GraceAdam
	}
	if cfg.BucketElems <= 0 {
		cfg.BucketElems = 32 << 20 // 64 MB of fp16, §4.3
	}
	nBuckets := len(stv.PartitionGroups(model.Params(), cfg.BucketElems))
	w := newWorld(cfg.Ranks, nBuckets)
	e := &Engine{coordinator: coordinator{cfg: cfg}, w: w, buckets: make([]*stv.Bucket, nBuckets)}
	// Build every rank's store before starting any goroutine, so a
	// failing store constructor can unwind cleanly.
	stores := make([]stv.BucketStore, cfg.Ranks)
	for id := 0; id < cfg.Ranks; id++ {
		if cfg.NewStore == nil {
			stores[id] = stv.NewDRAMStore()
			continue
		}
		st, err := cfg.NewStore(id)
		if err != nil {
			for _, s := range stores[:id] {
				s.Close()
			}
			return nil, fmt.Errorf("dp: building rank %d store: %w", id, err)
		}
		stores[id] = st
	}
	for id := 0; id < cfg.Ranks; id++ {
		replica := model
		if id > 0 {
			replica = model.Clone()
		}
		rk := newRank(id, w, replica, cfg.Impl, cfg.BucketElems, stores[id])
		for _, ob := range rk.owned {
			e.buckets[ob.idx] = ob.b
		}
		e.ranks = append(e.ranks, rk)
		go rk.run()
	}
	go w.aggregate()
	return e, nil
}

// StoreTelemetry sums the modeled NVMe telemetry over every rank's store.
// ok is false when no rank uses an NVMe-backed store.
func (e *Engine) StoreTelemetry() (stv.StoreTelemetry, bool) {
	return sumNVMeTelemetry(storeList(e.ranks))
}

// Ranks reports the data-parallel degree R.
func (e *Engine) Ranks() int { return e.w.R }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *Engine) NumBuckets() int { return len(e.buckets) }

// split slices a global batch into R per-rank micro-batches along the
// batch dimension. Rank r takes rows [r·B/R, (r+1)·B/R).
func (e *Engine) split(b data.Batch) ([]data.Batch, error) {
	if b.BatchSize%e.w.R != 0 {
		return nil, fmt.Errorf("dp: global batch %d not divisible by %d ranks", b.BatchSize, e.w.R)
	}
	per := b.BatchSize / e.w.R
	out := make([]data.Batch, e.w.R)
	for r := 0; r < e.w.R; r++ {
		lo, hi := r*per*b.Seq, (r+1)*per*b.Seq
		out[r] = data.Batch{
			Tokens:    b.Tokens[lo:hi],
			Targets:   b.Targets[lo:hi],
			BatchSize: per,
			Seq:       b.Seq,
		}
	}
	return out, nil
}

// Step runs one training iteration over the global batch: each rank takes
// its row slice, gradients reduce across ranks, the owners step
// speculatively, and validation runs in the background. Returns the mean
// loss over micro-batches — bit-identical to the single-rank engine's loss
// for the same decomposition.
func (e *Engine) Step(b data.Batch) (float64, error) {
	slices, err := e.split(b)
	if err != nil {
		return 0, err
	}
	micross := make([][]data.Batch, e.w.R)
	for r, s := range slices {
		micross[r] = []data.Batch{s}
	}
	return e.step(micross)
}

// StepAccum runs one optimizer step over several accumulated global
// micro-batches (the §5.2 OOM-mitigation path): every global micro-batch
// splits across ranks, contributions reduce per micro-batch in
// (micro-batch, rank) order, and one optimizer step applies at the end.
func (e *Engine) StepAccum(batches []data.Batch) (float64, error) {
	if len(batches) == 0 {
		return 0, nil
	}
	micross := make([][]data.Batch, e.w.R)
	for _, b := range batches {
		slices, err := e.split(b)
		if err != nil {
			return 0, err
		}
		for r, s := range slices {
			micross[r] = append(micross[r], s)
		}
	}
	return e.step(micross)
}

// step drives one iteration: dispatch the per-rank micro-batches, resolve
// the previous step's validation while forwards run, release the ranks,
// and reduce their losses in canonical order.
func (e *Engine) step(micross [][]data.Batch) (float64, error) {
	if e.closed {
		return 0, fmt.Errorf("dp: engine closed")
	}
	e.stepIndex++
	adam := e.stepAdam()
	for r := 0; r < e.w.R; r++ {
		e.w.cmd[r] <- command{kind: cmdStep, micros: micross[r]}
	}
	// Ranks are now forwarding; the pending verdict resolves in parallel
	// with that compute, exactly like the single-rank background
	// validator.
	res := e.resolvePending(e.w.val)
	for r := 0; r < e.w.R; r++ {
		e.w.resolution[r] <- res
	}
	if res.weightsChanged() {
		e.stats.Redos++
	}
	g := goMsg{
		adam:   adam,
		scale:  e.scale(),
		inject: e.cfg.InjectBad != nil && e.cfg.InjectBad(e.stepIndex),
	}
	for r := 0; r < e.w.R; r++ {
		e.w.goCh[r] <- g
	}
	e.pendingAdam = adam

	// Losses sum in (micro-batch, rank) order — the same order the
	// single-rank trainer accumulates them.
	perRank := make([][]float64, e.w.R)
	for r := 0; r < e.w.R; r++ {
		perRank[r] = <-e.w.results[r]
	}
	m := len(micross[0])
	var loss float64
	for mi := 0; mi < m; mi++ {
		for r := 0; r < e.w.R; r++ {
			loss += perRank[r][mi]
		}
	}
	loss /= float64(m * e.w.R)
	e.stats.Steps++
	e.pending = true

	if e.cfg.Synchronous {
		// Synchronize-then-execute: resolve before returning, putting
		// validation back on the critical path (the ZeRO-Offload
		// schedule, for comparisons).
		if _, err := e.Flush(); err != nil {
			return loss, err
		}
	}
	return loss, nil
}

// Flush resolves any in-flight validation (call at end of training so the
// final step is validated). Returns whether the final step was rolled back
// or re-executed.
func (e *Engine) Flush() (bool, error) {
	if e.closed {
		return false, fmt.Errorf("dp: engine closed")
	}
	if !e.pending {
		return false, nil
	}
	res := e.resolvePending(e.w.val)
	for r := 0; r < e.w.R; r++ {
		e.w.cmd[r] <- command{kind: cmdResolve, res: res}
	}
	for r := 0; r < e.w.R; r++ {
		<-e.w.results[r]
	}
	return res.weightsChanged(), nil
}

// Save serializes the training state in the stv checkpoint format, over
// the global bucket order — byte-identical to a single-rank engine on the
// same trajectory, so checkpoints move freely between rank counts. It
// fails if a validation is in flight.
func (e *Engine) Save(w io.Writer) error { return e.save(w, e.buckets) }

// Load restores state saved by Save (from any engine) into this one,
// scattering each bucket to its owner and republishing the fp16-rounded
// weights to every replica.
func (e *Engine) Load(r io.Reader) error { return e.load(r, e.buckets, replicaGroups(e.ranks)) }

// MasterWeights returns the fp32 master parameters gathered from their
// owners, concatenated in bucket order — the ground truth for exactness
// comparisons against the single-rank engine.
func (e *Engine) MasterWeights() []float32 { return gatherMasters(e.buckets) }

// Close resolves any pending validation, stops the rank goroutines and
// the validation aggregator, and closes every rank's bucket store. The
// engine is unusable afterwards.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	_, err := e.Flush()
	for r := 0; r < e.w.R; r++ {
		e.w.cmd[r] <- command{kind: cmdStop}
	}
	close(e.w.partial)
	e.closed = true
	return closeStores(storeList(e.ranks), err)
}
