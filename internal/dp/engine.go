package dp

import (
	"fmt"
	"io"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/stv"
)

// dpWorld is the data-parallel engine's interconnect: the shared world
// core plus the per-bucket gradient reduce-scatter links (reduce[b][src]
// carries rank src's raw contribution for bucket b to the bucket's
// owner).
type dpWorld struct {
	*world
	reduce reduceLinks
}

// Engine coordinates R rank goroutines through the STV schedule. Its API
// mirrors stv.Trainer (Step, StepAccum, Flush, Save, Load, Stats) so the
// facade can surface either engine behind the same surface. Methods are
// not safe for concurrent use — like the single-rank trainer, one
// goroutine drives training.
type Engine struct {
	coordinator
	w     *dpWorld
	ranks []*rank
	// buckets is the global bucket order; entry b points at the owning
	// rank's optimizer state (used for checkpointing and diagnostics).
	buckets []*stv.Bucket
}

// New builds a data-parallel engine over the model. The model becomes rank
// 0's replica; ranks 1..R-1 train on bit-identical clones. The fp32
// masters and Adam moments are partitioned across ranks along bucket
// boundaries (round-robin), never replicated.
func New(model *nn.GPT, cfg Config) (*Engine, error) {
	if model == nil {
		return nil, fmt.Errorf("dp: nil model")
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dp: Ranks must be >= 1, got %d", cfg.Ranks)
	}
	cfg = cfg.withDefaults()
	nBuckets := len(stv.PartitionGroups(model.Params(), cfg.BucketElems))
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(nBuckets); err != nil {
			return nil, fmt.Errorf("dp: %w", err)
		}
	}
	w := &dpWorld{world: newWorld(cfg.Ranks, nBuckets), reduce: newReduceLinks(nBuckets, cfg.Ranks)}
	w.attachTracer(cfg.Tracer)
	e := &Engine{coordinator: coordinator{cfg: cfg, sched: legacyBuilder}, w: w, buckets: make([]*stv.Bucket, nBuckets)}
	stores, err := buildStores(cfg.Ranks, cfg.NewStore)
	if err != nil {
		return nil, err
	}
	acts, err := buildActStores(cfg.Ranks, cfg.NewActStore)
	if err != nil {
		return nil, closeStores(stores, err)
	}
	for id := 0; id < cfg.Ranks; id++ {
		replica := model
		if id > 0 {
			replica = model.Clone()
		}
		rk := newRank(id, w, replica, cfg.Impl, cfg.BucketElems, stores[id])
		rk.exec = newRankExecutor(cfg, replica, rk.owned, nBuckets)
		rk.ast = acts[id]
		attachActStore(replica, rk.exec, rk.ast)
		for _, ob := range rk.owned {
			e.buckets[ob.idx] = ob.b
		}
		e.ranks = append(e.ranks, rk)
		go rk.run()
	}
	go w.aggregate()
	return e, nil
}

// StoreTelemetry sums the modeled NVMe telemetry over every rank's store.
// ok is false when no rank uses an NVMe-backed store.
func (e *Engine) StoreTelemetry() (stv.StoreTelemetry, bool) {
	return sumNVMeTelemetry(storeList(e.ranks))
}

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *Engine) PlacementTelemetry() (stv.PlacementTelemetry, bool) {
	return sumPlacementTelemetry(e.ranks)
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over every rank; ok is false without an activation tier.
func (e *Engine) ActTelemetry() (act.Telemetry, bool) {
	return sumActTelemetry(e.ranks)
}

// Ranks reports the data-parallel degree R.
func (e *Engine) Ranks() int { return e.w.N }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *Engine) NumBuckets() int { return len(e.buckets) }

// split slices a global batch into R per-rank micro-batches along the
// batch dimension. Rank r takes rows [r·B/R, (r+1)·B/R).
func (e *Engine) split(b data.Batch) ([]data.Batch, error) {
	if b.BatchSize%e.w.N != 0 {
		return nil, fmt.Errorf("dp: global batch %d not divisible by %d ranks", b.BatchSize, e.w.N)
	}
	return splitRows(b, e.w.N), nil
}

// Step runs one training iteration over the global batch: each rank takes
// its row slice, gradients reduce across ranks, the owners step
// speculatively, and validation runs in the background. Returns the mean
// loss over micro-batches — bit-identical to the single-rank engine's loss
// for the same decomposition.
func (e *Engine) Step(b data.Batch) (float64, error) {
	slices, err := e.split(b)
	if err != nil {
		return 0, err
	}
	micross := make([][]data.Batch, e.w.N)
	for r, s := range slices {
		micross[r] = []data.Batch{s}
	}
	return e.step(micross)
}

// StepAccum runs one optimizer step over several accumulated global
// micro-batches (the §5.2 OOM-mitigation path): every global micro-batch
// splits across ranks, contributions reduce per micro-batch in
// (micro-batch, rank) order, and one optimizer step applies at the end.
func (e *Engine) StepAccum(batches []data.Batch) (float64, error) {
	if len(batches) == 0 {
		return 0, nil
	}
	micross := make([][]data.Batch, e.w.N)
	for _, b := range batches {
		slices, err := e.split(b)
		if err != nil {
			return 0, err
		}
		for r, s := range slices {
			micross[r] = append(micross[r], s)
		}
	}
	return e.step(micross)
}

// step drives one iteration through the shared coordinator and folds the
// reported losses in (micro-batch, rank) order — the same order the
// single-rank trainer accumulates them.
func (e *Engine) step(micross [][]data.Batch) (float64, error) {
	perRank, err := e.runStep(e.w.world, micross)
	if err != nil {
		return 0, err
	}
	m := len(micross[0])
	var loss float64
	for mi := 0; mi < m; mi++ {
		for r := 0; r < e.w.N; r++ {
			loss += perRank[r].losses[mi]
		}
	}
	loss /= float64(m * e.w.N)

	if e.cfg.Synchronous {
		// Synchronize-then-execute: resolve before returning, putting
		// validation back on the critical path (the ZeRO-Offload
		// schedule, for comparisons).
		if _, err := e.Flush(); err != nil {
			return loss, err
		}
	}
	return loss, nil
}

// Flush resolves any in-flight validation (call at end of training so the
// final step is validated). Returns whether the final step was rolled back
// or re-executed.
func (e *Engine) Flush() (bool, error) { return e.flush(e.w.world) }

// Save serializes the training state in the stv checkpoint format, over
// the global bucket order — byte-identical to a single-rank engine on the
// same trajectory, so checkpoints move freely between rank counts. It
// fails if a validation is in flight.
func (e *Engine) Save(w io.Writer) error { return e.save(w, e.buckets) }

// Load restores state saved by Save (from any engine) into this one,
// scattering each bucket to its owner and republishing the fp16-rounded
// weights to every replica.
func (e *Engine) Load(r io.Reader) error { return e.load(r, e.buckets, replicaGroups(e.ranks)) }

// MasterWeights returns the fp32 master parameters gathered from their
// owners, concatenated in bucket order — the ground truth for exactness
// comparisons against the single-rank engine.
func (e *Engine) MasterWeights() []float32 { return gatherMasters(e.buckets) }

// Close resolves any pending validation, stops the rank goroutines and
// the validation aggregator, and closes every rank's bucket and
// activation stores. The engine is unusable afterwards.
func (e *Engine) Close() error {
	return e.closeWorld(e.w.world, storeList(e.ranks), actStoreList(e.ranks))
}
