package dp

import (
	"bytes"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// nvmeFactory gives every rank its own file-backed store with a 2-bucket
// window in the test's temp dir.
func nvmeFactory(t *testing.T) func(rank int) (stv.BucketStore, error) {
	t.Helper()
	dir := t.TempDir()
	return func(rank int) (stv.BucketStore, error) {
		return stv.NewNVMeStore(stv.NVMeStoreConfig{Dir: dir, ResidentBuckets: 2})
	}
}

// nvmeConfig shrinks buckets so each rank's ZeRO shard spans several
// buckets and genuinely streams through its store window.
func nvmeConfig(t *testing.T, ranks int) Config {
	cfg := baseConfig(ranks)
	cfg.BucketElems = 4000
	cfg.NewStore = nvmeFactory(t)
	return cfg
}

// TestEquivalenceAcrossRanksNVMe is the DP exactness invariant with every
// rank's optimizer shard behind the NVMe store: R ∈ {1,2,4} ranks must
// reproduce the single-rank DRAM-resident trainer bit for bit, clip
// rollbacks included.
func TestEquivalenceAcrossRanksNVMe(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		cfg := nvmeConfig(t, ranks)
		ref := stvConfig(cfg) // single-rank reference stays DRAM-resident
		eng, trainer, dpLosses, refLosses := runPair(t, cfg, ref, 25, 123, 4)
		if eng.Stats().Rollbacks() == 0 {
			t.Errorf("R=%d: no rollbacks; equivalence untested on rollback path", ranks)
		}
		if _, ok := eng.StoreTelemetry(); !ok {
			t.Fatalf("R=%d: engine is not using NVMe stores", ranks)
		}
		assertSameTrajectory(t, ranks, dpLosses, refLosses, eng, trainer)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEquivalenceWithInjectedOverflowNVMe covers the NaN/Inf skip-rollback
// scenario on windowed state: the rolled-back snapshots have round-tripped
// through every rank's backing file.
func TestEquivalenceWithInjectedOverflowNVMe(t *testing.T) {
	for _, ranks := range []int{2, 4} {
		cfg := nvmeConfig(t, ranks)
		cfg.InjectBad = func(step int) bool { return step == 5 || step == 9 }
		cfg.Scaler = optim.NewLossScaler()
		ref := stvConfig(cfg)
		ref.Scaler = optim.NewLossScaler()
		eng, trainer, dpLosses, refLosses := runPair(t, cfg, ref, 15, 7, 4)
		if eng.Stats().SkipRolls != 2 {
			t.Errorf("R=%d: skip rollbacks = %d, want 2", ranks, eng.Stats().SkipRolls)
		}
		assertSameTrajectory(t, ranks, dpLosses, refLosses, eng, trainer)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointPortableAcrossStoresAndRanks: a checkpoint written under
// NVMe stores restores under DRAM stores (and vice versa) and resumes
// bit-exactly at the same rank count; across rank counts the restored
// state itself is bit-identical (resumed trajectories then differ only by
// the R-way reduction grouping, as always). Residency and sharding are
// both invisible to the checkpoint format.
func TestCheckpointPortableAcrossStoresAndRanks(t *testing.T) {
	const warm, cont = 10, 8
	mk := func(ranks int, nvme bool) *Engine {
		cfg := baseConfig(ranks)
		cfg.BucketElems = 4000
		if nvme {
			cfg.NewStore = nvmeFactory(t)
		}
		eng, err := New(tinyGPT(42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	train := func(eng *Engine, corpus *data.Corpus, steps int) {
		t.Helper()
		for i := 0; i < steps; i++ {
			if _, err := eng.Step(corpus.NextBatch(4, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []struct {
		name             string
		srcR, dstR       int
		srcNVMe, dstNVMe bool
	}{
		{"R2nvme->R2dram", 2, 2, true, false},
		{"R2dram->R2nvme", 2, 2, false, true},
		{"R4nvme->R4nvme", 4, 4, true, true},
		{"R2nvme->R4dram", 2, 4, true, false}, // cross-R: restored state only
		{"R4nvme->R1dram", 4, 1, true, false}, // cross-R: restored state only
	} {
		t.Run(c.name, func(t *testing.T) {
			src := mk(c.srcR, c.srcNVMe)
			defer src.Close()
			corpus := data.NewCorpus(64, 55)
			train(src, corpus, warm)
			var ckpt bytes.Buffer
			if err := src.Save(&ckpt); err != nil {
				t.Fatal(err)
			}

			dst := mk(c.dstR, c.dstNVMe)
			defer dst.Close()
			if err := dst.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatal(err)
			}
			sw, dw := src.MasterWeights(), dst.MasterWeights()
			for i := range sw {
				if sw[i] != dw[i] {
					t.Fatalf("restored masters diverge at %d: %v vs %v", i, sw[i], dw[i])
				}
			}
			if c.srcR != c.dstR {
				return // resumed trajectories differ by reduction grouping
			}

			srcCont := data.NewCorpus(64, 66)
			dstCont := data.NewCorpus(64, 66)
			train(src, srcCont, cont)
			train(dst, dstCont, cont)
			sw, dw = src.MasterWeights(), dst.MasterWeights()
			for i := range sw {
				if sw[i] != dw[i] {
					t.Fatalf("post-resume masters diverge at %d: %v vs %v", i, sw[i], dw[i])
				}
			}
		})
	}
}
