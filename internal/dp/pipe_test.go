package dp

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// deepGPT is the pipeline tests' model: 4 transformer blocks so the
// depth splits across P ∈ {1,2,4}, 4 heads so sequences shard across
// S ∈ {1,2}.
func deepGPT(seed uint64) *nn.GPT {
	cfg := model.Config{Name: "p", Layers: 4, Hidden: 32, Heads: 4, Vocab: 64}
	return nn.NewGPT(cfg, 16, tensor.NewRNG(seed))
}

// pipeConfig parameterizes the R×S×P equivalence runs.
func pipeConfig(r, s, p int) Config {
	a := optim.DefaultConfig()
	a.LR = 3e-3
	return Config{
		Ranks:       r,
		SeqRanks:    s,
		PipeRanks:   p,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    1.0,
		BucketElems: 20000,
	}
}

// pipeShapes is the exactness grid the issue pins: every (R,S,P) in
// {1,2}³ plus the deep 4-stage column.
var pipeShapes = [][3]int{
	{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {1, 2, 2},
	{2, 1, 1}, {2, 1, 2}, {2, 2, 1}, {2, 2, 2},
	{1, 1, 4},
}

// runPipePair trains an R×S×P engine and a single-rank stv.Trainer on
// the same global batches (the trainer consumes each batch as the R-way
// row decomposition via gradient accumulation; S and P must both be
// invisible). accum > 1 feeds the engine that many global micro-batches
// per step — the 1F1B path — with the trainer accumulating the matching
// accum·R row slices in (micro, group) order. Callers own Close.
func runPipePair(t *testing.T, cfg Config, refCfg stv.Config, steps, accum int, dataSeed uint64, batch, seq int) (*PipeEngine, *stv.Trainer, []float64, []float64) {
	t.Helper()
	eng, err := NewPipe(deepGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := stv.NewTrainer(deepGPT(42), refCfg)

	corpus := data.NewCorpus(64, dataSeed)
	refCorpus := data.NewCorpus(64, dataSeed)
	var engLosses, refLosses []float64
	for i := 0; i < steps; i++ {
		var window []data.Batch
		var refWindow []data.Batch
		for m := 0; m < accum; m++ {
			window = append(window, corpus.NextBatch(batch, seq))
			refWindow = append(refWindow, splitBatch(refCorpus.NextBatch(batch, seq), cfg.Ranks, t)...)
		}
		l, err := eng.StepAccum(window)
		if err != nil {
			t.Fatal(err)
		}
		engLosses = append(engLosses, l)

		rl, err := ref.StepAccum(refWindow)
		if err != nil {
			t.Fatal(err)
		}
		refLosses = append(refLosses, rl)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng, ref, engLosses, refLosses
}

func assertPipeTrajectory(t *testing.T, r, s, p int, engLosses, refLosses []float64, eng *PipeEngine, ref *stv.Trainer) {
	t.Helper()
	for i := range engLosses {
		if engLosses[i] != refLosses[i] {
			t.Fatalf("R=%d,S=%d,P=%d: loss diverges at step %d: pipe %v vs single-rank %v",
				r, s, p, i, engLosses[i], refLosses[i])
		}
	}
	mw, rw := eng.MasterWeights(), ref.MasterWeights()
	if len(mw) != len(rw) {
		t.Fatalf("R=%d,S=%d,P=%d: master sizes differ: %d vs %d", r, s, p, len(mw), len(rw))
	}
	for i := range mw {
		if mw[i] != rw[i] {
			t.Fatalf("R=%d,S=%d,P=%d: master weights diverge at %d: %v vs %v", r, s, p, i, mw[i], rw[i])
		}
	}
	if eng.Stats() != ref.Stats() {
		t.Errorf("R=%d,S=%d,P=%d: stats diverge: pipe %+v vs single-rank %+v", r, s, p, eng.Stats(), ref.Stats())
	}
}

// TestPipeEquivalenceGrid is the 3-D engine's central invariant: for a
// fixed seed and global batch, every (R,S,P) shape in the grid
// reproduces the single-rank trainer's loss trajectory bit for bit when
// the trainer consumes the same R-way row decomposition (sequence
// sharding AND stage splitting must both be invisible). ClipNorm 1.0
// makes the runs trigger clip rollbacks, so the claim covers the
// rollback path too.
func TestPipeEquivalenceGrid(t *testing.T) {
	for _, shape := range pipeShapes {
		r, s, p := shape[0], shape[1], shape[2]
		t.Run(fmt.Sprintf("R%dxS%dxP%d", r, s, p), func(t *testing.T) {
			cfg := pipeConfig(r, s, p)
			eng, ref, engLosses, refLosses := runPipePair(t, cfg, stvConfig(cfg), 25, 1, 123, 4, 8)
			if eng.Stats().Rollbacks() == 0 {
				t.Errorf("R=%d,S=%d,P=%d: run triggered no rollbacks; equivalence untested on rollback path", r, s, p)
			}
			assertPipeTrajectory(t, r, s, p, engLosses, refLosses, eng, ref)
			cs := eng.CommStats()
			if s > 1 && (cs.A2APayloads == 0 || cs.RingHops == 0) {
				t.Errorf("R=%d,S=%d,P=%d: no collective traffic recorded: %+v", r, s, p, cs)
			}
			if p > 1 && (cs.StageSends == 0 || cs.StageFloats == 0) {
				t.Errorf("R=%d,S=%d,P=%d: no stage-boundary traffic recorded: %+v", r, s, p, cs)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPipe1F1BEquivalence is the pipelined path proper: with M >= 2
// micro-batches per step the stages genuinely interleave (warmup
// forwards run ahead of the first backward), and the trajectory must
// STILL match the single-rank trainer accumulating the same micro
// slices — 1F1B reorders compute, never arithmetic.
func TestPipe1F1BEquivalence(t *testing.T) {
	for _, shape := range [][3]int{{1, 1, 2}, {1, 1, 4}, {2, 1, 2}, {2, 2, 2}, {1, 2, 2}} {
		r, s, p := shape[0], shape[1], shape[2]
		t.Run(fmt.Sprintf("R%dxS%dxP%d", r, s, p), func(t *testing.T) {
			cfg := pipeConfig(r, s, p)
			eng, ref, engLosses, refLosses := runPipePair(t, cfg, stvConfig(cfg), 10, 3, 31, 2, 8)
			assertPipeTrajectory(t, r, s, p, engLosses, refLosses, eng, ref)
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPipeEquivalenceWithInjectedOverflow covers the NaN/Inf
// skip-rollback scenario with loss scaling across the third axis: the
// pipeline and the single-rank reference observe a corrupted global
// gradient on the same step and must skip it identically, with the loss
// scaler halving in both.
func TestPipeEquivalenceWithInjectedOverflow(t *testing.T) {
	for _, shape := range [][3]int{{2, 1, 2}, {1, 2, 2}, {1, 1, 4}} {
		r, s, p := shape[0], shape[1], shape[2]
		cfg := pipeConfig(r, s, p)
		cfg.InjectBad = func(step int) bool { return step == 5 || step == 9 }
		cfg.Scaler = optim.NewLossScaler()
		ref := stvConfig(cfg)
		ref.Scaler = optim.NewLossScaler()
		eng, trainer, engLosses, refLosses := runPipePair(t, cfg, ref, 15, 1, 7, 4, 8)
		if eng.Stats().SkipRolls != 2 {
			t.Errorf("R=%d,S=%d,P=%d: skip rollbacks = %d, want 2", r, s, p, eng.Stats().SkipRolls)
		}
		if cfg.Scaler.Scale != ref.Scaler.Scale {
			t.Errorf("R=%d,S=%d,P=%d: loss scales diverge: %v vs %v", r, s, p, cfg.Scaler.Scale, ref.Scaler.Scale)
		}
		assertPipeTrajectory(t, r, s, p, engLosses, refLosses, eng, trainer)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipeWithNVMeStores: the full composition — R×S×P over per-rank
// file-backed NVMe bucket stores, stepping 1F1B — must stay on the
// bit-exact trajectory (residency is invisible to the numerics across
// all three axes).
func TestPipeWithNVMeStores(t *testing.T) {
	for _, shape := range [][3]int{{2, 1, 2}, {1, 2, 2}, {1, 1, 4}} {
		r, s, p := shape[0], shape[1], shape[2]
		cfg := pipeConfig(r, s, p)
		cfg.BucketElems = 8000 // more buckets than the resident window
		cfg.NewStore = nvmeFactory(t)
		refCfg := stvConfig(cfg) // reference stays DRAM-resident
		eng, ref, engLosses, refLosses := runPipePair(t, cfg, refCfg, 10, 2, 123, 4, 8)
		assertPipeTrajectory(t, r, s, p, engLosses, refLosses, eng, ref)
		if tel, ok := eng.StoreTelemetry(); !ok || tel.Reads == 0 {
			t.Errorf("R=%d,S=%d,P=%d: NVMe stores produced no telemetry (ok=%v, %+v)", r, s, p, ok, tel)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipeCheckpointCrossShape: checkpoints on the same trajectory are
// byte-identical across S, P, and store backends, match the single-rank
// trainer's bytes, and restore into every grid shape with bit-identical
// state; shapes sharing the saver's R resume bit-identically.
func TestPipeCheckpointCrossShape(t *testing.T) {
	const warm, cont, batch, seq = 8, 5, 4, 8
	save := func(r, s, p int, seed uint64, nvme bool) []byte {
		t.Helper()
		cfg := pipeConfig(r, s, p)
		if nvme {
			cfg.NewStore = nvmeFactory(t)
		}
		eng, err := NewPipe(deepGPT(42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if cerr := eng.Close(); cerr != nil {
				t.Fatal(cerr)
			}
		}()
		corpus := data.NewCorpus(64, seed)
		for i := 0; i < warm; i++ {
			if _, err := eng.Step(corpus.NextBatch(batch, seq)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	const seed = 5
	ck211 := save(2, 1, 1, seed, false)
	ck212 := save(2, 1, 2, seed, false)
	ck222 := save(2, 2, 2, seed, true)
	if !bytes.Equal(ck211, ck212) || !bytes.Equal(ck212, ck222) {
		t.Fatal("checkpoints differ across (S,P) on the same R=2 trajectory")
	}
	cfg := pipeConfig(2, 1, 1)
	ref := stv.NewTrainer(deepGPT(42), stvConfig(cfg))
	corpus := data.NewCorpus(64, seed)
	for i := 0; i < warm; i++ {
		if _, err := ref.StepAccum(splitBatch(corpus.NextBatch(batch, seq), 2, t)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	if err := ref.Save(&refBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck212, refBuf.Bytes()) {
		t.Fatal("pipe checkpoint differs from single-rank trainer checkpoint")
	}

	for _, shape := range pipeShapes {
		r, s, p := shape[0], shape[1], shape[2]
		restored, err := NewPipe(deepGPT(1), pipeConfig(r, s, p))
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.Load(bytes.NewReader(ck212)); err != nil {
			t.Fatal(err)
		}
		if restored.StepIndex() != warm {
			t.Fatalf("R=%d,S=%d,P=%d: restored step index %d, want %d", r, s, p, restored.StepIndex(), warm)
		}
		mw, rw := restored.MasterWeights(), ref.MasterWeights()
		for i := range mw {
			if mw[i] != rw[i] {
				t.Fatalf("R=%d,S=%d,P=%d: restored masters diverge at %d", r, s, p, i)
			}
		}
		if r == 2 {
			refTr := stv.NewTrainer(deepGPT(1), stvConfig(pipeConfig(r, s, p)))
			if err := refTr.Load(bytes.NewReader(ck212)); err != nil {
				t.Fatal(err)
			}
			c1 := data.NewCorpus(64, seed+77)
			c2 := data.NewCorpus(64, seed+77)
			for i := 0; i < cont; i++ {
				a, err := restored.Step(c1.NextBatch(batch, seq))
				if err != nil {
					t.Fatal(err)
				}
				b, err := refTr.StepAccum(splitBatch(c2.NextBatch(batch, seq), r, t))
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("R=%d,S=%d,P=%d: post-restore trajectories diverge at step %d: %v vs %v", r, s, p, i, a, b)
				}
			}
			if _, err := refTr.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := restored.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := restored.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipeRaceStress exercises the concurrency-heavy composition under
// -race: a 2×2×2 engine stepping 1F1B with every rank streaming its
// ZeRO shard through a file-backed NVMe store window smaller than its
// bucket count, with fault injection and a tight clip norm forcing
// frequent rollbacks — boundary FIFOs, in-cell rings, cross-cell
// reduces, store prefetches, and validation goroutines all in flight
// together.
func TestPipeRaceStress(t *testing.T) {
	cfg := pipeConfig(2, 2, 2)
	cfg.BucketElems = 4000 // many buckets vs the 2-bucket store window
	cfg.ClipNorm = 0.5     // clip re-executions nearly every step
	cfg.Scaler = optim.NewLossScaler()
	cfg.InjectBad = func(step int) bool { return step%5 == 3 }
	cfg.NewStore = nvmeFactory(t)
	eng, err := NewPipe(deepGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(64, 9)
	for i := 0; i < 20; i++ {
		window := []data.Batch{corpus.NextBatch(4, 8), corpus.NextBatch(4, 8)}
		l, err := eng.StepAccum(window)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss corrupted at step %d: %v", i, l)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SkipRolls == 0 || st.ClipRolls == 0 {
		t.Errorf("stress run exercised no rollbacks: %+v", st)
	}
	var ckpt bytes.Buffer
	if err := eng.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipeTrainingLearns: beyond exactness, the 3-D engine must
// actually train.
func TestPipeTrainingLearns(t *testing.T) {
	cfg := pipeConfig(1, 2, 2)
	eng, err := NewPipe(deepGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	corpus := data.NewCorpus(64, 99)
	var losses []float64
	for i := 0; i < 120; i++ {
		l, err := eng.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, l)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	first, last := avg(losses[:10]), avg(losses[len(losses)-10:])
	if last > first*0.85 {
		t.Errorf("pipe training not learning: first %.3f last %.3f", first, last)
	}
}

// TestPipeValidation covers construction- and step-time guards.
func TestPipeValidation(t *testing.T) {
	if _, err := NewPipe(nil, pipeConfig(1, 1, 2)); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewPipe(deepGPT(1), pipeConfig(0, 1, 2)); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewPipe(deepGPT(1), pipeConfig(1, -1, 2)); err == nil {
		t.Error("negative seq ranks accepted")
	}
	if _, err := NewPipe(deepGPT(1), pipeConfig(1, 1, -1)); err == nil {
		t.Error("negative pipe ranks accepted")
	}
	// deepGPT has 4 blocks; 5 stages can never each own one.
	if _, err := NewPipe(deepGPT(1), pipeConfig(1, 1, 5)); err == nil {
		t.Error("more stages than blocks accepted")
	}
	// deepGPT has 4 heads; 3 sequence ranks can never divide them.
	if _, err := NewPipe(deepGPT(1), pipeConfig(1, 3, 2)); err == nil {
		t.Error("indivisible head count accepted")
	}
	eng, err := NewPipe(deepGPT(1), pipeConfig(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Ranks() != 2 || eng.SeqRanks() != 2 || eng.PipeRanks() != 2 {
		t.Errorf("shape accessors wrong: R=%d S=%d P=%d", eng.Ranks(), eng.SeqRanks(), eng.PipeRanks())
	}
	corpus := data.NewCorpus(64, 1)
	if _, err := eng.Step(corpus.NextBatch(3, 8)); err == nil {
		t.Error("batch not divisible by groups accepted")
	}
	if _, err := eng.Step(corpus.NextBatch(2, 7)); err == nil {
		t.Error("sequence not divisible by seq ranks accepted")
	}
	if _, err := eng.Step(corpus.NextBatch(2, 32)); err == nil {
		t.Error("sequence exceeding MaxSeq accepted")
	}
	if _, err := eng.Step(corpus.NextBatch(2, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save on a closed engine accepted")
	}
	if err := eng.Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load on a closed engine accepted")
	}
}
