package dp

import (
	"sync"

	"superoffload/internal/tensor"
)

// pipeLink is one stage-boundary link of the pipeline engine: an
// unbounded FIFO of boundary tensors between vertically adjacent ranks
// of one (group, sequence) column. Sends never block — under 1F1B an
// upstream stage may run several micro-batches ahead of its consumer,
// and a bounded link there could deadlock against the cap-1 collective
// channels the rest of the world uses — while receives block until a
// tensor arrives. Tensors pass by reference: each SPCache owns its
// buffers for its own lifetime, so the receiver reads them in place and
// the happens-before edge comes from the mutex.
type pipeLink struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []*tensor.Tensor
}

// newPipeLink wires one boundary FIFO.
func newPipeLink() *pipeLink {
	l := &pipeLink{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// send enqueues a boundary tensor; never blocks.
func (l *pipeLink) send(t *tensor.Tensor) {
	l.mu.Lock()
	l.q = append(l.q, t)
	l.mu.Unlock()
	l.cond.Signal()
}

// recv dequeues the oldest boundary tensor, blocking until one exists.
// Micro-batch order is preserved because each boundary's sender emits in
// schedule order.
func (l *pipeLink) recv() *tensor.Tensor {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.q) == 0 {
		l.cond.Wait()
	}
	t := l.q[0]
	l.q = l.q[1:]
	return t
}

// pipeWorld is the R×S×P engine's interconnect: the shared world core
// over all N = R·S·P ranks, one set of sequence-parallel links per
// (group, stage) cell of S ranks, cross-cell reduce links, and the
// stage-boundary activation/gradient FIFOs. Cells are indexed g·P + p;
// global rank ids are (g·S + s)·P + p.
type pipeWorld struct {
	*world
	R, S, P int

	// links[g·P+p] is cell (g, p)'s in-cell sequence-parallel links; the
	// ring there reduces over the stage's contiguous parameter span, not
	// the full flat layout.
	links []*spLinks
	// reduce[b][g·P+p] carries cell (g, p)'s delegated contribution for
	// bucket b — the intersection of the cell's stage span with bucket
	// b's range — to the bucket's global owner.
	reduce reduceLinks
	// acts[p][g·S+s] carries stage p → p+1 boundary activations for
	// column (g, s); grads[p][g·S+s] the p+1 → p boundary gradients.
	acts  [][]*pipeLink
	grads [][]*pipeLink
	tel   *linkTelemetry
}

// newPipeWorld wires the 3-D engine's interconnect for r groups, s
// sequence ranks per cell, p pipeline stages, and b buckets.
func newPipeWorld(r, s, p, b int) *pipeWorld {
	tel := &linkTelemetry{}
	w := &pipeWorld{
		world:  newWorld(r*s*p, b),
		R:      r,
		S:      s,
		P:      p,
		reduce: newReduceLinks(b, r*p),
		tel:    tel,
	}
	w.links = make([]*spLinks, r*p)
	for i := range w.links {
		w.links[i] = newSPLinks(s, tel)
	}
	w.acts = make([][]*pipeLink, p-1)
	w.grads = make([][]*pipeLink, p-1)
	for bi := 0; bi < p-1; bi++ {
		w.acts[bi] = make([]*pipeLink, r*s)
		w.grads[bi] = make([]*pipeLink, r*s)
		for col := 0; col < r*s; col++ {
			w.acts[bi][col] = newPipeLink()
			w.grads[bi][col] = newPipeLink()
		}
	}
	return w
}
