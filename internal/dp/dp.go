// Package dp is the multi-superchip data-parallel training engine: it runs
// R simulated superchip ranks over the real GPT numerics of internal/nn,
// with a ZeRO-style partition of the fp32 master weights and Adam moments
// across ranks (following the partitioned-optimizer-state design of
// ZeRO-Offload that SuperOffload extends to Superchips — the paper's 2×
// and 4× GH200 configurations).
//
// The partition follows the existing internal/stv bucket boundaries, so
// buckets remain the unit of offload, reduction, and rollback. Each rank
// runs forward/backward on its own micro-batch on a full model replica,
// then the engine performs a bucketized gradient reduce-scatter (each
// bucket's owner receives and sums every rank's contribution) and a
// post-step fp16 weight all-gather. Rank links are modeled as goroutine
// channels; STV's speculative per-bucket step and background validation
// overlap with communication exactly as §4.4 prescribes, and rollback
// stays exact across ranks: a clip or NaN verdict rolls back the globally
// reduced step on every rank.
//
// Determinism contract: for the same global batch, an R-rank engine
// reproduces — bit for bit — the loss trajectory of a single-rank
// stv.Trainer that processes the same R-way micro-batch decomposition via
// gradient accumulation. All cross-rank reductions happen in a fixed
// order: gradient contributions sum in (micro-batch, rank) order, global
// gradient-norm partials sum in bucket order, and losses sum in
// (micro-batch, rank) order.
package dp

import (
	"superoffload/internal/act"
	"superoffload/internal/hw"
	"superoffload/internal/obs"
	"superoffload/internal/optim"
	"superoffload/internal/place"
	"superoffload/internal/stv"
)

// Config parameterizes a multi-rank engine (New, NewSP, NewMesh). The
// optimizer fields mirror stv.Config so every engine stays
// trajectory-compatible with the single-rank trainer.
type Config struct {
	// Ranks is the simulated superchip count R (the paper evaluates 1, 2,
	// 4, and 16). New reads it as the data-parallel degree, NewSP as the
	// sequence-parallel degree, and NewMesh as the number of
	// data-parallel replica groups.
	Ranks int
	// SeqRanks is the per-group sequence-parallel degree S, read only by
	// NewMesh and NewPipe (the other constructors take their single
	// degree from Ranks). 0 means 1.
	SeqRanks int
	// PipeRanks is the pipeline-parallel degree P — the number of stage
	// ranks each (group, sequence) column splits the transformer depth
	// over — read only by NewPipe. 0 means 1. The model must have at
	// least P transformer blocks.
	PipeRanks int
	// Adam is the optimizer hyperparameter set.
	Adam optim.Config
	// Impl is the Adam kernel (default optim.GraceAdam).
	Impl optim.Impl
	// ClipNorm is the global gradient-norm clipping threshold (0
	// disables clipping).
	ClipNorm float64
	// BucketElems is the per-bucket element budget shared with stv.
	BucketElems int
	// Synchronous resolves every validation before Step returns (the
	// synchronize-then-execute baseline); the default overlaps
	// validation with the next step's forward (STV).
	Synchronous bool
	// Scaler enables mixed-precision loss scaling; nil trains unscaled.
	Scaler *optim.LossScaler
	// Schedule, when non-nil, returns a learning-rate multiplier for the
	// given 1-based step.
	Schedule func(step int) float64
	// InjectBad, when non-nil, is consulted per step; returning true
	// corrupts the reduced gradient of bucket 0 with +Inf (fault
	// injection for overflow/rollback tests).
	InjectBad func(step int) bool
	// NewStore, when non-nil, builds the bucket store holding each
	// rank's ZeRO shard of optimizer state (each rank gets its own store
	// keyed by global bucket index). Nil keeps every shard DRAM-resident.
	// The engine owns the stores: Close closes them.
	NewStore func(rank int) (stv.BucketStore, error)
	// Placement assigns every global bucket an update tier (GPU-resident
	// tail, CPU Adam, or the NVMe window). Each rank runs a virtual-clock
	// superchip executor over its owned shard of the plan — the per-rank
	// placement — and the engine sums their telemetry. Nil disables
	// placement modeling. Tiers never change numerics, so any plan keeps
	// the engine bit-identical to the homogeneous single-rank trainer.
	Placement *place.Plan
	// Superchip is the hardware model the placement executors time
	// against; the zero value means hw.DefaultSuperchip(). Ignored when
	// Placement is nil.
	Superchip hw.SuperchipSpec
	// Tracer, when non-nil, records per-op schedule spans (one track per
	// rank), coordinator step spans, and collective instants for export
	// as Chrome trace-event JSON. Nil disables tracing at zero cost —
	// the interpreter's hot path takes one predictable branch per op.
	Tracer *obs.Tracer
	// NewActStore, when non-nil, builds each rank's activation offloading
	// tier (internal/act): per-layer forward activations spill out of the
	// rank's replica behind the store's resident window and prefetch back
	// ahead of backward. Spilling is numerically invisible, so every
	// engine stays bit-identical to its non-spilling counterpart. The
	// engine owns the stores: Close closes them.
	NewActStore func(rank int) (*act.Store, error)
}

// resolution is the verdict for the previous speculative step, broadcast
// to every rank: the deferred global state of §4.4 applied across the
// cluster.
type resolution struct {
	action    int          // aNone, aCommit, aSkip, aClip
	clipScale float64      // aClip: gradient scale restoring the norm bound
	adam      optim.Config // aClip: hyperparameters the speculative step used
}

const (
	aNone = iota // nothing pending (first step)
	aCommit
	aSkip // NaN/Inf: roll the step back everywhere, skip it
	aClip // clip violation: re-execute everywhere with scaled gradients
)

// weightsChanged reports whether applying the resolution modifies model
// weights (forcing a forward redo mid-step).
func (v resolution) weightsChanged() bool { return v.action == aSkip || v.action == aClip }

// goMsg releases a rank into the backward phase of the current step with
// the state the coordinator resolved after validation (loss scale may have
// just changed).
type goMsg struct {
	adam   optim.Config
	scale  float64 // current loss scale
	inject bool    // corrupt the reduced gradient of bucket 0
}

// Command kinds for a rank's top-level loop (comm.go's command).
const (
	cmdStep    = iota
	cmdResolve // apply a resolution outside a step (Flush)
	cmdStop
)

// withDefaults fills the optimizer implementation and bucket budget the
// way every engine constructor does.
func (c Config) withDefaults() Config {
	if c.Impl == nil {
		c.Impl = optim.GraceAdam
	}
	if c.BucketElems <= 0 {
		c.BucketElems = 32 << 20 // 64 MB of fp16, §4.3
	}
	return c
}
