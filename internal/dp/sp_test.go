package dp

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// spBaseConfig parameterizes the sequence-parallel equivalence runs over
// tinyGPT (equivalence_test.go), whose 4 heads divide by every tested S.
func spBaseConfig(seqRanks int) Config {
	a := optim.DefaultConfig()
	a.LR = 3e-3
	return Config{
		Ranks:       seqRanks,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    1.0,
		BucketElems: 20000,
	}
}

// runSPPair trains an S-rank sequence-parallel engine and a single-rank
// stv.Trainer on the same whole batches (no decomposition: the SP engine's
// contract is exactness against the undivided single-rank step) and
// returns both loss trajectories. Callers own Close.
func runSPPair(t *testing.T, cfg Config, refCfg stv.Config, steps int, dataSeed uint64, batch, seq int) (*SPEngine, *stv.Trainer, []float64, []float64) {
	t.Helper()
	eng, err := NewSP(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := stv.NewTrainer(tinyGPT(42), refCfg)

	corpus := data.NewCorpus(64, dataSeed)
	refCorpus := data.NewCorpus(64, dataSeed)
	var spLosses, refLosses []float64
	for i := 0; i < steps; i++ {
		l, err := eng.Step(corpus.NextBatch(batch, seq))
		if err != nil {
			t.Fatal(err)
		}
		spLosses = append(spLosses, l)

		rl, err := ref.Step(refCorpus.NextBatch(batch, seq))
		if err != nil {
			t.Fatal(err)
		}
		refLosses = append(refLosses, rl)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng, ref, spLosses, refLosses
}

func assertSPTrajectory(t *testing.T, ranks int, spLosses, refLosses []float64, eng *SPEngine, ref *stv.Trainer) {
	t.Helper()
	for i := range spLosses {
		if spLosses[i] != refLosses[i] {
			t.Fatalf("S=%d: loss diverges at step %d: sp %v vs single-rank %v",
				ranks, i, spLosses[i], refLosses[i])
		}
	}
	sw, rw := eng.MasterWeights(), ref.MasterWeights()
	if len(sw) != len(rw) {
		t.Fatalf("S=%d: master sizes differ: %d vs %d", ranks, len(sw), len(rw))
	}
	for i := range sw {
		if sw[i] != rw[i] {
			t.Fatalf("S=%d: master weights diverge at %d: %v vs %v", ranks, i, sw[i], rw[i])
		}
	}
	if eng.Stats() != ref.Stats() {
		t.Errorf("S=%d: stats diverge: sp %+v vs single-rank %+v", ranks, eng.Stats(), ref.Stats())
	}
}

// TestSPEquivalenceAcrossRanks is the engine's central invariant: for a
// fixed seed and batch, S ∈ {1,2,4} sequence ranks reproduce the
// single-rank trainer's loss trajectory on the SAME undivided batch bit
// for bit — sequence parallelism is invisible to the numerics. ClipNorm
// 1.0 makes the run trigger clip rollbacks, so the claim covers the
// rollback path too.
func TestSPEquivalenceAcrossRanks(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		cfg := spBaseConfig(ranks)
		eng, ref, spLosses, refLosses := runSPPair(t, cfg, stvConfig(cfg), 25, 123, 3, 8)
		if eng.Stats().Rollbacks() == 0 {
			t.Errorf("S=%d: run triggered no rollbacks; equivalence untested on rollback path", ranks)
		}
		assertSPTrajectory(t, ranks, spLosses, refLosses, eng, ref)
		if cs := eng.CommStats(); ranks > 1 && (cs.A2APayloads == 0 || cs.RingHops == 0) {
			t.Errorf("S=%d: no collective traffic recorded: %+v", ranks, cs)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSPEquivalenceWithInjectedOverflow covers the NaN/Inf skip-rollback
// scenario with loss scaling: both engines observe a corrupted global
// gradient on the same step and must skip it identically.
func TestSPEquivalenceWithInjectedOverflow(t *testing.T) {
	for _, ranks := range []int{2, 4} {
		cfg := spBaseConfig(ranks)
		cfg.InjectBad = func(step int) bool { return step == 5 || step == 9 }
		cfg.Scaler = optim.NewLossScaler()
		ref := stvConfig(cfg)
		ref.Scaler = optim.NewLossScaler()
		eng, trainer, spLosses, refLosses := runSPPair(t, cfg, ref, 15, 7, 2, 8)
		if eng.Stats().SkipRolls != 2 {
			t.Errorf("S=%d: skip rollbacks = %d, want 2", ranks, eng.Stats().SkipRolls)
		}
		if cfg.Scaler.Scale != ref.Scaler.Scale {
			t.Errorf("S=%d: loss scales diverge: %v vs %v", ranks, cfg.Scaler.Scale, ref.Scaler.Scale)
		}
		assertSPTrajectory(t, ranks, spLosses, refLosses, eng, trainer)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSPEquivalenceWithSchedule: exactness must survive a moving learning
// rate, including clip re-execution with the rolled-back step's own rate.
func TestSPEquivalenceWithSchedule(t *testing.T) {
	cfg := spBaseConfig(2)
	cfg.ClipNorm = 2.5
	cfg.Schedule = stv.WarmupCosine(5, 20, 0.1)
	eng, ref, spLosses, refLosses := runSPPair(t, cfg, stvConfig(cfg), 20, 17, 2, 8)
	if eng.Stats().ClipRolls == 0 {
		t.Error("test needs clip events to be meaningful")
	}
	assertSPTrajectory(t, 2, spLosses, refLosses, eng, ref)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSPStepAccumEquivalence: gradient accumulation composes with
// sequence parallelism — M micro-batches over S ranks must match the
// single-rank trainer accumulating the same M whole micro-batches.
func TestSPStepAccumEquivalence(t *testing.T) {
	const ranks, accum, steps = 2, 3, 10
	cfg := spBaseConfig(ranks)
	eng, err := NewSP(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ref := stv.NewTrainer(tinyGPT(42), stvConfig(cfg))

	corpus := data.NewCorpus(64, 31)
	refCorpus := data.NewCorpus(64, 31)
	for i := 0; i < steps; i++ {
		var window, refWindow []data.Batch
		for m := 0; m < accum; m++ {
			window = append(window, corpus.NextBatch(2, 8))
			refWindow = append(refWindow, refCorpus.NextBatch(2, 8))
		}
		l, err := eng.StepAccum(window)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := ref.StepAccum(refWindow)
		if err != nil {
			t.Fatal(err)
		}
		if l != rl {
			t.Fatalf("accum loss diverges at step %d: %v vs %v", i, l, rl)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	sw, rw := eng.MasterWeights(), ref.MasterWeights()
	for i := range sw {
		if sw[i] != rw[i] {
			t.Fatalf("accumulated masters diverge at %d", i)
		}
	}
}

// TestSPWithNVMeStores: the full composition — sequence parallelism over
// per-rank file-backed NVMe bucket stores — must stay on the bit-exact
// trajectory (residency is invisible to the numerics, §4.7 + the NVMe
// tier).
func TestSPWithNVMeStores(t *testing.T) {
	dir := t.TempDir()
	for _, ranks := range []int{2, 4} {
		cfg := spBaseConfig(ranks)
		cfg.BucketElems = 8000 // more buckets than the resident window
		cfg.NewStore = func(rank int) (stv.BucketStore, error) {
			return stv.NewNVMeStore(stv.NVMeStoreConfig{
				Dir: filepath.Join(dir), ResidentBuckets: 2,
			})
		}
		refCfg := stvConfig(cfg)
		refCfg.BucketElems = cfg.BucketElems
		eng, ref, spLosses, refLosses := runSPPair(t, cfg, refCfg, 15, 123, 2, 8)
		assertSPTrajectory(t, ranks, spLosses, refLosses, eng, ref)
		if tel, ok := eng.StoreTelemetry(); !ok || tel.Reads == 0 {
			t.Errorf("S=%d: NVMe stores produced no telemetry (ok=%v, %+v)", ranks, ok, tel)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSPCheckpointPortability: checkpoints are byte-identical across
// sequence-rank counts on the same trajectory, and restore exactly in
// both directions (SP engine ↔ single-rank trainer), including across
// store backends.
func TestSPCheckpointPortability(t *testing.T) {
	const steps, batch, seq = 10, 2, 8
	train := func(ranks int) ([]byte, *SPEngine) {
		cfg := spBaseConfig(ranks)
		eng, err := NewSP(tinyGPT(42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		corpus := data.NewCorpus(64, 5)
		for i := 0; i < steps; i++ {
			if _, err := eng.Step(corpus.NextBatch(batch, seq)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), eng
	}

	ck1, e1 := train(1)
	defer e1.Close()
	ck2, e2 := train(2)
	defer e2.Close()
	ck4, e4 := train(4)
	defer e4.Close()
	if !bytes.Equal(ck1, ck2) || !bytes.Equal(ck2, ck4) {
		t.Fatal("checkpoints differ across sequence-rank counts on the same trajectory")
	}

	// Single-rank trainer on the same trajectory writes the same bytes.
	cfg := spBaseConfig(1)
	ref := stv.NewTrainer(tinyGPT(42), stvConfig(cfg))
	corpus := data.NewCorpus(64, 5)
	for i := 0; i < steps; i++ {
		if _, err := ref.Step(corpus.NextBatch(batch, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	if err := ref.Save(&refBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck2, refBuf.Bytes()) {
		t.Fatal("SP checkpoint differs from single-rank trainer checkpoint")
	}

	// Restore the S=4 checkpoint into a fresh S=2 engine (NVMe-backed)
	// and a fresh single-rank trainer; both must continue identically.
	cont := func(step func(b data.Batch) (float64, error)) []float64 {
		c := data.NewCorpus(64, 77)
		var out []float64
		for i := 0; i < 5; i++ {
			l, err := step(c.NextBatch(batch, seq))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, l)
		}
		return out
	}
	cfg2 := spBaseConfig(2)
	cfg2.NewStore = func(rank int) (stv.BucketStore, error) {
		return stv.NewNVMeStore(stv.NVMeStoreConfig{Dir: t.TempDir(), ResidentBuckets: 2})
	}
	restored, err := NewSP(tinyGPT(1), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.Load(bytes.NewReader(ck4)); err != nil {
		t.Fatal(err)
	}
	if restored.StepIndex() != steps {
		t.Fatalf("restored step index %d, want %d", restored.StepIndex(), steps)
	}
	refTr := stv.NewTrainer(tinyGPT(1), stvConfig(cfg2))
	if err := refTr.Load(bytes.NewReader(ck4)); err != nil {
		t.Fatal(err)
	}
	a := cont(restored.Step)
	b := cont(refTr.Step)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-restore trajectories diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	if _, err := restored.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := refTr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestSPSynchronousMatchesSTV: the synchronize-then-execute schedule must
// land on bit-identical weights across the sequence-parallel engine.
func TestSPSynchronousMatchesSTV(t *testing.T) {
	run := func(sync bool) []float32 {
		cfg := spBaseConfig(2)
		cfg.Synchronous = sync
		eng, err := NewSP(tinyGPT(42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		corpus := data.NewCorpus(64, 11)
		for i := 0; i < 15; i++ {
			if _, err := eng.Step(corpus.NextBatch(2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		return eng.MasterWeights()
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("synchronous diverges from STV at %d", i)
		}
	}
}

// TestSPTrainingLearns: beyond exactness, the sequence-parallel engine
// must actually train.
func TestSPTrainingLearns(t *testing.T) {
	cfg := spBaseConfig(4)
	eng, err := NewSP(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	corpus := data.NewCorpus(64, 99)
	var losses []float64
	for i := 0; i < 120; i++ {
		l, err := eng.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss corrupted at step %d: %v", i, l)
		}
		losses = append(losses, l)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	first, last := avg(losses[:10]), avg(losses[len(losses)-10:])
	if last > first*0.85 {
		t.Errorf("sequence-parallel training not learning: first %.3f last %.3f", first, last)
	}
}

// TestSPValidation covers construction- and step-time guards.
func TestSPValidation(t *testing.T) {
	if _, err := NewSP(nil, spBaseConfig(2)); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewSP(tinyGPT(1), spBaseConfig(0)); err == nil {
		t.Error("zero ranks accepted")
	}
	// tinyGPT has 4 heads; 3 ranks can never divide them.
	if _, err := NewSP(tinyGPT(1), spBaseConfig(3)); err == nil {
		t.Error("indivisible head count accepted")
	}
	eng, err := NewSP(tinyGPT(1), spBaseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	corpus := data.NewCorpus(64, 1)
	if _, err := eng.Step(corpus.NextBatch(2, 7)); err == nil {
		t.Error("sequence not divisible by ranks accepted")
	}
	// Oversized sequences surface as errors in the caller's goroutine,
	// not as rank-goroutine panics (tinyGPT's MaxSeq is 16).
	if _, err := eng.Step(corpus.NextBatch(2, 32)); err == nil {
		t.Error("sequence exceeding MaxSeq accepted")
	}
	if _, err := eng.Step(corpus.NextBatch(2, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the checkpoint surface returns errors rather than
	// panicking inside a closed bucket store.
	if err := eng.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save on a closed engine accepted")
	}
	if err := eng.Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load on a closed engine accepted")
	}
}
