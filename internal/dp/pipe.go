package dp

import (
	"fmt"
	"io"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/stv"
)

// PipeEngine is the full 3-D R×S×P training engine: R data-parallel
// replica groups × S-way Ulysses sequence parallelism per cell × P
// pipeline stages per column, scheduled 1F1B over the step's
// micro-batches. Each (group, sequence) column splits the transformer
// depth into P contiguous block ranges; boundary activations flow
// downstream and boundary gradients upstream over per-column channel
// links, while each (group, stage) cell of S ranks runs the usual
// per-layer attention all-to-alls and reduces its stage's weight
// gradients over the in-cell ring. Completed per-cell span gradients
// reduce-scatter across cells to the global bucket owners — the fp32
// masters and Adam moments stay ZeRO-partitioned over all R·S·P ranks,
// each behind its own pluggable bucket store — and STV's speculative
// step, background validation, and exact rollback run unchanged on top.
//
// Determinism contract: for the same global batch, an R×S×P engine
// reproduces — bit for bit — the loss trajectory, rollback decisions,
// stats, and checkpoints of a single-rank stv.Trainer processing the
// same R-way row decomposition via gradient accumulation. S and P are
// invisible to the numerics: stage spans partition the flat parameter
// space, so every gradient element still folds in (micro, group) order,
// and the 1F1B interleaving only reorders compute, never arithmetic
// (DESIGN.md, "1F1B exactness"). Checkpoints are byte-identical across
// (R,S,P) shapes and interchangeable with every other engine's.
//
// The one asymmetry: an activation offload tier (Config.NewActStore)
// attaches only to final-stage ranks, because act.Store is strictly
// single-pass and only the last stage's 1F1B schedule completes each
// forward pass before the next begins.
type PipeEngine struct {
	coordinator
	w     *pipeWorld
	ranks []*pipeRank
	// buckets is the global bucket order; entry b points at the owning
	// rank's optimizer state (used for checkpointing and diagnostics).
	buckets []*stv.Bucket
}

// NewPipe builds an R×S×P pipeline engine over the model: cfg.Ranks
// data-parallel groups × cfg.SeqRanks sequence ranks × cfg.PipeRanks
// pipeline stages (0 counts as 1 for each). The model becomes rank
// (0,0,0)'s replica; the other R·S·P-1 ranks train on bit-identical
// clones, each computing only its own stage's block range.
func NewPipe(model *nn.GPT, cfg Config) (*PipeEngine, error) {
	if model == nil {
		return nil, fmt.Errorf("dp: nil model")
	}
	if cfg.SeqRanks == 0 {
		cfg.SeqRanks = 1
	}
	if cfg.PipeRanks == 0 {
		cfg.PipeRanks = 1
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dp: pipe Ranks must be >= 1, got %d", cfg.Ranks)
	}
	if cfg.SeqRanks < 1 {
		return nil, fmt.Errorf("dp: pipe SeqRanks must be >= 1, got %d", cfg.SeqRanks)
	}
	if cfg.PipeRanks < 1 {
		return nil, fmt.Errorf("dp: pipe PipeRanks must be >= 1, got %d", cfg.PipeRanks)
	}
	if model.Cfg.Heads%cfg.SeqRanks != 0 {
		return nil, fmt.Errorf("dp: %d attention heads not divisible by %d sequence ranks",
			model.Cfg.Heads, cfg.SeqRanks)
	}
	if err := model.ValidateStages(cfg.PipeRanks); err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	cfg = cfg.withDefaults()
	r, s, p := cfg.Ranks, cfg.SeqRanks, cfg.PipeRanks
	nBuckets := len(stv.PartitionGroups(model.Params(), cfg.BucketElems))
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(nBuckets); err != nil {
			return nil, fmt.Errorf("dp: %w", err)
		}
	}
	w := newPipeWorld(r, s, p, nBuckets)
	w.attachTracer(cfg.Tracer)
	w.tel.attach(cfg.Tracer)
	e := &PipeEngine{
		coordinator: coordinator{cfg: cfg, sched: func(rank, micros int) []scheduleOp {
			return pipeSchedule(rank%p, p, micros)
		}},
		w:       w,
		buckets: make([]*stv.Bucket, nBuckets),
	}
	stores, err := buildStores(r*s*p, cfg.NewStore)
	if err != nil {
		return nil, err
	}
	// Activation stores attach only on final-stage ranks (see the
	// PipeEngine doc comment); the factory is gated accordingly so no
	// store is built just to sit idle.
	actFactory := cfg.NewActStore
	if actFactory != nil {
		inner := actFactory
		actFactory = func(rank int) (*act.Store, error) {
			if rank%p != p-1 {
				return nil, nil
			}
			return inner(rank)
		}
	}
	acts, err := buildActStores(r*s*p, actFactory)
	if err != nil {
		return nil, closeStores(stores, err)
	}
	for g := 0; g < r; g++ {
		for sl := 0; sl < s; sl++ {
			for st := 0; st < p; st++ {
				id := (g*s+sl)*p + st
				replica := model
				if id > 0 {
					replica = model.Clone()
				}
				rk := newPipeRank(g, sl, st, w, replica, cfg.Impl, cfg.BucketElems, stores[id])
				rk.exec = newRankExecutor(cfg, replica, rk.owned, nBuckets)
				rk.attachAct(acts[id])
				for _, ob := range rk.owned {
					e.buckets[ob.idx] = ob.b
				}
				e.ranks = append(e.ranks, rk)
				go rk.run()
			}
		}
	}
	go w.aggregate()
	return e, nil
}

// CommStats reports the engine's cumulative link traffic: every cell's
// all-to-all and ring links plus the stage-boundary tensor sends.
func (e *PipeEngine) CommStats() SPCommStats { return e.w.tel.snapshot() }

// StoreTelemetry sums the modeled NVMe telemetry over every rank's store.
// ok is false when no rank uses an NVMe-backed store.
func (e *PipeEngine) StoreTelemetry() (stv.StoreTelemetry, bool) {
	return sumNVMeTelemetry(storeList(e.ranks))
}

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *PipeEngine) PlacementTelemetry() (stv.PlacementTelemetry, bool) {
	return sumPlacementTelemetry(e.ranks)
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over the final-stage ranks; ok is false without an
// activation tier.
func (e *PipeEngine) ActTelemetry() (act.Telemetry, bool) {
	return sumActTelemetry(e.ranks)
}

// Ranks reports the data-parallel degree R (the number of replica
// groups).
func (e *PipeEngine) Ranks() int { return e.w.R }

// SeqRanks reports the per-cell sequence-parallel degree S.
func (e *PipeEngine) SeqRanks() int { return e.w.S }

// PipeRanks reports the pipeline-parallel degree P (stages per column).
func (e *PipeEngine) PipeRanks() int { return e.w.P }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *PipeEngine) NumBuckets() int { return len(e.buckets) }

// split shards a global batch over the 3-D engine: rows split R ways
// across groups, each group slice's sequence splits S ways across the
// cell's ranks, and every stage rank of a column receives the same
// (rows, sequence) shard — stage 0 reads its tokens, the final stage
// its targets, and every stage its shape. The sharding arithmetic is
// validated here, in the caller's goroutine, so a malformed batch
// surfaces as an error instead of a rank-goroutine panic.
func (e *PipeEngine) split(b data.Batch) ([]data.Batch, error) {
	if b.BatchSize%e.w.R != 0 {
		return nil, fmt.Errorf("dp: global batch %d not divisible by %d pipe groups", b.BatchSize, e.w.R)
	}
	if err := e.ranks[0].model.ValidateSP(e.w.S, b.Seq); err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	out := make([]data.Batch, e.w.N)
	for g, slice := range splitRows(b, e.w.R) {
		for s, shard := range splitSeq(slice, e.w.S) {
			for p := 0; p < e.w.P; p++ {
				out[(g*e.w.S+s)*e.w.P+p] = shard
			}
		}
	}
	return out, nil
}

// Step runs one training iteration over the global batch. With one
// micro-batch the pipeline degenerates to sequential stages; use
// StepAccum with M >= 2 micro-batches to overlap them 1F1B. Returns the
// mean loss — bit-identical to the single-rank engine's loss for the
// same R-way row decomposition.
func (e *PipeEngine) Step(b data.Batch) (float64, error) {
	shards, err := e.split(b)
	if err != nil {
		return 0, err
	}
	micross := make([][]data.Batch, e.w.N)
	for id, sh := range shards {
		micross[id] = []data.Batch{sh}
	}
	return e.step(micross)
}

// StepAccum runs one optimizer step over several accumulated global
// micro-batches — the pipeline's natural shape: the M micro-batches
// fill the 1F1B schedule, overlapping stages so each stage idles only
// the (P-1)/(M+P-1) warmup/cooldown bubble. Reductions complete per
// micro-batch in (micro-batch, group) order and one optimizer step
// applies at the end, exactly like every other engine.
func (e *PipeEngine) StepAccum(batches []data.Batch) (float64, error) {
	if len(batches) == 0 {
		return 0, nil
	}
	micross := make([][]data.Batch, e.w.N)
	for _, b := range batches {
		shards, err := e.split(b)
		if err != nil {
			return 0, err
		}
		for id, sh := range shards {
			micross[id] = append(micross[id], sh)
		}
	}
	return e.step(micross)
}

// step drives one iteration through the shared coordinator and folds the
// reported per-row losses in canonical order. Only final-stage ranks
// (g, s, P-1) produce loss rows; per (micro, group) they fold in (batch
// row, shard, position) order — ascending global row order within the
// group's slice — and the R·m slice losses then sum in (micro, group)
// order and divide once, matching the single-rank trainer accumulating
// the same R-way decomposition (and the mesh engine's fold exactly).
func (e *PipeEngine) step(micross [][]data.Batch) (float64, error) {
	perRank, err := e.runStep(e.w.world, micross)
	if err != nil {
		return 0, err
	}
	m := len(micross[0])
	var loss float64
	for mi := 0; mi < m; mi++ {
		rowsB, tl := micross[0][mi].BatchSize, micross[0][mi].Seq
		for g := 0; g < e.w.R; g++ {
			var micro float64
			for b := 0; b < rowsB; b++ {
				for s := 0; s < e.w.S; s++ {
					last := (g*e.w.S+s)*e.w.P + e.w.P - 1
					for t := 0; t < tl; t++ {
						micro += perRank[last].rows[mi][b*tl+t]
					}
				}
			}
			loss += micro / float64(rowsB*tl*e.w.S)
		}
	}
	loss /= float64(m * e.w.R)

	if e.cfg.Synchronous {
		if _, err := e.Flush(); err != nil {
			return loss, err
		}
	}
	return loss, nil
}

// Flush resolves any in-flight validation (call at end of training so
// the final step is validated). Returns whether the final step was
// rolled back or re-executed.
func (e *PipeEngine) Flush() (bool, error) { return e.flush(e.w.world) }

// Save serializes the training state in the stv checkpoint format, over
// the global bucket order — byte-identical to every other engine on the
// same trajectory, so checkpoints move freely across (R,S,P) shapes.
func (e *PipeEngine) Save(w io.Writer) error { return e.save(w, e.buckets) }

// Load restores state saved by any engine's Save, scattering each bucket
// to its owner and republishing the fp16-rounded weights to every
// replica.
func (e *PipeEngine) Load(r io.Reader) error { return e.load(r, e.buckets, replicaGroups(e.ranks)) }

// MasterWeights returns the fp32 master parameters gathered from their
// owners, concatenated in bucket order — the ground truth for exactness
// comparisons against the single-rank engine.
func (e *PipeEngine) MasterWeights() []float32 { return gatherMasters(e.buckets) }

// Close resolves any pending validation, stops the rank goroutines and
// the validation aggregator, and closes every rank's bucket store and
// activation store. Idempotent; the engine is unusable afterwards.
func (e *PipeEngine) Close() error {
	return e.closeWorld(e.w.world, storeList(e.ranks), actStoreList(e.ranks))
}
