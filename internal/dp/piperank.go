package dp

import (
	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// pipeRank is one simulated superchip of the R×S×P pipeline engine:
// rank (g, s, p) — global id (g·S + s)·P + p — holds a full fp16 model
// replica but computes only pipeline stage p's contiguous block range,
// over sequence shard s of data-parallel group g's batch rows. Boundary
// activations and gradients flow over the column's pipeLinks under the
// 1F1B schedule; gradients reduce in-cell over the stage's parameter
// span, then cross-cell to the global ZeRO owner. Every rank still owns
// its round-robin share of ALL buckets (ownership ignores topology), so
// checkpoints stay byte-identical to every other engine.
type pipeRank struct {
	id    int // global rank: (group·S + local)·P + stage
	group int // data-parallel group g ∈ [0, R)
	local int // in-cell sequence rank s ∈ [0, S)
	stage int // pipeline stage p ∈ [0, P)

	w      *pipeWorld
	model  *nn.GPT
	sp     *nn.SP
	impl   optim.Impl
	store  stv.BucketStore
	exec   *stv.PlacementExecutor // nil without a placement plan
	ast    *act.Store             // nil without an activation tier (final stage only)
	groups []nn.Params            // global bucket layout over this replica
	owned  []ownedBucket          // this rank's partition, ascending bucket index
	// offsets[b] is bucket b's start in the flat Params() layout.
	offsets []int
	// spans[p] is stage p's StageParamSpan — spans partition the flat
	// layout, so every bucket element belongs to exactly one stage.
	spans [][2]int
	// seeder hands each cell's local rank 0 the per-micro ring buffers,
	// sized to this stage's span (see flatSeeder for reuse discipline).
	seeder flatSeeder
	// sendBufs[m][b] stages this cell's delegated cross-cell contribution
	// for micro m and bucket b — same staging discipline as the mesh
	// rank's sendBufs (distinct per micro within a step, reused across
	// steps only after the coordinator collected every rank's results).
	sendBufs [][][]float32

	// Per-step interpreter state (begin resets it). caches[m] is micro
	// m's stage cache; bounds[m]/dBounds[m] hold the received boundary
	// activation/gradient for micro m (nil on stage 0 / the last stage).
	micros  []data.Batch
	rows    [][]float64
	caches  []*nn.SPCache
	bounds  []*tensor.Tensor
	dBounds []*tensor.Tensor
}

// intersectRange clips [alo, ahi) to [blo, bhi); empty intersections
// come back with lo >= hi.
func intersectRange(alo, ahi, blo, bhi int) (lo, hi int) {
	lo, hi = alo, ahi
	if blo > lo {
		lo = blo
	}
	if bhi < hi {
		hi = bhi
	}
	return lo, hi
}

// newPipeRank partitions the replica under the global (R·S·P-way)
// ownership policy and wires this rank into its cell's sequence-parallel
// links.
func newPipeRank(group, local, stage int, w *pipeWorld, model *nn.GPT, impl optim.Impl, bucketElems int, store stv.BucketStore) *pipeRank {
	r := &pipeRank{
		id:    (group*w.S+local)*w.P + stage,
		group: group, local: local, stage: stage,
		w: w, model: model, impl: impl, store: store,
	}
	links := w.links[group*w.P+stage]
	r.sp = &nn.SP{Rank: local, Ranks: w.S, AllToAll: func(p [][]float32) [][]float32 {
		return links.allToAll(local, p)
	}}
	r.groups, r.owned, r.offsets = partitionReplica(model, bucketElems, r.id, w.N, store)
	r.spans = make([][2]int, w.P)
	for p := 0; p < w.P; p++ {
		lo, hi := model.StageParamSpan(p, w.P)
		r.spans[p] = [2]int{lo, hi}
	}
	return r
}

// col is this rank's (group, sequence) column index into the boundary
// links.
func (r *pipeRank) col() int { return r.group*r.w.S + r.local }

// attachAct wires this rank's activation store into its cell's
// sequence-parallel pass (via nn.SP.Tap) and its placement executor's
// step model. Nil-safe. The pipeline engine only attaches stores on
// final-stage ranks: act.Store is strictly single-pass, and only the
// last stage's 1F1B schedule (F0,B0,F1,B1,…) completes each forward
// pass before the next begins.
func (r *pipeRank) attachAct(st *act.Store) {
	if st == nil {
		return
	}
	r.ast = st
	r.sp.Tap = st
	r.exec.SetAct(stv.ActShapeFor(r.model, st))
}

// run is the rank's top-level loop.
func (r *pipeRank) run() { runRankLoop(r.w.world, r.id, r) }

// begin resets the per-step interpreter state for a new schedule.
func (r *pipeRank) begin(micros []data.Batch) {
	r.micros = micros
	r.rows = make([][]float64, len(micros))
	r.caches = make([]*nn.SPCache, len(micros))
	r.bounds = make([]*tensor.Tensor, len(micros))
	r.dBounds = make([]*tensor.Tensor, len(micros))
}

// apply executes a validation resolution: owners mutate their partition,
// and if weights changed every rank republishes via the 3-D all-gather.
func (r *pipeRank) apply(v resolution) {
	applyResolution(v, r.owned, r.impl, r.allGather)
}

// forward runs micro m's forward over this stage's block range and this
// rank's sequence shard. Stage 0 embeds from the micro's tokens; later
// stages consume the boundary activation recvAct stored for this micro.
// Only the final stage produces loss rows.
func (r *pipeRank) forward(m int) {
	b := r.micros[m]
	losses, c := r.model.ForwardSPStage(b.Tokens, b.Targets, b.BatchSize, b.Seq,
		r.sp, r.stage, r.w.P, r.bounds[m])
	r.rows[m] = losses
	r.caches[m] = c
}

// backward runs micro m's backward over the stage's block range: the
// final stage seeds from its loss gradient (lossScale applies there and
// rides the chain upstream), earlier stages from the boundary gradient
// recvGrad stored for this micro.
func (r *pipeRank) backward(m int, scale float64) {
	r.model.BackwardSPStage(r.caches[m], scale, r.sp, r.dBounds[m])
}

// sendAct ships micro m's boundary activation to the next stage down
// the column.
func (r *pipeRank) sendAct(m int) {
	t := r.caches[m].StageOut()
	r.w.tel.stageSends.Add(1)
	r.w.tel.stageFloats.Add(int64(len(t.Data)))
	r.w.tel.track.InstantInt("stageAct", "floats", len(t.Data))
	r.w.acts[r.stage][r.col()].send(t)
}

// recvAct receives micro m's boundary activation from the previous
// stage up the column.
func (r *pipeRank) recvAct(m int) {
	r.bounds[m] = r.w.acts[r.stage-1][r.col()].recv()
}

// sendGrad ships micro m's boundary gradient to the previous stage up
// the column.
func (r *pipeRank) sendGrad(m int) {
	t := r.caches[m].StageDIn()
	r.w.tel.stageSends.Add(1)
	r.w.tel.stageFloats.Add(int64(len(t.Data)))
	r.w.tel.track.InstantInt("stageGrad", "floats", len(t.Data))
	r.w.grads[r.stage-1][r.col()].send(t)
}

// recvGrad receives micro m's boundary gradient from the next stage
// down the column.
func (r *pipeRank) recvGrad(m int) {
	r.dBounds[m] = r.w.grads[r.stage][r.col()].recv()
}

// reduce is the two-level gradient reduction for micro m, restricted to
// this stage's parameter span. Level one is the in-cell ring
// (spLinks.ringReduce over a span-sized flat buffer): hops visit (batch
// row, shard) pairs in ascending global row order, so the completed
// span reduction is bit-identical to a single-rank backward over this
// group's row slice, restricted to the span. Level two is the
// cross-cell bucketized reduce-scatter: for each bucket intersecting
// the span, the cell's delegate stages a copy of the intersection slice
// and sends it to the bucket's global owner; owners fold contributions
// per stage in ascending stage order and per group in ascending group
// order. Stage spans are disjoint, so each bucket ELEMENT still folds
// in exactly (micro, group) order — the same order the mesh engine and
// the single-rank trainer fold, keeping the reduced sum bit-identical.
func (r *pipeRank) reduce(m int) {
	links := r.w.links[r.group*r.w.P+r.stage]
	span := r.spans[r.stage]
	buf := links.ringReduce(r.local, r.caches[m], r.micros[m].BatchSize, func() []float32 {
		return r.seeder.next(span[1] - span[0])
	})
	for len(r.sendBufs) <= m {
		r.sendBufs = append(r.sendBufs, make([][]float32, len(r.groups)))
	}
	for bi, g := range r.groups {
		lo, hi := intersectRange(r.offsets[bi], r.offsets[bi]+g.TotalSize(), span[0], span[1])
		if lo >= hi || delegateLocal(bi, r.w.S) != r.local {
			continue
		}
		payload := r.sendBufs[m][bi]
		if len(payload) != hi-lo {
			payload = make([]float32, hi-lo)
			r.sendBufs[m][bi] = payload
		}
		copy(payload, buf[lo-span[0]:hi-span[0]])
		r.w.reduce[bi][r.group*r.w.P+r.stage] <- payload
	}
	for _, ob := range r.owned {
		dst := ob.b.Grad()
		bo := r.offsets[ob.idx]
		for p := 0; p < r.w.P; p++ {
			lo, hi := intersectRange(bo, bo+ob.b.Size(), r.spans[p][0], r.spans[p][1])
			if lo >= hi {
				continue
			}
			for g := 0; g < r.w.R; g++ {
				c := <-r.w.reduce[ob.idx][g*r.w.P+p]
				stv.AccumInto(dst[lo-bo:hi-bo], c, m == 0 && g == 0)
			}
		}
	}
}

// speculate runs the shared speculative phase: each cell's ring produced
// its whole row slice's span gradient, and the cross-cell reduce summed
// R of them per micro (stages contribute disjoint spans), so the divisor
// is micros·R — exactly the mesh engine's and the single-rank trainer's
// count for the same R-way decomposition.
func (r *pipeRank) speculate(g goMsg) {
	inv := float32(1 / (g.scale * float64(len(r.micros)*r.w.R)))
	speculate(r.w.world, r.owned, r.impl, g, inv, r.allGather)
}

// report closes the step out: record placement telemetry and hand the
// per-micro loss rows (nil except on the final stage) to the
// coordinator.
func (r *pipeRank) report() stepResult {
	r.exec.Record(localTokens(r.micros), r.micros[0].Seq)
	return stepResult{rows: r.rows}
}

// allGather publishes every owned bucket's fp16 weights to the other
// R·S·P-1 ranks and installs the payloads this rank receives into its
// replica.
func (r *pipeRank) allGather() {
	gatherWeights(r.owned, r.groups, r.w.gather, r.w.N, r.id)
}

// bucketStore, bucketLayout, placementExec, and actStore satisfy
// engineRank for the shared engine plumbing.
func (r *pipeRank) bucketStore() stv.BucketStore          { return r.store }
func (r *pipeRank) bucketLayout() []nn.Params             { return r.groups }
func (r *pipeRank) placementExec() *stv.PlacementExecutor { return r.exec }
func (r *pipeRank) actStore() *act.Store                  { return r.ast }
