package dp

import (
	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// meshRank is one simulated superchip of the R×S mesh engine: rank
// (g, s) — global id g·S + s — holds a full fp16 model replica, runs
// forward/backward over sequence shard s of data-parallel group g's
// batch rows (attention flips to head parallelism through group g's
// all-to-all links), and owns the ZeRO shard of optimizer state whose
// global bucket indices map to its global id, behind its own bucket
// store.
type meshRank struct {
	id    int // global rank: group·S + local
	group int // data-parallel group g ∈ [0, R)
	local int // in-group sequence rank s ∈ [0, S)

	w      *meshWorld
	model  *nn.GPT
	sp     *nn.SP
	impl   optim.Impl
	store  stv.BucketStore
	exec   *stv.PlacementExecutor // nil without a placement plan
	ast    *act.Store             // nil without an activation tier
	groups []nn.Params            // global bucket layout over this replica
	owned  []ownedBucket          // this rank's partition, ascending bucket index
	// offsets[b] is bucket b's start in the flat gradient layout
	// (Params() registration order — the layout the group ring reduces
	// over).
	offsets []int
	// seeder hands each group's local rank 0 the per-micro flat ring
	// buffers (see flatSeeder for the reuse discipline).
	seeder flatSeeder
	// sendBufs[m][b] stages this rank's delegated cross-group
	// contribution for micro-batch m and bucket b — a copy of the
	// completed group reduction's bucket slice, staged exactly like the
	// data-parallel rank's sendBufs so ring-buffer reuse can never race
	// the owner's reads: distinct per micro-batch within a step, reused
	// across steps only after the coordinator has collected every rank's
	// results.
	sendBufs [][][]float32

	// Per-step interpreter state (begin resets it). Caches are retained
	// per micro — each SPCache owns its arena, so multiple can be alive.
	micros []data.Batch
	rows   [][]float64
	caches []*nn.SPCache
}

// delegateLocal maps a bucket to the in-group rank that forwards each
// group's contribution across the mesh: the rank sharing the global
// owner's local index (bucketOwner over N = R·S reduced mod S), so the
// owner's own group's delegate is the owner itself.
func delegateLocal(bucket, seqRanks int) int { return bucketOwner(bucket, seqRanks) }

// newMeshRank partitions the replica under the global (R·S-way)
// ownership policy and wires this rank into its group's sequence-
// parallel links.
func newMeshRank(group, local int, w *meshWorld, model *nn.GPT, impl optim.Impl, bucketElems int, store stv.BucketStore) *meshRank {
	r := &meshRank{id: group*w.S + local, group: group, local: local, w: w, model: model, impl: impl, store: store}
	links := w.links[group]
	r.sp = &nn.SP{Rank: local, Ranks: w.S, AllToAll: func(p [][]float32) [][]float32 {
		return links.allToAll(local, p)
	}}
	r.groups, r.owned, r.offsets = partitionReplica(model, bucketElems, r.id, w.N, store)
	return r
}

// attachAct wires this rank's activation store into its group's
// sequence-parallel pass (via nn.SP.Tap) and its placement executor's
// step model. Nil-safe.
func (r *meshRank) attachAct(st *act.Store) {
	if st == nil {
		return
	}
	r.ast = st
	r.sp.Tap = st
	r.exec.SetAct(stv.ActShapeFor(r.model, st))
}

// run is the rank's top-level loop.
func (r *meshRank) run() { runRankLoop(r.w.world, r.id, r) }

// begin resets the per-step interpreter state for a new schedule.
func (r *meshRank) begin(micros []data.Batch) {
	r.micros = micros
	r.rows = make([][]float64, len(micros))
	r.caches = make([]*nn.SPCache, len(micros))
}

// apply executes a validation resolution: owners mutate their partition,
// and if weights changed every rank republishes via the mesh-wide
// all-gather.
func (r *meshRank) apply(v resolution) {
	applyResolution(v, r.owned, r.impl, r.allGather)
}

// forward runs micro m's forward over this rank's sequence shard of its
// group's batch rows (every rank's schedule forwards the same micros in
// the same order, so the per-layer all-to-alls pair in lockstep). An STV
// redo overwrites the slot, exactly like the pre-schedule driver.
func (r *meshRank) forward(m int) {
	b := r.micros[m]
	losses, c := r.model.ForwardSP(b.Tokens, b.Targets, b.BatchSize, b.Seq, r.sp)
	r.rows[m] = losses
	r.caches[m] = c
}

// backward runs micro m's backward from its retained cache.
func (r *meshRank) backward(m int, scale float64) {
	r.model.BackwardSP(r.caches[m], scale, r.sp)
}

// reduce runs micro m's two-level mesh reduction.
func (r *meshRank) reduce(m int) {
	r.meshReduce(m, r.caches[m], r.micros[m].BatchSize)
}

// speculate runs the shared speculative phase: normalize the reduced
// sum — each group's ring produced its whole row slice's gradient, and
// the cross-group reduce summed R of them per micro, so the divisor is
// micros·R, exactly the single-rank trainer's count for the same R-way
// decomposition — then apply per-bucket Adam and publish fp16 weights
// to all R·S ranks.
func (r *meshRank) speculate(g goMsg) {
	inv := float32(1 / (g.scale * float64(len(r.micros)*r.w.R)))
	speculate(r.w.world, r.owned, r.impl, g, inv, r.allGather)
}

// report closes the step out: record placement telemetry and hand the
// per-micro loss rows to the coordinator.
func (r *meshRank) report() stepResult {
	r.exec.Record(localTokens(r.micros), r.micros[0].Seq)
	return stepResult{rows: r.rows}
}

// meshReduce is the two-level gradient reduction for micro-batch m.
// Level one is the in-group ring (spLinks.ringReduce): the flat buffer
// hops (batch row, shard) pairs in ascending global row order, so the
// completed reduction is bit-identical to a single-rank backward over
// this group's row slice. Level two is the cross-group bucketized
// reduce-scatter: for each bucket, the group's delegate stages a copy of
// the bucket's slice and sends it to the bucket's global owner, and
// owners fold the R group contributions in (micro-batch, group) order —
// the same order a single-rank trainer's gradient accumulation folds the
// R row slices, so the reduced sum is bit-identical.
func (r *meshRank) meshReduce(m int, cache *nn.SPCache, batchRows int) {
	links := r.w.links[r.group]
	buf := links.ringReduce(r.local, cache, batchRows, func() []float32 {
		return r.seeder.next(r.model.Params().TotalSize())
	})
	for len(r.sendBufs) <= m {
		r.sendBufs = append(r.sendBufs, make([][]float32, len(r.groups)))
	}
	for bi, g := range r.groups {
		if delegateLocal(bi, r.w.S) != r.local {
			continue
		}
		payload := r.sendBufs[m][bi]
		if payload == nil {
			payload = make([]float32, g.TotalSize())
			r.sendBufs[m][bi] = payload
		}
		copy(payload, buf[r.offsets[bi]:r.offsets[bi]+len(payload)])
		r.w.reduce[bi][r.group] <- payload
	}
	for _, ob := range r.owned {
		dst := ob.b.Grad()
		for src := 0; src < r.w.R; src++ {
			c := <-r.w.reduce[ob.idx][src]
			stv.AccumInto(dst, c, m == 0 && src == 0)
		}
	}
}

// allGather publishes every owned bucket's fp16 weights to the other
// R·S-1 ranks and installs the payloads this rank receives into its
// replica.
func (r *meshRank) allGather() {
	gatherWeights(r.owned, r.groups, r.w.gather, r.w.N, r.id)
}

// bucketStore, bucketLayout, and placementExec satisfy engineRank for
// the shared engine plumbing (storeList, replicaGroups,
// sumPlacementTelemetry).
func (r *meshRank) bucketStore() stv.BucketStore          { return r.store }
func (r *meshRank) bucketLayout() []nn.Params             { return r.groups }
func (r *meshRank) placementExec() *stv.PlacementExecutor { return r.exec }
func (r *meshRank) actStore() *act.Store                  { return r.ast }
