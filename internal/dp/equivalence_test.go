package dp

import (
	"math"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

func tinyGPT(seed uint64) *nn.GPT {
	// 4 heads so the sequence-parallel tests can shard across S ∈ {1,2,4}.
	cfg := model.Config{Name: "t", Layers: 2, Hidden: 32, Heads: 4, Vocab: 64}
	return nn.NewGPT(cfg, 16, tensor.NewRNG(seed))
}

func baseConfig(ranks int) Config {
	a := optim.DefaultConfig()
	a.LR = 3e-3
	return Config{
		Ranks:       ranks,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    1.0,
		BucketElems: 20000, // several buckets for the tiny model
	}
}

func stvConfig(c Config) stv.Config {
	return stv.Config{
		Adam:        c.Adam,
		Impl:        c.Impl,
		ClipNorm:    c.ClipNorm,
		BucketElems: c.BucketElems,
		Mode:        stv.STV,
		Scaler:      c.Scaler,
		Schedule:    c.Schedule,
		InjectBad:   c.InjectBad,
	}
}

// splitBatch mirrors Engine.split for building the single-rank reference
// decomposition.
func splitBatch(b data.Batch, ranks int, t *testing.T) []data.Batch {
	t.Helper()
	if b.BatchSize%ranks != 0 {
		t.Fatalf("batch %d not divisible by %d", b.BatchSize, ranks)
	}
	per := b.BatchSize / ranks
	out := make([]data.Batch, ranks)
	for r := 0; r < ranks; r++ {
		lo, hi := r*per*b.Seq, (r+1)*per*b.Seq
		out[r] = data.Batch{Tokens: b.Tokens[lo:hi], Targets: b.Targets[lo:hi], BatchSize: per, Seq: b.Seq}
	}
	return out
}

// runPair trains a DP engine with R ranks and a single-rank stv.Trainer on
// the same global batches (the trainer consumes each batch as the R-way
// gradient-accumulation decomposition) and returns both loss trajectories
// plus the engines for further inspection. Callers own Close.
func runPair(t *testing.T, cfg Config, refCfg stv.Config, steps int, dataSeed uint64, batch int) (*Engine, *stv.Trainer, []float64, []float64) {
	t.Helper()
	eng, err := New(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := stv.NewTrainer(tinyGPT(42), refCfg)

	corpus := data.NewCorpus(64, dataSeed)
	refCorpus := data.NewCorpus(64, dataSeed)
	var dpLosses, refLosses []float64
	for i := 0; i < steps; i++ {
		b := corpus.NextBatch(batch, 8)
		l, err := eng.Step(b)
		if err != nil {
			t.Fatal(err)
		}
		dpLosses = append(dpLosses, l)

		rb := refCorpus.NextBatch(batch, 8)
		rl, err := ref.StepAccum(splitBatch(rb, cfg.Ranks, t))
		if err != nil {
			t.Fatal(err)
		}
		refLosses = append(refLosses, rl)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng, ref, dpLosses, refLosses
}

func assertSameTrajectory(t *testing.T, ranks int, dpLosses, refLosses []float64, eng *Engine, ref *stv.Trainer) {
	t.Helper()
	for i := range dpLosses {
		if dpLosses[i] != refLosses[i] {
			t.Fatalf("R=%d: loss diverges at step %d: dp %v vs single-rank %v",
				ranks, i, dpLosses[i], refLosses[i])
		}
	}
	dw, rw := eng.MasterWeights(), ref.MasterWeights()
	if len(dw) != len(rw) {
		t.Fatalf("R=%d: master sizes differ: %d vs %d", ranks, len(dw), len(rw))
	}
	for i := range dw {
		if dw[i] != rw[i] {
			t.Fatalf("R=%d: master weights diverge at %d: %v vs %v", ranks, i, dw[i], rw[i])
		}
	}
	if eng.Stats() != ref.Stats() {
		t.Errorf("R=%d: stats diverge: dp %+v vs single-rank %+v", ranks, eng.Stats(), ref.Stats())
	}
}

// TestEquivalenceAcrossRanks is the engine's central invariant: for a
// fixed seed and global batch, R ∈ {1,2,4} ranks reproduce the single-rank
// trainer's loss trajectory bit for bit (the single-rank trainer processes
// the same R-way micro-batch decomposition, since data parallelism over R
// ranks is gradient accumulation over R micro-batches). ClipNorm 1.0
// makes the run trigger clip rollbacks, so the exactness claim covers the
// rollback path too.
func TestEquivalenceAcrossRanks(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		cfg := baseConfig(ranks)
		eng, ref, dpLosses, refLosses := runPair(t, cfg, stvConfig(cfg), 25, 123, 4)
		if eng.Stats().Rollbacks() == 0 {
			t.Errorf("R=%d: run triggered no rollbacks; equivalence untested on rollback path", ranks)
		}
		assertSameTrajectory(t, ranks, dpLosses, refLosses, eng, ref)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEquivalenceWithInjectedOverflow covers the NaN/Inf skip-rollback
// scenario: both engines observe a corrupted global gradient on the same
// step and must skip it identically, with the loss scaler halving in both.
func TestEquivalenceWithInjectedOverflow(t *testing.T) {
	for _, ranks := range []int{2, 4} {
		cfg := baseConfig(ranks)
		cfg.InjectBad = func(step int) bool { return step == 5 || step == 9 }
		cfg.Scaler = optim.NewLossScaler()
		ref := stvConfig(cfg)
		ref.Scaler = optim.NewLossScaler()
		eng, trainer, dpLosses, refLosses := runPair(t, cfg, ref, 15, 7, 4)
		if eng.Stats().SkipRolls != 2 {
			t.Errorf("R=%d: skip rollbacks = %d, want 2", ranks, eng.Stats().SkipRolls)
		}
		if cfg.Scaler.Scale != ref.Scaler.Scale {
			t.Errorf("R=%d: loss scales diverge: %v vs %v", ranks, cfg.Scaler.Scale, ref.Scaler.Scale)
		}
		assertSameTrajectory(t, ranks, dpLosses, refLosses, eng, trainer)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEquivalenceWithSchedule: exactness must survive a moving learning
// rate, including clip re-execution with the rolled-back step's own rate.
func TestEquivalenceWithSchedule(t *testing.T) {
	cfg := baseConfig(2)
	cfg.ClipNorm = 2.5
	cfg.Schedule = stv.WarmupCosine(5, 20, 0.1)
	eng, ref, dpLosses, refLosses := runPair(t, cfg, stvConfig(cfg), 20, 17, 4)
	if eng.Stats().ClipRolls == 0 {
		t.Error("test needs clip events to be meaningful")
	}
	assertSameTrajectory(t, 2, dpLosses, refLosses, eng, ref)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStepAccumEquivalence: the §5.2 gradient-accumulation path composes
// with data parallelism — M global micro-batches over R ranks must match
// the single-rank trainer accumulating the same M·R slices in
// (micro-batch, rank) order.
func TestStepAccumEquivalence(t *testing.T) {
	const ranks, accum, steps = 2, 3, 10
	cfg := baseConfig(ranks)
	eng, err := New(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ref := stv.NewTrainer(tinyGPT(42), stvConfig(cfg))

	corpus := data.NewCorpus(64, 31)
	refCorpus := data.NewCorpus(64, 31)
	for i := 0; i < steps; i++ {
		var window []data.Batch
		for m := 0; m < accum; m++ {
			window = append(window, corpus.NextBatch(2, 8))
		}
		l, err := eng.StepAccum(window)
		if err != nil {
			t.Fatal(err)
		}
		var refWindow []data.Batch
		for m := 0; m < accum; m++ {
			refWindow = append(refWindow, splitBatch(refCorpus.NextBatch(2, 8), ranks, t)...)
		}
		rl, err := ref.StepAccum(refWindow)
		if err != nil {
			t.Fatal(err)
		}
		if l != rl {
			t.Fatalf("accum loss diverges at step %d: %v vs %v", i, l, rl)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	dw, rw := eng.MasterWeights(), ref.MasterWeights()
	for i := range dw {
		if dw[i] != rw[i] {
			t.Fatalf("accumulated masters diverge at %d", i)
		}
	}
}

// TestSynchronousMatchesSTV: the synchronize-then-execute schedule must
// land on bit-identical weights (the repo-wide STV ≡ STE exactness claim,
// now across ranks).
func TestSynchronousMatchesSTV(t *testing.T) {
	run := func(sync bool) []float32 {
		cfg := baseConfig(2)
		cfg.Synchronous = sync
		eng, err := New(tinyGPT(42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		corpus := data.NewCorpus(64, 11)
		for i := 0; i < 15; i++ {
			if _, err := eng.Step(corpus.NextBatch(4, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		return eng.MasterWeights()
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("synchronous diverges from STV at %d", i)
		}
	}
}

// TestTrainingLearnsAcrossRanks: beyond exactness, the multi-rank engine
// must actually train.
func TestTrainingLearnsAcrossRanks(t *testing.T) {
	cfg := baseConfig(4)
	eng, err := New(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	corpus := data.NewCorpus(64, 99)
	var losses []float64
	for i := 0; i < 120; i++ {
		l, err := eng.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss corrupted at step %d: %v", i, l)
		}
		losses = append(losses, l)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	first, last := avg(losses[:10]), avg(losses[len(losses)-10:])
	if last > first*0.85 {
		t.Errorf("multi-rank training not learning: first %.3f last %.3f", first, last)
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
