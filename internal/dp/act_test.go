package dp

import (
	"bytes"
	"io"
	"testing"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// actTestGPT is deep enough (5 layers) that the activation store's
// resident floor of 2 leaves three layers spilling, with 4 heads so the
// SP and mesh shapes can shard attention.
func actTestGPT(seed uint64) *nn.GPT {
	cfg := model.Config{Name: "t", Layers: 5, Hidden: 32, Heads: 4, Vocab: 64}
	return nn.NewGPT(cfg, 16, tensor.NewRNG(seed))
}

// actEngine abstracts the three multi-rank engines for the shared
// activation-exactness assertions.
type actEngine interface {
	Step(b data.Batch) (float64, error)
	Flush() (bool, error)
	Save(w io.Writer) error
	Stats() stv.Stats
	ActTelemetry() (act.Telemetry, bool)
	MasterWeights() []float32
	Close() error
}

// actTestConfig is the shared engine config: clipping plus fault
// injection, so the exactness surface includes clip rollbacks, the
// NaN-skip, and the redo-forwards that abandon half-spilled passes.
func actTestConfig(ranks int) Config {
	cfg := baseConfig(ranks)
	cfg.ClipNorm = 0.9
	cfg.InjectBad = func(step int) bool { return step == 3 }
	return cfg
}

// runActEngine trains an engine for steps iterations and returns losses,
// stats, checkpoint bytes, and master weights.
func runActEngine(t *testing.T, e actEngine, steps int) ([]float64, stv.Stats, []byte, []float32) {
	t.Helper()
	corpus := data.NewCorpus(64, 77)
	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		l, err := e.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, l)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := e.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	masters := e.MasterWeights()
	stats := e.Stats()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return losses, stats, ckpt.Bytes(), masters
}

// TestEngineActBitExact is the multi-rank half of the activation-spill
// exactness contract: each engine — DP R=2, SP S=2, mesh 2×2 — with every
// rank spilling through either tier trains bit-identically to its
// resident self (which the equivalence suites already pin to the
// single-rank trainer): same losses, same rollback stats, byte-identical
// checkpoints, identical master weights. Per-rank telemetry must show
// real spill traffic with the double buffer strictly beating a blocking
// store.
func TestEngineActBitExact(t *testing.T) {
	const steps = 14
	params := int64(actTestGPT(42).NumParams())

	builders := []struct {
		name  string
		build func(cfg Config) (actEngine, error)
	}{
		{"dp-r2", func(cfg Config) (actEngine, error) { return New(actTestGPT(42), cfg) }},
		{"sp-s2", func(cfg Config) (actEngine, error) { return NewSP(actTestGPT(42), cfg) }},
		{"mesh-2x2", func(cfg Config) (actEngine, error) {
			cfg.Ranks, cfg.SeqRanks = 2, 2
			return NewMesh(actTestGPT(42), cfg)
		}},
	}

	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ref, err := b.build(actTestConfig(2))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := ref.ActTelemetry(); ok {
				ref.Close()
				t.Fatal("store-less engine reported activation telemetry")
			}
			refLosses, refStats, refCkpt, refMasters := runActEngine(t, ref, steps)
			if refStats.Rollbacks() == 0 {
				t.Fatalf("reference run produced no rollbacks: %+v", refStats)
			}

			for _, tier := range []act.Tier{act.DRAM, act.NVMe} {
				cfg := actTestConfig(2)
				dir := t.TempDir()
				cfg.NewActStore = func(rank int) (*act.Store, error) {
					return act.NewStore(act.Config{
						Tier: tier, Dir: dir, ResidentLayers: 2,
						Hidden: 32, Params: params,
					})
				}
				e, err := b.build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				losses, stats, ckpt, masters := runActEngine(t, e, steps)
				for i := range refLosses {
					if losses[i] != refLosses[i] {
						t.Fatalf("%v: loss diverged at step %d: %v vs %v", tier, i, losses[i], refLosses[i])
					}
				}
				if stats != refStats {
					t.Fatalf("%v: stats diverged: %+v vs %+v", tier, stats, refStats)
				}
				if !bytes.Equal(ckpt, refCkpt) {
					t.Fatalf("%v: checkpoint bytes diverged", tier)
				}
				for i := range masters {
					if masters[i] != refMasters[i] {
						t.Fatalf("%v: master weights diverged at %d", tier, i)
					}
				}
			}
		})
	}
}

// TestEngineActTelemetry pins the summed per-rank accounting on a live
// engine: both ranks spill, traffic balances, and the prefetcher's
// pipelined time strictly beats the serialized reference.
func TestEngineActTelemetry(t *testing.T) {
	cfg := baseConfig(2)
	params := int64(actTestGPT(42).NumParams())
	cfg.NewActStore = func(rank int) (*act.Store, error) {
		return act.NewStore(act.Config{Tier: act.DRAM, ResidentLayers: 2, Hidden: 32, Params: params})
	}
	e, err := New(actTestGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(64, 9)
	const steps = 6
	for i := 0; i < steps; i++ {
		if _, err := e.Step(corpus.NextBatch(4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	tel, ok := e.ActTelemetry()
	if !ok {
		t.Fatal("activation telemetry missing")
	}
	// 5 layers, window 2 → 3 spills per pass per rank; at least steps
	// passes per rank (redos add more).
	if tel.Passes < steps || tel.Spills < 2*3*steps {
		t.Fatalf("telemetry undercounts traffic: %+v", tel)
	}
	// Redo-forwards spill layers whose pass is then abandoned, so spilled
	// traffic can exceed fetched — never the reverse.
	if tel.BytesFetched == 0 || tel.BytesSpilled < tel.BytesFetched {
		t.Fatalf("spill/fetch traffic unbalanced: %+v", tel)
	}
	if tel.PipelinedSeconds() >= tel.SerializedSeconds() {
		t.Fatalf("double buffering hid nothing: pipelined %v >= serialized %v",
			tel.PipelinedSeconds(), tel.SerializedSeconds())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
