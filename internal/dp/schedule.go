package dp

// The schedule layer: a training step is, per rank, a sequence of
// schedule ops produced by a pluggable builder and executed by one small
// interpreter over the rank's engine body (stepExecutor). The legacy
// engines (DP, SP, mesh) build the trivial all-forward-then-backward
// sequence the old imperative driver hard-coded in each rank's control
// flow; the pipeline engine builds a 1F1B schedule per stage. Keeping
// the step structure in data — instead of in each rank body — is what
// lets one interpreter, one STV redo rule, and one coordinator drive
// every topology.

import (
	"superoffload/internal/data"
	"superoffload/internal/obs"
)

// opKind enumerates the schedule ops a rank can execute in one step.
type opKind int

const (
	// opForward runs the forward pass of micro-batch `micro`.
	opForward opKind = iota
	// opBackward runs the backward pass of micro-batch `micro`, scaled by
	// the goMsg's loss scale (so it must come after opGo).
	opBackward
	// opReduce folds micro `micro`'s gradients into the owned buckets
	// through the engine's reduction topology.
	opReduce
	// opResolve receives the previous step's validation verdict from the
	// coordinator and applies it to the owned partition. If the weights
	// changed (rollback/clip), every forwarded-but-not-yet-backwarded
	// micro re-runs its forward on the corrected weights — the STV redo.
	opResolve
	// opGo receives the goMsg (Adam step params, loss scale, fault
	// injection) that releases the rank into its backward phase.
	opGo
	// opSendAct ships micro `micro`'s boundary activation downstream to
	// the next pipeline stage; opRecvAct receives it from upstream.
	opSendAct
	opRecvAct
	// opSendGrad ships micro `micro`'s boundary gradient upstream to the
	// previous pipeline stage; opRecvGrad receives it from downstream.
	opSendGrad
	opRecvGrad
	// opSpeculate runs the speculative optimizer step on the owned
	// partition and streams validation partials to the coordinator.
	opSpeculate
	// opReport sends the rank's stepResult to the coordinator.
	opReport
)

// opSpanNames labels each opKind for the trace span it emits;
// opHasMicro marks the kinds whose micro field is meaningful (and
// worth tagging).
var opSpanNames = [...]string{
	opForward: "forward", opBackward: "backward", opReduce: "reduce",
	opResolve: "resolve", opGo: "go", opSendAct: "sendAct",
	opRecvAct: "recvAct", opSendGrad: "sendGrad", opRecvGrad: "recvGrad",
	opSpeculate: "speculate", opReport: "report",
}

// opHasMicro reports whether kind's micro field indexes a micro-batch.
func opHasMicro(kind opKind) bool {
	switch kind {
	case opForward, opBackward, opReduce, opSendAct, opRecvAct, opSendGrad, opRecvGrad:
		return true
	}
	return false
}

// scheduleOp is one step of a rank's schedule.
type scheduleOp struct {
	kind  opKind
	micro int
}

// scheduleBuilder produces rank `rank`'s op sequence for a step of
// `micros` micro-batches. Builders must be deterministic: every rank of
// a collective group must emit matching collective ops in matching
// order, or the channel collectives deadlock.
type scheduleBuilder func(rank, micros int) []scheduleOp

// legacyBuilder is the scheduleBuilder the non-pipelined engines (DP,
// SP, mesh) share: every rank runs the same all-forward-then-backward
// sequence regardless of its position in the topology.
func legacyBuilder(rank, micros int) []scheduleOp {
	return legacySchedule(micros)
}

// legacySchedule is the all-forward-then-backward step the imperative
// driver used to hard-code: forward micro 0, resolve the previous step's
// validation (redoing forward 0 if the weights changed), receive go,
// then backward+reduce micro 0 and forward/backward/reduce each
// remaining micro, speculate, report.
func legacySchedule(micros int) []scheduleOp {
	ops := make([]scheduleOp, 0, 3*micros+4)
	ops = append(ops,
		scheduleOp{kind: opForward, micro: 0},
		scheduleOp{kind: opResolve},
		scheduleOp{kind: opGo},
		scheduleOp{kind: opBackward, micro: 0},
		scheduleOp{kind: opReduce, micro: 0},
	)
	for m := 1; m < micros; m++ {
		ops = append(ops,
			scheduleOp{kind: opForward, micro: m},
			scheduleOp{kind: opBackward, micro: m},
			scheduleOp{kind: opReduce, micro: m},
		)
	}
	return append(ops, scheduleOp{kind: opSpeculate}, scheduleOp{kind: opReport})
}

// pipeSchedule is pipeline stage `stage`'s 1F1B schedule over `micros`
// micro-batches. It resolves BEFORE the first forward (numerically
// identical — forwards read post-resolution weights either way — and it
// keeps the redo machinery off the multi-micro-in-flight pipeline), then
// runs the classic warmup/steady/cooldown pattern: min(stages-1-stage,
// micros) warmup forwards, alternating forward/backward in steady state,
// and draining backwards. Each forward is bracketed by recvAct (stages
// above 0) and sendAct (stages below the last); each backward by
// recvGrad/sendGrad symmetrically, followed by that micro's reduce.
func pipeSchedule(stage, stages, micros int) []scheduleOp {
	ops := []scheduleOp{{kind: opResolve}, {kind: opGo}}
	emitF := func(m int) {
		if stage > 0 {
			ops = append(ops, scheduleOp{kind: opRecvAct, micro: m})
		}
		ops = append(ops, scheduleOp{kind: opForward, micro: m})
		if stage < stages-1 {
			ops = append(ops, scheduleOp{kind: opSendAct, micro: m})
		}
	}
	emitB := func(m int) {
		if stage < stages-1 {
			ops = append(ops, scheduleOp{kind: opRecvGrad, micro: m})
		}
		ops = append(ops, scheduleOp{kind: opBackward, micro: m})
		if stage > 0 {
			ops = append(ops, scheduleOp{kind: opSendGrad, micro: m})
		}
		ops = append(ops, scheduleOp{kind: opReduce, micro: m})
	}
	warmup := stages - 1 - stage
	if warmup > micros {
		warmup = micros
	}
	fwd, bwd := 0, 0
	for ; fwd < warmup; fwd++ {
		emitF(fwd)
	}
	for fwd < micros {
		emitF(fwd)
		fwd++
		emitB(bwd)
		bwd++
	}
	for bwd < micros {
		emitB(bwd)
		bwd++
	}
	return append(ops, scheduleOp{kind: opSpeculate}, scheduleOp{kind: opReport})
}

// stepExecutor is a rank's engine body: the interpreter calls these in
// schedule order. begin resets per-step state before the first op.
type stepExecutor interface {
	begin(micros []data.Batch)
	forward(m int)
	backward(m int, scale float64)
	reduce(m int)
	apply(v resolution)
	speculate(g goMsg)
	report() stepResult
}

// stageExecutor extends stepExecutor with the pipeline-boundary ops.
// Only schedules that emit stage ops need it; the interpreter
// type-asserts on demand, so legacy executors stay oblivious.
type stageExecutor interface {
	stepExecutor
	sendAct(m int)
	recvAct(m int)
	sendGrad(m int)
	recvGrad(m int)
}

// runSchedule interprets one step's op sequence for rank id. It owns the
// coordinator handshakes (resolution, goMsg, result report) and the STV
// redo rule: on a weight-changing resolution, every micro that has
// forwarded but not yet backwarded re-runs its forward — which for the
// legacy schedules is exactly micro 0, reproducing the old redo loop.
// Tracing rides the same loop: when the world carries a tracer, every
// op becomes one span on the rank's track (named after its opKind,
// tagged with its micro) — which is what gives all five engines a
// per-rank timeline from a single tap point. With tracing off the
// track is nil and each op pays exactly one predictable branch.
func runSchedule(w *world, id int, ops []scheduleOp, ex stepExecutor) {
	var g goMsg
	var inFlight []int // forwarded, not yet backwarded, in forward order
	tk := w.track(id)
	for _, op := range ops {
		var sp obs.Span
		if tk != nil {
			sp = tk.Begin(opSpanNames[op.kind])
		}
		switch op.kind {
		case opForward:
			ex.forward(op.micro)
			inFlight = append(inFlight, op.micro)
		case opBackward:
			ex.backward(op.micro, g.scale)
			for i, m := range inFlight {
				if m == op.micro {
					inFlight = append(inFlight[:i], inFlight[i+1:]...)
					break
				}
			}
		case opReduce:
			ex.reduce(op.micro)
		case opResolve:
			v := <-w.resolution[id]
			ex.apply(v)
			if v.weightsChanged() {
				for _, m := range inFlight {
					ex.forward(m)
				}
			}
		case opGo:
			g = <-w.goCh[id]
		case opSendAct:
			ex.(stageExecutor).sendAct(op.micro)
		case opRecvAct:
			ex.(stageExecutor).recvAct(op.micro)
		case opSendGrad:
			ex.(stageExecutor).sendGrad(op.micro)
		case opRecvGrad:
			ex.(stageExecutor).recvGrad(op.micro)
		case opSpeculate:
			ex.speculate(g)
		case opReport:
			w.results[id] <- ex.report()
		}
		if tk != nil {
			if opHasMicro(op.kind) {
				sp.EndMicro(op.micro)
			} else {
				sp.End()
			}
		}
	}
}
