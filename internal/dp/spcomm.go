package dp

import (
	"sync/atomic"

	"superoffload/internal/nn"
	"superoffload/internal/obs"
)

// linkTelemetry counts sequence-parallel link traffic: all-to-all
// payloads/floats (two exchanges per layer per pass), weight-gradient
// ring hops/floats, and (under the pipeline engine) stage-boundary
// tensor sends/floats. Ranks update the counters concurrently; totals
// are deterministic for a fixed model and step count.
type linkTelemetry struct {
	a2aPayloads atomic.Int64
	a2aFloats   atomic.Int64
	ringHops    atomic.Int64
	ringFloats  atomic.Int64
	stageSends  atomic.Int64
	stageFloats atomic.Int64

	// track, when non-nil, receives one instant per collective call on
	// the engine's "comm" timeline (a2a exchanges, ring broadcasts,
	// stage-boundary sends), tagged with the float volume moved.
	track *obs.Track
}

// attach wires the counters to a tracer's "comm" track (no-op on nil).
func (t *linkTelemetry) attach(tr *obs.Tracer) {
	if tr != nil {
		t.track = tr.Track("comm")
	}
}

// snapshot renders the counters as the public stats type.
func (t *linkTelemetry) snapshot() SPCommStats {
	return SPCommStats{
		A2APayloads: t.a2aPayloads.Load(),
		A2AFloats:   t.a2aFloats.Load(),
		RingHops:    t.ringHops.Load(),
		RingFloats:  t.ringFloats.Load(),
		StageSends:  t.stageSends.Load(),
		StageFloats: t.stageFloats.Load(),
	}
}

// spLinks is one sequence-parallel group's collective links: S ranks
// each own a contiguous sequence shard of every batch row, so the links
// carry the per-layer all-to-alls that flip attention between sequence
// and head sharding (§4.7's two collectives per layer per pass) and the
// weight-gradient ring whose hops visit (batch row, shard) pairs in
// ascending global row order so the reduced gradient reproduces the
// single-rank fold bit for bit. The sequence-parallel engine has one
// group; the mesh engine has one per data-parallel replica group.
type spLinks struct {
	S   int            // sequence ranks in this group
	tel *linkTelemetry // shared traffic counters

	// a2a[dst][src] carries one attention-exchange payload — the
	// all-to-all collective primitive.
	a2a [][]chan []float32
	// ring[s] delivers the in-progress flat gradient buffer to rank s.
	ring []chan []float32
	// flat[s] broadcasts each micro-batch's completed reduction.
	flat []chan []float32
}

// newSPLinks wires one group's collective links for s sequence ranks.
func newSPLinks(s int, tel *linkTelemetry) *spLinks {
	l := &spLinks{S: s, tel: tel}
	l.ring = make([]chan []float32, s)
	l.flat = make([]chan []float32, s)
	for i := 0; i < s; i++ {
		l.ring[i] = make(chan []float32, 1)
		l.flat[i] = make(chan []float32, 1)
	}
	l.a2a = make([][]chan []float32, s)
	for d := 0; d < s; d++ {
		l.a2a[d] = make([]chan []float32, s)
		for src := 0; src < s; src++ {
			l.a2a[d][src] = make(chan []float32, 1)
		}
	}
	return l
}

// allToAll is the collective primitive: rank sends payloads[d] to every
// peer d and receives the payload each peer addressed to it, indexed by
// source. Channels are buffered so all S sends complete before the
// receives, and per-pair FIFO keeps successive exchanges paired even when
// ranks run ahead. Telemetry counts only cross-rank payloads — the
// rank-to-self shard never crosses a link.
func (l *spLinks) allToAll(rank int, payloads [][]float32) [][]float32 {
	sent := 0
	for d := 0; d < l.S; d++ {
		if d != rank {
			l.tel.a2aPayloads.Add(1)
			l.tel.a2aFloats.Add(int64(len(payloads[d])))
			sent += len(payloads[d])
		}
		l.a2a[d][rank] <- payloads[d]
	}
	l.tel.track.InstantInt("a2a", "floats", sent)
	out := make([][]float32, l.S)
	for src := 0; src < l.S; src++ {
		out[src] = <-l.a2a[rank][src]
	}
	return out
}

// ringReduce chains one micro-batch's weight-gradient accumulation
// through the group's ranks and returns the completed flat reduction:
// the buffer hops (batch row, shard) pairs in lexicographic order —
// ascending global row order — with each hop replaying that shard's
// per-row contributions on top of the received partial
// (nn.SPCache.AccumBatchRow). The last hop broadcasts the finished
// buffer to every rank in the group; each caller receives its copy of
// the broadcast (the same underlying slice — receivers only read it).
// Rank 0 seeds each micro-batch's ring via seed (see flatSeeder for the
// buffer-reuse discipline).
func (l *spLinks) ringReduce(local int, cache *nn.SPCache, batchRows int, seed func() []float32) []float32 {
	for b := 0; b < batchRows; b++ {
		var buf []float32
		if local == 0 && b == 0 {
			buf = seed()
		} else {
			buf = <-l.ring[local]
		}
		cache.AccumBatchRow(buf, b)
		l.tel.ringHops.Add(1)
		l.tel.ringFloats.Add(int64(len(buf)))
		if local == l.S-1 && b == batchRows-1 {
			l.tel.track.InstantInt("ringBroadcast", "floats", len(buf))
			for d := 0; d < l.S; d++ {
				l.flat[d] <- buf
			}
		} else {
			l.ring[(local+1)%l.S] <- buf
		}
	}
	return <-l.flat[local]
}

// flatSeeder hands a ring's rank 0 its per-micro-batch flat gradient
// buffers, alternating two: a buffer seeded at micro m is not reused
// before micro m+2, by which point every rank in the group has finished
// reading micro m's reduction (it must have, to have contributed its
// micro m+1 ring hops). Cross-group consumers (the mesh's reduce links)
// never see these buffers — delegates stage copies.
type flatSeeder struct {
	bufs [2][]float32
	seq  int
}

// next returns a zeroed flat buffer of n floats under the alternation
// discipline.
func (f *flatSeeder) next(n int) []float32 {
	i := f.seq & 1
	f.seq++
	if f.bufs[i] == nil {
		f.bufs[i] = make([]float32, n)
		return f.bufs[i]
	}
	buf := f.bufs[i]
	for j := range buf {
		buf[j] = 0
	}
	return buf
}

// spWorld is the sequence-parallel engine's interconnect: the shared
// world core plus one group of sequence-parallel links.
type spWorld struct {
	*world
	links *spLinks
	tel   *linkTelemetry
}

// newSPWorld wires the links for s sequence ranks over b buckets.
func newSPWorld(s, b int) *spWorld {
	tel := &linkTelemetry{}
	return &spWorld{world: newWorld(s, b), links: newSPLinks(s, tel), tel: tel}
}
