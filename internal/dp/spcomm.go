package dp

import (
	"sync/atomic"

	"superoffload/internal/data"
	"superoffload/internal/fp16"
)

// spWorld is the simulated interconnect of the sequence-parallel engine:
// S superchip ranks each own a contiguous sequence shard of every batch
// row, so the links carry three kinds of traffic — the per-layer
// all-to-alls that flip attention between sequence and head sharding
// (§4.7's two collectives per layer per pass), the weight-gradient ring
// whose hops visit (batch row, shard) pairs in ascending global row order
// so the reduced gradient reproduces the single-rank fold bit for bit,
// and the same verdict/all-gather control plane the data-parallel world
// uses.
type spWorld struct {
	S int // sequence ranks
	B int // buckets

	// Coordinator → rank control links (the dp world's protocol).
	cmd        []chan spCommand
	resolution []chan resolution
	goCh       []chan goMsg
	// Rank → coordinator: per-micro-batch per-row losses (or an ack).
	results []chan spResult

	// a2a[dst][src] carries one attention-exchange payload — the
	// all-to-all collective primitive.
	a2a [][]chan []float32
	// ring[s] delivers the in-progress flat gradient buffer to rank s.
	ring []chan []float32
	// flat[s] broadcasts each micro-batch's completed reduction.
	flat []chan []float32

	// gather[b][dst] carries the owner's post-step fp16 weights for
	// bucket b to rank dst.
	gather [][]chan []fp16.Num

	// Background validation links (identical to the dp world's).
	partial chan partialMsg
	val     chan valMsg

	// Link telemetry; ranks update concurrently.
	a2aPayloads atomic.Int64
	a2aFloats   atomic.Int64
	ringHops    atomic.Int64
	ringFloats  atomic.Int64
}

// spCommand drives a sequence rank's top-level loop.
type spCommand struct {
	kind   int          // cmdStep, cmdResolve, cmdStop
	micros []data.Batch // cmdStep: this rank's sequence shards, in order
	res    resolution   // cmdResolve
}

// spResult is a rank's step report: per micro-batch, the per-row token
// losses in local row order (nil acks a cmdResolve). The coordinator
// folds them in global row order, reproducing the single-rank loss.
type spResult struct {
	rows [][]float64
}

// newSPWorld wires the links for S sequence ranks over B buckets.
func newSPWorld(s, b int) *spWorld {
	w := &spWorld{S: s, B: b}
	w.cmd = make([]chan spCommand, s)
	w.resolution = make([]chan resolution, s)
	w.goCh = make([]chan goMsg, s)
	w.results = make([]chan spResult, s)
	w.ring = make([]chan []float32, s)
	w.flat = make([]chan []float32, s)
	for i := 0; i < s; i++ {
		w.cmd[i] = make(chan spCommand, 1)
		w.resolution[i] = make(chan resolution, 1)
		w.goCh[i] = make(chan goMsg, 1)
		w.results[i] = make(chan spResult, 1)
		w.ring[i] = make(chan []float32, 1)
		w.flat[i] = make(chan []float32, 1)
	}
	w.a2a = make([][]chan []float32, s)
	for d := 0; d < s; d++ {
		w.a2a[d] = make([]chan []float32, s)
		for src := 0; src < s; src++ {
			w.a2a[d][src] = make(chan []float32, 1)
		}
	}
	w.gather = make([][]chan []fp16.Num, b)
	for bi := 0; bi < b; bi++ {
		w.gather[bi] = make([]chan []fp16.Num, s)
		for ri := 0; ri < s; ri++ {
			w.gather[bi][ri] = make(chan []fp16.Num, 1)
		}
	}
	w.partial = make(chan partialMsg, b)
	w.val = make(chan valMsg, 1)
	return w
}

// owner applies the shared ownership policy (bucketOwner) to this
// world's rank count.
func (w *spWorld) owner(bucket int) int { return bucketOwner(bucket, w.S) }

// allToAll is the collective primitive: rank sends payloads[d] to every
// peer d and receives the payload each peer addressed to it, indexed by
// source. Channels are buffered so all S sends complete before the
// receives, and per-pair FIFO keeps successive exchanges paired even when
// ranks run ahead. Telemetry counts only cross-rank payloads — the
// rank-to-self shard never crosses a link.
func (w *spWorld) allToAll(rank int, payloads [][]float32) [][]float32 {
	for d := 0; d < w.S; d++ {
		if d != rank {
			w.a2aPayloads.Add(1)
			w.a2aFloats.Add(int64(len(payloads[d])))
		}
		w.a2a[d][rank] <- payloads[d]
	}
	out := make([][]float32, w.S)
	for src := 0; src < w.S; src++ {
		out[src] = <-w.a2a[rank][src]
	}
	return out
}

// aggregate runs the shared validation reducer over this world's links.
func (w *spWorld) aggregate() { aggregatePartials(w.partial, w.val, w.B) }
