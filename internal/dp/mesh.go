package dp

import (
	"fmt"
	"io"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/stv"
)

// meshWorld is the R×S mesh engine's interconnect: the shared world core
// over all N = R·S ranks, one set of sequence-parallel links per
// data-parallel group, and the cross-group reduce links (reduce[b][g]
// carries group g's delegated contribution for bucket b to the bucket's
// global owner).
type meshWorld struct {
	*world
	R int // data-parallel groups
	S int // sequence ranks per group

	links  []*spLinks // per-group all-to-all / ring / flat
	reduce reduceLinks
	tel    *linkTelemetry
}

// newMeshWorld wires the links for R groups of S sequence ranks over b
// buckets.
func newMeshWorld(r, s, b int) *meshWorld {
	tel := &linkTelemetry{}
	w := &meshWorld{world: newWorld(r*s, b), R: r, S: s, reduce: newReduceLinks(b, r), tel: tel}
	w.links = make([]*spLinks, r)
	for g := 0; g < r; g++ {
		w.links[g] = newSPLinks(s, tel)
	}
	return w
}

// MeshEngine is the hybrid R×S training engine — the composition behind
// the paper's multi-superchip results (Fig. 11a/b, Fig. 12): R
// data-parallel replica groups, each running S-way Ulysses sequence
// parallelism and offloaded optimization internally. A global batch's
// rows split across groups; within a group every rank holds a contiguous
// sequence shard of the group's rows, attention head-parallelizes over
// the group's all-to-all links, and the group's weight gradients reduce
// over its deterministic ring. Across groups the completed per-group
// gradients reduce-scatter to bucket owners along the stv bucket
// boundaries — the fp32 masters and Adam moments are ZeRO-partitioned
// over all R·S ranks, each behind its own pluggable bucket store — and
// STV's speculative step, background validation, and exact rollback run
// unchanged on top.
//
// Determinism contract: for the same global batch, an R×S mesh
// reproduces — bit for bit — the loss trajectory, rollback decisions,
// stats, and checkpoints of a single-rank stv.Trainer processing the
// same R-way row decomposition via gradient accumulation (the DP
// engine's reference; S is invisible to the numerics, exactly as in the
// SP engine). Checkpoints are byte-identical across mesh shapes and
// interchangeable with every other engine's.
type MeshEngine struct {
	coordinator
	w     *meshWorld
	ranks []*meshRank
	// buckets is the global bucket order; entry b points at the owning
	// rank's optimizer state (used for checkpointing and diagnostics).
	buckets []*stv.Bucket
}

// NewMesh builds an R×S mesh engine over the model: cfg.Ranks
// data-parallel groups of cfg.SeqRanks sequence ranks each (0 counts as
// 1). The model becomes rank (0,0)'s replica; the other R·S-1 ranks
// train on bit-identical clones.
func NewMesh(model *nn.GPT, cfg Config) (*MeshEngine, error) {
	if model == nil {
		return nil, fmt.Errorf("dp: nil model")
	}
	if cfg.SeqRanks == 0 {
		cfg.SeqRanks = 1
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dp: mesh Ranks must be >= 1, got %d", cfg.Ranks)
	}
	if cfg.SeqRanks < 1 {
		return nil, fmt.Errorf("dp: mesh SeqRanks must be >= 1, got %d", cfg.SeqRanks)
	}
	if model.Cfg.Heads%cfg.SeqRanks != 0 {
		return nil, fmt.Errorf("dp: %d attention heads not divisible by %d sequence ranks",
			model.Cfg.Heads, cfg.SeqRanks)
	}
	cfg = cfg.withDefaults()
	r, s := cfg.Ranks, cfg.SeqRanks
	nBuckets := len(stv.PartitionGroups(model.Params(), cfg.BucketElems))
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(nBuckets); err != nil {
			return nil, fmt.Errorf("dp: %w", err)
		}
	}
	w := newMeshWorld(r, s, nBuckets)
	w.attachTracer(cfg.Tracer)
	w.tel.attach(cfg.Tracer)
	e := &MeshEngine{coordinator: coordinator{cfg: cfg, sched: legacyBuilder}, w: w, buckets: make([]*stv.Bucket, nBuckets)}
	stores, err := buildStores(r*s, cfg.NewStore)
	if err != nil {
		return nil, err
	}
	acts, err := buildActStores(r*s, cfg.NewActStore)
	if err != nil {
		return nil, closeStores(stores, err)
	}
	for g := 0; g < r; g++ {
		for sl := 0; sl < s; sl++ {
			id := g*s + sl
			replica := model
			if id > 0 {
				replica = model.Clone()
			}
			rk := newMeshRank(g, sl, w, replica, cfg.Impl, cfg.BucketElems, stores[id])
			rk.exec = newRankExecutor(cfg, replica, rk.owned, nBuckets)
			rk.attachAct(acts[id])
			for _, ob := range rk.owned {
				e.buckets[ob.idx] = ob.b
			}
			e.ranks = append(e.ranks, rk)
			go rk.run()
		}
	}
	go w.aggregate()
	return e, nil
}

// CommStats reports the mesh's cumulative sequence-parallel link traffic,
// summed over every group's all-to-all and ring links.
func (e *MeshEngine) CommStats() SPCommStats { return e.w.tel.snapshot() }

// StoreTelemetry sums the modeled NVMe telemetry over every rank's store.
// ok is false when no rank uses an NVMe-backed store.
func (e *MeshEngine) StoreTelemetry() (stv.StoreTelemetry, bool) {
	return sumNVMeTelemetry(storeList(e.ranks))
}

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *MeshEngine) PlacementTelemetry() (stv.PlacementTelemetry, bool) {
	return sumPlacementTelemetry(e.ranks)
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over every rank; ok is false without an activation tier.
func (e *MeshEngine) ActTelemetry() (act.Telemetry, bool) {
	return sumActTelemetry(e.ranks)
}

// Ranks reports the data-parallel degree R (the number of replica
// groups).
func (e *MeshEngine) Ranks() int { return e.w.R }

// SeqRanks reports the per-group sequence-parallel degree S.
func (e *MeshEngine) SeqRanks() int { return e.w.S }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *MeshEngine) NumBuckets() int { return len(e.buckets) }

// split shards a global batch over the mesh: rows split R ways across
// groups, then every group slice's sequence splits S ways across the
// group's ranks. Entry g·S+s is rank (g,s)'s shard. The sharding
// arithmetic is validated here, in the caller's goroutine, so a
// malformed batch surfaces as an error instead of a rank-goroutine
// panic.
func (e *MeshEngine) split(b data.Batch) ([]data.Batch, error) {
	if b.BatchSize%e.w.R != 0 {
		return nil, fmt.Errorf("dp: global batch %d not divisible by %d mesh groups", b.BatchSize, e.w.R)
	}
	if err := e.ranks[0].model.ValidateSP(e.w.S, b.Seq); err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	out := make([]data.Batch, e.w.N)
	for g, slice := range splitRows(b, e.w.R) {
		for s, shard := range splitSeq(slice, e.w.S) {
			out[g*e.w.S+s] = shard
		}
	}
	return out, nil
}

// Step runs one training iteration over the global batch: group g takes
// rows [g·B/R, (g+1)·B/R), rank (g,s) takes sequence shard s of those
// rows, gradients reduce ring-then-reduce-scatter, the bucket owners
// step speculatively, and validation runs in the background. Returns the
// mean loss — bit-identical to the single-rank engine's loss for the
// same R-way row decomposition.
func (e *MeshEngine) Step(b data.Batch) (float64, error) {
	shards, err := e.split(b)
	if err != nil {
		return 0, err
	}
	micross := make([][]data.Batch, e.w.N)
	for id, sh := range shards {
		micross[id] = []data.Batch{sh}
	}
	return e.step(micross)
}

// StepAccum runs one optimizer step over several accumulated global
// micro-batches (the §5.2 OOM-mitigation path): every global micro-batch
// shards over the mesh, reductions complete per micro-batch in
// (micro-batch, group) order, and one optimizer step applies at the end.
func (e *MeshEngine) StepAccum(batches []data.Batch) (float64, error) {
	if len(batches) == 0 {
		return 0, nil
	}
	micross := make([][]data.Batch, e.w.N)
	for _, b := range batches {
		shards, err := e.split(b)
		if err != nil {
			return 0, err
		}
		for id, sh := range shards {
			micross[id] = append(micross[id], sh)
		}
	}
	return e.step(micross)
}

// step drives one iteration through the shared coordinator and folds the
// reported per-row losses in canonical order: per (micro, group), rows
// fold in (batch row, shard, position) order — ascending global row
// order within the group's slice, reproducing that slice's crossEntropy
// mean bit for bit — and the R·m slice losses then sum in (micro, group)
// order and divide once, matching the single-rank trainer accumulating
// the same R-way decomposition.
func (e *MeshEngine) step(micross [][]data.Batch) (float64, error) {
	perRank, err := e.runStep(e.w.world, micross)
	if err != nil {
		return 0, err
	}
	m := len(micross[0])
	var loss float64
	for mi := 0; mi < m; mi++ {
		rowsB, tl := micross[0][mi].BatchSize, micross[0][mi].Seq
		for g := 0; g < e.w.R; g++ {
			var micro float64
			for b := 0; b < rowsB; b++ {
				for s := 0; s < e.w.S; s++ {
					for t := 0; t < tl; t++ {
						micro += perRank[g*e.w.S+s].rows[mi][b*tl+t]
					}
				}
			}
			loss += micro / float64(rowsB*tl*e.w.S)
		}
	}
	loss /= float64(m * e.w.R)

	if e.cfg.Synchronous {
		if _, err := e.Flush(); err != nil {
			return loss, err
		}
	}
	return loss, nil
}

// Flush resolves any in-flight validation (call at end of training so
// the final step is validated). Returns whether the final step was
// rolled back or re-executed.
func (e *MeshEngine) Flush() (bool, error) { return e.flush(e.w.world) }

// Save serializes the training state in the stv checkpoint format, over
// the global bucket order — byte-identical to every other engine on the
// same trajectory, so checkpoints move freely across mesh shapes.
func (e *MeshEngine) Save(w io.Writer) error { return e.save(w, e.buckets) }

// Load restores state saved by any engine's Save, scattering each bucket
// to its owner and republishing the fp16-rounded weights to every
// replica.
func (e *MeshEngine) Load(r io.Reader) error { return e.load(r, e.buckets, replicaGroups(e.ranks)) }

// MasterWeights returns the fp32 master parameters gathered from their
// owners, concatenated in bucket order — the ground truth for exactness
// comparisons against the single-rank engine.
func (e *MeshEngine) MasterWeights() []float32 { return gatherMasters(e.buckets) }

// Close resolves any pending validation, stops the rank goroutines and
// the validation aggregator, and closes every rank's bucket store. The
// engine is unusable afterwards.
func (e *MeshEngine) Close() error {
	return e.closeWorld(e.w.world, storeList(e.ranks), actStoreList(e.ranks))
}
