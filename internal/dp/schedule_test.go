package dp

import (
	"fmt"
	"strings"
	"testing"
)

// opNames renders a schedule compactly for golden comparison:
// "F0 resolve go B0 R0 …".
func opNames(ops []scheduleOp) string {
	short := map[opKind]string{
		opForward: "F", opBackward: "B", opReduce: "R",
		opSendAct: "sa", opRecvAct: "ra", opSendGrad: "sg", opRecvGrad: "rg",
	}
	var parts []string
	for _, op := range ops {
		switch op.kind {
		case opResolve:
			parts = append(parts, "resolve")
		case opGo:
			parts = append(parts, "go")
		case opSpeculate:
			parts = append(parts, "speculate")
		case opReport:
			parts = append(parts, "report")
		default:
			parts = append(parts, fmt.Sprintf("%s%d", short[op.kind], op.micro))
		}
	}
	return strings.Join(parts, " ")
}

// TestLegacyScheduleGolden pins the exact op sequence the imperative
// driver used to hard-code, so the schedule refactor provably changed
// nothing about the legacy engines' step structure: forward micro 0,
// resolve (redo point), go, backward+reduce 0, then
// forward/backward/reduce each remaining micro, speculate, report.
func TestLegacyScheduleGolden(t *testing.T) {
	goldens := map[int]string{
		1: "F0 resolve go B0 R0 speculate report",
		2: "F0 resolve go B0 R0 F1 B1 R1 speculate report",
		3: "F0 resolve go B0 R0 F1 B1 R1 F2 B2 R2 speculate report",
	}
	for micros, want := range goldens {
		if got := opNames(legacySchedule(micros)); got != want {
			t.Errorf("legacySchedule(%d):\n got %s\nwant %s", micros, got, want)
		}
	}
	// legacyBuilder ignores the rank: every rank of a collective group
	// must emit identical schedules or the channel collectives deadlock.
	for rank := 0; rank < 4; rank++ {
		if got := opNames(legacyBuilder(rank, 2)); got != goldens[2] {
			t.Errorf("legacyBuilder(%d, 2) = %s, want %s", rank, got, goldens[2])
		}
	}
}

// TestPipeScheduleGolden pins the 1F1B sequences for a 2-stage and a
// 3-stage pipeline. Stage 0 never receives activations or sends
// gradients; the last stage never sends activations or receives
// gradients; warmup depth falls linearly with the stage index.
func TestPipeScheduleGolden(t *testing.T) {
	cases := []struct {
		stage, stages, micros int
		want                  string
	}{
		// P=1 degenerates to the legacy shape, modulo resolve-first.
		{0, 1, 2, "resolve go F0 B0 R0 F1 B1 R1 speculate report"},
		// P=2, M=3: stage 0 warms up one forward, then steady 1F1B.
		{0, 2, 3, "resolve go F0 sa0 F1 sa1 rg0 B0 R0 F2 sa2 rg1 B1 R1 rg2 B2 R2 speculate report"},
		{1, 2, 3, "resolve go ra0 F0 B0 sg0 R0 ra1 F1 B1 sg1 R1 ra2 F2 B2 sg2 R2 speculate report"},
		// P=3, M=2: warmup min(stages-1-stage, micros) forwards.
		{0, 3, 2, "resolve go F0 sa0 F1 sa1 rg0 B0 R0 rg1 B1 R1 speculate report"},
		{1, 3, 2, "resolve go ra0 F0 sa0 ra1 F1 sa1 rg0 B0 sg0 R0 rg1 B1 sg1 R1 speculate report"},
		{2, 3, 2, "resolve go ra0 F0 B0 sg0 R0 ra1 F1 B1 sg1 R1 speculate report"},
		// More stages above than micros: warmup clamps to M.
		{0, 4, 1, "resolve go F0 sa0 rg0 B0 R0 speculate report"},
	}
	for _, c := range cases {
		if got := opNames(pipeSchedule(c.stage, c.stages, c.micros)); got != c.want {
			t.Errorf("pipeSchedule(%d, %d, %d):\n got %s\nwant %s", c.stage, c.stages, c.micros, got, c.want)
		}
	}
}

// TestPipeScheduleProperties checks the structural invariants every
// generated 1F1B schedule must satisfy, across a sweep of shapes.
func TestPipeScheduleProperties(t *testing.T) {
	for stages := 1; stages <= 5; stages++ {
		for stage := 0; stage < stages; stage++ {
			for micros := 1; micros <= 6; micros++ {
				ops := pipeSchedule(stage, stages, micros)
				name := fmt.Sprintf("stage %d/%d, %d micros", stage, stages, micros)
				if ops[0].kind != opResolve || ops[1].kind != opGo {
					t.Fatalf("%s: must open resolve, go; got %s", name, opNames(ops[:2]))
				}
				if ops[len(ops)-2].kind != opSpeculate || ops[len(ops)-1].kind != opReport {
					t.Fatalf("%s: must close speculate, report", name)
				}
				counts := map[opKind][]int{}
				inFlight := 0
				maxInFlight := 0
				for _, op := range ops {
					counts[op.kind] = append(counts[op.kind], op.micro)
					if op.kind == opForward {
						inFlight++
						if inFlight > maxInFlight {
							maxInFlight = inFlight
						}
					}
					if op.kind == opBackward {
						inFlight--
					}
				}
				ascending := func(k opKind, want int) {
					ms := counts[k]
					if len(ms) != want {
						t.Fatalf("%s: op %d count %d, want %d", name, k, len(ms), want)
					}
					for i, m := range ms {
						if m != i {
							t.Fatalf("%s: op %d micros %v not in order", name, k, ms)
						}
					}
				}
				// Every micro forwards, backwards, and reduces exactly once,
				// in ascending micro order per op kind.
				ascending(opForward, micros)
				ascending(opBackward, micros)
				ascending(opReduce, micros)
				// Boundary ops exist iff the boundary exists.
				wantUp, wantDown := 0, 0
				if stage > 0 {
					wantUp = micros
				}
				if stage < stages-1 {
					wantDown = micros
				}
				ascending(opRecvAct, wantUp)
				ascending(opSendGrad, wantUp)
				ascending(opSendAct, wantDown)
				ascending(opRecvGrad, wantDown)
				// 1F1B bounds in-flight micro-batches by the warmup depth + 1,
				// never by M: memory stays O(P), not O(M).
				warmup := stages - 1 - stage
				if warmup > micros {
					warmup = micros
				}
				if maxInFlight != warmup+1 && !(micros == warmup && maxInFlight == warmup) {
					t.Fatalf("%s: max in-flight %d, want %d", name, maxInFlight, warmup+1)
				}
			}
		}
	}
}
