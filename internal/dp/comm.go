package dp

import (
	"fmt"
	"math"

	"superoffload/internal/data"
	"superoffload/internal/fp16"
	"superoffload/internal/obs"
)

// world is the simulated interconnect core shared by every multi-rank
// engine (data-parallel, sequence-parallel, and the R×S mesh): each rank
// link is a Go channel, so communication composes with goroutine
// scheduling the way NVLink transfers compose with compute streams —
// sends overlap whatever the peer is doing until the data is actually
// needed. The core carries the coordinator protocol (cmd / resolution /
// go / results), the post-step fp16 weight all-gather links, and the
// background-validation plane; engine-specific link families (the DP
// reduce-scatter, the sequence-parallel all-to-all and gradient ring,
// the mesh's cross-group reduce) wrap it.
type world struct {
	N int // total ranks
	B int // buckets

	// Coordinator → rank control links.
	cmd        []chan command
	resolution []chan resolution
	goCh       []chan goMsg
	// Rank → coordinator: one stepResult per cmdStep (or an ack for
	// cmdResolve).
	results []chan stepResult

	// gather[b][dst] carries the owner's post-step fp16 weights for
	// bucket b to rank dst — the all-gather links.
	gather [][]chan []fp16.Num

	// Background validation: owners stream per-bucket partials; the
	// aggregator combines them in bucket order and delivers one global
	// verdict per step.
	partial chan partialMsg
	val     chan valMsg

	// Tracing (nil when disabled): one track per rank interpreter plus
	// the coordinator's control-plane track. attachTracer fills them.
	tracks []*obs.Track
	ctrack *obs.Track
}

// attachTracer allocates this world's trace tracks: "rank r" per rank
// and one coordinator track. A nil tracer leaves every track nil — the
// zero-overhead disabled mode.
func (w *world) attachTracer(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	w.ctrack = tr.Track("coordinator")
	w.tracks = make([]*obs.Track, w.N)
	for i := range w.tracks {
		w.tracks[i] = tr.Track(fmt.Sprintf("rank %d", i))
	}
}

// track returns rank id's trace track (nil when tracing is disabled).
func (w *world) track(id int) *obs.Track {
	if w.tracks == nil {
		return nil
	}
	return w.tracks[id]
}

// command drives a rank's top-level loop (identical across engines).
type command struct {
	kind   int          // cmdStep, cmdResolve, cmdStop
	micros []data.Batch // cmdStep: this rank's micro-batches, in order
	ops    []scheduleOp // cmdStep: the schedule to interpret over them
	res    resolution   // cmdResolve
}

// stepResult is a rank's report for one cmdStep (the zero value acks a
// cmdResolve). The data-parallel engine fills losses — one scalar per
// micro-batch; the sequence-parallel and mesh engines fill rows — per
// micro-batch per-row token losses in local row order, folded at the
// coordinator in global row order.
type stepResult struct {
	losses []float64
	rows   [][]float64
}

// partialMsg is one bucket's validation contribution.
type partialMsg struct {
	idx   int     // bucket index
	sumsq float64 // Σ g² over the reduced bucket gradient
	bad   bool    // NaN/Inf present
}

// valMsg is the aggregated global verdict input.
type valMsg struct {
	bad  bool
	norm float64
}

// newWorld wires the shared core links for n ranks over b buckets.
func newWorld(n, b int) *world {
	w := &world{N: n, B: b}
	w.cmd = make([]chan command, n)
	w.resolution = make([]chan resolution, n)
	w.goCh = make([]chan goMsg, n)
	w.results = make([]chan stepResult, n)
	for i := 0; i < n; i++ {
		w.cmd[i] = make(chan command, 1)
		w.resolution[i] = make(chan resolution, 1)
		w.goCh[i] = make(chan goMsg, 1)
		w.results[i] = make(chan stepResult, 1)
	}
	w.gather = make([][]chan []fp16.Num, b)
	for bi := 0; bi < b; bi++ {
		w.gather[bi] = make([]chan []fp16.Num, n)
		for ri := 0; ri < n; ri++ {
			w.gather[bi][ri] = make(chan []fp16.Num, 1)
		}
	}
	w.partial = make(chan partialMsg, b)
	w.val = make(chan valMsg, 1)
	return w
}

// bucketOwner maps a bucket to its owning rank (round-robin over the
// global bucket order, the ZeRO-style partition) — the single ownership
// policy every engine component consults.
func bucketOwner(bucket, ranks int) int { return bucket % ranks }

// owner applies the ownership policy to this world's rank count.
func (w *world) owner(bucket int) int { return bucketOwner(bucket, w.N) }

// aggregate is the validation reducer: each step it collects exactly one
// partial per bucket (arrival order is scheduling-dependent; combination
// order is not — partials sum in bucket index order, matching
// optim.GlobalNorm's per-shard grouping bit for bit) and publishes the
// global verdict input. It exits when the partial link closes.
func (w *world) aggregate() {
	sums := make([]float64, w.B)
	for {
		bad := false
		for i := 0; i < w.B; i++ {
			p, ok := <-w.partial
			if !ok {
				return
			}
			sums[p.idx] = p.sumsq
			bad = bad || p.bad
		}
		var s float64
		for _, q := range sums {
			s += q
		}
		w.val <- valMsg{bad: bad, norm: math.Sqrt(s)}
	}
}

// reduceLinks carries raw gradient contributions to bucket owners:
// entry [b][src] delivers source src's contribution for bucket b to the
// bucket's owner. The data-parallel engine indexes sources by rank; the
// mesh engine indexes them by data-parallel group.
type reduceLinks [][]chan []float32

// newReduceLinks wires the reduce-scatter links for b buckets fed by
// nSrc sources each.
func newReduceLinks(b, nSrc int) reduceLinks {
	r := make(reduceLinks, b)
	for bi := 0; bi < b; bi++ {
		r[bi] = make([]chan []float32, nSrc)
		for si := 0; si < nSrc; si++ {
			r[bi][si] = make(chan []float32, 1)
		}
	}
	return r
}

// splitRows slices a batch into n per-group row slices along the batch
// dimension: slice g takes rows [g·B/n, (g+1)·B/n). The caller has
// validated divisibility.
func splitRows(b data.Batch, n int) []data.Batch {
	per := b.BatchSize / n
	out := make([]data.Batch, n)
	for g := 0; g < n; g++ {
		lo, hi := g*per*b.Seq, (g+1)*per*b.Seq
		out[g] = data.Batch{
			Tokens:    b.Tokens[lo:hi],
			Targets:   b.Targets[lo:hi],
			BatchSize: per,
			Seq:       b.Seq,
		}
	}
	return out
}

// splitSeq shards a batch into n sequence shards: shard s takes
// positions [s·T/n, (s+1)·T/n) of every batch row. The caller has
// validated divisibility (nn.GPT.ValidateSP).
func splitSeq(b data.Batch, n int) []data.Batch {
	tl := b.Seq / n
	out := make([]data.Batch, n)
	for s := 0; s < n; s++ {
		toks := make([]int, 0, b.BatchSize*tl)
		tgts := make([]int, 0, b.BatchSize*tl)
		for r := 0; r < b.BatchSize; r++ {
			lo := r*b.Seq + s*tl
			toks = append(toks, b.Tokens[lo:lo+tl]...)
			tgts = append(tgts, b.Targets[lo:lo+tl]...)
		}
		out[s] = data.Batch{Tokens: toks, Targets: tgts, BatchSize: b.BatchSize, Seq: tl}
	}
	return out
}
