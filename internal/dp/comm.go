package dp

import (
	"math"

	"superoffload/internal/fp16"
)

// world is the simulated interconnect: every rank link is a Go channel, so
// communication (gradient reduce-scatter, fp16 weight all-gather, verdict
// broadcast) composes with goroutine scheduling the way NVLink transfers
// compose with compute streams — sends overlap whatever the peer is doing
// until the data is actually needed.
type world struct {
	R int // ranks
	B int // buckets

	// Coordinator → rank control links.
	cmd        []chan command
	resolution []chan resolution
	goCh       []chan goMsg
	// Rank → coordinator: per-micro-batch losses (or an ack for
	// cmdResolve).
	results []chan []float64

	// reduce[b][src] carries rank src's raw gradient contribution for
	// bucket b to the bucket's owner — the reduce-scatter links.
	reduce [][]chan []float32
	// gather[b][dst] carries the owner's post-step fp16 weights for
	// bucket b to rank dst — the all-gather links.
	gather [][]chan []fp16.Num

	// Background validation: owners stream per-bucket partials; the
	// aggregator combines them in bucket order and delivers one global
	// verdict per step.
	partial chan partialMsg
	val     chan valMsg
}

// partialMsg is one bucket's validation contribution.
type partialMsg struct {
	idx   int     // bucket index
	sumsq float64 // Σ g² over the reduced bucket gradient
	bad   bool    // NaN/Inf present
}

// valMsg is the aggregated global verdict input.
type valMsg struct {
	bad  bool
	norm float64
}

// newWorld wires the links for R ranks over B buckets.
func newWorld(r, b int) *world {
	w := &world{R: r, B: b}
	w.cmd = make([]chan command, r)
	w.resolution = make([]chan resolution, r)
	w.goCh = make([]chan goMsg, r)
	w.results = make([]chan []float64, r)
	for i := 0; i < r; i++ {
		w.cmd[i] = make(chan command, 1)
		w.resolution[i] = make(chan resolution, 1)
		w.goCh[i] = make(chan goMsg, 1)
		w.results[i] = make(chan []float64, 1)
	}
	w.reduce = make([][]chan []float32, b)
	w.gather = make([][]chan []fp16.Num, b)
	for bi := 0; bi < b; bi++ {
		w.reduce[bi] = make([]chan []float32, r)
		w.gather[bi] = make([]chan []fp16.Num, r)
		for ri := 0; ri < r; ri++ {
			w.reduce[bi][ri] = make(chan []float32, 1)
			w.gather[bi][ri] = make(chan []fp16.Num, 1)
		}
	}
	w.partial = make(chan partialMsg, b)
	w.val = make(chan valMsg, 1)
	return w
}

// bucketOwner maps a bucket to its owning rank (round-robin over the
// global bucket order, the ZeRO-style partition) — the single ownership
// policy every engine component consults.
func bucketOwner(bucket, ranks int) int { return bucket % ranks }

// owner applies the ownership policy to this world's rank count.
func (w *world) owner(bucket int) int { return bucketOwner(bucket, w.R) }

// aggregate is the validation reducer: each step it collects exactly one
// partial per bucket (arrival order is scheduling-dependent; combination
// order is not — partials sum in bucket index order, matching
// optim.GlobalNorm's per-shard grouping bit for bit) and publishes the
// global verdict input. It exits when the partial link closes.
func (w *world) aggregate() { aggregatePartials(w.partial, w.val, w.B) }

// aggregatePartials is the reducer body, shared by the data-parallel and
// sequence-parallel worlds.
func aggregatePartials(partial <-chan partialMsg, val chan<- valMsg, nBuckets int) {
	sums := make([]float64, nBuckets)
	for {
		bad := false
		for i := 0; i < nBuckets; i++ {
			p, ok := <-partial
			if !ok {
				return
			}
			sums[p.idx] = p.sumsq
			bad = bad || p.bad
		}
		var s float64
		for _, q := range sums {
			s += q
		}
		val <- valMsg{bad: bad, norm: math.Sqrt(s)}
	}
}
