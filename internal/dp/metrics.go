package dp

import "superoffload/internal/obs"

var _ obs.Source = SPCommStats{}

// Samples publishes the engine's cumulative link traffic as
// superoffload_comm_* metrics, implementing obs.Source. An SPCommStats
// value is a point-in-time snapshot; register a live reading through an
// obs.Provider closure over the engine's CommStats.
func (s SPCommStats) Samples() []obs.Sample {
	c := func(name string, v int64) obs.Sample {
		return obs.Sample{Name: "superoffload_comm_" + name, Kind: obs.KindCounter, Value: float64(v)}
	}
	return []obs.Sample{
		c("a2a_payloads_total", s.A2APayloads),
		c("a2a_floats_total", s.A2AFloats),
		c("ring_hops_total", s.RingHops),
		c("ring_floats_total", s.RingFloats),
		c("stage_sends_total", s.StageSends),
		c("stage_floats_total", s.StageFloats),
	}
}
