package dp

import (
	"fmt"
	"io"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/stv"
)

// SPEngine is the sequence-parallel (SuperOffload-Ulysses, §4.7) training
// engine: S simulated superchip ranks each own a contiguous sequence
// shard of every batch row, run the real GPT forward/backward locally,
// and switch attention to head parallelism via two deterministic
// all-to-alls per layer per pass. The fp32 masters and Adam moments are
// ZeRO-partitioned across ranks along the stv bucket boundaries (behind
// pluggable per-rank bucket stores, so long-sequence runs can stream
// optimizer state through the NVMe tier), and STV's speculative step,
// background validation, and exact rollback run unchanged on top.
//
// Determinism contract: for the same batch, an S-rank engine reproduces —
// bit for bit — the loss trajectory, rollbacks, and checkpoints of a
// single-rank stv.Trainer processing the whole sequence. Forward
// activations shard row-wise exactly (everything outside attention is
// row-local, and head attention sees identical full-sequence inputs after
// the first all-to-all); weight gradients reduce over a ring whose hops
// visit (batch row, shard) pairs in ascending global row order, replaying
// the exact per-row fold the single-rank backward uses (nn.SPCache.
// AccumBatchRow); and per-row losses fold at the coordinator in the same
// order crossEntropy sums them. Config.Ranks is interpreted as the
// sequence-parallel degree S.
type SPEngine struct {
	coordinator
	w     *spWorld
	ranks []*spRank
	// buckets is the global bucket order; entry b points at the owning
	// rank's optimizer state (used for checkpointing and diagnostics).
	buckets []*stv.Bucket
}

// NewSP builds a sequence-parallel engine over the model. The model
// becomes rank 0's replica; ranks 1..S-1 train on bit-identical clones.
func NewSP(model *nn.GPT, cfg Config) (*SPEngine, error) {
	if model == nil {
		return nil, fmt.Errorf("dp: nil model")
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dp: sequence Ranks must be >= 1, got %d", cfg.Ranks)
	}
	if model.Cfg.Heads%cfg.Ranks != 0 {
		return nil, fmt.Errorf("dp: %d attention heads not divisible by %d sequence ranks",
			model.Cfg.Heads, cfg.Ranks)
	}
	cfg = cfg.withDefaults()
	nBuckets := len(stv.PartitionGroups(model.Params(), cfg.BucketElems))
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(nBuckets); err != nil {
			return nil, fmt.Errorf("dp: %w", err)
		}
	}
	w := newSPWorld(cfg.Ranks, nBuckets)
	w.attachTracer(cfg.Tracer)
	w.tel.attach(cfg.Tracer)
	e := &SPEngine{coordinator: coordinator{cfg: cfg, sched: legacyBuilder}, w: w, buckets: make([]*stv.Bucket, nBuckets)}
	stores, err := buildStores(cfg.Ranks, cfg.NewStore)
	if err != nil {
		return nil, err
	}
	acts, err := buildActStores(cfg.Ranks, cfg.NewActStore)
	if err != nil {
		return nil, closeStores(stores, err)
	}
	for id := 0; id < cfg.Ranks; id++ {
		replica := model
		if id > 0 {
			replica = model.Clone()
		}
		rk := newSPRank(id, w, replica, cfg.Impl, cfg.BucketElems, stores[id])
		rk.exec = newRankExecutor(cfg, replica, rk.owned, nBuckets)
		rk.attachAct(acts[id])
		for _, ob := range rk.owned {
			e.buckets[ob.idx] = ob.b
		}
		e.ranks = append(e.ranks, rk)
		go rk.run()
	}
	go w.aggregate()
	return e, nil
}

// SPCommStats counts the sequence-parallel link traffic: all-to-all
// payloads/floats (two exchanges per layer per pass) and weight-gradient
// ring hops/floats. Deterministic for a fixed model and step count.
type SPCommStats struct {
	// A2APayloads and A2AFloats count cross-rank attention-exchange
	// payloads and their total float32 volume.
	A2APayloads int64
	A2AFloats   int64
	// RingHops and RingFloats count weight-gradient ring hops and the
	// total float32 volume they carried.
	RingHops   int64
	RingFloats int64
	// StageSends and StageFloats count pipeline stage-boundary tensor
	// sends (activations downstream + gradients upstream) and their total
	// float32 volume. Zero outside the pipeline engine.
	StageSends  int64
	StageFloats int64
}

// CommStats reports the engine's cumulative link traffic.
func (e *SPEngine) CommStats() SPCommStats { return e.w.tel.snapshot() }

// StoreTelemetry sums the modeled NVMe telemetry over every rank's store.
// ok is false when no rank uses an NVMe-backed store.
func (e *SPEngine) StoreTelemetry() (stv.StoreTelemetry, bool) {
	return sumNVMeTelemetry(storeList(e.ranks))
}

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *SPEngine) PlacementTelemetry() (stv.PlacementTelemetry, bool) {
	return sumPlacementTelemetry(e.ranks)
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over every rank; ok is false without an activation tier.
func (e *SPEngine) ActTelemetry() (act.Telemetry, bool) {
	return sumActTelemetry(e.ranks)
}

// SeqRanks reports the sequence-parallel degree S.
func (e *SPEngine) SeqRanks() int { return e.w.N }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *SPEngine) NumBuckets() int { return len(e.buckets) }

// split slices a global batch into S per-rank sequence shards: rank s
// takes positions [s·T/S, (s+1)·T/S) of every batch row. The sharding
// arithmetic is validated here, in the caller's goroutine, so a
// malformed batch surfaces as an error instead of a rank-goroutine
// panic.
func (e *SPEngine) split(b data.Batch) ([]data.Batch, error) {
	if err := e.ranks[0].model.ValidateSP(e.w.N, b.Seq); err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	return splitSeq(b, e.w.N), nil
}

// Step runs one training iteration over the batch: each rank takes its
// sequence shard of every row, attention head-parallelizes over the
// all-to-all links, weight gradients reduce over the ring, the bucket
// owners step speculatively, and validation runs in the background.
// Returns the mean loss — bit-identical to the single-rank engine's loss
// for the same batch.
func (e *SPEngine) Step(b data.Batch) (float64, error) {
	slices, err := e.split(b)
	if err != nil {
		return 0, err
	}
	micross := make([][]data.Batch, e.w.N)
	for s, sl := range slices {
		micross[s] = []data.Batch{sl}
	}
	return e.step(micross)
}

// StepAccum runs one optimizer step over several accumulated micro-batches
// (the §5.2 OOM-mitigation path): every micro-batch seq-shards across
// ranks, reductions complete per micro-batch in micro order, and one
// optimizer step applies at the end.
func (e *SPEngine) StepAccum(batches []data.Batch) (float64, error) {
	if len(batches) == 0 {
		return 0, nil
	}
	micross := make([][]data.Batch, e.w.N)
	for _, b := range batches {
		slices, err := e.split(b)
		if err != nil {
			return 0, err
		}
		for s, sl := range slices {
			micross[s] = append(micross[s], sl)
		}
	}
	return e.step(micross)
}

// step drives one iteration through the shared coordinator and folds the
// reported per-row losses in canonical order: (micro, batch row, shard,
// position) — ascending global row order per micro-batch, the exact
// order crossEntropy sums rows — then normalizes per micro and averages
// in micro order, matching the single-rank trainer.
func (e *SPEngine) step(micross [][]data.Batch) (float64, error) {
	perRank, err := e.runStep(e.w.world, micross)
	if err != nil {
		return 0, err
	}
	m := len(micross[0])
	var loss float64
	for mi := 0; mi < m; mi++ {
		rowsB, tl := micross[0][mi].BatchSize, micross[0][mi].Seq
		var micro float64
		for b := 0; b < rowsB; b++ {
			for s := 0; s < e.w.N; s++ {
				for t := 0; t < tl; t++ {
					micro += perRank[s].rows[mi][b*tl+t]
				}
			}
		}
		loss += micro / float64(rowsB*tl*e.w.N)
	}
	loss /= float64(m)

	if e.cfg.Synchronous {
		if _, err := e.Flush(); err != nil {
			return loss, err
		}
	}
	return loss, nil
}

// Flush resolves any in-flight validation (call at end of training so the
// final step is validated). Returns whether the final step was rolled
// back or re-executed.
func (e *SPEngine) Flush() (bool, error) { return e.flush(e.w.world) }

// Save serializes the training state in the stv checkpoint format, over
// the global bucket order — byte-identical to the single-rank engine (and
// the data-parallel engine) on the same trajectory, so checkpoints move
// freely across sequence-rank counts.
func (e *SPEngine) Save(w io.Writer) error { return e.save(w, e.buckets) }

// Load restores state saved by any engine's Save, scattering each bucket
// to its owner and republishing the fp16-rounded weights to every replica.
func (e *SPEngine) Load(r io.Reader) error { return e.load(r, e.buckets, replicaGroups(e.ranks)) }

// MasterWeights returns the fp32 master parameters gathered from their
// owners, concatenated in bucket order — the ground truth for exactness
// comparisons against the single-rank engine.
func (e *SPEngine) MasterWeights() []float32 { return gatherMasters(e.buckets) }

// Close resolves any pending validation, stops the rank goroutines and
// the validation aggregator, and closes every rank's bucket and
// activation stores. The engine is unusable afterwards.
func (e *SPEngine) Close() error {
	return e.closeWorld(e.w.world, storeList(e.ranks), actStoreList(e.ranks))
}
