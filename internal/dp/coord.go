package dp

import (
	"fmt"
	"io"
	"sync"

	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/obs"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// coordinator is the verdict/schedule state machine shared by the
// data-parallel and sequence-parallel engines: the loss-scale and
// learning-rate plumbing, the pending-validation bookkeeping, and the
// conversion of a global verdict into the resolution every rank applies.
// Keeping it in one place is what keeps the two engines' stats, scaler
// updates, and rollback decisions identical by construction — the
// cross-engine trajectory and checkpoint parity the tests assert.
type coordinator struct {
	cfg         Config
	sched       scheduleBuilder // per-rank step schedule (engine topology)
	stepIndex   int
	pending     bool
	pendingAdam optim.Config
	closed      bool

	// statsMu guards stats so the validation counters stay pollable
	// (the /metrics endpoint, via Stats) while a step is running.
	statsMu sync.Mutex
	stats   stv.Stats
}

// Stats returns the engine's validation counters. Safe to call from
// another goroutine while training runs (live metrics polling).
func (c *coordinator) Stats() stv.Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// bumpStats applies one mutation to the validation counters under the
// polling lock.
func (c *coordinator) bumpStats(f func(*stv.Stats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

// StepIndex reports how many optimizer steps the engine has attempted.
func (c *coordinator) StepIndex() int { return c.stepIndex }

// scale returns the current loss scale (1 when scaling is disabled).
func (c *coordinator) scale() float64 {
	if c.cfg.Scaler == nil {
		return 1
	}
	return c.cfg.Scaler.Scale
}

// stepAdam returns the Adam config for the current step with the
// learning-rate schedule applied.
func (c *coordinator) stepAdam() optim.Config {
	a := c.cfg.Adam
	if c.cfg.Schedule != nil {
		a.LR *= c.cfg.Schedule(c.stepIndex)
	}
	return a
}

// save serializes the training state in the stv checkpoint format over
// the global bucket order — byte-identical across engines and rank
// counts on the same trajectory.
func (c *coordinator) save(w io.Writer, buckets []*stv.Bucket) error {
	if c.closed {
		return fmt.Errorf("dp: engine closed")
	}
	if c.pending {
		return fmt.Errorf("dp: Flush before Save (validation in flight)")
	}
	return stv.WriteCheckpoint(w, c.stepIndex, c.cfg.Scaler, buckets)
}

// load restores state written by save (from any engine), scattering each
// bucket to its owner and republishing the fp16-rounded weights to every
// non-owner replica (replicaGroups[rank] is that replica's global bucket
// layout; ownership is round-robin in both engines).
func (c *coordinator) load(r io.Reader, buckets []*stv.Bucket, replicaGroups [][]nn.Params) error {
	if c.closed {
		return fmt.Errorf("dp: engine closed")
	}
	if c.pending {
		return fmt.Errorf("dp: Flush before Load (validation in flight)")
	}
	stepIndex, err := stv.ReadCheckpoint(r, c.cfg.Scaler, buckets)
	if err != nil {
		return err
	}
	c.stepIndex = stepIndex
	// ReadCheckpoint republished into owner replicas; propagate to the
	// others (the ranks are quiescent between commands). One store
	// acquire per bucket, shared across all receiving ranks.
	ranks := len(replicaGroups)
	for bi, bk := range buckets {
		half := bk.Half()
		for s := 0; s < ranks; s++ {
			if s == bucketOwner(bi, ranks) {
				continue
			}
			stv.PublishHalf(replicaGroups[s][bi], half)
		}
	}
	return nil
}

// engineRank is the surface the shared engine plumbing needs from every
// rank type (dp's rank, sp's spRank, the mesh's meshRank).
type engineRank interface {
	bucketStore() stv.BucketStore
	bucketLayout() []nn.Params
	placementExec() *stv.PlacementExecutor
	actStore() *act.Store
}

// storeList collects every rank's bucket store, in rank order.
func storeList[R engineRank](ranks []R) []stv.BucketStore {
	out := make([]stv.BucketStore, len(ranks))
	for i, rk := range ranks {
		out[i] = rk.bucketStore()
	}
	return out
}

// replicaGroups collects every rank's global bucket layout, in rank order.
func replicaGroups[R engineRank](ranks []R) [][]nn.Params {
	out := make([][]nn.Params, len(ranks))
	for i, rk := range ranks {
		out[i] = rk.bucketLayout()
	}
	return out
}

// gatherMasters returns the fp32 master parameters gathered from their
// owners, concatenated in bucket order — the ground truth for exactness
// comparisons against the single-rank engine.
func gatherMasters(buckets []*stv.Bucket) []float32 {
	n := 0
	for _, bk := range buckets {
		n += bk.Size()
	}
	out := make([]float32, 0, n)
	for _, bk := range buckets {
		out = bk.AppendMaster(out)
	}
	return out
}

// sumNVMeTelemetry sums the modeled NVMe telemetry over the given stores;
// ok is false when none carries a flash tier (NVMeStore, or PlacedStore
// with NVMe-tier buckets).
func sumNVMeTelemetry(stores []stv.BucketStore) (stv.StoreTelemetry, bool) {
	var sum stv.StoreTelemetry
	any := false
	for _, st := range stores {
		if src, ok := st.(stv.TelemetrySource); ok {
			if tel, has := src.NVMeTelemetry(); has {
				sum = sum.Add(tel)
				any = true
			}
		}
	}
	return sum, any
}

// actStoreList collects every rank's activation store, in rank order
// (entries are nil without an activation tier).
func actStoreList[R engineRank](ranks []R) []*act.Store {
	out := make([]*act.Store, len(ranks))
	for i, rk := range ranks {
		out[i] = rk.actStore()
	}
	return out
}

// sumActTelemetry sums the activation stores' traffic and modeled-time
// accounting over every rank; ok is false without an activation tier.
func sumActTelemetry[R engineRank](ranks []R) (act.Telemetry, bool) {
	var sum act.Telemetry
	any := false
	for _, rk := range ranks {
		if s := rk.actStore(); s != nil {
			sum = sum.Add(s.Telemetry())
			any = true
		}
	}
	return sum, any
}

// attachActStore wires a rank's activation store into its replica path
// (the model-level tap — DP ranks own their replicas) and its placement
// executor's step model. Nil-safe on both sides.
func attachActStore(model *nn.GPT, exec *stv.PlacementExecutor, st *act.Store) {
	if st == nil {
		return
	}
	model.SetActivationTap(st)
	exec.SetAct(stv.ActShapeFor(model, st))
}

// newRankExecutor builds rank executors for a placement plan: the
// virtual-clock superchip model over this rank's owned shard (the
// per-rank placement), with gradient-ready times spaced across the full
// replica backward. Returns nil when the engine has no plan.
func newRankExecutor(cfg Config, model *nn.GPT, owned []ownedBucket, nGlobal int) *stv.PlacementExecutor {
	if cfg.Placement == nil {
		return nil
	}
	idx := make([]int, len(owned))
	elems := make([]int, len(owned))
	for i, ob := range owned {
		idx[i], elems[i] = ob.idx, ob.b.Size()
	}
	return stv.NewPlacementExecutor(cfg.Superchip, *cfg.Placement, idx, elems,
		nGlobal, model.Cfg.Hidden, int64(model.NumParams()))
}

// sumPlacementTelemetry sums the executors' modeled accounting over every
// rank; ok is false when the engine has no placement plan.
func sumPlacementTelemetry[R engineRank](ranks []R) (stv.PlacementTelemetry, bool) {
	var sum stv.PlacementTelemetry
	any := false
	for _, rk := range ranks {
		if e := rk.placementExec(); e != nil {
			sum = sum.Add(e.Telemetry())
			any = true
		}
	}
	return sum, any
}

// localTokens sums a rank's batch rows × positions over its step's
// micro-batches — the backward volume its placement executor charges.
func localTokens(micros []data.Batch) int {
	n := 0
	for _, b := range micros {
		n += b.BatchSize * b.Seq
	}
	return n
}

// closeStores closes every store, folding the first failure into err.
func closeStores(stores []stv.BucketStore, err error) error {
	for _, st := range stores {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// runStep drives one iteration over the shared world. The step structure
// itself lives in the schedules: each rank receives the op sequence the
// engine's scheduleBuilder emits for this step's micro count, and the
// rank-side interpreter (runSchedule) executes it. The coordinator only
// keeps the control plane — dispatch the schedules, resolve the previous
// step's validation while the early forwards run (the §4.4 overlap),
// release the ranks into backward via goMsg, and collect their step
// reports in rank order. The caller folds the reported losses in its
// engine's canonical order.
func (c *coordinator) runStep(w *world, micross [][]data.Batch) ([]stepResult, error) {
	if c.closed {
		return nil, fmt.Errorf("dp: engine closed")
	}
	c.stepIndex++
	adam := c.stepAdam()
	var sp obs.Span
	if w.ctrack != nil {
		sp = w.ctrack.Begin("step")
	}
	for r := 0; r < w.N; r++ {
		w.cmd[r] <- command{kind: cmdStep, micros: micross[r], ops: c.sched(r, len(micross[r]))}
	}
	// Ranks are now forwarding; the pending verdict resolves in parallel
	// with that compute, exactly like the single-rank background
	// validator.
	res := c.resolvePending(w.val)
	for r := 0; r < w.N; r++ {
		w.resolution[r] <- res
	}
	if res.weightsChanged() {
		c.bumpStats(func(s *stv.Stats) { s.Redos++ })
	}
	g := goMsg{
		adam:   adam,
		scale:  c.scale(),
		inject: c.cfg.InjectBad != nil && c.cfg.InjectBad(c.stepIndex),
	}
	for r := 0; r < w.N; r++ {
		w.goCh[r] <- g
	}
	c.pendingAdam = adam
	out := make([]stepResult, w.N)
	for r := 0; r < w.N; r++ {
		out[r] = <-w.results[r]
	}
	if w.ctrack != nil {
		sp.EndInt("step", c.stepIndex)
	}
	c.bumpStats(func(s *stv.Stats) { s.Steps++ })
	c.pending = true
	return out, nil
}

// flush resolves any in-flight validation over the shared world (call at
// end of training so the final step is validated). Returns whether the
// final step was rolled back or re-executed.
func (c *coordinator) flush(w *world) (bool, error) {
	if c.closed {
		return false, fmt.Errorf("dp: engine closed")
	}
	if !c.pending {
		return false, nil
	}
	res := c.resolvePending(w.val)
	for r := 0; r < w.N; r++ {
		w.cmd[r] <- command{kind: cmdResolve, res: res}
	}
	for r := 0; r < w.N; r++ {
		<-w.results[r]
	}
	return res.weightsChanged(), nil
}

// closeWorld resolves any pending validation, stops the rank goroutines
// and the validation aggregator, and closes every rank's bucket store
// and activation store. The engine is unusable afterwards.
func (c *coordinator) closeWorld(w *world, stores []stv.BucketStore, acts []*act.Store) error {
	if c.closed {
		return nil
	}
	_, err := c.flush(w)
	for r := 0; r < w.N; r++ {
		w.cmd[r] <- command{kind: cmdStop}
	}
	close(w.partial)
	c.closed = true
	err = closeStores(stores, err)
	for _, a := range acts {
		if a == nil {
			continue
		}
		if aerr := a.Close(); err == nil {
			err = aerr
		}
	}
	return err
}

// buildStores constructs every rank's bucket store before any rank
// goroutine starts, so a failing store constructor can unwind cleanly.
// A nil factory keeps every shard DRAM-resident.
func buildStores(n int, factory func(rank int) (stv.BucketStore, error)) ([]stv.BucketStore, error) {
	stores := make([]stv.BucketStore, n)
	for id := 0; id < n; id++ {
		if factory == nil {
			stores[id] = stv.NewDRAMStore()
			continue
		}
		st, err := factory(id)
		if err != nil {
			for _, s := range stores[:id] {
				s.Close()
			}
			return nil, fmt.Errorf("dp: building rank %d store: %w", id, err)
		}
		stores[id] = st
	}
	return stores, nil
}

// buildActStores constructs every rank's activation store before any
// rank goroutine starts (nil factory: no activation tier, all entries
// nil). A failing constructor unwinds the stores already built.
func buildActStores(n int, factory func(rank int) (*act.Store, error)) ([]*act.Store, error) {
	stores := make([]*act.Store, n)
	if factory == nil {
		return stores, nil
	}
	for id := 0; id < n; id++ {
		st, err := factory(id)
		if err != nil {
			for _, s := range stores[:id] {
				if s != nil {
					s.Close()
				}
			}
			return nil, fmt.Errorf("dp: building rank %d activation store: %w", id, err)
		}
		stores[id] = st
	}
	return stores, nil
}

// resolvePending consumes the outstanding validation verdict (blocking on
// the background aggregator if it is still running) and converts it into
// the resolution every rank must apply. Counters and the loss scaler
// update exactly as the single-rank trainer's resolvePending does.
func (c *coordinator) resolvePending(val <-chan valMsg) resolution {
	if !c.pending {
		return resolution{action: aNone}
	}
	v := <-val
	c.pending = false
	if v.bad {
		c.bumpStats(func(s *stv.Stats) { s.SkipRolls++ })
		if c.cfg.Scaler != nil {
			c.cfg.Scaler.Update(true)
		}
		return resolution{action: aSkip}
	}
	if c.cfg.Scaler != nil {
		c.cfg.Scaler.Update(false)
	}
	clip := optim.ClipScale(v.norm, c.cfg.ClipNorm)
	if clip != 1.0 {
		c.bumpStats(func(s *stv.Stats) { s.ClipRolls++ })
		return resolution{action: aClip, clipScale: clip, adam: c.pendingAdam}
	}
	c.bumpStats(func(s *stv.Stats) { s.Commits++ })
	return resolution{action: aCommit}
}
