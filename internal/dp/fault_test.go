package dp

import (
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/stv"
	"superoffload/internal/stv/stvtest"
)

// mlpFaultFactory gives every rank its own multi-path store with an
// armed per-rank fault injector, and records the store handles so the
// test can inspect degradation telemetry after the run. Each rank's
// injector errors one path (alternating by rank) a few ops into real
// training — after the ~seed-write prefix — so every rank quarantines a
// path mid-run and re-routes its stripes.
func mlpFaultFactory(t *testing.T, stores map[int]*stv.MLPStore) func(rank int) (stv.BucketStore, error) {
	t.Helper()
	dir := t.TempDir()
	return func(rank int) (stv.BucketStore, error) {
		inj := stvtest.NewInjector(stvtest.Fault{Path: rank % 2, Kind: stvtest.FaultError, AfterOps: 10})
		s, err := stv.NewMLPStore(stv.MLPStoreConfig{
			Dir:             dir,
			Paths:           hw.NodeIOPaths(2),
			ResidentBuckets: 2,
			WrapPath:        inj.WrapPath,
		})
		if err != nil {
			return nil, err
		}
		stores[rank] = s
		return s, nil
	}
}

// assertDegraded checks one rank's store recorded the quarantine and
// the DRAM recovery (or stripe re-route) the injected fault forces.
func assertDegraded(t *testing.T, rank int, s *stv.MLPStore) {
	t.Helper()
	if s.Err() == nil {
		t.Errorf("rank %d: store latched no error despite the injected fault", rank)
	}
	kinds := map[string]int{}
	for _, e := range s.Telemetry().Events {
		kinds[e.Kind]++
	}
	if kinds["quarantine"] == 0 {
		t.Errorf("rank %d: no quarantine event: %+v", rank, s.Telemetry().Events)
	}
	if kinds["recover"]+kinds["reroute"] == 0 {
		t.Errorf("rank %d: nothing recovered or re-routed: %+v", rank, s.Telemetry().Events)
	}
}

// TestDPFaultInjectionGracefulDegradation: DP-2 with every rank's shard
// behind a degrading multi-path store — one flash path erroring mid-run
// on each rank — must reproduce the single-rank DRAM trainer bit for
// bit, and the engine's Close must surface the ranks' latched path
// errors (closeStores aggregation), not swallow them.
func TestDPFaultInjectionGracefulDegradation(t *testing.T) {
	stores := map[int]*stv.MLPStore{}
	cfg := baseConfig(2)
	cfg.BucketElems = 4000
	cfg.NewStore = mlpFaultFactory(t, stores)
	ref := stvConfig(cfg)
	eng, trainer, dpLosses, refLosses := runPair(t, cfg, ref, 25, 123, 4)
	defer trainer.Close()
	assertSameTrajectory(t, 2, dpLosses, refLosses, eng, trainer)
	if len(stores) != 2 {
		t.Fatalf("expected 2 per-rank stores, got %d", len(stores))
	}
	for rank, s := range stores {
		assertDegraded(t, rank, s)
	}
	if err := eng.Close(); err == nil {
		t.Fatal("engine Close swallowed the ranks' latched path errors")
	}
}

// TestMeshFaultInjectionGracefulDegradation: the same degradation
// contract on the 2×2 mesh — every (group, sequence) rank's store loses
// a path mid-run, the trajectory stays bit-exact, and Close reports the
// failure.
func TestMeshFaultInjectionGracefulDegradation(t *testing.T) {
	stores := map[int]*stv.MLPStore{}
	cfg := meshConfig(2, 2)
	// Small buckets: each mesh rank's shard must span more buckets than
	// the 2-slot window, or nothing streams and the fault never fires.
	cfg.BucketElems = 4000
	cfg.NewStore = mlpFaultFactory(t, stores)
	refCfg := stvConfig(cfg)
	eng, ref, meshLosses, refLosses := runMeshPair(t, cfg, refCfg, 15, 123, 4, 8)
	defer ref.Close()
	assertMeshTrajectory(t, 2, 2, meshLosses, refLosses, eng, ref)
	if len(stores) != 4 {
		t.Fatalf("expected one store per mesh rank, got %d", len(stores))
	}
	for rank, s := range stores {
		assertDegraded(t, rank, s)
	}
	if err := eng.Close(); err == nil {
		t.Fatal("mesh Close swallowed the ranks' latched path errors")
	}
}
