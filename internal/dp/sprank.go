package dp

import (
	"math"

	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// spRank is one simulated superchip of the sequence-parallel engine: a
// full fp16 model replica whose forward/backward runs over this rank's
// sequence shard (attention flips to head parallelism through the
// world's all-to-all links), plus ZeRO-sharded optimizer state for its
// owned buckets behind this rank's own bucket store.
type spRank struct {
	id     int
	w      *spWorld
	model  *nn.GPT
	sp     *nn.SP
	impl   optim.Impl
	store  stv.BucketStore
	groups []nn.Params   // global bucket layout over this replica
	owned  []ownedBucket // this rank's partition, ascending bucket index
	// offsets[b] is bucket b's start in the flat gradient layout
	// (Params() registration order — the layout the ring reduces over).
	offsets []int
	// flatBufs are rank 0's ring buffers, alternated per micro-batch: a
	// buffer seeded at micro m is not reused before micro m+2, by which
	// point every rank has finished reading micro m's reduction (it must
	// have, to have contributed its micro m+1 ring hops).
	flatBufs [2][]float32
	microSeq int
}

// newSPRank partitions the replica and seeds this rank's store with the
// buckets it owns.
func newSPRank(id int, w *spWorld, model *nn.GPT, impl optim.Impl, bucketElems int, store stv.BucketStore) *spRank {
	r := &spRank{id: id, w: w, model: model, impl: impl, store: store}
	r.sp = &nn.SP{Rank: id, Ranks: w.S, AllToAll: func(p [][]float32) [][]float32 {
		return w.allToAll(id, p)
	}}
	r.groups = stv.PartitionGroups(model.Params(), bucketElems)
	r.offsets = make([]int, len(r.groups))
	off := 0
	for bi, g := range r.groups {
		r.offsets[bi] = off
		off += g.TotalSize()
		if w.owner(bi) == id {
			r.owned = append(r.owned, ownedBucket{idx: bi, b: stv.NewBucket(g, store, bi)})
		}
	}
	return r
}

// run is the rank's top-level loop.
func (r *spRank) run() {
	for c := range r.w.cmd[r.id] {
		switch c.kind {
		case cmdStep:
			r.step(c.micros)
		case cmdResolve:
			r.apply(c.res)
			r.w.results[r.id] <- spResult{}
		case cmdStop:
			return
		}
	}
}

// apply executes a validation resolution: owners mutate their partition,
// and if weights changed every rank republishes via all-gather.
func (r *spRank) apply(v resolution) {
	applyResolution(v, r.owned, r.impl, r.allGather)
}

// step runs one training iteration over this rank's sequence shards,
// mirroring stv.Trainer's STV sequencing: forward first (with its two
// all-to-alls per layer), then resolve the previous step's validation; a
// rollback changes weights, so every rank redoes the forward in lockstep
// before backward.
func (r *spRank) step(micros []data.Batch) {
	rows := make([][]float64, 0, len(micros))
	var g goMsg
	var cache *nn.SPCache
	redone := false
	for {
		b := micros[0]
		losses, c := r.model.ForwardSP(b.Tokens, b.Targets, b.BatchSize, b.Seq, r.sp)
		if !redone {
			v := <-r.w.resolution[r.id]
			r.apply(v)
			if v.weightsChanged() {
				redone = true
				continue
			}
		}
		g = <-r.w.goCh[r.id]
		r.model.BackwardSP(c, g.scale, r.sp)
		rows = append(rows, losses)
		cache = c
		break
	}
	r.ringReduce(0, cache, micros[0].BatchSize)
	for m := 1; m < len(micros); m++ {
		b := micros[m]
		losses, c := r.model.ForwardSP(b.Tokens, b.Targets, b.BatchSize, b.Seq, r.sp)
		r.model.BackwardSP(c, g.scale, r.sp)
		rows = append(rows, losses)
		r.ringReduce(m, c, b.BatchSize)
	}

	// Speculative phase on the owned partition: normalize the reduced
	// sum (no rank-count factor — the ring already produced the whole
	// batch's gradient), apply per-bucket Adam, publish fp16 weights.
	inv := float32(1 / (g.scale * float64(len(micros))))
	for _, ob := range r.owned {
		if ob.idx == 0 && g.inject {
			ob.b.Grad()[0] = float32(math.Inf(1))
		}
		ob.b.ScaleGrad(inv)
		ob.b.SpeculativeStep(g.adam, r.impl)
	}
	r.allGather()

	// Background validation: stream this partition's per-bucket partials
	// off the critical path; the next step's forward overlaps with this.
	go func(owned []ownedBucket) {
		for _, ob := range owned {
			grad := ob.b.Grad()
			r.w.partial <- partialMsg{
				idx:   ob.idx,
				sumsq: optim.SumSquares(grad),
				bad:   optim.HasBad([][]float32{grad}),
			}
		}
	}(r.owned)

	r.w.results[r.id] <- spResult{rows: rows}
}

// ringReduce chains micro-batch m's weight-gradient accumulation through
// the ranks: the flat buffer hops (batch row, shard) pairs in
// lexicographic order — ascending global row order — with each hop
// replaying that shard's per-row contributions on top of the received
// partial. Rank S-1's last hop completes the reduction and broadcasts it;
// every rank then folds its owned buckets' slices into the bucket
// gradients (accumulating across micro-batches in micro order, exactly
// like single-rank gradient accumulation).
func (r *spRank) ringReduce(m int, cache *nn.SPCache, batchRows int) {
	for b := 0; b < batchRows; b++ {
		var buf []float32
		if r.id == 0 && b == 0 {
			buf = r.freshFlat()
		} else {
			buf = <-r.w.ring[r.id]
		}
		cache.AccumBatchRow(buf, b)
		r.w.ringHops.Add(1)
		r.w.ringFloats.Add(int64(len(buf)))
		if r.id == r.w.S-1 && b == batchRows-1 {
			for d := 0; d < r.w.S; d++ {
				r.w.flat[d] <- buf
			}
		} else {
			r.w.ring[(r.id+1)%r.w.S] <- buf
		}
	}
	buf := <-r.w.flat[r.id]
	for _, ob := range r.owned {
		off := r.offsets[ob.idx]
		stv.AccumInto(ob.b.Grad(), buf[off:off+ob.b.Size()], m == 0)
	}
}

// freshFlat returns a zeroed flat gradient buffer (rank 0 seeds each
// micro-batch's ring with one; see flatBufs for the reuse discipline).
func (r *spRank) freshFlat() []float32 {
	i := r.microSeq & 1
	r.microSeq++
	if r.flatBufs[i] == nil {
		r.flatBufs[i] = make([]float32, r.model.Params().TotalSize())
		return r.flatBufs[i]
	}
	buf := r.flatBufs[i]
	for j := range buf {
		buf[j] = 0
	}
	return buf
}

// allGather publishes every owned bucket's fp16 weights to the other
// ranks and installs the payloads this rank receives into its replica.
func (r *spRank) allGather() {
	gatherWeights(r.owned, r.groups, r.w.gather, r.w.S, r.id)
}

// bucketStore and bucketLayout satisfy engineRank for the shared engine
// plumbing (storeList, replicaGroups).
func (r *spRank) bucketStore() stv.BucketStore { return r.store }
func (r *spRank) bucketLayout() []nn.Params    { return r.groups }
