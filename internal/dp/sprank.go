package dp

import (
	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// spRank is one simulated superchip of the sequence-parallel engine: a
// full fp16 model replica whose forward/backward runs over this rank's
// sequence shard (attention flips to head parallelism through the
// group's all-to-all links), plus ZeRO-sharded optimizer state for its
// owned buckets behind this rank's own bucket store.
type spRank struct {
	id     int
	w      *spWorld
	model  *nn.GPT
	sp     *nn.SP
	impl   optim.Impl
	store  stv.BucketStore
	exec   *stv.PlacementExecutor // nil without a placement plan
	ast    *act.Store             // nil without an activation tier
	groups []nn.Params            // global bucket layout over this replica
	owned  []ownedBucket          // this rank's partition, ascending bucket index
	// offsets[b] is bucket b's start in the flat gradient layout
	// (Params() registration order — the layout the ring reduces over).
	offsets []int
	// seeder hands rank 0 the per-micro flat ring buffers (see
	// flatSeeder for the reuse discipline).
	seeder flatSeeder
}

// newSPRank partitions the replica and seeds this rank's store with the
// buckets it owns.
func newSPRank(id int, w *spWorld, model *nn.GPT, impl optim.Impl, bucketElems int, store stv.BucketStore) *spRank {
	r := &spRank{id: id, w: w, model: model, impl: impl, store: store}
	r.sp = &nn.SP{Rank: id, Ranks: w.N, AllToAll: func(p [][]float32) [][]float32 {
		return w.links.allToAll(id, p)
	}}
	r.groups, r.owned, r.offsets = partitionReplica(model, bucketElems, id, w.N, store)
	return r
}

// attachAct wires this rank's activation store into the sequence-parallel
// pass (the tap lives on nn.SP, not the model — see nn.SP.Tap) and its
// placement executor's step model. Nil-safe.
func (r *spRank) attachAct(st *act.Store) {
	if st == nil {
		return
	}
	r.ast = st
	r.sp.Tap = st
	r.exec.SetAct(stv.ActShapeFor(r.model, st))
}

// run is the rank's top-level loop.
func (r *spRank) run() { runRankLoop(r.w.world, r.id, r.step, r.apply) }

// apply executes a validation resolution: owners mutate their partition,
// and if weights changed every rank republishes via all-gather.
func (r *spRank) apply(v resolution) {
	applyResolution(v, r.owned, r.impl, r.allGather)
}

// step runs one training iteration over this rank's sequence shards,
// mirroring stv.Trainer's STV sequencing: forward first (with its two
// all-to-alls per layer), then resolve the previous step's validation; a
// rollback changes weights, so every rank redoes the forward in lockstep
// before backward.
func (r *spRank) step(micros []data.Batch) {
	rows := make([][]float64, 0, len(micros))
	var g goMsg
	var cache *nn.SPCache
	redone := false
	for {
		b := micros[0]
		losses, c := r.model.ForwardSP(b.Tokens, b.Targets, b.BatchSize, b.Seq, r.sp)
		if !redone {
			v := <-r.w.resolution[r.id]
			r.apply(v)
			if v.weightsChanged() {
				redone = true
				continue
			}
		}
		g = <-r.w.goCh[r.id]
		r.model.BackwardSP(c, g.scale, r.sp)
		rows = append(rows, losses)
		cache = c
		break
	}
	r.ringReduce(0, cache, micros[0].BatchSize)
	for m := 1; m < len(micros); m++ {
		b := micros[m]
		losses, c := r.model.ForwardSP(b.Tokens, b.Targets, b.BatchSize, b.Seq, r.sp)
		r.model.BackwardSP(c, g.scale, r.sp)
		rows = append(rows, losses)
		r.ringReduce(m, c, b.BatchSize)
	}

	// Speculative phase on the owned partition: normalize the reduced
	// sum (no rank-count factor — the ring already produced the whole
	// batch's gradient), apply per-bucket Adam, publish fp16 weights.
	inv := float32(1 / (g.scale * float64(len(micros))))
	speculate(r.w.world, r.owned, r.impl, g, inv, r.allGather)
	r.exec.Record(localTokens(micros), micros[0].Seq)

	r.w.results[r.id] <- stepResult{rows: rows}
}

// ringReduce chains micro-batch m's weight-gradient accumulation through
// the group ring (spLinks.ringReduce walks (batch row, shard) pairs in
// ascending global row order), then folds this rank's owned buckets'
// slices of the completed reduction into the bucket gradients —
// accumulating across micro-batches in micro order, exactly like
// single-rank gradient accumulation.
func (r *spRank) ringReduce(m int, cache *nn.SPCache, batchRows int) {
	buf := r.w.links.ringReduce(r.id, cache, batchRows, func() []float32 {
		return r.seeder.next(r.model.Params().TotalSize())
	})
	for _, ob := range r.owned {
		off := r.offsets[ob.idx]
		stv.AccumInto(ob.b.Grad(), buf[off:off+ob.b.Size()], m == 0)
	}
}

// allGather publishes every owned bucket's fp16 weights to the other
// ranks and installs the payloads this rank receives into its replica.
func (r *spRank) allGather() {
	gatherWeights(r.owned, r.groups, r.w.gather, r.w.N, r.id)
}

// bucketStore, bucketLayout, and placementExec satisfy engineRank for
// the shared engine plumbing (storeList, replicaGroups,
// sumPlacementTelemetry).
func (r *spRank) bucketStore() stv.BucketStore          { return r.store }
func (r *spRank) bucketLayout() []nn.Params             { return r.groups }
func (r *spRank) placementExec() *stv.PlacementExecutor { return r.exec }
func (r *spRank) actStore() *act.Store                  { return r.ast }
