package dp

import (
	"superoffload/internal/act"
	"superoffload/internal/data"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/stv"
)

// spRank is one simulated superchip of the sequence-parallel engine: a
// full fp16 model replica whose forward/backward runs over this rank's
// sequence shard (attention flips to head parallelism through the
// group's all-to-all links), plus ZeRO-sharded optimizer state for its
// owned buckets behind this rank's own bucket store.
type spRank struct {
	id     int
	w      *spWorld
	model  *nn.GPT
	sp     *nn.SP
	impl   optim.Impl
	store  stv.BucketStore
	exec   *stv.PlacementExecutor // nil without a placement plan
	ast    *act.Store             // nil without an activation tier
	groups []nn.Params            // global bucket layout over this replica
	owned  []ownedBucket          // this rank's partition, ascending bucket index
	// offsets[b] is bucket b's start in the flat gradient layout
	// (Params() registration order — the layout the ring reduces over).
	offsets []int
	// seeder hands rank 0 the per-micro flat ring buffers (see
	// flatSeeder for the reuse discipline).
	seeder flatSeeder

	// Per-step interpreter state (begin resets it). Caches are retained
	// per micro — each SPCache owns its arena, so multiple can be alive.
	micros []data.Batch
	rows   [][]float64
	caches []*nn.SPCache
}

// newSPRank partitions the replica and seeds this rank's store with the
// buckets it owns.
func newSPRank(id int, w *spWorld, model *nn.GPT, impl optim.Impl, bucketElems int, store stv.BucketStore) *spRank {
	r := &spRank{id: id, w: w, model: model, impl: impl, store: store}
	r.sp = &nn.SP{Rank: id, Ranks: w.N, AllToAll: func(p [][]float32) [][]float32 {
		return w.links.allToAll(id, p)
	}}
	r.groups, r.owned, r.offsets = partitionReplica(model, bucketElems, id, w.N, store)
	return r
}

// attachAct wires this rank's activation store into the sequence-parallel
// pass (the tap lives on nn.SP, not the model — see nn.SP.Tap) and its
// placement executor's step model. Nil-safe.
func (r *spRank) attachAct(st *act.Store) {
	if st == nil {
		return
	}
	r.ast = st
	r.sp.Tap = st
	r.exec.SetAct(stv.ActShapeFor(r.model, st))
}

// run is the rank's top-level loop.
func (r *spRank) run() { runRankLoop(r.w.world, r.id, r) }

// begin resets the per-step interpreter state for a new schedule.
func (r *spRank) begin(micros []data.Batch) {
	r.micros = micros
	r.rows = make([][]float64, len(micros))
	r.caches = make([]*nn.SPCache, len(micros))
}

// apply executes a validation resolution: owners mutate their partition,
// and if weights changed every rank republishes via all-gather.
func (r *spRank) apply(v resolution) {
	applyResolution(v, r.owned, r.impl, r.allGather)
}

// forward runs micro m's forward over this rank's sequence shard (with
// its two all-to-alls per layer; every rank's schedule forwards the same
// micros in the same order, so the collectives pair in lockstep). An STV
// redo overwrites the slot, exactly like the pre-schedule driver.
func (r *spRank) forward(m int) {
	b := r.micros[m]
	losses, c := r.model.ForwardSP(b.Tokens, b.Targets, b.BatchSize, b.Seq, r.sp)
	r.rows[m] = losses
	r.caches[m] = c
}

// backward runs micro m's backward from its retained cache.
func (r *spRank) backward(m int, scale float64) {
	r.model.BackwardSP(r.caches[m], scale, r.sp)
}

// reduce chains micro m's weight gradients through the group ring.
func (r *spRank) reduce(m int) {
	r.ringReduce(m, r.caches[m], r.micros[m].BatchSize)
}

// speculate runs the shared speculative phase: normalize the reduced sum
// (no rank-count factor — the ring already produced the whole batch's
// gradient), apply per-bucket Adam, publish fp16 weights.
func (r *spRank) speculate(g goMsg) {
	inv := float32(1 / (g.scale * float64(len(r.micros))))
	speculate(r.w.world, r.owned, r.impl, g, inv, r.allGather)
}

// report closes the step out: record placement telemetry and hand the
// per-micro loss rows to the coordinator.
func (r *spRank) report() stepResult {
	r.exec.Record(localTokens(r.micros), r.micros[0].Seq)
	return stepResult{rows: r.rows}
}

// ringReduce chains micro-batch m's weight-gradient accumulation through
// the group ring (spLinks.ringReduce walks (batch row, shard) pairs in
// ascending global row order), then folds this rank's owned buckets'
// slices of the completed reduction into the bucket gradients —
// accumulating across micro-batches in micro order, exactly like
// single-rank gradient accumulation.
func (r *spRank) ringReduce(m int, cache *nn.SPCache, batchRows int) {
	buf := r.w.links.ringReduce(r.id, cache, batchRows, func() []float32 {
		return r.seeder.next(r.model.Params().TotalSize())
	})
	for _, ob := range r.owned {
		off := r.offsets[ob.idx]
		stv.AccumInto(ob.b.Grad(), buf[off:off+ob.b.Size()], m == 0)
	}
}

// allGather publishes every owned bucket's fp16 weights to the other
// ranks and installs the payloads this rank receives into its replica.
func (r *spRank) allGather() {
	gatherWeights(r.owned, r.groups, r.w.gather, r.w.N, r.id)
}

// bucketStore, bucketLayout, and placementExec satisfy engineRank for
// the shared engine plumbing (storeList, replicaGroups,
// sumPlacementTelemetry).
func (r *spRank) bucketStore() stv.BucketStore          { return r.store }
func (r *spRank) bucketLayout() []nn.Params             { return r.groups }
func (r *spRank) placementExec() *stv.PlacementExecutor { return r.exec }
func (r *spRank) actStore() *act.Store                  { return r.ast }
