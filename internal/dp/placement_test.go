package dp

import (
	"bytes"
	"testing"

	"superoffload/internal/data"
	"superoffload/internal/place"
	"superoffload/internal/stv"
)

// placementEngine abstracts the three multi-rank engines for the shared
// placement assertions.
type placementEngine interface {
	Step(b data.Batch) (float64, error)
	Flush() (bool, error)
	Save(w *bytes.Buffer) error
	Stats() stv.Stats
	PlacementTelemetry() (stv.PlacementTelemetry, bool)
	NumBuckets() int
	Close() error
}

// engineAdapter narrows the concrete engines' io.Writer Save to the
// buffer the test uses.
type engineAdapter[E interface {
	Step(b data.Batch) (float64, error)
	Flush() (bool, error)
	Stats() stv.Stats
	PlacementTelemetry() (stv.PlacementTelemetry, bool)
	NumBuckets() int
	Close() error
}] struct {
	e    E
	save func(*bytes.Buffer) error
}

func (a engineAdapter[E]) Step(b data.Batch) (float64, error) { return a.e.Step(b) }
func (a engineAdapter[E]) Flush() (bool, error)               { return a.e.Flush() }
func (a engineAdapter[E]) Save(w *bytes.Buffer) error         { return a.save(w) }
func (a engineAdapter[E]) Stats() stv.Stats                   { return a.e.Stats() }
func (a engineAdapter[E]) PlacementTelemetry() (stv.PlacementTelemetry, bool) {
	return a.e.PlacementTelemetry()
}
func (a engineAdapter[E]) NumBuckets() int { return a.e.NumBuckets() }
func (a engineAdapter[E]) Close() error    { return a.e.Close() }

// runPlacedEngine trains one engine for steps iterations and returns its
// losses, stats, and checkpoint bytes.
func runPlacedEngine(t *testing.T, e placementEngine, steps int) ([]float64, stv.Stats, []byte) {
	t.Helper()
	corpus := data.NewCorpus(64, 55)
	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		l, err := e.Step(corpus.NextBatch(4, 8))
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, l)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := e.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	stats := e.Stats()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return losses, stats, ckpt.Bytes()
}

// placedConfig is the shared engine config for the placement tests, with
// fault injection so rollbacks are part of the exactness surface.
func placedConfig(ranks int) Config {
	cfg := baseConfig(ranks)
	cfg.BucketElems = 4096 // a dozen buckets, so the split is meaningful
	cfg.ClipNorm = 0.9
	cfg.InjectBad = func(step int) bool { return step == 3 }
	return cfg
}

// TestEnginePlacementBitExact asserts the multi-rank half of the
// placement contract: with any plan (GPU tail, and the tail with an NVMe
// body behind per-rank PlacedStores), each engine — DP R=2, SP S=2, mesh
// 2×2 — trains bit-identically to its homogeneous self (which the
// equivalence suites already pin to the single-rank trainer): same
// losses, same rollback stats, byte-identical checkpoints. Per-rank
// telemetry must cover the whole plan exactly once.
func TestEnginePlacementBitExact(t *testing.T) {
	const steps = 12
	nb := len(stv.PartitionGroups(tinyGPT(42).Params(), placedConfig(2).BucketElems))
	if nb < 3 {
		t.Fatalf("toy partition too small (%d buckets) for a meaningful split", nb)
	}
	split := place.GPUTail(nb, 2)
	nvmePlan := split.WithNVMeBody()

	builders := []struct {
		name  string
		ranks int
		build func(cfg Config) (placementEngine, error)
	}{
		{"dp-r2", 2, func(cfg Config) (placementEngine, error) {
			e, err := New(tinyGPT(42), cfg)
			if err != nil {
				return nil, err
			}
			return engineAdapter[*Engine]{e: e, save: func(w *bytes.Buffer) error { return e.Save(w) }}, nil
		}},
		{"sp-s2", 2, func(cfg Config) (placementEngine, error) {
			e, err := NewSP(tinyGPT(42), cfg)
			if err != nil {
				return nil, err
			}
			return engineAdapter[*SPEngine]{e: e, save: func(w *bytes.Buffer) error { return e.Save(w) }}, nil
		}},
		{"mesh-2x2", 4, func(cfg Config) (placementEngine, error) {
			cfg.Ranks, cfg.SeqRanks = 2, 2
			e, err := NewMesh(tinyGPT(42), cfg)
			if err != nil {
				return nil, err
			}
			return engineAdapter[*MeshEngine]{e: e, save: func(w *bytes.Buffer) error { return e.Save(w) }}, nil
		}},
	}

	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			ref, err := b.build(placedConfig(2))
			if err != nil {
				t.Fatal(err)
			}
			if got := ref.NumBuckets(); got != nb {
				t.Fatalf("engine partitioned %d buckets, expected %d", got, nb)
			}
			refLosses, refStats, refCkpt := runPlacedEngine(t, ref, steps)
			if refStats.Rollbacks() == 0 {
				t.Fatal("reference run produced no rollbacks")
			}

			plans := []struct {
				name string
				plan place.Plan
				nvme bool
			}{
				{"gpu-tail", split, false},
				{"gpu-tail+nvme", nvmePlan, true},
			}
			for _, pc := range plans {
				cfg := placedConfig(2)
				plan := pc.plan
				cfg.Placement = &plan
				if pc.nvme {
					dir := t.TempDir()
					cfg.NewStore = func(rank int) (stv.BucketStore, error) {
						return stv.NewPlacedStore(plan, stv.NVMeStoreConfig{Dir: dir})
					}
				}
				e, err := b.build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tel, ok := e.PlacementTelemetry()
				if !ok {
					e.Close()
					t.Fatalf("%s: placement telemetry missing", pc.name)
				}
				census := 0
				for _, tr := range tel.Tiers {
					census += tr.Buckets
				}
				if census != nb {
					e.Close()
					t.Fatalf("%s: per-rank tier census sums to %d, want %d", pc.name, census, nb)
				}
				losses, stats, ckpt := runPlacedEngine(t, e, steps)
				for i := range refLosses {
					if losses[i] != refLosses[i] {
						t.Fatalf("%s: loss diverged at step %d: %v vs %v", pc.name, i, losses[i], refLosses[i])
					}
				}
				if stats != refStats {
					t.Fatalf("%s: stats diverged: %+v vs %+v", pc.name, stats, refStats)
				}
				if !bytes.Equal(ckpt, refCkpt) {
					t.Fatalf("%s: checkpoint bytes diverged", pc.name)
				}
			}
		})
	}
}

// TestEnginePlacementTelemetry pins the summed accounting: every rank
// records every step, pipelined never exceeds serialized, and a bad plan
// is rejected at construction.
func TestEnginePlacementTelemetry(t *testing.T) {
	const steps = 5
	cfg := placedConfig(2)
	cfg.InjectBad = nil
	nb := len(stv.PartitionGroups(tinyGPT(42).Params(), cfg.BucketElems))
	plan := place.GPUTail(nb, 1)
	cfg.Placement = &plan
	e, err := New(tinyGPT(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(64, 55)
	for i := 0; i < steps; i++ {
		if _, err := e.Step(corpus.NextBatch(4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	tel, ok := e.PlacementTelemetry()
	if !ok {
		t.Fatal("telemetry missing")
	}
	if tel.Steps != steps {
		t.Fatalf("recorded %d steps, want %d", tel.Steps, steps)
	}
	if tel.PipelinedSeconds <= 0 || tel.PipelinedSeconds > tel.SerializedSeconds {
		t.Fatalf("bad modeled times: %+v", tel)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Engines without a plan report none.
	plain, err := New(tinyGPT(42), baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.PlacementTelemetry(); ok {
		t.Fatal("plan-less engine reported placement telemetry")
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	// A plan sized for the wrong partition is rejected up front by every
	// constructor.
	bad := place.GPUTail(nb+1, 1)
	for name, build := range map[string]func() error{
		"dp": func() error {
			cfg := placedConfig(2)
			cfg.Placement = &bad
			_, err := New(tinyGPT(42), cfg)
			return err
		},
		"sp": func() error {
			cfg := placedConfig(2)
			cfg.Placement = &bad
			_, err := NewSP(tinyGPT(42), cfg)
			return err
		},
		"mesh": func() error {
			cfg := placedConfig(2)
			cfg.SeqRanks = 2
			cfg.Placement = &bad
			_, err := NewMesh(tinyGPT(42), cfg)
			return err
		},
	} {
		if build() == nil {
			t.Fatalf("%s: mis-sized plan accepted", name)
		}
	}
}
