package metrics

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.Add("short", 1.5)
	tb.Add("a-much-longer-name", 123456.789)
	tb.AddStrings("raw", "cell")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + sep + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows share the first column width.
	w := strings.Index(lines[0], "Value")
	for i, l := range lines {
		if i == 1 {
			continue
		}
		if len(l) < w {
			t.Errorf("row %d shorter than header column offset", i)
		}
	}
	if !strings.Contains(out, "123456.79") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if tb.Rows() != 3 {
		t.Errorf("rows = %d", tb.Rows())
	}
}

func TestFormatters(t *testing.T) {
	if TFLOPS(2.5e12) != "2.5" {
		t.Errorf("TFLOPS: %s", TFLOPS(2.5e12))
	}
	if GiB(96<<30) != "96.0 GiB" {
		t.Errorf("GiB: %s", GiB(96<<30))
	}
	cases := map[float64]string{
		5e-7: "0.5 µs",
		5e-3: "5.00 ms",
		2.5:  "2.500 s",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%v) = %s, want %s", in, got, want)
		}
	}
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct: %s", Pct(0.123))
	}
}
