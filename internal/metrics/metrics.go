// Package metrics provides the small formatting helpers the experiment
// harness and CLIs share: fixed-width tables and unit formatting.
package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates rows for fixed-width rendering.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Add appends one row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddStrings appends one pre-formatted row.
func (t *Table) AddStrings(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// TFLOPS formats a FLOP/s value in TFLOPS.
func TFLOPS(flopsPerSec float64) string { return fmt.Sprintf("%.1f", flopsPerSec/1e12) }

// GiB formats bytes in binary gigabytes.
func GiB(b int64) string { return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30)) }

// Seconds formats a duration with adaptive precision.
func Seconds(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.1f µs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.3f s", s)
	}
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
