package tensor

import (
	"math"
	"testing"
)

// refMatMul is the naive scalar reference with the canonical kk-ascending
// one-add-at-a-time fold the tiled kernels promise to preserve bit-exactly.
func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a.Data[i*k+kk]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[kk*n+j]
			}
		}
	}
	return out
}

func refTMatMul(a, b *Tensor) *Tensor {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a.Data[kk*m+i]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[kk*n+j]
			}
		}
	}
	return out
}

func assertBitEqual(t *testing.T, got, want *Tensor, what string) {
	t.Helper()
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: elem %d = %v (bits %#08x), want %v (bits %#08x)",
				what, i, got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// TestTiledKernelsBitExact checks the register-tiled kernels against the
// scalar fold across awkward shapes (odd rows, non-multiple-of-4 k,
// columns past one n-block) including zeros in the data.
func TestTiledKernelsBitExact(t *testing.T) {
	rng := NewRNG(7)
	shapes := [][3]int{{1, 1, 1}, {2, 4, 8}, {3, 5, 7}, {5, 9, nBlock + 3}, {7, 13, 33}, {64, 64, 64}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		// Sprinkle exact zeros so the removed zero-skip path is exercised.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		assertBitEqual(t, MatMul(a, b), refMatMul(a, b), "MatMul")

		at := Randn(rng, 1, k, m)
		assertBitEqual(t, TMatMul(at, b), refTMatMul(at, b), "TMatMul")

		bt := b.Transpose2D()
		got := MatMulT(a, bt)
		want := refMatMul(a, b)
		if got.Dim(0) != m || got.Dim(1) != n {
			t.Fatalf("MatMulT shape %v", got.Shape())
		}
		// MatMulT folds dot products as stride-4 partials, so compare
		// against MatMul only up to rounding.
		for i := range want.Data {
			diff := math.Abs(float64(got.Data[i]) - float64(want.Data[i]))
			if diff > 1e-4*(1+math.Abs(float64(want.Data[i]))) {
				t.Fatalf("MatMulT elem %d = %v, want ≈ %v", i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulNaNPropagation: 0 × NaN must produce NaN in every kernel of
// the family — the zero-skip this replaces silently zeroed overflowed
// fp16 gradients before STV validation could scan them.
func TestMatMulNaNPropagation(t *testing.T) {
	nan := float32(math.NaN())

	// a has an exact zero exactly where b carries a NaN row.
	a := FromSlice([]float32{1, 0, 2, 3}, 2, 2)
	b := FromSlice([]float32{5, 6, nan, nan}, 2, 2)
	out := MatMul(a, b)
	for i, v := range out.Data {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("MatMul elem %d = %v, want NaN (0×NaN must propagate)", i, v)
		}
	}

	// TMatMul: zero activation column times NaN gradient row.
	at := FromSlice([]float32{1, 0, 0, 0}, 2, 2) // aᵀ row 1 is all zero
	bg := FromSlice([]float32{5, 6, nan, nan}, 2, 2)
	outT := TMatMul(at, bg)
	for i, v := range outT.Data {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("TMatMul elem %d = %v, want NaN", i, v)
		}
	}

	// MatMulT: NaN anywhere in a shared k-row reaches every dot using it.
	am := FromSlice([]float32{0, 1, 0, 2}, 2, 2)
	bm := FromSlice([]float32{nan, 1, nan, 2}, 2, 2)
	outM := MatMulT(am, bm)
	for i, v := range outM.Data {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("MatMulT elem %d = %v, want NaN", i, v)
		}
	}

	// Inf × 0 is likewise NaN, the other overflow signature.
	inf := float32(math.Inf(1))
	ai := FromSlice([]float32{0, 0, 0, 0}, 2, 2)
	bi := FromSlice([]float32{inf, inf, inf, inf}, 2, 2)
	outI := MatMul(ai, bi)
	for i, v := range outI.Data {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("MatMul Inf×0 elem %d = %v, want NaN", i, v)
		}
	}
}

// TestIntoVariants checks the Into kernels against their allocating
// wrappers and verify they fully overwrite stale output contents.
func TestIntoVariants(t *testing.T) {
	rng := NewRNG(11)
	a := Randn(rng, 1, 5, 7)
	b := Randn(rng, 1, 7, 9)
	at := Randn(rng, 1, 7, 5)
	bt := Randn(rng, 1, 9, 7)

	out := New(5, 9)
	out.Fill(123)
	MatMulInto(out, a, b)
	assertBitEqual(t, out, MatMul(a, b), "MatMulInto")

	out.Fill(-7)
	MatMulTInto(out, a, bt)
	assertBitEqual(t, out, MatMulT(a, bt), "MatMulTInto")

	out.Fill(42)
	TMatMulInto(out, at, b)
	assertBitEqual(t, out, TMatMul(at, b), "TMatMulInto")
}

// TestShapeValidation: FromSlice and Reshape must reject non-positive
// dims just like New — two negative dims used to pass the element-count
// check and corrupt later Row/At indexing.
func TestShapeValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic on non-positive dim", name)
			}
		}()
		f()
	}
	data := make([]float32, 6)
	mustPanic("FromSlice(-2,-3)", func() { FromSlice(data, -2, -3) })
	mustPanic("FromSlice(0,…)", func() { FromSlice(nil, 0, 5) })
	mustPanic("Reshape(-2,-3)", func() { FromSlice(data, 2, 3).Reshape(-2, -3) })
	mustPanic("Reshape(0)", func() { FromSlice(data, 6).Reshape(0, 6) })
	mustPanic("New(-1)", func() { New(-1, 4) })
	// Valid shapes still work.
	if got := FromSlice(data, 2, 3).Reshape(3, 2).Dim(0); got != 3 {
		t.Fatalf("Reshape(3,2).Dim(0) = %d", got)
	}
}
