package tensor

import (
	"runtime"
	"sync"
)

// The matmul family shares one process-wide band pool instead of spawning
// goroutines per call: a TrainStep issues dozens of matmuls per layer, and
// per-call goroutine fan-out both allocates and defeats the scheduler's
// locality. Workers are started lazily on the first large product.

type bandTask struct {
	f      func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolCh   chan bandTask
)

func startPool() {
	n := runtime.GOMAXPROCS(0) - 1
	poolCh = make(chan bandTask, 4*(n+1))
	for i := 0; i < n; i++ {
		go func() {
			for t := range poolCh {
				t.f(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// parallelRows splits [0,m) into bands across the shared pool when the work
// is large enough. The submitting goroutine always runs the first band
// inline, so progress never depends on pool capacity and the kernels stay
// deadlock-free (band functions never re-enter parallelRows).
func parallelRows(m, flops int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers == 1 || m == 1 {
		f(0, m)
		return
	}
	poolOnce.Do(startPool)
	if workers > m {
		workers = m
	}
	band := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := band; lo < m; lo += band {
		hi := min(lo+band, m)
		wg.Add(1)
		poolCh <- bandTask{f, lo, hi, &wg}
	}
	f(0, min(band, m))
	wg.Wait()
}
