// Package tensor is a minimal dense fp32 tensor library: the numeric
// substrate under the real (non-simulated) training path. It provides
// row-major tensors, a parallel blocked matmul, the elementwise and
// reduction kernels the transformer in internal/nn needs, and a
// deterministic RNG so every experiment is reproducible.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major fp32 array.
type Tensor struct {
	Data  []float32
	shape []int
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elems, have %d", shape, n, len(data)))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns the dimensions (not a copy; callers must not mutate).
func (t *Tensor) Shape() []int { return t.shape }

// Size returns the element count.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// At reads an element by multi-index (2D fast path + general).
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set writes an element by multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Data: make([]float32, len(t.Data)), shape: append([]int(nil), t.shape...)}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %d elems", shape, len(t.Data)))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// Row returns row i of a 2D tensor as a slice view.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row on non-2D tensor")
	}
	c := t.shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Zero resets all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.shape, len(t.Data))
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// ---- elementwise ----

func assertSame(a, b *Tensor, op string) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// AddInto computes out = a + b (out may alias a or b).
func AddInto(out, a, b *Tensor) {
	assertSame(a, b, "add")
	assertSame(out, a, "add")
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes out = a - b.
func SubInto(out, a, b *Tensor) {
	assertSame(a, b, "sub")
	assertSame(out, a, "sub")
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
}

// MulInto computes out = a ⊙ b.
func MulInto(out, a, b *Tensor) {
	assertSame(a, b, "mul")
	assertSame(out, a, "mul")
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale multiplies in place by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY computes y += alpha * x over raw slices.
func AXPY(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// ---- reductions ----

// Sum returns the float64 sum of all elements (accumulated in fp64 for
// stability).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// MaxAbs returns the max |x|.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the L2 norm, accumulated in fp64.
func Norm2(xs []float32) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// GlobalNorm returns sqrt(sum of squared L2 norms) across tensors — the
// global gradient norm used by clipping (§4.4).
func GlobalNorm(tensors []*Tensor) float64 {
	var s float64
	for _, t := range tensors {
		for _, v := range t.Data {
			s += float64(v) * float64(v)
		}
	}
	return math.Sqrt(s)
}

// ---- 2D helpers ----

// Transpose2D returns a new transposed 2D tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose2D on non-2D")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	// Block-transposed loop for cache friendliness.
	const bs = 32
	for i0 := 0; i0 < r; i0 += bs {
		for j0 := 0; j0 < c; j0 += bs {
			iMax, jMax := min(i0+bs, r), min(j0+bs, c)
			for i := i0; i < iMax; i++ {
				for j := j0; j < jMax; j++ {
					out.Data[j*r+i] = t.Data[i*c+j]
				}
			}
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of a 2D
// tensor in place.
func (t *Tensor) SoftmaxRows() {
	if len(t.shape) != 2 {
		panic("tensor: SoftmaxRows on non-2D")
	}
	r, c := t.shape[0], t.shape[1]
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			row[j] = e
			sum += float64(e)
		}
		inv := float32(1.0 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
