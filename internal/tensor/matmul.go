package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the FLOP count below which MatMul stays single
// threaded: goroutine fan-out costs more than it saves on tiny products.
const parallelThreshold = 1 << 20

// MatMul returns a × b for 2D tensors: (m,k) × (k,n) → (m,n).
// The kernel is a cache-blocked ikj loop parallelized over row bands —
// the same optimization hierarchy (tiling + multicore) GraceAdam uses.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Dim(0), b.Dim(1))
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, reusing out's storage.
func MatMulInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2D operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dims differ")
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: MatMulInto output shape mismatch")
	}
	out.Zero()
	flops := 2 * m * k * n
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers == 1 || m == 1 {
		matmulRows(out.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := min(lo+band, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(out.Data, a.Data, b.Data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo,hi) of out += a×b with an ikj loop and 4-way
// unrolled inner update that the compiler keeps in registers.
func matmulRows(out, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				orow[j] += av * brow[j]
				orow[j+1] += av * brow[j+1]
				orow[j+2] += av * brow[j+2]
				orow[j+3] += av * brow[j+3]
			}
			for ; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulT returns a × bᵀ for 2D tensors: (m,k) × (n,k)ᵀ → (m,n). Used by
// backward passes to avoid materializing transposes.
func MatMulT(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMulT inner dims differ")
	}
	out := New(m, n)
	worker := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var s0, s1, s2, s3 float32
				kk := 0
				for ; kk+4 <= k; kk += 4 {
					s0 += arow[kk] * brow[kk]
					s1 += arow[kk+1] * brow[kk+1]
					s2 += arow[kk+2] * brow[kk+2]
					s3 += arow[kk+3] * brow[kk+3]
				}
				s := s0 + s1 + s2 + s3
				for ; kk < k; kk++ {
					s += arow[kk] * brow[kk]
				}
				out.Data[i*n+j] = s
			}
		}
	}
	parallelRows(m, 2*m*k*n, worker)
	return out
}

// TMatMul returns aᵀ × b: (k,m)ᵀ × (k,n) → (m,n). Used for weight
// gradients (xᵀ · dy).
func TMatMul(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: TMatMul inner dims differ")
	}
	out := New(m, n)
	worker := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := a.Data[kk*m+i]
				if av == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	}
	parallelRows(m, 2*m*k*n, worker)
	return out
}

// parallelRows splits [0,m) into bands across GOMAXPROCS workers when the
// work is large enough.
func parallelRows(m, flops int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers == 1 || m == 1 {
		f(0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := min(lo+band, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
