package tensor

// The matmul family: MatMul (a×b), MatMulT (a×bᵀ), TMatMul (aᵀ×b), each
// with an Into variant that reuses caller storage. All three share the
// banded worker pool in pool.go and the same kernel shape: a 2-row ×
// 4-k register tile (each loaded b value feeds two output rows; each
// output element takes four fused updates per pass) inside an n-block
// loop that keeps the streamed b panel inside L1/L2.
//
// Numerics contract: every output element is accumulated in the exact
// left-to-right kk-ascending order of the naive loop — the tile only
// reorders *loads*, never the floating-point fold — so results are
// bit-identical across band splits and to the scalar replay kernels in
// internal/nn. There is deliberately no skip of zero multiplicands:
// 0 × NaN must produce NaN so overflowed fp16 gradients reach the
// ScanBad validation scans instead of being silently zeroed.

// parallelThreshold is the FLOP count below which the kernels stay single
// threaded: band fan-out costs more than it saves on tiny products.
const parallelThreshold = 1 << 20

// nBlock is the output-column tile width: 4 b-rows × 512 columns ≈ 8 KiB
// of streamed panel per pass, comfortably inside L1.
const nBlock = 512

// MatMul returns a × b for 2D tensors: (m,k) × (k,n) → (m,n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Dim(0), b.Dim(1))
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, reusing out's storage.
func MatMulInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2D operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dims differ")
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: MatMulInto output shape mismatch")
	}
	out.Zero()
	parallelRows(m, 2*m*k*n, func(lo, hi int) {
		matmulRows(out.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

// matmulRows computes rows [lo,hi) of out += a×b. The `[:len(orow0)]`
// reslices are bounds-check-elimination hints: they let the compiler prove
// every indexed slice shares the loop bound, emptying the inner loop of
// checks.
func matmulRows(out, a, b []float32, lo, hi, k, n int) {
	for j0 := 0; j0 < n; j0 += nBlock {
		j1 := min(j0+nBlock, n)
		i := lo
		for ; i+2 <= hi; i += 2 {
			arow0 := a[i*k : (i+1)*k]
			arow1 := a[(i+1)*k : (i+2)*k]
			orow0 := out[i*n+j0 : i*n+j1]
			orow1 := out[(i+1)*n+j0:][:len(orow0)]
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				a00, a01, a02, a03 := arow0[kk], arow0[kk+1], arow0[kk+2], arow0[kk+3]
				a10, a11, a12, a13 := arow1[kk], arow1[kk+1], arow1[kk+2], arow1[kk+3]
				b0 := b[kk*n+j0:][:len(orow0)]
				b1 := b[(kk+1)*n+j0:][:len(orow0)]
				b2 := b[(kk+2)*n+j0:][:len(orow0)]
				b3 := b[(kk+3)*n+j0:][:len(orow0)]
				for j := range orow0 {
					bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
					orow0[j] = orow0[j] + a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
					orow1[j] = orow1[j] + a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
				}
			}
			for ; kk < k; kk++ {
				av0, av1 := arow0[kk], arow1[kk]
				brow := b[kk*n+j0:][:len(orow0)]
				for j := range orow0 {
					orow0[j] += av0 * brow[j]
					orow1[j] += av1 * brow[j]
				}
			}
		}
		for ; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n+j0 : i*n+j1]
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
				b0 := b[kk*n+j0:][:len(orow)]
				b1 := b[(kk+1)*n+j0:][:len(orow)]
				b2 := b[(kk+2)*n+j0:][:len(orow)]
				b3 := b[(kk+3)*n+j0:][:len(orow)]
				for j := range orow {
					orow[j] = orow[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; kk < k; kk++ {
				av := arow[kk]
				brow := b[kk*n+j0:][:len(orow)]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulT returns a × bᵀ for 2D tensors: (m,k) × (n,k)ᵀ → (m,n). Used by
// backward passes to avoid materializing transposes.
func MatMulT(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[0])
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes out = a × bᵀ, reusing out's storage. Each output
// element is a dot product folded as four stride-4 partial sums (s0..s3,
// then s0+s1+s2+s3 plus a scalar tail) — the fold the original kernel
// used, kept so results stay bit-identical.
func MatMulTInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulT requires 2D operands")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMulT inner dims differ")
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	aD, bD, oD := a.Data, b.Data, out.Data
	parallelRows(m, 2*m*k*n, func(lo, hi int) {
		i := lo
		for ; i+2 <= hi; i += 2 {
			arow0 := aD[i*k:][:k]
			arow1 := aD[(i+1)*k:][:k]
			orow0 := oD[i*n : (i+1)*n]
			orow1 := oD[(i+1)*n : (i+2)*n]
			for j := 0; j < n; j++ {
				brow := bD[j*k:][:k]
				var s00, s01, s02, s03 float32
				var s10, s11, s12, s13 float32
				kk := 0
				for ; kk+4 <= k; kk += 4 {
					bv0, bv1, bv2, bv3 := brow[kk], brow[kk+1], brow[kk+2], brow[kk+3]
					s00 += arow0[kk] * bv0
					s01 += arow0[kk+1] * bv1
					s02 += arow0[kk+2] * bv2
					s03 += arow0[kk+3] * bv3
					s10 += arow1[kk] * bv0
					s11 += arow1[kk+1] * bv1
					s12 += arow1[kk+2] * bv2
					s13 += arow1[kk+3] * bv3
				}
				s0 := s00 + s01 + s02 + s03
				s1 := s10 + s11 + s12 + s13
				for ; kk < k; kk++ {
					bv := brow[kk]
					s0 += arow0[kk] * bv
					s1 += arow1[kk] * bv
				}
				orow0[j] = s0
				orow1[j] = s1
			}
		}
		for ; i < hi; i++ {
			arow := aD[i*k:][:k]
			orow := oD[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bD[j*k:][:k]
				var s0, s1, s2, s3 float32
				kk := 0
				for ; kk+4 <= k; kk += 4 {
					s0 += arow[kk] * brow[kk]
					s1 += arow[kk+1] * brow[kk+1]
					s2 += arow[kk+2] * brow[kk+2]
					s3 += arow[kk+3] * brow[kk+3]
				}
				s := s0 + s1 + s2 + s3
				for ; kk < k; kk++ {
					s += arow[kk] * brow[kk]
				}
				orow[j] = s
			}
		}
	})
}

// TMatMul returns aᵀ × b: (k,m)ᵀ × (k,n) → (m,n). Used for weight
// gradients (xᵀ · dy).
func TMatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[1], b.shape[1])
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes out = aᵀ × b, reusing out's storage.
func TMatMulInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: TMatMul requires 2D operands")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: TMatMul inner dims differ")
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: TMatMulInto output shape mismatch")
	}
	out.Zero()
	aD, bD, oD := a.Data, b.Data, out.Data
	parallelRows(m, 2*m*k*n, func(lo, hi int) {
		tmatmulRows(oD, aD, bD, lo, hi, k, m, n)
	})
}

// tmatmulRows computes rows [lo,hi) of out += aᵀ×b; a values are gathered
// with stride m, b rows stream like matmulRows.
func tmatmulRows(out, a, b []float32, lo, hi, k, m, n int) {
	for j0 := 0; j0 < n; j0 += nBlock {
		j1 := min(j0+nBlock, n)
		i := lo
		for ; i+2 <= hi; i += 2 {
			orow0 := out[i*n+j0 : i*n+j1]
			orow1 := out[(i+1)*n+j0:][:len(orow0)]
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				a00, a10 := a[kk*m+i], a[kk*m+i+1]
				a01, a11 := a[(kk+1)*m+i], a[(kk+1)*m+i+1]
				a02, a12 := a[(kk+2)*m+i], a[(kk+2)*m+i+1]
				a03, a13 := a[(kk+3)*m+i], a[(kk+3)*m+i+1]
				b0 := b[kk*n+j0:][:len(orow0)]
				b1 := b[(kk+1)*n+j0:][:len(orow0)]
				b2 := b[(kk+2)*n+j0:][:len(orow0)]
				b3 := b[(kk+3)*n+j0:][:len(orow0)]
				for j := range orow0 {
					bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
					orow0[j] = orow0[j] + a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
					orow1[j] = orow1[j] + a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
				}
			}
			for ; kk < k; kk++ {
				av0, av1 := a[kk*m+i], a[kk*m+i+1]
				brow := b[kk*n+j0:][:len(orow0)]
				for j := range orow0 {
					orow0[j] += av0 * brow[j]
					orow1[j] += av1 * brow[j]
				}
			}
		}
		for ; i < hi; i++ {
			orow := out[i*n+j0 : i*n+j1]
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				a0, a1 := a[kk*m+i], a[(kk+1)*m+i]
				a2, a3 := a[(kk+2)*m+i], a[(kk+3)*m+i]
				b0 := b[kk*n+j0:][:len(orow)]
				b1 := b[(kk+1)*n+j0:][:len(orow)]
				b2 := b[(kk+2)*n+j0:][:len(orow)]
				b3 := b[(kk+3)*n+j0:][:len(orow)]
				for j := range orow {
					orow[j] = orow[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; kk < k; kk++ {
				av := a[kk*m+i]
				brow := b[kk*n+j0:][:len(orow)]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}
