package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3)
	if a.Size() != 6 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("shape wrong: %v", a)
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v", a.At(1, 2))
	}
	if a.Data[5] != 5 {
		t.Errorf("row-major layout violated")
	}
}

func TestFromSliceAndReshape(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Errorf("reshape view wrong: %v", b.At(2, 1))
	}
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Errorf("reshape should share storage")
	}
	c := a.Clone()
	c.Set(-1, 0, 0)
	if a.At(0, 0) != 99 {
		t.Errorf("clone should not share storage")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad dim", func() { New(0, 3) })
	mustPanic("bad index", func() { New(2, 2).At(2, 0) })
	mustPanic("rank", func() { New(2, 2).At(1) })
	mustPanic("from slice", func() { FromSlice([]float32{1}, 2, 2) })
	mustPanic("reshape", func() { New(2, 2).Reshape(3) })
	mustPanic("add mismatch", func() { AddInto(New(2), New(2), New(3)) })
	mustPanic("matmul dims", func() { MatMul(New(2, 3), New(4, 2)) })
}

func TestElementwise(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	out := New(2, 2)
	AddInto(out, a, b)
	if out.Data[3] != 44 {
		t.Errorf("add: %v", out.Data)
	}
	SubInto(out, b, a)
	if out.Data[0] != 9 {
		t.Errorf("sub: %v", out.Data)
	}
	MulInto(out, a, b)
	if out.Data[2] != 90 {
		t.Errorf("mul: %v", out.Data)
	}
	out.Scale(0.5)
	if out.Data[2] != 45 {
		t.Errorf("scale: %v", out.Data)
	}
	y := []float32{1, 1}
	AXPY(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("axpy: %v", y)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{3, -4, 0, 1}, 4)
	if a.Sum() != 0 {
		t.Errorf("sum = %v", a.Sum())
	}
	if a.Mean() != 0 {
		t.Errorf("mean = %v", a.Mean())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("maxabs = %v", a.MaxAbs())
	}
	if got := Norm2([]float32{3, 4}); math.Abs(got-5) > 1e-9 {
		t.Errorf("norm2 = %v", got)
	}
	g := GlobalNorm([]*Tensor{FromSlice([]float32{3}, 1), FromSlice([]float32{4}, 1)})
	if math.Abs(g-5) > 1e-9 {
		t.Errorf("global norm = %v", g)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += float64(a.Data[i*k+kk]) * float64(b.Data[kk*n+j])
			}
			out.Data[i*n+j] = float32(s)
		}
	}
	return out
}

func approxEqual(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol*(1+math.Abs(float64(b.Data[i]))) {
			return false
		}
	}
	return true
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func(mi, ki, ni uint8) bool {
		m, k, n := int(mi%17)+1, int(ki%17)+1, int(ni%17)+1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		return approxEqual(MatMul(a, b), naiveMatMul(a, b), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatMulLargeParallelPath(t *testing.T) {
	rng := NewRNG(11)
	a := Randn(rng, 1, 130, 96)
	b := Randn(rng, 1, 96, 110)
	if !approxEqual(MatMul(a, b), naiveMatMul(a, b), 1e-4) {
		t.Fatal("parallel matmul diverges from naive")
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	rng := NewRNG(13)
	a := Randn(rng, 1, 9, 7)
	b := Randn(rng, 1, 11, 7)
	got := MatMulT(a, b) // a(9,7) × b(11,7)ᵀ = (9,11)
	want := naiveMatMul(a, b.Transpose2D())
	if !approxEqual(got, want, 1e-4) {
		t.Fatal("MatMulT wrong")
	}
	c := Randn(rng, 1, 7, 9)
	d := Randn(rng, 1, 7, 11)
	got2 := TMatMul(c, d) // c(7,9)ᵀ × d(7,11) = (9,11)
	want2 := naiveMatMul(c.Transpose2D(), d)
	if !approxEqual(got2, want2, 1e-4) {
		t.Fatal("TMatMul wrong")
	}
}

func TestTranspose2D(t *testing.T) {
	rng := NewRNG(17)
	a := Randn(rng, 1, 40, 33)
	at := a.Transpose2D()
	for i := 0; i < 40; i++ {
		for j := 0; j < 33; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	// Involution property.
	if !approxEqual(at.Transpose2D(), a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	a.SoftmaxRows()
	// Rows sum to 1.
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += float64(a.At(i, j))
		}
		if math.Abs(s-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
	// Large inputs must not produce NaN (stability).
	if math.IsNaN(float64(a.At(1, 0))) {
		t.Error("softmax overflow")
	}
	if math.Abs(float64(a.At(1, 0))-1.0/3.0) > 1e-5 {
		t.Errorf("uniform row wrong: %v", a.At(1, 0))
	}
}

func TestSoftmaxMonotonicProperty(t *testing.T) {
	rng := NewRNG(23)
	f := func(n uint8) bool {
		c := int(n%10) + 2
		a := Randn(rng, 2, 1, c)
		orig := a.Clone()
		a.SoftmaxRows()
		// softmax preserves ordering within the row
		for i := 0; i < c; i++ {
			for j := 0; j < c; j++ {
				if orig.Data[i] < orig.Data[j] && a.Data[i] > a.Data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 50 {
		t.Error("different seeds look identical")
	}
}

func TestRNGDistributions(t *testing.T) {
	rng := NewRNG(99)
	var sum, sumsq float64
	n := 20000
	for i := 0; i < n; i++ {
		v := float64(rng.NormFloat32())
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(std-1) > 0.05 {
		t.Errorf("normal std = %v", std)
	}
	for i := 0; i < 1000; i++ {
		if v := rng.Float32(); v < 0 || v >= 1 {
			t.Fatalf("uniform out of range: %v", v)
		}
		if k := rng.Intn(7); k < 0 || k >= 7 {
			t.Fatalf("Intn out of range: %v", k)
		}
	}
}

func TestRandnAndUniformShapes(t *testing.T) {
	rng := NewRNG(5)
	a := Randn(rng, 0.02, 3, 4)
	if a.Size() != 12 {
		t.Errorf("randn size %d", a.Size())
	}
	u := Uniform(rng, -1, 1, 5)
	for _, v := range u.Data {
		if v < -1 || v >= 1 {
			t.Errorf("uniform value %v out of [-1,1)", v)
		}
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if len(r) != 3 || r[0] != 4 {
		t.Fatalf("row view wrong: %v", r)
	}
	r[0] = 40
	if a.At(1, 0) != 40 {
		t.Error("row view should alias")
	}
}

func TestZeroFill(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	a.Fill(7)
	if a.Data[1] != 7 {
		t.Error("fill")
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Error("zero")
	}
}
