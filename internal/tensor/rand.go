package tensor

import "math"

// RNG is a small deterministic PCG32 generator so tensors, datasets and
// training runs are exactly reproducible across machines without importing
// math/rand's global state.
type RNG struct {
	state uint64
	inc   uint64
}

// NewRNG seeds a generator; distinct streams come from distinct seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = seed*6364136223846793005 + r.inc
	r.Uint32()
	return r
}

// Uint32 returns the next 32 random bits (PCG-XSH-RR).
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Float64 returns a uniform value in [0,1) with 53 random bits.
func (r *RNG) Float64() float64 {
	hi := uint64(r.Uint32()) >> 5 // 27 bits
	lo := uint64(r.Uint32()) >> 6 // 26 bits
	return float64(hi<<26|lo) / (1 << 53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 { return float32(r.Uint32()>>8) / (1 << 24) }

// Intn returns a uniform int in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn non-positive bound")
	}
	return int(r.Uint32() % uint32(n))
}

// NormFloat32 returns a standard normal sample (Box–Muller; one value per
// call, the pair's twin discarded for simplicity).
func (r *RNG) NormFloat32() float32 {
	for {
		u1 := r.Float32()
		if u1 <= 1e-12 {
			continue
		}
		u2 := r.Float32()
		return float32(math.Sqrt(-2*math.Log(float64(u1))) * math.Cos(2*math.Pi*float64(u2)))
	}
}

// Randn fills a new tensor with N(0, std²) samples.
func Randn(rng *RNG, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat32() * std
	}
	return t
}

// Uniform fills a new tensor with U[lo,hi) samples.
func Uniform(rng *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float32()
	}
	return t
}
