package obs

import (
	"strings"
	"testing"
)

// TestInstruments covers counter/gauge/histogram basics and the
// idempotent named lookup.
func TestInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("superoffload_test_ops_total")
	c.Inc()
	c.Add(2)
	if r.Counter("superoffload_test_ops_total") != c {
		t.Fatal("second Counter lookup returned a different instrument")
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("superoffload_test_depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	h := r.Histogram("superoffload_test_step_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	samples := h.Samples()
	want := map[string]float64{
		"superoffload_test_step_seconds_count":  3,
		"superoffload_test_step_seconds_le_0.1": 1,
		"superoffload_test_step_seconds_le_1":   2,
		"superoffload_test_step_seconds_le_inf": 3,
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Name] = s.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("histogram sample %s = %v, want %v (all: %v)", name, got[name], v, got)
		}
	}
}

// TestInstrumentKindConflict: rebinding a name to another instrument
// kind is a programming error and must panic.
func TestInstrumentKindConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("superoffload_test_x")
	r.Gauge("superoffload_test_x")
}

// sliceSource adapts a fixed sample list to Source for tests.
type sliceSource []Sample

func (s sliceSource) Samples() []Sample { return s }

// TestGatherMergesAndSorts: providers join instruments, same-named
// samples sum, and the output is name-sorted.
func TestGatherMergesAndSorts(t *testing.T) {
	r := NewRegistry()
	r.Counter("superoffload_test_b_total").Add(1)
	r.Register(func() (Source, bool) {
		return sliceSource{
			{Name: "superoffload_test_a_total", Kind: KindCounter, Value: 2},
			{Name: "superoffload_test_b_total", Kind: KindCounter, Value: 4},
		}, true
	})
	r.Register(func() (Source, bool) { return nil, false }) // dormant source
	got := r.Gather()
	if len(got) != 2 {
		t.Fatalf("got %d samples, want 2: %v", len(got), got)
	}
	if got[0].Name != "superoffload_test_a_total" || got[0].Value != 2 {
		t.Fatalf("sample 0 = %+v", got[0])
	}
	if got[1].Name != "superoffload_test_b_total" || got[1].Value != 5 {
		t.Fatalf("same-named samples did not sum: %+v", got[1])
	}
}

// TestWriteText checks the text exposition format.
func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("superoffload_test_ops_total").Add(7)
	r.Gauge("superoffload_test_frac").Set(0.25)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE superoffload_test_frac gauge\nsuperoffload_test_frac 0.25\n",
		"# TYPE superoffload_test_ops_total counter\nsuperoffload_test_ops_total 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
