package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandlerMetrics: /metrics serves the registry's text exposition.
func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("superoffload_test_ops_total").Add(3)
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, "superoffload_test_ops_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
}

// TestHandlerTraceSnapshot: /trace returns the full Chrome trace JSON;
// without a tracer it 404s.
func TestHandlerTraceSnapshot(t *testing.T) {
	tr := NewTracer()
	tr.Track("rank 0").Begin("forward").End()
	srv := httptest.NewServer(Handler(NewRegistry(), tr))
	defer srv.Close()

	var parsed struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/trace")), &parsed); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("got %d traceEvents, want 2", len(parsed.TraceEvents))
	}

	none := httptest.NewServer(Handler(NewRegistry(), nil))
	defer none.Close()
	resp, err := http.Get(none.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", resp.StatusCode)
	}
}

// TestHandlerTraceFollow: the streaming mode emits events recorded
// after the request started.
func TestHandlerTraceFollow(t *testing.T) {
	tr := NewTracer()
	srv := httptest.NewServer(Handler(NewRegistry(), tr))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/trace?follow=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	tr.Track("late").Instant("ping")
	buf := make([]byte, 4096)
	var got strings.Builder
	for !strings.Contains(got.String(), `"ping"`) {
		n, err := resp.Body.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			t.Fatalf("stream ended before the event arrived (%v):\n%s", err, got.String())
		}
	}
	if !strings.HasPrefix(got.String(), "[") {
		t.Fatalf("stream is not a JSON array:\n%s", got.String())
	}
}

// TestHandlerPprof: the pprof index must be mounted.
func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	if body := get(t, srv.URL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ does not look like the pprof index:\n%.200s", body)
	}
}

// get fetches a URL and returns its body, failing the test on error.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
