package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Naming scheme: every metric is superoffload_<subsystem>_<metric>,
// with counters suffixed _total and time accumulators suffixed
// _seconds_total. Each telemetry struct's Samples method owns one
// subsystem prefix (nvme, mlp, act, placement, comm, stv), which is
// what keeps the five engines' metrics non-colliding — the conformance
// test in the root package asserts it.

// Kind classifies a metric sample for the text exposition.
type Kind int

// The metric kinds the registry exposes.
const (
	// KindCounter is a monotonically nondecreasing total.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value that may move both ways.
	KindGauge
)

// String names the kind the way the text format spells it.
func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Sample is one metric observation: a name under the unified naming
// scheme, its kind, and its current value.
type Sample struct {
	// Name is the full metric name (superoffload_<subsystem>_<metric>).
	Name string
	// Kind is the sample's exposition kind.
	Kind Kind
	// Value is the current reading.
	Value float64
}

// Source is the shared surface the engines' telemetry structs publish
// through: a snapshot of named samples. Implementations must be usable
// on a value copy (the telemetry structs are snapshot-by-value types).
type Source interface {
	// Samples returns the source's current metric samples.
	Samples() []Sample
}

// Provider yields a live Source on demand — the registry calls it at
// every Gather, so metrics track a running engine. ok is false when
// the source currently has nothing to report (e.g. no NVMe tier).
type Provider func() (Source, bool)

// Registry aggregates metric instruments (counters, gauges,
// histograms) and live providers into one pollable, named sample
// space. All methods are safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	instruments map[string]Source
	order       []string
	providers   []Provider
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{instruments: map[string]Source{}}
}

// Counter returns the registry's counter named name, creating it on
// first use. It panics if the name is already bound to a different
// instrument kind (a programming error, like a duplicate flag).
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.instrument(name, func() Source { return &Counter{name: name} }).(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a counter", name))
	}
	return c
}

// Gauge returns the registry's gauge named name, creating it on first
// use. It panics on an instrument-kind conflict.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.instrument(name, func() Source { return &Gauge{name: name} }).(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a gauge", name))
	}
	return g
}

// Histogram returns the registry's histogram named name with the given
// upper bucket bounds (ascending), creating it on first use. It panics
// on an instrument-kind conflict.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h, ok := r.instrument(name, func() Source {
		return &Histogram{name: name, bounds: bounds, counts: make([]int64, len(bounds)+1)}
	}).(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
	}
	return h
}

// instrument looks up or creates a named instrument under the lock.
func (r *Registry) instrument(name string, build func() Source) Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.instruments[name]; ok {
		return s
	}
	s := build()
	r.instruments[name] = s
	r.order = append(r.order, name)
	return s
}

// Register adds a live metrics provider; its samples join every
// subsequent Gather.
func (r *Registry) Register(p Provider) {
	r.mu.Lock()
	r.providers = append(r.providers, p)
	r.mu.Unlock()
}

// Gather snapshots every instrument and provider into one sample list,
// sorted by name. Samples sharing a name are summed (several ranks or
// stores reporting the same subsystem fold into one series).
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	sources := make([]Source, 0, len(r.order))
	for _, name := range r.order {
		sources = append(sources, r.instruments[name])
	}
	providers := make([]Provider, len(r.providers))
	copy(providers, r.providers)
	r.mu.Unlock()

	byName := map[string]int{}
	var out []Sample
	add := func(s Sample) {
		if i, ok := byName[s.Name]; ok {
			out[i].Value += s.Value
			return
		}
		byName[s.Name] = len(out)
		out = append(out, s)
	}
	for _, src := range sources {
		for _, s := range src.Samples() {
			add(s)
		}
	}
	for _, p := range providers {
		if src, ok := p(); ok {
			for _, s := range src.Samples() {
				add(s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText writes the gathered samples in a Prometheus-style text
// exposition: a # TYPE line then "name value" per metric.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Gather() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
			s.Name, s.Kind, s.Name, formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders a sample value without trailing float noise on
// integral counts.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically nondecreasing total, safe for concurrent
// use.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Samples satisfies Source.
func (c *Counter) Samples() []Sample {
	return []Sample{{Name: c.name, Kind: KindCounter, Value: float64(c.v.Load())}}
}

// Gauge is a point-in-time value, safe for concurrent use.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Samples satisfies Source.
func (g *Gauge) Samples() []Sample {
	return []Sample{{Name: g.name, Kind: KindGauge, Value: g.Value()}}
}

// Histogram is a fixed-bound distribution, safe for concurrent use.
// Its samples expose the observation count, the sum, and cumulative
// per-bound counts (name_le_<bound>), Prometheus-style.
type Histogram struct {
	name   string
	bounds []float64

	mu     sync.Mutex
	counts []int64
	sum    float64
	n      int64
}

// Observe records one value into the distribution.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Samples satisfies Source.
func (h *Histogram) Samples() []Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sample, 0, len(h.bounds)+3)
	out = append(out,
		Sample{Name: h.name + "_count", Kind: KindCounter, Value: float64(h.n)},
		Sample{Name: h.name + "_sum", Kind: KindCounter, Value: h.sum},
	)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		out = append(out, Sample{
			Name: h.name + "_le_" + strconv.FormatFloat(b, 'g', -1, 64),
			Kind: KindCounter, Value: float64(cum),
		})
	}
	out = append(out, Sample{Name: h.name + "_le_inf", Kind: KindCounter, Value: float64(h.n)})
	return out
}
