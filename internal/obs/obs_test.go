package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestNilTracerIsDisabled: every method on the nil tracer/track/span
// chain must no-op — the zero-overhead-when-disabled contract.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("rank 0")
	if tk != nil {
		t.Fatal("nil tracer returned a non-nil track")
	}
	sp := tk.Begin("forward")
	sp.End()
	sp.EndMicro(3)
	sp.EndInt("bucket", 1)
	tk.Instant("stall")
	tk.InstantInt("prefetch", "bucket", 2)
	if tr.Len() != 0 || tr.Events() != nil || tr.EventsSince(0) != nil {
		t.Fatal("nil tracer reported events")
	}
}

// TestSpansAndInstants checks the recorded event stream: track
// metadata first, then spans with duration and args, then instants.
func TestSpansAndInstants(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track("rank 0")
	sp := tk.Begin("forward")
	sp.EndMicro(2)
	tk.InstantInt("prefetch", "bucket", 5)
	tk.Instant("stall")

	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	if ev[0].Ph != "M" || ev[0].Name != "thread_name" || ev[0].Args["name"] != "rank 0" {
		t.Fatalf("first event is not the track metadata: %+v", ev[0])
	}
	if ev[1].Ph != "X" || ev[1].Name != "forward" || ev[1].Dur < 0 {
		t.Fatalf("span event malformed: %+v", ev[1])
	}
	if ev[1].Args["micro"] != 2 {
		t.Fatalf("span micro arg = %v, want 2", ev[1].Args["micro"])
	}
	if ev[2].Ph != "i" || ev[2].Args["bucket"] != 5 || ev[2].S != "t" {
		t.Fatalf("instant event malformed: %+v", ev[2])
	}
	if ev[1].Tid != ev[2].Tid || ev[1].Pid != tracePid {
		t.Fatalf("events left the track: %+v vs %+v", ev[1], ev[2])
	}
}

// TestTracksGetDistinctTids: separate tracks must land on separate
// Chrome threads.
func TestTracksGetDistinctTids(t *testing.T) {
	tr := NewTracer()
	a, b := tr.Track("a"), tr.Track("b")
	a.Instant("x")
	b.Instant("y")
	ev := tr.Events()
	if ev[2].Tid == ev[3].Tid {
		t.Fatalf("tracks share tid %d", ev[2].Tid)
	}
}

// TestEventsSince checks the incremental read the /trace stream uses.
func TestEventsSince(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track("t")
	tk.Instant("a")
	n := tr.Len()
	if got := tr.EventsSince(n); got != nil {
		t.Fatalf("EventsSince(Len) = %v, want nil", got)
	}
	tk.Instant("b")
	got := tr.EventsSince(n)
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("EventsSince(%d) = %+v, want just b", n, got)
	}
}

// TestWriteJSON: the export must be valid Chrome trace-event JSON in
// the object form with a traceEvents array.
func TestWriteJSON(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track("rank 0")
	tk.Begin("forward").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("got %d traceEvents, want 2", len(parsed.TraceEvents))
	}
}

// TestConcurrentAppend exercises the tracer under parallel producers
// (meaningful under -race).
func TestConcurrentAppend(t *testing.T) {
	tr := NewTracer()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			tk := tr.Track("w")
			for j := 0; j < 100; j++ {
				tk.Begin("op").EndMicro(j)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if want := 4 * 101; tr.Len() != want {
		t.Fatalf("got %d events, want %d", tr.Len(), want)
	}
}
