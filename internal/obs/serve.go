package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the observability HTTP surface:
//
//   - /metrics — the registry's current samples in text exposition
//   - /trace — the trace so far as Chrome trace-event JSON; with
//     ?follow=1 it streams events as a growing JSON array until the
//     client disconnects (Perfetto tolerates the truncated tail)
//   - /debug/pprof/ — the standard net/http/pprof profiles
//
// reg may not be nil; tr may be nil (tracing disabled), in which case
// /trace reports 404.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "superoffload observability: /metrics /trace /debug/pprof/")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "tracing disabled (run with -trace or pass a Tracer)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("follow") == "" {
			tr.WriteJSON(w)
			return
		}
		streamTrace(w, r, tr)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// streamTrace writes trace events as one growing JSON array, polling
// the tracer for new events until the client goes away. The array is
// never closed — the connection ends mid-stream — which Perfetto's
// JSON importer accepts.
func streamTrace(w http.ResponseWriter, r *http.Request, tr *Tracer) {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if _, err := fmt.Fprint(w, "["); err != nil {
		return
	}
	n, first := 0, true
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	for {
		for _, e := range tr.EventsSince(n) {
			n++
			if !first {
				if _, err := fmt.Fprint(w, ","); err != nil {
					return
				}
			}
			first = false
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
