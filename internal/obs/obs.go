// Package obs is the unified observability layer: a tracing tap that
// records per-op schedule spans and store/comm events as Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing), plus a
// streaming metrics registry the engines' telemetry structs publish
// into behind the Source interface, and an HTTP handler serving both.
//
// The package is deliberately dependency-free (standard library only)
// so every layer of the stack — internal/stv, internal/act,
// internal/dp, the facade — can import it without cycles.
//
// Zero-overhead-when-disabled contract: a nil *Tracer yields nil
// *Track values, and every Track/Span method is nil-safe with an
// immediate return. Hot paths guard span creation with an explicit
// `if track != nil` so the disabled mode adds no allocations and no
// argument marshaling — the benchmark gate in BENCH_baseline.json
// holds with tracing compiled in.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// tracePid is the single simulated-process id every track shares: the
// whole engine is one process; tracks (rank interpreters, store
// workers, comm planes) are its threads.
const tracePid = 1

// Event is one Chrome trace event. Ts and Dur are microseconds since
// the tracer started, per the trace-event format. Ph "X" is a complete
// span, "i" an instant, "M" metadata (track names).
type Event struct {
	// Name labels the event (schedule op, store action, track name).
	Name string `json:"name"`
	// Ph is the Chrome event phase: "X", "i", or "M".
	Ph string `json:"ph"`
	// Ts is the event start in microseconds since the trace began.
	Ts float64 `json:"ts"`
	// Dur is a complete ("X") event's length in microseconds.
	Dur float64 `json:"dur,omitempty"`
	// Pid and Tid place the event on a process/thread track.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// S is an instant event's scope ("t": thread-scoped).
	S string `json:"s,omitempty"`
	// Args carries event attributes (micro index, bucket, layer...).
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects trace events from every layer of a training run.
// All methods are safe for concurrent use (ranks, store workers, and
// the coordinator all append), and all are nil-safe: a nil *Tracer is
// the disabled mode and records nothing.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	events  []Event
	nextTid int
}

// NewTracer starts an enabled tracer; its clock zero is now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), nextTid: 1}
}

// Track allocates a named timeline (one Chrome "thread") for a rank
// interpreter, store worker, or comm plane. Returns nil on a nil
// tracer, so callers can hold a *Track unconditionally and every event
// call no-ops when tracing is off.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tid := t.nextTid
	t.nextTid++
	t.events = append(t.events, Event{
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
	return &Track{t: t, tid: tid}
}

// add appends one event under the tracer lock.
func (t *Tracer) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len reports how many events have been recorded so far (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot copy of every event recorded so far.
func (t *Tracer) Events() []Event {
	return t.EventsSince(0)
}

// EventsSince returns a snapshot copy of the events recorded at index
// n and beyond — the incremental read the streaming /trace endpoint
// polls. Returns nil on a nil tracer or when nothing new arrived.
func (t *Tracer) EventsSince(n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(t.events) {
		return nil
	}
	out := make([]Event, len(t.events)-n)
	copy(out, t.events[n:])
	return out
}

// traceFile is the Chrome trace-event JSON object form.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteJSON writes the full trace in the Chrome trace-event JSON
// object form ({"traceEvents": [...]}), loadable in Perfetto and
// chrome://tracing.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"})
}

// Track is one named timeline of a tracer. A nil *Track is the
// disabled mode: every method returns immediately, and the span
// helpers take only scalar arguments so a disabled call site performs
// no allocation.
type Track struct {
	t   *Tracer
	tid int
}

// now is the track's clock: microseconds since the trace began.
func (k *Track) now() float64 {
	return float64(time.Since(k.t.start)) / float64(time.Microsecond)
}

// Span is an open interval started by Begin. It is a value type so
// opening a span allocates nothing; the zero Span (from a nil track)
// ends as a no-op.
type Span struct {
	tk   *Track
	name string
	t0   float64
}

// Begin opens a span on the track. On a nil track it returns the zero
// Span, whose End variants no-op.
func (k *Track) Begin(name string) Span {
	if k == nil {
		return Span{}
	}
	return Span{tk: k, name: name, t0: k.now()}
}

// End closes the span with no attributes.
func (sp Span) End() {
	if sp.tk == nil {
		return
	}
	sp.finish(nil)
}

// EndMicro closes the span tagged with its micro-batch index.
func (sp Span) EndMicro(micro int) {
	if sp.tk == nil {
		return
	}
	sp.finish(map[string]any{"micro": micro})
}

// EndInt closes the span tagged with one integer attribute.
func (sp Span) EndInt(key string, v int) {
	if sp.tk == nil {
		return
	}
	sp.finish(map[string]any{key: v})
}

// finish records the completed span as a Chrome "X" event.
func (sp Span) finish(args map[string]any) {
	t1 := sp.tk.now()
	sp.tk.t.add(Event{
		Name: sp.name, Ph: "X", Ts: sp.t0, Dur: t1 - sp.t0,
		Pid: tracePid, Tid: sp.tk.tid, Args: args,
	})
}

// Instant records a point event on the track.
func (k *Track) Instant(name string) {
	if k == nil {
		return
	}
	k.t.add(Event{Name: name, Ph: "i", Ts: k.now(), Pid: tracePid, Tid: k.tid, S: "t"})
}

// InstantInt records a point event tagged with one integer attribute
// (bucket or layer index, payload size...).
func (k *Track) InstantInt(name, key string, v int) {
	if k == nil {
		return
	}
	k.t.add(Event{
		Name: name, Ph: "i", Ts: k.now(), Pid: tracePid, Tid: k.tid, S: "t",
		Args: map[string]any{key: v},
	})
}
