package sched

import (
	"math"
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/model"
)

// TestCoarseningPreservesSteadyTime: a plan with thousands of tiny buckets
// is simulated as grouped tasks; the steady iteration time must stay close
// to an equivalent plan expressed directly at the grouped granularity.
func TestCoarseningPreservesSteadyTime(t *testing.T) {
	m, _ := model.ByName("5B")
	chip := hw.GH200()
	base := OffloadPlan{
		Chip: chip, Link: chip.Link, Model: m,
		Exec: Execution{MicroBatch: 8, GradAccum: 1}, Seq: 1024,
		CastOnGPU: true, Speculative: true, CPUImpl: hw.AdamGrace,
	}

	fine := base
	fine.NBuckets = 2048 // > maxSimBuckets: triggers grouping (×4)
	fine.BucketParams = m.Params() / 2048

	grouped := base
	grouped.NBuckets = 512
	grouped.BucketParams = m.Params() / 512

	_, stFine, err := Build(fine)
	if err != nil {
		t.Fatal(err)
	}
	_, stGrouped, err := Build(grouped)
	if err != nil {
		t.Fatal(err)
	}
	// Not identical (per-bucket latency taxes differ by construction —
	// the fine plan pays 4x the dispatch/latency count), but the
	// coarsened simulation must not lose the totals: the fine plan is
	// slower or equal, and within 2x.
	if stFine.IterTime < stGrouped.IterTime*0.98 {
		t.Errorf("fine-bucket plan (%.4f) faster than grouped (%.4f)?", stFine.IterTime, stGrouped.IterTime)
	}
	if stFine.IterTime > stGrouped.IterTime*2 {
		t.Errorf("coarsening distorted totals: %.4f vs %.4f", stFine.IterTime, stGrouped.IterTime)
	}
}

func TestIterTimeMonotoneInModelSize(t *testing.T) {
	chip := hw.GH200()
	prev := 0.0
	for _, name := range []string{"1B", "2B", "3B"} {
		m, _ := model.ByName(name)
		nb := m.GradBucketCount(hw.SuperOffloadBucketBytes)
		_, st, err := Build(OffloadPlan{
			Chip: chip, Link: chip.Link, Model: m,
			Exec: Execution{MicroBatch: 8, GradAccum: 1}, Seq: 1024,
			NBuckets: nb, BucketParams: m.Params() / int64(nb),
			CastOnGPU: true, Speculative: true, CPUImpl: hw.AdamGrace,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.IterTime <= prev {
			t.Errorf("%s iteration (%.4f) not longer than smaller model (%.4f)", name, st.IterTime, prev)
		}
		prev = st.IterTime
	}
}

func TestMisboundLinkSlowsTransfers(t *testing.T) {
	m, _ := model.ByName("5B")
	node := hw.NewGH200Node(4)
	nb := m.GradBucketCount(hw.SuperOffloadBucketBytes)
	mk := func(link hw.LinkSpec) float64 {
		_, st, err := Build(OffloadPlan{
			Chip: node.Chip, Link: link, Model: m,
			Exec: Execution{MicroBatch: 8, GradAccum: 1}, Seq: 1024,
			NBuckets: nb, BucketParams: m.Params() / int64(nb),
			CastOnGPU: false, Speculative: false, CPUImpl: hw.AdamCPU,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.IterTime
	}
	local := mk(node.Chip.Link)
	cross := mk(node.CrossNUMA)
	if cross <= local {
		t.Errorf("cross-NUMA schedule (%.3f) should be slower than local (%.3f)", cross, local)
	}
}

func TestValidationTimeScalesWithParams(t *testing.T) {
	m1, _ := model.ByName("1B")
	m8, _ := model.ByName("8B")
	mk := func(m model.Config) OffloadPlan {
		nb := m.GradBucketCount(hw.SuperOffloadBucketBytes)
		chip := hw.GH200()
		return OffloadPlan{Chip: chip, Link: chip.Link, Model: m,
			NBuckets: nb, BucketParams: m.Params() / int64(nb)}
	}
	v1 := mk(m1).validationTime()
	v8 := mk(m8).validationTime()
	ratio := v8 / v1
	want := float64(m8.Params()) / float64(m1.Params())
	if math.Abs(ratio-want)/want > 0.05 {
		t.Errorf("validation time ratio %.2f, want ~%.2f", ratio, want)
	}
}
