package sched

import (
	"fmt"

	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sim"
)

// Resource names used by every offload schedule.
const (
	ResGPU = "gpu"    // GPU compute stream
	ResD2H = "d2h"    // device→host copy engine
	ResH2D = "h2d"    // host→device copy engine
	ResCPU = "cpu"    // CPU optimizer (kernel already uses all cores)
	ResVal = "cpuval" // background validation workers (§4.4)
)

// OffloadPlan parameterizes one bucketized offload schedule. The same
// builder expresses ZeRO-Offload (synchronous, CPU-tuned defaults),
// ZeRO-Infinity (weight-flow, tiny buckets), FSDP-Offload (weight-flow
// with per-layer host syncs) and SuperOffload (speculative, SAC, GPU-
// retained buckets) — they differ only in these knobs.
type OffloadPlan struct {
	Chip hw.Chip
	// Link is the host link actually used (the local C2C link, or the
	// cross-NUMA path when misbound, §4.7).
	Link  hw.LinkSpec
	Model model.Config
	Exec  Execution
	Seq   int

	// NBuckets is the gradient/parameter bucket count; BucketParams the
	// parameters per bucket.
	NBuckets     int
	BucketParams int64

	// GPUBuckets buckets (the last-produced ones in backward order,
	// i.e. the first layers) keep optimizer states on the GPU (§4.3).
	GPUBuckets int
	// CastOnGPU selects Superchip-aware casting: cast on GPU and move
	// fp32 pinned; false is the PCIe-era path: move fp16 through an
	// unpinned staging buffer and cast on the CPU (§4.5).
	CastOnGPU bool
	// Speculative selects speculation-then-validation; false inserts
	// the synchronize-then-execute barrier (§4.4).
	Speculative bool
	// CPUImpl is the CPU optimizer kernel (§4.6).
	CPUImpl hw.AdamImpl
	// WeightFlow streams fp16 weights from CPU for both passes instead
	// of keeping them GPU-resident (§4.2).
	WeightFlow bool
	// PerLayerSync adds a blocking host synchronization before every
	// forward/backward chunk (FSDP-Offload's dispatch behaviour).
	PerLayerSync float64
	// UnpinnedWeights forces weight streaming through staged unpinned
	// buffers (ZeRO-Infinity's partially pinned pools).
	UnpinnedWeights bool
	// PageableTransfers models naive framework copies of pageable host
	// memory for weights and gradients (FSDP's CPU-offload path): fp32
	// payloads at hw.PageableBW.
	PageableTransfers bool

	// Iterations simulated; ≥3 recommended (warm-up + steady pair).
	Iterations int
}

// SteadyStats summarizes the steady-state iteration extracted from a
// multi-iteration simulation.
type SteadyStats struct {
	IterTime    float64
	GPUUtil     float64
	GPUIdleFrac float64
	CPUUtil     float64
	Makespan    float64
}

// totalParams returns the parameter count covered by the bucket pipeline.
func (p OffloadPlan) totalParams() int64 { return int64(p.NBuckets) * p.BucketParams }

// gradXferTime returns the per-bucket gradient D2H wire time under the
// casting policy (§4.5). Cast-on-GPU moves fp32 over a pinned DMA path
// (the GPU-side cast itself is HBM-fast and folded in); cast-on-CPU moves
// fp16 but bounces through an unpinned staging buffer.
func (p OffloadPlan) gradXferTime() float64 {
	n := p.BucketParams
	if p.PageableTransfers {
		return p.Link.TransferTime(4*n, hw.DeviceToHost, hw.Pageable)
	}
	if p.CastOnGPU {
		return hw.CastTime(p.Chip, true, n) + p.Link.TransferTime(4*n, hw.DeviceToHost, hw.Pinned)
	}
	return p.Link.TransferTime(2*n, hw.DeviceToHost, hw.Unpinned)
}

// paramXferTime returns the per-bucket parameter H2D wire time.
func (p OffloadPlan) paramXferTime() float64 {
	n := p.BucketParams
	if p.CastOnGPU {
		return p.Link.TransferTime(4*n, hw.HostToDevice, hw.Pinned) + hw.CastTime(p.Chip, true, n)
	}
	return p.Link.TransferTime(2*n, hw.HostToDevice, hw.Unpinned)
}

// cpuBucketWork is the CPU-serialized time per offloaded bucket: dispatch
// overhead, fp16→fp32 cast of incoming gradients and fp32→fp16 cast of
// outgoing parameters when casting happens on the CPU (§4.5), and the
// fused Adam kernel itself.
func (p OffloadPlan) cpuBucketWork() float64 {
	t := hw.CPUDispatchPerBucketS + hw.AdamStepTime(p.Chip, p.CPUImpl, p.BucketParams)
	if !p.CastOnGPU {
		t += 2 * hw.CastTime(p.Chip, false, p.BucketParams)
	}
	return t
}

// weightXferTime is the per-bucket weight stream for weight-flow mode:
// fp16 pinned for SuperOffload, fp16 staged for ZeRO-Infinity, fp32
// pageable for FSDP.
func (p OffloadPlan) weightXferTime() float64 {
	if p.PageableTransfers {
		return p.Link.TransferTime(4*p.BucketParams, hw.HostToDevice, hw.Pageable)
	}
	pin := hw.Pinned
	if p.UnpinnedWeights {
		pin = hw.Unpinned
	}
	return p.Link.TransferTime(2*p.BucketParams, hw.HostToDevice, pin)
}

// validationTime is the deferred global-state computation (global norm +
// NaN/Inf scan): one read pass over fp32 gradients at a fraction of CPU
// bandwidth.
func (p OffloadPlan) validationTime() float64 {
	return 4 * float64(p.totalParams()) / (p.Chip.CPU.MemBW * 0.5)
}

// Build simulates the plan and returns the engine plus steady-state stats.
func Build(p OffloadPlan) (*sim.Engine, SteadyStats, error) {
	if p.Iterations < 2 {
		p.Iterations = 3
	}
	if p.NBuckets < 1 {
		return nil, SteadyStats{}, fmt.Errorf("sched: plan needs ≥1 bucket, got %d", p.NBuckets)
	}
	if p.GPUBuckets > p.NBuckets {
		p.GPUBuckets = p.NBuckets
	}

	e := sim.New()
	e.AddResource(ResGPU, 1)
	e.AddResource(ResD2H, 1)
	e.AddResource(ResH2D, 1)
	e.AddResource(ResCPU, 1)
	e.AddResource(ResVal, 1)

	// Pageable copies are CPU memcpys through the page-fault path: they
	// serialize with each other and with the optimizer on the CPU,
	// instead of riding the DMA engines.
	xferD2H, xferH2D := ResD2H, ResH2D
	if p.PageableTransfers {
		xferD2H, xferH2D = ResCPU, ResCPU
	}

	fwdT, bwdT := ComputeTimes(p.Chip, p.Model, p.Exec.MicroBatch, p.Seq, p.Exec.Checkpoint)
	eff := EffBatchEfficiency(p.Exec.MicroBatch, p.Seq)
	fwdT, bwdT = fwdT/eff, bwdT/eff

	// Per-bucket unit costs at the plan's true bucket size (latency
	// effects included), then coarsen: schedules with thousands of tiny
	// buckets (ZeRO-Infinity's 1 MiB blocks) are simulated as groups of
	// `group` buckets per task with costs summed, preserving totals and
	// per-bucket latency taxes while bounding the DAG size.
	const maxSimBuckets = 512
	group := 1
	if p.NBuckets > maxSimBuckets {
		group = (p.NBuckets + maxSimBuckets - 1) / maxSimBuckets
	}
	g := float64(group)
	gradX := g * p.gradXferTime()
	paramX := g * p.paramXferTime()
	weightX := g * p.weightXferTime()
	cpuStep := g * p.cpuBucketWork()
	gpuStep := g * hw.AdamStepTime(p.Chip, hw.AdamGPU, p.BucketParams)
	valT := p.validationTime()
	if group > 1 {
		p.NBuckets = (p.NBuckets + group - 1) / group
		p.GPUBuckets /= group
	}
	fwdChunk := fwdT / float64(p.NBuckets)
	bwdChunk := bwdT / float64(p.NBuckets)

	// Per-bucket state carried across iterations: the task whose
	// completion publishes bucket b's updated weights on the GPU
	// (weight-stationary) or on the CPU (weight-flow).
	paramReady := make([]*sim.Task, p.NBuckets)
	fwdStarts := make([]*sim.Task, 0, p.Iterations)

	// Per-iteration scratch for the STE synchronization barrier.
	var steOpts, steGrads []*sim.Task

	var prevIterTail *sim.Task
	for it := 0; it < p.Iterations; it++ {
		// ---- forward ----
		var fwdLast *sim.Task
		var fwdFirst *sim.Task
		for mb := 0; mb < p.Exec.GradAccum; mb++ {
			for b := 0; b < p.NBuckets; b++ {
				if p.PerLayerSync > 0 {
					syncT := e.Add("sync", ResGPU, p.PerLayerSync, sim.TagIdleWait)
					syncT.After(fwdLast, prevIterTail)
					fwdLast = syncT
				}
				f := e.Add(fmt.Sprintf("F%d.%d", it, b), ResGPU, fwdChunk, sim.TagCompute)
				f.After(fwdLast, prevIterTail)
				if p.WeightFlow {
					wx := e.Add(fmt.Sprintf("Wf%d.%d", it, b), xferH2D, weightX, sim.TagTransfer)
					wx.After(paramReady[b], prevIterTail)
					f.After(wx)
				} else {
					f.After(paramReady[b])
				}
				if fwdFirst == nil {
					fwdFirst = f
				}
				fwdLast = f
			}
			// ---- backward (buckets in reverse order) ----
			finalMB := mb == p.Exec.GradAccum-1
			bwdLast := fwdLast
			for i := 0; i < p.NBuckets; i++ {
				b := p.NBuckets - 1 - i // gradient production order
				if p.PerLayerSync > 0 {
					syncT := e.Add("sync", ResGPU, p.PerLayerSync, sim.TagIdleWait)
					syncT.After(bwdLast)
					bwdLast = syncT
				}
				bw := e.Add(fmt.Sprintf("B%d.%d", it, b), ResGPU, bwdChunk, sim.TagCompute)
				bw.After(bwdLast)
				if p.WeightFlow {
					wx := e.Add(fmt.Sprintf("Wb%d.%d", it, b), xferH2D, weightX, sim.TagTransfer)
					wx.After(paramReady[b])
					bw.After(wx)
				}
				bwdLast = bw
				if !finalMB {
					continue // gradients accumulate on-device
				}
				if b < p.GPUBuckets {
					// Repartitioned bucket: optimizer state on
					// GPU; step runs on the GPU stream after the
					// whole backward pass.
					gs := e.Add(fmt.Sprintf("Ug%d.%d", it, b), ResGPU, gpuStep, sim.TagOptim)
					gs.After(bw) // scheduled on gpu stream ⇒ runs post-backward
					paramReady[b] = gs
					continue
				}
				gx := e.Add(fmt.Sprintf("G%d.%d", it, b), xferD2H, gradX, sim.TagTransfer)
				gx.After(bw)
				opt := e.Add(fmt.Sprintf("U%d.%d", it, b), ResCPU, cpuStep, sim.TagOptim)
				opt.After(gx)
				if !p.Speculative {
					// STE: the optimizer may not start until every
					// gradient has arrived and been validated.
					// The dependency is attached below once all gx
					// exist; collect via deferred list.
					steOpts = append(steOpts, opt)
				}
				steGrads = append(steGrads, gx)
				if p.WeightFlow {
					// Weight-flow: updated weights stay on CPU and
					// stream during the next pass.
					paramReady[b] = opt
				} else {
					px := e.Add(fmt.Sprintf("P%d.%d", it, b), xferH2D, paramX, sim.TagTransfer)
					px.After(opt)
					paramReady[b] = px
				}
			}
			fwdLast = bwdLast
		}

		// ---- validation ----
		if len(steGrads) > 0 {
			// Barrier: all gradients of the iteration have arrived.
			barrier := e.Add(fmt.Sprintf("sync%d", it), ResVal, 0, sim.TagValidate)
			barrier.After(steGrads...)
			if p.Speculative {
				// Background validation overlapping the next
				// forward (§4.4); nothing waits on it in the
				// common (no-rollback) path being timed.
				v := e.Add(fmt.Sprintf("V%d", it), ResVal, valT, sim.TagValidate)
				v.After(barrier)
			} else {
				// STE: global-state computation gates every
				// optimizer step (the gray block of Fig. 3).
				v := e.Add(fmt.Sprintf("V%d", it), ResCPU, valT, sim.TagValidate)
				v.After(barrier)
				for _, o := range steOpts {
					o.After(v)
				}
			}
		}
		steOpts = steOpts[:0]
		steGrads = steGrads[:0]

		// The next iteration's forward waits for the backward to finish
		// and (via paramReady) for every bucket's weights; under STE the
		// synchronous schedule also implies the full optimizer phase is
		// drained by paramReady dependencies.
		prevIterTail = fwdLast
		fwdStarts = append(fwdStarts, fwdFirst)
	}

	makespan, err := e.Run()
	if err != nil {
		return nil, SteadyStats{}, err
	}

	n := len(fwdStarts)
	stats := SteadyStats{Makespan: makespan}
	if n >= 2 {
		stats.IterTime = fwdStarts[n-1].Start - fwdStarts[n-2].Start
		from, to := fwdStarts[n-2].Start, fwdStarts[n-1].Start
		gu := e.UtilizationBetween(ResGPU, from, to)
		// Host-sync stalls (TagIdleWait) occupy the stream but are not
		// useful work; count them as idle.
		busy := gu.Busy - gu.ByTag[sim.TagIdleWait]
		stats.GPUUtil = busy / (to - from)
		stats.GPUIdleFrac = 1 - stats.GPUUtil
		stats.CPUUtil = e.UtilizationBetween(ResCPU, from, to).Fraction()
	} else {
		stats.IterTime = makespan
	}
	return e, stats, nil
}
