// Package sched defines the common workload/result vocabulary shared by
// every training system in the repository (the SuperOffload planner in
// internal/core and the baselines in internal/baselines), plus the generic
// bucketized offload iteration builder that turns an offload plan into a
// task DAG on the discrete-event simulator.
package sched

import (
	"fmt"
	"math"

	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/sim"
)

// Workload is one training setting: a model on a cluster with a global
// batch size and sequence length.
type Workload struct {
	Cluster     hw.Cluster
	Model       model.Config
	GlobalBatch int
	Seq         int
}

// Chips returns the total Superchip count.
func (w Workload) Chips() int { return w.Cluster.TotalChips() }

// PerGPUBatch returns the per-rank batch share (at least 1).
func (w Workload) PerGPUBatch() int {
	b := w.GlobalBatch / w.Chips()
	if b < 1 {
		b = 1
	}
	return b
}

func (w Workload) String() string {
	return fmt.Sprintf("%s bsz=%d seq=%d on %s", w.Model.Name, w.GlobalBatch, w.Seq, w.Cluster)
}

// Execution describes how the per-rank batch is actually run after OOM
// mitigation (§5.2: gradient accumulation with smaller micro-batches, or
// activation checkpointing with the largest fitting micro-batch).
type Execution struct {
	MicroBatch int
	GradAccum  int
	Checkpoint bool
}

func (e Execution) String() string {
	s := fmt.Sprintf("micro=%d accum=%d", e.MicroBatch, e.GradAccum)
	if e.Checkpoint {
		s += " +ckpt"
	}
	return s
}

// Result is one system's outcome on a workload.
type Result struct {
	System   string
	Workload Workload
	Fits     bool
	OOM      string // reason when !Fits
	Exec     Execution
	// IterTime is the steady-state wall time for one global batch.
	IterTime float64
	// TFLOPS is effective per-GPU throughput: model FLOPs (recompute
	// excluded, §5.2) over iteration time.
	TFLOPS float64
	// MFU is TFLOPS over the GPU's peak.
	MFU float64
	// GPUIdleFrac is the GPU idle share of the iteration (Figs. 4/15).
	GPUIdleFrac float64
	// MaxMicroBatchNoCkpt records the largest micro-batch that fits
	// without checkpointing (0 when even micro=1 needs it).
	MaxMicroBatchNoCkpt int
	// Engine holds the simulated schedule when the system builds one.
	Engine *sim.Engine
}

// Finalize fills the derived throughput fields from IterTime.
func (r *Result) Finalize(chip hw.Chip) {
	if !r.Fits || r.IterTime <= 0 {
		r.TFLOPS, r.MFU = 0, 0
		return
	}
	flops := r.Workload.Model.IterFLOPs(r.Workload.GlobalBatch, r.Workload.Seq)
	perGPU := flops / float64(r.Workload.Chips())
	r.TFLOPS = perGPU / r.IterTime / 1e12
	r.MFU = perGPU / r.IterTime / chip.GPU.PeakFLOPS
}

// System is one training solution (SuperOffload or a baseline).
type System interface {
	Name() string
	Plan(w Workload) Result
}

// FitFunc reports whether a per-rank execution fits in memory.
type FitFunc func(micro int, checkpoint bool) bool

// TimeFunc returns the iteration time for a full global batch under the
// given execution.
type TimeFunc func(e Execution) float64

// ChooseExecution implements the paper's OOM-mitigation policy: try the
// target per-rank batch directly; otherwise compare (a) gradient
// accumulation with the largest fitting micro-batch and (b) activation
// checkpointing with the largest fitting micro-batch, and keep whichever
// yields the shorter iteration (§5.2 "we report the higher throughput
// achieved between these two approaches").
func ChooseExecution(perRankBatch int, fits FitFunc, timeOf TimeFunc) (Execution, bool) {
	if fits(perRankBatch, false) {
		return Execution{MicroBatch: perRankBatch, GradAccum: 1}, true
	}
	var candidates []Execution
	if m := largestFitting(perRankBatch, func(b int) bool { return fits(b, false) }); m > 0 {
		candidates = append(candidates, Execution{MicroBatch: m, GradAccum: ceilDiv(perRankBatch, m)})
	}
	if m := largestFitting(perRankBatch, func(b int) bool { return fits(b, true) }); m > 0 {
		candidates = append(candidates, Execution{MicroBatch: m, GradAccum: ceilDiv(perRankBatch, m), Checkpoint: true})
	}
	if len(candidates) == 0 {
		return Execution{}, false
	}
	best := candidates[0]
	bestT := timeOf(best)
	for _, c := range candidates[1:] {
		if t := timeOf(c); t < bestT {
			best, bestT = c, t
		}
	}
	return best, true
}

func largestFitting(maxB int, fits func(int) bool) int {
	for b := maxB; b >= 1; b-- {
		if fits(b) {
			return b
		}
	}
	return 0
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ComputeTimes returns forward and backward wall times for one micro-batch
// on the chip at the achievable transformer efficiency. Checkpointing adds
// a recompute forward to the backward pass.
func ComputeTimes(chip hw.Chip, m model.Config, micro, seq int, checkpoint bool) (fwd, bwd float64) {
	ach := hw.AchievableGPUFLOPS(chip, m.Hidden, seq)
	f := m.FwdFLOPsPerIter(micro, seq)
	fwd = f / ach
	bwd = 2 * f / ach
	if checkpoint {
		bwd += f / ach // recompute forward inside backward
	}
	return fwd, bwd
}

// GPUAdamTime is the optimizer step time for a fully GPU-resident update.
func GPUAdamTime(chip hw.Chip, params int64) float64 {
	return hw.AdamStepTime(chip, hw.AdamGPU, params)
}

// MaxTrainable returns the largest Appendix A model the system can train
// on the cluster at the given batch/seq — the Fig. 13 measurement.
func MaxTrainable(s System, cluster hw.Cluster, batch, seq int) model.Config {
	var best model.Config
	for _, m := range model.AppendixA() {
		w := Workload{Cluster: cluster, Model: m, GlobalBatch: batch, Seq: seq}
		if r := s.Plan(w); r.Fits && m.Params() > best.Params() {
			best = m
		}
	}
	return best
}

// EffBatchEfficiency penalizes tiny micro-batches: below a full wave the
// GPU loses occupancy roughly linearly. micro≥4 is full speed at seq 1024;
// longer sequences saturate at smaller micro-batches.
func EffBatchEfficiency(micro, seq int) float64 {
	tokens := float64(micro * seq)
	const fullTokens = 4 * 1024
	if tokens >= fullTokens {
		return 1
	}
	return math.Max(0.55, 0.55+0.45*tokens/fullTokens)
}
