package sched

import (
	"math"
	"testing"

	"superoffload/internal/hw"
	"superoffload/internal/model"
)

func planFor(m model.Config, bucketBytes int64, opts func(*OffloadPlan)) OffloadPlan {
	chip := hw.GH200()
	n := m.GradBucketCount(bucketBytes)
	p := OffloadPlan{
		Chip: chip, Link: chip.Link, Model: m,
		Exec: Execution{MicroBatch: 8, GradAccum: 1}, Seq: 1024,
		NBuckets: n, BucketParams: m.Params() / int64(n),
		CPUImpl: hw.AdamCPU,
	}
	if opts != nil {
		opts(&p)
	}
	return p
}

func iterTime(t *testing.T, p OffloadPlan) SteadyStats {
	t.Helper()
	_, st, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.IterTime <= 0 {
		t.Fatalf("non-positive iteration time: %+v", st)
	}
	return st
}

func TestChooseExecutionDirectFit(t *testing.T) {
	e, ok := ChooseExecution(8, func(m int, ck bool) bool { return true },
		func(e Execution) float64 { return 1 })
	if !ok || e.MicroBatch != 8 || e.GradAccum != 1 || e.Checkpoint {
		t.Fatalf("direct fit wrong: %+v", e)
	}
}

func TestChooseExecutionPrefersFasterMitigation(t *testing.T) {
	// micro 8 doesn't fit; micro ≤2 fits plain; micro ≤8 fits with ckpt.
	fits := func(m int, ck bool) bool {
		if ck {
			return m <= 8
		}
		return m <= 2
	}
	// Time model: checkpointing is slower here.
	timeOf := func(e Execution) float64 {
		t := float64(e.GradAccum)
		if e.Checkpoint {
			t *= 10
		}
		return t
	}
	e, ok := ChooseExecution(8, fits, timeOf)
	if !ok || e.Checkpoint || e.MicroBatch != 2 || e.GradAccum != 4 {
		t.Fatalf("should pick accumulation: %+v", e)
	}
	// Flip the time model: checkpointing wins.
	timeOf2 := func(e Execution) float64 {
		t := float64(e.GradAccum) * 3
		if e.Checkpoint {
			t = 1
		}
		return t
	}
	e2, ok := ChooseExecution(8, fits, timeOf2)
	if !ok || !e2.Checkpoint {
		t.Fatalf("should pick checkpointing: %+v", e2)
	}
}

func TestChooseExecutionOOM(t *testing.T) {
	_, ok := ChooseExecution(4, func(int, bool) bool { return false },
		func(Execution) float64 { return 1 })
	if ok {
		t.Fatal("nothing fits; should report failure")
	}
}

func TestComputeTimes(t *testing.T) {
	chip := hw.GH200()
	m, _ := model.ByName("5B")
	fwd, bwd := ComputeTimes(chip, m, 8, 1024, false)
	if math.Abs(bwd-2*fwd) > 1e-9 {
		t.Errorf("bwd should be 2x fwd: %v vs %v", bwd, fwd)
	}
	_, bwdCk := ComputeTimes(chip, m, 8, 1024, true)
	if math.Abs(bwdCk-3*fwd) > 1e-9 {
		t.Errorf("checkpointed bwd should add a recompute fwd: %v vs %v", bwdCk, 3*fwd)
	}
}

func TestSTEExposesOptimizerPhase(t *testing.T) {
	m, _ := model.ByName("5B")
	ste := iterTime(t, planFor(m, hw.ZeROOffloadBucketBytes, nil))
	fwd, bwd := ComputeTimes(hw.GH200(), m, 8, 1024, false)
	if ste.IterTime < (fwd+bwd)*1.4 {
		t.Errorf("STE iteration %.3fs should expose CPU phase beyond compute %.3fs", ste.IterTime, fwd+bwd)
	}
	// Fig. 4: GPU idle 40-55% per iteration for prior offloading.
	if ste.GPUIdleFrac < 0.35 || ste.GPUIdleFrac > 0.65 {
		t.Errorf("STE GPU idle = %.2f, want ~0.4-0.55", ste.GPUIdleFrac)
	}
}

func TestSTVHidesOptimizerPhase(t *testing.T) {
	m, _ := model.ByName("5B")
	stv := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
		p.GPUBuckets = 4
	}))
	fwd, bwd := ComputeTimes(hw.GH200(), m, 8, 1024, false)
	if stv.IterTime > (fwd+bwd)*1.05 {
		t.Errorf("STV iteration %.3fs should approach compute-only %.3fs", stv.IterTime, fwd+bwd)
	}
	// Fig. 15: near-complete GPU utilization.
	if stv.GPUUtil < 0.95 {
		t.Errorf("SuperOffload GPU util = %.2f, want >0.95", stv.GPUUtil)
	}
}

func TestAblationLadderMonotone(t *testing.T) {
	// Table 2: each optimization must not hurt, and the full stack must
	// be ≥1.8x the baseline.
	m, _ := model.ByName("5B")
	base := iterTime(t, planFor(m, hw.ZeROOffloadBucketBytes, nil)).IterTime
	ga := iterTime(t, planFor(m, hw.ZeROOffloadBucketBytes, func(p *OffloadPlan) {
		p.CPUImpl = hw.AdamGrace
	})).IterTime
	sac := iterTime(t, planFor(m, hw.ZeROOffloadBucketBytes, func(p *OffloadPlan) {
		p.CPUImpl = hw.AdamGrace
		p.CastOnGPU = true
	})).IterTime
	stvT := iterTime(t, planFor(m, hw.ZeROOffloadBucketBytes, func(p *OffloadPlan) {
		p.CPUImpl = hw.AdamGrace
		p.CastOnGPU = true
		p.Speculative = true
	})).IterTime
	full := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.CPUImpl = hw.AdamGrace
		p.CastOnGPU = true
		p.Speculative = true
		p.GPUBuckets = 4
	})).IterTime

	steps := []float64{base, ga, sac, stvT, full}
	for i := 1; i < len(steps); i++ {
		if steps[i] > steps[i-1]*1.02 {
			t.Errorf("ablation step %d regressed: %.3f -> %.3f", i, steps[i-1], steps[i])
		}
	}
	if base/full < 1.8 {
		t.Errorf("full stack speedup %.2fx, want ≥1.8x (paper: 2.06x)", base/full)
	}
}

func TestWeightFlowStreamsWeights(t *testing.T) {
	m, _ := model.ByName("5B")
	wf := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
		p.WeightFlow = true
	}))
	ws := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
	}))
	// At batch 8 / seq 1024 the compute-to-transfer ratio is healthy, so
	// weight-flow should cost little but not be free.
	if wf.IterTime < ws.IterTime*0.98 {
		t.Errorf("weight-flow (%.3f) should not beat weight-stationary (%.3f) here", wf.IterTime, ws.IterTime)
	}
	if wf.IterTime > ws.IterTime*1.5 {
		t.Errorf("weight-flow (%.3f) catastrophically slow vs %.3f — streaming not overlapped?", wf.IterTime, ws.IterTime)
	}
}

func TestPerLayerSyncPenalty(t *testing.T) {
	m, _ := model.ByName("5B")
	base := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, nil))
	fsdpish := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.PerLayerSync = hw.FSDPSyncPerLayerS
		p.WeightFlow = true
		p.UnpinnedWeights = true
	}))
	if fsdpish.IterTime < base.IterTime*1.1 {
		t.Errorf("per-layer syncs should hurt: %.3f vs %.3f", fsdpish.IterTime, base.IterTime)
	}
	if fsdpish.GPUUtil > 0.9 {
		t.Errorf("per-layer-sync schedule reports %.2f GPU util; stalls must count as idle", fsdpish.GPUUtil)
	}
}

func TestSmallBucketsHurt(t *testing.T) {
	// ZeRO-Infinity's 2MB buckets underuse the C2C link (§5.2).
	m, _ := model.ByName("5B")
	small := iterTime(t, planFor(m, hw.ZeROInfinityBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
		p.WeightFlow = true
		p.UnpinnedWeights = true
	}))
	big := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
		p.WeightFlow = true
	}))
	if small.IterTime < big.IterTime*1.2 {
		t.Errorf("2MB buckets (%.3f) should be much slower than 64MB (%.3f)", small.IterTime, big.IterTime)
	}
}

func TestGradAccumulationScalesCompute(t *testing.T) {
	m, _ := model.ByName("5B")
	one := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
	}))
	four := iterTime(t, planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
		p.Exec = Execution{MicroBatch: 8, GradAccum: 4}
	}))
	ratio := four.IterTime / one.IterTime
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4x accumulation should take ~4x: ratio %.2f", ratio)
	}
}

func TestBuildValidation(t *testing.T) {
	m, _ := model.ByName("1B")
	p := planFor(m, hw.SuperOffloadBucketBytes, nil)
	p.NBuckets = 0
	if _, _, err := Build(p); err == nil {
		t.Fatal("expected error for zero buckets")
	}
	p = planFor(m, hw.SuperOffloadBucketBytes, nil)
	p.GPUBuckets = 10_000 // clamps to NBuckets
	if _, _, err := Build(p); err != nil {
		t.Fatalf("clamped GPU buckets should work: %v", err)
	}
}

func TestSteadyStateIndependentOfIterationCount(t *testing.T) {
	m, _ := model.ByName("5B")
	p := planFor(m, hw.SuperOffloadBucketBytes, func(p *OffloadPlan) {
		p.Speculative = true
		p.CastOnGPU = true
		p.CPUImpl = hw.AdamGrace
		p.GPUBuckets = 4
	})
	p.Iterations = 3
	a := iterTime(t, p)
	p2 := p
	p2.Iterations = 6
	b := iterTime(t, p2)
	if math.Abs(a.IterTime-b.IterTime)/a.IterTime > 0.01 {
		t.Errorf("steady iteration time drifts with horizon: %.4f vs %.4f", a.IterTime, b.IterTime)
	}
}

func TestEffBatchEfficiencyBounds(t *testing.T) {
	if EffBatchEfficiency(8, 1024) != 1 {
		t.Error("full batch should be full efficiency")
	}
	e := EffBatchEfficiency(1, 256)
	if e <= 0.5 || e >= 1 {
		t.Errorf("tiny batch efficiency %v out of (0.5,1)", e)
	}
	if EffBatchEfficiency(1, 1<<20) != 1 {
		t.Error("long sequences saturate efficiency at micro=1")
	}
}

func TestWorkloadHelpers(t *testing.T) {
	m, _ := model.ByName("5B")
	w := Workload{Cluster: hw.ClusterFor(4), Model: m, GlobalBatch: 16, Seq: 1024}
	if w.Chips() != 4 || w.PerGPUBatch() != 4 {
		t.Errorf("workload helpers: chips=%d perGPU=%d", w.Chips(), w.PerGPUBatch())
	}
	w.GlobalBatch = 2
	if w.PerGPUBatch() != 1 {
		t.Error("per-GPU batch floors at 1")
	}
	var r Result
	r.Workload = w
	r.Fits = false
	r.Finalize(hw.GH200())
	if r.TFLOPS != 0 {
		t.Error("OOM result must have zero throughput")
	}
}
