package optim

import (
	"math"

	"superoffload/internal/fp16"
)

// SumSquares returns the float64 sum of squares of one gradient shard —
// the per-bucket partial a distributed global-norm reduction exchanges.
func SumSquares(g []float32) float64 {
	var s float64
	for _, x := range g {
		s += float64(x) * float64(x)
	}
	return s
}

// GlobalNorm returns the L2 norm over all gradient shards, accumulated in
// float64 — the quantity gradient clipping needs globally (§4.4: "the
// clipping of the gradient norm requires calculating the global gradient
// norm"). Partial sums are formed per shard and combined in shard order,
// so a data-parallel engine that reduces per-bucket partials in bucket
// order computes the identical value bit-for-bit.
func GlobalNorm(shards [][]float32) float64 {
	var s float64
	for _, g := range shards {
		s += SumSquares(g)
	}
	return math.Sqrt(s)
}

// ClipScale returns the factor gradients must be scaled by for the global
// norm to respect maxNorm (1.0 when no clipping is needed).
func ClipScale(globalNorm, maxNorm float64) float64 {
	if maxNorm <= 0 || globalNorm <= maxNorm || globalNorm == 0 {
		return 1.0
	}
	return maxNorm / globalNorm
}

// ScaleShards multiplies every gradient shard by scale in place.
func ScaleShards(shards [][]float32, scale float64) {
	if scale == 1.0 {
		return
	}
	s := float32(scale)
	for _, g := range shards {
		for i := range g {
			g[i] *= s
		}
	}
}

// HasBad reports whether any shard contains NaN or Inf — the mixed
// precision validity check STV defers to the validation phase.
func HasBad(shards [][]float32) bool {
	for _, g := range shards {
		if fp16.ScanBad32(g) {
			return true
		}
	}
	return false
}

// MixedShard is one bucket of mixed-precision training state: fp32 master
// weights and Adam moments (CPU-resident in the paper), plus the fp16
// working copy that flows back to the GPU after each step.
type MixedShard struct {
	Master []float32  // fp32 master parameters
	Half   []fp16.Num // fp16 working copy
	State  *State
}

// NewMixedShard initializes a shard from fp32 parameters.
func NewMixedShard(params []float32) *MixedShard {
	m := &MixedShard{
		Master: append([]float32(nil), params...),
		State:  NewState(len(params)),
	}
	// One exact-size allocation at construction; Step re-casts into the
	// same buffer thereafter (fp16.Cast reuses dst when it fits).
	m.Half = fp16.Cast(make([]fp16.Num, len(params)), m.Master)
	return m
}

// Step applies one fused mixed-precision update: Adam on the fp32 master
// weights followed by the fp16 re-cast of the updated values. grad is
// fp32 (the Cast_gpu→Move_fp32 path of §4.5 delivers fp32 gradients to the
// CPU).
func (m *MixedShard) Step(cfg Config, impl Impl, grad []float32) {
	m.State.Step++
	impl(cfg, m.Master, grad, m.State, m.State.Step)
	m.Half = fp16.Cast(m.Half, m.Master)
}

// LossScaler implements static-threshold dynamic loss scaling: the scale
// doubles after a growth interval of good steps and halves on overflow,
// the standard mixed-precision recipe whose overflow checks STV validates
// asynchronously.
type LossScaler struct {
	Scale          float64
	GrowthInterval int
	// GoodSteps is the current overflow-free streak. It is part of the
	// checkpointed state: resuming without it would delay the next scale
	// doubling and silently fork the trajectory.
	GoodSteps int
	MinScale  float64
	MaxScale  float64
}

// NewLossScaler returns the standard 2^16 initial scale.
func NewLossScaler() *LossScaler {
	return &LossScaler{Scale: 65536, GrowthInterval: 2000, MinScale: 1, MaxScale: 1 << 24}
}

// Update advances the scaler after a step: overflow halves the scale and
// resets the streak; otherwise the streak grows and may double the scale.
// It returns true when the step must be skipped (overflow).
func (s *LossScaler) Update(overflow bool) bool {
	if overflow {
		s.Scale /= 2
		if s.Scale < s.MinScale {
			s.Scale = s.MinScale
		}
		s.GoodSteps = 0
		return true
	}
	s.GoodSteps++
	if s.GoodSteps >= s.GrowthInterval {
		s.Scale *= 2
		if s.Scale > s.MaxScale {
			s.Scale = s.MaxScale
		}
		s.GoodSteps = 0
	}
	return false
}

// Unscale divides gradient shards by the current scale (fp16 backward
// produces scaled gradients).
func (s *LossScaler) Unscale(shards [][]float32) {
	ScaleShards(shards, 1.0/s.Scale)
}
