package optim

import (
	"math"
	"testing"
	"testing/quick"

	"superoffload/internal/tensor"
)

func randVecs(seed uint64, n int) (p, g []float32) {
	rng := tensor.NewRNG(seed)
	p = make([]float32, n)
	g = make([]float32, n)
	for i := range p {
		p[i] = rng.NormFloat32()
		g[i] = rng.NormFloat32() * 0.1
	}
	return
}

// refAdam is a float64 reference implementation.
func refAdam(cfg Config, p, g []float64, m, v []float64, t int) {
	bc1 := 1 - math.Pow(cfg.Beta1, float64(t))
	bc2 := 1 - math.Pow(cfg.Beta2, float64(t))
	for i := range p {
		m[i] = cfg.Beta1*m[i] + (1-cfg.Beta1)*g[i]
		v[i] = cfg.Beta2*v[i] + (1-cfg.Beta2)*g[i]*g[i]
		mh := m[i] / bc1
		vh := v[i] / bc2
		p[i] -= cfg.LR*mh/(math.Sqrt(vh)+cfg.Eps) + cfg.LR*cfg.WeightDecay*p[i]
	}
}

func runImplVsRef(t *testing.T, impl Impl, name string, steps int, tol float64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.WeightDecay = 0.01
	const n = 1537 // odd size: exercises unrolled tails
	p32, g32 := randVecs(42, n)
	s := NewState(n)

	p64 := make([]float64, n)
	m64 := make([]float64, n)
	v64 := make([]float64, n)
	for i := range p32 {
		p64[i] = float64(p32[i])
	}
	g64 := make([]float64, n)

	rng := tensor.NewRNG(77)
	for step := 1; step <= steps; step++ {
		for i := range g32 {
			g32[i] = rng.NormFloat32() * 0.1
			g64[i] = float64(g32[i])
		}
		s.Step = step
		impl(cfg, p32, g32, s, step)
		refAdam(cfg, p64, g64, m64, v64, step)
	}
	for i := range p32 {
		if d := math.Abs(float64(p32[i]) - p64[i]); d > tol {
			t.Fatalf("%s: param %d diverged by %g after %d steps", name, i, d, steps)
		}
	}
}

func TestNaiveAdamMatchesReference(t *testing.T) { runImplVsRef(t, NaiveAdam, "naive", 20, 2e-4) }
func TestCPUAdamMatchesReference(t *testing.T)   { runImplVsRef(t, CPUAdam, "cpu", 20, 2e-4) }
func TestGraceAdamMatchesReference(t *testing.T) { runImplVsRef(t, GraceAdam, "grace", 20, 2e-4) }

func TestAllImplsAgreeProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint16, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		p1, g := randVecs(uint64(seed), n)
		p2 := append([]float32(nil), p1...)
		p3 := append([]float32(nil), p1...)
		s1, s2, s3 := NewState(n), NewState(n), NewState(n)
		NaiveAdam(cfg, p1, g, s1, 1)
		CPUAdam(cfg, p2, g, s2, 1)
		GraceAdam(cfg, p3, g, s3, 1)
		for i := 0; i < n; i++ {
			if math.Abs(float64(p1[i]-p2[i])) > 1e-5 || math.Abs(float64(p1[i]-p3[i])) > 1e-5 {
				return false
			}
			if math.Abs(float64(s1.M[i]-s3.M[i])) > 1e-6 || math.Abs(float64(s1.V[i]-s3.V[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = ||x - c||² with each implementation; all should
	// reach the optimum.
	for name, impl := range map[string]Impl{"naive": NaiveAdam, "cpu": CPUAdam, "grace": GraceAdam} {
		cfg := DefaultConfig()
		cfg.LR = 0.05
		n := 64
		target := make([]float32, n)
		for i := range target {
			target[i] = float32(i%7) - 3
		}
		p := make([]float32, n)
		g := make([]float32, n)
		s := NewState(n)
		for step := 1; step <= 800; step++ {
			for i := range g {
				g[i] = 2 * (p[i] - target[i])
			}
			s.Step = step
			impl(cfg, p, g, s, step)
		}
		var maxErr float64
		for i := range p {
			if d := math.Abs(float64(p[i] - target[i])); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > 0.05 {
			t.Errorf("%s: did not converge, max err %g", name, maxErr)
		}
	}
}

func TestImplByName(t *testing.T) {
	for _, n := range []string{"PT-CPU", "naive", "CPU-Adam", "cpu", "GraceAdam", "grace"} {
		if _, ok := ImplByName(n); !ok {
			t.Errorf("%s not resolvable", n)
		}
	}
	if _, ok := ImplByName("sgd"); ok {
		t.Error("unknown name resolved")
	}
}

func TestGlobalNormAndClip(t *testing.T) {
	shards := [][]float32{{3, 0}, {0, 4}}
	if gn := GlobalNorm(shards); math.Abs(gn-5) > 1e-9 {
		t.Fatalf("global norm = %v", gn)
	}
	if s := ClipScale(5, 10); s != 1.0 {
		t.Errorf("no clip expected, got %v", s)
	}
	if s := ClipScale(5, 1); math.Abs(s-0.2) > 1e-12 {
		t.Errorf("clip scale = %v, want 0.2", s)
	}
	ScaleShards(shards, 0.2)
	if gn := GlobalNorm(shards); math.Abs(gn-1) > 1e-6 {
		t.Errorf("post-clip norm = %v, want 1", gn)
	}
}

func TestClipScaleProperty(t *testing.T) {
	f := func(a, b float32) bool {
		gn := math.Abs(float64(a)) + 0.001
		mx := math.Abs(float64(b)) + 0.001
		s := ClipScale(gn, mx)
		return gn*s <= mx*(1+1e-12)+1e-9 && s <= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHasBad(t *testing.T) {
	if HasBad([][]float32{{1, 2}, {3}}) {
		t.Error("clean flagged")
	}
	inf := float32(math.Inf(1))
	if !HasBad([][]float32{{1, 2}, {inf}}) {
		t.Error("inf missed")
	}
	if !HasBad([][]float32{{float32(math.NaN())}}) {
		t.Error("nan missed")
	}
}

func TestMixedShardStepUpdatesHalf(t *testing.T) {
	p := []float32{1, 2, 3, 4}
	sh := NewMixedShard(p)
	g := []float32{1, 1, 1, 1}
	cfg := DefaultConfig()
	cfg.LR = 0.1
	sh.Step(cfg, GraceAdam, g)
	if sh.State.Step != 1 {
		t.Errorf("step = %d", sh.State.Step)
	}
	for i := range p {
		if sh.Master[i] >= p[i] {
			t.Errorf("param %d did not decrease: %v", i, sh.Master[i])
		}
		if math.Abs(float64(sh.Half[i].Float32()-sh.Master[i])) > 0.01 {
			t.Errorf("half copy stale at %d", i)
		}
	}
}

func TestLossScaler(t *testing.T) {
	s := NewLossScaler()
	if s.Scale != 65536 {
		t.Fatalf("initial scale %v", s.Scale)
	}
	if !s.Update(true) {
		t.Error("overflow should skip")
	}
	if s.Scale != 32768 {
		t.Errorf("scale after overflow = %v", s.Scale)
	}
	s.GrowthInterval = 3
	for i := 0; i < 3; i++ {
		if s.Update(false) {
			t.Error("good step should not skip")
		}
	}
	if s.Scale != 65536 {
		t.Errorf("scale after growth = %v", s.Scale)
	}
	// Floor.
	s.Scale = 1
	s.Update(true)
	if s.Scale < s.MinScale {
		t.Errorf("scale fell below min: %v", s.Scale)
	}
	// Unscale divides.
	sh := [][]float32{{2}}
	s.Scale = 2
	s.Unscale(sh)
	if sh[0][0] != 1 {
		t.Errorf("unscale: %v", sh[0][0])
	}
}

func TestSnapshotRestoreBitExact(t *testing.T) {
	p, g := randVecs(7, 513)
	sh := NewMixedShard(p)
	cfg := DefaultConfig()
	snap := TakeSnapshot(nil, sh)
	sh.Step(cfg, GraceAdam, g)
	snap.Restore(sh)
	for i := range p {
		if sh.Master[i] != p[i] {
			t.Fatalf("restore not bit-exact at %d", i)
		}
		if sh.State.M[i] != 0 || sh.State.V[i] != 0 {
			t.Fatalf("moments not restored at %d", i)
		}
	}
	if sh.State.Step != 0 {
		t.Errorf("step not restored: %d", sh.State.Step)
	}
}

func TestSnapshotReuseNoRealloc(t *testing.T) {
	p, _ := randVecs(9, 128)
	sh := NewMixedShard(p)
	s1 := TakeSnapshot(nil, sh)
	s2 := TakeSnapshot(s1, sh)
	if &s1.Master[0] != &s2.Master[0] {
		t.Error("snapshot should reuse buffers")
	}
}

func TestAlgebraicRollbackProperty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WeightDecay = 0.01
	f := func(seed uint16, steps uint8) bool {
		n := 257
		p, _ := randVecs(uint64(seed)+1, n)
		sh := NewMixedShard(p)
		rng := tensor.NewRNG(uint64(seed) * 31)
		// Advance a few steps so bias correction is step-dependent.
		warm := int(steps%5) + 1
		g := make([]float32, n)
		for k := 0; k < warm; k++ {
			for i := range g {
				g[i] = rng.NormFloat32() * 0.1
			}
			sh.Step(cfg, GraceAdam, g)
		}
		before := append([]float32(nil), sh.Master...)
		mBefore := append([]float32(nil), sh.State.M...)
		for i := range g {
			g[i] = rng.NormFloat32() * 0.1
		}
		sh.Step(cfg, GraceAdam, g)
		AlgebraicRollback(cfg, sh, g)
		for i := range before {
			if math.Abs(float64(sh.Master[i]-before[i])) > 1e-5 {
				return false
			}
			if math.Abs(float64(sh.State.M[i]-mBefore[i])) > 1e-5 {
				return false
			}
		}
		return sh.State.Step == warm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReExecuteClipped(t *testing.T) {
	cfg := DefaultConfig()
	n := 64
	p, g := randVecs(3, n)
	sh := NewMixedShard(p)
	snap := TakeSnapshot(nil, sh)
	sh.Step(cfg, GraceAdam, g) // speculative, unclipped

	// Reference: fresh shard stepped with clipped gradients directly.
	ref := NewMixedShard(p)
	clip := 0.5
	scaled := make([]float32, n)
	for i := range g {
		scaled[i] = g[i] * float32(clip)
	}
	ref.Step(cfg, GraceAdam, scaled)

	ReExecuteClipped(cfg, GraceAdam, sh, snap, g, clip)
	for i := range p {
		if sh.Master[i] != ref.Master[i] {
			t.Fatalf("re-executed step differs from direct clipped step at %d", i)
		}
	}
	if sh.State.Step != 1 {
		t.Errorf("step = %d after re-execution", sh.State.Step)
	}
}
