package optim

import (
	"math"
	"testing"
)

// TestGraceAdamDeterministic: the parallel tiled kernel must be bit-
// deterministic across runs — each element's arithmetic is independent, so
// goroutine scheduling cannot change results.
func TestGraceAdamDeterministic(t *testing.T) {
	const n = 100_000
	run := func() []float32 {
		p, g := randVecs(11, n)
		s := NewState(n)
		cfg := DefaultConfig()
		for step := 1; step <= 5; step++ {
			GraceAdam(cfg, p, g, s, step)
		}
		return p
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWeightDecayDirection(t *testing.T) {
	// Decoupled decay must shrink weights relative to the no-decay run.
	const n = 64
	p1, g := randVecs(3, n)
	for i := range p1 {
		p1[i] = 1.0 // uniform positive weights, zero-mean grads
		g[i] = 0
	}
	p2 := append([]float32(nil), p1...)
	s1, s2 := NewState(n), NewState(n)
	cfg := DefaultConfig()
	cfgWD := cfg
	cfgWD.WeightDecay = 0.1
	GraceAdam(cfg, p1, g, s1, 1)
	GraceAdam(cfgWD, p2, g, s2, 1)
	for i := range p1 {
		if p2[i] >= p1[i] {
			t.Fatalf("decay did not shrink weight %d: %v vs %v", i, p2[i], p1[i])
		}
	}
}

func TestZeroGradientsLeaveParamsAlmostStill(t *testing.T) {
	// With g = 0 and no decay, the update is 0/(0+eps) = 0.
	const n = 32
	p, _ := randVecs(5, n)
	orig := append([]float32(nil), p...)
	g := make([]float32, n)
	s := NewState(n)
	GraceAdam(DefaultConfig(), p, g, s, 1)
	for i := range p {
		if math.Abs(float64(p[i]-orig[i])) > 1e-7 {
			t.Fatalf("param %d moved with zero gradient: %v -> %v", i, orig[i], p[i])
		}
	}
}

func TestLossScalerCap(t *testing.T) {
	s := NewLossScaler()
	s.GrowthInterval = 1
	s.Scale = s.MaxScale
	s.Update(false)
	if s.Scale > s.MaxScale {
		t.Errorf("scale exceeded cap: %v", s.Scale)
	}
}

func TestGlobalNormEmptyAndSingle(t *testing.T) {
	if GlobalNorm(nil) != 0 {
		t.Error("empty norm")
	}
	if GlobalNorm([][]float32{{}}) != 0 {
		t.Error("empty shard norm")
	}
	if g := GlobalNorm([][]float32{{-7}}); math.Abs(g-7) > 1e-9 {
		t.Errorf("single-element norm: %v", g)
	}
}

func TestMixedShardHalfRoundsThroughFP16(t *testing.T) {
	// The published working copy must be the fp16 rounding of the
	// master, never the raw fp32.
	sh := NewMixedShard([]float32{1.0 / 3.0})
	got := sh.Half[0].Float32()
	if got == float32(1.0/3.0) {
		t.Skip("1/3 happens to be representable? impossible, but guard")
	}
	if math.Abs(float64(got)-1.0/3.0) > 1e-3 {
		t.Errorf("half copy too far from master: %v", got)
	}
}

func TestAlgebraicRollbackWithWeightDecay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WeightDecay = 0.05
	n := 128
	p, g := randVecs(9, n)
	sh := NewMixedShard(p)
	before := append([]float32(nil), sh.Master...)
	sh.Step(cfg, GraceAdam, g)
	AlgebraicRollback(cfg, sh, g)
	for i := range before {
		if math.Abs(float64(sh.Master[i]-before[i])) > 1e-5 {
			t.Fatalf("decayed rollback off at %d: %v vs %v", i, sh.Master[i], before[i])
		}
	}
}
